// Package repro is a from-scratch Go reproduction of "Precise Request
// Tracing and Performance Debugging for Multi-tier Services of Black
// Boxes" (Zhang, Zhihong; Zhan, Jianfeng; Li, Yong; Wang, Lei; Meng, Dan;
// Sang, Bo — DSN 2009): the PreciseTracer system.
//
// The library derives exact per-request causal paths (Component Activity
// Graphs) for multi-tier services treated as black boxes, using only
// application-independent kernel observations: timestamps, end-to-end TCP
// channels and process/thread contexts. On top of the CAGs it implements
// the paper's performance-debugging workflow — causal path patterns,
// average paths, and component latency percentages.
//
// Layout:
//
//	internal/core        Correlator façade (the public entry point)
//	internal/ranker      candidate selection: sliding window, Rule 1/2,
//	                     is_noise, concurrency-disturbance swap (§4.1, §4.3)
//	internal/engine      CAG construction: mmap/cmap, n-to-n SEND/RECEIVE
//	                     merging, thread-reuse check (§4.2)
//	internal/cag         the CAG abstraction, patterns, aggregation,
//	                     latency breakdown (§3.2)
//	internal/activity    activity model and TCP_TRACE wire format (§3.1)
//	internal/analysis    latency percentages, cross-run diffs, automated
//	                     bottleneck detector (§5.4, §7)
//	internal/baseline    naive and WAP5-style comparators (§6)
//	internal/testbed     simulated cluster standing in for the paper's
//	                     SystemTap-instrumented 8-node testbed (§5.1)
//	internal/rubis       the RUBiS-like three-tier workload (§5.1)
//	internal/experiments drivers regenerating every table/figure of §5
//	internal/groundtruth the §5.2 path-accuracy methodology
//
// Binaries: cmd/rubisgen (generate traces), cmd/precisetracer (offline
// correlator CLI), cmd/experiments (regenerate the evaluation). Runnable
// walk-throughs live under examples/.
package repro

// Package repro is a from-scratch Go reproduction of "Precise Request
// Tracing and Performance Debugging for Multi-tier Services of Black
// Boxes" (Zhang, Zhihong; Zhan, Jianfeng; Li, Yong; Wang, Lei; Meng, Dan;
// Sang, Bo — DSN 2009): the PreciseTracer system.
//
// The library derives exact per-request causal paths (Component Activity
// Graphs) for multi-tier services treated as black boxes, using only
// application-independent kernel observations: timestamps, end-to-end TCP
// channels and process/thread contexts. On top of the CAGs it implements
// the paper's performance-debugging workflow — causal path patterns,
// average paths, and component latency percentages.
//
// Layout:
//
//	internal/core        Correlator/Session façade (the public entry
//	                     point) and the one streaming correlation engine
//	                     every execution mode is a configuration of
//	internal/flow        shard-key computation: union-find closure over
//	                     TCP channels and context epochs
//	internal/ranker      candidate selection: sliding window, Rule 1/2,
//	                     is_noise, concurrency-disturbance swap (§4.1, §4.3)
//	internal/engine      CAG construction: mmap/cmap, n-to-n SEND/RECEIVE
//	                     merging, thread-reuse check (§4.2)
//	internal/cag         the CAG abstraction, patterns, aggregation,
//	                     latency breakdown (§3.2)
//	internal/activity    activity model and TCP_TRACE wire formats (§3.1):
//	                     the text log format and the compact binary codec
//	internal/transport   agent→collector network ingestion tier: framed
//	                     binary batches, per-agent sequence/ack resume,
//	                     TCP backpressure (§3.1 deployment)
//	internal/live        online monitor over the CAG stream: interval
//	                     aggregation, baselines, alerts, per-host lag;
//	                     optional bounded-memory sketched accounting
//	internal/sketch      streaming sketches behind the sketched monitor:
//	                     space-saving heavy hitters, Greenwald-Khanna
//	                     quantiles
//	internal/export      export sinks for finished CAGs: OTLP-JSON span
//	                     traces (file or HTTP), Graphviz DOT, canonical
//	                     text dumps
//	internal/cli         flag plumbing shared by the correlating CLIs
//	                     (-workers, -sealafter, -export)
//	internal/analysis    latency percentages, cross-run diffs, automated
//	                     bottleneck detector (§5.4, §7)
//	internal/baseline    naive and WAP5-style comparators (§6)
//	internal/testbed     simulated cluster standing in for the paper's
//	                     SystemTap-instrumented 8-node testbed (§5.1)
//	internal/rubis       the RUBiS-like three-tier workload (§5.1)
//	internal/experiments drivers regenerating every table/figure of §5
//	internal/groundtruth the §5.2 path-accuracy methodology
//
// Binaries: cmd/rubisgen (generate traces), cmd/precisetracer (offline
// correlator CLI), cmd/experiments (regenerate the evaluation),
// cmd/livemon (online monitor: in-process replay or network collector),
// cmd/traceagent (per-host collection agent feeding a livemon
// collector). Runnable walk-throughs live under examples/.
//
// # The streaming pipeline
//
// The paper's correlation algorithm is one pipeline, and this
// reproduction implements it once (internal/core/stream.go). Every
// execution mode is a configuration of the same streaming engine — the
// online Session pushes live records into it, the offline
// CorrelateTrace/CorrelateSources/CorrelateDir calls replay a recorded
// input through it (push every activity, close every host, drain), and
// Options.Workers merely sizes its correlation pool (1 = the sequential
// configuration):
//
//	Push / replay ──> incremental flow partition (flow.Incremental):
//	        each activity joins a component on arrival; components fuse
//	        when a TCP connection or context epoch links them. Where the
//	        online scan lacks global knowledge (a RECEIVE before its
//	        SEND) it unions more, never less — coarser shards stay exact.
//	seal ──> a component seals when no open host can extend it (every
//	        host owning one of its channel endpoints has closed — the
//	        completion watermark), or, with a seal horizon configured,
//	        when it has idled past the largest horizon of the hosts that
//	        could still extend it.
//	correlate ──> a bounded worker pool (Options.Workers) runs the
//	        unmodified sequential ranker+engine pass over each sealed
//	        component — the shard key guarantees independence, so the
//	        paper's algorithm itself is untouched.
//	emit ──> the watermark emitter releases finished CAGs in
//	        deterministic END-timestamp order, holding back any graph
//	        that a still-open stream or still-pending component could
//	        yet precede.
//
// # The two-stage session front
//
// Internally the engine is a two-stage pipeline joined by bounded ring
// buffers (internal/ring) rather than Go channels:
//
//	stage 1 (caller's goroutine): apply + partition + seal decisions
//	    │ jobs ring: sealed components, pushed in seal order
//	    ▼
//	worker pool: ranker+engine per sealed component (batched pulls)
//	    │ results ring: correlated shard results
//	    ▼
//	stage 2 (collector goroutine): result collection
//	    │ harvested back by stage 1 at drain/tick/close points
//	    ▼
//	watermark emitter (caller's goroutine): ordered CAG release
//
// The stage ownership contract: every *decision* lives on stage 1, only
// *work* crosses the rings. Stage 1 — the goroutine calling
// Push/Drain/Tick/CloseHost — owns the flow partition and makes every
// seal decision at deterministic points in the event stream; that
// cannot move, because sealing feeds back into partitioning (a sealed
// component is tombstoned, and a straggler touching its tombstone
// detaches as a late link — so *when* a seal happens, in event-stream
// time, shapes how later records partition). Workers own only sealed,
// therefore immutable, components. The stage-2 collector owns nothing
// but the result buffer it accumulates; stage 1 harvests that buffer —
// absorbing only shards that have actually finished — without ever
// blocking on the pool unless asked to (Drain/Close), which is what
// Session.Tick exposes: the non-blocking cadence a live ingest front
// uses so applying and correlating overlap.
//
// The rings are the handoff, chosen over channels for batch
// amortization: one mutex acquisition moves a run of sealed components
// (ring.PushBatch) or finished results (ring.PopBatch) instead of one
// synchronization per element, and a worker wakes to a batch of work
// under backlog instead of once per component. Capacity bounds give the
// same backpressure a bounded channel would — a stalled pool eventually
// blocks stage 1's PushBatch, which blocks Push, which (through the
// ingest queue) blocks TCP, exactly the paper's end-to-end flow control.
//
// None of this touches emitter determinism. Graph content is fixed at
// seal time (sealed components are immutable, and the ranker+engine
// pass is deterministic per component); emission *order* is fixed by
// the END-timestamp watermark, which counts sealed-but-in-flight
// components as pending and so never releases a graph that unfinished
// work could precede. The pipeline's only freedom is scheduling — which
// worker correlates which shard, and when results land in the collector
// — and the watermark makes scheduling unobservable: a Tick cadence
// shifts when a graph is released, never what it contains or its order,
// and the equivalence suites assert byte-identical output at every pool
// size, plain and under -race.
//
// Sealing is the one rule that decides both latency and safety. Purely
// close-driven sealing (the default) never guesses: nothing is
// correlated while an open stream could still change the decision, which
// makes offline results byte-identical to the historical sequential
// correlator (TestParallelEquivalence, TestParallelSessionEquivalence)
// at every pool size. A seal horizon (Options.SealAfter, measured in
// activity time, never wall clock) trades that guarantee for liveness: a
// component idle past its horizon is force-sealed (Result.ForcedSeals),
// quiet open streams bound the watermark by their own horizon, and the
// flow partition's bookkeeping for dispatched components is tombstoned
// then pruned, so a forever-open Session's memory tracks recently-active
// components. A straggler that violates the horizon's sender-liveness
// bound becomes a late link (Result.LateLinks): detached onto a fresh
// component — possibly splitting its request's CAG — never resurrecting
// a freed shard.
//
// Horizons are per host (Options.SealAfterByHost): a component inherits
// the largest horizon among the hosts that can still extend it, so one
// chronically lagging agent extends only its own components' deadlines
// while everyone else's still seal on the short default. Session.Heartbeat
// lets an idle-but-healthy agent advance the watermark (and the activity
// clock) without traffic, so long horizons need not delay the ordered
// output stream.
//
// Offline correlation is literally a replay into this engine: the input
// is pushed in order, every host is closed, and — when a horizon is
// configured — the replay drains on a fixed record cadence, so a recorded
// trace reproduces a continuous deployment's seals, splits and counters
// deterministically. The batch partition stage also exists standalone
// (flow.PartitionParallel) for shard-key analysis.
//
// There are no exceptions: even the PaperExactNoise ablation runs this
// engine. The literal Fig. 5 is_noise predicate asks whether a pending
// matching SEND exists anywhere in the window, and the flow partition is
// closed over channels — every SEND that could match a RECEIVE shares its
// ChanKey and therefore its component — so each shard's own window buffer
// answers the global question exactly (ranker.matchingSendVisible states
// the invariant; a debug assertion and a fuzz test in internal/flow
// enforce it). Exact mode therefore shards, scales with Workers, and
// supports seal horizons and heartbeats like every other mode.
//
// # Deployment
//
// The paper's deployment (§3.1) runs one kernel tracing agent per traced
// host, shipping TCP_TRACE streams to a central correlator. The
// networked shape of that deployment is:
//
//	traceagent (per host) ──TCP──> livemon -listen
//	    │                              │
//	    │ internal/transport.Agent     │ internal/transport.Collector
//	    │   binary batches,            │   per-host resume state,
//	    │   seq/ack, reconnect         │   exactly-once apply
//	    │                              ▼
//	    │                          core.Ingest (serialized front)
//	    │                              │ bounded op queue
//	    │                              ▼
//	    └── backpressure ◄──────── core.Session ──> live.Monitor
//
// Records travel as length-prefixed frames of the compact binary codec
// (activity.AppendBinary) with per-agent monotone sequence numbers;
// records and heartbeats share one sequence space. The collector applies
// only items above its per-host high-water mark, so delivery is
// at-least-once on the wire and exactly-once into the session: an agent
// replays its unacked tail after a reconnect, and a restarted agent
// re-offers its whole log (sequences are positional — the applied prefix
// is skipped). Backpressure is TCP itself: when correlation falls behind,
// the Ingest queue fills, collector handlers stop reading their sockets,
// and the agents' bounded unacked windows block the producers.
//
// Because the session's output depends only on per-host record order —
// which the sequence protocol preserves exactly — a networked run drains
// an OnGraph stream byte-identical to an in-process replay of the same
// logs (TestNetworkedEquivalence), no matter how connections interleave,
// bounce, or resume. Agent death degrades, never corrupts: with seal
// horizons configured, a dead host's components force-seal
// (Result.ForcedSeals), its staleness shows in Monitor.HostLags (the
// Delivered column is raw transport progress, fed by
// core.IngestOptions.OnApplied), and a too-late return is absorbed as
// Result.LateLinks.
//
// # The identity layer
//
// Every activity names its identities twice. The strings — hostname,
// program, the two endpoint IPs — exist for the render and report edges,
// and for nothing else. The hot path runs on dense symbols: both codecs
// (the text parser and the binary decoder) bind each record against the
// process-wide interner (activity.Syms) at the decode boundary, filling
// its packed key forms activity.CtxKey and activity.ChanKey. Everything
// between decode and CAG emission — the flow partition's union-find, the
// engine's message map, the session's per-host state, the live monitor's
// lag tables — keys on those flat integer structs; hashing one is a
// memhash over a few words, and the interner canonicalizes the strings
// so a million records share one copy of "web1" instead of pinning a
// million log-line buffers.
//
// Only the bounded identity vocabulary is interned, never the unbounded
// tuples: ephemeral ports make the channel space grow with connection
// count, so ChanKey is a self-contained packed struct (its Reverse is a
// field swap), and a forever-open collector's interner stays
// deployment-sized while flow.Incremental prunes per-channel state.
// Consumers that meet a hand-built record call activity.Bind lazily —
// binding is idempotent — so symbols are consistent process-wide
// regardless of where a record entered. One determinism rule follows:
// symbol numeric order is interning order, an accident of arrival, so
// any output ordering sorts by the interned string (Syms.Name), never by
// symbol value.
//
// # Batched ingest and record ownership
//
// Session.PushBatch feeds a run of records in order as one call — the
// shape a decoded transport frame arrives in — and core.Ingest.PushBatch
// moves a whole frame through the bounded queue as one operation instead
// of one hop per record. Batching changes only the queue traffic: the
// ingest goroutine applies batch records individually with the same
// drain cadence as single pushes, so a batched stream's output stays
// byte-identical to its unbatched equivalent. Errors remain sticky per
// host; the first failure silences the rest of that host's records
// within the batch and leaves other hosts untouched.
//
// # Export & live analytics
//
// Finished CAGs leave the pipeline through one composable contract:
// core.GraphSink. Options.Sinks (and IngestOptions.Sinks for the
// networked front) register any number of sinks on the session's
// emission chain; each finished graph is delivered to every sink, in
// registration order, on the emitter goroutine, in the same
// deterministic END-timestamp order the OnGraph callback gets (OnGraph
// is the single-callback special case and fires first). Registering
// any sink switches the session to streaming: Result.Graphs stays
// empty, exactly as with OnGraph; core.Collect is the sink that gathers
// graphs back into a slice when a consumer wants both. Ownership
// follows the pooled-record rules above: an emitted graph and its
// vertices are immutable from emission on, so a sink may retain the
// graph but must never mutate it — the underlying Records of a
// networked run return to the activity pool, which is why export sinks
// serialize eagerly in ConsumeGraph instead of deferring to Close.
//
// live.Monitor is itself a GraphSink, and internal/export provides the
// rest: an OTLP-JSON exporter (NDJSON file or batched OTLP/HTTP POST),
// a per-graph Graphviz DOT directory, and a canonical text dumper. Both
// CLIs wire them with -export kind=dest[,kind=dest...] via internal/cli.
// The OTLP mapping, one trace per CAG (export.Trace):
//
//	CAG                      OTLP span field
//	vertex                   span; name "TYPE host/program"
//	pattern signature        deterministic traceId (FNV-128a, 32 hex)
//	vertex index             deterministic spanId (FNV-64a, 16 hex)
//	context edge             parentSpanId + attribute cag.parent_edge=ctx
//	message edge             span link (always), and parentSpanId with
//	                         cag.parent_edge=msg when no context parent
//	local timestamp          startTimeUnixNano (raw node-local nanos;
//	                         cross-host skew stays visible, as in
//	                         cag.Timeline); end = latest direct child
//	ctx/chan/size            attributes cag.host, cag.program, cag.pid,
//	                         cag.tid, net.channel, cag.size_bytes
//	root vertex              adds cag.signature, cag.pattern,
//	                         cag.latency_ns, cag.vertices
//	forced seal / late link  span events cag.forced_seal, cag.late_link
//	                         on the root span
//
// The monitor's default accounting retains each interval's CAGs per
// signature and aggregates at interval close — exact, and memory grows
// with the interval's traffic. live.Config.Sketched bounds it: a
// space-saving sketch (sketch.TopK) tracks the top MaxPatterns
// signatures per interval with one incremental analysis.Accumulator
// each (error ≤ N/MaxPatterns, heavy hitters never lost), baselines are
// evicted least-recently-seen beyond 2×MaxPatterns, and lifetime
// latency/share distributions ride Greenwald-Khanna quantile sketches
// (sketch.Quantile, rank error ≤ εN) surfaced by Monitor.QuantileTable.
// Interval request counts and mean latency stay exact scalars in either
// mode. With capacity to spare the sketched output is byte-identical to
// exact mode (TestMonitorSketchedMatchesExact); under pressure it
// degrades only the per-pattern view, within the sketch bounds, and
// Monitor.Footprint exposes the state sizes the capacity soak gate
// (TestMonitorSketchedCapacity) holds flat.
//
// Ownership is part of the contract. The collector decodes every frame
// into pooled records (activity.NewRecord), the session copies whatever
// it keeps at apply time, and IngestOptions.Release — wired to
// activity.ReleaseRecord in the networked deployment — returns each
// batch record to the pool once the ingest goroutine is done with it,
// applied or skipped. A PushBatch caller owns neither the slice nor the
// records after the call succeeds; single-record Push callers keep
// ownership of theirs.
package repro

// Package repro is a from-scratch Go reproduction of "Precise Request
// Tracing and Performance Debugging for Multi-tier Services of Black
// Boxes" (Zhang, Zhihong; Zhan, Jianfeng; Li, Yong; Wang, Lei; Meng, Dan;
// Sang, Bo — DSN 2009): the PreciseTracer system.
//
// The library derives exact per-request causal paths (Component Activity
// Graphs) for multi-tier services treated as black boxes, using only
// application-independent kernel observations: timestamps, end-to-end TCP
// channels and process/thread contexts. On top of the CAGs it implements
// the paper's performance-debugging workflow — causal path patterns,
// average paths, and component latency percentages.
//
// Layout:
//
//	internal/core        Correlator façade (the public entry point), both
//	                     the sequential pass and the sharded concurrent
//	                     pipeline (Options.Workers > 1)
//	internal/flow        shard-key computation: union-find closure over
//	                     TCP channels and context epochs
//	internal/ranker      candidate selection: sliding window, Rule 1/2,
//	                     is_noise, concurrency-disturbance swap (§4.1, §4.3)
//	internal/engine      CAG construction: mmap/cmap, n-to-n SEND/RECEIVE
//	                     merging, thread-reuse check (§4.2)
//	internal/cag         the CAG abstraction, patterns, aggregation,
//	                     latency breakdown (§3.2)
//	internal/activity    activity model and TCP_TRACE wire format (§3.1)
//	internal/analysis    latency percentages, cross-run diffs, automated
//	                     bottleneck detector (§5.4, §7)
//	internal/baseline    naive and WAP5-style comparators (§6)
//	internal/testbed     simulated cluster standing in for the paper's
//	                     SystemTap-instrumented 8-node testbed (§5.1)
//	internal/rubis       the RUBiS-like three-tier workload (§5.1)
//	internal/experiments drivers regenerating every table/figure of §5
//	internal/groundtruth the §5.2 path-accuracy methodology
//
// Binaries: cmd/rubisgen (generate traces), cmd/precisetracer (offline
// correlator CLI), cmd/experiments (regenerate the evaluation). Runnable
// walk-throughs live under examples/.
//
// # Concurrency architecture
//
// The paper's correlator is sequential; this reproduction adds a sharded
// concurrent mode (core.Options{Workers, ShardBy, BatchSize}) for batch
// traces, keyed on three guarantees:
//
//   - Shard key. Two activities can interact only through the engine's
//     mmap (same TCP connection) or cmap (same execution context), so
//     internal/flow closes the trace under those relations with a
//     union-find and correlates each connected component independently.
//     ShardByFlow additionally breaks context chains at request-epoch
//     boundaries (thread-pool reuse must not fuse unrelated requests);
//     ShardByContext keeps whole context lifetimes together.
//   - Merge order. Each shard runs the unmodified ranker+engine pair; the
//     merge stage re-sorts finished CAGs by END timestamp — exactly the
//     sequential completion order — so Result.Graphs and the OnGraph
//     stream are byte-identical to the sequential pass on well-formed
//     traces (enforced by TestParallelEquivalence).
//   - Backpressure. Components travel to the worker pool in batches over
//     a bounded channel (2×Workers in flight), so the dispatcher blocks
//     when workers fall behind and the number of live rankers/engines
//     stays proportional to Workers, not to the trace size.
//
// The partition stage itself is parallel (flow.PartitionParallel):
// context epochs are host-local, so per-host scans run concurrently and
// a final union pass stitches the cross-host channel links — output
// byte-identical to the sequential scan.
//
// # Online sharding (sharded Sessions)
//
// Push-mode Sessions honour Options.Workers too (core/session_parallel.go).
// The online safety rule — never emit while an open stream could change
// the decision — is preserved by moving it from activities to components:
//
//   - Incremental partition. flow.Incremental assigns each pushed
//     activity to a flow component as it arrives and fuses components
//     when a TCP connection or context epoch links them (a merge
//     callback folds the buffers). Where the batch scan consults global
//     knowledge the online scan cannot have (a RECEIVE arriving before
//     its SEND), it unions more, never less — coarser shards stay exact.
//   - Completion watermarks. An activity can only join a component from
//     a host owning one of the component's channel endpoints, so once
//     every contributing host has closed (CloseHost), the component is
//     sealed: handed to a worker-pool running the unmodified sequential
//     ranker+engine over it.
//   - Watermark emitter. Finished CAGs are released in deterministic
//     END-timestamp order, held back while any pending component or open
//     stream could still produce an earlier END. The full emitted
//     sequence is byte-identical to the sequential Session's for the
//     same push order (TestParallelSessionEquivalence); mid-run, Drain
//     releases an order-consistent prefix that grows as streams close.
//
// # Continuous operation (forever-open sessions)
//
// Close-driven sealing alone starves an always-on deployment: agents
// that never restart never call CloseHost, so nothing seals and
// flow.Incremental's interning maps remember every connection ever
// seen. Options.SealAfter > 0 is the opt-in continuous mode replacing
// the old "cycle one Session per agent generation" workaround:
//
//   - Activity-time seal horizon. At each Drain, a component whose
//     newest activity has fallen more than SealAfter behind the newest
//     pushed timestamp is force-sealed and correlated even though its
//     hosts are still open (Result.ForcedSeals); the watermark treats
//     quiet open streams as bounded by the same horizon, so emission
//     advances. Staleness is measured on pushed timestamps, never wall
//     clock — replays stay deterministic and testable.
//   - Pruning with tombstones. A dispatched component's root is
//     tombstoned in flow.Incremental and its dir/epoch/ctxNode entries
//     are deleted one horizon later, bounding memory by recently-active
//     components. A straggler that resolves to a tombstoned root — the
//     sender-liveness bound was violated — is counted in
//     Result.LateLinks and detached onto a fresh component instead of
//     resurrecting the freed shard.
//   - The tradeoff. A forced seal gives up the no-guess guarantee for
//     exactly the components it seals: a straggler splits its request's
//     CAG (and may regress the emitted END order, which live.Monitor
//     counts in OutOfOrder). SealAfter = 0 keeps today's strictly
//     close-driven, byte-identical behaviour.
//
// PaperExactNoise still forces the sequential pass (the Fig. 5 predicate
// reads the global window buffer); that degradation is surfaced in
// Result.SequentialFallback instead of happening silently.
package repro

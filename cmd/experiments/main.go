// Command experiments regenerates the paper's evaluation tables and
// figures (§5) from the simulated testbed.
//
// Usage:
//
//	experiments -list
//	experiments -run all -scale 0.1
//	experiments -run fig15,fig17 -scale 1.0     # full-length sessions
//
// Scale multiplies session durations only; client counts, think times and
// service demands stay at paper values, so saturation points are preserved.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		runID = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		scale = flag.Float64("scale", 0.1, "session duration scale (1.0 = full paper sessions)")
	)
	flag.Parse()

	if *list {
		for _, s := range experiments.All {
			fmt.Printf("%-6s %s\n", s.ID, s.Title)
		}
		return nil
	}

	var specs []*experiments.Spec
	if *runID == "all" {
		for i := range experiments.All {
			specs = append(specs, &experiments.All[i])
		}
	} else {
		for _, id := range strings.Split(*runID, ",") {
			s := experiments.ByID(strings.TrimSpace(id))
			if s == nil {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			specs = append(specs, s)
		}
	}

	for _, s := range specs {
		start := time.Now()
		tbl, err := s.Run(*scale)
		if err != nil {
			return fmt.Errorf("%s: %w", s.ID, err)
		}
		fmt.Println(tbl.Render())
		fmt.Printf("(%s took %v)\n\n", s.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

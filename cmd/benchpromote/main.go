// benchpromote refreshes the repo's checked-in BENCH_pipeline.json from
// a downloaded CI bench artifact (`make bench-promote`).
//
// The CI bench job uploads an artifact named "bench" holding the
// BENCH_pipeline.json its TestPipelineSpeedupTrajectory run produced plus
// the raw one-shot benchmark log (bench.txt). Promoting a run means:
//
//  1. validate the artifact's BENCH_pipeline.json — it must parse and
//     carry a non-empty speedup matrix;
//  2. fold the bench.txt BenchmarkSessionPush allocs/op figures into the
//     matching session_push entries (the trajectory test measures them
//     with ReadMemStats; the -benchmem figures are the ones the
//     bench-allocs gate compares against, so the promoted baseline uses
//     them when present);
//  3. rewrite the target BENCH_pipeline.json, indented and stable.
//
// Usage:
//
//	benchpromote -artifact <dir> [-out BENCH_pipeline.json]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The artifact schema mirrors pipeline_bench_test.go's benchReport. Only
// the fields benchpromote inspects are typed; everything else rides
// through the RawMessage round-trip untouched.
type report struct {
	Benchmark   string        `json:"benchmark"`
	Entries     []matrixEntry `json:"entries"`
	SessionPush []sessionPush `json:"session_push,omitempty"`

	rest map[string]json.RawMessage
}

// matrixEntry types the speedup-matrix fields benchpromote validates:
// every promoted entry must carry a sane worker count and speedup, and
// its efficiency field must agree with speedup/workers — older artifacts
// without the field get it folded in here.
type matrixEntry struct {
	Workers    int     `json:"workers"`
	Speedup    float64 `json:"speedup_vs_seq"`
	Efficiency float64 `json:"efficiency"`

	rest map[string]json.RawMessage
}

type sessionPush struct {
	Workers     int    `json:"workers"`
	SealAfterMs int    `json:"seal_after_ms"`
	AllocsPerOp uint64 `json:"allocs_per_op,omitempty"`

	rest map[string]json.RawMessage
}

// benchVariant maps one BenchmarkSessionPush sub-benchmark name in
// bench.txt onto the session_push entry it measures.
var benchVariants = map[string]struct{ workers, sealMs int }{
	"seq-close-driven":   {1, 0},
	"seq-continuous":     {1, 250},
	"sharded-continuous": {4, 250},
}

func main() {
	artifact := flag.String("artifact", "", "directory holding the CI bench artifact (BENCH_pipeline.json + bench.txt)")
	out := flag.String("out", "BENCH_pipeline.json", "baseline file to refresh")
	flag.Parse()
	if *artifact == "" {
		fmt.Fprintln(os.Stderr, "benchpromote: -artifact is required (download the CI \"bench\" artifact and unpack it)")
		os.Exit(2)
	}
	if err := promote(*artifact, *out); err != nil {
		fmt.Fprintf(os.Stderr, "benchpromote: %v\n", err)
		os.Exit(1)
	}
}

func promote(artifact, out string) error {
	src := filepath.Join(artifact, "BENCH_pipeline.json")
	raw, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	rep, err := parseReport(raw)
	if err != nil {
		return fmt.Errorf("%s: %w", src, err)
	}
	if len(rep.Entries) == 0 {
		return fmt.Errorf("%s: empty speedup matrix; refusing to promote", src)
	}
	folded := 0
	for i := range rep.Entries {
		e := &rep.Entries[i]
		if e.Workers < 1 {
			return fmt.Errorf("%s: entry %d: workers %d < 1", src, i, e.Workers)
		}
		if e.Speedup <= 0 {
			return fmt.Errorf("%s: entry %d: speedup_vs_seq %g must be positive", src, i, e.Speedup)
		}
		want := e.Speedup / float64(e.Workers)
		if drift := e.Efficiency - want; drift > 1e-9 || drift < -1e-9 {
			e.Efficiency = want
			folded++
		}
	}
	if folded > 0 {
		fmt.Printf("benchpromote: folded efficiency = speedup/workers into %d matrix entries\n", folded)
	}

	// bench.txt is optional (the artifact always has it, but promoting a
	// hand-built report without one is fine) — without it the trajectory
	// test's own allocation figures stand.
	if allocs, err := parseBenchAllocs(filepath.Join(artifact, "bench.txt")); err == nil {
		folded := 0
		for name, a := range allocs {
			v := benchVariants[name]
			for i := range rep.SessionPush {
				e := &rep.SessionPush[i]
				if e.Workers == v.workers && e.SealAfterMs == v.sealMs {
					e.AllocsPerOp = a
					folded++
				}
			}
		}
		fmt.Printf("benchpromote: folded %d allocs/op figures from bench.txt\n", folded)
	} else if !os.IsNotExist(err) {
		return err
	}

	buf, err := rep.marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchpromote: %s <- %s (%d matrix entries, %d session_push entries)\n",
		out, artifact, len(rep.Entries), len(rep.SessionPush))
	return nil
}

// parseReport decodes the typed fields and keeps every other top-level
// key verbatim, so promoting never drops fields this tool predates.
func parseReport(raw []byte) (*report, error) {
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, &rep.rest); err != nil {
		return nil, err
	}
	var pushRaw []map[string]json.RawMessage
	if sp, ok := rep.rest["session_push"]; ok {
		if err := json.Unmarshal(sp, &pushRaw); err != nil {
			return nil, err
		}
	}
	for i := range rep.SessionPush {
		rep.SessionPush[i].rest = pushRaw[i]
	}
	delete(rep.rest, "session_push")
	var entriesRaw []map[string]json.RawMessage
	if en, ok := rep.rest["entries"]; ok {
		if err := json.Unmarshal(en, &entriesRaw); err != nil {
			return nil, err
		}
	}
	for i := range rep.Entries {
		rep.Entries[i].rest = entriesRaw[i]
	}
	delete(rep.rest, "entries")
	return &rep, nil
}

func (r *report) marshal() ([]byte, error) {
	top := make(map[string]any, len(r.rest)+2)
	for k, v := range r.rest {
		top[k] = v
	}
	entries := make([]map[string]any, len(r.Entries))
	for i, e := range r.Entries {
		m := make(map[string]any, len(e.rest)+1)
		for k, v := range e.rest {
			m[k] = v
		}
		m["efficiency"] = e.Efficiency
		entries[i] = m
	}
	top["entries"] = entries
	if len(r.SessionPush) > 0 {
		push := make([]map[string]any, len(r.SessionPush))
		for i, e := range r.SessionPush {
			m := make(map[string]any, len(e.rest))
			for k, v := range e.rest {
				m[k] = v
			}
			if e.AllocsPerOp > 0 {
				m["allocs_per_op"] = e.AllocsPerOp
			}
			push[i] = m
		}
		top["session_push"] = push
	}
	buf, err := json.MarshalIndent(top, "", " ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// parseBenchAllocs extracts allocs/op per BenchmarkSessionPush variant
// from a `go test -bench -benchmem` log line, e.g.
//
//	BenchmarkSessionPush/seq-continuous  1  41889787 ns/op  ... 139041 allocs/op
func parseBenchAllocs(path string) (map[string]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]uint64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "BenchmarkSessionPush/") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "BenchmarkSessionPush/")
		// Parallel benchmarks append -N (GOMAXPROCS) to the name.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, known := benchVariants[name]; !known {
			continue
		}
		for i := len(fields) - 1; i > 0; i-- {
			if fields[i] == "allocs/op" {
				n, err := strconv.ParseUint(fields[i-1], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad allocs/op for %s: %w", path, name, err)
				}
				out[name] = n
				break
			}
		}
	}
	return out, sc.Err()
}

// Command precisetracer is the offline Correlator CLI: it reads a
// TCP_TRACE activity log (e.g. produced by rubisgen), derives the causal
// path of every request, classifies causal path patterns, and prints the
// component latency breakdown used for performance debugging.
//
// Usage:
//
//	precisetracer -in trace.log
//	precisetracer -in trace.log -window 10ms -patterns -report
//	precisetracer -in trace.log -accuracy          # needs -truth traces
//	precisetracer -in trace.log -dump 3            # show the first CAGs
//	precisetracer -in trace.log -export otlp=spans.ndjson,dot=dots/
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/activity"
	"repro/internal/analysis"
	"repro/internal/cag"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/groundtruth"
	"repro/internal/ranker"
	htmlreport "repro/internal/report"
)

func main() { cli.Main("precisetracer", run) }

func run() error {
	var (
		in        = flag.String("in", "", "merged TCP_TRACE log file")
		inDir     = flag.String("indir", "", "directory of per-host logs (<host>.trace[.gz]); streams with bounded memory")
		window    = flag.Duration("window", 10*time.Millisecond, "sliding time window (§4.1; any value > 0)")
		entry     = flag.String("entryports", "80", "comma-separated first-tier service ports for BEGIN/END classification")
		deny      = flag.String("filter-programs", "", "comma-separated program names to filter as noise (e.g. sshd,rlogind)")
		patterns  = flag.Bool("patterns", true, "print causal path patterns")
		report    = flag.Bool("report", true, "print per-pattern latency percentages")
		dumpN     = flag.Int("dump", 0, "dump the first N CAGs")
		accuracy  = flag.Bool("accuracy", false, "score against ground-truth annotations in the trace")
		paperMode = flag.Bool("paper-exact-noise", false, "use the literal Fig. 5 is_noise predicate")
		skewEst   = flag.Bool("estimate-skew", false, "estimate per-node clock offsets from message edges")
		htmlOut   = flag.String("html", "", "write a self-contained HTML report to this file")
		hops      = flag.Bool("hops", false, "print per-component latency distributions (p50/p95/p99)")
		outliers  = flag.Int("outliers", 0, "show the N slowest requests and their dominant component")
		lint      = flag.Bool("lint", false, "check the trace for integrity problems before correlating")
		shardBy   = flag.String("shardby", "flow", "flow-component partition policy: flow (request epochs) or context (whole context lifetimes)")
		batch     = flag.Int("batch", 0, "retained for compatibility; the streaming engine dispatches flow components individually, so this is validated but ignored")
	)
	shared := cli.RegisterCorrelator(flag.CommandLine)
	pprofAddr := cli.RegisterPprof(flag.CommandLine)
	flag.Parse()
	if *in == "" && *inDir == "" {
		return cli.Usagef("-in or -indir is required")
	}
	if *window <= 0 {
		return cli.Usagef("-window must be > 0 (got %v)", *window)
	}
	if *batch < 0 {
		return cli.Usagef("-batch must be >= 0 (got %d)", *batch)
	}
	if *dumpN < 0 {
		return cli.Usagef("-dump must be >= 0 (got %d)", *dumpN)
	}
	if *outliers < 0 {
		return cli.Usagef("-outliers must be >= 0 (got %d)", *outliers)
	}

	ports, err := parsePorts(*entry)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	var mode core.ShardMode
	switch *shardBy {
	case "flow":
		mode = core.ShardByFlow
	case "context":
		mode = core.ShardByContext
	default:
		return cli.Usagef("unknown -shardby %q (want flow or context)", *shardBy)
	}
	opts := core.Options{
		Window:          *window,
		EntryPorts:      ports,
		PaperExactNoise: *paperMode,
		ShardBy:         mode,
		BatchSize:       *batch,
	}
	exports, err := shared.Apply(&opts)
	if err != nil {
		return err
	}
	if bound, stopPprof, err := cli.StartPprof(*pprofAddr); err != nil {
		return err
	} else if bound != "" {
		defer stopPprof()
		fmt.Fprintf(os.Stderr, "pprof: serving profiles on http://%s/debug/pprof/\n", bound)
	}
	// Registering any sink streams graphs away from Result.Graphs, but
	// the offline CLI's analyses all want the full set — collect them
	// back alongside the export sinks.
	var collect core.Collect
	if exports.Active() {
		opts.Sinks = append(opts.Sinks, &collect)
	}
	if *deny != "" {
		m := make(map[string]bool)
		for _, p := range strings.Split(*deny, ",") {
			m[strings.TrimSpace(p)] = true
		}
		opts.Filter = ranker.AttributeFilter{DenyPrograms: m}.Func()
	}

	var trace []*activity.Activity
	var res *core.Result
	if *inDir != "" {
		res, err = core.New(opts).CorrelateDir(*inDir)
		if err != nil {
			return err
		}
		if *accuracy {
			perHost, err := activity.ReadHostLogs(*inDir)
			if err != nil {
				return err
			}
			trace = activity.Merge(perHost)
		}
	} else {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		trace, err = activity.ReadAll(f)
		if err != nil {
			return err
		}
		opts.IPToHost = activity.InferIPToHost(trace)
		if *lint {
			issues := activity.Lint(trace)
			for _, is := range issues {
				fmt.Println("lint:", is)
			}
			if n := len(activity.LintErrors(issues)); n > 0 {
				fmt.Printf("lint: %d errors (correlation may produce deformed CAGs)\n", n)
			} else if len(issues) == 0 {
				fmt.Println("lint: trace is clean")
			}
		}
		res, err = core.New(opts).CorrelateTrace(trace)
		if err != nil {
			return err
		}
	}
	graphs := res.Graphs
	if exports.Active() {
		graphs = collect.Graphs
		if err := exports.Close(); err != nil {
			return err
		}
	}

	fmt.Printf("activities: %d   causal paths: %d   unfinished: %d   correlation time: %v\n",
		res.Activities, len(graphs), res.Unfinished(), res.CorrelationTime.Round(time.Millisecond))
	fmt.Printf("ranker: delivered=%d filtered=%d is_noise=%d swaps=%d forced=%d peak_buffer=%d\n",
		res.Ranker.Delivered, res.Ranker.FilterDropped, res.Ranker.NoiseDropped,
		res.Ranker.Swaps, res.Ranker.ForcedPops, res.Ranker.PeakBuffered)
	fmt.Printf("engine: merged_sends=%d partial_recvs=%d discards(s/r/e)=%d/%d/%d thread_reuse_breaks=%d\n",
		res.Engine.MergedSends, res.Engine.PartialReceives,
		res.Engine.DiscardedSends, res.Engine.DiscardedReceives, res.Engine.DiscardedEnds,
		res.Engine.ThreadReuseBreaks)
	if res.ForcedSeals > 0 || res.LateLinks > 0 {
		// The offline replay honours -sealafter, reproducing a continuous
		// deployment's seals and splits deterministically from a recorded
		// trace.
		fmt.Printf("continuous mode: %d forced seals, %d late links (CAGs may be split; see core.Options.SealAfter)\n",
			res.ForcedSeals, res.LateLinks)
	}
	if res.Shards > 0 {
		// The streaming engine buffers every unsealed component and holds
		// finished CAGs through the watermark; the correlator-state peaks
		// below are per-shard maxima, not the process footprint.
		fmt.Printf("memory estimate: %.2f MB largest-shard correlator state across %d shards (peak buffered %d activities, %d resident vertices; unsealed components stay resident — see -sealafter)\n",
			float64(res.EstimatedBytes())/(1<<20), res.Shards, res.PeakBufferedActivities, res.PeakResidentVertices)
	} else {
		fmt.Printf("memory estimate: %.2f MB (peak buffered %d activities, %d resident vertices)\n",
			float64(res.EstimatedBytes())/(1<<20), res.PeakBufferedActivities, res.PeakResidentVertices)
	}
	if exports.Active() {
		fmt.Print(exports.Summary())
	}

	if *accuracy {
		truth := groundtruth.FromTrace(trace)
		if truth.Requests() == 0 {
			return fmt.Errorf("trace has no ground-truth annotations (generate with rubisgen -truth)")
		}
		fmt.Printf("accuracy: %v\n", truth.Evaluate(graphs))
	}

	if *patterns {
		fmt.Println("\ncausal path patterns:")
		for i, p := range cag.Classify(graphs) {
			fmt.Printf("%3d. %-44s x%d\n", i+1, p.Name, p.Count())
		}
	}

	if *report || *htmlOut != "" {
		reports, err := analysis.Report(graphs)
		if err != nil {
			return err
		}
		if *report {
			fmt.Println("\nlatency percentages per pattern (average causal paths):")
			for _, r := range reports {
				fmt.Printf("  %s\n", r)
			}
		}
		if *htmlOut != "" {
			f, err := os.Create(*htmlOut)
			if err != nil {
				return err
			}
			data := htmlreport.Build("PreciseTracer: "+flagSourceName(*in, *inDir), res, reports, nil)
			if err := htmlreport.Render(f, data); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("\nHTML report written to %s\n", *htmlOut)
		}
	}

	var est *analysis.SkewEstimate
	if *skewEst && len(graphs) > 0 {
		est = analysis.EstimateOffsets(graphs, graphs[0].Root().Ctx.Host)
	}
	if est != nil {
		fmt.Printf("\nestimated clock offsets (relative to %s):\n", est.Reference)
		for host, off := range est.Offsets {
			fmt.Printf("  %-10s %+v\n", host, off)
		}
	}

	if *hops {
		fmt.Println("\ncomponent latency distributions:")
		if est != nil {
			fmt.Println("(skew-corrected)")
		}
		fmt.Print(analysis.HopTable(analysis.HopDistributions(graphs, est)))
	}

	if *outliers > 0 {
		fmt.Printf("\n%d slowest requests:\n", *outliers)
		for i, o := range analysis.Outliers(graphs, *outliers, est) {
			fmt.Printf("%3d. %s\n", i+1, o)
		}
	}

	for i := 0; i < *dumpN && i < len(graphs); i++ {
		fmt.Printf("\nCAG %d (latency %v):\n%s", i, graphs[i].Latency(), cag.Dump(graphs[i]))
		fmt.Print(cag.Timeline(graphs[i], 100))
	}
	return nil
}

func flagSourceName(in, inDir string) string {
	if inDir != "" {
		return inDir
	}
	return in
}

func parsePorts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("entry port %q: %w", part, err)
		}
		out = append(out, p)
	}
	return out, nil
}

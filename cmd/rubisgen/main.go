// Command rubisgen runs the simulated RUBiS testbed and writes its
// TCP_TRACE activity log — the synthetic equivalent of collecting the
// paper's kernel traces from the three-tier deployment of Fig. 7.
//
// Usage:
//
//	rubisgen -clients 500 -mix browse -scale 0.1 -o trace.log
//	rubisgen -clients 800 -noise -skew 500ms -truth -o trace.log
//
// With -truth the log lines carry "# req=N msg=M" ground-truth annotations
// (the paper's modified-RUBiS request IDs) so precisetracer -accuracy can
// score itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/activity"
	"repro/internal/rubis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rubisgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		clients    = flag.Int("clients", 300, "concurrent emulated clients (paper: 100-1000)")
		mix        = flag.String("mix", "browse", "workload mix: browse | default")
		scale      = flag.Float64("scale", 0.05, "session duration scale (1.0 = paper's 2min+7.5min+1min)")
		maxThreads = flag.Int("maxthreads", 40, "JBoss MaxThreads (paper default 40; fix is 250)")
		noise      = flag.Bool("noise", false, "run rlogin/ssh/MySQL-client noise generators (§5.3.3)")
		skew       = flag.Duration("skew", 0, "max pairwise clock skew across traced nodes (§5.2: 1ms-500ms)")
		drift      = flag.Float64("drift", 0, "clock drift in ppm")
		seed       = flag.Int64("seed", 1, "deterministic run seed")
		truth      = flag.Bool("truth", false, "append ground-truth annotations to each record")
		out        = flag.String("o", "-", "output file (- for stdout)")
		splitDir   = flag.String("splitdir", "", "write per-host logs (<host>.trace) into this directory instead of one merged file")
		gz         = flag.Bool("gzip", false, "gzip per-host logs (with -splitdir)")
		ejbDelay   = flag.Duration("fault-ejb-delay", 0, "inject a random delay (this mean) into the second tier")
		dbLock     = flag.Bool("fault-db-lock", false, "lock the items table (serialise its queries)")
		netFault   = flag.Bool("fault-ejb-net", false, "degrade the app node NIC to 10 Mbps")
	)
	flag.Parse()

	cfg := rubis.DefaultConfig(*clients)
	cfg.Scale = *scale
	cfg.MaxThreads = *maxThreads
	cfg.Noise = *noise
	cfg.Seed = *seed
	cfg.Skew.MaxSkew = *skew
	cfg.Skew.DriftPPM = *drift
	switch *mix {
	case "browse":
		cfg.Mix = rubis.BrowseOnly
	case "default":
		cfg.Mix = rubis.Default
	default:
		return fmt.Errorf("unknown mix %q (browse|default)", *mix)
	}
	cfg.Faults.EJBDelay = *ejbDelay
	cfg.Faults.DBLock = *dbLock
	if *dbLock {
		cfg.Faults.DBLockHold = 4 * time.Millisecond
	}
	if *netFault {
		cfg.Faults.AppNetBandwidth = 1_250_000
	}

	res, err := rubis.Run(cfg)
	if err != nil {
		return err
	}

	if *splitDir != "" {
		if err := activity.WriteHostLogs(*splitDir, res.PerHost, *truth, *gz); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr,
			"rubisgen: %d clients (%s), %d requests, %d activities (%d noise) -> %s/<host>.trace\n",
			*clients, cfg.Mix, res.Metrics.TotalCompleted, len(res.Trace), res.NoiseActivities, *splitDir)
		return nil
	}

	var f *os.File
	if *out == "-" {
		f = os.Stdout
	} else {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	w := activity.NewWriter(f, *truth)
	for _, a := range res.Trace {
		if err := w.Write(a); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"rubisgen: %d clients (%s), %d requests completed, throughput %.1f req/s, avg RT %v\n",
		*clients, cfg.Mix, res.Metrics.TotalCompleted, res.Metrics.Throughput(),
		res.Metrics.AvgResponseTime().Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "rubisgen: wrote %d activities (%d noise) to %s\n",
		w.Count(), res.NoiseActivities, *out)
	return nil
}

// Command traceagent is the per-host collection agent of the networked
// deployment: it ships TCP_TRACE records to a livemon collector
// (livemon -listen) over the transport tier's sequenced, resumable
// protocol. In the paper's deployment the records would come from the
// kernel tracing module; here they come from per-host log files — the
// loopback stand-in that exercises the identical wire path.
//
// One traceagent process can ship every host log in a directory (one
// agent connection per host), or a single host's with -host.
//
// Usage:
//
//	rubisgen -clients 300 -scale 0.1 -splitdir traces/
//	livemon -listen 127.0.0.1:9411 -hosts 'web=10.0.0.1,...' &
//	traceagent -addr 127.0.0.1:9411 -indir traces/ -heartbeat 25ms
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/activity"
	"repro/internal/transport"
)

var errUsage = errors.New("invalid flag value")

func usagef(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errUsage}, args...)...)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "traceagent:", err)
		if errors.Is(err, errUsage) {
			flag.Usage()
		}
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "", "collector address (required; see livemon -listen)")
		inDir     = flag.String("indir", "", "directory of per-host logs (required)")
		host      = flag.String("host", "", "ship only this host's log (default: every host in -indir)")
		batch     = flag.Int("batch", 256, "records per batch frame")
		flush     = flag.Duration("flush", 50*time.Millisecond, "batching latency ceiling")
		maxUnack  = flag.Int("maxunacked", 4096, "unacknowledged record window (backpressure bound)")
		heartbeat = flag.Duration("heartbeat", 0, "liveness cadence in activity time: assert progress at this interval of the host's own clock so quiet streams do not stall the collector; 0 = no heartbeats")
		wallbeat  = flag.Duration("wallbeat", 0, "wall-clock liveness cadence: re-assert the newest offered timestamp at this real-time interval, so a fully idle host (no records flowing) still proves its agent is alive; 0 = off")
	)
	flag.Parse()
	if *addr == "" {
		return usagef("-addr is required")
	}
	if *inDir == "" {
		return usagef("-indir is required")
	}
	if *batch <= 0 || *maxUnack <= 0 {
		return usagef("-batch and -maxunacked must be > 0")
	}
	if *flush <= 0 {
		return usagef("-flush must be > 0 (got %v)", *flush)
	}
	if *heartbeat < 0 {
		return usagef("-heartbeat must be >= 0 (got %v)", *heartbeat)
	}
	if *wallbeat < 0 {
		return usagef("-wallbeat must be >= 0 (got %v)", *wallbeat)
	}

	// ReadHostLogs assigns the same record IDs as an offline replay of the
	// same directory, so a networked run's output is comparable
	// byte-for-byte with livemon -indir.
	perHost, err := activity.ReadHostLogs(*inDir)
	if err != nil {
		return err
	}
	if *host != "" {
		recs, ok := perHost[*host]
		if !ok {
			return usagef("-host %q has no log in %s", *host, *inDir)
		}
		perHost = map[string][]*activity.Activity{*host: recs}
	}
	var hosts []string
	for h := range perHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for _, h := range hosts {
		h, recs := h, perHost[h]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ship(*addr, h, recs, *batch, *flush, *maxUnack, *heartbeat, *wallbeat); err != nil {
				fail(fmt.Errorf("%s: %w", h, err))
			} else {
				fmt.Printf("agent %s: shipped %d records\n", h, len(recs))
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// ship runs one host's agent: offer every record in log order, heartbeat
// on the host's own activity clock, then the CLOSE handshake. With
// wallbeat > 0 a real-time timer re-asserts the newest offered timestamp
// too, so a host whose stream has gone quiet — or never produced a
// record at all — keeps proving its agent is alive instead of stalling
// the collector's liveness view.
func ship(addr, host string, recs []*activity.Activity, batch int, flush time.Duration, maxUnack int, heartbeat, wallbeat time.Duration) error {
	a, err := transport.NewAgent(transport.AgentConfig{
		Addr: addr, Host: host,
		BatchSize: batch, FlushInterval: flush, MaxUnacked: maxUnack,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	// latest is the newest activity timestamp this agent has offered; the
	// wall-clock timer re-asserts it. Re-asserting is always safe: the
	// session treats a heartbeat as "nothing older than ts will follow"
	// and ignores regressions, so even a beat that races a concurrent
	// Record only repeats an already-made promise.
	var latest atomic.Int64
	if wallbeat > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(wallbeat)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					if err := a.Heartbeat(time.Duration(latest.Load())); err != nil {
						return // agent dead or closed; the main loop surfaces it
					}
				}
			}
		}()
	}
	var lastBeat time.Duration
	for _, r := range recs {
		if err := a.Record(r); err != nil {
			return err
		}
		if r.Timestamp > time.Duration(latest.Load()) {
			latest.Store(int64(r.Timestamp))
		}
		if heartbeat > 0 && r.Timestamp >= lastBeat+heartbeat {
			lastBeat = r.Timestamp
			if err := a.Heartbeat(r.Timestamp); err != nil {
				return err
			}
		}
	}
	return a.Close()
}

// Command livemon replays per-host TCP_TRACE logs through the online
// correlator in arrival order and runs the live monitor over the resulting
// CAG stream — what a production deployment of PreciseTracer would do
// continuously.
//
// Usage:
//
//	rubisgen -clients 300 -scale 0.1 -splitdir traces/
//	livemon -indir traces/ -interval 5s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/activity"
	"repro/internal/analysis"
	"repro/internal/cag"
	"repro/internal/core"
	"repro/internal/live"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livemon:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		inDir     = flag.String("indir", "", "directory of per-host logs (required)")
		window    = flag.Duration("window", 10*time.Millisecond, "ranker sliding window")
		interval  = flag.Duration("interval", 5*time.Second, "monitor aggregation interval (trace time)")
		baseline  = flag.Int("baseline", 3, "intervals used to learn the healthy baseline")
		threshold = flag.Float64("threshold", 8, "alert threshold in latency-share percentage points")
		entryPort = flag.Int("entryport", 80, "first-tier service port")
		chunk     = flag.Int("chunk", 256, "records pushed between drain rounds")
		workers   = flag.Int("workers", 1, "correlation workers; >1 shards the push-mode session per flow component, 0 uses all CPUs")
	)
	flag.Parse()
	if *inDir == "" {
		return fmt.Errorf("-indir is required")
	}

	perHost, err := activity.ReadHostLogs(*inDir)
	if err != nil {
		return err
	}
	var hosts []string
	total := 0
	for h, log := range perHost {
		hosts = append(hosts, h)
		total += len(log)
	}
	sort.Strings(hosts)

	monitor := live.NewMonitor(live.Config{
		Interval:          *interval,
		BaselineIntervals: *baseline,
		Detector:          analysis.Detector{ThresholdPoints: *threshold},
		OnAlert:           func(a live.Alert) { fmt.Printf("ALERT %s\n", a) },
	})

	merged := activity.Merge(perHost)
	opts := core.Options{
		Window:     *window,
		EntryPorts: []int{*entryPort},
		IPToHost:   activity.InferIPToHost(merged),
		OnGraph:    func(g *cag.Graph) { monitor.Ingest(g) },
	}

	// Both worker counts run the push-mode session: with Workers > 1 it is
	// the sharded session, whose watermark emitter delivers CAGs in the
	// END-timestamp order Monitor.Ingest needs.
	opts.Workers = core.ResolveWorkers(*workers)
	sess, err := core.NewSession(opts, hosts)
	if err != nil {
		return err
	}
	// Replay in approximate arrival order: global timestamp order,
	// pushed per-host (which preserves each host's local order).
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Timestamp < merged[j].Timestamp })
	var pushed int
	for _, a := range merged {
		if err := sess.Push(a); err != nil {
			return err
		}
		pushed++
		if pushed%*chunk == 0 {
			sess.Drain()
		}
	}
	res := sess.Close()
	monitor.Flush()

	fmt.Printf("replayed %d activities from %d hosts; %d causal paths; correlation %v\n",
		pushed, len(hosts), monitor.Ingested(), res.CorrelationTime.Round(time.Millisecond))
	if res.SequentialFallback != "" {
		fmt.Printf("note: requested %d workers but ran sequentially: %s\n", opts.Workers, res.SequentialFallback)
	}
	if res.Shards > 0 {
		fmt.Printf("sharded session: %d flow components across %d workers; per-shard peaks: %d buffered activities, %d resident vertices (largest shard)\n",
			res.Shards, opts.Workers, res.PeakBufferedActivities, res.PeakResidentVertices)
	}
	if n := monitor.OutOfOrder(); n > 0 {
		fmt.Printf("warning: %d CAGs arrived out of END-timestamp order; interval statistics may be skewed\n", n)
	}
	fmt.Print(monitor.Summary())
	fmt.Println()
	fmt.Print(monitor.HistoryTable())
	return nil
}

// Command livemon replays per-host TCP_TRACE logs through the online
// correlator in arrival order and runs the live monitor over the resulting
// CAG stream — what a production deployment of PreciseTracer would do
// continuously.
//
// Usage:
//
//	rubisgen -clients 300 -scale 0.1 -splitdir traces/
//	livemon -indir traces/ -interval 5s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/activity"
	"repro/internal/analysis"
	"repro/internal/cag"
	"repro/internal/core"
	"repro/internal/live"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livemon:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		inDir     = flag.String("indir", "", "directory of per-host logs (required)")
		window    = flag.Duration("window", 10*time.Millisecond, "ranker sliding window")
		interval  = flag.Duration("interval", 5*time.Second, "monitor aggregation interval (trace time)")
		baseline  = flag.Int("baseline", 3, "intervals used to learn the healthy baseline")
		threshold = flag.Float64("threshold", 8, "alert threshold in latency-share percentage points")
		entryPort = flag.Int("entryport", 80, "first-tier service port")
		chunk     = flag.Int("chunk", 256, "records pushed between drain rounds")
		workers   = flag.Int("workers", 1, "correlation workers; >1 shards the push-mode session per flow component, 0 uses all CPUs")
		sealAfter = flag.Duration("sealafter", 0, "continuous mode (needs -workers >1): force-seal components idle longer than this in activity time, so CAGs flow without agent restarts; 0 = close-driven sealing only")
	)
	flag.Parse()
	if *inDir == "" {
		return fmt.Errorf("-indir is required")
	}
	// Resolve the worker count before touching any input: continuous mode
	// needs the sharded session, and a flag error should not cost a full
	// trace read. "-workers 0" (all CPUs) on a single-CPU host resolves
	// to 1; honour the continuous-mode request by clamping up to the
	// smallest sharded pool instead of rejecting it.
	nWorkers := core.ResolveWorkers(*workers)
	if *sealAfter > 0 && nWorkers <= 1 {
		if *workers == 0 {
			nWorkers = 2
		} else {
			return fmt.Errorf("-sealafter needs -workers > 1 (the sequential session is close-driven)")
		}
	}

	perHost, err := activity.ReadHostLogs(*inDir)
	if err != nil {
		return err
	}
	var hosts []string
	total := 0
	for h, log := range perHost {
		hosts = append(hosts, h)
		total += len(log)
	}
	sort.Strings(hosts)

	monitor := live.NewMonitor(live.Config{
		Interval:          *interval,
		BaselineIntervals: *baseline,
		Detector:          analysis.Detector{ThresholdPoints: *threshold},
		OnAlert:           func(a live.Alert) { fmt.Printf("ALERT %s\n", a) },
	})

	merged := activity.Merge(perHost)
	opts := core.Options{
		Window:     *window,
		EntryPorts: []int{*entryPort},
		IPToHost:   activity.InferIPToHost(merged),
		OnGraph:    func(g *cag.Graph) { monitor.Ingest(g) },
		SealAfter:  *sealAfter,
	}

	// Both worker counts run the push-mode session: with Workers > 1 it is
	// the sharded session, whose watermark emitter delivers CAGs in the
	// END-timestamp order Monitor.Ingest needs. -sealafter additionally
	// lets that session emit continuously without waiting for any stream
	// to close — the always-on deployment the paper motivates.
	opts.Workers = nWorkers
	sess, err := core.NewSession(opts, hosts)
	if err != nil {
		return err
	}
	// Replay in approximate arrival order: global timestamp order,
	// pushed per-host (which preserves each host's local order).
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Timestamp < merged[j].Timestamp })
	var pushed int
	for _, a := range merged {
		if err := sess.Push(a); err != nil {
			return err
		}
		pushed++
		if pushed%*chunk == 0 {
			sess.Drain()
		}
	}
	res := sess.Close()
	monitor.Flush()

	fmt.Printf("replayed %d activities from %d hosts; %d causal paths; correlation %v\n",
		pushed, len(hosts), monitor.Ingested(), res.CorrelationTime.Round(time.Millisecond))
	if res.SequentialFallback != "" {
		fmt.Printf("note: requested %d workers but ran sequentially: %s\n", opts.Workers, res.SequentialFallback)
	}
	if res.Shards > 0 {
		fmt.Printf("sharded session: %d flow components across %d workers; per-shard peaks: %d buffered activities, %d resident vertices (largest shard)\n",
			res.Shards, opts.Workers, res.PeakBufferedActivities, res.PeakResidentVertices)
	}
	if res.ForcedSeals > 0 || res.LateLinks > 0 {
		fmt.Printf("continuous mode: %d components force-sealed past the %v activity-time horizon; %d late links detached onto fresh components\n",
			res.ForcedSeals, *sealAfter, res.LateLinks)
	}
	if n := monitor.OutOfOrder(); n > 0 {
		fmt.Printf("warning: %d CAGs arrived out of END-timestamp order; interval statistics may be skewed\n", n)
	}
	if n := monitor.SkippedEmpty(); n > 0 {
		fmt.Printf("quiet gaps: %d empty intervals skipped (recorded per interval in the gap column)\n", n)
	}
	fmt.Print(monitor.Summary())
	fmt.Println()
	fmt.Print(monitor.HistoryTable())
	return nil
}

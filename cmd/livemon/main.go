// Command livemon replays per-host TCP_TRACE logs through the online
// correlator in arrival order and runs the live monitor over the resulting
// CAG stream — what a production deployment of PreciseTracer would do
// continuously.
//
// Usage:
//
//	rubisgen -clients 300 -scale 0.1 -splitdir traces/
//	livemon -indir traces/ -interval 5s
//	livemon -indir traces/ -sealafter 50ms,db1=500ms -heartbeat 25ms
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/activity"
	"repro/internal/analysis"
	"repro/internal/cag"
	"repro/internal/core"
	"repro/internal/live"
)

// errUsage marks a rejected flag value: main prints the flag usage after
// the error instead of failing silently on a misconfiguration.
var errUsage = errors.New("invalid flag value")

func usagef(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errUsage}, args...)...)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livemon:", err)
		if errors.Is(err, errUsage) {
			flag.Usage()
		}
		os.Exit(1)
	}
}

func run() error {
	var (
		inDir     = flag.String("indir", "", "directory of per-host logs (required)")
		window    = flag.Duration("window", 10*time.Millisecond, "ranker sliding window")
		interval  = flag.Duration("interval", 5*time.Second, "monitor aggregation interval (trace time)")
		baseline  = flag.Int("baseline", 3, "intervals used to learn the healthy baseline")
		threshold = flag.Float64("threshold", 8, "alert threshold in latency-share percentage points")
		entryPort = flag.Int("entryport", 80, "first-tier service port")
		chunk     = flag.Int("chunk", 256, "records pushed between drain rounds")
		workers   = flag.Int("workers", 1, "correlation workers sizing the streaming engine's pool (1 = sequential configuration, 0 = all CPUs)")
		sealAfter = flag.String("sealafter", "", "activity-time seal horizon(s): a default duration and/or host=duration overrides, comma-separated (e.g. '50ms,db1=500ms'); empty = close-driven sealing only")
		heartbeat = flag.Duration("heartbeat", 0, "agent liveness cadence in activity time: every host asserts progress at this interval so quiet streams do not stall emission; 0 = no heartbeats")
	)
	flag.Parse()
	if *inDir == "" {
		return usagef("-indir is required")
	}
	if *window <= 0 {
		return usagef("-window must be > 0 (got %v)", *window)
	}
	if *interval <= 0 {
		return usagef("-interval must be > 0 (got %v)", *interval)
	}
	if *baseline <= 0 {
		return usagef("-baseline must be > 0 (got %d)", *baseline)
	}
	if *chunk <= 0 {
		return usagef("-chunk must be > 0 (got %d)", *chunk)
	}
	if *workers < 0 {
		return usagef("-workers must be >= 0 (got %d; 0 = all CPUs)", *workers)
	}
	if *heartbeat < 0 {
		return usagef("-heartbeat must be >= 0 (got %v)", *heartbeat)
	}
	sealDefault, sealByHost, err := core.ParseSealAfterSpec(*sealAfter)
	if err != nil {
		return usagef("%v", err)
	}

	perHost, err := activity.ReadHostLogs(*inDir)
	if err != nil {
		return err
	}
	var hosts []string
	for h := range perHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)

	monitor := live.NewMonitor(live.Config{
		Interval:          *interval,
		BaselineIntervals: *baseline,
		Detector:          analysis.Detector{ThresholdPoints: *threshold},
		OnAlert:           func(a live.Alert) { fmt.Printf("ALERT %s\n", a) },
	})

	merged := activity.Merge(perHost)
	opts := core.Options{
		Window:          *window,
		EntryPorts:      []int{*entryPort},
		IPToHost:        activity.InferIPToHost(merged),
		OnGraph:         func(g *cag.Graph) { monitor.Ingest(g) },
		Workers:         core.ResolveWorkers(*workers),
		SealAfter:       sealDefault,
		SealAfterByHost: sealByHost,
	}

	// Every worker count runs the same streaming engine; its watermark
	// emitter delivers CAGs in the END-timestamp order Monitor.Ingest
	// needs. -sealafter turns it continuous — CAGs flow without waiting
	// for any stream to close — and per-host overrides let a chronically
	// lagging agent keep a longer horizon without splitting its requests.
	sess, err := core.NewSession(opts, hosts)
	if err != nil {
		return err
	}
	// Replay in approximate arrival order: global timestamp order,
	// pushed per-host (which preserves each host's local order).
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Timestamp < merged[j].Timestamp })
	var pushed int
	var lastBeat time.Duration
	for _, a := range merged {
		if err := sess.Push(a); err != nil {
			return err
		}
		pushed++
		// The replay is globally timestamp-ordered, so at clock t every
		// agent can honestly assert it holds nothing older than t — the
		// heartbeat a real deployment's agents would send on a timer.
		if *heartbeat > 0 && a.Timestamp >= lastBeat+*heartbeat {
			lastBeat = a.Timestamp
			for _, h := range hosts {
				if err := sess.Heartbeat(h, a.Timestamp); err != nil {
					return err
				}
			}
		}
		if pushed%*chunk == 0 {
			sess.Drain()
		}
	}
	res := sess.Close()
	monitor.Flush()

	fmt.Printf("replayed %d activities from %d hosts; %d causal paths; correlation %v\n",
		pushed, len(hosts), monitor.Ingested(), res.CorrelationTime.Round(time.Millisecond))
	if res.SequentialFallback != "" {
		fmt.Printf("note: requested %d workers but ran sequentially: %s\n", opts.Workers, res.SequentialFallback)
	}
	if res.Shards > 0 {
		fmt.Printf("streaming engine: %d flow components across %d workers; per-shard peaks: %d buffered activities, %d resident vertices (largest shard)\n",
			res.Shards, opts.Workers, res.PeakBufferedActivities, res.PeakResidentVertices)
	}
	if res.ForcedSeals > 0 || res.LateLinks > 0 {
		fmt.Printf("continuous mode: %d forced seals, %d late links (CAGs may be split; see core.Options.SealAfter)\n",
			res.ForcedSeals, res.LateLinks)
	}
	if n := monitor.OutOfOrder(); n > 0 {
		fmt.Printf("warning: %d CAGs arrived out of END-timestamp order; interval statistics may be skewed\n", n)
	}
	if n := monitor.SkippedEmpty(); n > 0 {
		fmt.Printf("quiet gaps: %d empty intervals skipped (recorded per interval in the gap column)\n", n)
	}
	fmt.Print(monitor.Summary())
	fmt.Println()
	fmt.Print(monitor.HistoryTable())
	if tbl := monitor.HostLagTable(); tbl != "" {
		fmt.Println("\nper-host lag (newest correlated record vs newest overall; tune -sealafter host= overrides against this):")
		fmt.Print(tbl)
	}
	return nil
}

// Command livemon runs the online correlator plus the live monitor — what
// a production deployment of PreciseTracer would do continuously. It has
// two front ends:
//
// Replay mode (-indir) reads per-host TCP_TRACE logs and replays them
// through the session in arrival order, in process.
//
// Listen mode (-listen) is the real deployment shape: it opens the
// network collector and correlates streams shipped by one traceagent per
// traced host, until every agent has closed its stream.
//
// Usage:
//
//	rubisgen -clients 300 -scale 0.1 -splitdir traces/
//	livemon -indir traces/ -interval 5s
//	livemon -indir traces/ -sealafter 50ms,db1=500ms -heartbeat 25ms
//	livemon -indir traces/ -sketched -maxpatterns 64 -export otlp=spans.ndjson
//	livemon -listen 127.0.0.1:9411 -hosts 'web=10.0.0.1,app1=10.0.0.2,db1=10.0.0.3' -sealafter 50ms &
//	traceagent -addr 127.0.0.1:9411 -indir traces/ -heartbeat 25ms
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/activity"
	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/transport"
)

func main() { cli.Main("livemon", run) }

func run() error {
	var (
		inDir       = flag.String("indir", "", "directory of per-host logs (replay mode)")
		listen      = flag.String("listen", "", "collector listen address (listen mode; agents ship streams with traceagent)")
		hostSpec    = flag.String("hosts", "", "listen mode topology: comma-separated host=ip[+ip...] entries declaring every agent and its traced addresses")
		window      = flag.Duration("window", 10*time.Millisecond, "ranker sliding window")
		interval    = flag.Duration("interval", 5*time.Second, "monitor aggregation interval (trace time)")
		baseline    = flag.Int("baseline", 3, "intervals used to learn the healthy baseline")
		threshold   = flag.Float64("threshold", 8, "alert threshold in latency-share percentage points")
		entryPort   = flag.Int("entryport", 80, "first-tier service port")
		chunk       = flag.Int("chunk", 256, "records pushed between drain rounds")
		sketched    = flag.Bool("sketched", false, "bounded-memory monitor: sketch per-interval pattern accounting instead of retaining CAGs")
		maxPatterns = flag.Int("maxpatterns", 0, "sketched mode pattern capacity per interval (0 = default)")
	)
	shared := cli.RegisterCorrelator(flag.CommandLine)
	heartbeatFlag := cli.RegisterHeartbeat(flag.CommandLine)
	pprofAddr := cli.RegisterPprof(flag.CommandLine)
	flag.Parse()
	heartbeat := *heartbeatFlag
	if (*inDir == "") == (*listen == "") {
		return cli.Usagef("exactly one of -indir (replay) or -listen (collector) is required")
	}
	if *listen != "" && *hostSpec == "" {
		return cli.Usagef("-listen needs -hosts (sessions declare every stream up front)")
	}
	if *listen != "" && heartbeat != 0 {
		return cli.Usagef("-heartbeat is replay-mode only; in listen mode agents heartbeat themselves (traceagent -heartbeat)")
	}
	if *window <= 0 {
		return cli.Usagef("-window must be > 0 (got %v)", *window)
	}
	if *interval <= 0 {
		return cli.Usagef("-interval must be > 0 (got %v)", *interval)
	}
	if *baseline <= 0 {
		return cli.Usagef("-baseline must be > 0 (got %d)", *baseline)
	}
	if *chunk <= 0 {
		return cli.Usagef("-chunk must be > 0 (got %d)", *chunk)
	}
	if *maxPatterns < 0 {
		return cli.Usagef("-maxpatterns must be >= 0 (got %d)", *maxPatterns)
	}
	if err := cli.ValidateHeartbeat(heartbeat); err != nil {
		return err
	}

	monitor := live.NewMonitor(live.Config{
		Interval:          *interval,
		BaselineIntervals: *baseline,
		Detector:          analysis.Detector{ThresholdPoints: *threshold},
		OnAlert:           func(a live.Alert) { fmt.Printf("ALERT %s\n", a) },
		Sketched:          *sketched,
		MaxPatterns:       *maxPatterns,
	})
	opts := core.Options{
		Window:     *window,
		EntryPorts: []int{*entryPort},
		// The monitor is the first sink: it sees every CAG before the
		// export sinks, all on the emitter goroutine.
		Sinks: []core.GraphSink{monitor},
	}
	exports, err := shared.Apply(&opts)
	if err != nil {
		return err
	}
	if bound, stopPprof, err := cli.StartPprof(*pprofAddr); err != nil {
		return err
	} else if bound != "" {
		defer stopPprof()
		fmt.Fprintf(os.Stderr, "pprof: serving profiles on http://%s/debug/pprof/\n", bound)
	}

	if *listen != "" {
		err = serveCollector(*listen, *hostSpec, opts, monitor, *chunk)
	} else {
		err = replay(*inDir, opts, monitor, *chunk, heartbeat)
	}
	if cerr := exports.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Print(exports.Summary())
	}
	return err
}

// parseHostsSpec parses "web=10.0.0.1,app1=10.0.0.2+10.0.0.3" into the
// declared host list (in spec order) and the IP-to-host topology map.
func parseHostsSpec(spec string) (hosts []string, ipToHost map[string]string, err error) {
	ipToHost = make(map[string]string)
	seen := make(map[string]bool)
	for _, entry := range strings.Split(spec, ",") {
		host, ips, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || host == "" || ips == "" {
			return nil, nil, fmt.Errorf("hosts entry %q: want host=ip[+ip...]", entry)
		}
		if seen[host] {
			return nil, nil, fmt.Errorf("hosts entry %q: duplicate host %q", entry, host)
		}
		seen[host] = true
		hosts = append(hosts, host)
		for _, ip := range strings.Split(ips, "+") {
			if ip == "" {
				return nil, nil, fmt.Errorf("hosts entry %q: empty ip", entry)
			}
			if prev, dup := ipToHost[ip]; dup {
				return nil, nil, fmt.Errorf("ip %q claimed by both %q and %q", ip, prev, host)
			}
			ipToHost[ip] = host
		}
	}
	return hosts, ipToHost, nil
}

// serveCollector is listen mode: network collector → serialized ingest →
// session, running until every declared agent has closed its stream.
func serveCollector(addr, hostSpec string, opts core.Options, monitor *live.Monitor, chunk int) error {
	hosts, ipToHost, err := parseHostsSpec(hostSpec)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	opts.IPToHost = ipToHost
	sess, err := core.NewSession(opts, hosts)
	if err != nil {
		return err
	}
	// OnApplied and the sinks both fire on the ingest goroutine, so the
	// monitor sees deliveries and CAGs without extra locking; the
	// wall-clock flush keeps decidable CAGs moving through traffic lulls.
	// Release returns decoded transport records to the activity pool once
	// the session has copied what it keeps — the collector decodes every
	// batch into pooled storage (activity.NewRecord).
	ingest := core.NewIngest(sess, core.IngestOptions{
		DrainEvery:    chunk,
		FlushInterval: 250 * time.Millisecond,
		OnApplied:     monitor.ObserveDelivery,
		Release:       activity.ReleaseRecord,
	})
	col, err := transport.NewCollector(ingest, transport.CollectorConfig{
		Hosts: hosts,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("collector listening on %s for %d agents: %s\n", ln.Addr(), len(hosts), strings.Join(hosts, ", "))
	serveErr := make(chan error, 1)
	go func() { serveErr <- col.Serve(ln) }()
	select {
	case <-col.Done():
	case err := <-serveErr:
		if err != nil {
			return err
		}
		return errors.New("listener closed before all agents finished")
	}
	col.Shutdown()
	ln.Close()
	res := ingest.Close()
	monitor.Flush()

	applied := 0
	for _, st := range col.Status() {
		fmt.Printf("agent %s: %d items applied, newest %v, %d disconnects\n",
			st.Host, st.LastSeq, st.LastTs, st.Disconnects)
		applied += int(st.LastSeq)
	}
	fmt.Printf("collected %d items from %d agents; %d causal paths; correlation %v\n",
		applied, len(hosts), monitor.Stats().Ingested, res.CorrelationTime.Round(time.Millisecond))
	report(res, monitor, opts.Workers)
	return nil
}

// replay is the original in-process mode: read the logs, push in arrival
// order.
func replay(inDir string, opts core.Options, monitor *live.Monitor, chunk int, heartbeat time.Duration) error {
	perHost, err := activity.ReadHostLogs(inDir)
	if err != nil {
		return err
	}
	var hosts []string
	for h := range perHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)

	merged := activity.Merge(perHost)
	opts.IPToHost = activity.InferIPToHost(merged)

	// Every worker count runs the same streaming engine; its watermark
	// emitter delivers CAGs in the END-timestamp order Monitor.Ingest
	// needs. -sealafter turns it continuous — CAGs flow without waiting
	// for any stream to close — and per-host overrides let a chronically
	// lagging agent keep a longer horizon without splitting its requests.
	sess, err := core.NewSession(opts, hosts)
	if err != nil {
		return err
	}
	// Replay in approximate arrival order: global timestamp order,
	// pushed per-host (which preserves each host's local order).
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Timestamp < merged[j].Timestamp })
	var pushed int
	var lastBeat time.Duration
	for _, a := range merged {
		if err := sess.Push(a); err != nil {
			return err
		}
		pushed++
		// The replay is globally timestamp-ordered, so at clock t every
		// agent can honestly assert it holds nothing older than t — the
		// heartbeat a real deployment's agents would send on a timer.
		if heartbeat > 0 && a.Timestamp >= lastBeat+heartbeat {
			lastBeat = a.Timestamp
			for _, h := range hosts {
				if err := sess.Heartbeat(h, a.Timestamp); err != nil {
					return err
				}
			}
		}
		if pushed%chunk == 0 {
			sess.Drain()
		}
	}
	res := sess.Close()
	monitor.Flush()

	fmt.Printf("replayed %d activities from %d hosts; %d causal paths; correlation %v\n",
		pushed, len(hosts), monitor.Stats().Ingested, res.CorrelationTime.Round(time.Millisecond))
	report(res, monitor, opts.Workers)
	return nil
}

// report prints the shared tail of both modes: engine statistics, monitor
// summary, history and per-host lag.
func report(res *core.Result, monitor *live.Monitor, workers int) {
	if res.Shards > 0 {
		fmt.Printf("streaming engine: %d flow components across %d workers; per-shard peaks: %d buffered activities, %d resident vertices (largest shard)\n",
			res.Shards, workers, res.PeakBufferedActivities, res.PeakResidentVertices)
	}
	if res.ForcedSeals > 0 || res.LateLinks > 0 {
		fmt.Printf("continuous mode: %d forced seals, %d late links (CAGs may be split; see core.Options.SealAfter)\n",
			res.ForcedSeals, res.LateLinks)
	}
	st := monitor.Stats()
	if st.OutOfOrder > 0 {
		fmt.Printf("warning: %d CAGs arrived out of END-timestamp order; interval statistics may be skewed\n", st.OutOfOrder)
	}
	if st.SkippedEmpty > 0 {
		fmt.Printf("quiet gaps: %d empty intervals skipped (recorded per interval in the gap column)\n", st.SkippedEmpty)
	}
	fmt.Print(monitor.Summary())
	fmt.Println()
	fmt.Print(monitor.HistoryTable())
	if tbl := monitor.QuantileTable(); tbl != "" {
		fmt.Println("\nlifetime quantiles (sketched; error within the configured epsilon):")
		fmt.Print(tbl)
	}
	if tbl := monitor.HostLagTable(); tbl != "" {
		fmt.Println("\nper-host lag (newest correlated record vs newest overall; tune -sealafter host= overrides against this):")
		fmt.Print(tbl)
	}
}

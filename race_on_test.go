//go:build race

package repro_test

// raceEnabled reports that this test binary runs under the race
// detector: timing measurements are 5–20× off and must not overwrite
// recorded benchmark trajectories.
const raceEnabled = true

# Local CI gate for the PreciseTracer reproduction.
#
#   make ci      # everything below, in order
#   make race    # the concurrency gate for the sharded correlator
#
# The race and bench targets exist because of the concurrent correlation
# pipeline (core.Options.Workers > 1): every change to core, flow, ranker
# or engine must keep `go test -race ./...` clean and should watch the
# BenchmarkCorrelateSharded numbers.

GO ?= go

# Minimum combined statement coverage for the correlator's concurrency
# core (internal/core + internal/flow + internal/live) plus the live
# analytics tier (internal/sketch + internal/export) and the pipeline's
# handoff primitive (internal/ring) — the packages the sharded batch
# pipeline, the sharded push-mode session (including the SealAfter
# continuous mode), the ring-buffered dispatch, the online monitor and
# its bounded-memory sketches and export sinks live in.
COVER_MIN ?= 85

.PHONY: ci vet lint build test race cover bench bench-allocs bench-promote bench-scaling soak soak-short

ci: vet lint build test race cover bench bench-allocs soak-short

vet:
	$(GO) vet ./...

# staticcheck is the second linter gate (hosted CI installs it; see
# .github/workflows/ci.yml). Local runs without the binary skip it with a
# note instead of failing, so `make ci` works on a hermetic box.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (hosted CI runs it — go install honnef.co/go/tools/cmd/staticcheck@2025.1)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=coverage.out ./internal/core ./internal/flow ./internal/live ./internal/sketch ./internal/export ./internal/ring
	@$(GO) tool cover -func=coverage.out | awk -v min=$(COVER_MIN) '/^total:/ { pct = $$3; sub(/%/, "", pct); printf "coverage: %s%% of statements in internal/core+internal/flow+internal/live+internal/sketch+internal/export+internal/ring (minimum %s%%)\n", pct, min; exit (pct + 0 < min + 0) }'

bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Allocation regression gates for the streaming-engine hot path. Each
# BenchmarkSessionPush variant has its own budget: the measured figure on
# the reference box plus ~25-30% headroom for machine variance — an
# accidental per-record allocation costs ~37k allocs/op here and blows
# either budget immediately.
#
#   seq-close-driven: ~54k measured on the ring-buffered pipeline (down
#   from 178,250 before dense interned identities, ~68k before the
#   worker-pool ranker/engine reuse).
ALLOCS_BUDGET ?= 65000
#   seq-continuous (SealAfter horizon, per-component forced seals): ~64k
#   measured after the worker-pool reuse + flow key recycling, down from
#   ~139k when every sealed component rebuilt its ranker and engine.
ALLOCS_BUDGET_CONTINUOUS ?= 78000

bench-allocs:
	@$(GO) test -run '^$$' -bench 'BenchmarkSessionPush/seq-(close-driven|continuous)' \
		-benchmem -benchtime=3x . \
	| awk -v budget=$(ALLOCS_BUDGET) -v cbudget=$(ALLOCS_BUDGET_CONTINUOUS) ' \
		/BenchmarkSessionPush\/seq-close-driven/ { a = $$(NF-1) + 0; found++; \
			printf "bench-allocs: seq-close-driven %d allocs/op (budget %d)\n", a, budget; \
			if (a > budget) bad = 1 } \
		/BenchmarkSessionPush\/seq-continuous/ { a = $$(NF-1) + 0; found++; \
			printf "bench-allocs: seq-continuous %d allocs/op (budget %d)\n", a, cbudget; \
			if (a > cbudget) bad = 1 } \
		END { \
			if (found != 2) { printf "bench-allocs: expected 2 benchmark results, got %d\n", found; exit 1 } \
			exit bad \
		}'

# Scaling-efficiency gate: parallel efficiency (speedup/workers) at the
# largest benchmark scale with workers=NumCPU must stay above
# SCALING_FLOOR. Skips itself on single-CPU hosts and under -race; the
# hosted bench job runs it on every push (see .github/workflows/ci.yml).
SCALING_FLOOR ?= 0.30

bench-scaling:
	BENCH_SCALING_GATE=1 SCALING_FLOOR=$(SCALING_FLOOR) \
		$(GO) test -run TestScalingEfficiencyGate -count=1 -v -timeout 10m .

# Promote a downloaded CI bench run into the checked-in baseline: the
# hosted bench job uploads BENCH_pipeline.json + bench.txt as the
# "bench" artifact; unpack it and point BENCH_ARTIFACT at the directory.
# benchpromote validates the matrix and folds the -benchmem allocs/op
# figures from bench.txt into the session_push entries before rewriting
# BENCH_pipeline.json.
BENCH_ARTIFACT ?= bench-artifact

bench-promote:
	$(GO) run ./cmd/benchpromote -artifact $(BENCH_ARTIFACT) -out BENCH_pipeline.json

# Loopback soak of the network ingestion tier: many concurrent agents
# shipping a sustained load through collector → ingest → session, with a
# mid-stream reconnect, checked byte-for-byte against the offline replay
# of the same records — plus the sketched monitor's fixed-capacity gate
# (footprint flat over a much longer synthetic stream). soak-short is
# the quick version `make ci` runs; `make soak` scales both up (tune
# SOAK_AGENTS / SOAK_REQUESTS / SOAK_LIVE_SCALE).
SOAK_AGENTS ?= 24
SOAK_REQUESTS ?= 20000
SOAK_LIVE_SCALE ?= 100

soak:
	$(GO) test ./internal/transport -count=1 -run TestTransportSoak -v \
		-soak.agents=$(SOAK_AGENTS) -soak.requests=$(SOAK_REQUESTS) -timeout 15m
	$(GO) test ./internal/live -count=1 -run TestMonitorSketchedCapacity -v \
		-live.soakscale=$(SOAK_LIVE_SCALE) -timeout 15m

soak-short:
	$(GO) test ./internal/transport -count=1 -run TestTransportSoak \
		-soak.agents=12 -soak.requests=2000
	$(GO) test ./internal/live -count=1 -run TestMonitorSketchedCapacity \
		-live.soakscale=25

# Local CI gate for the PreciseTracer reproduction.
#
#   make ci      # everything below, in order
#   make race    # the concurrency gate for the sharded correlator
#
# The race and bench targets exist because of the concurrent correlation
# pipeline (core.Options.Workers > 1): every change to core, flow, ranker
# or engine must keep `go test -race ./...` clean and should watch the
# BenchmarkCorrelateSharded numbers.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build test race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

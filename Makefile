# Local CI gate for the PreciseTracer reproduction.
#
#   make ci      # everything below, in order
#   make race    # the concurrency gate for the sharded correlator
#
# The race and bench targets exist because of the concurrent correlation
# pipeline (core.Options.Workers > 1): every change to core, flow, ranker
# or engine must keep `go test -race ./...` clean and should watch the
# BenchmarkCorrelateSharded numbers.

GO ?= go

# Minimum combined statement coverage for the correlator's concurrency
# core (internal/core + internal/flow + internal/live) plus the live
# analytics tier (internal/sketch + internal/export) — the packages the
# sharded batch pipeline, the sharded push-mode session (including the
# SealAfter continuous mode), the online monitor and its bounded-memory
# sketches and export sinks live in.
COVER_MIN ?= 85

.PHONY: ci vet lint build test race cover bench bench-allocs soak soak-short

ci: vet lint build test race cover bench bench-allocs soak-short

vet:
	$(GO) vet ./...

# staticcheck is the second linter gate (hosted CI installs it; see
# .github/workflows/ci.yml). Local runs without the binary skip it with a
# note instead of failing, so `make ci` works on a hermetic box.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (hosted CI runs it — go install honnef.co/go/tools/cmd/staticcheck@2025.1)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=coverage.out ./internal/core ./internal/flow ./internal/live ./internal/sketch ./internal/export
	@$(GO) tool cover -func=coverage.out | awk -v min=$(COVER_MIN) '/^total:/ { pct = $$3; sub(/%/, "", pct); printf "coverage: %s%% of statements in internal/core+internal/flow+internal/live+internal/sketch+internal/export (minimum %s%%)\n", pct, min; exit (pct + 0 < min + 0) }'

bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Allocation regression gate for the identity-layer hot path: the
# close-driven BenchmarkSessionPush case must stay under ALLOCS_BUDGET
# allocs/op. The budget is the post-interning measurement (~68k on the
# reference box; down from 178,250 before dense keys) plus ~25% headroom
# for machine variance — an accidental per-record allocation costs ~37k
# allocs/op here and blows the budget immediately.
ALLOCS_BUDGET ?= 85000

bench-allocs:
	@$(GO) test -run '^$$' -bench 'BenchmarkSessionPush/seq-close-driven' \
		-benchmem -benchtime=3x . \
	| awk -v budget=$(ALLOCS_BUDGET) ' \
		/BenchmarkSessionPush/ { allocs = $$(NF-1) + 0; found = 1 } \
		END { \
			if (!found) { print "bench-allocs: benchmark produced no result"; exit 1 } \
			printf "bench-allocs: BenchmarkSessionPush/seq-close-driven %d allocs/op (budget %d)\n", allocs, budget; \
			exit (allocs > budget) \
		}'

# Loopback soak of the network ingestion tier: many concurrent agents
# shipping a sustained load through collector → ingest → session, with a
# mid-stream reconnect, checked byte-for-byte against the offline replay
# of the same records — plus the sketched monitor's fixed-capacity gate
# (footprint flat over a much longer synthetic stream). soak-short is
# the quick version `make ci` runs; `make soak` scales both up (tune
# SOAK_AGENTS / SOAK_REQUESTS / SOAK_LIVE_SCALE).
SOAK_AGENTS ?= 24
SOAK_REQUESTS ?= 20000
SOAK_LIVE_SCALE ?= 100

soak:
	$(GO) test ./internal/transport -count=1 -run TestTransportSoak -v \
		-soak.agents=$(SOAK_AGENTS) -soak.requests=$(SOAK_REQUESTS) -timeout 15m
	$(GO) test ./internal/live -count=1 -run TestMonitorSketchedCapacity -v \
		-live.soakscale=$(SOAK_LIVE_SCALE) -timeout 15m

soak-short:
	$(GO) test ./internal/transport -count=1 -run TestTransportSoak \
		-soak.agents=12 -soak.requests=2000
	$(GO) test ./internal/live -count=1 -run TestMonitorSketchedCapacity \
		-live.soakscale=25

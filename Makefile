# Local CI gate for the PreciseTracer reproduction.
#
#   make ci      # everything below, in order
#   make race    # the concurrency gate for the sharded correlator
#
# The race and bench targets exist because of the concurrent correlation
# pipeline (core.Options.Workers > 1): every change to core, flow, ranker
# or engine must keep `go test -race ./...` clean and should watch the
# BenchmarkCorrelateSharded numbers.

GO ?= go

# Minimum combined statement coverage for the correlator's concurrency
# core (internal/core + internal/flow + internal/live) — the packages the
# sharded batch pipeline, the sharded push-mode session (including the
# SealAfter continuous mode) and the online monitor live in.
COVER_MIN ?= 85

.PHONY: ci vet lint build test race cover bench soak soak-short

ci: vet lint build test race cover bench soak-short

vet:
	$(GO) vet ./...

# staticcheck is the second linter gate (hosted CI installs it; see
# .github/workflows/ci.yml). Local runs without the binary skip it with a
# note instead of failing, so `make ci` works on a hermetic box.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (hosted CI runs it — go install honnef.co/go/tools/cmd/staticcheck@2025.1)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=coverage.out ./internal/core ./internal/flow ./internal/live
	@$(GO) tool cover -func=coverage.out | awk -v min=$(COVER_MIN) '/^total:/ { pct = $$3; sub(/%/, "", pct); printf "coverage: %s%% of statements in internal/core+internal/flow+internal/live (minimum %s%%)\n", pct, min; exit (pct + 0 < min + 0) }'

bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Loopback soak of the network ingestion tier: many concurrent agents
# shipping a sustained load through collector → ingest → session, with a
# mid-stream reconnect, checked byte-for-byte against the offline replay
# of the same records. soak-short is the quick version `make ci` runs;
# `make soak` scales it up (tune SOAK_AGENTS / SOAK_REQUESTS).
SOAK_AGENTS ?= 24
SOAK_REQUESTS ?= 20000

soak:
	$(GO) test ./internal/transport -count=1 -run TestTransportSoak -v \
		-soak.agents=$(SOAK_AGENTS) -soak.requests=$(SOAK_REQUESTS) -timeout 15m

soak-short:
	$(GO) test ./internal/transport -count=1 -run TestTransportSoak \
		-soak.agents=12 -soak.requests=2000

package repro_test

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rubis"
)

// TestScalingEfficiencyGate is the `make bench-scaling` gate: on a
// multi-core host it measures parallel efficiency — speedup over the
// sequential pass divided by worker count — at the largest benchmark
// scale with workers=NumCPU, and fails when it drops below a checked-in
// floor. The floor (SCALING_FLOOR, default 0.30) is deliberately well
// under the efficiency a healthy run shows: the gate exists to catch a
// regression that serialises the pipeline (a lock on the hot path, a
// barrier where the ring should stream), not to flake on a noisy host.
//
// The gate only runs when BENCH_SCALING_GATE=1 — wall-clock assertions
// do not belong in the default `go test ./...` tier.
func TestScalingEfficiencyGate(t *testing.T) {
	if os.Getenv("BENCH_SCALING_GATE") != "1" {
		t.Skip("scaling gate runs only under BENCH_SCALING_GATE=1 (make bench-scaling)")
	}
	if testing.Short() {
		t.Skip("scaling gate is not measured in -short mode")
	}
	if raceEnabled {
		t.Skip("race-instrumented timings are 5-20x off; scaling gate skipped")
	}
	workers := runtime.NumCPU()
	if workers < 2 {
		t.Skip("single-CPU host: no parallel hardware to gate on")
	}

	floor := 0.30
	if env := os.Getenv("SCALING_FLOOR"); env != "" {
		f, err := strconv.ParseFloat(env, 64)
		if err != nil || f <= 0 || f > 1 {
			t.Fatalf("SCALING_FLOOR=%q: want a number in (0, 1]", env)
		}
		floor = f
	}

	cfg := rubis.DefaultConfig(300)
	cfg.Scale = 0.1
	res, err := rubis.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(w int) time.Duration {
		best := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			start := time.Now()
			out, err := core.New(core.Options{
				Window:     10 * time.Millisecond,
				EntryPorts: []int{rubis.EntryPort},
				IPToHost:   res.IPToHost,
				Workers:    w,
			}).CorrelateTrace(res.Trace)
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Graphs) == 0 {
				t.Fatal("no graphs")
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best
	}
	efficiency := func() (float64, string) {
		seq, par := measure(1), measure(workers)
		speedup := float64(seq) / float64(par)
		eff := speedup / float64(workers)
		return eff, fmt.Sprintf("seq=%v par=%v speedup=%.2fx workers=%d efficiency=%.3f", seq, par, speedup, workers, eff)
	}

	eff, detail := efficiency()
	t.Logf("scaling: %s (floor %.2f)", detail, floor)
	if eff < floor {
		// One fresh remeasurement before failing: a loaded host can skew
		// a single best-of-3 sample.
		eff, detail = efficiency()
		t.Logf("scaling retry: %s (floor %.2f)", detail, floor)
	}
	if eff < floor {
		t.Fatalf("parallel efficiency %.3f below floor %.2f at scale 0.1 (%s)", eff, floor, detail)
	}
}

package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/baseline"
	"repro/internal/cag"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/rubis"
)

// benchScale keeps each figure bench around a second; cmd/experiments runs
// the same drivers at larger scales.
const benchScale = 0.004

// benchFigure runs one experiment driver per iteration.
func benchFigure(b *testing.B, run func(float64) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := run(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// One benchmark per §5 table/figure (plus the accuracy grid and the two
// ablations), regenerating the corresponding result.

func BenchmarkAccuracy(b *testing.B)          { benchFigure(b, experiments.Accuracy) }
func BenchmarkFig8(b *testing.B)              { benchFigure(b, experiments.Fig8) }
func BenchmarkFig9(b *testing.B)              { benchFigure(b, experiments.Fig9) }
func BenchmarkFig10(b *testing.B)             { benchFigure(b, experiments.Fig10) }
func BenchmarkFig11(b *testing.B)             { benchFigure(b, experiments.Fig11) }
func BenchmarkFig12(b *testing.B)             { benchFigure(b, experiments.Fig12) }
func BenchmarkFig13(b *testing.B)             { benchFigure(b, experiments.Fig13) }
func BenchmarkFig14(b *testing.B)             { benchFigure(b, experiments.Fig14) }
func BenchmarkFig15(b *testing.B)             { benchFigure(b, experiments.Fig15) }
func BenchmarkFig16(b *testing.B)             { benchFigure(b, experiments.Fig16) }
func BenchmarkFig17(b *testing.B)             { benchFigure(b, experiments.Fig17) }
func BenchmarkAblationBaselines(b *testing.B) { benchFigure(b, experiments.AblationBaselines) }
func BenchmarkAblationIsNoise(b *testing.B)   { benchFigure(b, experiments.AblationPaperExactNoise) }

// benchTrace generates one deterministic mid-size trace for the
// micro-benchmarks below.
func benchTrace(b *testing.B) *rubis.Result {
	b.Helper()
	cfg := rubis.DefaultConfig(300)
	cfg.Scale = 0.02
	res, err := rubis.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkCorrelate measures the Correlator's end-to-end cost per
// activity — the quantity behind the Fig. 9 linearity claim.
func BenchmarkCorrelate(b *testing.B) {
	res := benchTrace(b)
	opts := core.Options{
		Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := core.New(opts).CorrelateTrace(res.Trace)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Graphs) == 0 {
			b.Fatal("no output")
		}
	}
	b.ReportMetric(float64(len(res.Trace)), "activities/op")
}

// BenchmarkCorrelateSharded measures the concurrent pipeline against the
// sequential pass on one trace — the speedup trajectory lives in
// BENCH_pipeline.json (see TestPipelineSpeedupTrajectory).
func BenchmarkCorrelateSharded(b *testing.B) {
	res := benchTrace(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := core.Options{
				Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort},
				IPToHost: res.IPToHost, Workers: workers,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := core.New(opts).CorrelateTrace(res.Trace)
				if err != nil {
					b.Fatal(err)
				}
				if len(out.Graphs) == 0 {
					b.Fatal("no output")
				}
			}
		})
	}
}

// BenchmarkPartition isolates the shard-key stage (union-find closure
// over channels and context epochs) of the concurrent pipeline.
func BenchmarkPartition(b *testing.B) {
	res := benchTrace(b)
	classified := classify(res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if comps := flow.Partition(classified, flow.ModeFlow); len(comps) == 0 {
			b.Fatal("no components")
		}
	}
	b.ReportMetric(float64(len(classified)), "activities/op")
}

// BenchmarkCorrelateWideWindow isolates the window-size cost (Fig. 10's
// mechanism: a larger window buffers more and stresses the allocator).
func BenchmarkCorrelateWideWindow(b *testing.B) {
	res := benchTrace(b)
	opts := core.Options{
		Window: 100 * time.Second, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(opts).CorrelateTrace(res.Trace); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineNaive and BenchmarkBaselineNesting compare comparator
// costs on the same trace.
func BenchmarkBaselineNaive(b *testing.B) {
	res := benchTrace(b)
	classified := classify(res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.Naive(classified)
	}
}

func BenchmarkBaselineNesting(b *testing.B) {
	res := benchTrace(b)
	classified := classify(res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.Nesting(classified, baseline.NestingConfig{})
	}
}

func classify(res *rubis.Result) []*activity.Activity {
	cls := activity.NewClassifier(rubis.EntryPort)
	out := make([]*activity.Activity, len(res.Trace))
	for i, a := range res.Trace {
		cp := *a
		cp.Type = cls.Classify(a)
		out[i] = &cp
	}
	return out
}

// BenchmarkSignature measures pattern classification cost per CAG.
func BenchmarkSignature(b *testing.B) {
	res := benchTrace(b)
	out, err := core.New(core.Options{
		Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
	}).CorrelateTrace(res.Trace)
	if err != nil {
		b.Fatal(err)
	}
	graphs := out.Graphs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cag.Signature(graphs[i%len(graphs)])
	}
}

// BenchmarkClassifyAndAggregate measures the full pattern + average-path
// pipeline over a run's CAGs.
func BenchmarkClassifyAndAggregate(b *testing.B) {
	res := benchTrace(b)
	out, err := core.New(core.Options{
		Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
	}).CorrelateTrace(res.Trace)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		patterns := cag.Classify(out.Graphs)
		for _, p := range patterns {
			if _, err := cag.Aggregate(p.Graphs); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWireFormat measures TCP_TRACE parse/format round-trip cost.
func BenchmarkWireFormat(b *testing.B) {
	res := benchTrace(b)
	line := activity.FormatRecord(res.Trace[0], true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := activity.ParseRecord(line)
		if err != nil {
			b.Fatal(err)
		}
		line = activity.FormatRecord(a, true)
	}
}

// BenchmarkTestbed measures the simulator itself (virtual-seconds per
// wall-second at 300 clients).
func BenchmarkTestbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := rubis.DefaultConfig(300)
		cfg.Scale = 0.01
		if _, err := rubis.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

package repro_test

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/rubis"
)

// benchEntry is one measured configuration in the BENCH_pipeline.json
// trajectory. NumCPU/GoMaxProcs are recorded per entry (not only in the
// report header) so entries appended or compared across differently
// sized hosts stay interpretable — 1-CPU numbers record pipeline
// overhead, not speedup.
type benchEntry struct {
	Scale      float64 `json:"scale"`
	Clients    int     `json:"clients"`
	Activities int     `json:"activities"`
	Graphs     int     `json:"graphs"`
	Workers    int     `json:"workers"`
	ShardBy    string  `json:"shard_by"`
	NumCPU     int     `json:"num_cpu"`
	GoMaxProcs int     `json:"gomaxprocs"`
	BestNs     int64   `json:"best_ns"`
	Speedup    float64 `json:"speedup_vs_seq"`
	// Efficiency is parallel efficiency — Speedup divided by Workers,
	// 1.0 meaning perfectly linear scaling. The `make bench-scaling`
	// gate (TestScalingEfficiencyGate) floors this figure at scale 0.1
	// with workers=NumCPU on multi-core hosts.
	Efficiency float64 `json:"efficiency"`
}

// sessionPushEntry records the unified streaming engine's push-path cost
// (BenchmarkSessionPush measures the same path interactively): classify +
// incremental flow partition + component bookkeeping + periodic drains,
// normalised to ns per pushed activity.
type sessionPushEntry struct {
	Scale         float64 `json:"scale"`
	Clients       int     `json:"clients"`
	Activities    int     `json:"activities"`
	Workers       int     `json:"workers"`
	SealAfterMs   int     `json:"seal_after_ms"`
	NumCPU        int     `json:"num_cpu"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	NsPerActivity float64 `json:"ns_per_activity"`
	// AllocsPerOp is heap allocations for one full replay of the trace —
	// the same figure BenchmarkSessionPush -benchmem reports, and the one
	// `make bench-allocs` gates. The close-driven case measured 178,250
	// before the dense identity layer (see AllocsBaseline).
	AllocsPerOp uint64 `json:"allocs_per_op,omitempty"`
}

// monitorIngestEntry records the live monitor's per-CAG ingest cost in
// exact vs sketched accounting (BenchmarkMonitorIngestSketched measures
// the same path interactively).
type monitorIngestEntry struct {
	Mode        string  `json:"mode"` // exact | sketched
	Graphs      int     `json:"graphs"`
	MaxPatterns int     `json:"max_patterns,omitempty"`
	NsPerGraph  float64 `json:"ns_per_graph"`
	AllocsPerOp uint64  `json:"allocs_per_op,omitempty"`
}

type benchReport struct {
	Benchmark  string       `json:"benchmark"`
	NumCPU     int          `json:"num_cpu"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Note       string       `json:"note,omitempty"`
	Entries    []benchEntry `json:"entries"`
	// AllocsBaseline is the close-driven session_push allocs_per_op
	// before the interned identity layer — the reference the current
	// entries' allocation cut is measured against.
	AllocsBaseline uint64 `json:"session_push_allocs_baseline,omitempty"`
	// AllocsBaselineContinuous is the continuous-mode (SealAfter)
	// session_push allocs_per_op before the worker pool reused its
	// ranker/engine pair across sealed components — the reference for
	// the continuous allocation gate (make bench-allocs).
	AllocsBaselineContinuous uint64               `json:"session_push_allocs_baseline_continuous,omitempty"`
	SessionPush              []sessionPushEntry   `json:"session_push,omitempty"`
	MonitorIngest            []monitorIngestEntry `json:"monitor_ingest,omitempty"`
}

// monitorFeed runs one full monitor pass over pre-correlated graphs.
func monitorFeed(graphs []*cag.Graph, sketched bool, maxPatterns int) {
	m := live.NewMonitor(live.Config{
		Interval:          2 * time.Second,
		BaselineIntervals: 2,
		MinRequests:       5,
		Sketched:          sketched,
		MaxPatterns:       maxPatterns,
	})
	for _, g := range graphs {
		m.ConsumeGraph(g)
	}
	m.Flush()
}

// sessionReplay pushes the trace through an online Session in global
// timestamp order with periodic drains — the unified push path every
// execution mode now runs on.
func sessionReplay(tb testing.TB, res *rubis.Result, workers int, sealAfter time.Duration) {
	tb.Helper()
	hosts := make([]string, 0, len(res.PerHost))
	for h := range res.PerHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	arr := make([]*activity.Activity, len(res.Trace))
	copy(arr, res.Trace)
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].Timestamp < arr[j].Timestamp })
	sess, err := core.NewSession(core.Options{
		Window:     10 * time.Millisecond,
		EntryPorts: []int{rubis.EntryPort},
		IPToHost:   res.IPToHost,
		Workers:    workers,
		SealAfter:  sealAfter,
		OnGraph:    func(*cag.Graph) {},
	}, hosts)
	if err != nil {
		tb.Fatal(err)
	}
	for i, a := range arr {
		if err := sess.Push(a); err != nil {
			tb.Fatal(err)
		}
		if (i+1)%256 == 0 {
			sess.Drain()
		}
	}
	out := sess.Close()
	if out.Activities != len(arr) {
		tb.Fatalf("replayed %d activities, want %d", out.Activities, len(arr))
	}
}

// BenchmarkSessionPush measures the unified push path end to end (push +
// periodic drain + close), reported in ns per pushed activity — the
// figure to watch when touching stream.go's ingest/seal/emit stages.
func BenchmarkSessionPush(b *testing.B) {
	cfg := rubis.DefaultConfig(300)
	cfg.Scale = 0.05
	res, err := rubis.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name      string
		workers   int
		sealAfter time.Duration
	}{
		{"seq-close-driven", 1, 0},
		{"seq-continuous", 1, 250 * time.Millisecond},
		{"sharded-continuous", 4, 250 * time.Millisecond},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				sessionReplay(b, res, bc.workers, bc.sealAfter)
			}
			perAct := float64(time.Since(start).Nanoseconds()) / float64(b.N*len(res.Trace))
			b.ReportMetric(perAct, "ns/activity")
		})
	}
}

// BenchmarkMonitorIngestSketched compares the live monitor's two
// accounting modes over a real correlated workload: exact (per-interval
// CAG retention) vs sketched (space-saving + accumulators, bounded
// memory). Reported in ns per ingested graph.
func BenchmarkMonitorIngestSketched(b *testing.B) {
	cfg := rubis.DefaultConfig(300)
	cfg.Scale = 0.05
	res, err := rubis.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	out, err := core.New(core.Options{
		Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
	}).CorrelateTrace(res.Trace)
	if err != nil {
		b.Fatal(err)
	}
	graphs := out.Graphs
	if len(graphs) == 0 {
		b.Fatal("no graphs")
	}
	for _, bc := range []struct {
		name        string
		sketched    bool
		maxPatterns int
	}{
		{"exact", false, 0},
		{"sketched-64", true, 64},
		{"sketched-16", true, 16},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				monitorFeed(graphs, bc.sketched, bc.maxPatterns)
			}
			perGraph := float64(time.Since(start).Nanoseconds()) / float64(b.N*len(graphs))
			b.ReportMetric(perGraph, "ns/graph")
		})
	}
}

// TestPipelineSpeedupTrajectory measures the sharded correlator against
// the sequential pass across RUBiS scales and worker counts, and records
// the trajectory in BENCH_pipeline.json. On a multi-core machine the
// sharded pipeline must beat sequential wall-clock at scale >= 0.1; on a
// single-CPU machine there is no parallelism to win with (the pipeline
// pays partition + merge overhead and gets no concurrent shard
// execution), so the comparison is recorded but not asserted.
func TestPipelineSpeedupTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup trajectory is not measured in -short mode")
	}
	if raceEnabled {
		t.Skip("race-instrumented timings are 5-20x off; not overwriting BENCH_pipeline.json")
	}

	report := benchReport{
		Benchmark:  "sharded concurrent correlation pipeline vs sequential correlator",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	multiCore := runtime.NumCPU() >= 2
	if !multiCore {
		report.Note = "single-CPU host: parallel speedup not expected; entries record pipeline overhead"
	}

	measure := func(res *rubis.Result, workers int) time.Duration {
		best := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			start := time.Now()
			out, err := core.New(core.Options{
				Window:     10 * time.Millisecond,
				EntryPorts: []int{rubis.EntryPort},
				IPToHost:   res.IPToHost,
				Workers:    workers,
			}).CorrelateTrace(res.Trace)
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Graphs) == 0 {
				t.Fatal("no graphs")
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best
	}

	type scaleCase struct {
		scale   float64
		clients int
	}
	cases := []scaleCase{{0.02, 300}, {0.05, 300}, {0.1, 300}}
	workerCounts := []int{1, 2, 4, 8}

	atScaleTenth := map[int]time.Duration{}
	var resTenth *rubis.Result
	var graphsTenth int
	for _, sc := range cases {
		cfg := rubis.DefaultConfig(sc.clients)
		cfg.Scale = sc.scale
		res, err := rubis.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var graphs int
		{
			out, err := core.New(core.Options{
				Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
			}).CorrelateTrace(res.Trace)
			if err != nil {
				t.Fatal(err)
			}
			graphs = len(out.Graphs)
		}
		var seq time.Duration
		for _, w := range workerCounts {
			best := measure(res, w)
			if w == 1 {
				seq = best
			}
			if sc.scale >= 0.1 {
				atScaleTenth[w] = best
				resTenth, graphsTenth = res, graphs
			}
			speedup := float64(seq) / float64(best)
			report.Entries = append(report.Entries, benchEntry{
				Scale: sc.scale, Clients: sc.clients, Activities: len(res.Trace), Graphs: graphs,
				Workers: w, ShardBy: core.ShardByFlow.String(),
				NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
				BestNs: int64(best), Speedup: speedup, Efficiency: speedup / float64(w),
			})
			t.Logf("scale=%.2f workers=%d best=%v (%.2fx vs sequential, efficiency %.2f)",
				sc.scale, w, best, speedup, speedup/float64(w))
		}
	}

	// GOMAXPROCS control dimension: on a multi-core host, rerun the
	// largest scale pinned to a single P. Speedup there measures pure
	// pipeline overhead (there is no parallel hardware to win with), so
	// comparing the GoMaxProcs:1 rows against the unpinned rows separates
	// "the ring/pipeline costs X" from "the hardware delivers Y". A
	// single-CPU host already *is* the pinned configuration — no rerun.
	if multiCore && resTenth != nil {
		prev := runtime.GOMAXPROCS(1)
		var seq time.Duration
		for _, w := range []int{1, workerCounts[len(workerCounts)-1]} {
			best := measure(resTenth, w)
			if w == 1 {
				seq = best
			}
			speedup := float64(seq) / float64(best)
			report.Entries = append(report.Entries, benchEntry{
				Scale: 0.1, Clients: 300, Activities: len(resTenth.Trace), Graphs: graphsTenth,
				Workers: w, ShardBy: core.ShardByFlow.String(),
				NumCPU: runtime.NumCPU(), GoMaxProcs: 1,
				BestNs: int64(best), Speedup: speedup, Efficiency: speedup / float64(w),
			})
			t.Logf("GOMAXPROCS=1 control: workers=%d best=%v (%.2fx vs pinned sequential)", w, best, speedup)
		}
		runtime.GOMAXPROCS(prev)
	}

	// The unified push path (post-refactor): one session-replay
	// measurement per configuration, best of 3, ns per pushed activity.
	{
		cfg := rubis.DefaultConfig(300)
		cfg.Scale = 0.05
		res, err := rubis.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		report.AllocsBaseline = 178250           // close-driven, before dense interned identities
		report.AllocsBaselineContinuous = 139041 // SealAfter mode, before worker-pool ranker/engine reuse
		for _, pc := range []struct {
			workers   int
			sealAfter time.Duration
		}{{1, 0}, {1, 250 * time.Millisecond}, {4, 250 * time.Millisecond}} {
			best := time.Duration(1 << 62)
			for i := 0; i < 3; i++ {
				start := time.Now()
				sessionReplay(t, res, pc.workers, pc.sealAfter)
				if el := time.Since(start); el < best {
					best = el
				}
			}
			// One instrumented replay for the allocation figure; timing
			// comes from the uninstrumented runs above.
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			sessionReplay(t, res, pc.workers, pc.sealAfter)
			runtime.ReadMemStats(&m1)
			allocs := m1.Mallocs - m0.Mallocs
			perAct := float64(best.Nanoseconds()) / float64(len(res.Trace))
			report.SessionPush = append(report.SessionPush, sessionPushEntry{
				Scale: cfg.Scale, Clients: 300, Activities: len(res.Trace),
				Workers: pc.workers, SealAfterMs: int(pc.sealAfter / time.Millisecond),
				NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
				NsPerActivity: perAct, AllocsPerOp: allocs,
			})
			t.Logf("session push: workers=%d sealafter=%v %.0f ns/activity, %d allocs/op",
				pc.workers, pc.sealAfter, perAct, allocs)
		}
	}

	// Live monitor ingest: exact vs sketched over the same correlated
	// graphs, best of 3 plus one instrumented pass for allocations.
	{
		cfg := rubis.DefaultConfig(300)
		cfg.Scale = 0.05
		res, err := rubis.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := core.New(core.Options{
			Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
		}).CorrelateTrace(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		graphs := out.Graphs
		for _, mc := range []struct {
			mode        string
			sketched    bool
			maxPatterns int
		}{{"exact", false, 0}, {"sketched", true, 64}} {
			best := time.Duration(1 << 62)
			for i := 0; i < 3; i++ {
				start := time.Now()
				monitorFeed(graphs, mc.sketched, mc.maxPatterns)
				if el := time.Since(start); el < best {
					best = el
				}
			}
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			monitorFeed(graphs, mc.sketched, mc.maxPatterns)
			runtime.ReadMemStats(&m1)
			perGraph := float64(best.Nanoseconds()) / float64(len(graphs))
			report.MonitorIngest = append(report.MonitorIngest, monitorIngestEntry{
				Mode: mc.mode, Graphs: len(graphs), MaxPatterns: mc.maxPatterns,
				NsPerGraph: perGraph, AllocsPerOp: m1.Mallocs - m0.Mallocs,
			})
			t.Logf("monitor ingest: mode=%s %.0f ns/graph, %d allocs/op",
				mc.mode, perGraph, m1.Mallocs-m0.Mallocs)
		}
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pipeline.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	if multiCore {
		seq, bestPar := atScaleTenth[1], time.Duration(1<<62)
		bestWorkers := 0
		for w, d := range atScaleTenth {
			if w > 1 && d < bestPar {
				bestPar, bestWorkers = d, w
			}
		}
		if bestPar >= seq {
			// One retry with fresh measurements before failing: a loaded
			// CI host can skew a single 3-repetition sample.
			cfg := rubis.DefaultConfig(300)
			cfg.Scale = 0.1
			res, err := rubis.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			seq, bestPar = measure(res, 1), measure(res, bestWorkers)
		}
		if bestPar >= seq {
			t.Fatalf("multi-core host (%d CPUs) but sharded pipeline (%v) did not beat sequential (%v) at scale 0.1",
				runtime.NumCPU(), bestPar, seq)
		}
	} else {
		t.Logf("single-CPU host: skipping the multi-core speedup assertion (results recorded in BENCH_pipeline.json)")
	}
}

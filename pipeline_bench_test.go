package repro_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rubis"
)

// benchEntry is one measured configuration in the BENCH_pipeline.json
// trajectory. NumCPU/GoMaxProcs are recorded per entry (not only in the
// report header) so entries appended or compared across differently
// sized hosts stay interpretable — 1-CPU numbers record pipeline
// overhead, not speedup.
type benchEntry struct {
	Scale      float64 `json:"scale"`
	Clients    int     `json:"clients"`
	Activities int     `json:"activities"`
	Graphs     int     `json:"graphs"`
	Workers    int     `json:"workers"`
	ShardBy    string  `json:"shard_by"`
	NumCPU     int     `json:"num_cpu"`
	GoMaxProcs int     `json:"gomaxprocs"`
	BestNs     int64   `json:"best_ns"`
	Speedup    float64 `json:"speedup_vs_seq"`
}

type benchReport struct {
	Benchmark  string       `json:"benchmark"`
	NumCPU     int          `json:"num_cpu"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Note       string       `json:"note,omitempty"`
	Entries    []benchEntry `json:"entries"`
}

// TestPipelineSpeedupTrajectory measures the sharded correlator against
// the sequential pass across RUBiS scales and worker counts, and records
// the trajectory in BENCH_pipeline.json. On a multi-core machine the
// sharded pipeline must beat sequential wall-clock at scale >= 0.1; on a
// single-CPU machine there is no parallelism to win with (the pipeline
// pays partition + merge overhead and gets no concurrent shard
// execution), so the comparison is recorded but not asserted.
func TestPipelineSpeedupTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup trajectory is not measured in -short mode")
	}
	if raceEnabled {
		t.Skip("race-instrumented timings are 5-20x off; not overwriting BENCH_pipeline.json")
	}

	report := benchReport{
		Benchmark:  "sharded concurrent correlation pipeline vs sequential correlator",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	multiCore := runtime.NumCPU() >= 2
	if !multiCore {
		report.Note = "single-CPU host: parallel speedup not expected; entries record pipeline overhead"
	}

	measure := func(res *rubis.Result, workers int) time.Duration {
		best := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			start := time.Now()
			out, err := core.New(core.Options{
				Window:     10 * time.Millisecond,
				EntryPorts: []int{rubis.EntryPort},
				IPToHost:   res.IPToHost,
				Workers:    workers,
			}).CorrelateTrace(res.Trace)
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Graphs) == 0 {
				t.Fatal("no graphs")
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best
	}

	type scaleCase struct {
		scale   float64
		clients int
	}
	cases := []scaleCase{{0.02, 300}, {0.05, 300}, {0.1, 300}}
	workerCounts := []int{1, 2, 4, 8}

	atScaleTenth := map[int]time.Duration{}
	for _, sc := range cases {
		cfg := rubis.DefaultConfig(sc.clients)
		cfg.Scale = sc.scale
		res, err := rubis.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var graphs int
		{
			out, err := core.New(core.Options{
				Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
			}).CorrelateTrace(res.Trace)
			if err != nil {
				t.Fatal(err)
			}
			graphs = len(out.Graphs)
		}
		var seq time.Duration
		for _, w := range workerCounts {
			best := measure(res, w)
			if w == 1 {
				seq = best
			}
			if sc.scale >= 0.1 {
				atScaleTenth[w] = best
			}
			report.Entries = append(report.Entries, benchEntry{
				Scale: sc.scale, Clients: sc.clients, Activities: len(res.Trace), Graphs: graphs,
				Workers: w, ShardBy: core.ShardByFlow.String(),
				NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
				BestNs: int64(best), Speedup: float64(seq) / float64(best),
			})
			t.Logf("scale=%.2f workers=%d best=%v (%.2fx vs sequential)", sc.scale, w, best, float64(seq)/float64(best))
		}
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pipeline.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	if multiCore {
		seq, bestPar := atScaleTenth[1], time.Duration(1<<62)
		bestWorkers := 0
		for w, d := range atScaleTenth {
			if w > 1 && d < bestPar {
				bestPar, bestWorkers = d, w
			}
		}
		if bestPar >= seq {
			// One retry with fresh measurements before failing: a loaded
			// CI host can skew a single 3-repetition sample.
			cfg := rubis.DefaultConfig(300)
			cfg.Scale = 0.1
			res, err := rubis.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			seq, bestPar = measure(res, 1), measure(res, bestWorkers)
		}
		if bestPar >= seq {
			t.Fatalf("multi-core host (%d CPUs) but sharded pipeline (%v) did not beat sequential (%v) at scale 0.1",
				runtime.NumCPU(), bestPar, seq)
		}
	} else {
		t.Logf("single-CPU host: skipping the multi-core speedup assertion (results recorded in BENCH_pipeline.json)")
	}
}

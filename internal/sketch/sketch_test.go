package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// zipfStream draws n keys from a Zipf distribution over vocab distinct
// items — the skewed shape pattern-signature streams actually have.
func zipfStream(seed int64, n, vocab int, s float64) []string {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(vocab-1))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%04d", z.Uint64())
	}
	return out
}

func uniformStream(seed int64, n, vocab int) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%04d", rng.Intn(vocab))
	}
	return out
}

// TestTopKErrorBounds asserts the space-saving guarantees on randomized
// streams: for every tracked item Count-Err ≤ true ≤ Count, every error
// bound ≤ N/k, and every item with true count > N/k is tracked.
func TestTopKErrorBounds(t *testing.T) {
	cases := []struct {
		name   string
		stream []string
		k      int
	}{
		{"zipf-seed1", zipfStream(1, 20000, 500, 1.3), 32},
		{"zipf-seed2", zipfStream(2, 20000, 500, 1.1), 64},
		{"zipf-tiny-k", zipfStream(3, 10000, 200, 1.5), 8},
		{"uniform-seed4", uniformStream(4, 20000, 100), 64},
		{"uniform-overload", uniformStream(5, 5000, 1000), 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			truth := make(map[string]uint64)
			sk := NewTopK(tc.k)
			for _, key := range tc.stream {
				truth[key]++
				sk.Observe(key)
			}
			n := uint64(len(tc.stream))
			if sk.N() != n {
				t.Fatalf("N = %d, want %d", sk.N(), n)
			}
			if sk.Len() > tc.k {
				t.Fatalf("tracked %d items, capacity %d", sk.Len(), tc.k)
			}
			bound := n / uint64(tc.k)
			for _, c := range sk.Items() {
				tru := truth[c.Key]
				if c.Count < tru {
					t.Fatalf("%s: estimate %d underestimates true %d", c.Key, c.Count, tru)
				}
				if c.Count-c.Err > tru {
					t.Fatalf("%s: lower bound %d exceeds true %d", c.Key, c.Count-c.Err, tru)
				}
				if c.Err > bound {
					t.Fatalf("%s: err bound %d exceeds N/k = %d", c.Key, c.Err, bound)
				}
			}
			for key, tru := range truth {
				if tru > bound {
					if _, _, tracked := sk.Count(key); !tracked {
						t.Fatalf("heavy hitter %s (true %d > N/k %d) not tracked", key, tru, bound)
					}
				}
			}
		})
	}
}

// TestTopKDeterministic: identical streams produce identical rankings
// regardless of map iteration order.
func TestTopKDeterministic(t *testing.T) {
	stream := zipfStream(7, 5000, 300, 1.2)
	a, b := NewTopK(16), NewTopK(16)
	for _, k := range stream {
		a.Observe(k)
		b.Observe(k)
	}
	ia, ib := a.Items(), b.Items()
	if len(ia) != len(ib) {
		t.Fatalf("lengths differ: %d vs %d", len(ia), len(ib))
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("item %d differs: %+v vs %+v", i, ia[i], ib[i])
		}
	}
}

func TestTopKSmall(t *testing.T) {
	sk := NewTopK(2)
	sk.Observe("a")
	sk.Observe("a")
	sk.Observe("b")
	if ev, ok := sk.Observe("c"); !ok || ev != "b" {
		t.Fatalf("expected eviction of b, got %q ok=%v", ev, ok)
	}
	count, errB, tracked := sk.Count("c")
	if !tracked || count != 2 || errB != 1 {
		t.Fatalf("c = (%d, %d, %v), want (2, 1, true)", count, errB, tracked)
	}
	if _, _, tracked := sk.Count("b"); tracked {
		t.Fatal("evicted key still tracked")
	}
	sk.Reset()
	if sk.Len() != 0 || sk.N() != 0 {
		t.Fatalf("reset left Len=%d N=%d", sk.Len(), sk.N())
	}
}

// TestQuantileRankError asserts the GK guarantee against exact sorted
// ranks: for every queried phi the returned value's true rank is within
// ε·n (+1 for boundary discreteness) of phi·n.
func TestQuantileRankError(t *testing.T) {
	type gen struct {
		name string
		draw func(r *rand.Rand) float64
	}
	gens := []gen{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 1000 }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 50 }},
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()) }},
	}
	phis := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}
	for _, g := range gens {
		for _, eps := range []float64{0.01, 0.05} {
			t.Run(fmt.Sprintf("%s-eps%.2f", g.name, eps), func(t *testing.T) {
				for seed := int64(1); seed <= 3; seed++ {
					rng := rand.New(rand.NewSource(seed))
					const n = 20000
					vals := make([]float64, n)
					q := NewQuantile(eps)
					for i := range vals {
						vals[i] = g.draw(rng)
						q.Observe(vals[i])
					}
					sort.Float64s(vals)
					for _, phi := range phis {
						got := q.Query(phi)
						// True rank band of got in the sorted data.
						lo := sort.SearchFloat64s(vals, got)
						hi := sort.Search(n, func(i int) bool { return vals[i] > got })
						target := phi * n
						slack := eps*n + 1
						if float64(hi) < target-slack || float64(lo) > target+slack {
							t.Fatalf("seed %d phi=%.2f: value %g has rank [%d,%d], target %.0f ± %.0f",
								seed, phi, got, lo, hi, target, slack)
						}
					}
				}
			})
		}
	}
}

// TestQuantileBoundedSize: the summary stays within the GK space bound
// O((1/ε)·log(ε·n)) — the property that makes the sketched Monitor's
// memory fixed.
func TestQuantileBoundedSize(t *testing.T) {
	for _, eps := range []float64{0.01, 0.05} {
		rng := rand.New(rand.NewSource(42))
		q := NewQuantile(eps)
		const n = 200000
		for i := 0; i < n; i++ {
			q.Observe(rng.Float64())
		}
		// The classic bound is (11/(2ε))·log2(2εn); allow a constant
		// slop for the insert-batch between compressions.
		bound := int(11.0/(2.0*eps)*math.Log2(2.0*eps*float64(n))) + int(1.0/(2.0*eps)) + 8
		if q.Size() > bound {
			t.Fatalf("eps=%.2f: %d tuples after %d observations, bound %d", eps, q.Size(), n, bound)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	q := NewQuantile(0)
	if q.Eps() != 0.01 {
		t.Fatalf("default eps = %g", q.Eps())
	}
	if q.Query(0.5) != 0 {
		t.Fatal("empty sketch should query 0")
	}
	q.Observe(7)
	for _, phi := range []float64{-1, 0, 0.5, 1, 2} {
		if got := q.Query(phi); got != 7 {
			t.Fatalf("single-value sketch Query(%g) = %g", phi, got)
		}
	}
	// Monotone stream: min and max are exact.
	q2 := NewQuantile(0.01)
	for i := 1; i <= 1000; i++ {
		q2.Observe(float64(i))
	}
	if q2.Query(0) != 1 {
		t.Fatalf("min = %g, want 1", q2.Query(0))
	}
	if q2.Query(1) != 1000 {
		t.Fatalf("max = %g, want 1000", q2.Query(1))
	}
	if q2.N() != 1000 {
		t.Fatalf("N = %d", q2.N())
	}
}

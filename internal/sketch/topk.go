// Package sketch provides the bounded-memory streaming summaries the
// live monitor's sketched mode runs on: a space-saving heavy-hitter
// sketch for pattern-signature frequencies (TopK) and a Greenwald–
// Khanna quantile sketch for latency distributions (Quantile). Both
// hold a fixed number of counters/tuples regardless of stream length,
// trading exactness for provable error bounds (see the package tests,
// which assert the bounds against exact computation on randomized
// streams).
package sketch

import "sort"

// Counter is one tracked item in a TopK sketch. Count overestimates the
// item's true frequency by at most Err: true ∈ [Count-Err, Count].
type Counter struct {
	Key   string
	Count uint64
	// Err is the overestimation bound inherited from the counter this
	// item displaced (0 if the item has been tracked since the sketch
	// had spare capacity).
	Err uint64
}

// TopK is the space-saving heavy-hitter sketch (Metwally et al.,
// "Efficient Computation of Frequent and Top-k Elements in Data
// Streams"). It tracks at most k items; when a new item arrives at
// capacity, the minimum-count item is evicted and the newcomer inherits
// its count as the error bound. Guarantees, with N observations total:
//
//   - for every tracked item, Count-Err ≤ true ≤ Count;
//   - every Err ≤ N/k, so any item with true frequency > N/k is
//     guaranteed to be tracked.
//
// Ties on eviction break deterministically toward the smallest key, so
// identical streams produce identical sketches.
type TopK struct {
	k     int
	n     uint64
	items map[string]*topkItem
	heap  []*topkItem // min-heap by (count asc, key desc): root = eviction victim
}

type topkItem struct {
	key   string
	count uint64
	err   uint64
	pos   int // index in heap
}

// NewTopK returns a sketch tracking at most k items. k < 1 is treated
// as 1.
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, items: make(map[string]*topkItem, k)}
}

// Observe counts one occurrence of key. If tracking key required
// evicting another item, the evicted key is returned with ok=true.
func (t *TopK) Observe(key string) (evicted string, ok bool) {
	t.n++
	if it, exists := t.items[key]; exists {
		it.count++
		t.siftDown(it.pos)
		return "", false
	}
	if len(t.items) < t.k {
		it := &topkItem{key: key, count: 1, pos: len(t.heap)}
		t.items[key] = it
		t.heap = append(t.heap, it)
		t.siftUp(it.pos)
		return "", false
	}
	// At capacity: replace the minimum-count item. The newcomer's count
	// becomes min+1 with error bound min — the classic space-saving
	// replacement.
	victim := t.heap[0]
	delete(t.items, victim.key)
	evicted = victim.key
	it := &topkItem{key: key, count: victim.count + 1, err: victim.count, pos: 0}
	t.items[key] = it
	t.heap[0] = it
	t.siftDown(0)
	return evicted, true
}

// Count reports the estimated count and error bound for key, and
// whether the sketch currently tracks it.
func (t *TopK) Count(key string) (count, errBound uint64, tracked bool) {
	it, exists := t.items[key]
	if !exists {
		return 0, 0, false
	}
	return it.count, it.err, true
}

// Items returns the tracked counters ordered by count descending, key
// ascending — a deterministic ranking.
func (t *TopK) Items() []Counter {
	out := make([]Counter, 0, len(t.items))
	for _, it := range t.items {
		out = append(out, Counter{Key: it.key, Count: it.count, Err: it.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// N is the total number of observations.
func (t *TopK) N() uint64 { return t.n }

// Len is the number of items currently tracked (≤ k).
func (t *TopK) Len() int { return len(t.items) }

// K is the sketch capacity.
func (t *TopK) K() int { return t.k }

// Reset empties the sketch, keeping its capacity.
func (t *TopK) Reset() {
	t.n = 0
	t.heap = t.heap[:0]
	for k := range t.items {
		delete(t.items, k)
	}
}

// heap ordering: the root is the next eviction victim — smallest count,
// and among equal counts the LARGEST key, so eviction deterministically
// spares smaller keys (stable under permutations of equal-count items).
func (t *TopK) less(i, j int) bool {
	a, b := t.heap[i], t.heap[j]
	if a.count != b.count {
		return a.count < b.count
	}
	return a.key > b.key
}

func (t *TopK) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.heap[i].pos = i
	t.heap[j].pos = j
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(i, parent) {
			return
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && t.less(l, smallest) {
			smallest = l
		}
		if r < n && t.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.swap(i, smallest)
		i = smallest
	}
}

package sketch

import (
	"math"
	"sort"
)

// Quantile is a Greenwald–Khanna ε-approximate quantile sketch
// ("Space-Efficient Online Computation of Quantile Summaries",
// SIGMOD'01). After n observations, Query(phi) returns a value whose
// rank is within ε·n of ceil(phi·n), using O((1/ε)·log(ε·n)) tuples —
// bounded memory for unbounded streams.
type Quantile struct {
	eps     float64
	n       uint64
	tuples  []gkTuple
	pending int // observations since last compress
}

// gkTuple is one GK summary entry: value v covers a band of ranks; g is
// the gap rmin(v)-rmin(prev), delta is rmax(v)-rmin(v).
type gkTuple struct {
	v     float64
	g     uint64
	delta uint64
}

// NewQuantile returns a sketch with rank error ε·n. eps ≤ 0 defaults to
// 0.01 (1% rank error).
func NewQuantile(eps float64) *Quantile {
	if eps <= 0 {
		eps = 0.01
	}
	return &Quantile{eps: eps}
}

// Observe adds one value to the summary.
func (q *Quantile) Observe(v float64) {
	// Find insertion point: first tuple with value >= v.
	idx := sort.Search(len(q.tuples), func(i int) bool { return q.tuples[i].v >= v })
	var delta uint64
	if idx > 0 && idx < len(q.tuples) {
		delta = uint64(math.Floor(2 * q.eps * float64(q.n)))
	}
	q.tuples = append(q.tuples, gkTuple{})
	copy(q.tuples[idx+1:], q.tuples[idx:])
	q.tuples[idx] = gkTuple{v: v, g: 1, delta: delta}
	q.n++
	q.pending++
	if q.pending >= int(1.0/(2.0*q.eps))+1 {
		q.compress()
		q.pending = 0
	}
}

// compress merges adjacent tuples whose combined band stays within the
// 2εn capacity, keeping the summary at O((1/ε)·log(εn)) entries.
func (q *Quantile) compress() {
	if len(q.tuples) < 3 {
		return
	}
	capacity := uint64(math.Floor(2 * q.eps * float64(q.n)))
	// Walk from the tail, merging tuple i into i+1 where allowed. The
	// first and last tuples (stream min/max) are never merged away.
	out := q.tuples
	for i := len(out) - 2; i >= 1; i-- {
		if out[i].g+out[i+1].g+out[i+1].delta < capacity {
			out[i+1].g += out[i].g
			copy(out[i:], out[i+1:])
			out = out[:len(out)-1]
		}
	}
	q.tuples = out
}

// Query returns a value whose rank is within ε·n of phi·n. phi is
// clamped to [0, 1]. Returns 0 on an empty sketch.
func (q *Quantile) Query(phi float64) float64 {
	if len(q.tuples) == 0 {
		return 0
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	// The stream extremes are held exactly (the first and last tuples
	// are never compressed away); answer them directly.
	if phi == 0 {
		return q.tuples[0].v
	}
	if phi == 1 {
		return q.tuples[len(q.tuples)-1].v
	}
	target := phi * float64(q.n)
	margin := q.eps * float64(q.n)
	var rmin uint64
	for i, t := range q.tuples {
		rmin += t.g
		var rmaxNext float64
		if i+1 < len(q.tuples) {
			rmaxNext = float64(rmin + q.tuples[i+1].g + q.tuples[i+1].delta)
		} else {
			return t.v
		}
		if rmaxNext > target+margin {
			return t.v
		}
	}
	return q.tuples[len(q.tuples)-1].v
}

// N is the number of observations.
func (q *Quantile) N() uint64 { return q.n }

// Size is the current number of summary tuples — the figure the
// capacity tests bound.
func (q *Quantile) Size() int { return len(q.tuples) }

// Eps is the configured rank-error fraction.
func (q *Quantile) Eps() float64 { return q.eps }

// Package service builds arbitrary multi-tier services of black boxes on
// the testbed from a declarative specification. The paper's algorithm is
// not specific to RUBiS — §2 claims it covers the concurrent-server design
// patterns of Stevens' UNIX Network Programming (iterative, process-per-
// connection, thread-per-connection). This package makes that claim
// testable: property tests generate random topologies (tier count, pool
// sizes, fan-out, clock skew, segmentation) and assert that the correlator
// still reconstructs every causal path exactly.
package service

import (
	"fmt"
	"time"

	"repro/internal/activity"
	"repro/internal/clock"
	"repro/internal/des"
	"repro/internal/groundtruth"
	"repro/internal/testbed"
)

// PoolKind selects a tier's concurrency model (§2's design patterns).
type PoolKind int

// Pool kinds.
const (
	// ProcessPerConnection dedicates one worker process per inbound
	// connection (Apache prefork style): context PID == TID.
	ProcessPerConnection PoolKind = iota + 1
	// ThreadPerConnection dedicates one pooled kernel thread per inbound
	// connection (JBoss/MySQL style): shared PID, recycled TIDs.
	ThreadPerConnection
)

// String implements fmt.Stringer.
func (k PoolKind) String() string {
	switch k {
	case ProcessPerConnection:
		return "process-per-conn"
	case ThreadPerConnection:
		return "thread-per-conn"
	default:
		return fmt.Sprintf("PoolKind(%d)", int(k))
	}
}

// TierSpec describes one tier of the service.
type TierSpec struct {
	// Program is the component's program name (context identifier field).
	Program string
	// Port is the tier's listening port; tier 0's port doubles as the
	// BEGIN/END entry port.
	Port int
	// Kind selects the concurrency model.
	Kind PoolKind
	// PoolSize bounds concurrent execution entities (ignored for tier 0
	// with ProcessPerConnection, which is sized to the client count).
	PoolSize int
	// Cores is the tier node's CPU count.
	Cores int
	// Demand is CPU consumed before calling downstream; PostDemand after
	// the last downstream reply (or before replying, for the last tier).
	Demand     time.Duration
	PostDemand time.Duration
	// Calls is how many sequential requests this tier issues to the next
	// tier per inbound request (0 for the last tier).
	Calls int
	// RequestSize/ReplySize are the message sizes used when THIS tier is
	// the target of a call (or of the client, for tier 0).
	RequestSize int64
	ReplySize   int64
}

// Spec is a whole service.
type Spec struct {
	Tiers []TierSpec
	// Clients is the closed-loop client population.
	Clients int
	// ThinkTime is the mean exponential think time.
	ThinkTime time.Duration
	// Duration is how long clients keep issuing requests.
	Duration time.Duration
	// Net configures every connection (latency, bandwidth, segmentation).
	Net testbed.NetConfig
	// Skew assigns clocks across the tier nodes.
	Skew clock.SkewScenario
	// IdleHold keeps a downstream connection's entity pinned after a reply
	// (0 closes immediately after each exchange... connections persist for
	// the run when negative).
	IdleHold time.Duration
	Seed     int64
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if len(s.Tiers) == 0 {
		return fmt.Errorf("service: no tiers")
	}
	if s.Clients <= 0 {
		return fmt.Errorf("service: no clients")
	}
	for i, tier := range s.Tiers {
		if tier.Program == "" {
			return fmt.Errorf("service: tier %d unnamed", i)
		}
		if tier.Port <= 0 {
			return fmt.Errorf("service: tier %d has no port", i)
		}
		if i < len(s.Tiers)-1 && tier.Calls < 0 {
			return fmt.Errorf("service: tier %d negative fan-out", i)
		}
		if i == len(s.Tiers)-1 && tier.Calls != 0 {
			return fmt.Errorf("service: last tier must not call downstream")
		}
		if tier.Kind != ProcessPerConnection && tier.Kind != ThreadPerConnection {
			return fmt.Errorf("service: tier %d has invalid pool kind", i)
		}
	}
	return nil
}

// Result carries the run's trace and ground truth.
type Result struct {
	Spec      Spec
	Trace     []*activity.Activity
	IPToHost  map[string]string
	Truth     *groundtruth.Truth
	EntryPort int
	Completed int
}

// runner executes a spec.
type runner struct {
	spec    Spec
	cluster *testbed.Cluster
	sim     *des.Simulator
	nodes   []*testbed.Node // one per tier
	clients *testbed.Node
	pools   []*pool
	rng     *des.RNG

	nextReq   int64
	completed int
}

// pool recycles execution entities for one tier.
type pool struct {
	node    *testbed.Node
	program string
	kind    PoolKind
	pid     int
	tokens  *des.TokenPool
	free    []testbed.Entity
}

func (p *pool) acquire(fn func(testbed.Entity)) {
	p.tokens.Acquire(func() {
		var e testbed.Entity
		if n := len(p.free); n > 0 {
			e = p.free[n-1]
			p.free = p.free[:n-1]
		} else if p.kind == ProcessPerConnection {
			pid := p.node.AllocPID()
			e = p.node.NewEntity(p.program, pid, pid)
		} else {
			e = p.node.NewEntity(p.program, p.pid, p.node.AllocPID())
		}
		fn(e)
	})
}

func (p *pool) release(e testbed.Entity) {
	p.free = append(p.free, e)
	p.tokens.Release()
}

// downConn is a persistent connection from an upstream entity to the next
// tier, with the downstream entity pinned to it.
type downConn struct {
	conn     *testbed.Conn
	entity   testbed.Entity
	attached bool
	closed   bool
	idle     *des.Event
	cur      *call
	// down is this entity's persistent connection to the next tier.
	down *downConn
}

type call struct {
	req      int64
	tier     int
	upstream *downConn // where to send the reply (nil for client-facing)
}

// Run executes the service and returns its trace.
func Run(spec Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.ThinkTime <= 0 {
		spec.ThinkTime = 500 * time.Millisecond
	}
	if spec.Duration <= 0 {
		spec.Duration = 10 * time.Second
	}
	r := &runner{spec: spec, cluster: testbed.NewCluster(), rng: des.NewRNG(spec.Seed*911 + 17)}
	r.sim = r.cluster.Sim()

	n := len(spec.Tiers)
	for i, tier := range spec.Tiers {
		node := r.cluster.AddNode(testbed.NodeConfig{
			Name:   fmt.Sprintf("tier%d", i),
			IP:     fmt.Sprintf("10.9.0.%d", i+1),
			Cores:  tier.Cores,
			Traced: true,
			Clock:  spec.Skew.ClockFor(i, n),
		})
		r.nodes = append(r.nodes, node)
		size := tier.PoolSize
		if size <= 0 {
			size = spec.Clients + 8
		}
		if i == 0 && tier.Kind == ProcessPerConnection {
			size = spec.Clients + 8
		}
		r.pools = append(r.pools, &pool{
			node: node, program: tier.Program, kind: tier.Kind,
			pid:    node.AllocPID(),
			tokens: des.NewTokenPool(r.sim, size),
		})
	}
	r.clients = r.cluster.AddNode(testbed.NodeConfig{
		Name: "clients", IP: "10.9.1.1", Cores: 32, Traced: false,
	})

	for c := 0; c < spec.Clients; c++ {
		r.startClient(c)
	}
	r.sim.Run()

	trace := r.cluster.Collector().Merged()
	return &Result{
		Spec:      spec,
		Trace:     trace,
		IPToHost:  r.cluster.IPToHost(),
		Truth:     groundtruth.FromTrace(trace),
		EntryPort: spec.Tiers[0].Port,
		Completed: r.completed,
	}, nil
}

// startClient opens a persistent client connection with a dedicated tier-0
// entity, like a keep-alive HTTP client against a prefork server.
func (r *runner) startClient(id int) {
	ent := r.clients.NewEntity("client", r.clients.AllocPID(), r.clients.AllocPID())
	conn := r.cluster.Dial(r.clients, r.nodes[0], r.spec.Tiers[0].Port, r.spec.Net)
	rng := des.NewRNG(r.spec.Seed*1_000_033 + int64(id))

	front := &downConn{conn: conn}
	r.pools[0].acquire(func(e testbed.Entity) {
		front.entity = e
		front.attached = true
		r.serveLoop(0, front)
	})

	var loop func()
	loop = func() {
		think := rng.Exp(r.spec.ThinkTime)
		r.sim.Schedule(think, func() {
			if r.sim.Now() >= r.spec.Duration {
				return
			}
			req := r.nextReq
			r.nextReq++
			front.cur = &call{req: req, tier: 0, upstream: nil}
			conn.Send(ent, r.spec.Tiers[0].RequestSize, req, nil)
			conn.Read(ent, func() {
				r.completed++
				loop()
			})
		})
	}
	loop()
}

// serveLoop keeps the tier entity reading its inbound connection.
func (r *runner) serveLoop(tier int, dc *downConn) {
	dc.conn.Read(dc.entity, func() {
		if dc.closed {
			return
		}
		r.handle(tier, dc)
	})
}

// handle processes one inbound request at a tier.
func (r *runner) handle(tier int, inbound *downConn) {
	spec := r.spec.Tiers[tier]
	node := r.nodes[tier]
	c := inbound.cur
	node.CPU.Use(r.draw(spec.Demand), func() {
		r.doCalls(tier, inbound, c, 0)
	})
}

// doCalls issues the tier's sequential downstream calls, then replies.
func (r *runner) doCalls(tier int, inbound *downConn, c *call, i int) {
	spec := r.spec.Tiers[tier]
	node := r.nodes[tier]
	if i >= spec.Calls || tier == len(r.spec.Tiers)-1 {
		node.CPU.Use(r.draw(spec.PostDemand), func() {
			inbound.conn.Send(inbound.entity, spec.ReplySize, c.req, nil)
			r.serveLoop(tier, inbound)
			r.armIdle(inbound)
		})
		return
	}
	r.withDownstream(tier, inbound, func(dc *downConn) {
		next := r.spec.Tiers[tier+1]
		dc.cur = &call{req: c.req, tier: tier + 1, upstream: inbound}
		dc.conn.Send(inbound.entity, next.RequestSize, c.req, nil)
		dc.conn.Read(inbound.entity, func() {
			r.doCalls(tier, inbound, c, i+1)
		})
	})
}

// withDownstream reuses or opens the inbound entity's connection to the
// next tier; the downstream entity attaches asynchronously from its pool.
func (r *runner) withDownstream(tier int, inbound *downConn, fn func(*downConn)) {
	if inbound.down != nil && !inbound.down.closed {
		if inbound.down.idle != nil {
			inbound.down.idle.Cancel()
			inbound.down.idle = nil
		}
		fn(inbound.down)
		return
	}
	next := tier + 1
	dc := &downConn{conn: r.cluster.Dial(r.nodes[tier], r.nodes[next], r.spec.Tiers[next].Port, r.spec.Net)}
	inbound.down = dc
	fn(dc)
	r.pools[next].acquire(func(e testbed.Entity) {
		if dc.closed {
			r.pools[next].release(e)
			return
		}
		dc.entity = e
		dc.attached = true
		r.serveLoop(next, dc)
	})
}

// armIdle schedules the eventual teardown of the inbound entity's
// downstream connection after the configured idle hold.
func (r *runner) armIdle(inbound *downConn) {
	dc := inbound.down
	if dc == nil || dc.closed || r.spec.IdleHold < 0 {
		return
	}
	hold := r.spec.IdleHold
	if hold == 0 {
		hold = 50 * time.Millisecond
	}
	if dc.idle != nil {
		dc.idle.Cancel()
	}
	dc.idle = r.sim.Schedule(hold, func() {
		r.closeDown(inbound, dc)
	})
}

// closeDown tears down a downstream connection if it is still current.
func (r *runner) closeDown(inbound *downConn, dc *downConn) {
	if dc.closed || inbound.down != dc {
		return
	}
	dc.closed = true
	inbound.down = nil
	// Cascade: the downstream entity's own downstream connection closes
	// with it, releasing entities back to their pools.
	if dc.down != nil {
		r.closeDown(dc, dc.down)
	}
	if dc.attached {
		r.releaseEntity(dc)
	}
}

func (r *runner) releaseEntity(dc *downConn) {
	for i := range r.nodes {
		if r.nodes[i] == dc.entity.Node {
			r.pools[i].release(dc.entity)
			return
		}
	}
}

func (r *runner) draw(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return r.rng.Normal(mean, mean/6)
}

package service

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/testbed"
)

// threeTier is a representative hand-written spec.
func threeTier() Spec {
	return Spec{
		Tiers: []TierSpec{
			{Program: "front", Port: 80, Kind: ProcessPerConnection, Cores: 2,
				Demand: 2 * time.Millisecond, PostDemand: time.Millisecond, Calls: 1,
				RequestSize: 300, ReplySize: 4000},
			{Program: "mid", Port: 9000, Kind: ThreadPerConnection, PoolSize: 20, Cores: 2,
				Demand: 3 * time.Millisecond, PostDemand: 2 * time.Millisecond, Calls: 2,
				RequestSize: 600, ReplySize: 3000},
			{Program: "store", Port: 9001, Kind: ThreadPerConnection, PoolSize: 40, Cores: 2,
				Demand: 2 * time.Millisecond, PostDemand: 0,
				RequestSize: 200, ReplySize: 1500},
		},
		Clients:   20,
		ThinkTime: 200 * time.Millisecond,
		Duration:  4 * time.Second,
		Net:       testbed.NetConfig{Latency: 100 * time.Microsecond, Bandwidth: 12_500_000, MSS: 1448, RecvChunk: 1800},
		IdleHold:  30 * time.Millisecond,
		Seed:      1,
	}
}

func correlateService(t *testing.T, res *Result, window time.Duration) float64 {
	t.Helper()
	out, err := core.New(core.Options{
		Window:     window,
		EntryPorts: []int{res.EntryPort},
		IPToHost:   res.IPToHost,
	}).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	return res.Truth.Evaluate(out.Graphs).PathAccuracy()
}

func TestThreeTierFullAccuracy(t *testing.T) {
	res, err := Run(threeTier())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if acc := correlateService(t, res, 10*time.Millisecond); acc != 1.0 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestTwoTierIterativeServer(t *testing.T) {
	// Single-tier service: the §2 iterative/process-per-connection model.
	spec := Spec{
		Tiers: []TierSpec{
			{Program: "srv", Port: 80, Kind: ProcessPerConnection, Cores: 1,
				Demand: time.Millisecond, PostDemand: 500 * time.Microsecond,
				RequestSize: 100, ReplySize: 900},
		},
		Clients:  5,
		Duration: 2 * time.Second,
		Seed:     3,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if acc := correlateService(t, res, time.Millisecond); acc != 1.0 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestDeepPipelineFiveTiers(t *testing.T) {
	tiers := []TierSpec{
		{Program: "t0", Port: 80, Kind: ProcessPerConnection, Cores: 2, Demand: time.Millisecond, Calls: 1, RequestSize: 200, ReplySize: 2000},
		{Program: "t1", Port: 9001, Kind: ThreadPerConnection, PoolSize: 16, Cores: 2, Demand: time.Millisecond, Calls: 1, RequestSize: 300, ReplySize: 1500},
		{Program: "t2", Port: 9002, Kind: ThreadPerConnection, PoolSize: 16, Cores: 2, Demand: time.Millisecond, Calls: 2, RequestSize: 300, ReplySize: 1200},
		{Program: "t3", Port: 9003, Kind: ThreadPerConnection, PoolSize: 24, Cores: 2, Demand: time.Millisecond, Calls: 1, RequestSize: 250, ReplySize: 1000},
		{Program: "t4", Port: 9004, Kind: ThreadPerConnection, PoolSize: 32, Cores: 2, Demand: time.Millisecond, RequestSize: 200, ReplySize: 800},
	}
	spec := Spec{
		Tiers: tiers, Clients: 12, ThinkTime: 150 * time.Millisecond,
		Duration: 3 * time.Second, IdleHold: 20 * time.Millisecond,
		Net:  testbed.NetConfig{Latency: 80 * time.Microsecond, MSS: 1000, RecvChunk: 700},
		Skew: clock.SkewScenario{MaxSkew: 300 * time.Millisecond},
		Seed: 7,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if acc := correlateService(t, res, 5*time.Millisecond); acc != 1.0 {
		t.Fatalf("5-tier accuracy = %v", acc)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []Spec{
		{},                      // no tiers
		{Tiers: []TierSpec{{}}}, // no clients
		{Tiers: []TierSpec{{Program: "x", Port: 80, Kind: ThreadPerConnection, Calls: 1}}, Clients: 1}, // last tier calls downstream
		{Tiers: []TierSpec{{Program: "x", Kind: ThreadPerConnection}}, Clients: 1},                     // no port
		{Tiers: []TierSpec{{Program: "x", Port: 80}}, Clients: 1},                                      // no kind
	}
	for i, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
	if err := threeTier().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestPropertyRandomTopologies is the §2 generality claim as a property
// test: any random pipeline of the supported concurrency models, with
// random fan-out, pool sizes, segmentation and clock skew, must correlate
// at exactly 100% path accuracy.
func TestPropertyRandomTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		nTiers := 2 + rng.Intn(3) // 2..4
		var tiers []TierSpec
		for i := 0; i < nTiers; i++ {
			kind := ThreadPerConnection
			if i == 0 || rng.Intn(3) == 0 {
				kind = ProcessPerConnection
			}
			calls := 0
			if i < nTiers-1 {
				calls = 1 + rng.Intn(3)
			}
			tiers = append(tiers, TierSpec{
				Program: string(rune('a'+i)) + "svc",
				Port:    8000 + i,
				Kind:    kind,
				// Small pools force heavy entity recycling.
				PoolSize:    4 + rng.Intn(12),
				Cores:       1 + rng.Intn(3),
				Demand:      time.Duration(200+rng.Intn(2000)) * time.Microsecond,
				PostDemand:  time.Duration(rng.Intn(1000)) * time.Microsecond,
				Calls:       calls,
				RequestSize: int64(100 + rng.Intn(1200)),
				ReplySize:   int64(200 + rng.Intn(6000)),
			})
		}
		spec := Spec{
			Tiers:     tiers,
			Clients:   5 + rng.Intn(20),
			ThinkTime: time.Duration(50+rng.Intn(250)) * time.Millisecond,
			Duration:  2 * time.Second,
			IdleHold:  time.Duration(5+rng.Intn(60)) * time.Millisecond,
			Net: testbed.NetConfig{
				Latency:   time.Duration(20+rng.Intn(400)) * time.Microsecond,
				Bandwidth: 12_500_000,
				MSS:       400 + rng.Intn(1200),
				RecvChunk: 300 + rng.Intn(1800),
			},
			Skew: clock.SkewScenario{
				MaxSkew:  time.Duration(rng.Intn(500)) * time.Millisecond,
				DriftPPM: float64(rng.Intn(200)),
			},
			Seed: seed,
		}
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Completed == 0 {
			t.Fatalf("seed %d: nothing completed", seed)
		}
		window := time.Duration(1+rng.Intn(100)) * time.Millisecond
		if acc := correlateService(t, res, window); acc != 1.0 {
			t.Fatalf("seed %d (%d tiers, %d clients, window %v, skew %v): accuracy = %v",
				seed, nTiers, spec.Clients, window, spec.Skew.MaxSkew, acc)
		}
	}
}

func TestPoolKindString(t *testing.T) {
	if ProcessPerConnection.String() == "" || ThreadPerConnection.String() == "" {
		t.Fatal("empty pool kind strings")
	}
}

func TestResultFields(t *testing.T) {
	res, err := Run(threeTier())
	if err != nil {
		t.Fatal(err)
	}
	if res.EntryPort != 80 {
		t.Fatalf("entry port = %d", res.EntryPort)
	}
	if len(res.IPToHost) != 3 {
		t.Fatalf("traced hosts = %d", len(res.IPToHost))
	}
	if res.Truth.Requests() != res.Completed {
		t.Fatalf("truth %d != completed %d", res.Truth.Requests(), res.Completed)
	}
	// All trace activities belong to traced tier nodes.
	for _, a := range res.Trace {
		if _, ok := map[string]bool{"tier0": true, "tier1": true, "tier2": true}[a.Ctx.Host]; !ok {
			t.Fatalf("unexpected host %q", a.Ctx.Host)
		}
	}
}

func TestPersistentConnections(t *testing.T) {
	// IdleHold < 0 keeps downstream connections (and their entities) for
	// the whole run: thread reuse across requests on ONE connection.
	spec := threeTier()
	spec.IdleHold = -1
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if acc := correlateService(t, res, 10*time.Millisecond); acc != 1.0 {
		t.Fatalf("persistent-conn accuracy = %v", acc)
	}
}

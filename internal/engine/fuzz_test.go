package engine

import (
	"testing"
	"time"

	"repro/internal/activity"
)

// FuzzEngineHandle: arbitrary (even causally impossible) activity sequences
// must never panic the engine, and every emitted CAG must satisfy the
// structural invariants of §3.2.
func FuzzEngineHandle(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{3, 3, 3, 0, 0, 1, 2, 2, 1, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, program []byte) {
		e := New()
		hosts := []string{"h0", "h1", "h2"}
		progs := []string{"p0", "p1"}
		for i, b := range program {
			typ := activity.Type(b%4) + 1
			host := hosts[int(b>>2)%len(hosts)]
			prog := progs[int(b>>4)%len(progs)]
			tid := int(b>>5)%3 + 1
			port := 80
			if b%2 == 0 {
				port = 9000 + int(b%8)
			}
			a := &activity.Activity{
				ID:        int64(i),
				Type:      typ,
				Timestamp: time.Duration(i) * time.Millisecond,
				Ctx:       activity.Context{Host: host, Program: prog, PID: 1, TID: tid},
				Chan: activity.Channel{
					Src: activity.Endpoint{IP: host, Port: 1000 + int(b%16)},
					Dst: activity.Endpoint{IP: hosts[(int(b)+1)%len(hosts)], Port: port},
				},
				Size:  int64(b%32) + 1,
				ReqID: -1, MsgID: -1,
			}
			e.Handle(a)
		}
		for _, g := range e.Outputs() {
			if err := g.Validate(); err != nil {
				t.Fatalf("emitted invalid CAG: %v", err)
			}
		}
		if e.ResidentVertices() < 0 {
			t.Fatalf("resident vertex accounting went negative: %d", e.ResidentVertices())
		}
	})
}

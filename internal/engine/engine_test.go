package engine

import (
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
)

var (
	httpdCtx = activity.Context{Host: "web1", Program: "httpd", PID: 10, TID: 10}
	javaCtx  = activity.Context{Host: "app1", Program: "java", PID: 20, TID: 21}
	mysqlCtx = activity.Context{Host: "db1", Program: "mysqld", PID: 30, TID: 31}

	clientCh = activity.Channel{Src: activity.Endpoint{IP: "10.0.0.9", Port: 4001}, Dst: activity.Endpoint{IP: "10.0.0.1", Port: 80}}
	webApp   = activity.Channel{Src: activity.Endpoint{IP: "10.0.0.1", Port: 34001}, Dst: activity.Endpoint{IP: "10.0.0.2", Port: 8009}}
	appDB    = activity.Channel{Src: activity.Endpoint{IP: "10.0.0.2", Port: 45001}, Dst: activity.Endpoint{IP: "10.0.0.3", Port: 3306}}
)

var nextID int64

func act(typ activity.Type, ms int, ctx activity.Context, ch activity.Channel, size int64, req int64) *activity.Activity {
	nextID++
	return &activity.Activity{
		ID: nextID, Type: typ, Timestamp: time.Duration(ms) * time.Millisecond,
		Ctx: ctx, Chan: ch, Size: size, ReqID: req, MsgID: -1,
	}
}

// simpleRequest returns the candidate stream (already in rank order) for one
// three-tier request starting at base ms.
func simpleRequest(base int, req int64) []*activity.Activity {
	return []*activity.Activity{
		act(activity.Begin, base, httpdCtx, clientCh, 200, req),
		act(activity.Send, base+2, httpdCtx, webApp, 300, req),
		act(activity.Receive, base+5, javaCtx, webApp, 300, req),
		act(activity.Send, base+8, javaCtx, appDB, 100, req),
		act(activity.Receive, base+10, mysqlCtx, appDB, 100, req),
		act(activity.Send, base+15, mysqlCtx, appDB.Reverse(), 900, req),
		act(activity.Receive, base+17, javaCtx, appDB.Reverse(), 900, req),
		act(activity.Send, base+20, javaCtx, webApp.Reverse(), 700, req),
		act(activity.Receive, base+22, httpdCtx, webApp.Reverse(), 700, req),
		act(activity.End, base+24, httpdCtx, clientCh.Reverse(), 700, req),
	}
}

func feed(t *testing.T, e *Engine, as []*activity.Activity) {
	t.Helper()
	for _, a := range as {
		e.Handle(a)
	}
}

func TestSimpleRequestProducesOneCAG(t *testing.T) {
	e := New()
	feed(t, e, simpleRequest(0, 1))
	outs := e.Outputs()
	if len(outs) != 1 {
		t.Fatalf("got %d CAGs, want 1", len(outs))
	}
	g := outs[0]
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.Len() != 10 {
		t.Fatalf("CAG has %d vertices, want 10:\n%s", g.Len(), cag.Dump(g))
	}
	if g.Latency() != 24*time.Millisecond {
		t.Fatalf("latency = %v, want 24ms", g.Latency())
	}
	st := e.Stats()
	if st.Begins != 1 || st.Finished != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DiscardedSends+st.DiscardedReceives+st.DiscardedEnds != 0 {
		t.Fatalf("clean trace discarded activities: %+v", st)
	}
	ids := g.RequestIDs()
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("RequestIDs = %v", ids)
	}
}

func TestSendSegmentMerging(t *testing.T) {
	// Fig. 4: sender sends one 900-byte message as 400+500; receiver reads
	// 300+300+300. The CAG must contain ONE SEND and ONE RECEIVE vertex.
	e := New()
	stream := []*activity.Activity{
		act(activity.Begin, 0, httpdCtx, clientCh, 200, 1),
		act(activity.Send, 2, httpdCtx, webApp, 400, 1),
		act(activity.Send, 3, httpdCtx, webApp, 500, 1),
		act(activity.Receive, 5, javaCtx, webApp, 300, 1),
		act(activity.Receive, 6, javaCtx, webApp, 300, 1),
		act(activity.Receive, 7, javaCtx, webApp, 300, 1),
		act(activity.Send, 9, javaCtx, webApp.Reverse(), 100, 1),
		act(activity.Receive, 11, httpdCtx, webApp.Reverse(), 100, 1),
		act(activity.End, 12, httpdCtx, clientCh.Reverse(), 100, 1),
	}
	feed(t, e, stream)
	outs := e.Outputs()
	if len(outs) != 1 {
		t.Fatalf("got %d CAGs, want 1", len(outs))
	}
	g := outs[0]
	if g.Len() != 6 { // BEGIN, SEND(merged), RECEIVE(merged), SEND, RECEIVE, END
		t.Fatalf("CAG has %d vertices, want 6:\n%s", g.Len(), cag.Dump(g))
	}
	st := e.Stats()
	if st.MergedSends != 1 {
		t.Fatalf("MergedSends = %d, want 1", st.MergedSends)
	}
	if st.PartialReceives != 2 {
		t.Fatalf("PartialReceives = %d, want 2", st.PartialReceives)
	}
	// The merged SEND vertex carries the full 900 bytes and both records.
	send := g.Vertex(1)
	if send.Size != 900 || len(send.Records) != 2 {
		t.Fatalf("merged SEND: size=%d records=%d", send.Size, len(send.Records))
	}
	recv := g.Vertex(2)
	if recv.Size != 900 || len(recv.Records) != 3 {
		t.Fatalf("merged RECEIVE: size=%d records=%d", recv.Size, len(recv.Records))
	}
	// RECEIVE's representative timestamp is the completing segment's.
	if recv.Timestamp != 7*time.Millisecond {
		t.Fatalf("RECEIVE timestamp = %v, want 7ms", recv.Timestamp)
	}
}

func TestThreadReuseSameCAGCheck(t *testing.T) {
	// Two back-to-back requests served by the SAME java thread (thread-pool
	// recycling). Without the same-CAG check the second request's RECEIVE
	// would grow a context edge from the first request's CAG.
	e := New()
	feed(t, e, simpleRequest(0, 1))
	feed(t, e, simpleRequest(100, 2))
	outs := e.Outputs()
	if len(outs) != 2 {
		t.Fatalf("got %d CAGs, want 2", len(outs))
	}
	for i, g := range outs {
		if err := g.Validate(); err != nil {
			t.Fatalf("CAG %d invalid: %v", i, err)
		}
		ids := g.RequestIDs()
		if len(ids) != 1 {
			t.Fatalf("CAG %d mixes requests: %v\n%s", i, ids, cag.Dump(g))
		}
	}
	if e.Stats().ThreadReuseBreaks == 0 {
		t.Fatal("expected the same-CAG check to fire for the reused contexts")
	}
}

func TestReceiveWithoutSendDiscarded(t *testing.T) {
	e := New()
	e.Handle(act(activity.Receive, 1, javaCtx, webApp, 100, -1))
	if e.Stats().DiscardedReceives != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}
	if len(e.Outputs()) != 0 {
		t.Fatal("no CAG should exist")
	}
}

func TestSendWithoutContextDiscarded(t *testing.T) {
	e := New()
	e.Handle(act(activity.Send, 1, javaCtx, appDB, 100, -1))
	if e.Stats().DiscardedSends != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}
}

func TestEndWithoutContextDiscarded(t *testing.T) {
	e := New()
	e.Handle(act(activity.End, 1, httpdCtx, clientCh.Reverse(), 100, -1))
	if e.Stats().DiscardedEnds != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}
}

// chanKey builds the dense key for a channel the way Bind would.
func chanKey(ch activity.Channel) activity.ChanKey {
	a := activity.Activity{Chan: ch, Ctx: activity.Context{Host: "h"}}
	activity.Bind(&a)
	return a.ChanK
}

func TestHasPendingSend(t *testing.T) {
	e := New()
	if e.HasPendingSend(chanKey(webApp)) {
		t.Fatal("empty engine should have no pending send")
	}
	e.Handle(act(activity.Begin, 0, httpdCtx, clientCh, 200, 1))
	e.Handle(act(activity.Send, 2, httpdCtx, webApp, 300, 1))
	if !e.HasPendingSend(chanKey(webApp)) {
		t.Fatal("pending send should be visible")
	}
	e.Handle(act(activity.Receive, 5, javaCtx, webApp, 300, 1))
	if e.HasPendingSend(chanKey(webApp)) {
		t.Fatal("fully received send should be cleared")
	}
}

func TestOverrunReceiveCounted(t *testing.T) {
	e := New()
	e.Handle(act(activity.Begin, 0, httpdCtx, clientCh, 200, 1))
	e.Handle(act(activity.Send, 2, httpdCtx, webApp, 300, 1))
	e.Handle(act(activity.Receive, 5, javaCtx, webApp, 400, 1)) // 100 too many
	st := e.Stats()
	if st.OverrunReceives != 1 {
		t.Fatalf("OverrunReceives = %d", st.OverrunReceives)
	}
	// The vertex still materialises (robustness).
	if st.Receives != 1 {
		t.Fatalf("Receives = %d", st.Receives)
	}
}

func TestReplacedSendCounted(t *testing.T) {
	e := New()
	e.Handle(act(activity.Begin, 0, httpdCtx, clientCh, 200, 1))
	e.Handle(act(activity.Send, 2, httpdCtx, webApp, 300, 1))
	// Second message on the same channel before the first was received
	// (activity loss scenario). Needs a non-SEND context parent in between
	// to avoid merging: simulate via a different httpd context state.
	e.Handle(act(activity.Receive, 3, httpdCtx, webApp.Reverse(), 50, 1)) // discarded (no send)
	e.Handle(act(activity.Send, 4, httpdCtx, appDB, 300, 1))              // different channel => new vertex
	e.Handle(act(activity.Send, 5, httpdCtx, webApp, 300, 1))             // same channel as pending => replaced
	if e.Stats().ReplacedSends != 1 {
		t.Fatalf("ReplacedSends = %d (stats %+v)", e.Stats().ReplacedSends, e.Stats())
	}
}

func TestOutputFuncStreams(t *testing.T) {
	var streamed []*cag.Graph
	e := New(WithOutputFunc(func(g *cag.Graph) { streamed = append(streamed, g) }))
	feed(t, e, simpleRequest(0, 1))
	if len(streamed) != 1 {
		t.Fatalf("streamed %d CAGs, want 1", len(streamed))
	}
	if len(e.Outputs()) != 0 {
		t.Fatal("accumulator should stay empty when streaming")
	}
}

func TestDrainOutputs(t *testing.T) {
	e := New()
	feed(t, e, simpleRequest(0, 1))
	if got := e.DrainOutputs(); len(got) != 1 {
		t.Fatalf("drained %d", len(got))
	}
	if got := e.DrainOutputs(); len(got) != 0 {
		t.Fatalf("second drain returned %d", len(got))
	}
}

func TestInterleavedConcurrentRequests(t *testing.T) {
	// Two requests through DIFFERENT worker entities, interleaved in time —
	// the core concurrency case precise tracing must untangle.
	httpd2 := activity.Context{Host: "web1", Program: "httpd", PID: 11, TID: 11}
	java2 := activity.Context{Host: "app1", Program: "java", PID: 20, TID: 22}
	mysql2 := activity.Context{Host: "db1", Program: "mysqld", PID: 30, TID: 32}
	client2 := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.8", Port: 4002}, Dst: activity.Endpoint{IP: "10.0.0.1", Port: 80}}
	webApp2 := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.1", Port: 34002}, Dst: activity.Endpoint{IP: "10.0.0.2", Port: 8009}}
	appDB2 := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.2", Port: 45002}, Dst: activity.Endpoint{IP: "10.0.0.3", Port: 3306}}

	r1 := simpleRequest(0, 1)
	var r2 []*activity.Activity
	remap := map[activity.Context]activity.Context{httpdCtx: httpd2, javaCtx: java2, mysqlCtx: mysql2}
	chmap := map[activity.Channel]activity.Channel{
		clientCh: client2, webApp: webApp2, appDB: appDB2,
		clientCh.Reverse(): client2.Reverse(), webApp.Reverse(): webApp2.Reverse(), appDB.Reverse(): appDB2.Reverse(),
	}
	for _, a := range simpleRequest(1, 2) {
		b := *a
		b.Ctx = remap[a.Ctx]
		b.Chan = chmap[a.Chan]
		r2 = append(r2, &b)
	}
	// Interleave strictly.
	e := New()
	for i := range r1 {
		e.Handle(r1[i])
		e.Handle(r2[i])
	}
	outs := e.Outputs()
	if len(outs) != 2 {
		t.Fatalf("got %d CAGs, want 2", len(outs))
	}
	for i, g := range outs {
		if err := g.Validate(); err != nil {
			t.Fatalf("CAG %d: %v", i, err)
		}
		if ids := g.RequestIDs(); len(ids) != 1 {
			t.Fatalf("CAG %d mixes requests %v", i, ids)
		}
	}
}

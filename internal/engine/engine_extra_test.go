package engine

import (
	"testing"
	"time"

	"repro/internal/activity"
)

func TestBeginSegmentMerging(t *testing.T) {
	// A request body larger than one segment arrives as several frontier
	// RECEIVEs, all classified BEGIN; trailing ones merge into the root.
	e := New()
	e.Handle(act(activity.Begin, 0, httpdCtx, clientCh, 1448, 1))
	e.Handle(act(activity.Begin, 1, httpdCtx, clientCh, 600, 1))
	e.Handle(act(activity.Send, 3, httpdCtx, webApp, 300, 1))
	e.Handle(act(activity.Receive, 5, javaCtx, webApp, 300, 1))
	e.Handle(act(activity.Send, 7, javaCtx, webApp.Reverse(), 100, 1))
	e.Handle(act(activity.Receive, 9, httpdCtx, webApp.Reverse(), 100, 1))
	e.Handle(act(activity.End, 11, httpdCtx, clientCh.Reverse(), 50, 1))

	st := e.Stats()
	if st.MergedBegins != 1 {
		t.Fatalf("MergedBegins = %d", st.MergedBegins)
	}
	if st.Begins != 1 || st.Finished != 1 {
		t.Fatalf("stats: %+v", st)
	}
	g := e.Outputs()[0]
	root := g.Root()
	if root.Size != 2048 || len(root.Records) != 2 {
		t.Fatalf("merged root: size=%d records=%d", root.Size, len(root.Records))
	}
}

func TestBeginNotMergedAcrossRequests(t *testing.T) {
	// Two sequential requests on the same keep-alive connection: the
	// second BEGIN must start a NEW CAG, not merge into the finished one.
	e := New()
	e.Handle(act(activity.Begin, 0, httpdCtx, clientCh, 200, 1))
	e.Handle(act(activity.End, 2, httpdCtx, clientCh.Reverse(), 100, 1))
	e.Handle(act(activity.Begin, 10, httpdCtx, clientCh, 200, 2))
	e.Handle(act(activity.End, 12, httpdCtx, clientCh.Reverse(), 100, 2))
	if got := len(e.Outputs()); got != 2 {
		t.Fatalf("CAGs = %d, want 2", got)
	}
	if e.Stats().MergedBegins != 0 {
		t.Fatalf("wrongly merged BEGINs: %+v", e.Stats())
	}
}

func TestEndSegmentMergingKeepsTruth(t *testing.T) {
	// Multi-segment response: trailing END segments merge so ground truth
	// stays complete even though the graph is finished.
	e := New()
	e.Handle(act(activity.Begin, 0, httpdCtx, clientCh, 200, 1))
	e.Handle(act(activity.End, 2, httpdCtx, clientCh.Reverse(), 1448, 1))
	e.Handle(act(activity.End, 3, httpdCtx, clientCh.Reverse(), 1448, 1))
	e.Handle(act(activity.End, 4, httpdCtx, clientCh.Reverse(), 704, 1))
	if e.Stats().MergedEnds != 2 {
		t.Fatalf("MergedEnds = %d", e.Stats().MergedEnds)
	}
	g := e.Outputs()[0]
	end := g.End()
	if end.Size != 3600 || len(end.Records) != 3 {
		t.Fatalf("merged END: size=%d records=%d", end.Size, len(end.Records))
	}
	if got := len(g.RecordIDs()); got != 4 {
		t.Fatalf("records in CAG = %d, want 4", got)
	}
}

func TestUnfinishedCountAndResidency(t *testing.T) {
	e := New()
	e.Handle(act(activity.Begin, 0, httpdCtx, clientCh, 200, 1))
	e.Handle(act(activity.Send, 2, httpdCtx, webApp, 300, 1))
	if e.Unfinished() != 1 {
		t.Fatalf("Unfinished = %d", e.Unfinished())
	}
	if e.ResidentVertices() != 2 {
		t.Fatalf("resident = %d", e.ResidentVertices())
	}
	e.Handle(act(activity.Receive, 5, javaCtx, webApp, 300, 1))
	e.Handle(act(activity.Send, 7, javaCtx, webApp.Reverse(), 100, 1))
	e.Handle(act(activity.Receive, 9, httpdCtx, webApp.Reverse(), 100, 1))
	e.Handle(act(activity.End, 11, httpdCtx, clientCh.Reverse(), 50, 1))
	if e.Unfinished() != 0 {
		t.Fatalf("Unfinished after END = %d", e.Unfinished())
	}
	if e.ResidentVertices() != 0 {
		t.Fatalf("resident after output = %d", e.ResidentVertices())
	}
	if e.PeakResidentVertices() < 5 {
		t.Fatalf("peak resident = %d", e.PeakResidentVertices())
	}
}

func TestIndexSizesTrackMaps(t *testing.T) {
	e := New()
	e.Handle(act(activity.Begin, 0, httpdCtx, clientCh, 200, 1))
	e.Handle(act(activity.Send, 2, httpdCtx, webApp, 300, 1))
	mm, cm := e.IndexSizes()
	if mm != 1 || cm != 1 {
		t.Fatalf("index sizes: mmap=%d cmap=%d", mm, cm)
	}
	e.Handle(act(activity.Receive, 5, javaCtx, webApp, 300, 1))
	mm, _ = e.IndexSizes()
	if mm != 0 {
		t.Fatalf("mmap after full receive = %d", mm)
	}
}

func TestSendMergeRequiresSameChannel(t *testing.T) {
	// Consecutive SENDs from one context to DIFFERENT channels must stay
	// separate vertices (the paper's merge is per message).
	e := New()
	e.Handle(act(activity.Begin, 0, httpdCtx, clientCh, 200, 1))
	e.Handle(act(activity.Send, 2, httpdCtx, webApp, 300, 1))
	other := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.1", Port: 35000}, Dst: activity.Endpoint{IP: "10.0.0.3", Port: 3306}}
	e.Handle(act(activity.Send, 3, httpdCtx, other, 300, 1))
	if e.Stats().MergedSends != 0 {
		t.Fatalf("cross-channel SENDs merged: %+v", e.Stats())
	}
	if e.Stats().Sends != 2 {
		t.Fatalf("Sends = %d", e.Stats().Sends)
	}
}

func TestStringer(t *testing.T) {
	e := New()
	if e.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestHandleMaxTypeIgnored(t *testing.T) {
	e := New()
	a := act(activity.Begin, 0, httpdCtx, clientCh, 200, 1)
	a.Type = activity.MaxType
	if g := e.Handle(a); g != nil {
		t.Fatal("sentinel produced a graph")
	}
	if e.Stats().Begins != 0 {
		t.Fatal("sentinel counted as BEGIN")
	}
}

func TestReceiveTimestampIsCompletionSegment(t *testing.T) {
	e := New()
	e.Handle(act(activity.Begin, 0, httpdCtx, clientCh, 200, 1))
	e.Handle(act(activity.Send, 2, httpdCtx, webApp, 600, 1))
	e.Handle(act(activity.Receive, 5, javaCtx, webApp, 200, 1))
	e.Handle(act(activity.Receive, 8, javaCtx, webApp, 400, 1))
	// Walk cmap via a follow-up send to locate the RECEIVE vertex.
	e.Handle(act(activity.Send, 9, javaCtx, webApp.Reverse(), 100, 1))
	e.Handle(act(activity.Receive, 11, httpdCtx, webApp.Reverse(), 100, 1))
	e.Handle(act(activity.End, 13, httpdCtx, clientCh.Reverse(), 50, 1))
	g := e.Outputs()[0]
	recv := g.Vertex(2)
	if recv.Type != activity.Receive || recv.Timestamp != 8*time.Millisecond {
		t.Fatalf("receive vertex: %v", recv)
	}
}

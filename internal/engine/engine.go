// Package engine implements the CAG-construction half of the Correlator —
// the `correlate` procedure of Fig. 3 in the paper. The engine consumes the
// candidate activities chosen by the ranker, in ranker order, and maintains
// two index maps over unfinished CAGs:
//
//   - mmap: message identifier (end-to-end channel) → the unmatched SEND
//     vertex on that channel, with the count of bytes not yet consumed by
//     RECEIVE activities. SEND/RECEIVE matching is n-to-n (Fig. 4): a
//     sender may emit a message in several consecutive SEND segments which
//     the engine merges by size, and a receiver may drain it in several
//     RECEIVE segments which the engine counts down, materialising the
//     RECEIVE vertex when the byte count reaches zero.
//   - cmap: context identifier → the latest activity vertex observed in
//     that execution entity, used to resolve adjacent context relations.
//
// Thread-pool context reuse (one thread serving many requests over its
// lifetime) is defeated by the same-CAG check of lines 29–32: the context
// edge into a RECEIVE is added only when the message parent and the context
// parent already belong to the same CAG.
package engine

import (
	"fmt"

	"repro/internal/activity"
	"repro/internal/cag"
)

// Stats counts engine actions; the evaluation harness reads these.
type Stats struct {
	Begins          uint64 // CAGs created
	Finished        uint64 // CAGs completed by an END
	MergedSends     uint64 // SEND segments merged into an earlier SEND (Fig. 4)
	MergedBegins    uint64 // BEGIN segments merged into the root (multi-segment request)
	MergedEnds      uint64 // END segments merged into the END vertex (multi-segment response)
	PartialReceives uint64 // RECEIVE segments that left bytes outstanding
	Receives        uint64 // RECEIVE vertices materialised
	Sends           uint64 // SEND vertices materialised

	// Discards: activities the engine could not attach. In a clean trace
	// all of these stay zero; noise and injected loss raise them.
	DiscardedSends    uint64 // SEND with no context parent
	DiscardedReceives uint64 // RECEIVE with no pending SEND on its channel
	DiscardedEnds     uint64 // END with no context parent
	OverrunReceives   uint64 // RECEIVE consumed more bytes than were sent
	ReplacedSends     uint64 // new SEND on a channel that still had pending bytes
	ThreadReuseBreaks uint64 // context edge suppressed by the same-CAG check
}

// pendingSend is stored by value in mmap: one live message per channel,
// mutated read-modify-write, so the per-SEND heap allocation of a
// pointer-valued map is avoided entirely.
type pendingSend struct {
	vertex    *cag.Vertex
	graph     *cag.Graph
	remaining int64
	partial   []*activity.Activity // RECEIVE segments consumed so far
}

type ctxEntry struct {
	vertex *cag.Vertex
	graph  *cag.Graph
}

// Engine builds CAGs from ranked candidate activities. Both index maps
// key on the dense activity keys (activity.ChanKey / activity.CtxKey):
// string-free fixed-width hashing on the per-candidate hot path.
type Engine struct {
	mmap map[activity.ChanKey]pendingSend
	cmap map[activity.CtxKey]ctxEntry

	outputs []*cag.Graph
	onGraph func(*cag.Graph)
	stats   Stats

	// resident tracks vertices held in unfinished CAGs — the engine half of
	// the Fig. 11 memory accounting. It rises as vertices are added and
	// falls when a finished CAG is emitted.
	resident     int
	peakResident int
}

// Option configures an Engine.
type Option func(*Engine)

// WithOutputFunc streams each finished CAG to fn instead of (in addition
// to) accumulating it; pass fn that retains nothing to bound memory.
func WithOutputFunc(fn func(*cag.Graph)) Option {
	return func(e *Engine) { e.onGraph = fn }
}

// New returns an empty engine.
func New(opts ...Option) *Engine {
	e := &Engine{
		mmap: make(map[activity.ChanKey]pendingSend),
		cmap: make(map[activity.CtxKey]ctxEntry),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Reset returns the engine to its empty state while keeping the mmap and
// cmap capacity — the worker-pool variant of New for correlating many
// sealed components on one engine. The previous run's outputs slice is
// dropped, never truncated and reused, so graphs already handed to the
// caller stay valid after the reset.
func (e *Engine) Reset() {
	clear(e.mmap)
	clear(e.cmap)
	e.outputs = nil
	e.stats = Stats{}
	e.resident = 0
	e.peakResident = 0
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// HasPendingSend reports whether mmap holds an unmatched SEND for the
// given channel (by dense key) — the query behind the ranker's Rule 1 and
// is_noise.
func (e *Engine) HasPendingSend(ch activity.ChanKey) bool {
	p, ok := e.mmap[ch]
	return ok && p.remaining > 0
}

// PendingBytes returns the number of bytes of the channel's unmatched SEND
// that RECEIVE activities have not yet consumed, or 0 when none is pending.
// The ranker's size-aware Rule 1 uses it: a RECEIVE only becomes a
// candidate once every SEND segment it covers has reached the engine,
// otherwise the byte countdown of Fig. 4 would go negative.
func (e *Engine) PendingBytes(ch activity.ChanKey) int64 {
	p, ok := e.mmap[ch]
	if !ok || p.remaining < 0 {
		return 0
	}
	return p.remaining
}

// Outputs returns the finished CAGs accumulated so far (in completion
// order). The engine keeps accumulating unless WithOutputFunc consumers
// call DrainOutputs.
func (e *Engine) Outputs() []*cag.Graph { return e.outputs }

// DrainOutputs returns finished CAGs and clears the accumulator — for
// streaming callers that bound memory.
func (e *Engine) DrainOutputs() []*cag.Graph {
	out := e.outputs
	e.outputs = nil
	return out
}

// Unfinished returns the number of CAGs started but not yet completed.
func (e *Engine) Unfinished() int {
	return int(e.stats.Begins - e.stats.Finished)
}

// IndexSizes returns the current sizes of mmap and cmap, for the memory
// accounting of Fig. 11.
func (e *Engine) IndexSizes() (mmapLen, cmapLen int) {
	return len(e.mmap), len(e.cmap)
}

// ResidentVertices returns the number of vertices currently held in
// unfinished CAGs.
func (e *Engine) ResidentVertices() int { return e.resident }

// PeakResidentVertices returns the maximum ResidentVertices observed.
func (e *Engine) PeakResidentVertices() int { return e.peakResident }

func (e *Engine) addResident(n int) {
	e.resident += n
	if e.resident > e.peakResident {
		e.peakResident = e.resident
	}
}

// Handle processes one candidate activity — one iteration of the Fig. 3
// while loop. It returns the CAG finished by this activity, if any.
func (e *Engine) Handle(a *activity.Activity) *cag.Graph {
	if !a.CtxK.Bound() {
		// Hand-built records reach the engine unbound; decode-boundary
		// records arrive with their keys already filled.
		activity.Bind(a)
	}
	switch a.Type {
	case activity.Begin:
		e.handleBegin(a)
	case activity.End:
		return e.handleEnd(a)
	case activity.Send:
		e.handleSend(a)
	case activity.Receive:
		e.handleReceive(a)
	case activity.MaxType:
		// Sentinel never appears in a trace; ignore defensively.
	}
	return nil
}

// handleBegin: lines 3–4 — create a CAG with the BEGIN as root. A request
// larger than one TCP segment arrives as several frontier RECEIVEs, all
// classified BEGIN; the trailing segments merge into the root the same way
// Fig. 4 merges SEND segments.
func (e *Engine) handleBegin(a *activity.Activity) {
	if parent, ok := e.cmap[a.CtxK]; ok && !parent.graph.Finished() &&
		parent.vertex.Type == activity.Begin && parent.vertex.Chan == a.Chan &&
		parent.graph.Len() == 1 {
		parent.vertex.Size += a.Size
		parent.vertex.Records = append(parent.vertex.Records, a)
		e.stats.MergedBegins++
		return
	}
	v := cag.NewVertex(a)
	g := cag.New(v)
	e.cmap[a.CtxK] = ctxEntry{vertex: v, graph: g}
	e.stats.Begins++
	e.addResident(1)
}

// handleEnd: lines 5–11 — attach via the context relation and output.
func (e *Engine) handleEnd(a *activity.Activity) *cag.Graph {
	parent, ok := e.cmap[a.CtxK]
	if !ok {
		e.stats.DiscardedEnds++
		return nil
	}
	if parent.vertex.Type == activity.End && parent.vertex.Chan == a.Chan {
		// Trailing segment of a multi-segment response: merge into the END
		// vertex even though the graph is already finished — only the
		// vertex's records and byte count change, not the structure.
		parent.vertex.Size += a.Size
		parent.vertex.Records = append(parent.vertex.Records, a)
		e.stats.MergedEnds++
		return nil
	}
	if parent.graph.Finished() {
		e.stats.DiscardedEnds++
		return nil
	}
	v := cag.NewVertex(a)
	if err := parent.graph.AddVertex(v, cag.ContextEdge, parent.vertex); err != nil {
		e.stats.DiscardedEnds++
		return nil
	}
	if err := parent.graph.Finish(); err != nil {
		e.stats.DiscardedEnds++
		return nil
	}
	e.cmap[a.CtxK] = ctxEntry{vertex: v, graph: parent.graph}
	e.stats.Finished++
	g := parent.graph
	e.addResident(1)
	e.resident -= g.Len()
	if e.onGraph != nil {
		e.onGraph(g)
	} else {
		e.outputs = append(e.outputs, g)
	}
	return g
}

// handleSend: lines 12–21 — either merge into the previous SEND segment of
// the same message (same context, same channel) or materialise a new SEND
// vertex hanging off the context parent.
func (e *Engine) handleSend(a *activity.Activity) {
	parent, ok := e.cmap[a.CtxK]
	if !ok || parent.graph.Finished() {
		// No context parent: nothing caused this send within a traced
		// request — noise that slipped past the ranker's filters.
		e.stats.DiscardedSends++
		return
	}
	if parent.vertex.Type == activity.Send && parent.vertex.Chan == a.Chan {
		// Line 15–16: consecutive SEND segments of one message — merge.
		parent.vertex.Size += a.Size
		parent.vertex.Records = append(parent.vertex.Records, a)
		if p, ok := e.mmap[a.ChanK]; ok && p.vertex == parent.vertex {
			p.remaining += a.Size
			e.mmap[a.ChanK] = p
		}
		e.stats.MergedSends++
		return
	}
	v := cag.NewVertex(a)
	if err := parent.graph.AddVertex(v, cag.ContextEdge, parent.vertex); err != nil {
		e.stats.DiscardedSends++
		return
	}
	e.cmap[a.CtxK] = ctxEntry{vertex: v, graph: parent.graph}
	if old, ok := e.mmap[a.ChanK]; ok && old.remaining > 0 {
		// A fresh message started on a channel whose previous message was
		// never fully received: only possible with activity loss.
		e.stats.ReplacedSends++
	}
	e.mmap[a.ChanK] = pendingSend{vertex: v, graph: parent.graph, remaining: a.Size}
	e.stats.Sends++
	e.addResident(1)
}

// handleReceive: lines 22–34 — count down the pending SEND's bytes; when
// they reach zero materialise the RECEIVE with its message edge, and add
// the context edge only if both parents sit in the same CAG (thread-reuse
// check).
func (e *Engine) handleReceive(a *activity.Activity) {
	p, ok := e.mmap[a.ChanK]
	if !ok || p.remaining <= 0 {
		e.stats.DiscardedReceives++
		return
	}
	p.remaining -= a.Size
	if p.remaining > 0 {
		p.partial = append(p.partial, a)
		e.stats.PartialReceives++
		e.mmap[a.ChanK] = p
		return
	}
	if p.remaining < 0 {
		e.stats.OverrunReceives++
	}
	// Message fully received: the RECEIVE vertex's representative timestamp
	// is the completing segment's (data available to the application now).
	v := cag.NewVertex(a)
	v.Size = p.vertex.Size
	if len(p.partial) > 0 {
		v.Records = append(append([]*activity.Activity{}, p.partial...), a)
	}
	if err := p.graph.AddVertex(v, cag.MessageEdge, p.vertex); err != nil {
		e.stats.DiscardedReceives++
		return
	}
	if parentCtx, ok := e.cmap[a.CtxK]; ok {
		// Lines 29–32: same-CAG check defeats thread-pool reuse.
		if p.graph.Contains(parentCtx.vertex) {
			if err := p.graph.AddEdge(cag.ContextEdge, parentCtx.vertex, v); err != nil {
				e.stats.DiscardedReceives++
			}
		} else {
			e.stats.ThreadReuseBreaks++
		}
	}
	e.cmap[a.CtxK] = ctxEntry{vertex: v, graph: p.graph}
	delete(e.mmap, a.ChanK)
	e.stats.Receives++
	e.addResident(1)
}

// String implements fmt.Stringer.
func (e *Engine) String() string {
	return fmt.Sprintf("engine{mmap=%d cmap=%d unfinished=%d finished=%d}",
		len(e.mmap), len(e.cmap), e.Unfinished(), e.stats.Finished)
}

package rubis

import (
	"testing"
	"time"

	"repro/internal/activity"
)

// fastConfig returns a scaled-down run for unit tests.
func fastConfig(clients int) Config {
	cfg := DefaultConfig(clients)
	cfg.Scale = 0.01 // ~6.3s virtual session
	return cfg
}

func TestRunCompletesRequests(t *testing.T) {
	res, err := Run(fastConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalCompleted == 0 {
		t.Fatal("no requests completed")
	}
	if res.Metrics.Issued != res.Metrics.TotalCompleted {
		t.Fatalf("issued %d != completed %d (requests lost)", res.Metrics.Issued, res.Metrics.TotalCompleted)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no activities logged")
	}
	if res.Truth.Requests() == 0 {
		t.Fatal("truth table empty")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(fastConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.TotalCompleted != b.Metrics.TotalCompleted {
		t.Fatalf("completed differ: %d vs %d", a.Metrics.TotalCompleted, b.Metrics.TotalCompleted)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		x, y := a.Trace[i], b.Trace[i]
		if x.Timestamp != y.Timestamp || x.Type != y.Type || x.Ctx != y.Ctx || x.Chan != y.Chan {
			t.Fatalf("trace diverges at %d: %v vs %v", i, x, y)
		}
	}
}

func TestSeedChangesRun(t *testing.T) {
	cfg := fastConfig(30)
	a, _ := Run(cfg)
	cfg.Seed = 2
	b, _ := Run(cfg)
	if len(a.Trace) == len(b.Trace) && a.Metrics.TotalCompleted == b.Metrics.TotalCompleted {
		// Extremely unlikely to match exactly on both if seeds differ.
		same := true
		for i := range a.Trace {
			if i >= len(b.Trace) || a.Trace[i].Timestamp != b.Trace[i].Timestamp {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestThroughputScalesWithClients(t *testing.T) {
	small, _ := Run(fastConfig(50))
	big, _ := Run(fastConfig(200))
	if big.Metrics.Throughput() < 2*small.Metrics.Throughput() {
		t.Fatalf("throughput should scale ~linearly below saturation: 50=%v 200=%v",
			small.Metrics.Throughput(), big.Metrics.Throughput())
	}
}

func TestSaturationRaisesResponseTime(t *testing.T) {
	cfg := fastConfig(200)
	cfg.Scale = 0.02
	low, _ := Run(cfg)
	cfgHi := fastConfig(950)
	cfgHi.Scale = 0.02
	hi, _ := Run(cfgHi)
	if hi.Metrics.AvgResponseTime() < 3*low.Metrics.AvgResponseTime() {
		t.Fatalf("MaxThreads=40 at 950 clients should inflate RT: low=%v hi=%v",
			low.Metrics.AvgResponseTime(), hi.Metrics.AvgResponseTime())
	}
	// Raising MaxThreads removes the bottleneck (§5.4.1's fix).
	cfgFix := cfgHi
	cfgFix.MaxThreads = 250
	fixed, _ := Run(cfgFix)
	if fixed.Metrics.AvgResponseTime() > hi.Metrics.AvgResponseTime()/2 {
		t.Fatalf("MaxThreads=250 should cut RT: 40=>%v 250=>%v",
			hi.Metrics.AvgResponseTime(), fixed.Metrics.AvgResponseTime())
	}
	if fixed.Metrics.Throughput() < hi.Metrics.Throughput() {
		t.Fatalf("MaxThreads=250 should not lose throughput: 40=>%v 250=>%v",
			hi.Metrics.Throughput(), fixed.Metrics.Throughput())
	}
}

func TestTracingDisabledLogsNothing(t *testing.T) {
	cfg := fastConfig(30)
	cfg.Tracing = false
	res, _ := Run(cfg)
	if len(res.Trace) != 0 {
		t.Fatalf("tracing disabled but %d activities logged", len(res.Trace))
	}
	if res.Metrics.TotalCompleted == 0 {
		t.Fatal("workload should still run")
	}
}

func TestTracingOverheadSmall(t *testing.T) {
	on := fastConfig(300)
	on.Scale = 0.02
	off := on
	off.Tracing = false
	ron, _ := Run(on)
	roff, _ := Run(off)
	tOn, tOff := ron.Metrics.Throughput(), roff.Metrics.Throughput()
	drop := (tOff - tOn) / tOff
	if drop > 0.05 {
		t.Fatalf("throughput overhead %.1f%% exceeds the paper's ~3.7%% bound region (on=%v off=%v)",
			drop*100, tOn, tOff)
	}
	rtRatio := float64(ron.Metrics.AvgResponseTime()) / float64(roff.Metrics.AvgResponseTime())
	if rtRatio > 1.3 {
		t.Fatalf("response-time overhead %.2fx exceeds the paper's <30%% bound", rtRatio)
	}
}

func TestNoiseTagging(t *testing.T) {
	cfg := fastConfig(30)
	cfg.Noise = true
	res, _ := Run(cfg)
	if res.NoiseActivities == 0 {
		t.Fatal("noise enabled but no noise activities")
	}
	// Noise must not appear in the truth table.
	seen := 0
	for _, a := range res.Trace {
		if a.ReqID < 0 {
			seen++
		}
	}
	if seen != res.NoiseActivities {
		t.Fatalf("noise accounting mismatch: %d vs %d", seen, res.NoiseActivities)
	}
}

func TestMixSelectsTransactions(t *testing.T) {
	cfg := fastConfig(100)
	cfg.Mix = BrowseOnly
	res, _ := Run(cfg)
	for name := range res.Metrics.PerTx {
		tx := TransactionByName(name)
		if tx == nil {
			t.Fatalf("unknown transaction %q", name)
		}
		if tx.BrowseWeight == 0 {
			t.Fatalf("browse-only run executed %q", name)
		}
	}
	cfg.Mix = Default
	res, _ = Run(cfg)
	wrote := false
	for name := range res.Metrics.PerTx {
		if tx := TransactionByName(name); tx != nil && tx.DefaultWeight > 0 && tx.BrowseWeight == 0 {
			wrote = true
		}
	}
	if !wrote {
		t.Fatal("default mix never executed a write transaction")
	}
}

func TestPerHostLogsOrdered(t *testing.T) {
	cfg := fastConfig(100)
	cfg.Skew.MaxSkew = 200 * time.Millisecond
	res, _ := Run(cfg)
	for host, log := range res.PerHost {
		for i := 1; i < len(log); i++ {
			if log[i].Timestamp < log[i-1].Timestamp {
				t.Fatalf("%s log out of local-clock order at %d", host, i)
			}
		}
	}
}

func TestActivityShapes(t *testing.T) {
	res, _ := Run(fastConfig(30))
	types := map[activity.Type]int{}
	for _, a := range res.Trace {
		types[a.Type]++
		if a.Ctx.Host == "" || a.Chan.Src.IP == "" || a.Size <= 0 {
			t.Fatalf("malformed activity %v", a)
		}
	}
	// Raw TCP_TRACE logs only SEND/RECEIVE; BEGIN/END appear after
	// classification.
	if types[activity.Begin] != 0 || types[activity.End] != 0 {
		t.Fatalf("raw trace contains classified types: %v", types)
	}
	if types[activity.Send] == 0 || types[activity.Receive] == 0 {
		t.Fatalf("trace missing SEND/RECEIVE: %v", types)
	}
}

func TestFaultEJBDelayInflatesRT(t *testing.T) {
	base := fastConfig(100)
	res0, _ := Run(base)
	faulty := base
	faulty.Faults.EJBDelay = 40 * time.Millisecond
	res1, _ := Run(faulty)
	if res1.Metrics.AvgResponseTime() < res0.Metrics.AvgResponseTime()+20*time.Millisecond {
		t.Fatalf("EJB delay should inflate RT: %v vs %v",
			res0.Metrics.AvgResponseTime(), res1.Metrics.AvgResponseTime())
	}
}

func TestFaultDBLockSerialisesQueries(t *testing.T) {
	base := fastConfig(200)
	base.Mix = Default
	res0, _ := Run(base)
	faulty := base
	faulty.Faults.DBLock = true
	faulty.Faults.DBLockHold = 4 * time.Millisecond
	res1, _ := Run(faulty)
	if res1.Metrics.AvgResponseTime() <= res0.Metrics.AvgResponseTime() {
		t.Fatalf("DB lock should inflate RT: %v vs %v",
			res0.Metrics.AvgResponseTime(), res1.Metrics.AvgResponseTime())
	}
}

func TestFaultNetworkSlowsAppLegs(t *testing.T) {
	base := fastConfig(100)
	res0, _ := Run(base)
	faulty := base
	faulty.Faults.AppNetBandwidth = 1_250_000 // 10 Mbps
	res1, _ := Run(faulty)
	if res1.Metrics.AvgResponseTime() <= res0.Metrics.AvgResponseTime() {
		t.Fatalf("10M NIC should inflate RT: %v vs %v",
			res0.Metrics.AvgResponseTime(), res1.Metrics.AvgResponseTime())
	}
}

func TestClientsExceedingWorkersRejected(t *testing.T) {
	cfg := fastConfig(100)
	cfg.HttpdWorkers = 10
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected error when clients exceed workers")
	}
}

func TestTransactionTableSane(t *testing.T) {
	browse, def := 0.0, 0.0
	for _, tx := range Transactions {
		if tx.Name == "" {
			t.Fatal("unnamed transaction")
		}
		if !tx.Static && tx.Queries <= 0 {
			t.Fatalf("%s: dynamic transaction without queries", tx.Name)
		}
		if tx.Static && tx.Queries != 0 {
			t.Fatalf("%s: static transaction with queries", tx.Name)
		}
		if tx.ReqSize <= 0 || tx.RespSize <= 0 {
			t.Fatalf("%s: missing message sizes", tx.Name)
		}
		browse += tx.BrowseWeight
		def += tx.DefaultWeight
	}
	if browse <= 0 || def <= 0 {
		t.Fatal("mix weights must be positive in both mixes")
	}
	if TransactionByName("ViewItem") == nil {
		t.Fatal("ViewItem missing (§5.4.1 analyses it)")
	}
	if TransactionByName("nope") != nil {
		t.Fatal("TransactionByName should return nil for unknown names")
	}
}

func TestMetricsWindow(t *testing.T) {
	m := newMetrics(10*time.Second, 20*time.Second)
	tx := &Transactions[0]
	m.record(tx, 100*time.Millisecond, 5*time.Second)  // before window
	m.record(tx, 200*time.Millisecond, 15*time.Second) // in window
	m.record(tx, 300*time.Millisecond, 25*time.Second) // after window
	if m.TotalCompleted != 3 || m.InWindow != 1 {
		t.Fatalf("total=%d window=%d", m.TotalCompleted, m.InWindow)
	}
	if m.AvgResponseTime() != 200*time.Millisecond {
		t.Fatalf("window avg = %v", m.AvgResponseTime())
	}
	if m.Throughput() != 0.1 {
		t.Fatalf("throughput = %v, want 0.1/s", m.Throughput())
	}
	if m.AvgResponseTimeAll() != 200*time.Millisecond {
		t.Fatalf("all avg = %v", m.AvgResponseTimeAll())
	}
	if m.TxAvgResponseTime(tx.Name) != 200*time.Millisecond {
		t.Fatalf("tx avg = %v", m.TxAvgResponseTime(tx.Name))
	}
}

func TestHighLoadNoHungRequests(t *testing.T) {
	// Regression: a stale backend idle timer (re-armed by a static request,
	// never cancelled) used to close a successor connection while its
	// request was still waiting for a servlet thread, hanging the request.
	cfg := fastConfig(1000)
	cfg.Scale = 0.02
	cfg.Noise = true
	cfg.Skew.MaxSkew = 500 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Issued != res.Metrics.TotalCompleted {
		t.Fatalf("hung requests: issued=%d completed=%d",
			res.Metrics.Issued, res.Metrics.TotalCompleted)
	}
}

func TestResponseTimePercentiles(t *testing.T) {
	res, _ := Run(fastConfig(100))
	p50 := res.Metrics.ResponseTimePercentile(0.50)
	p99 := res.Metrics.ResponseTimePercentile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("percentiles p50=%v p99=%v", p50, p99)
	}
	if avg := res.Metrics.AvgResponseTime(); p50 > 2*avg {
		t.Fatalf("p50 %v wildly above mean %v", p50, avg)
	}
}

func TestMarkovSessionsAffinity(t *testing.T) {
	cfg := fastConfig(200)
	cfg.Scale = 0.03
	cfg.MarkovSessions = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All executed transactions must still come from the mix.
	for name := range res.Metrics.PerTx {
		tx := TransactionByName(name)
		if tx == nil || tx.BrowseWeight == 0 {
			t.Fatalf("markov run executed out-of-mix transaction %q", name)
		}
	}
	// ViewItem stays the most frequent dynamic transaction (stationary
	// distribution preserved), and accuracy is untouched by the mode.
	if res.Metrics.PerTx["ViewItem"] == 0 {
		t.Fatal("ViewItem never ran")
	}
	iid := fastConfig(200)
	iid.Scale = 0.03
	res2, _ := Run(iid)
	a, b := res.Metrics.TotalCompleted, res2.Metrics.TotalCompleted
	if a < b*8/10 || a > b*12/10 {
		t.Fatalf("markov mode changed load shape too much: %d vs %d", a, b)
	}
}

func TestClosedLoopResponseTimeLaw(t *testing.T) {
	// Model-based validation of the workload substrate: a closed
	// interactive system must obey X = N / (Z + R) in steady state
	// (the interactive response-time law). Measured throughput and
	// response time over the runtime window must reconcile with the
	// client population within a few percent.
	cfg := fastConfig(400)
	cfg.Scale = 0.05 // longer window for a stable average
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(cfg.Clients)
	z := cfg.ThinkTime.Seconds()
	r := res.Metrics.AvgResponseTime().Seconds()
	predicted := n / (z + r)
	measured := res.Metrics.Throughput()
	ratio := measured / predicted
	if ratio < 0.93 || ratio > 1.07 {
		t.Fatalf("response-time law violated: measured %.1f/s vs predicted %.1f/s (ratio %.3f)",
			measured, predicted, ratio)
	}
}

func TestThreadPoolUtilisationModel(t *testing.T) {
	// The MaxThreads=40 knee is governed by thread-seconds per request
	// (service time + idle hold). Below the knee, offered thread
	// utilisation must stay under capacity; this pins the calibration the
	// experiments depend on.
	cfg := fastConfig(500)
	cfg.Scale = 0.05
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lambda := res.Metrics.Throughput()
	// Static requests never touch the pool.
	staticFrac := 0.0
	if res.Metrics.TotalCompleted > 0 {
		staticFrac = float64(res.Metrics.PerTx["Home"]) / float64(res.Metrics.TotalCompleted)
	}
	holdSeconds := cfg.BackendIdleHold.Seconds() + 0.03 // idle hold + active phase
	offered := lambda * (1 - staticFrac) * holdSeconds
	if offered >= float64(cfg.MaxThreads) {
		t.Fatalf("calibration drifted: offered thread-load %.1f >= MaxThreads %d at 500 clients",
			offered, cfg.MaxThreads)
	}
	if offered < float64(cfg.MaxThreads)/4 {
		t.Fatalf("calibration drifted: offered thread-load %.1f implausibly low", offered)
	}
}

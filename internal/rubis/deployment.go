package rubis

import (
	"fmt"
	"time"

	"repro/internal/activity"
	"repro/internal/des"
	"repro/internal/groundtruth"
	"repro/internal/testbed"
)

// EntryPort is the web tier's service port used by the §3.1 BEGIN/END
// classification.
const EntryPort = 80

// Well-known internal ports.
const (
	appPort = 8009 // httpd -> JBoss (AJP-style)
	dbPort  = 3306 // JBoss -> MySQL
)

// Result is the outcome of one RUBiS run: the workload-side metrics and the
// TCP_TRACE logs the Correlator consumes.
type Result struct {
	Config  Config
	Metrics *Metrics

	// Trace is the merged multi-node log (IDs in collection order);
	// PerHost the per-node logs.
	Trace   []*activity.Activity
	PerHost map[string][]*activity.Activity
	// IPToHost maps traced node addresses for the ranker.
	IPToHost map[string]string
	// Truth is the ground-truth table built from the testbed's request
	// tags (the paper's modified-RUBiS request IDs).
	Truth *groundtruth.Truth
	// NoiseActivities counts logged activities not caused by any request.
	NoiseActivities int
}

// entityPool manages a bounded pool of execution entities whose identities
// (TIDs) are recycled LIFO — maximising the thread-reuse pattern the
// engine's same-CAG check must defeat.
type entityPool struct {
	node    *testbed.Node
	program string
	pid     int
	tokens  *des.TokenPool
	free    []testbed.Entity
}

func newEntityPool(sim *des.Simulator, node *testbed.Node, program string, capacity int) *entityPool {
	return &entityPool{
		node:    node,
		program: program,
		pid:     node.AllocPID(),
		tokens:  des.NewTokenPool(sim, capacity),
	}
}

func (p *entityPool) acquire(fn func(testbed.Entity)) {
	p.tokens.Acquire(func() {
		var e testbed.Entity
		if n := len(p.free); n > 0 {
			e = p.free[n-1]
			p.free = p.free[:n-1]
		} else {
			e = p.node.NewEntity(p.program, p.pid, p.node.AllocPID())
		}
		fn(e)
	})
}

func (p *entityPool) release(e testbed.Entity) {
	p.free = append(p.free, e)
	p.tokens.Release()
}

// waiting returns the number of queued acquisitions.
func (p *entityPool) waiting() int { return p.tokens.Waiting() }

// deployment wires the Fig. 7 topology together.
type deployment struct {
	cfg     Config
	cluster *testbed.Cluster
	sim     *des.Simulator

	web, app, db *testbed.Node
	clientNodes  []*testbed.Node

	jbossThreads *entityPool
	mysqlThreads *entityPool
	dbLock       *des.TokenPool

	rng     *des.RNG // service-demand draws
	metrics *Metrics
	nextReq int64
	stopAll time.Duration
}

type request struct {
	id     int64
	tx     *Transaction
	cl     *client
	sentAt time.Duration
}

type client struct {
	d      *deployment
	id     int
	ent    testbed.Entity
	conn   *testbed.Conn
	worker *worker
	rng    *des.RNG
	stopAt time.Duration
	txW    []float64
	lastTx int // previous transaction index (-1 initially), for Markov mode
}

type worker struct {
	ent testbed.Entity
	bc  *backendConn
}

type backendConn struct {
	conn      *testbed.Conn
	thread    testbed.Entity
	attached  bool
	closed    bool
	idleTimer *des.Event
	dbc       *dbConn
	cur       *request
}

type dbConn struct {
	conn     *testbed.Conn
	thread   testbed.Entity
	attached bool
	cur      *request
}

// Run executes one RUBiS session and returns its result.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Clients > cfg.HttpdWorkers {
		return nil, fmt.Errorf("rubis: %d clients exceed %d httpd workers", cfg.Clients, cfg.HttpdWorkers)
	}
	d := build(cfg)
	d.start()
	d.sim.Run()
	return d.result(), nil
}

func build(cfg Config) *deployment {
	cl := testbed.NewCluster()
	d := &deployment{
		cfg:     cfg,
		cluster: cl,
		sim:     cl.Sim(),
		rng:     des.NewRNG(cfg.Seed * 7919),
	}
	// The traced tiers (Fig. 7). Node clocks follow the skew scenario; node
	// index spreads offsets across the traced machines.
	d.web = cl.AddNode(testbed.NodeConfig{
		Name: "web1", IP: "10.0.1.1", Cores: 2, Traced: true,
		ProbeCost: cfg.ProbeCost, Clock: cfg.Skew.ClockFor(0, 3),
	})
	d.app = cl.AddNode(testbed.NodeConfig{
		Name: "app1", IP: "10.0.1.2", Cores: 2, Traced: true,
		ProbeCost: cfg.ProbeCost, Clock: cfg.Skew.ClockFor(1, 3),
	})
	d.db = cl.AddNode(testbed.NodeConfig{
		Name: "db1", IP: "10.0.1.3", Cores: 2, Traced: true,
		ProbeCost: cfg.ProbeCost, Clock: cfg.Skew.ClockFor(2, 3),
	})
	for i := 0; i < 3; i++ {
		d.clientNodes = append(d.clientNodes, cl.AddNode(testbed.NodeConfig{
			Name: fmt.Sprintf("client%d", i+1), IP: fmt.Sprintf("10.0.2.%d", i+1),
			Cores: 16, Traced: false,
		}))
	}
	cl.Collector().SetEnabled(cfg.Tracing)

	d.jbossThreads = newEntityPool(d.sim, d.app, "java", cfg.MaxThreads)
	d.mysqlThreads = newEntityPool(d.sim, d.db, "mysqld", cfg.MySQLMaxConnections)
	d.dbLock = des.NewTokenPool(d.sim, 1)

	up, run, down := cfg.stageDurations()
	d.metrics = newMetrics(up, up+run)
	d.stopAll = up + run + down
	return d
}

// netConfig returns the LAN behaviour; touchesApp applies the EJB_Network
// fault's reduced NIC bandwidth on connections that traverse the app node.
func (d *deployment) netConfig(touchesApp bool) testbed.NetConfig {
	bw := int64(12_500_000) // 100 Mbps
	if touchesApp && d.cfg.Faults.AppNetBandwidth > 0 {
		bw = d.cfg.Faults.AppNetBandwidth
	}
	return testbed.NetConfig{
		Latency:   120 * time.Microsecond,
		Bandwidth: bw,
		MSS:       1448,
		RecvChunk: 1800, // != MSS so SEND/RECEIVE match n-to-n
	}
}

// start launches clients (staggered over the up ramp) and noise.
func (d *deployment) start() {
	cfg := d.cfg
	up, run, down := cfg.stageDurations()
	n := cfg.Clients
	txW := weights(cfg.Mix)
	for i := 0; i < n; i++ {
		i := i
		node := d.clientNodes[i%len(d.clientNodes)]
		c := &client{
			d:      d,
			id:     i,
			ent:    node.NewEntity("client", node.AllocPID(), node.AllocPID()),
			rng:    des.NewRNG(cfg.Seed*1_000_003 + int64(i)),
			stopAt: up + run + time.Duration(float64(down)*float64(i+1)/float64(n)),
			txW:    txW,
			lastTx: -1,
		}
		c.conn = d.cluster.Dial(node, d.web, EntryPort, d.netConfig(false))
		pid := d.web.AllocPID()
		c.worker = &worker{ent: d.web.NewEntity("httpd", pid, pid)}
		startAt := time.Duration(float64(up) * float64(i) / float64(n))
		d.sim.ScheduleAt(startAt, func() { d.clientThink(c) })
	}
	if cfg.Noise {
		d.startNoise()
	}
}

func (d *deployment) startNoise() {
	cfg := d.cfg
	ext := d.clientNodes[0]
	small := testbed.NetConfig{Latency: 150 * time.Microsecond, Bandwidth: 12_500_000}
	// Filterable noise: interactive ssh/rlogin sessions against the web
	// node.
	testbed.StartNoise(d.cluster, testbed.NoiseConfig{
		Program: "sshd", ServiceNode: d.web, ServicePort: 22, ClientNode: ext,
		Sessions: cfg.NoiseSessions / 2, MeanInterval: 40 * time.Millisecond,
		ReqSize: 96, RespSize: 192, ServiceDemand: 50 * time.Microsecond, Net: small,
	}, cfg.Seed*31+1, d.stopAll)
	testbed.StartNoise(d.cluster, testbed.NoiseConfig{
		Program: "rlogind", ServiceNode: d.web, ServicePort: 513, ClientNode: ext,
		Sessions: cfg.NoiseSessions / 2, MeanInterval: 60 * time.Millisecond,
		ReqSize: 80, RespSize: 160, ServiceDemand: 50 * time.Microsecond, Net: small,
	}, cfg.Seed*31+2, d.stopAll)
	// Unfilterable noise: a MySQL client sharing the RUBiS database's
	// program name and port (§5.3.3) — only is_noise can remove it.
	testbed.StartNoise(d.cluster, testbed.NoiseConfig{
		Program: "mysqld", ServiceNode: d.db, ServicePort: dbPort, ClientNode: ext,
		Sessions: cfg.NoiseSessions, MeanInterval: 50 * time.Millisecond,
		ReqSize: 128, RespSize: 1024, ServiceDemand: 500 * time.Microsecond, Net: small,
	}, cfg.Seed*31+3, d.stopAll)
}

// draw perturbs a mean demand (truncated normal, σ = mean/5).
func (d *deployment) draw(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return d.rng.Normal(mean, mean/5)
}

// --- client side -----------------------------------------------------------

func (d *deployment) clientThink(c *client) {
	think := c.rng.Exp(d.cfg.ThinkTime)
	d.sim.Schedule(think, func() {
		if d.sim.Now() >= c.stopAt {
			return
		}
		d.issue(c)
	})
}

func (d *deployment) issue(c *client) {
	idx := c.pickTx()
	tx := &Transactions[idx]
	c.lastTx = idx
	req := &request{id: d.nextReq, tx: tx, cl: c, sentAt: d.sim.Now()}
	d.nextReq++
	d.metrics.Issued++
	c.conn.Send(c.ent, tx.ReqSize, req.id, nil)
	c.conn.Read(c.ent, func() { d.onClientResponse(c, req) })
	// The dedicated prefork worker reads the request (BEGIN).
	c.conn.Read(c.worker.ent, func() { d.workerGotRequest(c, req) })
}

func (d *deployment) onClientResponse(c *client, req *request) {
	rt := d.sim.Now() - req.sentAt
	d.metrics.record(req.tx, rt, d.sim.Now())
	d.clientThink(c)
}

// pickTx selects the next transaction: i.i.d. from the mix weights, or —
// in Markov mode — from weights biased toward the previous transaction's
// natural successors (browse->view->store affinity), renormalised so the
// long-run distribution stays close to the mix.
func (c *client) pickTx() int {
	if !c.d.cfg.MarkovSessions || c.lastTx < 0 {
		return c.rng.Pick(c.txW)
	}
	biased := make([]float64, len(c.txW))
	copy(biased, c.txW)
	for i := range biased {
		if follows(c.lastTx, i) {
			biased[i] *= 3
		}
	}
	return c.rng.Pick(biased)
}

// follows encodes RUBiS-like session affinity: searches lead to item views,
// item views lead to bid/buy pages and bid history.
func follows(prev, next int) bool {
	p, n := Transactions[prev].Name, Transactions[next].Name
	switch p {
	case "SearchItemsInCategory", "SearchItemsInRegion", "BrowseCategories", "BrowseRegions":
		return n == "ViewItem" || n == "SearchItemsInCategory" || n == "SearchItemsInRegion"
	case "ViewItem":
		return n == "ViewBidHistory" || n == "ViewUserInfo" || n == "StoreBid" || n == "StoreBuyNow"
	case "ViewBidHistory", "ViewUserInfo":
		return n == "StoreBid" || n == "StoreComment" || n == "ViewItem"
	default:
		return false
	}
}

// --- first tier: httpd ------------------------------------------------------

func (d *deployment) workerGotRequest(c *client, req *request) {
	d.web.CPU.Use(d.draw(req.tx.HTTPDemand), func() {
		if req.tx.Static {
			d.respond(c, req)
			return
		}
		d.ensureBackend(c.worker, func() {
			bc := c.worker.bc
			bc.cur = req
			bc.conn.Send(c.worker.ent, req.tx.FwdSize, req.id, nil)
			bc.conn.Read(c.worker.ent, func() { d.workerGotReply(c, req) })
		})
	})
}

func (d *deployment) workerGotReply(c *client, req *request) {
	d.web.CPU.Use(d.draw(req.tx.RespDemand), func() { d.respond(c, req) })
}

func (d *deployment) respond(c *client, req *request) {
	c.conn.Send(c.worker.ent, req.tx.RespSize, req.id, func() {
		if req.tx.Static {
			// A static request never touched the backend connection; any
			// idle timer armed by a previous dynamic request keeps running.
			return
		}
		bc := c.worker.bc
		if bc != nil && !bc.closed {
			w := c.worker
			if bc.idleTimer != nil {
				bc.idleTimer.Cancel()
			}
			bc.idleTimer = d.sim.Schedule(d.cfg.BackendIdleHold, func() { d.closeBackend(w, bc) })
		}
	})
}

// ensureBackend reuses the worker's live backend connection or opens a new
// one. The forward message is sent immediately (TCP buffers it); the JBoss
// servlet thread is acquired asynchronously, so thread-pool waiting time
// surfaces between the httpd SEND and the JBoss RECEIVE — the httpd2java
// latency §5.4.1 diagnoses.
func (d *deployment) ensureBackend(w *worker, fn func()) {
	if bc := w.bc; bc != nil && !bc.closed {
		if bc.idleTimer != nil {
			bc.idleTimer.Cancel()
			bc.idleTimer = nil
		}
		fn()
		return
	}
	bc := &backendConn{conn: d.cluster.Dial(d.web, d.app, appPort, d.netConfig(true))}
	w.bc = bc
	fn()
	attach := func() {
		d.jbossThreads.acquire(func(e testbed.Entity) {
			if bc.closed {
				d.jbossThreads.release(e)
				return
			}
			bc.thread = e
			bc.attached = true
			d.threadReadLoop(bc)
		})
	}
	setup := d.cfg.BackendConnectCost
	if d.jbossThreads.waiting() >= d.cfg.AcceptBacklog {
		// Listen backlog overflow: the SYN is dropped; the dialer retries
		// after the TCP retransmission timeout.
		setup += d.cfg.SynRetryPenalty
	}
	// Accepting and negotiating the connection costs app-node CPU — the
	// hardware bottleneck that caps the MaxThreads=250 configuration at the
	// top of the client range (Fig. 16).
	d.app.CPU.Use(3*time.Millisecond, func() {})
	d.sim.Schedule(setup, attach)
}

// closeBackend closes the given backend connection if it is still the
// worker's current one — a stale timer for an already-replaced connection
// must never tear down its successor.
func (d *deployment) closeBackend(w *worker, bc *backendConn) {
	if bc == nil || bc.closed || w.bc != bc {
		return
	}
	bc.closed = true
	if bc.attached {
		d.jbossThreads.release(bc.thread)
	}
	if bc.dbc != nil && bc.dbc.attached {
		d.mysqlThreads.release(bc.dbc.thread)
	}
	bc.dbc = nil
	w.bc = nil
}

// --- second tier: JBoss ------------------------------------------------------

func (d *deployment) threadReadLoop(bc *backendConn) {
	bc.conn.Read(bc.thread, func() {
		if bc.closed {
			return
		}
		d.jbossGotRequest(bc)
	})
}

func (d *deployment) jbossGotRequest(bc *backendConn) {
	req := bc.cur
	work := func() {
		d.app.CPU.Use(d.draw(req.tx.AppDemand), func() { d.doQuery(bc, req, 0) })
	}
	if d.cfg.Faults.EJBDelay > 0 {
		// Abnormal case 1: random delay injected into the second tier.
		d.sim.Schedule(d.rng.Exp(d.cfg.Faults.EJBDelay), work)
		return
	}
	work()
}

func (d *deployment) doQuery(bc *backendConn, req *request, i int) {
	if i >= req.tx.Queries {
		d.app.CPU.Use(d.draw(req.tx.AppPost), func() { d.jbossRespond(bc, req) })
		return
	}
	d.ensureDB(bc, func() {
		dbc := bc.dbc
		dbc.cur = req
		dbc.conn.Send(bc.thread, req.tx.QuerySize, req.id, nil)
		dbc.conn.Read(bc.thread, func() {
			d.app.CPU.Use(d.draw(req.tx.AppPerQuery), func() { d.doQuery(bc, req, i+1) })
		})
	})
}

func (d *deployment) jbossRespond(bc *backendConn, req *request) {
	bc.conn.Send(bc.thread, req.tx.AppRespSize, req.id, nil)
	d.threadReadLoop(bc)
}

// ensureDB opens the thread's persistent DB connection on first use; the
// MySQL connection thread attaches asynchronously like the JBoss one.
func (d *deployment) ensureDB(bc *backendConn, fn func()) {
	if bc.dbc != nil {
		fn()
		return
	}
	dbNet := d.netConfig(true)
	dbNet.Latency += d.cfg.DBLegLatency
	dbc := &dbConn{conn: d.cluster.Dial(d.app, d.db, dbPort, dbNet)}
	bc.dbc = dbc
	fn()
	d.mysqlThreads.acquire(func(e testbed.Entity) {
		if bc.closed {
			d.mysqlThreads.release(e)
			return
		}
		dbc.thread = e
		dbc.attached = true
		d.mysqlReadLoop(dbc)
	})
}

// --- third tier: MySQL -------------------------------------------------------

func (d *deployment) mysqlReadLoop(dbc *dbConn) {
	dbc.conn.Read(dbc.thread, func() { d.mysqlGotQuery(dbc) })
}

func (d *deployment) mysqlGotQuery(dbc *dbConn) {
	req := dbc.cur
	exec := func(extraHold time.Duration, unlock func()) {
		d.db.CPU.Use(d.draw(req.tx.DBDemand), func() {
			d.sim.Schedule(extraHold, func() {
				if unlock != nil {
					unlock()
				}
				dbc.conn.Send(dbc.thread, req.tx.QueryRespSize, req.id, nil)
				d.mysqlReadLoop(dbc)
			})
		})
	}
	if d.cfg.Faults.DBLock && req.tx.UsesItems {
		// Abnormal case 2: the items table is locked; queries serialise.
		d.dbLock.Acquire(func() { exec(d.cfg.Faults.DBLockHold, d.dbLock.Release) })
		return
	}
	exec(0, nil)
}

// --- results -----------------------------------------------------------------

func (d *deployment) result() *Result {
	trace := d.cluster.Collector().Merged()
	noise := 0
	for _, a := range trace {
		if a.ReqID < 0 {
			noise++
		}
	}
	return &Result{
		Config:          d.cfg,
		Metrics:         d.metrics,
		Trace:           trace,
		PerHost:         d.cluster.Collector().PerHost(),
		IPToHost:        d.cluster.IPToHost(),
		Truth:           groundtruth.FromTrace(trace),
		NoiseActivities: noise,
	}
}

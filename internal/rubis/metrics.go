package rubis

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// Metrics aggregates client-observed performance. In-window numbers cover
// the runtime stage only (ramps excluded), matching how RUBiS reports
// throughput and response time; totals cover the whole session (the
// request counts of Fig. 8/9 accumulate over the fixed test duration).
type Metrics struct {
	WindowStart time.Duration
	WindowEnd   time.Duration

	Issued         int
	TotalCompleted int

	InWindow    int
	sumRT       time.Duration
	MaxRT       time.Duration
	sumRTAll    time.Duration
	PerTx       map[string]int
	perTxLatSum map[string]time.Duration

	// hist collects in-window response times for percentile reporting —
	// an extension: the paper reports averages only.
	hist *stats.Histogram
}

func newMetrics(start, end time.Duration) *Metrics {
	return &Metrics{
		WindowStart: start,
		WindowEnd:   end,
		PerTx:       make(map[string]int),
		perTxLatSum: make(map[string]time.Duration),
		hist:        stats.NewLatencyHistogram(),
	}
}

func (m *Metrics) record(tx *Transaction, rt, completedAt time.Duration) {
	m.TotalCompleted++
	m.sumRTAll += rt
	m.PerTx[tx.Name]++
	m.perTxLatSum[tx.Name] += rt
	if completedAt >= m.WindowStart && completedAt < m.WindowEnd {
		m.InWindow++
		m.sumRT += rt
		m.hist.Add(rt)
		if rt > m.MaxRT {
			m.MaxRT = rt
		}
	}
}

// Throughput returns in-window requests per second — the Fig. 12/16 y-axis.
func (m *Metrics) Throughput() float64 {
	w := m.WindowEnd - m.WindowStart
	if w <= 0 {
		return 0
	}
	return float64(m.InWindow) / w.Seconds()
}

// AvgResponseTime returns the in-window mean response time — Fig. 13/16.
func (m *Metrics) AvgResponseTime() time.Duration {
	if m.InWindow == 0 {
		return 0
	}
	return m.sumRT / time.Duration(m.InWindow)
}

// AvgResponseTimeAll returns the whole-session mean response time.
func (m *Metrics) AvgResponseTimeAll() time.Duration {
	if m.TotalCompleted == 0 {
		return 0
	}
	return m.sumRTAll / time.Duration(m.TotalCompleted)
}

// ResponseTimePercentile returns the in-window response-time quantile
// (approximate, log-bucketed).
func (m *Metrics) ResponseTimePercentile(q float64) time.Duration {
	return m.hist.Percentile(q)
}

// TxAvgResponseTime returns one transaction type's session mean.
func (m *Metrics) TxAvgResponseTime(name string) time.Duration {
	n := m.PerTx[name]
	if n == 0 {
		return 0
	}
	return m.perTxLatSum[name] / time.Duration(n)
}

// String implements fmt.Stringer.
func (m *Metrics) String() string {
	return fmt.Sprintf("metrics{completed=%d window=%d tput=%.1f/s avgRT=%v maxRT=%v}",
		m.TotalCompleted, m.InWindow, m.Throughput(), m.AvgResponseTime(), m.MaxRT)
}

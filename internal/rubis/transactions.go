// Package rubis models the paper's target application: RUBiS, the
// three-tier auction-site prototype (Apache httpd → JBoss → MySQL) driven
// by closed-loop client emulators (§5.1). The model reproduces the pieces
// the tracing evaluation depends on:
//
//   - httpd prefork worker processes, one per client connection
//     (keep-alive), each holding an on-demand backend connection to JBoss;
//   - JBoss thread-per-connection workers bounded by MaxThreads (default
//     40 — the §5.4.1 misconfiguration), held for an idle window after each
//     response the way mod_jk/AJP connections pin servlet threads;
//   - MySQL connection threads, one per JBoss-side connection;
//   - the two standard workload mixes (Browse_Only and Default/read-write)
//     with RUBiS's three-stage session: up ramp, runtime, down ramp;
//   - fault injectors for the §5.4.2 abnormal cases (EJB_Delay,
//     DataBase_Lock, EJB_Network).
package rubis

import "time"

// Transaction is one RUBiS request type with its per-tier resource profile.
// Demands are means; the deployment draws per-request values around them.
type Transaction struct {
	Name string
	// Static requests are served entirely by httpd (images, home page).
	Static bool
	// HTTPDemand is httpd CPU to parse/dispatch; RespDemand is httpd CPU to
	// assemble/write the response.
	HTTPDemand time.Duration
	RespDemand time.Duration
	// AppDemand is JBoss CPU before the first DB query; AppPost after the
	// last one; AppPerQuery between queries.
	AppDemand   time.Duration
	AppPost     time.Duration
	AppPerQuery time.Duration
	// Queries is the number of sequential DB round trips.
	Queries int
	// DBDemand is MySQL CPU per query.
	DBDemand time.Duration
	// UsesItems marks transactions touching the items table — the ones the
	// §5.4.2 DataBase_Lock fault serialises.
	UsesItems bool
	// Message sizes in bytes.
	ReqSize       int64 // client -> httpd
	FwdSize       int64 // httpd -> jboss
	QuerySize     int64 // jboss -> mysql
	QueryRespSize int64 // mysql -> jboss
	AppRespSize   int64 // jboss -> httpd
	RespSize      int64 // httpd -> client
	// Mix weights.
	BrowseWeight  float64
	DefaultWeight float64
}

// Mix selects a workload mix (§5.1): Browse_Only is read-only; Default is
// the read-write mix.
type Mix int

// Workload mixes.
const (
	BrowseOnly Mix = iota + 1
	Default
)

// String implements fmt.Stringer.
func (m Mix) String() string {
	if m == Default {
		return "Default"
	}
	return "Browse_Only"
}

// Transactions is the RUBiS-like transaction table. Weights approximate the
// RUBiS transition tables: ViewItem is the most frequent dynamic request
// (the one §5.4.1 analyses).
var Transactions = []Transaction{
	{
		Name: "Home", Static: true,
		HTTPDemand: 1200 * time.Microsecond, RespDemand: 500 * time.Microsecond,
		ReqSize: 220, RespSize: 1800,
		BrowseWeight: 8, DefaultWeight: 6,
	},
	{
		Name:       "BrowseCategories",
		HTTPDemand: 2200 * time.Microsecond, RespDemand: 700 * time.Microsecond,
		AppDemand: 2400 * time.Microsecond, AppPost: 1500 * time.Microsecond, AppPerQuery: 400 * time.Microsecond,
		Queries: 1, DBDemand: 2 * time.Millisecond,
		ReqSize: 260, FwdSize: 540, QuerySize: 180, QueryRespSize: 1400, AppRespSize: 2600, RespSize: 3400,
		BrowseWeight: 10, DefaultWeight: 8,
	},
	{
		Name:       "BrowseRegions",
		HTTPDemand: 2200 * time.Microsecond, RespDemand: 700 * time.Microsecond,
		AppDemand: 2400 * time.Microsecond, AppPost: 1500 * time.Microsecond, AppPerQuery: 400 * time.Microsecond,
		Queries: 1, DBDemand: 2 * time.Millisecond,
		ReqSize: 260, FwdSize: 540, QuerySize: 180, QueryRespSize: 1200, AppRespSize: 2400, RespSize: 3100,
		BrowseWeight: 6, DefaultWeight: 4,
	},
	{
		Name: "SearchItemsInCategory", UsesItems: true,
		HTTPDemand: 2600 * time.Microsecond, RespDemand: 900 * time.Microsecond,
		AppDemand: 3000 * time.Microsecond, AppPost: 1800 * time.Microsecond, AppPerQuery: 500 * time.Microsecond,
		Queries: 3, DBDemand: 2800 * time.Microsecond,
		ReqSize: 300, FwdSize: 620, QuerySize: 220, QueryRespSize: 2600, AppRespSize: 5200, RespSize: 6300,
		BrowseWeight: 14, DefaultWeight: 10,
	},
	{
		Name: "SearchItemsInRegion", UsesItems: true,
		HTTPDemand: 2600 * time.Microsecond, RespDemand: 900 * time.Microsecond,
		AppDemand: 3000 * time.Microsecond, AppPost: 1800 * time.Microsecond, AppPerQuery: 500 * time.Microsecond,
		Queries: 3, DBDemand: 2800 * time.Microsecond,
		ReqSize: 300, FwdSize: 620, QuerySize: 220, QueryRespSize: 2400, AppRespSize: 4800, RespSize: 5800,
		BrowseWeight: 8, DefaultWeight: 6,
	},
	{
		Name: "ViewItem", UsesItems: true,
		HTTPDemand: 2400 * time.Microsecond, RespDemand: 800 * time.Microsecond,
		AppDemand: 3000 * time.Microsecond, AppPost: 1800 * time.Microsecond, AppPerQuery: 450 * time.Microsecond,
		Queries: 2, DBDemand: 2500 * time.Microsecond,
		ReqSize: 280, FwdSize: 580, QuerySize: 200, QueryRespSize: 1800, AppRespSize: 3600, RespSize: 4400,
		BrowseWeight: 26, DefaultWeight: 18,
	},
	{
		Name:       "ViewUserInfo",
		HTTPDemand: 2300 * time.Microsecond, RespDemand: 750 * time.Microsecond,
		AppDemand: 2700 * time.Microsecond, AppPost: 1680 * time.Microsecond, AppPerQuery: 450 * time.Microsecond,
		Queries: 2, DBDemand: 2300 * time.Microsecond,
		ReqSize: 270, FwdSize: 560, QuerySize: 190, QueryRespSize: 1500, AppRespSize: 3000, RespSize: 3700,
		BrowseWeight: 7, DefaultWeight: 5,
	},
	{
		Name: "ViewBidHistory", UsesItems: true,
		HTTPDemand: 2500 * time.Microsecond, RespDemand: 850 * time.Microsecond,
		AppDemand: 2880 * time.Microsecond, AppPost: 1740 * time.Microsecond, AppPerQuery: 500 * time.Microsecond,
		Queries: 3, DBDemand: 2600 * time.Microsecond,
		ReqSize: 290, FwdSize: 600, QuerySize: 210, QueryRespSize: 2000, AppRespSize: 4000, RespSize: 4800,
		BrowseWeight: 5, DefaultWeight: 4,
	},
	// Read-write transactions: Default mix only.
	{
		Name:       "RegisterUser",
		HTTPDemand: 2700 * time.Microsecond, RespDemand: 900 * time.Microsecond,
		AppDemand: 3300 * time.Microsecond, AppPost: 1920 * time.Microsecond, AppPerQuery: 550 * time.Microsecond,
		Queries: 2, DBDemand: 3200 * time.Microsecond,
		ReqSize: 380, FwdSize: 700, QuerySize: 260, QueryRespSize: 600, AppRespSize: 2200, RespSize: 2800,
		BrowseWeight: 0, DefaultWeight: 3,
	},
	{
		Name: "RegisterItem", UsesItems: true,
		HTTPDemand: 2800 * time.Microsecond, RespDemand: 950 * time.Microsecond,
		AppDemand: 3600 * time.Microsecond, AppPost: 2040 * time.Microsecond, AppPerQuery: 550 * time.Microsecond,
		Queries: 3, DBDemand: 3500 * time.Microsecond,
		ReqSize: 460, FwdSize: 820, QuerySize: 300, QueryRespSize: 500, AppRespSize: 2000, RespSize: 2600,
		BrowseWeight: 0, DefaultWeight: 3,
	},
	{
		Name: "StoreBid", UsesItems: true,
		HTTPDemand: 2600 * time.Microsecond, RespDemand: 900 * time.Microsecond,
		AppDemand: 3360 * time.Microsecond, AppPost: 1920 * time.Microsecond, AppPerQuery: 550 * time.Microsecond,
		Queries: 4, DBDemand: 3 * time.Millisecond,
		ReqSize: 340, FwdSize: 660, QuerySize: 240, QueryRespSize: 700, AppRespSize: 2400, RespSize: 3000,
		BrowseWeight: 0, DefaultWeight: 7,
	},
	{
		Name: "StoreBuyNow", UsesItems: true,
		HTTPDemand: 2600 * time.Microsecond, RespDemand: 900 * time.Microsecond,
		AppDemand: 3360 * time.Microsecond, AppPost: 1920 * time.Microsecond, AppPerQuery: 550 * time.Microsecond,
		Queries: 4, DBDemand: 3 * time.Millisecond,
		ReqSize: 340, FwdSize: 660, QuerySize: 240, QueryRespSize: 700, AppRespSize: 2300, RespSize: 2900,
		BrowseWeight: 0, DefaultWeight: 3,
	},
	{
		Name:       "StoreComment",
		HTTPDemand: 2500 * time.Microsecond, RespDemand: 850 * time.Microsecond,
		AppDemand: 3120 * time.Microsecond, AppPost: 1800 * time.Microsecond, AppPerQuery: 500 * time.Microsecond,
		Queries: 3, DBDemand: 2900 * time.Microsecond,
		ReqSize: 420, FwdSize: 760, QuerySize: 280, QueryRespSize: 600, AppRespSize: 2100, RespSize: 2700,
		BrowseWeight: 0, DefaultWeight: 3,
	},
	{
		Name:       "AboutMe",
		HTTPDemand: 2700 * time.Microsecond, RespDemand: 950 * time.Microsecond,
		AppDemand: 3480 * time.Microsecond, AppPost: 1980 * time.Microsecond, AppPerQuery: 550 * time.Microsecond,
		Queries: 5, DBDemand: 2700 * time.Microsecond,
		ReqSize: 320, FwdSize: 640, QuerySize: 230, QueryRespSize: 1700, AppRespSize: 4400, RespSize: 5300,
		BrowseWeight: 0, DefaultWeight: 4,
	},
}

// TransactionByName returns the named transaction, or nil.
func TransactionByName(name string) *Transaction {
	for i := range Transactions {
		if Transactions[i].Name == name {
			return &Transactions[i]
		}
	}
	return nil
}

// weights returns the mix's weight vector over Transactions.
func weights(m Mix) []float64 {
	w := make([]float64, len(Transactions))
	for i := range Transactions {
		if m == Default {
			w[i] = Transactions[i].DefaultWeight
		} else {
			w[i] = Transactions[i].BrowseWeight
		}
	}
	return w
}

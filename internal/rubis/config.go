package rubis

import (
	"time"

	"repro/internal/clock"
)

// Faults are the injected performance problems of §5.4.2.
type Faults struct {
	// EJBDelay injects a random (exponential, this mean) delay into the
	// second tier's request handling — abnormal case 1.
	EJBDelay time.Duration
	// DBLock serialises all queries touching the items table behind one
	// lock, each holding it for DBLockHold extra — abnormal case 2.
	DBLock     bool
	DBLockHold time.Duration
	// AppNetBandwidth, when > 0, caps the app-server node's NIC to this
	// many bytes/second (the paper drops its Ethernet from 100 Mbps to
	// 10 Mbps) — abnormal case 3.
	AppNetBandwidth int64
}

// Config parametrises one RUBiS run.
type Config struct {
	// Clients is the number of concurrent emulated clients (§5: 100–1000).
	Clients int
	// Mix selects Browse_Only or Default.
	Mix Mix
	// MaxThreads bounds the JBoss thread pool (§5.4.1; default 40).
	MaxThreads int
	// HttpdWorkers bounds httpd's prefork pool; sized above Clients by
	// default so the first tier accepts every connection.
	HttpdWorkers int
	// MySQLMaxConnections bounds MySQL's connection threads.
	MySQLMaxConnections int
	// ThinkTime is the mean (exponential) client think time.
	ThinkTime time.Duration
	// BackendIdleHold is how long an idle httpd->JBoss connection keeps its
	// servlet thread before closing (mod_jk style); this is what makes
	// MaxThreads=40 saturate around the paper's client counts.
	BackendIdleHold time.Duration
	// AcceptBacklog models the JBoss listen backlog: when more than this
	// many connections already wait for a servlet thread, a new connection's
	// SYN is dropped and retried after SynRetryPenalty — the overload
	// behaviour behind the paper's throughput dip and response-time blowup
	// at 800+ clients with MaxThreads=40.
	AcceptBacklog   int
	SynRetryPenalty time.Duration
	// BackendConnectCost is the fixed cost of establishing a new
	// httpd->JBoss connection (accept + AJP negotiation), paid before the
	// servlet thread starts reading. It is what makes the httpd2java
	// interaction a visible share of the request even before the thread
	// pool saturates (Fig. 15's 46% at 500 clients).
	BackendConnectCost time.Duration
	// DBLegLatency is the per-message protocol latency on JBoss<->MySQL
	// connections (driver handling, small-packet effects); it gives the
	// java2mysqld / mysqld2java interactions their Fig. 17 weight.
	DBLegLatency time.Duration
	// Stage durations (§5.1: 2 min up ramp, 7.5 min runtime, 1 min down
	// ramp). Scale multiplies all three for fast test runs.
	UpRamp   time.Duration
	Runtime  time.Duration
	DownRamp time.Duration
	Scale    float64

	// Tracing enables the TCP_TRACE instrumentation (§5.3.2 compares
	// enabled vs disabled). ProbeCost is the per-logged-activity overhead.
	Tracing   bool
	ProbeCost time.Duration

	// Skew assigns per-node clock offsets/drift (§5.2 sweeps 1–500 ms).
	Skew clock.SkewScenario

	// Noise enables the §5.3.3 background generators (rlogin, ssh and a
	// MySQL client sharing the database).
	Noise bool
	// NoiseSessions scales the generators; more sessions, more noise
	// activities in the fixed duration.
	NoiseSessions int

	Faults Faults

	// MarkovSessions makes each client follow a transition chain between
	// transaction types (RUBiS's client emulator uses transition tables)
	// instead of drawing i.i.d. from the mix weights. The stationary
	// distribution still follows the weights; transitions add the temporal
	// affinity real sessions have (search -> view -> bid...).
	MarkovSessions bool

	// Seed makes the run deterministic.
	Seed int64
}

// DefaultConfig returns the paper's baseline setup at the given client
// count.
func DefaultConfig(clients int) Config {
	return Config{
		Clients:             clients,
		Mix:                 BrowseOnly,
		MaxThreads:          40,
		HttpdWorkers:        clients + 64,
		MySQLMaxConnections: 400,
		ThinkTime:           5 * time.Second,
		BackendIdleHold:     230 * time.Millisecond,
		AcceptBacklog:       64,
		SynRetryPenalty:     time.Second,
		BackendConnectCost:  9 * time.Millisecond,
		DBLegLatency:        1500 * time.Microsecond,
		UpRamp:              2 * time.Minute,
		Runtime:             7*time.Minute + 30*time.Second,
		DownRamp:            time.Minute,
		Scale:               1.0,
		Tracing:             true,
		ProbeCost:           25 * time.Microsecond,
		Seed:                1,
	}
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 100
	}
	if c.Mix == 0 {
		c.Mix = BrowseOnly
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 40
	}
	if c.HttpdWorkers <= 0 {
		c.HttpdWorkers = c.Clients + 64
	}
	if c.MySQLMaxConnections <= 0 {
		c.MySQLMaxConnections = 400
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = 5 * time.Second
	}
	if c.BackendIdleHold <= 0 {
		c.BackendIdleHold = 230 * time.Millisecond
	}
	if c.AcceptBacklog <= 0 {
		c.AcceptBacklog = 64
	}
	if c.BackendConnectCost <= 0 {
		c.BackendConnectCost = 9 * time.Millisecond
	}
	if c.DBLegLatency <= 0 {
		c.DBLegLatency = 1500 * time.Microsecond
	}
	if c.SynRetryPenalty <= 0 {
		c.SynRetryPenalty = time.Second
	}
	if c.UpRamp <= 0 {
		c.UpRamp = 2 * time.Minute
	}
	if c.Runtime <= 0 {
		c.Runtime = 7*time.Minute + 30*time.Second
	}
	if c.DownRamp <= 0 {
		c.DownRamp = time.Minute
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.ProbeCost <= 0 {
		c.ProbeCost = 25 * time.Microsecond
	}
	if c.NoiseSessions <= 0 {
		c.NoiseSessions = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// stageDurations returns the scaled session stages.
func (c Config) stageDurations() (up, run, down time.Duration) {
	up = time.Duration(float64(c.UpRamp) * c.Scale)
	run = time.Duration(float64(c.Runtime) * c.Scale)
	down = time.Duration(float64(c.DownRamp) * c.Scale)
	return up, run, down
}

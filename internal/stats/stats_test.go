package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %f", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %f/%f", s.Min(), s.Max())
	}
	// Sample variance of this classic set is 32/7.
	want := 32.0 / 7.0
	if math.Abs(s.Variance()-want) > 1e-9 {
		t.Fatalf("Variance = %f, want %f", s.Variance(), want)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.Stddev() != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestSummaryAddDuration(t *testing.T) {
	var s Summary
	s.AddDuration(2 * time.Second)
	if s.Mean() != 2 {
		t.Fatalf("Mean = %f", s.Mean())
	}
}

func TestHistogramPercentilesAgainstExact(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(1))
	var sample []time.Duration
	for i := 0; i < 20000; i++ {
		d := time.Duration(rng.ExpFloat64() * float64(40*time.Millisecond))
		h.Add(d)
		sample = append(sample, d)
	}
	exact := Percentiles(sample, 0.5, 0.95, 0.99)
	for i, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Percentile(q)
		lo := time.Duration(float64(exact[i]) / 1.35)
		hi := time.Duration(float64(exact[i]) * 1.35)
		if got < lo || got > hi {
			t.Fatalf("p%g = %v, exact %v (outside 35%% band)", q*100, got, exact[i])
		}
	}
	if h.N() != 20000 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewLatencyHistogram()
	h.Add(10 * time.Millisecond)
	h.Add(30 * time.Millisecond)
	if h.Mean() != 20*time.Millisecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Max() != 30*time.Millisecond {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestHistogramUnderflow(t *testing.T) {
	h := NewHistogram(time.Millisecond, 1.5, 10)
	h.Add(time.Microsecond) // under the first bucket
	if h.Percentile(0.5) != time.Millisecond {
		t.Fatalf("underflow percentile = %v", h.Percentile(0.5))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Percentile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should be zero")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	f := FitLinear(xs, ys)
	if math.Abs(f.A-1) > 1e-9 || math.Abs(f.B-2) > 1e-9 {
		t.Fatalf("fit = %v", f)
	}
	if f.R2 < 0.9999 {
		t.Fatalf("R2 = %f", f.R2)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if f := FitLinear([]float64{1}, []float64{2}); f.N != 0 {
		t.Fatal("single point should return zero fit")
	}
	if f := FitLinear([]float64{2, 2}, []float64{1, 5}); f.B != 0 {
		t.Fatal("vertical data should not produce a slope")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty input should render empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Fatalf("flat sparkline %q", flat)
	}
}

func TestPercentilesExact(t *testing.T) {
	sample := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := Percentiles(sample, 0.5, 1.0)
	if got[0] != 5 || got[1] != 10 {
		t.Fatalf("percentiles = %v", got)
	}
	empty := Percentiles(nil, 0.5)
	if empty[0] != 0 {
		t.Fatal("empty sample should yield zeros")
	}
}

// Property: histogram percentiles are monotone in q.
func TestPropertyHistogramMonotone(t *testing.T) {
	f := func(seed int64) bool {
		h := NewLatencyHistogram()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			h.Add(time.Duration(rng.Int63n(int64(10 * time.Second))))
		}
		prev := time.Duration(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			p := h.Percentile(q)
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summary mean matches the arithmetic mean.
func TestPropertySummaryMean(t *testing.T) {
	f := func(values []float64) bool {
		var s Summary
		var sum float64
		count := 0
		for _, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			s.Add(v)
			sum += v
			count++
		}
		if count == 0 {
			return s.N() == 0
		}
		want := sum / float64(count)
		return math.Abs(s.Mean()-want) <= 1e-6*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package stats provides the small statistical toolkit the evaluation
// harness needs: streaming summaries, log-scale latency histograms with
// percentile queries, and linear-fit checks used to verify the paper's
// complexity claims (e.g. Fig. 9's "correlation time is linear in the
// number of requests").
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary accumulates count/mean/min/max/variance in one pass (Welford).
type Summary struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddDuration records a duration observation in seconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min and Max return the extremes (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the maximum observation.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// String implements fmt.Stringer.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g max=%.4g", s.n, s.Mean(), s.Stddev(), s.min, s.max)
}

// Histogram is a log-scale latency histogram: buckets grow geometrically
// from Min by factor Growth, giving bounded relative error for percentile
// queries across microseconds-to-minutes ranges.
type Histogram struct {
	minV    time.Duration
	growth  float64
	buckets []int64
	under   int64
	total   int64
	sum     time.Duration
	maxSeen time.Duration
}

// NewHistogram returns a histogram starting at minV with the given bucket
// growth factor (>1) and bucket count.
func NewHistogram(minV time.Duration, growth float64, buckets int) *Histogram {
	if minV <= 0 {
		minV = time.Microsecond
	}
	if growth <= 1 {
		growth = 1.25
	}
	if buckets <= 0 {
		buckets = 128
	}
	return &Histogram{minV: minV, growth: growth, buckets: make([]int64, buckets)}
}

// NewLatencyHistogram returns a histogram suitable for request latencies
// (1µs .. ~30min at 15% relative resolution).
func NewLatencyHistogram() *Histogram {
	return NewHistogram(time.Microsecond, 1.15, 160)
}

func (h *Histogram) bucketOf(d time.Duration) int {
	if d < h.minV {
		return -1
	}
	idx := int(math.Log(float64(d)/float64(h.minV)) / math.Log(h.growth))
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	return idx
}

// lowerBound returns the lower edge of bucket i.
func (h *Histogram) lowerBound(i int) time.Duration {
	return time.Duration(float64(h.minV) * math.Pow(h.growth, float64(i)))
}

// Add records one latency.
func (h *Histogram) Add(d time.Duration) {
	h.total++
	h.sum += d
	if d > h.maxSeen {
		h.maxSeen = d
	}
	if i := h.bucketOf(d); i < 0 {
		h.under++
	} else {
		h.buckets[i]++
	}
}

// N returns the number of recorded latencies.
func (h *Histogram) N() int64 { return h.total }

// Mean returns the exact mean (tracked separately from the buckets).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Max returns the exact maximum.
func (h *Histogram) Max() time.Duration { return h.maxSeen }

// Percentile returns the approximate q-quantile (0 < q <= 1): the lower
// edge of the bucket containing it (relative error bounded by the growth
// factor).
func (h *Histogram) Percentile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		q = 0.0001
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.total)))
	acc := h.under
	if acc >= target {
		return h.minV
	}
	for i, c := range h.buckets {
		acc += c
		if acc >= target {
			return h.lowerBound(i)
		}
	}
	return h.maxSeen
}

// String implements fmt.Stringer with the standard latency quartet.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v max=%v",
		h.total, h.Percentile(0.50).Round(time.Microsecond),
		h.Percentile(0.95).Round(time.Microsecond),
		h.Percentile(0.99).Round(time.Microsecond),
		h.maxSeen.Round(time.Microsecond))
}

// LinearFit is an ordinary least-squares fit y = a + b·x with R².
type LinearFit struct {
	A, B, R2 float64
	N        int
}

// FitLinear fits y against x. It returns a zero fit for fewer than two
// points.
func FitLinear(xs, ys []float64) LinearFit {
	n := len(xs)
	if n < 2 || len(ys) != n {
		return LinearFit{}
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{N: n}
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 0.0
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return LinearFit{A: a, B: b, R2: r2, N: n}
}

// String implements fmt.Stringer.
func (f LinearFit) String() string {
	return fmt.Sprintf("y = %.4g + %.4g*x (R²=%.4f, n=%d)", f.A, f.B, f.R2, f.N)
}

// Sparkline renders values as a compact unicode bar chart for terminal
// tables.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// Percentiles is a convenience for exact percentiles over a full sample
// (used in tests against the histogram approximation).
func Percentiles(sample []time.Duration, qs ...float64) []time.Duration {
	if len(sample) == 0 {
		return make([]time.Duration, len(qs))
	}
	sorted := make([]time.Duration, len(sample))
	copy(sorted, sample)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		out[i] = sorted[idx]
	}
	return out
}

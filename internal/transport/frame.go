// Package transport is the agent→collector network ingestion tier: the
// paper's deployment (§3.1) runs one kernel tracing agent per host, each
// shipping its TCP_TRACE stream to the central correlator. This package
// carries those streams over TCP as length-prefixed binary frames of the
// compact record codec (activity.AppendBinary), with a per-agent
// sequence/ack protocol that makes reconnects lossless and restarts
// idempotent.
//
// Protocol (one TCP connection per agent, framed both ways):
//
//	agent → collector   HELLO   version, host name
//	collector → agent   ACK     highest item sequence applied for host
//	agent → collector   BATCH   firstSeq + items (records, heartbeats)
//	collector → agent   ACK     after each batch
//	agent → collector   CLOSE   clean end of the host's stream
//	collector → agent   CLOSE   close acknowledged (stream fully applied)
//	collector → agent   ERROR   terminal: message, connection drops
//
// Items — records and heartbeats — carry per-agent monotone sequence
// numbers assigned in offer order. The collector applies only items with
// seq above its per-host high-water mark, so an agent may resend freely:
// after a reconnect it replays everything unacknowledged, and a restarted
// agent re-offers its whole log from the start (sequence numbers are
// positional, so the replay skips the applied prefix). Exactly-once
// application falls out of at-least-once delivery plus the monotone seq.
//
// Backpressure is TCP itself: the collector stops reading a connection
// while the correlator's bounded ingest queue is full, the socket buffers
// fill, and the agent's sends block until the pipeline catches up.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/activity"
)

// Frame types.
const (
	frameHello byte = 1 // agent → collector: protocol version + host name
	frameAck   byte = 2 // collector → agent: highest applied item seq
	frameBatch byte = 3 // agent → collector: contiguous run of items
	frameClose byte = 4 // either direction: clean end of stream / its ack
	frameError byte = 5 // collector → agent: terminal error message
)

// Item tags inside a batch frame.
const (
	itemRecord    byte = 0
	itemHeartbeat byte = 1
)

// protocolVersion is the HELLO version byte; the collector rejects
// mismatches so both ends fail loudly instead of misparsing frames.
const protocolVersion = 1

// maxFrame bounds one frame's payload — large enough for any sane batch,
// small enough that a garbage length prefix cannot OOM the reader.
const maxFrame = 8 << 20

// writeFrame emits one frame: 4-byte big-endian payload length, the type
// byte, then the payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("transport: frame payload %d exceeds limit %d", len(payload), maxFrame)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, reusing buf when it is large enough.
func readFrame(r io.Reader, buf []byte) (typ byte, payload, nextBuf []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, buf, fmt.Errorf("transport: frame length %d exceeds limit %d", n, maxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, buf, err
	}
	return hdr[4], payload, buf, nil
}

// item is one sequenced unit of an agent's stream: a record, or a
// heartbeat asserting "nothing older than ts will follow". Heartbeats
// ride the same sequence space as records — they order against them, and
// an applied heartbeat raises the session's per-host floor, so replaying
// a record past an already-applied later heartbeat would be rejected as a
// regression. Sequencing both keeps resume replays exact.
type item struct {
	seq uint64
	rec *activity.Activity // nil for a heartbeat
	hb  time.Duration
}

// helloPayload encodes a HELLO frame body.
func helloPayload(host string) []byte {
	buf := []byte{protocolVersion}
	buf = binary.AppendUvarint(buf, uint64(len(host)))
	return append(buf, host...)
}

// parseHello decodes a HELLO frame body.
func parseHello(p []byte) (host string, err error) {
	if len(p) < 1 {
		return "", fmt.Errorf("transport: empty hello")
	}
	if p[0] != protocolVersion {
		return "", fmt.Errorf("transport: protocol version %d, want %d", p[0], protocolVersion)
	}
	n, used := binary.Uvarint(p[1:])
	if used <= 0 || int(n) != len(p)-1-used {
		return "", fmt.Errorf("transport: malformed hello")
	}
	return string(p[1+used:]), nil
}

// ackPayload encodes an ACK frame body.
func ackPayload(buf []byte, seq uint64) []byte {
	return binary.AppendUvarint(buf[:0], seq)
}

// parseAck decodes an ACK frame body.
func parseAck(p []byte) (uint64, error) {
	seq, used := binary.Uvarint(p)
	if used <= 0 || used != len(p) {
		return 0, fmt.Errorf("transport: malformed ack")
	}
	return seq, nil
}

// batchPayload encodes a BATCH frame body: uvarint first sequence,
// uvarint item count, then tagged items. Item sequences are contiguous
// from the first — resends stay byte-stable and the collector can skip
// already-applied prefixes without per-item sequence overhead.
func batchPayload(buf []byte, items []item) []byte {
	buf = binary.AppendUvarint(buf[:0], items[0].seq)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		if it.rec != nil {
			buf = append(buf, itemRecord)
			buf = activity.AppendBinary(buf, it.rec)
		} else {
			buf = append(buf, itemHeartbeat)
			buf = binary.AppendVarint(buf, int64(it.hb))
		}
	}
	return buf
}

// parseBatch decodes a BATCH frame body, invoking apply for each item in
// sequence order. apply errors abort the parse.
func parseBatch(p []byte, apply func(it item) error) error {
	first, used := binary.Uvarint(p)
	if used <= 0 {
		return fmt.Errorf("transport: malformed batch header")
	}
	p = p[used:]
	count, used := binary.Uvarint(p)
	if used <= 0 {
		return fmt.Errorf("transport: malformed batch count")
	}
	p = p[used:]
	for i := uint64(0); i < count; i++ {
		if len(p) == 0 {
			return fmt.Errorf("transport: batch truncated at item %d/%d", i, count)
		}
		tag := p[0]
		p = p[1:]
		it := item{seq: first + i}
		switch tag {
		case itemRecord:
			// Records decode into pooled storage (interned identity strings,
			// bound keys, no per-record allocation on the warm path). The
			// apply callback takes ownership: whoever ends up not forwarding
			// a record returns it via activity.ReleaseRecord.
			rec := activity.NewRecord()
			n, err := activity.DecodeBinaryInto(rec, p)
			if err != nil {
				activity.ReleaseRecord(rec)
				return fmt.Errorf("transport: batch item %d: %w", i, err)
			}
			it.rec = rec
			p = p[n:]
		case itemHeartbeat:
			ts, n := binary.Varint(p)
			if n <= 0 {
				return fmt.Errorf("transport: batch item %d: malformed heartbeat", i)
			}
			it.hb = time.Duration(ts)
			p = p[n:]
		default:
			return fmt.Errorf("transport: batch item %d: unknown tag %d", i, tag)
		}
		if err := apply(it); err != nil {
			return err
		}
	}
	if len(p) != 0 {
		return fmt.Errorf("transport: %d trailing bytes after batch", len(p))
	}
	return nil
}

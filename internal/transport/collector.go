package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/activity"
)

// Sink is where the collector delivers applied items — in production the
// serialized ingest front of the correlation session (core.Ingest). Sink
// methods are called from many connection goroutines concurrently; the
// implementation serializes (that is its whole job). A blocking Push IS
// the backpressure: the connection goroutine stops reading its socket,
// TCP flow control fills the agent's send buffer, and the agent's
// producer blocks on its bounded unacked queue.
type Sink interface {
	Push(a *activity.Activity) error
	Heartbeat(host string, ts time.Duration) error
	CloseHost(host string) error
}

// BatchSink is the optional Sink upgrade for whole-frame delivery: a
// sink that can take one decoded frame's run of records in a single
// call (core.Ingest does — one queue operation instead of one per
// record). The collector detects it at construction and prefers it.
// PushBatch transfers ownership of the records to the sink.
type BatchSink interface {
	Sink
	PushBatch(recs []*activity.Activity) error
}

// CollectorConfig parametrises a Collector.
type CollectorConfig struct {
	// Hosts are the agent host names this collector accepts — the same
	// list the correlation session was opened with (sessions declare
	// every stream up front). A HELLO for any other name is rejected.
	Hosts []string

	// HelloTimeout bounds how long an accepted connection may idle before
	// sending its HELLO, so junk connections cannot pin handler
	// goroutines. Default 10s; 0 uses the default.
	HelloTimeout time.Duration

	// Logf, when set, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// HostStatus is one host's transport-level view for dashboards: what the
// wire has delivered, independent of what correlation has released.
type HostStatus struct {
	Host        string
	Connected   bool
	Closed      bool          // clean CLOSE applied
	LastSeq     uint64        // highest applied item sequence
	LastTs      time.Duration // newest applied record/heartbeat timestamp
	Disconnects int           // connections lost without a clean CLOSE
}

// Collector accepts agent connections and applies their item streams to
// the sink exactly once, in per-host order. Per-host resume state (the
// applied high-water mark) lives in the collector, not the connection, so
// an agent may reconnect or restart at will.
type Collector struct {
	sink  Sink
	batch BatchSink // sink's batch upgrade, nil when unsupported
	cfg   CollectorConfig

	mu    sync.Mutex
	cond  *sync.Cond // signals a host's connection slot being released
	hosts map[string]*hostState
	open  int // declared hosts not yet cleanly closed

	done     chan struct{} // closed when every declared host closed cleanly
	shutdown chan struct{}
	wg       sync.WaitGroup
}

// hostState is one declared host's resume state. The owning connection
// (at most one at a time) mutates it under the collector mutex.
type hostState struct {
	name        string
	active      bool
	conn        net.Conn // the active connection, for takeover
	closed      bool
	lastApplied uint64
	lastTs      time.Duration
	disconnects int
}

// NewCollector returns a collector delivering to sink.
func NewCollector(sink Sink, cfg CollectorConfig) (*Collector, error) {
	if sink == nil {
		return nil, errors.New("transport: nil sink")
	}
	if len(cfg.Hosts) == 0 {
		return nil, errors.New("transport: collector needs at least one declared host")
	}
	if cfg.HelloTimeout <= 0 {
		cfg.HelloTimeout = 10 * time.Second
	}
	c := &Collector{
		sink:     sink,
		cfg:      cfg,
		done:     make(chan struct{}),
		shutdown: make(chan struct{}),
	}
	c.batch, _ = sink.(BatchSink)
	c.hosts = make(map[string]*hostState, len(cfg.Hosts))
	c.cond = sync.NewCond(&c.mu)
	for _, h := range cfg.Hosts {
		if h == "" {
			return nil, errors.New("transport: empty host name")
		}
		if _, dup := c.hosts[h]; !dup {
			c.hosts[h] = &hostState{name: h}
			c.open++
		}
	}
	return c, nil
}

// Serve accepts agent connections on ln until the listener closes or
// Shutdown is called, then waits for the in-flight handlers. Callers
// typically run it in its own goroutine and wait on Done.
func (c *Collector) Serve(ln net.Listener) error {
	defer c.wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-c.shutdown:
				return nil
			default:
			}
			return err
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handle(conn)
		}()
	}
}

// Done is closed once every declared host's stream has cleanly closed —
// the networked equivalent of "all input files consumed".
func (c *Collector) Done() <-chan struct{} { return c.done }

// Shutdown stops accepting and unblocks Serve. In-flight connections are
// not torn down by force — the caller closes the listener (Serve's loop
// exits on its error) and the sink's closure makes handlers fail fast.
func (c *Collector) Shutdown() {
	c.mu.Lock()
	select {
	case <-c.shutdown:
	default:
		close(c.shutdown)
	}
	c.mu.Unlock()
}

// Status reports every declared host's transport state, sorted by name.
func (c *Collector) Status() []HostStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]HostStatus, 0, len(c.hosts))
	for _, hs := range c.hosts {
		out = append(out, HostStatus{
			Host: hs.name, Connected: hs.active, Closed: hs.closed,
			LastSeq: hs.lastApplied, LastTs: hs.lastTs, Disconnects: hs.disconnects,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

func (c *Collector) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// handle owns one agent connection: HELLO handshake, resume ACK, then the
// batch-apply loop until CLOSE, error, or disconnect.
func (c *Collector) handle(conn net.Conn) {
	defer conn.Close()
	var buf []byte

	conn.SetReadDeadline(time.Now().Add(c.cfg.HelloTimeout))
	typ, payload, buf, err := readFrame(conn, buf)
	if err != nil || typ != frameHello {
		c.logf("collector: %s: no hello: %v", conn.RemoteAddr(), err)
		return
	}
	host, err := parseHello(payload)
	if err != nil {
		c.refuse(conn, err.Error())
		return
	}
	conn.SetReadDeadline(time.Time{})

	c.mu.Lock()
	hs := c.hosts[host]
	if hs == nil {
		c.mu.Unlock()
		c.refuse(conn, fmt.Sprintf("unknown host %q (collector declared %d hosts)", host, len(c.cfg.Hosts)))
		return
	}
	// A newer connection supersedes a stale one: a restarted agent dials
	// before the dead connection's read error surfaces here, so kill the
	// old conn and wait for its handler to release the slot. (Run one
	// agent per host — two live agents for one host will fight over it.)
	for hs.active {
		hs.conn.Close()
		c.cond.Wait()
	}
	hs.active = true
	hs.conn = conn
	resume := hs.lastApplied
	c.mu.Unlock()

	clean := false
	defer func() {
		c.mu.Lock()
		hs.active = false
		hs.conn = nil
		if !clean && !hs.closed {
			hs.disconnects++
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	}()

	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, frameAck, ackPayload(buf, resume)); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	c.logf("collector: %s connected from %s, resuming after seq %d", host, conn.RemoteAddr(), resume)

	br := bufio.NewReaderSize(conn, 1<<16)
	var ack []byte
	for {
		typ, payload, nextBuf, err := readFrame(br, buf)
		buf = nextBuf
		if err != nil {
			if err != io.EOF {
				c.logf("collector: %s: read: %v", host, err)
			}
			return
		}
		switch typ {
		case frameBatch:
			_, aerr := c.applyBatch(hs, payload)
			if aerr != nil {
				c.logf("collector: %s: apply: %v", host, aerr)
				c.refuse(conn, aerr.Error())
				return
			}
			c.mu.Lock()
			ackSeq := hs.lastApplied
			c.mu.Unlock()
			ack = ackPayload(ack, ackSeq)
			if err := writeFrame(bw, frameAck, ack); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case frameClose:
			if err := c.sink.CloseHost(host); err != nil {
				c.refuse(conn, err.Error())
				return
			}
			c.mu.Lock()
			wasClosed := hs.closed
			hs.closed = true
			if !wasClosed {
				c.open--
				if c.open == 0 {
					close(c.done)
				}
			}
			c.mu.Unlock()
			clean = true
			writeFrame(bw, frameClose, nil)
			bw.Flush()
			c.logf("collector: %s closed cleanly at seq %d", host, hs.lastApplied)
			return
		default:
			c.refuse(conn, fmt.Sprintf("unexpected frame type %d", typ))
			return
		}
	}
}

// applyBatch applies one batch's items above the host's high-water mark.
// Sink calls happen without the collector mutex held — Push may block on
// ingest backpressure, and that block must only stall this connection.
//
// Consecutive records accumulate into one run and reach the sink as a
// single PushBatch when it supports batches (core.Ingest does): one
// queue hop per frame instead of one per record. Heartbeats flush the
// pending run first, so the sink sees items in exact sequence order.
// Decoded records come from the activity record pool; ownership of a
// record passes to the sink with the flush, while records the sink never
// sees (the already-applied resume prefix) are released here.
func (c *Collector) applyBatch(hs *hostState, payload []byte) (applied int, err error) {
	c.mu.Lock()
	mark := hs.lastApplied
	c.mu.Unlock()
	var pend []*activity.Activity // decoded records awaiting the sink
	var pendTs time.Duration      // newest timestamp in pend
	flush := func() error {
		if len(pend) == 0 {
			return nil
		}
		if err := c.push(pend); err != nil {
			// Ownership of the run is ambiguous after a failed hand-off;
			// leave the records to the GC rather than risk recycling one
			// the sink retained. This path drops the connection anyway.
			pend = nil
			return err
		}
		applied += len(pend)
		mark += uint64(len(pend))
		c.mu.Lock()
		hs.lastApplied = mark
		if pendTs > hs.lastTs {
			hs.lastTs = pendTs
		}
		c.mu.Unlock()
		// The sink owns the flushed slice now (PushBatch applies it
		// asynchronously) — start a fresh one, never reuse the backing
		// array.
		pend = nil
		return nil
	}
	err = parseBatch(payload, func(it item) error {
		if it.seq <= mark {
			if it.rec != nil {
				activity.ReleaseRecord(it.rec) // replayed prefix: already applied
			}
			return nil
		}
		if it.seq != mark+1+uint64(len(pend)) {
			if it.rec != nil {
				activity.ReleaseRecord(it.rec)
			}
			return fmt.Errorf("transport: %s: sequence gap (%d after %d)", hs.name, it.seq, mark+uint64(len(pend)))
		}
		if it.rec != nil {
			if got, want := it.rec.Ctx.Host, hs.name; got != want {
				activity.ReleaseRecord(it.rec)
				return fmt.Errorf("transport: record for host %q on %q's stream", got, want)
			}
			pend = append(pend, it.rec)
			if it.rec.Timestamp > pendTs {
				pendTs = it.rec.Timestamp
			}
			return nil
		}
		// Heartbeat: deliver pending records first to preserve item order.
		if err := flush(); err != nil {
			return err
		}
		mark = it.seq
		if err := c.sink.Heartbeat(hs.name, it.hb); err != nil {
			return err
		}
		applied++
		c.mu.Lock()
		hs.lastApplied = mark
		if it.hb > hs.lastTs {
			hs.lastTs = it.hb
		}
		c.mu.Unlock()
		return nil
	})
	if err == nil {
		err = flush()
	}
	return applied, err
}

// push hands one run of records to the sink — whole when the sink
// understands batches, record by record otherwise. The caller's mark
// accounting assumes all-or-nothing; a partial per-record failure aborts
// the connection, and resume replays from the last acked sequence.
func (c *Collector) push(recs []*activity.Activity) error {
	if c.batch != nil {
		return c.batch.PushBatch(recs)
	}
	for _, a := range recs {
		if err := c.sink.Push(a); err != nil {
			return err
		}
	}
	return nil
}

// refuse sends a terminal error frame and lets the deferred close drop
// the connection.
func (c *Collector) refuse(conn net.Conn, msg string) {
	payload := []byte(msg)
	if len(payload) > 1024 {
		payload = payload[:1024]
	}
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	writeFrame(conn, frameError, payload)
}

package transport_test

import (
	"flag"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/transport"
)

// Soak knobs: `make soak` scales these up; the defaults keep the test
// inside the ordinary `go test ./...` budget.
var (
	soakAgents   = flag.Int("soak.agents", 8, "hosts (= concurrent agents) for TestTransportSoak")
	soakRequests = flag.Int("soak.requests", 300, "requests for TestTransportSoak")
)

// fingerprint captures everything observable about one CAG: structure,
// per-vertex channels and sizes, record identity, latency. Two runs are
// byte-identical iff their fingerprint sequences match.
func fingerprint(g *cag.Graph) string {
	var b strings.Builder
	b.WriteString(cag.Dump(g))
	for i := 0; i < g.Len(); i++ {
		v := g.Vertex(i)
		fmt.Fprintf(&b, "%d %s %v|", i, v.Chan, v.Size)
	}
	fmt.Fprintf(&b, "records=%v latency=%v", g.RecordIDs(), g.Latency())
	return b.String()
}

// trace is a synthetic multi-tier workload: one "web" front tier plus
// N-1 backends. Each request enters web on port 80, fans to one backend
// (round-robin, so every host stays active), and returns — six records
// spanning two hosts, globally increasing timestamps, globally unique
// IDs. Both the offline baseline and the networked run consume the very
// same records.
type trace struct {
	hosts    []string
	ipToHost map[string]string
	perHost  map[string][]*activity.Activity
	requests int
}

func genTrace(nHosts, requests int) *trace {
	tr := &trace{
		ipToHost: make(map[string]string),
		perHost:  make(map[string][]*activity.Activity),
		requests: requests,
	}
	ip := map[string]string{"web": "10.0.0.1"}
	tr.hosts = append(tr.hosts, "web")
	for i := 1; i < nHosts; i++ {
		h := fmt.Sprintf("b%d", i)
		tr.hosts = append(tr.hosts, h)
		ip[h] = fmt.Sprintf("10.0.1.%d", i)
	}
	for h, addr := range ip {
		tr.ipToHost[addr] = h
	}
	const client = "10.9.9.9"
	var ts time.Duration
	var id int64
	add := func(host string, typ activity.Type, srcIP string, srcPort int, dstIP string, dstPort int, size int64) {
		ts += time.Millisecond
		id++
		tr.perHost[host] = append(tr.perHost[host], &activity.Activity{
			ID: id, Type: typ, Timestamp: ts,
			Ctx:  activity.Context{Host: host, Program: "srv", PID: 100, TID: 100},
			Chan: activity.Channel{Src: activity.Endpoint{IP: srcIP, Port: srcPort}, Dst: activity.Endpoint{IP: dstIP, Port: dstPort}},
			Size: size, ReqID: -1, MsgID: -1,
		})
	}
	for r := 0; r < requests; r++ {
		backend := tr.hosts[1+r%(nHosts-1)]
		cport := 10000 + r%20000
		pport := 31000 + r%20000
		add("web", activity.Receive, client, cport, ip["web"], 80, 100)
		add("web", activity.Send, ip["web"], pport, ip[backend], 9000, 50)
		add(backend, activity.Receive, ip["web"], pport, ip[backend], 9000, 50)
		add(backend, activity.Send, ip[backend], 9000, ip["web"], pport, 70)
		add("web", activity.Receive, ip[backend], 9000, ip["web"], pport, 70)
		add("web", activity.Send, ip["web"], 80, client, cport, 200)
	}
	return tr
}

func (tr *trace) opts(onGraph func(*cag.Graph)) core.Options {
	return core.Options{
		Window:     10 * time.Millisecond,
		EntryPorts: []int{80},
		IPToHost:   tr.ipToHost,
		Workers:    2,
		OnGraph:    onGraph,
	}
}

// offlineFingerprints is the gold run: the same session fed in-process.
func offlineFingerprints(t *testing.T, tr *trace) []string {
	t.Helper()
	var fps []string
	s, err := core.NewSession(tr.opts(func(g *cag.Graph) { fps = append(fps, fingerprint(g)) }), tr.hosts)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range tr.hosts {
		for _, a := range tr.perHost[h] {
			if err := s.Push(a); err != nil {
				t.Fatalf("offline push %s: %v", h, err)
			}
		}
		if err := s.CloseHost(h); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	return fps
}

// startCollector wires listener → collector → serialized ingest → session
// and returns the pieces plus the OnGraph fingerprint sink.
func startCollector(t *testing.T, tr *trace, opts core.Options, iopts core.IngestOptions) (*transport.Collector, *core.Ingest, net.Listener) {
	t.Helper()
	s, err := core.NewSession(opts, tr.hosts)
	if err != nil {
		t.Fatal(err)
	}
	in := core.NewIngest(s, iopts)
	col, err := transport.NewCollector(in, transport.CollectorConfig{Hosts: tr.hosts, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go col.Serve(ln)
	return col, in, ln
}

func agentConfig(addr, host string, t *testing.T) transport.AgentConfig {
	return transport.AgentConfig{
		Addr: addr, Host: host,
		BatchSize: 64, FlushInterval: 5 * time.Millisecond,
		MaxUnacked: 128, RetryInterval: 10 * time.Millisecond,
		Logf: t.Logf,
	}
}

// waitDrained blocks until everything offered so far has been delivered
// and acked — so a following Bounce/Abort severs a connection that
// demonstrably carried data, instead of firing before the first flush.
func waitDrained(t *testing.T, a *transport.Agent) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for a.Unacked() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("agent never drained its window")
		}
		time.Sleep(time.Millisecond)
	}
}

// feedAndClose ships one host's records and performs the CLOSE handshake.
func feedAndClose(t *testing.T, addr, host string, recs []*activity.Activity, mid func(a *transport.Agent) *transport.Agent) {
	a, err := transport.NewAgent(agentConfig(addr, host, t))
	if err != nil {
		t.Error(err)
		return
	}
	for i, r := range recs {
		if mid != nil && i == len(recs)/2 {
			if a = mid(a); a == nil {
				return // mid-stream action took over (abort path)
			}
		}
		if err := a.Record(r); err != nil {
			t.Errorf("%s: record %d: %v", host, i, err)
			return
		}
	}
	if err := a.Close(); err != nil {
		t.Errorf("%s: close: %v", host, err)
	}
}

// TestNetworkedEquivalence is the tentpole's acceptance: a collector fed
// by 9 concurrent loopback agents — one bounced (reconnect + resume), one
// killed and replaced by a restarted agent re-offering its whole log —
// drains an OnGraph stream byte-identical to the offline in-process
// replay of the same records.
func TestNetworkedEquivalence(t *testing.T) {
	tr := genTrace(9, 240)
	want := offlineFingerprints(t, tr)
	if len(want) == 0 {
		t.Fatal("offline baseline produced no graphs")
	}

	var fps []string
	col, in, ln := startCollector(t, tr,
		tr.opts(func(g *cag.Graph) { fps = append(fps, fingerprint(g)) }),
		core.IngestOptions{Buffer: 64, DrainEvery: 128})
	defer ln.Close()

	done := make(chan string, len(tr.hosts))
	for _, h := range tr.hosts {
		h := h
		var mid func(*transport.Agent) *transport.Agent
		switch h {
		case "b2": // sever the connection mid-stream: reconnect + resume
			mid = func(a *transport.Agent) *transport.Agent { waitDrained(t, a); a.Bounce(); return a }
		case "b5": // kill the agent mid-stream: a fresh process re-offers
			// the whole log; positional sequences skip the applied prefix
			mid = func(a *transport.Agent) *transport.Agent {
				waitDrained(t, a)
				a.Abort()
				a2, err := transport.NewAgent(agentConfig(ln.Addr().String(), h, t))
				if err != nil {
					t.Error(err)
					return nil
				}
				for i, r := range tr.perHost[h] {
					if err := a2.Record(r); err != nil {
						t.Errorf("%s restart: record %d: %v", h, i, err)
						return nil
					}
				}
				if err := a2.Close(); err != nil {
					t.Errorf("%s restart: close: %v", h, err)
				}
				return nil
			}
		}
		go func() {
			feedAndClose(t, ln.Addr().String(), h, tr.perHost[h], mid)
			done <- h
		}()
	}
	for range tr.hosts {
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("agents did not finish")
		}
	}
	select {
	case <-col.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("collector never saw all hosts close; status: %+v", col.Status())
	}
	col.Shutdown()
	ln.Close()
	in.Close()

	if len(fps) != len(want) {
		t.Fatalf("networked run emitted %d graphs, offline %d", len(fps), len(want))
	}
	for i := range want {
		if fps[i] != want[i] {
			t.Fatalf("graph %d differs from offline replay:\nnet: %s\noff: %s", i, fps[i], want[i])
		}
	}
	for _, st := range col.Status() {
		if !st.Closed {
			t.Errorf("host %s not closed: %+v", st.Host, st)
		}
		if st.Host == "b2" || st.Host == "b5" {
			if st.Disconnects == 0 {
				t.Errorf("host %s: expected a recorded disconnect", st.Host)
			}
		}
	}
}

// TestDeadAgentSurfaces kills one agent permanently mid-stream while the
// rest keep flowing under a seal horizon: the correlator must force-seal
// the dead host's components (ForcedSeals) instead of hanging, the
// monitor's delivery view must show the dead host stale, and a very late
// restart must drain as LateLinks and still close the run cleanly.
func TestDeadAgentSurfaces(t *testing.T) {
	tr := genTrace(8, 210)
	const dead = "b3"

	mon := live.NewMonitor(live.Config{Interval: 100 * time.Millisecond})
	opts := tr.opts(mon.Ingest)
	opts.SealAfter = 50 * time.Millisecond
	col, in, ln := startCollector(t, tr, opts,
		core.IngestOptions{Buffer: 64, DrainEvery: 32,
			OnApplied: mon.ObserveDelivery})
	defer ln.Close()

	done := make(chan struct{})
	for _, h := range tr.hosts {
		h := h
		var mid func(*transport.Agent) *transport.Agent
		if h == dead {
			mid = func(a *transport.Agent) *transport.Agent { waitDrained(t, a); a.Abort(); return nil }
		}
		go func() {
			defer func() { done <- struct{}{} }()
			if h == dead {
				feedAndClose(t, ln.Addr().String(), h, tr.perHost[h], mid)
				return
			}
			// Live hosts heartbeat as they go — the wire's itemHeartbeat
			// path, and the watermark's way past the quiet tail.
			a, err := transport.NewAgent(agentConfig(ln.Addr().String(), h, t))
			if err != nil {
				t.Error(err)
				return
			}
			for i, r := range tr.perHost[h] {
				if err := a.Record(r); err != nil {
					t.Errorf("%s: record %d: %v", h, i, err)
					return
				}
				if i%50 == 49 {
					if err := a.Heartbeat(r.Timestamp); err != nil {
						t.Errorf("%s: heartbeat: %v", h, err)
						return
					}
				}
			}
			if err := a.Close(); err != nil {
				t.Errorf("%s: close: %v", h, err)
			}
		}()
	}
	for range tr.hosts {
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("agents did not finish — the dead host hung the run")
		}
	}
	if err := in.Sync(); err != nil {
		t.Fatal(err)
	}

	// The dead host's delivery clock must have stopped well short of the
	// live hosts'.
	var deadDelivered, maxDelivered time.Duration
	for _, l := range mon.HostLags() {
		if l.Host == dead {
			deadDelivered = l.Delivered
		}
		if l.Delivered > maxDelivered {
			maxDelivered = l.Delivered
		}
	}
	if deadDelivered == 0 || deadDelivered >= maxDelivered {
		t.Errorf("dead host delivery clock %v not behind the fleet's %v", deadDelivered, maxDelivered)
	}
	// The collector's handler notices the severed connection on its next
	// read — poll until the disconnect surfaces in Status.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st transport.HostStatus
		for _, s := range col.Status() {
			if s.Host == dead {
				st = s
			}
		}
		if st.Closed {
			t.Errorf("dead host closed cleanly?! %+v", st)
			break
		}
		if !st.Connected && st.Disconnects > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("dead host disconnect never surfaced: %+v", st)
			break
		}
		time.Sleep(time.Millisecond)
	}

	// The dead host restarts long after its components were force-sealed:
	// the replayed records must be absorbed as LateLinks, and the run must
	// then close cleanly end to end.
	feedAndClose(t, ln.Addr().String(), dead, tr.perHost[dead], nil)
	select {
	case <-col.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("collector never completed after restart; status: %+v", col.Status())
	}
	col.Shutdown()
	ln.Close()
	res := in.Close()
	if res.ForcedSeals == 0 {
		t.Error("no forced seals — the horizon never fired for the dead host's components")
	}
	if res.LateLinks == 0 {
		t.Error("no late links — the restarted host's stale records were not surfaced")
	}
	t.Logf("forced seals %d, late links %d", res.ForcedSeals, res.LateLinks)
}

// TestTransportSoak is the loopback soak: many agents, sustained load,
// one bounce, full equivalence against the offline baseline. `make soak`
// raises -soak.agents/-soak.requests well beyond the in-tree defaults.
func TestTransportSoak(t *testing.T) {
	nHosts, requests := *soakAgents, *soakRequests
	if nHosts < 2 {
		nHosts = 2
	}
	tr := genTrace(nHosts, requests)
	want := offlineFingerprints(t, tr)

	var fps []string
	col, in, ln := startCollector(t, tr,
		tr.opts(func(g *cag.Graph) { fps = append(fps, fingerprint(g)) }),
		core.IngestOptions{Buffer: 256, DrainEvery: 512})
	defer ln.Close()

	done := make(chan struct{}, len(tr.hosts))
	for i, h := range tr.hosts {
		h, bounce := h, i == 1
		var mid func(*transport.Agent) *transport.Agent
		if bounce {
			mid = func(a *transport.Agent) *transport.Agent { a.Bounce(); return a }
		}
		go func() {
			feedAndClose(t, ln.Addr().String(), h, tr.perHost[h], mid)
			done <- struct{}{}
		}()
	}
	deadline := time.After(10 * time.Minute)
	for range tr.hosts {
		select {
		case <-done:
		case <-deadline:
			t.Fatal("soak agents did not finish")
		}
	}
	select {
	case <-col.Done():
	case <-deadline:
		t.Fatalf("collector incomplete; status: %+v", col.Status())
	}
	col.Shutdown()
	ln.Close()
	in.Close()

	if len(fps) != len(want) {
		t.Fatalf("soak emitted %d graphs, offline %d", len(fps), len(want))
	}
	for i := range want {
		if fps[i] != want[i] {
			t.Fatalf("soak graph %d differs from offline replay", i)
		}
	}
	t.Logf("soak: %d agents, %d requests, %d graphs, byte-identical to offline", nHosts, requests, len(fps))
}

// TestAgentRejectedByCollector: an undeclared host gets a terminal
// protocol error, not an endless reconnect loop.
func TestAgentRejectedByCollector(t *testing.T) {
	tr := genTrace(2, 4)
	col, in, ln := startCollector(t, tr, tr.opts(nil), core.IngestOptions{})
	defer func() { col.Shutdown(); ln.Close(); in.Close() }()

	a, err := transport.NewAgent(agentConfig(ln.Addr().String(), "intruder", t))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		err = a.Record(tr.perHost["web"][0])
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("agent for undeclared host never saw the rejection")
		}
		time.Sleep(time.Millisecond)
	}
	if !strings.Contains(err.Error(), "unknown host") {
		t.Fatalf("unexpected terminal error: %v", err)
	}
}

package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/activity"
)

// AgentConfig parametrises an Agent.
type AgentConfig struct {
	// Addr is the collector's listen address.
	Addr string

	// Host is the agent's host name — the stream it owns. The collector
	// must have been configured with it.
	Host string

	// BatchSize is how many items accumulate before a batch frame is sent
	// without waiting for the flush interval. Default 256.
	BatchSize int

	// FlushInterval bounds how long a buffered item may wait before being
	// sent — the batching latency ceiling. Default 50ms.
	FlushInterval time.Duration

	// MaxUnacked bounds the unacknowledged item window; Record blocks once
	// it fills. This is the agent end of the backpressure chain: collector
	// stalled on the correlator's bounded ingest queue → no acks → window
	// full → the producer (the kernel trace reader) blocks. Default 4096.
	MaxUnacked int

	// RetryInterval is the pause between reconnect attempts. Default 100ms.
	RetryInterval time.Duration

	// Dial, when set, replaces net.Dial("tcp", addr) — tests inject
	// in-memory pipes or failing dials.
	Dial func(addr string) (net.Conn, error)

	// Logf, when set, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

func (cfg *AgentConfig) fill() error {
	if cfg.Host == "" {
		return errors.New("transport: agent needs a host name")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 50 * time.Millisecond
	}
	if cfg.MaxUnacked <= 0 {
		cfg.MaxUnacked = 4096
	}
	if cfg.MaxUnacked < cfg.BatchSize {
		cfg.MaxUnacked = cfg.BatchSize
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 100 * time.Millisecond
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return nil
}

// Agent ships one host's record stream to a collector. Producers call
// Record and Heartbeat (any goroutine, but items are sequenced in call
// order — hold your own order if you have one); a manager goroutine owns
// the connection, batches, resends after reconnects, and trims the queue
// as acks arrive. Close flushes everything and performs the CLOSE
// handshake; only then is the host's stream sealed at the collector.
type Agent struct {
	cfg AgentConfig

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []item // assigned but unacked, contiguous ascending seq
	nextSeq uint64 // next sequence to assign (starts at 1)
	acked   uint64 // collector's applied high-water mark
	sentSeq uint64 // highest seq written to the current connection
	conn    net.Conn
	closed  bool  // Close called: no further items
	aborted bool  // Abort called: die without CLOSE
	err     error // terminal protocol error from the collector

	kick    chan struct{}
	abortCh chan struct{}
	runDone chan struct{}
}

// NewAgent starts an agent; it dials (and redials) in the background.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	a := &Agent{
		cfg:     cfg,
		nextSeq: 1,
		kick:    make(chan struct{}, 1),
		abortCh: make(chan struct{}),
		runDone: make(chan struct{}),
	}
	a.cond = sync.NewCond(&a.mu)
	go a.run()
	return a, nil
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// Record offers one record to the stream, blocking while the unacked
// window is full. A record whose sequence the collector already applied
// (a restarted agent re-offering its log) is dropped silently.
func (a *Agent) Record(rec *activity.Activity) error {
	return a.offer(item{rec: rec})
}

// Heartbeat offers a progress assertion: no record older than ts will
// follow. Heartbeats share the record sequence space (see item).
func (a *Agent) Heartbeat(ts time.Duration) error {
	return a.offer(item{hb: ts})
}

func (a *Agent) offer(it item) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.err == nil && !a.closed && !a.aborted && len(a.queue) >= a.cfg.MaxUnacked {
		a.cond.Wait()
	}
	if err := a.deadErr(); err != nil {
		return err
	}
	if a.closed {
		return errors.New("transport: agent closed")
	}
	it.seq = a.nextSeq
	a.nextSeq++
	if it.seq <= a.acked {
		return nil // collector already has it (restart replay)
	}
	a.queue = append(a.queue, it)
	if a.nextSeq-1 >= a.sentSeq+uint64(a.cfg.BatchSize) {
		a.kickWriter()
	}
	return nil
}

func (a *Agent) deadErr() error {
	if a.err != nil {
		return a.err
	}
	if a.aborted {
		return errors.New("transport: agent aborted")
	}
	return nil
}

func (a *Agent) kickWriter() {
	select {
	case a.kick <- struct{}{}:
	default:
	}
}

// Close flushes every queued item, performs the CLOSE handshake, and
// waits until the collector confirms the stream fully applied and sealed.
func (a *Agent) Close() error {
	a.mu.Lock()
	if err := a.deadErr(); err != nil {
		a.mu.Unlock()
		return err
	}
	a.closed = true
	a.cond.Broadcast()
	a.mu.Unlock()
	a.kickWriter()
	<-a.runDone
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.deadErr()
}

// Abort kills the agent without the CLOSE handshake — the "host died"
// path. Queued items are dropped, the connection is severed, producers
// unblock with an error. The collector keeps the host open for a future
// agent to resume.
func (a *Agent) Abort() {
	a.mu.Lock()
	if !a.aborted {
		a.aborted = true
		close(a.abortCh)
		if a.conn != nil {
			a.conn.Close()
		}
		a.cond.Broadcast()
	}
	a.mu.Unlock()
	a.kickWriter()
	<-a.runDone
}

// Bounce severs the current connection without stopping the agent —
// exercises the reconnect/resume path. No-op while disconnected.
func (a *Agent) Bounce() {
	a.mu.Lock()
	if a.conn != nil {
		a.conn.Close()
	}
	a.mu.Unlock()
}

// Unacked reports the current unacknowledged window size.
func (a *Agent) Unacked() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// run is the manager: dial, session, reconnect, until a clean close,
// an abort, or a terminal collector error.
func (a *Agent) run() {
	defer func() {
		a.mu.Lock()
		a.cond.Broadcast() // release producers blocked on the window
		a.mu.Unlock()
		close(a.runDone)
	}()
	for {
		a.mu.Lock()
		dead := a.aborted || a.err != nil
		a.mu.Unlock()
		if dead {
			return
		}
		conn, err := a.cfg.Dial(a.cfg.Addr)
		if err != nil {
			a.logf("agent %s: dial: %v", a.cfg.Host, err)
			select {
			case <-a.abortCh:
				return
			case <-time.After(a.cfg.RetryInterval):
			}
			continue
		}
		if a.session(conn) {
			return
		}
		select {
		case <-a.abortCh:
			return
		case <-time.After(a.cfg.RetryInterval):
		}
	}
}

// session drives one connection: handshake, batch writer, ack reader.
// It returns true when the agent is finished for good (clean close or
// terminal error), false to reconnect and resume.
func (a *Agent) session(conn net.Conn) (finished bool) {
	defer conn.Close()

	bw := bufio.NewWriterSize(conn, 1<<16)
	if err := writeFrame(bw, frameHello, helloPayload(a.cfg.Host)); err != nil {
		return false
	}
	if err := bw.Flush(); err != nil {
		return false
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, payload, buf, err := readFrame(conn, nil)
	if err != nil {
		a.logf("agent %s: handshake: %v", a.cfg.Host, err)
		return false
	}
	if typ == frameError {
		return a.terminal(fmt.Errorf("transport: collector refused %s: %s", a.cfg.Host, payload))
	}
	if typ != frameAck {
		return a.terminal(fmt.Errorf("transport: handshake got frame type %d, want ack", typ))
	}
	resume, err := parseAck(payload)
	if err != nil {
		return a.terminal(err)
	}
	conn.SetReadDeadline(time.Time{})

	a.mu.Lock()
	if a.aborted {
		a.mu.Unlock()
		return true
	}
	a.conn = conn
	a.applyAck(resume)
	a.sentSeq = resume
	a.mu.Unlock()
	a.logf("agent %s: connected, resuming after seq %d", a.cfg.Host, resume)

	readerDone := make(chan struct{})
	closeEcho := make(chan struct{})
	go a.readAcks(conn, buf, readerDone, closeEcho)
	defer func() {
		a.mu.Lock()
		a.conn = nil
		a.mu.Unlock()
		conn.Close()
		<-readerDone
	}()

	ticker := time.NewTicker(a.cfg.FlushInterval)
	defer ticker.Stop()
	var payloadBuf []byte
	closeSent := false
	for {
		flushDue := false
		if !closeSent {
			select {
			case <-a.kick:
			case <-ticker.C:
				flushDue = true
			case <-readerDone:
				return a.isFinished()
			}
		}

		a.mu.Lock()
		if a.aborted {
			a.mu.Unlock()
			return true
		}
		var pending []item
		for _, it := range a.queue {
			if it.seq > a.sentSeq {
				pending = append(pending, it)
			}
		}
		closed := a.closed
		a.mu.Unlock()

		if len(pending) > 0 && (len(pending) >= a.cfg.BatchSize || flushDue || closed) {
			for len(pending) > 0 {
				n := len(pending)
				if n > a.cfg.BatchSize {
					n = a.cfg.BatchSize
				}
				payloadBuf = batchPayload(payloadBuf, pending[:n])
				if err := writeFrame(bw, frameBatch, payloadBuf); err != nil {
					return a.isFinished()
				}
				a.mu.Lock()
				a.sentSeq = pending[n-1].seq
				a.mu.Unlock()
				pending = pending[n:]
			}
			if err := bw.Flush(); err != nil {
				return a.isFinished()
			}
			if closed {
				a.kickWriter() // don't wait a flush interval to send CLOSE
			}
			continue // gather again before considering CLOSE
		}

		if closed && len(pending) == 0 && !closeSent {
			if err := writeFrame(bw, frameClose, nil); err != nil {
				return a.isFinished()
			}
			if err := bw.Flush(); err != nil {
				return a.isFinished()
			}
			closeSent = true
		}
		if closeSent {
			select {
			case <-closeEcho:
				a.mu.Lock()
				a.applyAck(a.nextSeq - 1) // close echo implies all applied
				a.mu.Unlock()
				a.logf("agent %s: closed cleanly", a.cfg.Host)
				return true
			case <-readerDone:
				return a.isFinished()
			}
		}
	}
}

// readAcks consumes collector frames on one connection: acks trim the
// queue and release blocked producers, a CLOSE echo confirms the seal, an
// ERROR is terminal.
func (a *Agent) readAcks(conn net.Conn, buf []byte, done chan<- struct{}, closeEcho chan<- struct{}) {
	defer close(done)
	br := bufio.NewReader(conn)
	for {
		typ, payload, nextBuf, err := readFrame(br, buf)
		buf = nextBuf
		if err != nil {
			return
		}
		switch typ {
		case frameAck:
			seq, err := parseAck(payload)
			if err != nil {
				a.setTerminal(err)
				return
			}
			a.mu.Lock()
			a.applyAck(seq)
			a.mu.Unlock()
		case frameClose:
			close(closeEcho)
			return
		case frameError:
			a.setTerminal(fmt.Errorf("transport: collector error for %s: %s", a.cfg.Host, payload))
			return
		default:
			a.setTerminal(fmt.Errorf("transport: unexpected frame type %d from collector", typ))
			return
		}
	}
}

// applyAck advances the applied high-water mark and trims the queue.
// Caller holds a.mu.
func (a *Agent) applyAck(seq uint64) {
	if seq <= a.acked {
		return
	}
	a.acked = seq
	i := 0
	for i < len(a.queue) && a.queue[i].seq <= seq {
		i++
	}
	if i > 0 {
		a.queue = a.queue[i:]
		a.cond.Broadcast()
	}
}

func (a *Agent) setTerminal(err error) {
	a.mu.Lock()
	if a.err == nil && !a.aborted {
		a.err = err
	}
	a.cond.Broadcast()
	a.mu.Unlock()
}

func (a *Agent) terminal(err error) bool {
	a.setTerminal(err)
	a.logf("agent %s: terminal: %v", a.cfg.Host, a.err)
	return true
}

// isFinished reports whether the agent should stop reconnecting.
func (a *Agent) isFinished() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.aborted || a.err != nil
}

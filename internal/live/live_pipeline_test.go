package live

import (
	"sort"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
	"repro/internal/core"
	"repro/internal/rubis"
)

// TestMonitorFedByShardedPipeline drives the monitor from the concurrent
// correlator's OnGraph stream (the livemon -workers >1 path) and checks
// that the interval history matches a sequential push-mode session feed:
// the pipeline's END-timestamp merge order satisfies Ingest's ordering
// contract, so bucketing, baselines and alerts must not change.
func TestMonitorFedByShardedPipeline(t *testing.T) {
	cfg := rubis.DefaultConfig(120)
	cfg.Scale = 0.03
	res, err := rubis.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	monitorCfg := Config{
		Interval:          2 * time.Second,
		BaselineIntervals: 2,
		MinRequests:       5,
	}
	feed := func(workers int) *Monitor {
		m := NewMonitor(monitorCfg)
		out, err := core.New(core.Options{
			Window:     10 * time.Millisecond,
			EntryPorts: []int{rubis.EntryPort},
			IPToHost:   res.IPToHost,
			Workers:    workers,
			Sinks:      []core.GraphSink{m},
		}).CorrelateTrace(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Graphs) != 0 {
			t.Fatalf("sink mode accumulated %d graphs", len(out.Graphs))
		}
		m.Flush()
		return m
	}

	sst := feed(1).Stats()
	pst := feed(4).Stats()

	if sst.Ingested == 0 {
		t.Fatal("sequential feed ingested nothing")
	}
	if pst.Ingested != sst.Ingested {
		t.Fatalf("ingested %d graphs via pipeline, %d sequentially", pst.Ingested, sst.Ingested)
	}
	if pst.Intervals != sst.Intervals {
		t.Fatalf("closed %d intervals via pipeline, %d sequentially", pst.Intervals, sst.Intervals)
	}
	sh, ph := sst.History, pst.History
	for i := range sh {
		if sh[i] != ph[i] {
			t.Fatalf("interval %d differs:\npipeline   %+v\nsequential %+v", i, ph[i], sh[i])
		}
	}
	if len(pst.Alerts) != len(sst.Alerts) {
		t.Fatalf("pipeline raised %d alerts, sequential %d", len(pst.Alerts), len(sst.Alerts))
	}
}

// TestMonitorFedByContinuousSession is the always-on deployment the
// continuous mode exists for (livemon -sealafter): a sharded session over
// a real RUBiS workload, whose agents never close their streams, must
// feed the monitor CAGs mid-run — and the monitor must see them in
// END-timestamp order when the liveness bound holds.
func TestMonitorFedByContinuousSession(t *testing.T) {
	cfg := rubis.DefaultConfig(120)
	cfg.Scale = 0.03
	res, err := rubis.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(Config{Interval: 2 * time.Second, BaselineIntervals: 2, MinRequests: 5})
	var hosts []string
	for h := range res.PerHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	sess, err := core.NewSession(core.Options{
		Window:     10 * time.Millisecond,
		EntryPorts: []int{rubis.EntryPort},
		IPToHost:   res.IPToHost,
		Workers:    4,
		SealAfter:  500 * time.Millisecond,
		OnGraph:    func(g *cag.Graph) { m.Ingest(g) },
	}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	merged := make([]*activity.Activity, len(res.Trace))
	copy(merged, res.Trace)
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Timestamp < merged[j].Timestamp })
	for i, a := range merged {
		if err := sess.Push(a); err != nil {
			t.Fatal(err)
		}
		if (i+1)%256 == 0 {
			sess.Drain()
		}
	}
	sess.Drain()
	midIngested := m.Stats().Ingested
	if midIngested == 0 {
		t.Fatal("continuous session fed the monitor nothing before any stream closed")
	}
	out := sess.Close()
	m.Flush()
	if out.ForcedSeals == 0 {
		t.Fatal("no forced seals on a forever-open RUBiS run")
	}
	st := m.Stats()
	if st.Ingested == 0 || st.Intervals == 0 {
		t.Fatalf("monitor saw %d CAGs over %d intervals", st.Ingested, st.Intervals)
	}
	t.Logf("mid-run ingested %d/%d CAGs; %d forced seals, %d late links, %d out-of-order",
		midIngested, st.Ingested, out.ForcedSeals, out.LateLinks, st.OutOfOrder)
}

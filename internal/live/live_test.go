package live

import (
	"strings"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/analysis"
	"repro/internal/cag"
	"repro/internal/core"
	"repro/internal/rubis"
)

// buildGraph makes a finished two-tier CAG completing at the given time,
// with a front2front share controlled by frontWork and a cross share by
// hop.
func buildGraph(t *testing.T, endAt time.Duration, frontWork, hop time.Duration, salt int) *cag.Graph {
	t.Helper()
	front := activity.Context{Host: "web1", Program: "front", PID: salt, TID: salt}
	back := activity.Context{Host: "app1", Program: "back", PID: 7, TID: 100 + salt}
	cch := activity.Channel{Src: activity.Endpoint{IP: "c", Port: 30000 + salt}, Dst: activity.Endpoint{IP: "w", Port: 80}}
	wch := activity.Channel{Src: activity.Endpoint{IP: "w", Port: 40000 + salt}, Dst: activity.Endpoint{IP: "a", Port: 9000}}

	total := frontWork + hop + hop + frontWork
	start := endAt - total
	g := cag.New(&cag.Vertex{Type: activity.Begin, Timestamp: start, Ctx: front, Chan: cch})
	s := &cag.Vertex{Type: activity.Send, Timestamp: start + frontWork, Ctx: front, Chan: wch}
	if err := g.AddVertex(s, cag.ContextEdge, g.Root()); err != nil {
		t.Fatal(err)
	}
	rcv := &cag.Vertex{Type: activity.Receive, Timestamp: start + frontWork + hop, Ctx: back, Chan: wch}
	if err := g.AddVertex(rcv, cag.MessageEdge, s); err != nil {
		t.Fatal(err)
	}
	s2 := &cag.Vertex{Type: activity.Send, Timestamp: start + frontWork + hop, Ctx: back, Chan: wch.Reverse()}
	if err := g.AddVertex(s2, cag.ContextEdge, rcv); err != nil {
		t.Fatal(err)
	}
	r2 := &cag.Vertex{Type: activity.Receive, Timestamp: start + frontWork + 2*hop, Ctx: front, Chan: wch.Reverse()}
	if err := g.AddVertex(r2, cag.MessageEdge, s2); err != nil {
		t.Fatal(err)
	}
	end := &cag.Vertex{Type: activity.End, Timestamp: endAt, Ctx: front, Chan: cch.Reverse()}
	if err := g.AddVertex(end, cag.ContextEdge, r2); err != nil {
		t.Fatal(err)
	}
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMonitorBaselineThenAlert(t *testing.T) {
	var alerts []Alert
	m := NewMonitor(Config{
		Interval:          time.Second,
		BaselineIntervals: 2,
		MinRequests:       5,
		Detector:          analysis.Detector{ThresholdPoints: 10},
		OnAlert:           func(a Alert) { alerts = append(alerts, a) },
	})
	// Two healthy intervals (baseline), then one degraded interval where
	// the cross-tier hop explodes.
	at := time.Duration(0)
	for interval := 0; interval < 4; interval++ {
		hop := 5 * time.Millisecond
		if interval == 3 {
			hop = 60 * time.Millisecond // back tier's input path degrades
		}
		for i := 0; i < 8; i++ {
			at = time.Duration(interval)*time.Second + time.Duration(100+i*20)*time.Millisecond
			m.Ingest(buildGraph(t, at, 10*time.Millisecond, hop, i))
		}
	}
	m.Flush()

	if n := m.Stats().Intervals; n != 4 {
		t.Fatalf("intervals = %d, want 4", n)
	}
	if len(alerts) == 0 {
		t.Fatalf("no alerts raised; summary:\n%s", m.Summary())
	}
	found := false
	for _, a := range alerts {
		if a.Finding.Category == "front2back" || a.Finding.Category == "back2front" {
			found = true
			if a.LatFactor < 1.5 {
				t.Fatalf("latency factor = %f, want > 1.5", a.LatFactor)
			}
		}
	}
	if !found {
		t.Fatalf("expected a cross-tier finding, got %v", alerts)
	}
}

func TestMonitorNoAlertsWhenHealthy(t *testing.T) {
	m := NewMonitor(Config{Interval: time.Second, BaselineIntervals: 1, MinRequests: 3})
	for interval := 0; interval < 5; interval++ {
		for i := 0; i < 5; i++ {
			at := time.Duration(interval)*time.Second + time.Duration(100+i*50)*time.Millisecond
			m.Ingest(buildGraph(t, at, 10*time.Millisecond, 5*time.Millisecond, i))
		}
	}
	m.Flush()
	st := m.Stats()
	if len(st.Alerts) != 0 {
		t.Fatalf("healthy stream raised alerts:\n%s", m.Summary())
	}
	if st.Ingested != 25 {
		t.Fatalf("ingested = %d", st.Ingested)
	}
}

func TestMonitorSkipsSparsePatterns(t *testing.T) {
	m := NewMonitor(Config{Interval: time.Second, BaselineIntervals: 1, MinRequests: 50})
	for interval := 0; interval < 3; interval++ {
		for i := 0; i < 5; i++ { // below MinRequests
			at := time.Duration(interval)*time.Second + time.Duration(100+i*50)*time.Millisecond
			m.Ingest(buildGraph(t, at, 10*time.Millisecond, 5*time.Millisecond, i))
		}
	}
	m.Flush()
	if len(m.Stats().Alerts) != 0 {
		t.Fatal("sparse patterns must not alert")
	}
}

func TestMonitorEmptyIntervalsSkipped(t *testing.T) {
	m := NewMonitor(Config{Interval: 100 * time.Millisecond, BaselineIntervals: 1, MinRequests: 1})
	// Two CAGs three intervals apart: the empty gap intervals are skipped
	// in one jump, recorded on the next closed interval's stat.
	m.Ingest(buildGraph(t, 50*time.Millisecond, 5*time.Millisecond, 2*time.Millisecond, 1))
	m.Ingest(buildGraph(t, 350*time.Millisecond, 5*time.Millisecond, 2*time.Millisecond, 2))
	m.Flush()
	st := m.Stats()
	if st.Intervals != 2 {
		t.Fatalf("intervals = %d, want 2 (gap intervals skipped, not closed)", st.Intervals)
	}
	if st.SkippedEmpty != 2 {
		t.Fatalf("SkippedEmpty = %d, want 2", st.SkippedEmpty)
	}
	hist := st.History
	if len(hist) != 2 {
		t.Fatalf("history rows = %d, want 2", len(hist))
	}
	if hist[0].SkippedEmpty != 0 || hist[1].SkippedEmpty != 2 {
		t.Fatalf("per-stat skipped counts = %d/%d, want 0/2", hist[0].SkippedEmpty, hist[1].SkippedEmpty)
	}
	if hist[1].Start != 300*time.Millisecond {
		t.Fatalf("post-gap interval starts at %v, want 300ms", hist[1].Start)
	}
}

// TestMonitorLongGapDoesNotSpin is the gap bugfix: a multi-hour quiet
// spell at a 1-second interval must jump straight to the bucket holding
// the next CAG — constant work and two history rows, not ten thousand
// closeInterval calls.
func TestMonitorLongGapDoesNotSpin(t *testing.T) {
	m := NewMonitor(Config{Interval: time.Second, BaselineIntervals: 1, MinRequests: 1})
	m.Ingest(buildGraph(t, 500*time.Millisecond, 5*time.Millisecond, 2*time.Millisecond, 1))
	quiet := 3 * time.Hour
	done := make(chan struct{})
	go func() {
		m.Ingest(buildGraph(t, quiet+500*time.Millisecond, 5*time.Millisecond, 2*time.Millisecond, 2))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("gap ingest did not return promptly (interval spin)")
	}
	m.Flush()
	st := m.Stats()
	if got, want := st.Intervals, 2; got != want {
		t.Fatalf("intervals = %d, want %d", got, want)
	}
	wantSkipped := int(quiet/time.Second) - 1 // 10799 empties between bucket 0 and bucket 10800
	if st.SkippedEmpty != wantSkipped {
		t.Fatalf("SkippedEmpty = %d, want %d", st.SkippedEmpty, wantSkipped)
	}
	if len(st.History) != 2 {
		t.Fatalf("history bloated to %d rows", len(st.History))
	}
}

// TestMonitorFlushClosesTrailingEmpty is the Flush bugfix: the current
// bucket is closed even when empty, so Intervals()/History() agree with
// the span the monitor covered instead of silently dropping the tail.
func TestMonitorFlushClosesTrailingEmpty(t *testing.T) {
	m := NewMonitor(Config{Interval: 100 * time.Millisecond, BaselineIntervals: 1, MinRequests: 1})
	m.Ingest(buildGraph(t, 50*time.Millisecond, 5*time.Millisecond, 2*time.Millisecond, 1))
	// Force an empty current bucket, as a feeder that drained without new
	// CAGs would: close the populated interval via a far-future graph is
	// not possible without data, so exercise the invariant directly —
	// Flush on a monitor whose only bucket has data closes exactly one
	// interval, and double Flush stays put.
	m.Flush()
	if n := m.Stats().Intervals; n != 1 {
		t.Fatalf("intervals = %d, want 1", n)
	}
	m.Flush()
	if n := m.Stats().Intervals; n != 1 {
		t.Fatalf("second Flush closed another interval: %d", n)
	}
	// The bug itself: a non-nil but EMPTY current bucket (the state a
	// pre-gap-fix feeder could leave behind) was silently dropped, making
	// Intervals() understate the covered span. Build that state directly
	// and check the empty interval closes cleanly: counted, zero
	// requests, zero mean latency, no divide-by-zero.
	m3 := NewMonitor(Config{Interval: 100 * time.Millisecond, BaselineIntervals: 1, MinRequests: 1})
	m3.cur = &bucket{start: 200 * time.Millisecond, graphs: make(map[string][]*cag.Graph)}
	m3.Flush()
	if n := m3.Stats().Intervals; n != 1 {
		t.Fatalf("empty trailing bucket dropped: intervals = %d, want 1", n)
	}
	hist := m3.Stats().History
	if len(hist) != 1 || hist[0].Requests != 0 || hist[0].MeanLatency != 0 || hist[0].Start != 200*time.Millisecond {
		t.Fatalf("empty interval stat = %+v", hist[0])
	}
}

func TestMonitorEndToEndWithFaultOnset(t *testing.T) {
	// Full pipeline: run a healthy RUBiS session and a faulty one, stream
	// the healthy CAGs first — the monitor must learn a baseline and then
	// flag the fault's component.
	mkGraphs := func(faults rubis.Faults) []*cag.Graph {
		cfg := rubis.DefaultConfig(150)
		cfg.Scale = 0.01
		cfg.Faults = faults
		res, err := rubis.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := core.New(core.Options{
			Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
		}).CorrelateTrace(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		return out.Graphs
	}
	healthy := mkGraphs(rubis.Faults{})
	faulty := mkGraphs(rubis.Faults{EJBDelay: 50 * time.Millisecond})

	m := NewMonitor(Config{Interval: 2 * time.Second, BaselineIntervals: 1, MinRequests: 5})
	for _, g := range healthy {
		m.Ingest(g)
	}
	// The faulty run's virtual clock restarts at 0; shift its CAGs after
	// the healthy stream by reusing completion order only.
	last := healthy[len(healthy)-1].End().Timestamp
	for _, g := range faulty {
		for _, v := range g.Vertices() {
			v.Timestamp += last
		}
		m.Ingest(g)
	}
	m.Flush()

	java2java := false
	for _, a := range m.Stats().Alerts {
		if a.Finding.Category == "java2java" {
			java2java = true
		}
	}
	if !java2java {
		t.Fatalf("EJB delay onset not flagged; summary:\n%s", m.Summary())
	}
}

func TestMonitorOutOfOrderCounted(t *testing.T) {
	m := NewMonitor(Config{Interval: time.Second})
	m.Ingest(buildGraph(t, 500*time.Millisecond, 5*time.Millisecond, 2*time.Millisecond, 1))
	m.Ingest(buildGraph(t, 400*time.Millisecond, 5*time.Millisecond, 2*time.Millisecond, 2)) // regresses
	m.Ingest(buildGraph(t, 600*time.Millisecond, 5*time.Millisecond, 2*time.Millisecond, 3))
	m.Flush()
	st := m.Stats()
	if st.OutOfOrder != 1 {
		t.Fatalf("OutOfOrder = %d, want 1", st.OutOfOrder)
	}
	if st.Ingested != 3 {
		t.Fatalf("Ingested = %d, want 3 (violators still counted)", st.Ingested)
	}

	ok := NewMonitor(Config{Interval: time.Second})
	for i := 0; i < 4; i++ {
		ok.Ingest(buildGraph(t, time.Duration(100+i*50)*time.Millisecond, 5*time.Millisecond, 2*time.Millisecond, i))
	}
	ok.Flush()
	if n := ok.Stats().OutOfOrder; n != 0 {
		t.Fatalf("ordered stream counted %d violations", n)
	}
}

func TestIntervalHistory(t *testing.T) {
	m := NewMonitor(Config{Interval: time.Second, BaselineIntervals: 1, MinRequests: 3})
	for interval := 0; interval < 3; interval++ {
		for i := 0; i < 4; i++ {
			at := time.Duration(interval)*time.Second + time.Duration(100+i*50)*time.Millisecond
			m.Ingest(buildGraph(t, at, 10*time.Millisecond, 5*time.Millisecond, i))
		}
	}
	m.Flush()
	hist := m.Stats().History
	if len(hist) != 3 {
		t.Fatalf("history = %d intervals", len(hist))
	}
	for _, st := range hist {
		if st.Requests != 4 || st.MeanLatency <= 0 || st.TopPattern == "" {
			t.Fatalf("interval stat: %+v", st)
		}
	}
	table := m.HistoryTable()
	if !strings.Contains(table, "top_pattern") || !strings.Contains(table, "front") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestMonitorHostLags(t *testing.T) {
	m := NewMonitor(Config{Interval: 100 * time.Millisecond})
	// buildGraph's back tier (app1) last appears hop+frontWork before the
	// front tier's END — a fixed per-graph lag the monitor must surface.
	m.Ingest(buildGraph(t, 50*time.Millisecond, 10*time.Millisecond, 5*time.Millisecond, 1))
	m.Ingest(buildGraph(t, 90*time.Millisecond, 10*time.Millisecond, 5*time.Millisecond, 2))
	lags := m.HostLags()
	if len(lags) != 2 {
		t.Fatalf("HostLags reported %d hosts, want 2", len(lags))
	}
	if lags[0].Host != "app1" || lags[1].Host != "web1" {
		t.Fatalf("lag order = %s,%s; want laggiest (app1) first", lags[0].Host, lags[1].Host)
	}
	if lags[1].Lag != 0 {
		t.Fatalf("web1 lag = %v, want 0 (it owns the newest record)", lags[1].Lag)
	}
	if want := 15 * time.Millisecond; lags[0].Lag != want {
		t.Fatalf("app1 lag = %v, want %v", lags[0].Lag, want)
	}
	if lags[0].Newest != 75*time.Millisecond {
		t.Fatalf("app1 newest = %v, want 75ms", lags[0].Newest)
	}
	tbl := m.HostLagTable()
	if !strings.Contains(tbl, "app1") || !strings.Contains(tbl, "web1") {
		t.Fatalf("HostLagTable missing hosts:\n%s", tbl)
	}
	if m.HostLagTable() == "" {
		t.Fatal("empty table for a populated monitor")
	}
	if empty := NewMonitor(Config{}); empty.HostLagTable() != "" {
		t.Fatal("HostLagTable non-empty for an empty monitor")
	}
	if strings.Contains(tbl, "delivered") {
		t.Fatalf("delivered column without any ObserveDelivery:\n%s", tbl)
	}
}

// TestMonitorObserveDelivery: the transport-side delivery clock rides
// HostLags independently of the correlated view — a host that has
// delivered but not yet appeared in any released CAG is listed, and the
// table grows the delivered column only once deliveries are observed.
func TestMonitorObserveDelivery(t *testing.T) {
	m := NewMonitor(Config{Interval: 100 * time.Millisecond})
	m.Ingest(buildGraph(t, 50*time.Millisecond, 10*time.Millisecond, 5*time.Millisecond, 1))
	m.ObserveDelivery("web1", 95*time.Millisecond)
	m.ObserveDelivery("web1", 80*time.Millisecond) // stale: ignored
	m.ObserveDelivery("db9", 20*time.Millisecond)  // delivered, never correlated
	byHost := make(map[string]HostLag)
	for _, l := range m.HostLags() {
		byHost[l.Host] = l
	}
	if len(byHost) != 3 {
		t.Fatalf("HostLags reported %d hosts, want 3 (incl. delivery-only db9)", len(byHost))
	}
	if got := byHost["web1"].Delivered; got != 95*time.Millisecond {
		t.Fatalf("web1 delivered = %v, want 95ms", got)
	}
	if got := byHost["db9"]; got.Delivered != 20*time.Millisecond || got.Newest != 0 {
		t.Fatalf("db9 = %+v, want delivered 20ms and no correlated records", got)
	}
	tbl := m.HostLagTable()
	if !strings.Contains(tbl, "delivered") || !strings.Contains(tbl, "db9") {
		t.Fatalf("HostLagTable missing delivery view:\n%s", tbl)
	}
}

package live

import (
	"flag"
	"fmt"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/analysis"
	"repro/internal/cag"
)

// soakScale multiplies the capacity test's long stream; make soak-short
// raises it to prove the footprint stays flat over a much longer run.
var soakScale = flag.Int("live.soakscale", 10, "sketched-capacity stream multiplier")

// soloGraph builds a minimal two-vertex BEGIN→END graph whose pattern
// is determined by prog — the cheap way to synthesize arbitrarily many
// distinct signatures.
func soloGraph(t testing.TB, endAt, latency time.Duration, prog string, salt int) *cag.Graph {
	t.Helper()
	ctx := activity.Context{Host: "web1", Program: prog, PID: salt, TID: salt}
	ch := activity.Channel{Src: activity.Endpoint{IP: "c", Port: 30000 + salt%1000}, Dst: activity.Endpoint{IP: "w", Port: 80}}
	g := cag.New(&cag.Vertex{Type: activity.Begin, Timestamp: endAt - latency, Ctx: ctx, Chan: ch})
	end := &cag.Vertex{Type: activity.End, Timestamp: endAt, Ctx: ctx, Chan: ch.Reverse()}
	if err := g.AddVertex(end, cag.ContextEdge, g.Root()); err != nil {
		t.Fatal(err)
	}
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMonitorSketchedMatchesExact pins the sketched mode's equivalence
// oracle: with ample capacity (no evictions), the sketched monitor's
// history, summary and alerts are byte-identical to the exact monitor's
// on the same stream — the per-pattern accumulators reproduce the
// aggregate arithmetic exactly, and the top-pattern tie-break matches
// the exact scan.
func TestMonitorSketchedMatchesExact(t *testing.T) {
	feed := func(sketched bool) *Monitor {
		m := NewMonitor(Config{
			Interval:          time.Second,
			BaselineIntervals: 2,
			MinRequests:       5,
			Detector:          analysis.Detector{ThresholdPoints: 10},
			Sketched:          sketched,
			MaxPatterns:       64,
		})
		at := time.Duration(0)
		for interval := 0; interval < 5; interval++ {
			hop := 5 * time.Millisecond
			if interval >= 3 {
				hop = 60 * time.Millisecond // degrade → alerts past baseline
			}
			for i := 0; i < 8; i++ {
				at = time.Duration(interval)*time.Second + time.Duration(100+i*20)*time.Millisecond
				m.Ingest(buildGraph(t, at, 10*time.Millisecond, hop, i))
				// A second, sparser pattern with odd latencies to exercise
				// the truncating integer divisions.
				if i%3 == 0 {
					m.Ingest(soloGraph(t, at+time.Millisecond, time.Duration(7+i)*time.Millisecond/3, "solo", i))
				}
			}
		}
		m.Flush()
		return m
	}
	exact, sketched := feed(false), feed(true)

	es, ss := exact.Stats(), sketched.Stats()
	if es.Ingested != ss.Ingested || es.Intervals != ss.Intervals || es.OutOfOrder != ss.OutOfOrder {
		t.Fatalf("counters differ: exact %+v sketched %+v", es, ss)
	}
	if len(es.History) != len(ss.History) {
		t.Fatalf("history rows: %d vs %d", len(es.History), len(ss.History))
	}
	for i := range es.History {
		if es.History[i] != ss.History[i] {
			t.Fatalf("interval %d differs:\nexact    %+v\nsketched %+v", i, es.History[i], ss.History[i])
		}
	}
	if len(es.Alerts) != len(ss.Alerts) {
		t.Fatalf("alerts: exact %d, sketched %d\nexact:\n%s\nsketched:\n%s",
			len(es.Alerts), len(ss.Alerts), exact.Summary(), sketched.Summary())
	}
	for i := range es.Alerts {
		e, s := es.Alerts[i], ss.Alerts[i]
		if e.Pattern != s.Pattern || e.Interval != s.Interval || e.Finding != s.Finding ||
			e.MeanLat != s.MeanLat || e.BaseLat != s.BaseLat || e.Requests != s.Requests {
			t.Fatalf("alert %d differs:\nexact    %+v\nsketched %+v", i, e, s)
		}
	}
	if et, st := exact.HistoryTable(), sketched.HistoryTable(); et != st {
		t.Fatalf("history tables differ:\nexact:\n%s\nsketched:\n%s", et, st)
	}
	if esum, ssum := exact.Summary(), sketched.Summary(); esum != ssum {
		t.Fatalf("summaries differ:\nexact:\n%s\nsketched:\n%s", esum, ssum)
	}
	// Only the sketched monitor carries lifetime quantiles.
	if exact.QuantileTable() != "" {
		t.Fatal("exact mode grew a quantile table")
	}
	if sketched.QuantileTable() == "" {
		t.Fatal("sketched mode missing its quantile table")
	}
}

// TestMonitorSketchedAlertsUnderEviction drives more patterns than the
// sketch tracks: the monitor must stay bounded and still alert on the
// dominant (heavy-hitter) pattern's degradation.
func TestMonitorSketchedAlertsUnderEviction(t *testing.T) {
	m := NewMonitor(Config{
		Interval:          time.Second,
		BaselineIntervals: 2,
		MinRequests:       5,
		Detector:          analysis.Detector{ThresholdPoints: 10},
		Sketched:          true,
		MaxPatterns:       8,
	})
	at := time.Duration(0)
	for interval := 0; interval < 5; interval++ {
		hop := 5 * time.Millisecond
		if interval >= 3 {
			hop = 60 * time.Millisecond
		}
		for i := 0; i < 10; i++ {
			at = time.Duration(interval)*time.Second + time.Duration(100+i*20)*time.Millisecond
			m.Ingest(buildGraph(t, at, 10*time.Millisecond, hop, i))
			// 30 one-off patterns per interval — almost 4× the capacity.
			for j := 0; j < 3; j++ {
				prog := fmt.Sprintf("noise%02d", (i*3+j)%30)
				m.Ingest(soloGraph(t, at+time.Duration(j+1)*time.Millisecond, 3*time.Millisecond, prog, i))
			}
		}
	}
	m.Flush()
	st := m.Stats()
	if len(st.Alerts) == 0 {
		t.Fatalf("heavy hitter's degradation missed under eviction:\n%s", m.Summary())
	}
	for _, a := range st.Alerts {
		if a.Pattern == "front>back>front" {
			return
		}
	}
	t.Fatalf("no alert on the dominant pattern: %+v", st.Alerts)
}

// TestMonitorSketchedCapacity is the bounded-memory gate (run longer by
// make soak-short via -live.soakscale): a stream soakScale× longer, with
// an open-ended pattern vocabulary, must leave every footprint dimension
// at its configured cap — flat, not proportional to the stream.
func TestMonitorSketchedCapacity(t *testing.T) {
	const maxPatterns = 16
	run := func(n int) (SketchFootprint, Stats) {
		m := NewMonitor(Config{
			Interval:    time.Second,
			MinRequests: 1,
			Sketched:    true,
			MaxPatterns: maxPatterns,
		})
		for i := 0; i < n; i++ {
			at := time.Duration(i) * 10 * time.Millisecond
			prog := fmt.Sprintf("svc%04d", i%500) // 500 distinct patterns
			lat := time.Duration(1+(i*37)%9000) * time.Microsecond
			m.Ingest(soloGraph(t, at, lat, prog, i%97))
		}
		m.Flush()
		return m.Footprint(), m.Stats()
	}
	base := 2000
	fpShort, _ := run(base)
	fpLong, stLong := run(base * *soakScale)

	if stLong.Ingested != base**soakScale {
		t.Fatalf("ingested = %d", stLong.Ingested)
	}
	check := func(name string, got, cap int) {
		t.Helper()
		if got > cap {
			t.Fatalf("%s = %d exceeds cap %d (footprint not bounded)", name, got, cap)
		}
	}
	check("TrackedPatterns", fpLong.TrackedPatterns, maxPatterns)
	check("Baselines", fpLong.Baselines, 2*maxPatterns)
	// Share categories: solo graphs have one category each, but the
	// category sketch is capped like the pattern sketch.
	check("ShareCategories", fpLong.ShareCategories, maxPatterns)
	// GK summaries grow O((1/ε)·log εN): allow 2× over a soakScale×
	// longer stream, nothing near linear.
	if fpLong.LatencyTuples > 2*fpShort.LatencyTuples+64 {
		t.Fatalf("latency sketch grew %d → %d over a %d× stream",
			fpShort.LatencyTuples, fpLong.LatencyTuples, *soakScale)
	}
	if fpLong.MaxShareTuples > 2*fpShort.MaxShareTuples+64 {
		t.Fatalf("share sketch grew %d → %d over a %d× stream",
			fpShort.MaxShareTuples, fpLong.MaxShareTuples, *soakScale)
	}
	t.Logf("footprint after %d: %+v; after %d: %+v", base, fpShort, base**soakScale, fpLong)
}

// Package live turns the offline analysis of §5.4 into an online monitor:
// finished CAGs stream in (the Monitor is a core.GraphSink — register it
// in core.Options.Sinks or IngestOptions.Sinks), are bucketed into fixed
// wall-of-virtual-time intervals per causal path pattern, and each
// closed interval is compared against a rolling baseline with the
// §5.4-style detector. The paper runs its experiments offline but motivates
// the tool for production systems ("the low overhead and tolerance of
// noise make PreciseTracer a promising tracing tool for using on
// production systems"); this package is that deployment mode.
//
// Exact mode (the default) keeps every interval's graphs and aggregates
// post-hoc — unbounded state at production rates. Config.Sketched
// switches the per-interval accounting onto bounded-memory sketches
// (internal/sketch): pattern frequencies ride a space-saving heavy-
// hitter sketch of Config.MaxPatterns counters, per-pattern latency
// breakdowns fold incrementally into analysis.Accumulator totals, and
// the detector runs on the sketched stream as intervals close. With
// capacity to spare the sketched output is byte-identical to exact mode
// (the equivalence tests pin this); under overload it degrades to the
// sketch's documented error bounds instead of growing.
package live

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/activity"
	"repro/internal/analysis"
	"repro/internal/cag"
	"repro/internal/sketch"
)

// Alert is one detector finding raised for a closed interval.
type Alert struct {
	Interval  int
	Start     time.Duration
	Pattern   string
	Finding   analysis.Finding
	Requests  int
	MeanLat   time.Duration
	BaseLat   time.Duration
	LatFactor float64
}

// String implements fmt.Stringer.
func (a Alert) String() string {
	return fmt.Sprintf("interval %d (t=%v) pattern %q: %s [mean %v vs baseline %v]",
		a.Interval, a.Start, a.Pattern, a.Finding.Reason,
		a.MeanLat.Round(time.Microsecond), a.BaseLat.Round(time.Microsecond))
}

// Config parametrises a Monitor.
type Config struct {
	// Interval is the aggregation bucket width in trace (node-local
	// first-tier) time. Default 10s.
	Interval time.Duration
	// BaselineIntervals is how many leading healthy intervals form the
	// reference average path per pattern. Default 3.
	BaselineIntervals int
	// Detector thresholds; zero value uses analysis defaults.
	Detector analysis.Detector
	// MinRequests suppresses alerts for intervals with fewer requests of a
	// pattern than this (unstable percentages). Default 10.
	MinRequests int
	// OnAlert, when set, receives alerts as intervals close.
	OnAlert func(Alert)

	// Sketched switches the per-interval pattern/latency accounting onto
	// bounded-memory sketches: at most MaxPatterns pattern signatures are
	// tracked per interval (space-saving heavy hitters), per-pattern
	// latency breakdowns accumulate incrementally instead of retaining
	// graphs, and lifetime latency/share quantiles (QuantileTable) ride
	// fixed-size Greenwald-Khanna sketches. False (the default) keeps the
	// exact post-hoc computation — and is the oracle the sketched mode's
	// equivalence tests compare against.
	Sketched bool
	// MaxPatterns caps the signatures tracked per interval and the
	// categories tracked by the lifetime share quantiles in sketched
	// mode; baselines are bounded at 2×MaxPatterns by least-recently-seen
	// eviction. Default 64. Ignored when Sketched is false.
	MaxPatterns int
	// QuantileEpsilon is the rank-error fraction of the lifetime quantile
	// sketches (sketched mode). Default 0.01 — p99 answers are within one
	// percentile of exact. Ignored when Sketched is false.
	QuantileEpsilon float64
}

type bucket struct {
	start  time.Duration
	graphs map[string][]*cag.Graph // signature -> members (exact mode)
	sk     *sketchBucket           // bounded accounting (sketched mode)
}

// sketchBucket is one interval's bounded-memory accounting: a heavy-
// hitter sketch over pattern signatures plus one incremental accumulator
// per tracked signature. reqs/latSum stay exact scalars, so interval
// totals (Requests, MeanLatency) never degrade with eviction.
type sketchBucket struct {
	top    *sketch.TopK
	accs   map[string]*analysis.Accumulator // tracked signature -> totals
	reqs   int
	latSum time.Duration
}

// IntervalStat summarises one closed interval for dashboards.
type IntervalStat struct {
	Index    int
	Start    time.Duration
	Requests int
	// MeanLatency averages across all patterns in the interval.
	MeanLatency time.Duration
	// TopPattern is the most frequent pattern name.
	TopPattern string
	Alerts     int
	// SkippedEmpty is how many empty intervals were skipped between the
	// previously closed interval and this one: a quiet gap closes no
	// per-interval state and appends no history rows (a multi-hour lull
	// at a 1s interval must not spin thousands of closes) — the covered
	// span is recorded here instead.
	SkippedEmpty int
}

type patternBaseline struct {
	report    *analysis.PatternReport
	intervals int
	// lastSeen is the interval index this pattern last reported — the
	// recency key sketched mode's baseline eviction uses.
	lastSeen int
}

// Monitor ingests CAGs and raises alerts.
type Monitor struct {
	cfg        Config
	cur        *bucket
	index      int
	baselines  map[string]*patternBaseline
	alerts     []Alert
	intervals  int
	ingested   int
	history    []IntervalStat
	lastEnd    time.Duration
	outOfOrder int

	pendingSkipped int // empty intervals skipped since the last close
	skippedEmpty   int // total empty intervals skipped over all gaps

	// hostNewest tracks, per traced host, the newest record timestamp seen
	// in any ingested CAG; newest is the global maximum. Their difference
	// is the per-host lag a deployment tunes per-host seal horizons
	// (core.Options.SealAfterByHost) and heartbeat cadence against.
	// Keyed by interned host symbol — this table is touched for every
	// vertex of every ingested CAG; names are resolved only when a lag
	// table is rendered.
	hostNewest map[activity.Sym]time.Duration
	newest     time.Duration

	// delivered tracks, per host, the newest record or heartbeat timestamp
	// the transport tier has applied — raw agent progress, ahead of (and
	// independent from) what correlation has released into CAGs. The gap
	// between Delivered and Newest is work in flight; a Delivered that
	// stops advancing is a dead or disconnected agent.
	delivered    map[activity.Sym]time.Duration
	deliveredAny bool

	// Lifetime quantile sketches (sketched mode only): end-to-end latency
	// over every ingested CAG, and per-category latency-share percentages
	// bounded by a heavy-hitter sketch over category names (an evicted
	// category's sketch is dropped with it).
	latQ     *sketch.Quantile
	shareTop *sketch.TopK
	shareQ   map[string]*sketch.Quantile
}

// HostLag is one host's staleness as observed through the CAG stream:
// how far its newest contributed record trails the newest record from any
// host. A chronically large lag identifies the agent that needs a longer
// per-host seal horizon (or a fix).
type HostLag struct {
	Host   string
	Newest time.Duration
	Lag    time.Duration
	// Delivered is the newest timestamp the ingestion tier reported for
	// this host via ObserveDelivery; zero when deliveries are not being
	// observed (offline replay).
	Delivered time.Duration
}

// NewMonitor returns a monitor with the given configuration.
func NewMonitor(cfg Config) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.BaselineIntervals <= 0 {
		cfg.BaselineIntervals = 3
	}
	if cfg.MinRequests <= 0 {
		cfg.MinRequests = 10
	}
	if cfg.MaxPatterns <= 0 {
		cfg.MaxPatterns = 64
	}
	if cfg.QuantileEpsilon <= 0 {
		cfg.QuantileEpsilon = 0.01
	}
	m := &Monitor{
		cfg:        cfg,
		baselines:  make(map[string]*patternBaseline),
		hostNewest: make(map[activity.Sym]time.Duration),
		delivered:  make(map[activity.Sym]time.Duration),
	}
	if cfg.Sketched {
		m.latQ = sketch.NewQuantile(cfg.QuantileEpsilon)
		m.shareTop = sketch.NewTopK(cfg.MaxPatterns)
		m.shareQ = make(map[string]*sketch.Quantile, cfg.MaxPatterns)
	}
	return m
}

// Ingest adds one finished CAG. CAGs must arrive in non-decreasing
// completion (END timestamp) order — the contract both the sequential
// engine and the sharded watermark emitters guarantee. A regressing END
// lands in the current interval (its own interval already closed) and is
// counted in OutOfOrder so feeders can surface the violation.
func (m *Monitor) Ingest(g *cag.Graph) {
	end := g.End()
	if end == nil {
		return
	}
	t := end.Timestamp
	if m.ingested > 0 && t < m.lastEnd {
		m.outOfOrder++
	} else {
		m.lastEnd = t
	}
	if m.cur == nil {
		m.cur = m.newBucket(t - t%m.cfg.Interval)
	}
	if t >= m.cur.start+m.cfg.Interval {
		// Close the current interval once, then jump straight to the
		// bucket containing t: the empty intervals in between are counted
		// (next IntervalStat.SkippedEmpty), never individually closed — a
		// multi-hour quiet spell at a 1s interval must not spin thousands
		// of closeInterval calls and bloat the history.
		m.closeInterval()
		next := m.cur.start + m.cfg.Interval
		target := t - (t-m.cur.start)%m.cfg.Interval
		if target > next {
			skipped := int((target - next) / m.cfg.Interval)
			m.pendingSkipped += skipped
			m.skippedEmpty += skipped
		}
		m.cur = m.newBucket(target)
	}
	sig := cag.Signature(g)
	if m.cur.sk != nil {
		m.ingestSketched(g, sig)
	} else {
		m.cur.graphs[sig] = append(m.cur.graphs[sig], g)
	}
	m.ingested++
	for _, v := range g.Vertices() {
		// Records arriving through the session are bound; a hand-built
		// vertex without records or keys falls back to interning its
		// host name.
		var sym activity.Sym
		if len(v.Records) > 0 {
			sym = v.Records[0].CtxK.Host
		}
		if sym == 0 {
			sym = activity.Syms.Intern(v.Ctx.Host)
		}
		if v.Timestamp > m.hostNewest[sym] || m.hostNewest[sym] == 0 {
			m.hostNewest[sym] = v.Timestamp
		}
		if v.Timestamp > m.newest {
			m.newest = v.Timestamp
		}
	}
}

// ConsumeGraph implements core.GraphSink: the monitor plugs directly
// into a session's emission chain (core.Options.Sinks or
// core.IngestOptions.Sinks) with no adapter closure.
func (m *Monitor) ConsumeGraph(g *cag.Graph) { m.Ingest(g) }

// newBucket opens one interval's state in the configured mode.
func (m *Monitor) newBucket(start time.Duration) *bucket {
	if m.cfg.Sketched {
		return &bucket{start: start, sk: &sketchBucket{
			top:  sketch.NewTopK(m.cfg.MaxPatterns),
			accs: make(map[string]*analysis.Accumulator, m.cfg.MaxPatterns),
		}}
	}
	return &bucket{start: start, graphs: make(map[string][]*cag.Graph)}
}

// ingestSketched folds one CAG into the current interval's bounded
// accounting and the lifetime quantile sketches. The graph itself is
// not retained — this is what bounds the sketched monitor's memory.
func (m *Monitor) ingestSketched(g *cag.Graph, sig string) {
	sk := m.cur.sk
	if evicted, ok := sk.top.Observe(sig); ok {
		delete(sk.accs, evicted)
	}
	acc := sk.accs[sig]
	if acc == nil {
		acc = analysis.NewAccumulator(cag.PatternName(g), sig)
		sk.accs[sig] = acc
	}
	lat := g.Latency()
	comps := cag.ComponentLatencies(g)
	acc.Observe(lat, comps)
	sk.reqs++
	sk.latSum += lat

	m.latQ.Observe(float64(lat))
	if lat > 0 {
		// Sorted category order keeps the share sketches' eviction
		// deterministic for identical streams.
		cats := make([]string, 0, len(comps))
		for c := range comps {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		for _, c := range cats {
			if evicted, ok := m.shareTop.Observe(c); ok {
				delete(m.shareQ, evicted)
			}
			q := m.shareQ[c]
			if q == nil {
				q = sketch.NewQuantile(m.cfg.QuantileEpsilon)
				m.shareQ[c] = q
			}
			q.Observe(100 * float64(comps[c]) / float64(lat))
		}
	}
}

// ObserveDelivery records transport-level progress for one host: the
// ingestion tier applied a record or heartbeat with timestamp ts. Like
// Ingest it must be called from the monitor's single feeding goroutine
// (core.IngestOptions.OnApplied runs on the same goroutine as OnGraph,
// so wiring both to one Monitor is safe).
func (m *Monitor) ObserveDelivery(host string, ts time.Duration) {
	m.deliveredAny = true
	sym := activity.Syms.Intern(host)
	if ts > m.delivered[sym] {
		m.delivered[sym] = ts
	}
}

// HostLags returns every host's staleness relative to the newest record
// observed from any host, laggiest first (ties broken by host name). The
// Newest/Lag view is per ingested CAG records, so it reflects what
// correlation has released, not raw agent deliveries — a host that only
// appears in still-pending components will look stale until its
// components seal. Delivered (when fed via ObserveDelivery) is the raw
// transport-side progress; a host that has delivered but not yet
// contributed to any released CAG appears with Newest zero and the full
// lag.
func (m *Monitor) HostLags() []HostLag {
	hosts := make(map[activity.Sym]bool, len(m.hostNewest)+len(m.delivered))
	for h := range m.hostNewest {
		hosts[h] = true
	}
	for h := range m.delivered {
		hosts[h] = true
	}
	out := make([]HostLag, 0, len(hosts))
	for h := range hosts {
		ts := m.hostNewest[h]
		out = append(out, HostLag{
			Host:      activity.Syms.Name(h),
			Newest:    ts,
			Lag:       m.newest - ts,
			Delivered: m.delivered[h],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lag != out[j].Lag {
			return out[i].Lag > out[j].Lag
		}
		return out[i].Host < out[j].Host
	})
	return out
}

// HostLagTable renders the per-host lag view for terminal output. The
// delivered column appears only when the ingestion tier reports
// deliveries (networked mode); offline replay keeps the compact form.
func (m *Monitor) HostLagTable() string {
	lags := m.HostLags()
	if len(lags) == 0 {
		return ""
	}
	var b strings.Builder
	if !m.deliveredAny {
		fmt.Fprintf(&b, "%-12s %12s %12s\n", "host", "newest", "lag")
		for _, l := range lags {
			fmt.Fprintf(&b, "%-12s %12v %12v\n", l.Host, l.Newest, l.Lag)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "host", "newest", "lag", "delivered")
	for _, l := range lags {
		fmt.Fprintf(&b, "%-12s %12v %12v %12v\n", l.Host, l.Newest, l.Lag, l.Delivered)
	}
	return b.String()
}

// Flush closes the current interval (end of stream). A current bucket is
// closed even when it holds no graphs — consistent with the gap handling
// in Ingest — so Intervals() and History() agree with the span the
// monitor actually covered instead of silently dropping a trailing
// quiet interval.
func (m *Monitor) Flush() {
	if m.cur != nil {
		m.closeInterval()
	}
	m.cur = nil
}

func (m *Monitor) closeInterval() {
	if m.cur.sk != nil {
		m.closeIntervalSketched()
		return
	}
	stat := IntervalStat{Index: m.index, Start: m.cur.start, SkippedEmpty: m.pendingSkipped}
	m.pendingSkipped = 0
	alertsBefore := len(m.alerts)
	sigs := make([]string, 0, len(m.cur.graphs))
	for sig := range m.cur.graphs {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	var latSum time.Duration
	topCount := 0
	// Sorted-signature order makes TopPattern deterministic on count
	// ties (map order would flip it run to run).
	for _, sig := range sigs {
		members := m.cur.graphs[sig]
		stat.Requests += len(members)
		for _, g := range members {
			latSum += g.Latency()
		}
		if len(members) > topCount {
			topCount = len(members)
			stat.TopPattern = cag.PatternName(members[0])
		}
	}
	if stat.Requests > 0 {
		stat.MeanLatency = latSum / time.Duration(stat.Requests)
	}
	defer func() {
		stat.Alerts = len(m.alerts) - alertsBefore
		m.history = append(m.history, stat)
		m.index++
		m.intervals++
	}()
	for _, sig := range sigs {
		members := m.cur.graphs[sig]
		if len(members) < m.cfg.MinRequests {
			continue
		}
		avg, err := cag.Aggregate(members)
		if err != nil {
			continue
		}
		m.diagnose(sig, reportOf(avg), len(members))
	}
}

// closeIntervalSketched is closeInterval on the bounded accounting: the
// interval totals come from the exact scalars, TopPattern from the
// heavy-hitter ranking (count desc, signature asc — the same winner as
// the exact sorted-signature scan when capacity suffices), and the
// detector runs on each tracked signature's incremental report.
func (m *Monitor) closeIntervalSketched() {
	sk := m.cur.sk
	stat := IntervalStat{
		Index: m.index, Start: m.cur.start, SkippedEmpty: m.pendingSkipped,
		Requests: sk.reqs,
	}
	m.pendingSkipped = 0
	alertsBefore := len(m.alerts)
	if sk.reqs > 0 {
		stat.MeanLatency = sk.latSum / time.Duration(sk.reqs)
	}
	if items := sk.top.Items(); len(items) > 0 {
		if acc := sk.accs[items[0].Key]; acc != nil {
			stat.TopPattern = acc.Name
		}
	}
	defer func() {
		stat.Alerts = len(m.alerts) - alertsBefore
		m.history = append(m.history, stat)
		m.index++
		m.intervals++
	}()
	sigs := make([]string, 0, len(sk.accs))
	for sig := range sk.accs {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		acc := sk.accs[sig]
		if acc.Count() < m.cfg.MinRequests {
			continue
		}
		m.diagnose(sig, acc.Report(), acc.Count())
	}
	m.evictBaselines()
}

// diagnose compares one pattern's interval report against its rolling
// baseline, blending while the baseline is still building and raising
// alerts afterwards — the per-pattern tail both close paths share.
func (m *Monitor) diagnose(sig string, rep *analysis.PatternReport, requests int) {
	base := m.baselines[sig]
	if base == nil || base.intervals < m.cfg.BaselineIntervals {
		// Still building the healthy reference: blend intervals.
		if base == nil {
			m.baselines[sig] = &patternBaseline{report: rep, intervals: 1, lastSeen: m.index}
		} else {
			base.report = blend(base.report, rep, base.intervals)
			base.intervals++
			base.lastSeen = m.index
		}
		return
	}
	base.lastSeen = m.index
	findings := m.cfg.Detector.Diagnose(base.report, rep)
	for _, f := range findings {
		a := Alert{
			Interval: m.index,
			Start:    m.cur.start,
			Pattern:  rep.Name,
			Finding:  f,
			Requests: requests,
			MeanLat:  rep.MeanLatency,
			BaseLat:  base.report.MeanLatency,
		}
		if base.report.MeanLatency > 0 {
			a.LatFactor = float64(rep.MeanLatency) / float64(base.report.MeanLatency)
		}
		m.alerts = append(m.alerts, a)
		if m.cfg.OnAlert != nil {
			m.cfg.OnAlert(a)
		}
	}
}

// evictBaselines bounds the baseline table in sketched mode: beyond
// 2×MaxPatterns entries, the least-recently-reporting patterns are
// dropped (ties broken by signature for determinism). Exact mode never
// evicts — its baseline set is as unbounded as its buckets.
func (m *Monitor) evictBaselines() {
	limit := 2 * m.cfg.MaxPatterns
	if len(m.baselines) <= limit {
		return
	}
	type cand struct {
		sig  string
		seen int
	}
	cands := make([]cand, 0, len(m.baselines))
	for sig, b := range m.baselines {
		cands = append(cands, cand{sig: sig, seen: b.lastSeen})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].seen != cands[j].seen {
			return cands[i].seen < cands[j].seen
		}
		return cands[i].sig < cands[j].sig
	})
	excess := len(m.baselines) - limit
	for _, c := range cands[:excess] {
		delete(m.baselines, c.sig)
	}
}

// reportOf converts an average path into a PatternReport (share order as in
// analysis.Report).
func reportOf(avg *cag.AveragePath) *analysis.PatternReport {
	rep := &analysis.PatternReport{
		Name: avg.Name, Signature: avg.Signature, Count: avg.Count, MeanLatency: avg.MeanLatency,
	}
	cats, vals := avg.Percentages()
	for i, c := range cats {
		rep.Shares = append(rep.Shares, analysis.ComponentShare{
			Category: c, Mean: avg.Components[c], Percent: vals[i],
		})
	}
	return rep
}

// blend averages a new interval report into the accumulating baseline
// (weighted by the number of intervals already blended).
func blend(base, next *analysis.PatternReport, weight int) *analysis.PatternReport {
	w := float64(weight)
	out := &analysis.PatternReport{
		Name: base.Name, Signature: base.Signature,
		Count:       base.Count + next.Count,
		MeanLatency: time.Duration((float64(base.MeanLatency)*w + float64(next.MeanLatency)) / (w + 1)),
	}
	byCat := make(map[string]analysis.ComponentShare)
	for _, s := range base.Shares {
		byCat[s.Category] = s
	}
	for _, s := range next.Shares {
		if b, ok := byCat[s.Category]; ok {
			byCat[s.Category] = analysis.ComponentShare{
				Category: s.Category,
				Mean:     time.Duration((float64(b.Mean)*w + float64(s.Mean)) / (w + 1)),
				Percent:  (b.Percent*w + s.Percent) / (w + 1),
			}
		} else {
			byCat[s.Category] = s
		}
	}
	cats := make([]string, 0, len(byCat))
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		out.Shares = append(out.Shares, byCat[c])
	}
	return out
}

// Stats is one consistent snapshot of the monitor's counters — the
// single accessor replacing the former per-scalar getters. The slices
// are copies: callers may retain or mutate them without observing later
// appends or corrupting monitor state.
type Stats struct {
	// Ingested is the number of CAGs consumed.
	Ingested int
	// Intervals is the number of closed (non-empty or trailing)
	// intervals; empty gap intervals are skipped, not closed.
	Intervals int
	// SkippedEmpty is the total number of empty intervals skipped over
	// quiet gaps. Intervals + SkippedEmpty is the full span covered
	// between the first ingested CAG and the last closed interval.
	SkippedEmpty int
	// OutOfOrder is how many ingested CAGs violated the non-decreasing
	// END-timestamp contract. Non-zero means the feeding correlator broke
	// its emission-order guarantee (or streams were mixed); interval
	// statistics near the violations are suspect.
	OutOfOrder int
	// Alerts holds every alert raised so far, in raise order.
	Alerts []Alert
	// History holds per-interval statistics in close order.
	History []IntervalStat
}

// Stats returns a snapshot of the monitor's counters, alerts and
// interval history. The contained slices are copies.
func (m *Monitor) Stats() Stats {
	return Stats{
		Ingested:     m.ingested,
		Intervals:    m.intervals,
		SkippedEmpty: m.skippedEmpty,
		OutOfOrder:   m.outOfOrder,
		Alerts:       append([]Alert(nil), m.alerts...),
		History:      append([]IntervalStat(nil), m.history...),
	}
}

// SketchFootprint reports the sketched mode's state sizes — the
// quantities that must stay flat (capacity-bounded) as the stream
// grows; TestMonitorSketchedCapacity gates them under make soak-short.
type SketchFootprint struct {
	// TrackedPatterns is the current interval's tracked signature count
	// (≤ MaxPatterns).
	TrackedPatterns int
	// Baselines is the rolling baseline table size (≤ 2×MaxPatterns in
	// sketched mode).
	Baselines int
	// ShareCategories is the number of categories with a lifetime share
	// quantile sketch (≤ MaxPatterns).
	ShareCategories int
	// LatencyTuples is the lifetime latency sketch's summary size —
	// O((1/ε)·log(εN)), effectively constant.
	LatencyTuples int
	// MaxShareTuples is the largest per-category share sketch.
	MaxShareTuples int
}

// Footprint returns the sketched state sizes (zero value in exact mode,
// whose footprint grows with the stream by design).
func (m *Monitor) Footprint() SketchFootprint {
	var f SketchFootprint
	f.Baselines = len(m.baselines)
	if m.cur != nil && m.cur.sk != nil {
		f.TrackedPatterns = m.cur.sk.top.Len()
	}
	if m.latQ != nil {
		f.LatencyTuples = m.latQ.Size()
	}
	f.ShareCategories = len(m.shareQ)
	for _, q := range m.shareQ {
		if q.Size() > f.MaxShareTuples {
			f.MaxShareTuples = q.Size()
		}
	}
	return f
}

// QuantileTable renders the lifetime latency and per-category share
// quantiles (sketched mode; empty otherwise). Latency rows are the
// end-to-end distribution over every ingested CAG; category rows are
// the distribution of that category's critical-path share percentage
// per request.
func (m *Monitor) QuantileTable() string {
	if m.latQ == nil || m.latQ.N() == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %12s %12s\n", "quantity", "p50", "p90", "p99")
	q := func(phi float64) time.Duration {
		return time.Duration(m.latQ.Query(phi)).Round(time.Microsecond)
	}
	fmt.Fprintf(&b, "%-16s %12v %12v %12v\n", "latency", q(0.5), q(0.9), q(0.99))
	cats := make([]string, 0, len(m.shareQ))
	for c := range m.shareQ {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		sq := m.shareQ[c]
		fmt.Fprintf(&b, "%-16s %11.1f%% %11.1f%% %11.1f%%\n",
			c, sq.Query(0.5), sq.Query(0.9), sq.Query(0.99))
	}
	return b.String()
}

// HistoryTable renders the interval history for terminal output.
func (m *Monitor) HistoryTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-10s %8s %12s %7s %7s  %s\n", "intvl", "start", "requests", "mean_lat", "alerts", "gap", "top_pattern")
	for _, st := range m.history {
		fmt.Fprintf(&b, "%-5d %-10v %8d %12v %7d %7d  %s\n",
			st.Index, st.Start, st.Requests, st.MeanLatency.Round(time.Microsecond), st.Alerts, st.SkippedEmpty, st.TopPattern)
	}
	return b.String()
}

// Summary renders a short textual report.
func (m *Monitor) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "live monitor: %d CAGs over %d intervals, %d alerts\n",
		m.ingested, m.intervals, len(m.alerts))
	if m.skippedEmpty > 0 {
		fmt.Fprintf(&b, "  (%d empty intervals skipped over quiet gaps)\n", m.skippedEmpty)
	}
	for _, a := range m.alerts {
		fmt.Fprintf(&b, "  %s\n", a)
	}
	return b.String()
}

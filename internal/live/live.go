// Package live turns the offline analysis of §5.4 into an online monitor:
// finished CAGs stream in (via core.Options.OnGraph), are bucketed into
// fixed wall-of-virtual-time intervals per causal path pattern, and each
// closed interval is compared against a rolling baseline with the
// §5.4-style detector. The paper runs its experiments offline but motivates
// the tool for production systems ("the low overhead and tolerance of
// noise make PreciseTracer a promising tracing tool for using on
// production systems"); this package is that deployment mode.
package live

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/activity"
	"repro/internal/analysis"
	"repro/internal/cag"
)

// Alert is one detector finding raised for a closed interval.
type Alert struct {
	Interval  int
	Start     time.Duration
	Pattern   string
	Finding   analysis.Finding
	Requests  int
	MeanLat   time.Duration
	BaseLat   time.Duration
	LatFactor float64
}

// String implements fmt.Stringer.
func (a Alert) String() string {
	return fmt.Sprintf("interval %d (t=%v) pattern %q: %s [mean %v vs baseline %v]",
		a.Interval, a.Start, a.Pattern, a.Finding.Reason,
		a.MeanLat.Round(time.Microsecond), a.BaseLat.Round(time.Microsecond))
}

// Config parametrises a Monitor.
type Config struct {
	// Interval is the aggregation bucket width in trace (node-local
	// first-tier) time. Default 10s.
	Interval time.Duration
	// BaselineIntervals is how many leading healthy intervals form the
	// reference average path per pattern. Default 3.
	BaselineIntervals int
	// Detector thresholds; zero value uses analysis defaults.
	Detector analysis.Detector
	// MinRequests suppresses alerts for intervals with fewer requests of a
	// pattern than this (unstable percentages). Default 10.
	MinRequests int
	// OnAlert, when set, receives alerts as intervals close.
	OnAlert func(Alert)
}

type bucket struct {
	start  time.Duration
	graphs map[string][]*cag.Graph // signature -> members
}

// IntervalStat summarises one closed interval for dashboards.
type IntervalStat struct {
	Index    int
	Start    time.Duration
	Requests int
	// MeanLatency averages across all patterns in the interval.
	MeanLatency time.Duration
	// TopPattern is the most frequent pattern name.
	TopPattern string
	Alerts     int
	// SkippedEmpty is how many empty intervals were skipped between the
	// previously closed interval and this one: a quiet gap closes no
	// per-interval state and appends no history rows (a multi-hour lull
	// at a 1s interval must not spin thousands of closes) — the covered
	// span is recorded here instead.
	SkippedEmpty int
}

type patternBaseline struct {
	report    *analysis.PatternReport
	intervals int
}

// Monitor ingests CAGs and raises alerts.
type Monitor struct {
	cfg        Config
	cur        *bucket
	index      int
	baselines  map[string]*patternBaseline
	alerts     []Alert
	intervals  int
	ingested   int
	history    []IntervalStat
	lastEnd    time.Duration
	outOfOrder int

	pendingSkipped int // empty intervals skipped since the last close
	skippedEmpty   int // total empty intervals skipped over all gaps

	// hostNewest tracks, per traced host, the newest record timestamp seen
	// in any ingested CAG; newest is the global maximum. Their difference
	// is the per-host lag a deployment tunes per-host seal horizons
	// (core.Options.SealAfterByHost) and heartbeat cadence against.
	// Keyed by interned host symbol — this table is touched for every
	// vertex of every ingested CAG; names are resolved only when a lag
	// table is rendered.
	hostNewest map[activity.Sym]time.Duration
	newest     time.Duration

	// delivered tracks, per host, the newest record or heartbeat timestamp
	// the transport tier has applied — raw agent progress, ahead of (and
	// independent from) what correlation has released into CAGs. The gap
	// between Delivered and Newest is work in flight; a Delivered that
	// stops advancing is a dead or disconnected agent.
	delivered    map[activity.Sym]time.Duration
	deliveredAny bool
}

// HostLag is one host's staleness as observed through the CAG stream:
// how far its newest contributed record trails the newest record from any
// host. A chronically large lag identifies the agent that needs a longer
// per-host seal horizon (or a fix).
type HostLag struct {
	Host   string
	Newest time.Duration
	Lag    time.Duration
	// Delivered is the newest timestamp the ingestion tier reported for
	// this host via ObserveDelivery; zero when deliveries are not being
	// observed (offline replay).
	Delivered time.Duration
}

// NewMonitor returns a monitor with the given configuration.
func NewMonitor(cfg Config) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.BaselineIntervals <= 0 {
		cfg.BaselineIntervals = 3
	}
	if cfg.MinRequests <= 0 {
		cfg.MinRequests = 10
	}
	return &Monitor{
		cfg:        cfg,
		baselines:  make(map[string]*patternBaseline),
		hostNewest: make(map[activity.Sym]time.Duration),
		delivered:  make(map[activity.Sym]time.Duration),
	}
}

// Ingest adds one finished CAG. CAGs must arrive in non-decreasing
// completion (END timestamp) order — the contract both the sequential
// engine and the sharded watermark emitters guarantee. A regressing END
// lands in the current interval (its own interval already closed) and is
// counted in OutOfOrder so feeders can surface the violation.
func (m *Monitor) Ingest(g *cag.Graph) {
	end := g.End()
	if end == nil {
		return
	}
	t := end.Timestamp
	if m.ingested > 0 && t < m.lastEnd {
		m.outOfOrder++
	} else {
		m.lastEnd = t
	}
	if m.cur == nil {
		m.cur = &bucket{start: t - t%m.cfg.Interval, graphs: make(map[string][]*cag.Graph)}
	}
	if t >= m.cur.start+m.cfg.Interval {
		// Close the current interval once, then jump straight to the
		// bucket containing t: the empty intervals in between are counted
		// (next IntervalStat.SkippedEmpty), never individually closed — a
		// multi-hour quiet spell at a 1s interval must not spin thousands
		// of closeInterval calls and bloat the history.
		m.closeInterval()
		next := m.cur.start + m.cfg.Interval
		target := t - (t-m.cur.start)%m.cfg.Interval
		if target > next {
			skipped := int((target - next) / m.cfg.Interval)
			m.pendingSkipped += skipped
			m.skippedEmpty += skipped
		}
		m.cur = &bucket{start: target, graphs: make(map[string][]*cag.Graph)}
	}
	sig := cag.Signature(g)
	m.cur.graphs[sig] = append(m.cur.graphs[sig], g)
	m.ingested++
	for _, v := range g.Vertices() {
		// Records arriving through the session are bound; a hand-built
		// vertex without records or keys falls back to interning its
		// host name.
		var sym activity.Sym
		if len(v.Records) > 0 {
			sym = v.Records[0].CtxK.Host
		}
		if sym == 0 {
			sym = activity.Syms.Intern(v.Ctx.Host)
		}
		if v.Timestamp > m.hostNewest[sym] || m.hostNewest[sym] == 0 {
			m.hostNewest[sym] = v.Timestamp
		}
		if v.Timestamp > m.newest {
			m.newest = v.Timestamp
		}
	}
}

// ObserveDelivery records transport-level progress for one host: the
// ingestion tier applied a record or heartbeat with timestamp ts. Like
// Ingest it must be called from the monitor's single feeding goroutine
// (core.IngestOptions.OnApplied runs on the same goroutine as OnGraph,
// so wiring both to one Monitor is safe).
func (m *Monitor) ObserveDelivery(host string, ts time.Duration) {
	m.deliveredAny = true
	sym := activity.Syms.Intern(host)
	if ts > m.delivered[sym] {
		m.delivered[sym] = ts
	}
}

// HostLags returns every host's staleness relative to the newest record
// observed from any host, laggiest first (ties broken by host name). The
// Newest/Lag view is per ingested CAG records, so it reflects what
// correlation has released, not raw agent deliveries — a host that only
// appears in still-pending components will look stale until its
// components seal. Delivered (when fed via ObserveDelivery) is the raw
// transport-side progress; a host that has delivered but not yet
// contributed to any released CAG appears with Newest zero and the full
// lag.
func (m *Monitor) HostLags() []HostLag {
	hosts := make(map[activity.Sym]bool, len(m.hostNewest)+len(m.delivered))
	for h := range m.hostNewest {
		hosts[h] = true
	}
	for h := range m.delivered {
		hosts[h] = true
	}
	out := make([]HostLag, 0, len(hosts))
	for h := range hosts {
		ts := m.hostNewest[h]
		out = append(out, HostLag{
			Host:      activity.Syms.Name(h),
			Newest:    ts,
			Lag:       m.newest - ts,
			Delivered: m.delivered[h],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lag != out[j].Lag {
			return out[i].Lag > out[j].Lag
		}
		return out[i].Host < out[j].Host
	})
	return out
}

// HostLagTable renders the per-host lag view for terminal output. The
// delivered column appears only when the ingestion tier reports
// deliveries (networked mode); offline replay keeps the compact form.
func (m *Monitor) HostLagTable() string {
	lags := m.HostLags()
	if len(lags) == 0 {
		return ""
	}
	var b strings.Builder
	if !m.deliveredAny {
		fmt.Fprintf(&b, "%-12s %12s %12s\n", "host", "newest", "lag")
		for _, l := range lags {
			fmt.Fprintf(&b, "%-12s %12v %12v\n", l.Host, l.Newest, l.Lag)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "host", "newest", "lag", "delivered")
	for _, l := range lags {
		fmt.Fprintf(&b, "%-12s %12v %12v %12v\n", l.Host, l.Newest, l.Lag, l.Delivered)
	}
	return b.String()
}

// Flush closes the current interval (end of stream). A current bucket is
// closed even when it holds no graphs — consistent with the gap handling
// in Ingest — so Intervals() and History() agree with the span the
// monitor actually covered instead of silently dropping a trailing
// quiet interval.
func (m *Monitor) Flush() {
	if m.cur != nil {
		m.closeInterval()
	}
	m.cur = nil
}

func (m *Monitor) closeInterval() {
	stat := IntervalStat{Index: m.index, Start: m.cur.start, SkippedEmpty: m.pendingSkipped}
	m.pendingSkipped = 0
	alertsBefore := len(m.alerts)
	sigs := make([]string, 0, len(m.cur.graphs))
	for sig := range m.cur.graphs {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	var latSum time.Duration
	topCount := 0
	// Sorted-signature order makes TopPattern deterministic on count
	// ties (map order would flip it run to run).
	for _, sig := range sigs {
		members := m.cur.graphs[sig]
		stat.Requests += len(members)
		for _, g := range members {
			latSum += g.Latency()
		}
		if len(members) > topCount {
			topCount = len(members)
			stat.TopPattern = cag.PatternName(members[0])
		}
	}
	if stat.Requests > 0 {
		stat.MeanLatency = latSum / time.Duration(stat.Requests)
	}
	defer func() {
		stat.Alerts = len(m.alerts) - alertsBefore
		m.history = append(m.history, stat)
		m.index++
		m.intervals++
	}()
	for _, sig := range sigs {
		members := m.cur.graphs[sig]
		if len(members) < m.cfg.MinRequests {
			continue
		}
		avg, err := cag.Aggregate(members)
		if err != nil {
			continue
		}
		rep := reportOf(avg)
		base := m.baselines[sig]
		if base == nil || base.intervals < m.cfg.BaselineIntervals {
			// Still building the healthy reference: blend intervals.
			if base == nil {
				m.baselines[sig] = &patternBaseline{report: rep, intervals: 1}
			} else {
				base.report = blend(base.report, rep, base.intervals)
				base.intervals++
			}
			continue
		}
		findings := m.cfg.Detector.Diagnose(base.report, rep)
		for _, f := range findings {
			a := Alert{
				Interval: m.index,
				Start:    m.cur.start,
				Pattern:  rep.Name,
				Finding:  f,
				Requests: len(members),
				MeanLat:  rep.MeanLatency,
				BaseLat:  base.report.MeanLatency,
			}
			if base.report.MeanLatency > 0 {
				a.LatFactor = float64(rep.MeanLatency) / float64(base.report.MeanLatency)
			}
			m.alerts = append(m.alerts, a)
			if m.cfg.OnAlert != nil {
				m.cfg.OnAlert(a)
			}
		}
	}
}

// reportOf converts an average path into a PatternReport (share order as in
// analysis.Report).
func reportOf(avg *cag.AveragePath) *analysis.PatternReport {
	rep := &analysis.PatternReport{
		Name: avg.Name, Signature: avg.Signature, Count: avg.Count, MeanLatency: avg.MeanLatency,
	}
	cats, vals := avg.Percentages()
	for i, c := range cats {
		rep.Shares = append(rep.Shares, analysis.ComponentShare{
			Category: c, Mean: avg.Components[c], Percent: vals[i],
		})
	}
	return rep
}

// blend averages a new interval report into the accumulating baseline
// (weighted by the number of intervals already blended).
func blend(base, next *analysis.PatternReport, weight int) *analysis.PatternReport {
	w := float64(weight)
	out := &analysis.PatternReport{
		Name: base.Name, Signature: base.Signature,
		Count:       base.Count + next.Count,
		MeanLatency: time.Duration((float64(base.MeanLatency)*w + float64(next.MeanLatency)) / (w + 1)),
	}
	byCat := make(map[string]analysis.ComponentShare)
	for _, s := range base.Shares {
		byCat[s.Category] = s
	}
	for _, s := range next.Shares {
		if b, ok := byCat[s.Category]; ok {
			byCat[s.Category] = analysis.ComponentShare{
				Category: s.Category,
				Mean:     time.Duration((float64(b.Mean)*w + float64(s.Mean)) / (w + 1)),
				Percent:  (b.Percent*w + s.Percent) / (w + 1),
			}
		} else {
			byCat[s.Category] = s
		}
	}
	cats := make([]string, 0, len(byCat))
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		out.Shares = append(out.Shares, byCat[c])
	}
	return out
}

// Alerts returns all alerts raised so far.
func (m *Monitor) Alerts() []Alert { return m.alerts }

// Intervals returns the number of closed (non-empty or trailing)
// intervals; empty gap intervals are skipped, not closed — see
// SkippedEmpty for the rest of the covered span.
func (m *Monitor) Intervals() int { return m.intervals }

// SkippedEmpty returns the total number of empty intervals skipped over
// quiet gaps. Intervals() + SkippedEmpty() is the full span covered
// between the first ingested CAG and the last closed interval.
func (m *Monitor) SkippedEmpty() int { return m.skippedEmpty }

// Ingested returns the number of CAGs consumed.
func (m *Monitor) Ingested() int { return m.ingested }

// OutOfOrder returns how many ingested CAGs violated the non-decreasing
// END-timestamp contract. Non-zero means the feeding correlator broke its
// emission-order guarantee (or streams were mixed); interval statistics
// near the violations are suspect.
func (m *Monitor) OutOfOrder() int { return m.outOfOrder }

// History returns per-interval statistics in order.
func (m *Monitor) History() []IntervalStat { return m.history }

// HistoryTable renders the interval history for terminal output.
func (m *Monitor) HistoryTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-10s %8s %12s %7s %7s  %s\n", "intvl", "start", "requests", "mean_lat", "alerts", "gap", "top_pattern")
	for _, st := range m.history {
		fmt.Fprintf(&b, "%-5d %-10v %8d %12v %7d %7d  %s\n",
			st.Index, st.Start, st.Requests, st.MeanLatency.Round(time.Microsecond), st.Alerts, st.SkippedEmpty, st.TopPattern)
	}
	return b.String()
}

// Summary renders a short textual report.
func (m *Monitor) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "live monitor: %d CAGs over %d intervals, %d alerts\n",
		m.ingested, m.intervals, len(m.alerts))
	if m.skippedEmpty > 0 {
		fmt.Fprintf(&b, "  (%d empty intervals skipped over quiet gaps)\n", m.skippedEmpty)
	}
	for _, a := range m.alerts {
		fmt.Fprintf(&b, "  %s\n", a)
	}
	return b.String()
}

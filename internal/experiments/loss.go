package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
	"repro/internal/groundtruth"
)

// dropRandom removes each record independently with probability p
// (deterministic for a seed) — modelling the activity loss §5.2 anticipates
// under network congestion ("the loss of activities will result in deformed
// CAGs").
func dropRandom(trace []*activity.Activity, p float64, seed int64) []*activity.Activity {
	if p <= 0 {
		return trace
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*activity.Activity, 0, len(trace))
	for _, a := range trace {
		if rng.Float64() < p {
			continue
		}
		out = append(out, a)
	}
	return out
}

// suspectByQuantity implements the paper's deformed-CAG detection idea:
// "when the possibility of loss of activities is low, we can distinguish
// normal CAGs from deformed CAGs according to the difference of
// quantities". Patterns whose member count is below threshold × the
// dominant pattern's count are suspects; the function returns how many
// actually-incorrect CAGs the quantity rule catches and how many correct
// CAGs it false-alarms on.
func suspectByQuantity(graphs []*cag.Graph, truth *groundtruth.Truth, threshold float64) (caught, missed, falseAlarms int) {
	patterns := cag.Classify(graphs)
	if len(patterns) == 0 {
		return 0, 0, 0
	}
	dominant := patterns[0].Count()
	for _, p := range patterns {
		suspect := float64(p.Count()) < threshold*float64(dominant)
		for _, g := range p.Graphs {
			verdict, _ := truth.Judge(g)
			incorrect := verdict != groundtruth.Correct
			switch {
			case incorrect && suspect:
				caught++
			case incorrect && !suspect:
				missed++
			case !incorrect && suspect:
				falseAlarms++
			}
		}
	}
	return caught, missed, falseAlarms
}

// AblationActivityLoss measures how activity loss degrades the correlator
// and how well the paper's quantity heuristic flags the resulting deformed
// CAGs.
func AblationActivityLoss(scale float64) (*Table, error) {
	t := &Table{
		ID:     "ABL3",
		Title:  "activity loss: accuracy, deformed CAGs, and quantity-based detection",
		Header: []string{"loss", "accuracy", "incorrect_CAGs", "unfinished", "caught", "missed", "false_alarms"},
	}
	res, err := run(300, scale, nil)
	if err != nil {
		return nil, err
	}
	for i, p := range []float64{0, 0.0001, 0.001, 0.01} {
		trace := dropRandom(res.Trace, p, int64(1000+i))
		out, err := correlateTrace(res, trace, 10*time.Millisecond)
		if err != nil {
			return nil, err
		}
		rep := res.Truth.Evaluate(out.Graphs)
		caught, missed, falseAlarms := suspectByQuantity(out.Graphs, res.Truth, 0.02)
		t.AddRow(fmt.Sprintf("%.2f%%", p*100),
			fmt.Sprintf("%.4f", rep.PathAccuracy()),
			fmt.Sprintf("%d", rep.FalsePositives()),
			fmt.Sprintf("%d", out.Unfinished()),
			fmt.Sprintf("%d", caught), fmt.Sprintf("%d", missed), fmt.Sprintf("%d", falseAlarms))
	}
	t.Notes = append(t.Notes,
		"paper §5.2: loss deforms CAGs; low-rate loss is detectable by pattern-count differences")
	return t, nil
}

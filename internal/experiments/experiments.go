package experiments

import (
	"fmt"
	"time"

	"repro/internal/stats"

	"repro/internal/activity"
	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/cag"
	"repro/internal/core"
	"repro/internal/ranker"
	"repro/internal/rubis"
)

// sweepClients is the paper's x-axis for Fig. 8/12/13/16.
var sweepClients = []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}

// run executes one RUBiS session at the given scale.
func run(clients int, scale float64, mutate func(*rubis.Config)) (*rubis.Result, error) {
	cfg := rubis.DefaultConfig(clients)
	cfg.Scale = scale
	if mutate != nil {
		mutate(&cfg)
	}
	return rubis.Run(cfg)
}

// correlate runs PreciseTracer over a result's trace.
func correlate(res *rubis.Result, window time.Duration, filter ranker.Filter) (*core.Result, error) {
	return core.New(core.Options{
		Window:     window,
		EntryPorts: []int{rubis.EntryPort},
		IPToHost:   res.IPToHost,
		Filter:     filter,
	}).CorrelateTrace(res.Trace)
}

// correlateBest runs the correlation several times and returns the result
// whose wall-clock correlation time is smallest — timing tables (Fig. 9,
// 10, 14) otherwise inherit scheduler and GC noise.
func correlateBest(res *rubis.Result, window time.Duration, filter ranker.Filter, reps int) (*core.Result, error) {
	var best *core.Result
	for i := 0; i < reps; i++ {
		out, err := correlate(res, window, filter)
		if err != nil {
			return nil, err
		}
		if best == nil || out.CorrelationTime < best.CorrelationTime {
			best = out
		}
	}
	return best, nil
}

// correlateTrace correlates an explicit (possibly mutated) trace using a
// run's topology.
func correlateTrace(res *rubis.Result, trace []*activity.Activity, window time.Duration) (*core.Result, error) {
	return core.New(core.Options{
		Window:     window,
		EntryPorts: []int{rubis.EntryPort},
		IPToHost:   res.IPToHost,
	}).CorrelateTrace(trace)
}

// Accuracy reproduces §5.2: path accuracy across workload mixes, client
// counts, window sizes, clock skews and noise. The paper reports 100% with
// no false positives and no false negatives in every configuration.
func Accuracy(scale float64) (*Table, error) {
	t := &Table{
		ID:     "ACC",
		Title:  "path accuracy (§5.2): correct paths / all logged requests",
		Header: []string{"mix", "clients", "window", "skew", "noise", "requests", "accuracy", "FP", "FN"},
	}
	type cfg struct {
		mix     rubis.Mix
		clients int
		window  time.Duration
		skew    time.Duration
		noise   bool
	}
	cases := []cfg{
		{rubis.BrowseOnly, 100, time.Millisecond, time.Millisecond, false},
		{rubis.BrowseOnly, 100, 10 * time.Second, 500 * time.Millisecond, false},
		{rubis.BrowseOnly, 500, 10 * time.Millisecond, 100 * time.Millisecond, true},
		{rubis.BrowseOnly, 1000, time.Millisecond, 500 * time.Millisecond, true},
		{rubis.Default, 100, 10 * time.Millisecond, time.Millisecond, false},
		{rubis.Default, 500, time.Millisecond, 500 * time.Millisecond, true},
		{rubis.Default, 1000, 10 * time.Second, 250 * time.Millisecond, true},
	}
	for _, c := range cases {
		res, err := run(c.clients, scale, func(r *rubis.Config) {
			r.Mix = c.mix
			r.Skew.MaxSkew = c.skew
			r.Skew.DriftPPM = 50
			r.Noise = c.noise
		})
		if err != nil {
			return nil, err
		}
		out, err := correlate(res, c.window, nil)
		if err != nil {
			return nil, err
		}
		rep := res.Truth.Evaluate(out.Graphs)
		t.AddRow(c.mix.String(), fmt.Sprintf("%d", c.clients), c.window.String(),
			c.skew.String(), fmt.Sprintf("%v", c.noise),
			fmt.Sprintf("%d", rep.LoggedRequests),
			fmt.Sprintf("%.4f", rep.PathAccuracy()),
			fmt.Sprintf("%d", rep.FalsePositives()),
			fmt.Sprintf("%d", rep.FalseNegatives()))
	}
	t.Notes = append(t.Notes, "paper: 100% accuracy, no false positives, no false negatives in all configurations")
	return t, nil
}

// Fig8 reproduces "Requests vs concurrent clients": the number of serviced
// requests over the fixed-duration session, linear until saturation.
func Fig8(scale float64) (*Table, error) {
	t := &Table{
		ID:     "Fig8",
		Title:  "requests vs concurrent clients (Browse_Only, fixed duration)",
		Header: []string{"clients", "requests", "throughput(req/s)"},
	}
	var series []float64
	for _, n := range sweepClients {
		res, err := run(n, scale, nil)
		if err != nil {
			return nil, err
		}
		series = append(series, float64(res.Metrics.TotalCompleted))
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", res.Metrics.TotalCompleted),
			fmt.Sprintf("%.1f", res.Metrics.Throughput()))
	}
	xs := make([]float64, len(sweepClients))
	for i, n := range sweepClients {
		xs[i] = float64(n)
	}
	fit := stats.FitLinear(xs[:8], series[:8]) // 100-800: the linear regime
	t.Notes = append(t.Notes,
		fmt.Sprintf("shape %s   linear fit over 100-800 clients: %s", stats.Sparkline(series), fit),
		"paper: linear in clients until RUBiS saturates near 800 clients")
	return t, nil
}

// Fig9 reproduces "Correlation time vs requests" with a 10 ms window: the
// correlation time is linear in the number of serviced requests.
func Fig9(scale float64) (*Table, error) {
	t := &Table{
		ID:     "Fig9",
		Title:  "correlation time vs requests (window = 10ms)",
		Header: []string{"clients", "requests", "activities", "corr_time", "us/request"},
	}
	for _, n := range sweepClients {
		res, err := run(n, scale, nil)
		if err != nil {
			return nil, err
		}
		out, err := correlateBest(res, 10*time.Millisecond, nil, 3)
		if err != nil {
			return nil, err
		}
		req := res.Metrics.TotalCompleted
		per := 0.0
		if req > 0 {
			per = float64(out.CorrelationTime.Microseconds()) / float64(req)
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", req),
			fmt.Sprintf("%d", len(res.Trace)),
			out.CorrelationTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", per))
	}
	t.Notes = append(t.Notes, "paper: correlation time linear in requests (constant us/request) before saturation")
	return t, nil
}

// fig10Windows is the window sweep of Fig. 10/11 (1ms .. 100s).
var fig10Windows = []time.Duration{
	time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	time.Second, 10 * time.Second, 100 * time.Second,
}

// Fig10 reproduces "Correlation time vs sliding time window" for 200, 500
// and 800 concurrent clients. One trace per client count is generated once
// and re-correlated with each window.
func Fig10(scale float64) (*Table, error) {
	t := &Table{
		ID:     "Fig10",
		Title:  "correlation time vs sliding window (clients 200/500/800)",
		Header: []string{"window", "c=200", "c=500", "c=800"},
	}
	return windowSweep(t, scale, func(out *core.Result) string {
		return out.CorrelationTime.Round(time.Millisecond).String()
	})
}

// Fig11 reproduces "Memory consumed by the Correlator" across the same
// window sweep: the working set is the ranker's buffered activities plus
// the engine's unfinished CAGs.
func Fig11(scale float64) (*Table, error) {
	t := &Table{
		ID:     "Fig11",
		Title:  "correlator memory vs sliding window (clients 200/500/800)",
		Header: []string{"window", "c=200", "c=500", "c=800"},
	}
	tbl, err := windowSweep(t, scale, func(out *core.Result) string {
		return fmt.Sprintf("%.2fMB", float64(out.EstimatedBytes())/(1<<20))
	})
	if err != nil {
		return nil, err
	}
	tbl.Notes = append(tbl.Notes, "paper: memory grows dramatically once the window covers most of the trace")
	return tbl, nil
}

func windowSweep(t *Table, scale float64, cell func(*core.Result) string) (*Table, error) {
	var results []*rubis.Result
	for _, n := range []int{200, 500, 800} {
		res, err := run(n, scale, nil)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	for _, w := range fig10Windows {
		row := []string{w.String()}
		for _, res := range results {
			out, err := correlateBest(res, w, nil, 3)
			if err != nil {
				return nil, err
			}
			row = append(row, cell(out))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig12 reproduces "The effect on the throughput of RUBiS": tracing enabled
// vs disabled. The paper's max throughput loss is 3.7%.
func Fig12(scale float64) (*Table, error) {
	return overheadSweep(scale, "Fig12", "throughput (req/s), tracing disabled vs enabled",
		func(m *rubis.Metrics) string { return fmt.Sprintf("%.1f", m.Throughput()) },
		func(dis, en *rubis.Metrics) float64 {
			if dis.Throughput() <= 0 {
				return 0
			}
			return 100 * (dis.Throughput() - en.Throughput()) / dis.Throughput()
		}, "max throughput loss", "paper: max overhead 3.7%")
}

// Fig13 reproduces "The effect on the average response time": the paper's
// max increase is below 30%.
func Fig13(scale float64) (*Table, error) {
	return overheadSweep(scale, "Fig13", "avg response time (ms), tracing disabled vs enabled",
		func(m *rubis.Metrics) string {
			return fmt.Sprintf("%.1f", float64(m.AvgResponseTime().Microseconds())/1000)
		},
		func(dis, en *rubis.Metrics) float64 {
			if dis.AvgResponseTime() <= 0 {
				return 0
			}
			return 100 * float64(en.AvgResponseTime()-dis.AvgResponseTime()) / float64(dis.AvgResponseTime())
		}, "max response-time increase", "paper: increase below 30%")
}

func overheadSweep(scale float64, id, title string, cell func(*rubis.Metrics) string,
	overhead func(dis, en *rubis.Metrics) float64, maxLabel, paperNote string) (*Table, error) {
	t := &Table{ID: id, Title: title, Header: []string{"clients", "disable", "enable", "overhead%"}}
	maxOv := 0.0
	for _, n := range sweepClients {
		en, err := run(n, scale, nil)
		if err != nil {
			return nil, err
		}
		dis, err := run(n, scale, func(c *rubis.Config) { c.Tracing = false })
		if err != nil {
			return nil, err
		}
		ov := overhead(dis.Metrics, en.Metrics)
		if ov > maxOv {
			maxOv = ov
		}
		t.AddRow(fmt.Sprintf("%d", n), cell(dis.Metrics), cell(en.Metrics), fmt.Sprintf("%.1f", ov))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%s: %.1f%%", maxLabel, maxOv), paperNote)
	return t, nil
}

// Fig14 reproduces "The overhead of noise tolerance": correlation time with
// and without background noise (rlogin/ssh filtered by program name, the
// MySQL-client noise removed by is_noise), window = 2ms.
func Fig14(scale float64) (*Table, error) {
	t := &Table{
		ID:     "Fig14",
		Title:  "correlation time with noise vs without (window = 2ms)",
		Header: []string{"clients", "no_noise", "noise", "noise_acts", "dropped(filter)", "dropped(is_noise)"},
	}
	filter := ranker.AttributeFilter{
		DenyPrograms: map[string]bool{"sshd": true, "rlogind": true},
	}.Func()
	for _, n := range []int{100, 300, 500, 700, 900} {
		clean, err := run(n, scale, nil)
		if err != nil {
			return nil, err
		}
		cleanOut, err := correlateBest(clean, 2*time.Millisecond, filter, 3)
		if err != nil {
			return nil, err
		}
		noisy, err := run(n, scale, func(c *rubis.Config) { c.Noise = true })
		if err != nil {
			return nil, err
		}
		noisyOut, err := correlateBest(noisy, 2*time.Millisecond, filter, 3)
		if err != nil {
			return nil, err
		}
		rep := noisy.Truth.Evaluate(noisyOut.Graphs)
		if rep.PathAccuracy() != 1.0 {
			t.Notes = append(t.Notes, fmt.Sprintf("WARNING: accuracy under noise at %d clients = %.4f", n, rep.PathAccuracy()))
		}
		t.AddRow(fmt.Sprintf("%d", n),
			cleanOut.CorrelationTime.Round(time.Millisecond).String(),
			noisyOut.CorrelationTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", noisy.NoiseActivities),
			fmt.Sprintf("%d", noisyOut.Ranker.FilterDropped),
			fmt.Sprintf("%d", noisyOut.Ranker.NoiseDropped))
	}
	t.Notes = append(t.Notes, "paper: noise adds modest correlation time; accuracy unaffected")
	return t, nil
}

// Fig15 reproduces "The latency percentages of components": the dominant
// dynamic causal path pattern's component breakdown for 500–800 clients
// with the default MaxThreads=40 (§5.4.1 misconfiguration shooting).
func Fig15(scale float64) (*Table, error) {
	var reports []*analysis.PatternReport
	var labels []string
	for _, n := range []int{500, 600, 700, 800} {
		res, err := run(n, scale, nil)
		if err != nil {
			return nil, err
		}
		out, err := correlate(res, 10*time.Millisecond, nil)
		if err != nil {
			return nil, err
		}
		rep, err := analysis.DominantPattern(out.Graphs, 3)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
		labels = append(labels, fmt.Sprintf("client=%d", n))
	}
	cmp := analysis.Compare(labels, reports)
	t := &Table{
		ID:     "Fig15",
		Title:  "latency percentages of components, MaxThreads=40 (most frequent dynamic pattern)",
		Header: append([]string{"component"}, labels...),
	}
	for j, cat := range cmp.Categories {
		row := []string{cat}
		for i := range cmp.Percent {
			row = append(row, fmt.Sprintf("%.1f%%", cmp.Percent[i][j]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: httpd2java dominates and shifts dramatically with load (46/80/71/60% at 500-800 clients)",
		"diagnosis: the first->second tier interaction is the bottleneck => JBoss MaxThreads misconfiguration")
	return t, nil
}

// Fig16 reproduces "Performance for different MaxThreads": throughput and
// average response time for MaxThreads 40 vs 250.
func Fig16(scale float64) (*Table, error) {
	t := &Table{
		ID:     "Fig16",
		Title:  "throughput and response time for MaxThreads 40 vs 250",
		Header: []string{"clients", "TP_MT40", "TP_MT250", "RT_MT40(ms)", "RT_MT250(ms)"},
	}
	for _, n := range sweepClients {
		mt40, err := run(n, scale, nil)
		if err != nil {
			return nil, err
		}
		mt250, err := run(n, scale, func(c *rubis.Config) { c.MaxThreads = 250 })
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", mt40.Metrics.Throughput()),
			fmt.Sprintf("%.1f", mt250.Metrics.Throughput()),
			fmt.Sprintf("%.1f", float64(mt40.Metrics.AvgResponseTime().Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(mt250.Metrics.AvgResponseTime().Microseconds())/1000))
	}
	t.Notes = append(t.Notes,
		"paper: MaxThreads=250 raises throughput and cuts response time for 500-800 clients;",
		"at 900+ the hardware becomes the new bottleneck")
	return t, nil
}

// fig17Cases are the §5.4.2 injected problems.
var fig17Cases = []struct {
	Name   string
	Faults rubis.Faults
}{
	{"normal", rubis.Faults{}},
	{"EJB_Delay", rubis.Faults{EJBDelay: 40 * time.Millisecond}},
	{"DataBase_Lock", rubis.Faults{DBLock: true, DBLockHold: 4 * time.Millisecond}},
	{"EJB_Network", rubis.Faults{AppNetBandwidth: 1_250_000}},
}

// Fig17 reproduces "Latency percentages of components for abnormal cases":
// normal plus the three injected problems, Default mix.
func Fig17(scale float64) (*Table, error) {
	var reports []*analysis.PatternReport
	var labels []string
	for _, c := range fig17Cases {
		res, err := run(300, scale, func(r *rubis.Config) {
			r.Mix = rubis.Default
			r.Faults = c.Faults
		})
		if err != nil {
			return nil, err
		}
		out, err := correlate(res, 10*time.Millisecond, nil)
		if err != nil {
			return nil, err
		}
		rep, err := analysis.DominantPattern(out.Graphs, 3)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
		labels = append(labels, c.Name)
	}
	cmp := analysis.Compare(labels, reports)
	t := &Table{
		ID:     "Fig17",
		Title:  "latency percentages for normal and injected abnormal cases (Default mix)",
		Header: append([]string{"component"}, labels...),
	}
	for j, cat := range cmp.Categories {
		row := []string{cat}
		for i := range cmp.Percent {
			row = append(row, fmt.Sprintf("%.1f%%", cmp.Percent[i][j]))
		}
		t.Rows = append(t.Rows, row)
	}
	// Run the automated detector (the paper's future-work §7) against the
	// normal case.
	det := analysis.Detector{}
	for i := 1; i < len(reports); i++ {
		findings := det.Diagnose(reports[0], reports[i])
		if len(findings) > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("detector[%s]: %s (%+.1f points)",
				labels[i], findings[0].Category, findings[0].DeltaPoints))
		}
	}
	t.Notes = append(t.Notes,
		"paper: EJB_Delay => java2java 10->40%+; DataBase_Lock => mysqld2mysqld and the DB legs rise;",
		"EJB_Network => the big-payload interactions touching the second tier's NIC rise")
	return t, nil
}

// AblationBaselines quantifies the precision argument of §1/§6: path
// accuracy of PreciseTracer vs the timestamp-trusting naive correlator and
// the WAP5-style probabilistic nesting correlator, across clock skews.
func AblationBaselines(scale float64) (*Table, error) {
	t := &Table{
		ID:     "ABL1",
		Title:  "path accuracy: PreciseTracer vs naive vs probabilistic nesting",
		Header: []string{"skew", "precise", "naive", "nesting"},
	}
	for _, skew := range []time.Duration{0, 100 * time.Millisecond, 500 * time.Millisecond} {
		res, err := run(300, scale, func(c *rubis.Config) { c.Skew.MaxSkew = skew })
		if err != nil {
			return nil, err
		}
		out, err := correlate(res, 10*time.Millisecond, nil)
		if err != nil {
			return nil, err
		}
		precise := res.Truth.Evaluate(out.Graphs).PathAccuracy()

		cls := activity.NewClassifier(rubis.EntryPort)
		classified := make([]*activity.Activity, len(res.Trace))
		for i, a := range res.Trace {
			cp := *a
			cp.Type = cls.Classify(a)
			classified[i] = &cp
		}
		naive := res.Truth.Evaluate(baseline.Naive(classified).Graphs).PathAccuracy()
		nest := res.Truth.Evaluate(baseline.Nesting(classified, baseline.NestingConfig{}).Graphs).PathAccuracy()
		t.AddRow(skew.String(),
			fmt.Sprintf("%.4f", precise), fmt.Sprintf("%.4f", naive), fmt.Sprintf("%.4f", nest))
	}
	t.Notes = append(t.Notes, "extension: the paper argues this gap qualitatively; here it is measured")
	return t, nil
}

// AblationPaperExactNoise compares the liveness-aware is_noise (default)
// with the paper's literal Fig. 5 predicate when the window is far smaller
// than the skew. Both variants run sharded on the streaming engine (the
// shard-aware predicate made exact mode parallel); each shard's window
// dynamics are measured against its own flow's frontier, so unrelated
// noise streams no longer starve a flow's fetches the way the historical
// global pass's shared window did.
func AblationPaperExactNoise(scale float64) (*Table, error) {
	t := &Table{
		ID:     "ABL2",
		Title:  "is_noise variants under window << skew (window=1ms, skew=500ms, with noise)",
		Header: []string{"variant", "accuracy", "noise_dropped", "forced_pops"},
	}
	res, err := run(300, scale, func(c *rubis.Config) {
		c.Noise = true
		c.Skew.MaxSkew = 500 * time.Millisecond
	})
	if err != nil {
		return nil, err
	}
	for _, paperExact := range []bool{false, true} {
		out, err := core.New(core.Options{
			Window:          time.Millisecond,
			EntryPorts:      []int{rubis.EntryPort},
			IPToHost:        res.IPToHost,
			PaperExactNoise: paperExact,
			Workers:         core.ResolveWorkers(0),
		}).CorrelateTrace(res.Trace)
		if err != nil {
			return nil, err
		}
		name := "liveness-aware"
		if paperExact {
			name = "paper-exact"
		}
		rep := res.Truth.Evaluate(out.Graphs)
		t.AddRow(name, fmt.Sprintf("%.4f", rep.PathAccuracy()),
			fmt.Sprintf("%d", out.Ranker.NoiseDropped), fmt.Sprintf("%d", out.Ranker.ForcedPops))
	}
	return t, nil
}

// Spec registers an experiment for the CLI.
type Spec struct {
	ID    string
	Title string
	Run   func(scale float64) (*Table, error)
}

// All lists every reproducible table/figure in paper order.
var All = []Spec{
	{"acc", "path accuracy grid (§5.2)", Accuracy},
	{"fig8", "requests vs clients", Fig8},
	{"fig9", "correlation time vs requests", Fig9},
	{"fig10", "correlation time vs window", Fig10},
	{"fig11", "correlator memory vs window", Fig11},
	{"fig12", "throughput overhead", Fig12},
	{"fig13", "response-time overhead", Fig13},
	{"fig14", "noise tolerance", Fig14},
	{"fig15", "latency percentages vs clients", Fig15},
	{"fig16", "MaxThreads 40 vs 250", Fig16},
	{"fig17", "injected faults", Fig17},
	{"abl1", "baseline accuracy ablation", AblationBaselines},
	{"abl2", "is_noise variant ablation", AblationPaperExactNoise},
	{"abl3", "activity-loss tolerance", AblationActivityLoss},
	{"abl4", "passive skew correction", AblationSkewCorrection},
	{"ext1", "component latency distributions", HopProfile},
	{"ext2", "per-transaction profile", TransactionProfile},
}

// ByID returns the spec with the given ID, or nil.
func ByID(id string) *Spec {
	for i := range All {
		if All[i].ID == id {
			return &All[i]
		}
	}
	return nil
}

// AblationSkewCorrection demonstrates the passive clock-skew remediation
// extension (§3.2 concedes cross-node interaction latencies are skew-
// polluted): raw vs corrected mean httpd2java latency under heavy skew,
// against the truth from an identical run with synchronised clocks.
func AblationSkewCorrection(scale float64) (*Table, error) {
	t := &Table{
		ID:     "ABL4",
		Title:  "passive skew correction: mean httpd2java interaction latency",
		Header: []string{"skew", "raw", "corrected", "true(no-skew run)"},
	}
	truthRun, err := run(200, scale, nil)
	if err != nil {
		return nil, err
	}
	truthOut, err := correlate(truthRun, 10*time.Millisecond, nil)
	if err != nil {
		return nil, err
	}
	trueRep, err := analysis.DominantPattern(truthOut.Graphs, 3)
	if err != nil {
		return nil, err
	}
	trueLat := trueRep.Share("httpd2java").Mean

	for _, skew := range []time.Duration{100 * time.Millisecond, 400 * time.Millisecond} {
		res, err := run(200, scale, func(c *rubis.Config) { c.Skew.MaxSkew = skew })
		if err != nil {
			return nil, err
		}
		out, err := correlate(res, 10*time.Millisecond, nil)
		if err != nil {
			return nil, err
		}
		rep, err := analysis.DominantPattern(out.Graphs, 3)
		if err != nil {
			return nil, err
		}
		raw := rep.Share("httpd2java").Mean

		est := analysis.EstimateOffsets(out.Graphs, "web1")
		var sum time.Duration
		n := 0
		sig := rep.Signature
		for _, g := range out.Graphs {
			if cag.Signature(g) != sig {
				continue
			}
			if d, ok := est.CorrectedComponentLatencies(g)["httpd2java"]; ok {
				sum += d
				n++
			}
		}
		corrected := time.Duration(0)
		if n > 0 {
			corrected = sum / time.Duration(n)
		}
		t.AddRow(skew.String(),
			raw.Round(time.Microsecond).String(),
			corrected.Round(time.Microsecond).String(),
			trueLat.Round(time.Microsecond).String())
	}
	t.Notes = append(t.Notes,
		"extension: NTP-style minimum-delay estimation over message edges removes the offset;",
		"a few ms of residual bias remains (RECEIVE timestamps are read times, not wire arrivals)")
	return t, nil
}

// HopProfile (extension) prints per-component latency distributions —
// mean, p50, p95, p99 — for the Default mix at 300 clients. Tails localise
// intermittent problems that the paper's averages smear.
func HopProfile(scale float64) (*Table, error) {
	res, err := run(300, scale, func(c *rubis.Config) { c.Mix = rubis.Default })
	if err != nil {
		return nil, err
	}
	out, err := correlate(res, 10*time.Millisecond, nil)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "EXT1",
		Title:  "component latency distributions (Default mix, 300 clients)",
		Header: []string{"component", "mean", "p50", "p95", "p99", "n"},
	}
	for _, d := range analysis.HopDistributions(out.Graphs, nil) {
		t.AddRow(d.Category,
			d.Hist.Mean().Round(time.Microsecond).String(),
			d.Hist.Percentile(0.50).Round(time.Microsecond).String(),
			d.Hist.Percentile(0.95).Round(time.Microsecond).String(),
			d.Hist.Percentile(0.99).Round(time.Microsecond).String(),
			fmt.Sprintf("%d", d.Hist.N()))
	}
	return t, nil
}

// TransactionProfile (extension) prints per-transaction-type throughput and
// latency for the Default mix — the workload-side view RUBiS itself reports
// and the black-box patterns approximate.
func TransactionProfile(scale float64) (*Table, error) {
	res, err := run(300, scale, func(c *rubis.Config) { c.Mix = rubis.Default })
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "EXT2",
		Title:  "per-transaction profile (Default mix, 300 clients)",
		Header: []string{"transaction", "count", "share%", "avg_rt(ms)"},
	}
	total := res.Metrics.TotalCompleted
	for i := range rubis.Transactions {
		tx := &rubis.Transactions[i]
		n := res.Metrics.PerTx[tx.Name]
		if n == 0 {
			continue
		}
		t.AddRow(tx.Name, fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", 100*float64(n)/float64(total)),
			fmt.Sprintf("%.1f", float64(res.Metrics.TxAvgResponseTime(tx.Name).Microseconds())/1000))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("in-window p50/p95/p99 response time: %v / %v / %v",
			res.Metrics.ResponseTimePercentile(0.50).Round(time.Millisecond),
			res.Metrics.ResponseTimePercentile(0.95).Round(time.Millisecond),
			res.Metrics.ResponseTimePercentile(0.99).Round(time.Millisecond)))
	return t, nil
}

package experiments

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tbl := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"col", "value"},
	}
	tbl.AddRow("a", "1")
	tbl.AddRow("longer-name", "123456")
	tbl.Notes = append(tbl.Notes, "a note")
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + 2 rows + note
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All value cells must end at the same column (right-aligned fields).
	h := strings.Index(lines[1], "value")
	r1 := strings.Index(lines[2], "1")
	if h < 0 || r1 < 0 {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.HasPrefix(lines[4], "note: ") {
		t.Fatalf("note line: %q", lines[4])
	}
	if !strings.Contains(lines[0], "T") || !strings.Contains(lines[0], "demo") {
		t.Fatalf("title line: %q", lines[0])
	}
}

func TestTableWiderRowThanHeader(t *testing.T) {
	tbl := &Table{ID: "T", Title: "x", Header: []string{"a"}}
	tbl.AddRow("aaaaaaaaaa")
	out := tbl.Render()
	if !strings.Contains(out, "aaaaaaaaaa") {
		t.Fatalf("row truncated:\n%s", out)
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) from the simulated testbed, printing the same series the
// paper plots. Each Fig* function is self-contained: it runs the workload
// at the requested scale, correlates the traces, and renders a text table.
//
// Scale multiplies the session stage durations (the paper's 2 min up ramp,
// 7.5 min runtime, 1 min down ramp); client counts and rates are never
// scaled, so saturation points land where they would at full length.
// Scale=1.0 reproduces the full-length sessions.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries shape observations / caveats printed under the table.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render produces an aligned text table.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

package experiments

import (
	"strings"
	"testing"
)

// tinyScale keeps unit tests fast; cmd/experiments runs the real scales.
const tinyScale = 0.004

func checkTable(t *testing.T, tbl *Table, err error, wantRows int) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != wantRows {
		t.Fatalf("%s: rows = %d, want %d", tbl.ID, len(tbl.Rows), wantRows)
	}
	out := tbl.Render()
	if !strings.Contains(out, tbl.ID) {
		t.Fatalf("render missing ID:\n%s", out)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("%s: row width %d != header %d", tbl.ID, len(row), len(tbl.Header))
		}
	}
}

func TestAccuracyGridAll100(t *testing.T) {
	tbl, err := Accuracy(tinyScale)
	checkTable(t, tbl, err, 7)
	for _, row := range tbl.Rows {
		if row[6] != "1.0000" {
			t.Fatalf("accuracy row not 100%%: %v", row)
		}
		if row[7] != "0" || row[8] != "0" {
			t.Fatalf("false positives/negatives present: %v", row)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	tbl, err := Fig8(tinyScale)
	checkTable(t, tbl, err, 10)
}

func TestFig9Shape(t *testing.T) {
	tbl, err := Fig9(tinyScale)
	checkTable(t, tbl, err, 10)
}

func TestFig10And11Shape(t *testing.T) {
	tbl, err := Fig10(tinyScale)
	checkTable(t, tbl, err, 6)
	tbl, err = Fig11(tinyScale)
	checkTable(t, tbl, err, 6)
}

func TestFig12And13Shape(t *testing.T) {
	tbl, err := Fig12(tinyScale)
	checkTable(t, tbl, err, 10)
	tbl, err = Fig13(tinyScale)
	checkTable(t, tbl, err, 10)
}

func TestFig14Shape(t *testing.T) {
	tbl, err := Fig14(tinyScale)
	checkTable(t, tbl, err, 5)
	// Accuracy warnings would be prepended as notes; ensure none.
	for _, n := range tbl.Notes {
		if strings.Contains(n, "WARNING") {
			t.Fatalf("noise broke accuracy: %s", n)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	tbl, err := Fig15(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 5 {
		t.Fatalf("expected >=5 component rows, got %d", len(tbl.Rows))
	}
	found := false
	for _, row := range tbl.Rows {
		if row[0] == "httpd2java" {
			found = true
		}
	}
	if !found {
		t.Fatal("httpd2java row missing")
	}
}

func TestFig16Shape(t *testing.T) {
	tbl, err := Fig16(tinyScale)
	checkTable(t, tbl, err, 10)
}

func TestFig17Shape(t *testing.T) {
	tbl, err := Fig17(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Header) != 5 { // component + 4 cases
		t.Fatalf("header = %v", tbl.Header)
	}
}

func TestAblations(t *testing.T) {
	tbl, err := AblationBaselines(tinyScale)
	checkTable(t, tbl, err, 3)
	for _, row := range tbl.Rows {
		if row[1] != "1.0000" {
			t.Fatalf("precise tracer below 100%%: %v", row)
		}
	}
	tbl, err = AblationPaperExactNoise(tinyScale)
	checkTable(t, tbl, err, 2)
}

func TestAblationActivityLoss(t *testing.T) {
	tbl, err := AblationActivityLoss(tinyScale)
	checkTable(t, tbl, err, 4)
	// Zero loss row must be perfect; the highest loss rate must degrade.
	if tbl.Rows[0][1] != "1.0000" {
		t.Fatalf("zero-loss accuracy: %v", tbl.Rows[0])
	}
	if tbl.Rows[3][1] == "1.0000" {
		t.Fatalf("1%% loss should not be perfect: %v", tbl.Rows[3])
	}
}

func TestAblationSkewCorrection(t *testing.T) {
	tbl, err := AblationSkewCorrection(tinyScale)
	checkTable(t, tbl, err, 2)
}

func TestHopProfile(t *testing.T) {
	tbl, err := HopProfile(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestTransactionProfile(t *testing.T) {
	tbl, err := TransactionProfile(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 8 {
		t.Fatalf("transactions listed = %d", len(tbl.Rows))
	}
}

func TestRegistry(t *testing.T) {
	if len(All) != 17 {
		t.Fatalf("registry size = %d", len(All))
	}
	if ByID("fig15") == nil || ByID("nope") != nil {
		t.Fatal("ByID lookup broken")
	}
	seen := map[string]bool{}
	for _, s := range All {
		if seen[s.ID] {
			t.Fatalf("duplicate id %s", s.ID)
		}
		seen[s.ID] = true
		if s.Run == nil || s.Title == "" {
			t.Fatalf("incomplete spec %+v", s)
		}
	}
}

package analysis

import (
	"testing"
	"time"

	"repro/internal/cag"
	"repro/internal/core"
	"repro/internal/rubis"
)

func skewedGraphs(t *testing.T, maxSkew time.Duration) ([]*PatternReport, *SkewEstimate) {
	t.Helper()
	cfg := rubis.DefaultConfig(80)
	cfg.Scale = 0.01
	cfg.Skew.MaxSkew = maxSkew
	res, err := rubis.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.New(core.Options{
		Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
	}).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Report(out.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	return reports, EstimateOffsets(out.Graphs, "web1")
}

func TestEstimateOffsetsRecoversSkew(t *testing.T) {
	// The deployment spreads offsets across the three traced nodes:
	// web1 = -max/2, app1 = 0, db1 = +max/2.
	const maxSkew = 400 * time.Millisecond
	_, est := skewedGraphs(t, maxSkew)
	if est.Offsets["web1"] != 0 {
		t.Fatalf("reference offset = %v", est.Offsets["web1"])
	}
	wantApp := 200 * time.Millisecond // app1 - web1
	wantDB := 400 * time.Millisecond  // db1 - web1
	tol := 12 * time.Millisecond      // estimator bias: half the minimal read lag
	if d := est.Offsets["app1"] - wantApp; d < -tol || d > tol {
		t.Fatalf("app1 offset = %v, want ~%v", est.Offsets["app1"], wantApp)
	}
	if d := est.Offsets["db1"] - wantDB; d < -tol || d > tol {
		t.Fatalf("db1 offset = %v, want ~%v", est.Offsets["db1"], wantDB)
	}
}

func TestEstimateOffsetsZeroSkew(t *testing.T) {
	_, est := skewedGraphs(t, 0)
	for host, off := range est.Offsets {
		// The read-lag bias (see skew.go) leaves a few ms of residue.
		if off < -8*time.Millisecond || off > 8*time.Millisecond {
			t.Fatalf("%s offset = %v, want ~0", host, off)
		}
	}
}

func TestCorrectedLatenciesArePhysical(t *testing.T) {
	// Under 400ms skew the raw cross-node interaction latencies are
	// dominated by the offsets (some hugely positive, some negative);
	// after correction every interaction latency must be a plausible
	// transit time (positive, well under 50ms).
	cfg := rubis.DefaultConfig(60)
	cfg.Scale = 0.01
	cfg.Skew.MaxSkew = 400 * time.Millisecond
	res, err := rubis.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.New(core.Options{
		Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
	}).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateOffsets(out.Graphs, "web1")
	checked := 0
	for _, g := range out.Graphs {
		if g.Len() < 3 {
			continue
		}
		raw := cag.ComponentLatencies(g)
		corr := est.CorrectedComponentLatencies(g)
		// httpd2java raw latency includes -offset(web1->app1) = -200ms of
		// error; corrected must be positive and small.
		if d, ok := corr["httpd2java"]; ok {
			if d <= 0 || d > 50*time.Millisecond {
				t.Fatalf("corrected httpd2java = %v (raw %v)", d, raw["httpd2java"])
			}
			checked++
		}
		if checked > 20 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no dynamic paths checked")
	}
	// Correction must preserve the end-to-end telescoping sum: BEGIN and
	// END share a host, so their correction cancels.
	for _, g := range out.Graphs {
		var rawSum, corrSum time.Duration
		for _, d := range cag.ComponentLatencies(g) {
			rawSum += d
		}
		for _, d := range est.CorrectedComponentLatencies(g) {
			corrSum += d
		}
		if rawSum != corrSum {
			t.Fatalf("correction broke telescoping: %v vs %v", rawSum, corrSum)
		}
		break
	}
}

func TestDominantPatternCorrected(t *testing.T) {
	cfg := rubis.DefaultConfig(80)
	cfg.Scale = 0.01
	cfg.Skew.MaxSkew = 400 * time.Millisecond
	res, err := rubis.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.New(core.Options{
		Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
	}).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateOffsets(out.Graphs, "web1")
	raw, err := DominantPattern(out.Graphs, 3)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := DominantPatternCorrected(out.Graphs, 3, est)
	if err != nil {
		t.Fatal(err)
	}
	// Raw cross-node shares are skew-polluted (can exceed 100% or go
	// negative); corrected shares must all be sane and sum to ~100%.
	var sum float64
	for _, s := range corr.Shares {
		if s.Percent < -1 || s.Percent > 101 {
			t.Fatalf("corrected share out of range: %+v", s)
		}
		sum += s.Percent
	}
	if sum < 95 || sum > 105 {
		t.Fatalf("corrected shares sum to %.1f", sum)
	}
	// And the raw ones must demonstrably be polluted for this skew.
	polluted := false
	for _, s := range raw.Shares {
		if s.Percent < 0 || s.Percent > 100 {
			polluted = true
		}
	}
	if !polluted {
		t.Fatal("test premise broken: raw shares look clean under 400ms skew")
	}
	if corr.Count == 0 || corr.Name != raw.Name {
		t.Fatalf("corrected report metadata: %+v", corr)
	}
}

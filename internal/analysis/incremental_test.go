package analysis

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/cag"
)

// TestAccumulatorMatchesAggregate pins the incremental accumulator's
// equivalence contract: observing graphs one at a time produces the
// same MeanLatency and Shares (values and order) as the post-hoc
// cag.Aggregate pass, including the integer-division truncation.
func TestAccumulatorMatchesAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	graphs := make([]*cag.Graph, 0, 37)
	for i := 0; i < 37; i++ {
		// Odd hop durations exercise the Duration integer division.
		hop := time.Duration(1+rng.Intn(9999)) * time.Microsecond
		graphs = append(graphs, buildPath(t, hop, i))
	}
	avg, err := cag.Aggregate(graphs)
	if err != nil {
		t.Fatal(err)
	}
	// The reference: package live's reportOf shape — alphabetical
	// categories with percentages of the truncated means.
	cats, vals := avg.Percentages()
	acc := NewAccumulator(avg.Name, avg.Signature)
	for _, g := range graphs {
		acc.Observe(g.Latency(), cag.ComponentLatencies(g))
	}
	rep := acc.Report()
	if rep == nil {
		t.Fatal("nil report after observations")
	}
	if rep.Count != avg.Count || rep.MeanLatency != avg.MeanLatency {
		t.Fatalf("count/mean = %d/%v, want %d/%v", rep.Count, rep.MeanLatency, avg.Count, avg.MeanLatency)
	}
	if rep.Name != avg.Name || rep.Signature != avg.Signature {
		t.Fatalf("identity = %q/%q, want %q/%q", rep.Name, rep.Signature, avg.Name, avg.Signature)
	}
	if got := rep.Categories(); !reflect.DeepEqual(got, cats) {
		t.Fatalf("categories = %v, want %v", got, cats)
	}
	for i, c := range cats {
		s := rep.Shares[i]
		if s.Mean != avg.Components[c] {
			t.Fatalf("%s mean = %v, want %v", c, s.Mean, avg.Components[c])
		}
		if s.Percent != vals[i] {
			t.Fatalf("%s percent = %v, want %v", c, s.Percent, vals[i])
		}
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	acc := NewAccumulator("p", "sig")
	if acc.Report() != nil {
		t.Fatal("empty accumulator must report nil")
	}
	if acc.Count() != 0 {
		t.Fatalf("count = %d", acc.Count())
	}
}

package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cag"
	"repro/internal/stats"
)

// HopDistribution is the latency distribution of one component category
// across many CAGs — the distributional extension of the paper's
// mean-only latency percentages (tails localise intermittent problems that
// averages smear).
type HopDistribution struct {
	Category string
	Hist     *stats.Histogram
}

// HopDistributions builds per-category latency histograms over the
// critical-path segments of the given CAGs (any mix of patterns). When est
// is non-nil, timestamps are skew-corrected first; otherwise negative
// cross-node latencies are clamped to zero.
func HopDistributions(graphs []*cag.Graph, est *SkewEstimate) []*HopDistribution {
	byCat := make(map[string]*stats.Histogram)
	for _, g := range graphs {
		for _, seg := range cag.Breakdown(g) {
			h := byCat[seg.Category]
			if h == nil {
				h = stats.NewLatencyHistogram()
				byCat[seg.Category] = h
			}
			d := seg.Latency
			if est != nil {
				d = est.Corrected(seg.To) - est.Corrected(seg.From)
			}
			if d < 0 {
				d = 0
			}
			h.Add(d)
		}
	}
	cats := make([]string, 0, len(byCat))
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		oi, oj := categoryRank(cats[i]), categoryRank(cats[j])
		if oi != oj {
			return oi < oj
		}
		return cats[i] < cats[j]
	})
	out := make([]*HopDistribution, 0, len(cats))
	for _, c := range cats {
		out = append(out, &HopDistribution{Category: c, Hist: byCat[c]})
	}
	return out
}

// HopTable renders the distributions as an aligned table with mean and
// tail percentiles.
func HopTable(dists []*HopDistribution) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %10s %8s\n", "component", "mean", "p50", "p95", "p99", "n")
	for _, d := range dists {
		fmt.Fprintf(&b, "%-16s %10v %10v %10v %10v %8d\n",
			d.Category,
			d.Hist.Mean().Round(time.Microsecond),
			d.Hist.Percentile(0.50).Round(time.Microsecond),
			d.Hist.Percentile(0.95).Round(time.Microsecond),
			d.Hist.Percentile(0.99).Round(time.Microsecond),
			d.Hist.N())
	}
	return b.String()
}

// Outlier is one unusually slow request with its dominant cost.
type Outlier struct {
	Graph       *cag.Graph
	Latency     time.Duration
	TopCategory string
	TopLatency  time.Duration
	TopPercent  float64
}

// String implements fmt.Stringer.
func (o Outlier) String() string {
	return fmt.Sprintf("latency=%v dominated by %s (%v, %.1f%%)",
		o.Latency.Round(time.Microsecond), o.TopCategory,
		o.TopLatency.Round(time.Microsecond), o.TopPercent)
}

// Outliers returns the k slowest CAGs with, for each, the category that
// contributed the most latency — the "show me the worst requests and where
// they spent their time" debugging workflow. A non-nil est corrects clock
// skew before attributing cross-node hops (raw local timestamps can make a
// skewed hop look dominant, §3.2's admitted inaccuracy).
func Outliers(graphs []*cag.Graph, k int, est *SkewEstimate) []Outlier {
	if k <= 0 || len(graphs) == 0 {
		return nil
	}
	sorted := make([]*cag.Graph, len(graphs))
	copy(sorted, graphs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Latency() > sorted[j].Latency() })
	if k > len(sorted) {
		k = len(sorted)
	}
	out := make([]Outlier, 0, k)
	for _, g := range sorted[:k] {
		o := Outlier{Graph: g, Latency: g.Latency()}
		lats := cag.ComponentLatencies(g)
		if est != nil {
			lats = est.CorrectedComponentLatencies(g)
		}
		for cat, d := range lats {
			if d > o.TopLatency {
				o.TopLatency, o.TopCategory = d, cat
			}
		}
		if o.Latency > 0 {
			o.TopPercent = 100 * float64(o.TopLatency) / float64(o.Latency)
		}
		out = append(out, o)
	}
	return out
}

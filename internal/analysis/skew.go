package analysis

import (
	"sort"
	"time"

	"repro/internal/cag"
)

// The paper computes cross-node interaction latencies directly from local
// timestamps and notes (§3.2) that they are inaccurate because clock skew
// is not remedied. This file implements the natural remedy as an extension:
// estimate per-host clock offsets from the message edges themselves and
// correct the interaction latencies.
//
// The estimator uses minimum-delay filtering with a symmetry assumption:
// for hosts A and B, the smallest observed (t_recv − t_send) in each
// direction approaches (transit + offB − offA) and (transit + offA − offB)
// respectively, so half their difference estimates offB − offA. This is the
// classic NTP-style pairwise estimate applied to passive traces.
//
// Bias: RECEIVE timestamps are read times (when the application drains the
// socket), not wire-arrival times, so a direction whose receiver reads late
// even in the best case — e.g. requests into a tier that must first assign
// a worker thread to a fresh connection — inflates that direction's minimum
// and shifts the estimate by half the minimal read lag. With millisecond-
// scale connection setup this leaves a few milliseconds of residual error
// against hundreds of milliseconds of skew removed.

// SkewEstimate holds per-host clock offsets relative to a reference host.
type SkewEstimate struct {
	Reference string
	// Offsets maps host -> estimated clock offset relative to Reference
	// (positive = that host's clock runs ahead).
	Offsets map[string]time.Duration
}

// EstimateOffsets estimates host clock offsets from the message edges of
// the given CAGs, relative to the reference host (usually the first tier,
// whose END−BEGIN latency is already skew-free). Hosts unreachable through
// message edges are absent from the result.
func EstimateOffsets(graphs []*cag.Graph, reference string) *SkewEstimate {
	type pair struct{ a, b string }
	minDelay := make(map[pair]time.Duration)
	hosts := map[string]bool{reference: true}

	for _, g := range graphs {
		for _, v := range g.Vertices() {
			mp := v.MsgParent()
			if mp == nil {
				continue
			}
			from, to := mp.Ctx.Host, v.Ctx.Host
			if from == to {
				continue
			}
			hosts[from], hosts[to] = true, true
			d := v.Timestamp - mp.Timestamp
			key := pair{from, to}
			if cur, ok := minDelay[key]; !ok || d < cur {
				minDelay[key] = d
			}
		}
	}

	// Pairwise offset estimates where both directions were observed.
	type edge struct {
		to  string
		off time.Duration // clock(to) - clock(from)
	}
	adj := make(map[string][]edge)
	for key, dab := range minDelay {
		dba, ok := minDelay[pair{key.b, key.a}]
		if !ok {
			continue
		}
		// dab = transit + off(b) - off(a); dba = transit + off(a) - off(b).
		off := (dab - dba) / 2
		adj[key.a] = append(adj[key.a], edge{to: key.b, off: off})
		adj[key.b] = append(adj[key.b], edge{to: key.a, off: -off})
	}

	est := &SkewEstimate{Reference: reference, Offsets: map[string]time.Duration{reference: 0}}
	// BFS from the reference, accumulating offsets along pair estimates.
	queue := []string{reference}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		edges := adj[cur]
		sort.Slice(edges, func(i, j int) bool { return edges[i].to < edges[j].to })
		for _, e := range edges {
			if _, seen := est.Offsets[e.to]; seen {
				continue
			}
			est.Offsets[e.to] = est.Offsets[cur] + e.off
			queue = append(queue, e.to)
		}
	}
	return est
}

// Corrected returns a vertex timestamp translated into reference-clock
// time. Hosts without an estimate pass through unchanged.
func (s *SkewEstimate) Corrected(v *cag.Vertex) time.Duration {
	return v.Timestamp - s.Offsets[v.Ctx.Host]
}

// CorrectedComponentLatencies recomputes a CAG's per-category latencies
// using skew-corrected timestamps, so cross-node interaction latencies
// approach true transit times instead of transit ± skew.
func (s *SkewEstimate) CorrectedComponentLatencies(g *cag.Graph) map[string]time.Duration {
	out := make(map[string]time.Duration)
	path := CriticalPathOf(g)
	for i := 1; i < len(path); i++ {
		from, to := path[i-1], path[i]
		out[CategoryNameOf(from, to)] += s.Corrected(to) - s.Corrected(from)
	}
	return out
}

// CriticalPathOf re-exports cag.CriticalPath for this package's callers.
func CriticalPathOf(g *cag.Graph) []*cag.Vertex { return cag.CriticalPath(g) }

// CategoryNameOf re-exports cag.CategoryName.
func CategoryNameOf(from, to *cag.Vertex) string { return cag.CategoryName(from, to) }

// DominantPatternCorrected is DominantPattern with skew-corrected component
// latencies: the right input for Detector comparisons when node clocks are
// not synchronised (raw cross-node shares can be hugely negative/positive
// and their run-to-run jitter swamps genuine shifts).
func DominantPatternCorrected(graphs []*cag.Graph, minVertices int, est *SkewEstimate) (*PatternReport, error) {
	rep, err := DominantPattern(graphs, minVertices)
	if err != nil {
		return nil, err
	}
	sums := make(map[string]time.Duration)
	n := 0
	for _, g := range graphs {
		if cag.Signature(g) != rep.Signature {
			continue
		}
		for cat, d := range est.CorrectedComponentLatencies(g) {
			sums[cat] += d
		}
		n++
	}
	if n == 0 {
		return rep, nil
	}
	out := &PatternReport{
		Name: rep.Name, Signature: rep.Signature, Count: n, MeanLatency: rep.MeanLatency,
	}
	cats := make([]string, 0, len(sums))
	for c := range sums {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		oi, oj := categoryRank(cats[i]), categoryRank(cats[j])
		if oi != oj {
			return oi < oj
		}
		return cats[i] < cats[j]
	})
	for _, c := range cats {
		mean := sums[c] / time.Duration(n)
		share := ComponentShare{Category: c, Mean: mean}
		if out.MeanLatency > 0 {
			share.Percent = 100 * float64(mean) / float64(out.MeanLatency)
		}
		out.Shares = append(out.Shares, share)
	}
	return out, nil
}

package analysis

import (
	"sort"
	"time"
)

// Accumulator folds one pattern's per-graph latency observations into
// the same PatternReport a post-hoc cag.Aggregate pass would produce —
// the incremental form the sketched live monitor runs the Detector on.
// It holds one duration per category regardless of how many graphs are
// observed, so a bucket of accumulators is bounded by the pattern's
// category count, not the interval's request count.
//
// Equivalence contract: Observe-ing every member of an isomorphic set
// and calling Report yields byte-identical Shares/MeanLatency to
// reportOf(cag.Aggregate(members)) in package live — the integer
// divisions happen at Report time, in the same order, on the same sums
// (TestAccumulatorMatchesAggregate pins this).
type Accumulator struct {
	Name      string
	Signature string

	count  int
	latSum time.Duration
	catSum map[string]time.Duration
}

// NewAccumulator returns an empty accumulator for one pattern.
func NewAccumulator(name, signature string) *Accumulator {
	return &Accumulator{
		Name:      name,
		Signature: signature,
		catSum:    make(map[string]time.Duration),
	}
}

// Observe folds one graph's end-to-end latency and per-category
// critical-path sums (cag.ComponentLatencies) into the running totals.
func (a *Accumulator) Observe(latency time.Duration, components map[string]time.Duration) {
	a.count++
	a.latSum += latency
	for cat, d := range components {
		a.catSum[cat] += d
	}
}

// Count is the number of graphs observed.
func (a *Accumulator) Count() int { return a.count }

// Report materialises the PatternReport. Returns nil before any
// observation (a zero-count mean is undefined).
func (a *Accumulator) Report() *PatternReport {
	if a.count == 0 {
		return nil
	}
	n := time.Duration(a.count)
	mean := a.latSum / n
	rep := &PatternReport{
		Name:        a.Name,
		Signature:   a.Signature,
		Count:       a.count,
		MeanLatency: mean,
	}
	cats := make([]string, 0, len(a.catSum))
	for c := range a.catSum {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		compMean := a.catSum[c] / n
		var pct float64
		if mean > 0 {
			pct = 100 * float64(compMean) / float64(mean)
		}
		rep.Shares = append(rep.Shares, ComponentShare{
			Category: c, Mean: compMean, Percent: pct,
		})
	}
	return rep
}

package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Finding is one suspicious latency-share shift between a reference run and
// a suspect run.
type Finding struct {
	Category    string
	BasePercent float64
	NowPercent  float64
	DeltaPoints float64
	// Suspect is the inferred component or interaction at fault.
	Suspect string
	// Reason is a human-readable §5.4-style diagnosis.
	Reason string
}

// Detector automates the manual reasoning of §5.4: compare a suspect run's
// component latency percentages against a healthy reference and flag the
// components whose share shifted by more than ThresholdPoints percentage
// points. This is the paper's stated future work ("mathematical foundation
// for automatic performance debugging") in its simplest useful form.
type Detector struct {
	// ThresholdPoints is the minimum percentage-point increase that counts
	// as suspicious (default 8).
	ThresholdPoints float64
}

// Diagnose compares the suspect report to the reference and returns
// findings ordered by decreasing shift.
func (d Detector) Diagnose(reference, suspect *PatternReport) []Finding {
	threshold := d.ThresholdPoints
	if threshold <= 0 {
		threshold = 8
	}
	cats := make(map[string]bool)
	for _, s := range reference.Shares {
		cats[s.Category] = true
	}
	for _, s := range suspect.Shares {
		cats[s.Category] = true
	}
	var out []Finding
	for c := range cats {
		base := reference.Share(c).Percent
		now := suspect.Share(c).Percent
		delta := now - base
		if delta < threshold {
			continue
		}
		f := Finding{
			Category:    c,
			BasePercent: base,
			NowPercent:  now,
			DeltaPoints: delta,
		}
		f.Suspect, f.Reason = interpret(c, base, now)
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DeltaPoints != out[j].DeltaPoints {
			return out[i].DeltaPoints > out[j].DeltaPoints
		}
		return out[i].Category < out[j].Category
	})
	return out
}

// interpret maps a category shift to the component the paper's reasoning
// would blame: "P2P" growth points at program P itself; "P2Q" growth points
// at the interaction — Q's input path (queueing before Q reads) or the
// network between them.
func interpret(category string, base, now float64) (suspect, reason string) {
	from, to, ok := splitCategory(category)
	if !ok {
		return category, fmt.Sprintf("latency share rose from %.1f%% to %.1f%%", base, now)
	}
	if from == to {
		return from, fmt.Sprintf(
			"time spent inside %s grew from %.1f%% to %.1f%% of the request: %s's own processing is the bottleneck",
			from, base, now, from)
	}
	return from + "->" + to, fmt.Sprintf(
		"the %s->%s interaction grew from %.1f%% to %.1f%%: suspect queueing before %s reads (thread/connection pool) or the network between %s and %s",
		from, to, base, now, to, from, to)
}

func splitCategory(category string) (from, to string, ok bool) {
	i := strings.Index(category, "2")
	if i <= 0 || i >= len(category)-1 {
		return "", "", false
	}
	return category[:i], category[i+1:], true
}

// Summary renders findings for terminal output.
func Summary(findings []Finding) string {
	if len(findings) == 0 {
		return "no component shifted beyond the threshold; the run looks healthy\n"
	}
	var b strings.Builder
	for i, f := range findings {
		fmt.Fprintf(&b, "%d. %-16s %+.1f points (%.1f%% -> %.1f%%): %s\n",
			i+1, f.Category, f.DeltaPoints, f.BasePercent, f.NowPercent, f.Reason)
	}
	return b.String()
}

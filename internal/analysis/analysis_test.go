package analysis

import (
	"strings"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
)

// buildPath constructs a BEGIN -> SEND -> RECV -> ... -> END chain across
// the given (program, host) hops with fixed per-hop latency.
func buildPath(t *testing.T, hop time.Duration, salt int) *cag.Graph {
	t.Helper()
	httpd := activity.Context{Host: "web1", Program: "httpd", PID: salt, TID: salt}
	java := activity.Context{Host: "app1", Program: "java", PID: 2, TID: 100 + salt}
	cch := activity.Channel{Src: activity.Endpoint{IP: "c", Port: 1000 + salt}, Dst: activity.Endpoint{IP: "w", Port: 80}}
	wch := activity.Channel{Src: activity.Endpoint{IP: "w", Port: 2000 + salt}, Dst: activity.Endpoint{IP: "a", Port: 8009}}

	ts := func(i int) time.Duration { return time.Duration(i) * hop }
	g := cag.New(&cag.Vertex{Type: activity.Begin, Timestamp: ts(0), Ctx: httpd, Chan: cch})
	s1 := &cag.Vertex{Type: activity.Send, Timestamp: ts(1), Ctx: httpd, Chan: wch}
	if err := g.AddVertex(s1, cag.ContextEdge, g.Root()); err != nil {
		t.Fatal(err)
	}
	r1 := &cag.Vertex{Type: activity.Receive, Timestamp: ts(2), Ctx: java, Chan: wch}
	if err := g.AddVertex(r1, cag.MessageEdge, s1); err != nil {
		t.Fatal(err)
	}
	s2 := &cag.Vertex{Type: activity.Send, Timestamp: ts(3), Ctx: java, Chan: wch.Reverse()}
	if err := g.AddVertex(s2, cag.ContextEdge, r1); err != nil {
		t.Fatal(err)
	}
	r2 := &cag.Vertex{Type: activity.Receive, Timestamp: ts(4), Ctx: httpd, Chan: wch.Reverse()}
	if err := g.AddVertex(r2, cag.MessageEdge, s2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(cag.ContextEdge, s1, r2); err != nil {
		t.Fatal(err)
	}
	end := &cag.Vertex{Type: activity.End, Timestamp: ts(5), Ctx: httpd, Chan: cch.Reverse()}
	if err := g.AddVertex(end, cag.ContextEdge, r2); err != nil {
		t.Fatal(err)
	}
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReportPercentages(t *testing.T) {
	graphs := []*cag.Graph{buildPath(t, 10*time.Millisecond, 1), buildPath(t, 10*time.Millisecond, 2)}
	reports, err := Report(graphs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("patterns = %d, want 1", len(reports))
	}
	rep := reports[0]
	if rep.Count != 2 {
		t.Fatalf("count = %d", rep.Count)
	}
	// 5 hops of 10ms each: httpd2httpd = 2 hops (BEGIN->SEND, RECV->END),
	// httpd2java 1, java2java 1, java2httpd 1.
	if p := rep.Share("httpd2httpd").Percent; p < 39 || p > 41 {
		t.Fatalf("httpd2httpd = %f, want 40", p)
	}
	if p := rep.Share("httpd2java").Percent; p < 19 || p > 21 {
		t.Fatalf("httpd2java = %f, want 20", p)
	}
	var sum float64
	for _, s := range rep.Shares {
		sum += s.Percent
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("shares sum to %f", sum)
	}
}

func TestCategoryOrdering(t *testing.T) {
	graphs := []*cag.Graph{buildPath(t, time.Millisecond, 1)}
	reports, err := Report(graphs)
	if err != nil {
		t.Fatal(err)
	}
	cats := reports[0].Categories()
	want := []string{"httpd2httpd", "httpd2java", "java2httpd", "java2java"}
	if len(cats) != len(want) {
		t.Fatalf("categories = %v", cats)
	}
	for i := range want {
		if cats[i] != want[i] {
			t.Fatalf("categories = %v, want %v", cats, want)
		}
	}
}

func TestDominantPatternSkipsStatic(t *testing.T) {
	static := staticGraph(t)
	graphs := []*cag.Graph{static, static2(t), buildPath(t, time.Millisecond, 1)}
	rep, err := DominantPattern(graphs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count != 1 || !strings.Contains(rep.Name, "java") {
		t.Fatalf("dominant = %v", rep)
	}
	// With minVertices=0 the static pattern (2 members) wins.
	rep, err = DominantPattern(graphs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count != 2 {
		t.Fatalf("dominant with min=0: %v", rep)
	}
}

func staticGraph(t *testing.T) *cag.Graph {
	t.Helper()
	httpd := activity.Context{Host: "web1", Program: "httpd", PID: 9, TID: 9}
	ch := activity.Channel{Src: activity.Endpoint{IP: "c", Port: 5}, Dst: activity.Endpoint{IP: "w", Port: 80}}
	g := cag.New(&cag.Vertex{Type: activity.Begin, Ctx: httpd, Chan: ch})
	if err := g.AddVertex(&cag.Vertex{Type: activity.End, Timestamp: time.Millisecond, Ctx: httpd, Chan: ch.Reverse()}, cag.ContextEdge, g.Root()); err != nil {
		t.Fatal(err)
	}
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	return g
}

func static2(t *testing.T) *cag.Graph {
	t.Helper()
	g := staticGraph(t)
	return g
}

func TestDominantPatternNoMatch(t *testing.T) {
	if _, err := DominantPattern([]*cag.Graph{staticGraph(t)}, 3); err == nil {
		t.Fatal("expected error when nothing matches")
	}
}

func TestCompareAlignsCategories(t *testing.T) {
	r1, err := Report([]*cag.Graph{buildPath(t, 10*time.Millisecond, 1)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Report([]*cag.Graph{staticGraph(t)})
	if err != nil {
		t.Fatal(err)
	}
	cmp := Compare([]string{"dynamic", "static"}, []*PatternReport{r1[0], r2[0]})
	if len(cmp.Categories) != 4 {
		t.Fatalf("categories = %v", cmp.Categories)
	}
	// static run has 100% httpd2httpd, 0 elsewhere.
	if cmp.Percent[1][0] != 100 {
		t.Fatalf("static httpd2httpd = %f", cmp.Percent[1][0])
	}
	table := cmp.Table()
	if !strings.Contains(table, "httpd2java") || !strings.Contains(table, "dynamic") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestDetectorFlagsShift(t *testing.T) {
	base := &PatternReport{Shares: []ComponentShare{
		{Category: "java2java", Percent: 9},
		{Category: "httpd2java", Percent: 30},
	}}
	suspect := &PatternReport{Shares: []ComponentShare{
		{Category: "java2java", Percent: 45},
		{Category: "httpd2java", Percent: 28},
	}}
	findings := Detector{}.Diagnose(base, suspect)
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
	f := findings[0]
	if f.Category != "java2java" || f.Suspect != "java" {
		t.Fatalf("finding = %+v", f)
	}
	if f.DeltaPoints < 35 || f.DeltaPoints > 37 {
		t.Fatalf("delta = %f", f.DeltaPoints)
	}
	if !strings.Contains(Summary(findings), "java") {
		t.Fatal("summary missing suspect")
	}
}

func TestDetectorInteractionDiagnosis(t *testing.T) {
	base := &PatternReport{Shares: []ComponentShare{{Category: "httpd2java", Percent: 20}}}
	suspect := &PatternReport{Shares: []ComponentShare{{Category: "httpd2java", Percent: 60}}}
	findings := Detector{ThresholdPoints: 10}.Diagnose(base, suspect)
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
	if !strings.Contains(findings[0].Reason, "queueing before java") {
		t.Fatalf("reason = %q", findings[0].Reason)
	}
}

func TestDetectorHealthy(t *testing.T) {
	base := &PatternReport{Shares: []ComponentShare{{Category: "java2java", Percent: 10}}}
	findings := Detector{}.Diagnose(base, base)
	if len(findings) != 0 {
		t.Fatalf("findings on identical runs: %v", findings)
	}
	if !strings.Contains(Summary(nil), "healthy") {
		t.Fatal("healthy summary text missing")
	}
}

func TestSplitCategory(t *testing.T) {
	from, to, ok := splitCategory("httpd2java")
	if !ok || from != "httpd" || to != "java" {
		t.Fatalf("split = %q %q %v", from, to, ok)
	}
	if _, _, ok := splitCategory("nosplit"); ok {
		t.Fatal("should fail without separator")
	}
	// mysqld2mysqld contains '2' only as separator at index 6.
	from, to, ok = splitCategory("mysqld2mysqld")
	if !ok || from != "mysqld" || to != "mysqld" {
		t.Fatalf("split = %q %q %v", from, to, ok)
	}
}

func TestPatternReportString(t *testing.T) {
	reports, err := Report([]*cag.Graph{buildPath(t, time.Millisecond, 1)})
	if err != nil {
		t.Fatal(err)
	}
	s := reports[0].String()
	if !strings.Contains(s, "httpd2java") || !strings.Contains(s, "%") {
		t.Fatalf("string = %q", s)
	}
}

func TestHopDistributions(t *testing.T) {
	graphs := []*cag.Graph{
		buildPath(t, 10*time.Millisecond, 1),
		buildPath(t, 20*time.Millisecond, 2),
		buildPath(t, 30*time.Millisecond, 3),
	}
	dists := HopDistributions(graphs, nil)
	if len(dists) != 4 {
		t.Fatalf("categories = %d, want 4", len(dists))
	}
	if dists[0].Category != "httpd2httpd" {
		t.Fatalf("order: %v", dists[0].Category)
	}
	var h2j *HopDistribution
	for _, d := range dists {
		if d.Category == "httpd2java" {
			h2j = d
		}
	}
	if h2j == nil || h2j.Hist.N() != 3 {
		t.Fatalf("httpd2java samples: %v", h2j)
	}
	// Hops are 10/20/30ms; mean must be 20ms exactly.
	if h2j.Hist.Mean() != 20*time.Millisecond {
		t.Fatalf("mean = %v", h2j.Hist.Mean())
	}
	table := HopTable(dists)
	if !strings.Contains(table, "p95") || !strings.Contains(table, "httpd2java") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestHopDistributionsClampNegative(t *testing.T) {
	g := buildPath(t, 10*time.Millisecond, 1)
	// Skew the cross-node RECEIVE backwards in time.
	g.Vertex(2).Timestamp = g.Vertex(1).Timestamp - 5*time.Millisecond
	dists := HopDistributions([]*cag.Graph{g}, nil)
	for _, d := range dists {
		if d.Hist.Mean() < 0 {
			t.Fatal("negative latency leaked into histogram")
		}
	}
}

func TestOutliers(t *testing.T) {
	graphs := []*cag.Graph{
		buildPath(t, 5*time.Millisecond, 1),
		buildPath(t, 50*time.Millisecond, 2), // slowest
		buildPath(t, 10*time.Millisecond, 3),
	}
	outs := Outliers(graphs, 2, nil)
	if len(outs) != 2 {
		t.Fatalf("outliers = %d", len(outs))
	}
	if outs[0].Latency != 250*time.Millisecond { // 5 hops * 50ms
		t.Fatalf("slowest latency = %v", outs[0].Latency)
	}
	if outs[0].TopCategory != "httpd2httpd" { // 2 hops of 50ms
		t.Fatalf("top category = %s", outs[0].TopCategory)
	}
	if outs[0].TopPercent < 39 || outs[0].TopPercent > 41 {
		t.Fatalf("top percent = %f", outs[0].TopPercent)
	}
	if s := outs[0].String(); !strings.Contains(s, "httpd2httpd") {
		t.Fatalf("outlier string %q", s)
	}
	if Outliers(nil, 3, nil) != nil {
		t.Fatal("empty input should return nil")
	}
	if got := Outliers(graphs, 99, nil); len(got) != 3 {
		t.Fatalf("k clamp failed: %d", len(got))
	}
}

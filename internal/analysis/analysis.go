// Package analysis turns CAGs into the performance-debugging views of §5.4:
// per-pattern average causal paths, component latency percentages (Fig. 15,
// Fig. 17), cross-run comparisons, and an automated bottleneck detector —
// the "mathematical foundation for automatic performance debugging" the
// paper names as future work (§7).
package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cag"
)

// ComponentShare is one category's contribution to an average causal path.
type ComponentShare struct {
	// Category is the paper's component label: "P2P" for computation
	// inside program P, "P2Q" for the interaction from P to Q.
	Category string
	Mean     time.Duration
	Percent  float64
}

// PatternReport is the latency view of one causal path pattern.
type PatternReport struct {
	Name        string
	Signature   string
	Count       int
	MeanLatency time.Duration
	Shares      []ComponentShare
}

// Share returns the named category's share (zero value when absent).
func (p *PatternReport) Share(category string) ComponentShare {
	for _, s := range p.Shares {
		if s.Category == category {
			return s
		}
	}
	return ComponentShare{Category: category}
}

// Categories returns the category names in display order.
func (p *PatternReport) Categories() []string {
	out := make([]string, len(p.Shares))
	for i, s := range p.Shares {
		out[i] = s.Category
	}
	return out
}

// String implements fmt.Stringer: a one-line latency-percentage view.
func (p *PatternReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s n=%d mean=%v:", p.Name, p.Count, p.MeanLatency.Round(time.Microsecond))
	for _, s := range p.Shares {
		fmt.Fprintf(&b, " %s=%.1f%%", s.Category, s.Percent)
	}
	return b.String()
}

// reportFromAverage converts an aggregated average path into a report with
// deterministic category ordering (first-tier to third-tier reading order,
// then alphabetical for anything unanticipated).
func reportFromAverage(avg *cag.AveragePath) *PatternReport {
	cats := make([]string, 0, len(avg.Components))
	for c := range avg.Components {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		oi, oj := categoryRank(cats[i]), categoryRank(cats[j])
		if oi != oj {
			return oi < oj
		}
		return cats[i] < cats[j]
	})
	rep := &PatternReport{
		Name:        avg.Name,
		Signature:   avg.Signature,
		Count:       avg.Count,
		MeanLatency: avg.MeanLatency,
	}
	for _, c := range cats {
		rep.Shares = append(rep.Shares, ComponentShare{
			Category: c,
			Mean:     avg.Components[c],
			Percent:  avg.Percent(c),
		})
	}
	return rep
}

// categoryRank orders the paper's seven RUBiS categories the way Fig. 15
// and Fig. 17 list them; unknown categories sort after.
func categoryRank(cat string) int {
	order := []string{
		"httpd2httpd", "httpd2java", "java2httpd", "java2java",
		"java2mysqld", "mysqld2java", "mysqld2mysqld",
	}
	for i, o := range order {
		if cat == o {
			return i
		}
	}
	return len(order)
}

// Report classifies the CAGs into patterns and produces one latency report
// per pattern, most frequent first.
func Report(graphs []*cag.Graph) ([]*PatternReport, error) {
	patterns := cag.Classify(graphs)
	out := make([]*PatternReport, 0, len(patterns))
	for _, p := range patterns {
		avg, err := cag.Aggregate(p.Graphs)
		if err != nil {
			return nil, fmt.Errorf("aggregate pattern %q: %w", p.Name, err)
		}
		out = append(out, reportFromAverage(avg))
	}
	return out, nil
}

// DominantPattern returns the report of the most frequent pattern with at
// least minVertices activities — §5.4.1 analyses "the most frequent request
// ViewItem", which in black-box terms is the most frequent multi-tier
// pattern. Pass minVertices=3 to skip static (BEGIN→END) paths; 0 accepts
// everything.
func DominantPattern(graphs []*cag.Graph, minVertices int) (*PatternReport, error) {
	patterns := cag.Classify(graphs)
	for _, p := range patterns {
		if p.Graphs[0].Len() >= minVertices {
			avg, err := cag.Aggregate(p.Graphs)
			if err != nil {
				return nil, err
			}
			return reportFromAverage(avg), nil
		}
	}
	return nil, fmt.Errorf("analysis: no pattern with >= %d vertices among %d patterns", minVertices, len(patterns))
}

// Comparison is a side-by-side latency-percentage view of one pattern
// across runs (the columns of Fig. 15 / bars of Fig. 17).
type Comparison struct {
	Categories []string
	// Percent[i][j] is run i's latency percentage for Categories[j].
	Percent [][]float64
	// Labels names the runs (e.g. "client=500").
	Labels []string
}

// Compare aligns reports (usually of the same pattern from different runs)
// on the union of their categories.
func Compare(labels []string, reports []*PatternReport) *Comparison {
	seen := make(map[string]bool)
	var cats []string
	for _, r := range reports {
		for _, s := range r.Shares {
			if !seen[s.Category] {
				seen[s.Category] = true
				cats = append(cats, s.Category)
			}
		}
	}
	sort.Slice(cats, func(i, j int) bool {
		oi, oj := categoryRank(cats[i]), categoryRank(cats[j])
		if oi != oj {
			return oi < oj
		}
		return cats[i] < cats[j]
	})
	cmp := &Comparison{Categories: cats, Labels: labels}
	for _, r := range reports {
		row := make([]float64, len(cats))
		for j, c := range cats {
			row[j] = r.Share(c).Percent
		}
		cmp.Percent = append(cmp.Percent, row)
	}
	return cmp
}

// Table renders the comparison as an aligned text table (rows=categories);
// column widths adapt to the labels.
func (c *Comparison) Table() string {
	var b strings.Builder
	catW := len("component")
	for _, cat := range c.Categories {
		if len(cat) > catW {
			catW = len(cat)
		}
	}
	widths := make([]int, len(c.Labels))
	for i, l := range c.Labels {
		widths[i] = len(l)
		if widths[i] < 8 {
			widths[i] = 8
		}
	}
	fmt.Fprintf(&b, "%-*s", catW, "component")
	for i, l := range c.Labels {
		fmt.Fprintf(&b, "  %*s", widths[i], l)
	}
	b.WriteByte('\n')
	for j, cat := range c.Categories {
		fmt.Fprintf(&b, "%-*s", catW, cat)
		for i := range c.Percent {
			fmt.Fprintf(&b, "  %*.1f%%", widths[i]-1, c.Percent[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Package ranker implements the candidate-selection half of the Correlator
// (§4.1 of the paper). Activities logged on different nodes arrive as
// per-node streams ordered by each node's local clock. The ranker fetches
// them into per-node queues under a sliding time window and repeatedly
// picks the next candidate for the engine:
//
//	Rule 1: a queue-head RECEIVE whose matching SEND is already in the
//	        engine's mmap is the candidate.
//	Rule 2: otherwise the head with the lowest type priority
//	        (BEGIN < SEND < END < RECEIVE < MAX) is the candidate, so a
//	        SEND always reaches the engine before its RECEIVE.
//
// Two disturbances are tolerated (§4.3): noise activities are removed by
// attribute filters and the is_noise check (Fig. 5), and the multi-processor
// concurrency disturbance (Fig. 6) is broken by swapping a blocked RECEIVE
// head with a later activity in its queue.
package ranker

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/activity"
)

// Debug enables the package's internal assertions (currently the
// exact-mode is_noise cross-check in assertNoBufferedSend). Tests flip it
// directly; set RANKER_DEBUG=1 to enable it in a normal build. Off by
// default: the assertions are quadratic in the buffer.
var Debug = os.Getenv("RANKER_DEBUG") != ""

// Source yields one node's activities in that node's local-clock order.
type Source interface {
	// Host returns the node name the stream belongs to.
	Host() string
	// Peek returns the next activity without consuming it, or nil when the
	// stream is exhausted.
	Peek() *activity.Activity
	// Pop consumes and returns the next activity, or nil when exhausted.
	Pop() *activity.Activity
}

// SliceSource adapts an in-memory slice (one node's log) to Source.
type SliceSource struct {
	host string
	as   []*activity.Activity
	pos  int
}

// NewSliceSource wraps one node's activities. The slice must already be in
// local-timestamp order (a kernel log is); this is verified in debug use by
// SortByTimestamp.
func NewSliceSource(host string, as []*activity.Activity) *SliceSource {
	return &SliceSource{host: host, as: as}
}

// Reset rearms the source over a new slice, reusing the struct — the
// worker-pool path rebuilds its per-component sources in place.
func (s *SliceSource) Reset(host string, as []*activity.Activity) {
	s.host, s.as, s.pos = host, as, 0
}

// Host implements Source.
func (s *SliceSource) Host() string { return s.host }

// Peek implements Source.
func (s *SliceSource) Peek() *activity.Activity {
	if s.pos >= len(s.as) {
		return nil
	}
	return s.as[s.pos]
}

// Pop implements Source.
func (s *SliceSource) Pop() *activity.Activity {
	if s.pos >= len(s.as) {
		return nil
	}
	a := s.as[s.pos]
	s.pos++
	return a
}

// Remaining returns the number of unconsumed activities.
func (s *SliceSource) Remaining() int { return len(s.as) - s.pos }

// PushSource is a Source fed incrementally — the online-correlation input.
// Activities must be pushed in the node's local-clock order; Close marks
// the stream complete.
type PushSource struct {
	host   string
	buf    []*activity.Activity
	head   int
	closed bool
	any    bool
	last   time.Duration
}

// NewPushSource returns an open push source for a host.
func NewPushSource(host string) *PushSource { return &PushSource{host: host} }

// Host implements Source.
func (s *PushSource) Host() string { return s.host }

// Push appends one activity. It returns an error if the stream is closed
// or the timestamp regresses (a node's kernel log is monotone). The
// regression check compares against the last *pushed* timestamp even
// after the buffer has drained: an accepted regression would break the
// emission-order guarantee, and the sharded session enforces the same
// per-host monotonicity, so the two modes must reject identically.
func (s *PushSource) Push(a *activity.Activity) error {
	if s.closed {
		return fmt.Errorf("ranker: push on closed source %s", s.host)
	}
	if s.any && a.Timestamp < s.last {
		return fmt.Errorf("ranker: %s timestamp regressed (%v after %v)", s.host, a.Timestamp, s.last)
	}
	s.any = true
	s.last = a.Timestamp
	s.buf = append(s.buf, a)
	return nil
}

// Close marks the stream complete; Peek returns nil once drained.
func (s *PushSource) Close() { s.closed = true }

// Closed reports whether Close was called.
func (s *PushSource) Closed() bool { return s.closed }

// Peek implements Source. An open source with no buffered activity returns
// nil, which the pull-mode Rank interprets as exhausted — online callers
// must use TryRank, which distinguishes "empty now" from "closed".
func (s *PushSource) Peek() *activity.Activity {
	if s.head >= len(s.buf) {
		return nil
	}
	return s.buf[s.head]
}

// Pop implements Source.
func (s *PushSource) Pop() *activity.Activity {
	if s.head >= len(s.buf) {
		return nil
	}
	a := s.buf[s.head]
	s.buf[s.head] = nil
	s.head++
	if s.head > 1024 && s.head*2 > len(s.buf) {
		n := copy(s.buf, s.buf[s.head:])
		for i := n; i < len(s.buf); i++ {
			s.buf[i] = nil
		}
		s.buf = s.buf[:n]
		s.head = 0
	}
	return a
}

// pending reports whether the source may still yield activities.
func (s *PushSource) pending() bool { return !s.closed || s.head < len(s.buf) }

// SortByTimestamp sorts a node log in place by timestamp (stable, so
// same-timestamp records keep log order). Step 1 of the paper's algorithm
// sorts each node's activities by local timestamps in the first round.
func SortByTimestamp(as []*activity.Activity) {
	sort.SliceStable(as, func(i, j int) bool { return as[i].Timestamp < as[j].Timestamp })
}

// SplitByHost partitions a merged trace into per-host logs, each sorted by
// local timestamp, and returns deterministic host order.
func SplitByHost(as []*activity.Activity) map[string][]*activity.Activity {
	byHost := make(map[string][]*activity.Activity)
	for _, a := range as {
		byHost[a.Ctx.Host] = append(byHost[a.Ctx.Host], a)
	}
	for _, log := range byHost {
		SortByTimestamp(log)
	}
	return byHost
}

// MsgIndex is the ranker's read-only view of the engine's mmap, used by
// Rule 1 and is_noise.
type MsgIndex interface {
	// HasPendingSend reports whether an unmatched SEND exists for the
	// channel (the is_noise query).
	HasPendingSend(ch activity.ChanKey) bool
	// PendingBytes returns how many bytes of that SEND remain unconsumed
	// (the size-aware Rule 1 query): a RECEIVE becomes a candidate only
	// when the pending SEND covers its byte count, so that the engine's
	// Fig. 4 countdown never goes negative when the sender's segments are
	// still queued behind it.
	PendingBytes(ch activity.ChanKey) int64
}

// Filter inspects an activity at fetch time and returns true to drop it —
// the attribute-based noise filtering of §4.3 (program name, IP, port).
type Filter func(*activity.Activity) bool

// AttributeFilter builds a Filter from deny-lists, mirroring the paper's
// example of filtering rlogin and ssh by program name.
type AttributeFilter struct {
	DenyPrograms map[string]bool
	DenyIPs      map[string]bool
	DenyPorts    map[int]bool
}

// Func returns the Filter closure.
func (f AttributeFilter) Func() Filter {
	return func(a *activity.Activity) bool {
		if f.DenyPrograms[a.Ctx.Program] {
			return true
		}
		if f.DenyIPs[a.Chan.Src.IP] || f.DenyIPs[a.Chan.Dst.IP] {
			return true
		}
		if f.DenyPorts[a.Chan.Src.Port] || f.DenyPorts[a.Chan.Dst.Port] {
			return true
		}
		return false
	}
}

// Config parametrises a Ranker.
type Config struct {
	// Window is the sliding time window size (§4.1). Any value > 0 is
	// valid; it bounds how far past the minimal buffered timestamp the
	// ranker prefetches, trading memory for fetch batching.
	Window time.Duration

	// IPToHost maps node IP addresses to host names for every *traced*
	// node. The ranker uses it to decide whether the SEND matching a
	// blocked RECEIVE could still arrive (sender traced and not exhausted)
	// or can never arrive (sender untraced => noise).
	IPToHost map[string]string

	// Filter drops activities at fetch time; nil keeps everything.
	Filter Filter

	// PaperExactNoise, when set, makes is_noise exactly the Fig. 5
	// predicate (no pending SEND in mmap and none in the ranker buffer)
	// without consulting sender liveness. The default (false) additionally
	// requires that the sender cannot produce the SEND anymore, which keeps
	// accuracy at 100% even when the window is far smaller than the clock
	// skew. Used for ablation. Under channel-closure sharding the predicate
	// is served per shard (see matchingSendVisible for the invariant): a
	// shard-local answer equals the global one, so exact mode runs on the
	// streaming engine like every other mode.
	PaperExactNoise bool
}

// Stats counts ranker behaviour for the evaluation harness.
type Stats struct {
	Fetched       uint64 // activities admitted to the buffer
	Delivered     uint64 // candidates handed to the engine
	FilterDropped uint64 // removed by the attribute filter
	NoiseDropped  uint64 // removed by is_noise
	Swaps         uint64 // concurrency-disturbance head swaps (Fig. 6)
	Extensions    uint64 // forced window extensions while heads blocked
	ForcedPops    uint64 // blocked RECEIVE delivered unmatched (loss etc.)
	PeakBuffered  int    // max activities resident in the queues
}

type queue struct {
	host string
	src  Source
	buf  []*activity.Activity
	head int
}

func (q *queue) len() int { return len(q.buf) - q.head }

func (q *queue) peek() *activity.Activity {
	if q.head >= len(q.buf) {
		return nil
	}
	return q.buf[q.head]
}

func (q *queue) pop() *activity.Activity {
	a := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head > 1024 && q.head*2 > len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return a
}

// at returns the i-th buffered element (0 = head).
func (q *queue) at(i int) *activity.Activity { return q.buf[q.head+i] }

// promote moves element i (relative to head) to the head, shifting the
// intervening elements back by one — the paper's Fig. 6 swap generalised to
// depth i.
func (q *queue) promote(i int) {
	x := q.buf[q.head+i]
	copy(q.buf[q.head+1:q.head+i+1], q.buf[q.head:q.head+i])
	q.buf[q.head] = x
}

// exhausted reports whether both the source and the buffer are empty.
func (q *queue) exhausted() bool { return q.len() == 0 && q.src.Peek() == nil }

// Ranker chooses candidate activities for the engine.
type Ranker struct {
	cfg    Config
	queues []*queue
	index  MsgIndex
	stats  Stats

	// bufferedSends counts SEND activities currently in the buffer, per
	// channel — the "buffer of ranker" half of the is_noise predicate.
	bufferedSends map[activity.ChanKey]int
	buffered      int
}

// New builds a ranker over the given per-node sources. Sources are ranked
// in the order given; use deterministic ordering for reproducible runs.
func New(cfg Config, index MsgIndex, sources []Source) *Ranker {
	if cfg.Window <= 0 {
		cfg.Window = time.Millisecond
	}
	r := &Ranker{
		cfg:           cfg,
		index:         index,
		bufferedSends: make(map[activity.ChanKey]int),
	}
	for _, s := range sources {
		r.queues = append(r.queues, &queue{host: s.Host(), src: s})
	}
	return r
}

// Reset rearms the ranker over fresh sources, reusing the queue buffers
// and channel-index capacity of the previous run. It is the worker-pool
// variant of New: a continuous session correlates thousands of small
// sealed components, and rebuilding the ranker for each one dominated
// the steady-state allocation profile. The configuration is kept from
// New; only the per-run state is cleared.
func (r *Ranker) Reset(index MsgIndex, sources []Source) {
	r.index = index
	r.stats = Stats{}
	r.buffered = 0
	clear(r.bufferedSends)
	if cap(r.queues) < len(sources) {
		r.queues = append(r.queues[:cap(r.queues)], make([]*queue, len(sources)-cap(r.queues))...)
	}
	r.queues = r.queues[:len(sources)]
	for i, s := range sources {
		q := r.queues[i]
		if q == nil {
			q = &queue{}
			r.queues[i] = q
		}
		q.host = s.Host()
		q.src = s
		clear(q.buf[:cap(q.buf)])
		q.buf = q.buf[:0]
		q.head = 0
	}
}

// NewFromTrace builds a ranker from a merged trace, splitting per host.
func NewFromTrace(cfg Config, index MsgIndex, trace []*activity.Activity) *Ranker {
	byHost := SplitByHost(trace)
	hosts := make([]string, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	sources := make([]Source, 0, len(hosts))
	for _, h := range hosts {
		sources = append(sources, NewSliceSource(h, byHost[h]))
	}
	return New(cfg, index, sources)
}

// Stats returns a copy of the counters.
func (r *Ranker) Stats() Stats { return r.stats }

// Buffered returns the number of activities currently resident in the
// queues (the ranker buffer of Fig. 11's memory accounting).
func (r *Ranker) Buffered() int { return r.buffered }

// fetchOne admits the next source activity of q into its buffer, applying
// the attribute filter. Returns false when the source is exhausted.
func (r *Ranker) fetchOne(q *queue) bool {
	for {
		a := q.src.Pop()
		if a == nil {
			return false
		}
		if !a.CtxK.Bound() {
			// Hand-built sources reach the ranker unbound; decoded traces
			// arrive with dense keys already filled.
			activity.Bind(a)
		}
		if r.cfg.Filter != nil && r.cfg.Filter(a) {
			r.stats.FilterDropped++
			continue
		}
		q.buf = append(q.buf, a)
		r.buffered++
		if r.buffered > r.stats.PeakBuffered {
			r.stats.PeakBuffered = r.buffered
		}
		if a.Type == activity.Send {
			r.bufferedSends[a.ChanK]++
		}
		r.stats.Fetched++
		return true
	}
}

// refill implements the sliding-window fetch: every live queue gets at
// least one buffered activity, and each queue is topped up with everything
// within [minTs, minTs+Window] of the minimal buffered head timestamp.
func (r *Ranker) refill() {
	for _, q := range r.queues {
		if q.len() == 0 {
			r.fetchOne(q)
		}
	}
	minTs, ok := r.minHeadTs()
	if !ok {
		return
	}
	horizon := minTs + r.cfg.Window
	for _, q := range r.queues {
		for {
			next := q.src.Peek()
			if next == nil || next.Timestamp > horizon {
				break
			}
			if !r.fetchOne(q) {
				break
			}
		}
	}
}

func (r *Ranker) minHeadTs() (time.Duration, bool) {
	var minTs time.Duration
	found := false
	for _, q := range r.queues {
		if h := q.peek(); h != nil {
			if !found || h.Timestamp < minTs {
				minTs = h.Timestamp
				found = true
			}
		}
	}
	return minTs, found
}

// take removes the head of q, maintains buffer accounting, and returns it.
func (r *Ranker) take(q *queue) *activity.Activity {
	a := q.pop()
	r.buffered--
	if a.Type == activity.Send {
		if n := r.bufferedSends[a.ChanK]; n <= 1 {
			delete(r.bufferedSends, a.ChanK)
		} else {
			r.bufferedSends[a.ChanK] = n - 1
		}
	}
	r.stats.Delivered++
	return a
}

// Rank returns the next candidate activity for the engine, or nil when all
// sources are exhausted and the buffers are empty.
func (r *Ranker) Rank() *activity.Activity {
	for {
		r.refill()

		// Rule 1: a head RECEIVE whose SEND already reached the engine —
		// size-aware: the pending SEND must cover this segment's bytes.
		// The HasPendingSend guard keeps a zero-size RECEIVE from matching
		// vacuously (PendingBytes reports 0 both for "nothing pending" and
		// for a drained entry); the engine cannot attach it either way.
		for _, q := range r.queues {
			h := q.peek()
			if h != nil && h.Type == activity.Receive &&
				r.index.HasPendingSend(h.ChanK) && r.index.PendingBytes(h.ChanK) >= h.Size {
				return r.take(q)
			}
		}

		// Rule 2: the head with the lowest type priority; timestamp then
		// host order break ties deterministically.
		best := -1
		for i, q := range r.queues {
			h := q.peek()
			if h == nil {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			b := r.queues[best].peek()
			if h.Type.Priority() < b.Type.Priority() ||
				(h.Type.Priority() == b.Type.Priority() && h.Timestamp < b.Timestamp) {
				best = i
			}
		}
		if best < 0 {
			return nil // all queues and sources drained
		}
		if h := r.queues[best].peek(); h.Type != activity.Receive {
			return r.take(r.queues[best])
		}

		// Every head is an unmatched RECEIVE: disturbance handling.
		if r.swapBlockedHead() {
			r.stats.Swaps++
			continue
		}
		if r.dropNoiseHead() {
			continue
		}
		if r.extendWindow() {
			r.stats.Extensions++
			continue
		}
		// Nothing can unblock (activity loss or untraceable input):
		// force-deliver the oldest RECEIVE so the stream keeps draining.
		r.stats.ForcedPops++
		return r.take(r.queues[best])
	}
}

// swapBlockedHead implements the Fig. 6 concurrency-disturbance fix: in a
// queue whose head is a blocked RECEIVE, promote the first buffered
// non-RECEIVE activity to the head — provided no earlier buffered element
// shares its context, so per-context ordering (which the engine's cmap
// relies on) is preserved.
func (r *Ranker) swapBlockedHead() bool {
	for _, q := range r.queues {
		n := q.len()
		if n < 2 {
			continue
		}
		for i := 1; i < n; i++ {
			x := q.at(i)
			if x.Type == activity.Receive {
				continue
			}
			safe := true
			for j := 0; j < i; j++ {
				if q.at(j).CtxK == x.CtxK {
					safe = false
					break
				}
			}
			if safe {
				q.promote(i)
				return true
			}
			break // an unsafe promotion blocks shallower ones too
		}
	}
	return false
}

// dropNoiseHead applies is_noise (Fig. 5) to the queue heads: a RECEIVE is
// noise when no matching SEND is pending in the engine's mmap and none is
// buffered in the ranker. Unless PaperExactNoise is set, the ranker also
// requires that the sender can no longer produce the SEND (its node is
// untraced, or its source is exhausted); this keeps legitimate RECEIVEs
// alive when the window is much smaller than the clock skew.
func (r *Ranker) dropNoiseHead() bool {
	for _, q := range r.queues {
		h := q.peek()
		if h == nil || h.Type != activity.Receive {
			continue
		}
		if r.isNoise(h) {
			r.take(q) // removes from buffer with accounting
			r.stats.Delivered--
			r.stats.NoiseDropped++
			return true
		}
	}
	return false
}

// matchingSendVisible answers the Fig. 5 question — "is there a pending
// matching SEND anywhere in the window?" — from the two indexes this
// ranker already maintains: the engine's mmap of unconsumed SENDs
// (MsgIndex.HasPendingSend) and the per-channel count of SENDs still
// buffered in the window (bufferedSends).
//
// Shard-closure invariant: the answer needs no global view. The flow
// partition (internal/flow) is a union-find closed over channels — every
// activity unions with its connection's node, and both directions of a
// connection share one node — so every SEND that could ever match a
// RECEIVE (same ChanKey: the mmap and buffer lookups key on exactly that)
// is in the RECEIVE's component, and therefore feeds the same
// ranker+engine pair. A shard-local "no" is a global "no". The streaming
// session asserts the component side of this at ingest when Debug is set
// (no ChanKey resolves to two live components), internal/flow's
// TestChanKeyNeverSplits fuzzes it, and Debug mode cross-checks the
// bufferedSends index against a brute-force buffer scan here.
func (r *Ranker) matchingSendVisible(ch activity.ChanKey) bool {
	return r.index.HasPendingSend(ch) || r.bufferedSends[ch] > 0
}

// assertNoBufferedSend (Debug only) re-derives "no SEND for ch is
// buffered" by brute force before an exact-mode noise drop commits to it,
// catching any rot in the bufferedSends counter the fast path trusts.
func (r *Ranker) assertNoBufferedSend(ch activity.ChanKey) {
	for _, q := range r.queues {
		for i := 0; i < q.len(); i++ {
			if x := q.at(i); x.Type == activity.Send && x.ChanK == ch {
				panic("ranker: bufferedSends index missed a buffered SEND (is_noise would drop a matchable RECEIVE)")
			}
		}
	}
}

func (r *Ranker) isNoise(a *activity.Activity) bool {
	if r.matchingSendVisible(a.ChanK) {
		return false
	}
	if r.cfg.PaperExactNoise {
		if Debug {
			r.assertNoBufferedSend(a.ChanK)
		}
		return true
	}
	senderHost, traced := r.cfg.IPToHost[a.Chan.Src.IP]
	if !traced {
		return true // the sender is outside the traced deployment
	}
	for _, q := range r.queues {
		if q.host == senderHost {
			return q.src.Peek() == nil // exhausted sender can never send it
		}
	}
	return true // traced host with no source: nothing more can arrive
}

// extendWindow force-fetches one more activity from every live source,
// growing the buffer beyond the nominal window so a deep matching SEND can
// surface. Returns false when every source is exhausted.
func (r *Ranker) extendWindow() bool {
	any := false
	for _, q := range r.queues {
		if r.fetchOne(q) {
			any = true
		}
	}
	return any
}

// TryRank is the online variant of Rank: it returns (nil, false) when no
// candidate can be *safely* chosen yet because an open PushSource might
// still deliver data that changes the decision — Rule 2 must not pick a
// head while a live source could produce a lower-priority activity, and
// is_noise must not fire while the sender's stream is open. Returns
// (nil, true) when everything is drained.
func (r *Ranker) TryRank() (a *activity.Activity, done bool) {
	// A safe candidate requires every live source to have a buffered head;
	// otherwise an unseen earlier-priority activity could exist.
	for _, q := range r.queues {
		if q.len() > 0 {
			continue
		}
		if ps, ok := q.src.(*PushSource); ok && ps.pending() {
			// Try to pull buffered pushes through the filter first.
			if !r.fetchOne(q) && ps.pending() {
				return nil, false
			}
			continue
		}
		r.fetchOne(q)
	}
	r.refill()

	// Rule 1 is always safe: the SEND is already in the engine. As in
	// Rank, HasPendingSend guards the vacuous zero-size match.
	for _, q := range r.queues {
		h := q.peek()
		if h != nil && h.Type == activity.Receive &&
			r.index.HasPendingSend(h.ChanK) && r.index.PendingBytes(h.ChanK) >= h.Size {
			return r.take(q), false
		}
	}

	best := -1
	for i, q := range r.queues {
		h := q.peek()
		if h == nil {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := r.queues[best].peek()
		if h.Type.Priority() < b.Type.Priority() ||
			(h.Type.Priority() == b.Type.Priority() && h.Timestamp < b.Timestamp) {
			best = i
		}
	}
	if best < 0 {
		if r.anyPending() {
			return nil, false
		}
		return nil, true
	}
	if h := r.queues[best].peek(); h.Type != activity.Receive {
		return r.take(r.queues[best]), false
	}
	if r.swapBlockedHead() {
		r.stats.Swaps++
		return r.TryRank()
	}
	if r.extendWindow() {
		r.stats.Extensions++
		return r.TryRank()
	}
	// A RECEIVE may only be dropped as noise (or force-popped) when the
	// sender can no longer produce the SEND; with open sources, wait.
	if r.anyPending() {
		return nil, false
	}
	if r.dropNoiseHead() {
		return r.TryRank()
	}
	r.stats.ForcedPops++
	return r.take(r.queues[best]), false
}

func (r *Ranker) anyPending() bool {
	for _, q := range r.queues {
		if ps, ok := q.src.(*PushSource); ok && !ps.Closed() {
			return true
		}
	}
	return false
}

// Exhausted reports whether all sources and buffers are drained.
func (r *Ranker) Exhausted() bool {
	for _, q := range r.queues {
		if !q.exhausted() {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (r *Ranker) String() string {
	return fmt.Sprintf("ranker{queues=%d buffered=%d delivered=%d}", len(r.queues), r.buffered, r.stats.Delivered)
}

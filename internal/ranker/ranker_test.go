package ranker

import (
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/engine"
)

var (
	httpdCtx = activity.Context{Host: "web1", Program: "httpd", PID: 10, TID: 10}
	javaCtx  = activity.Context{Host: "app1", Program: "java", PID: 20, TID: 21}
	mysqlCtx = activity.Context{Host: "db1", Program: "mysqld", PID: 30, TID: 31}

	clientCh = activity.Channel{Src: activity.Endpoint{IP: "10.0.0.9", Port: 4001}, Dst: activity.Endpoint{IP: "10.0.0.1", Port: 80}}
	webApp   = activity.Channel{Src: activity.Endpoint{IP: "10.0.0.1", Port: 34001}, Dst: activity.Endpoint{IP: "10.0.0.2", Port: 8009}}
	appDB    = activity.Channel{Src: activity.Endpoint{IP: "10.0.0.2", Port: 45001}, Dst: activity.Endpoint{IP: "10.0.0.3", Port: 3306}}
)

var ipToHost = map[string]string{
	"10.0.0.1": "web1",
	"10.0.0.2": "app1",
	"10.0.0.3": "db1",
}

func act(typ activity.Type, ts time.Duration, ctx activity.Context, ch activity.Channel, size int64, req int64) *activity.Activity {
	return &activity.Activity{Type: typ, Timestamp: ts, Ctx: ctx, Chan: ch, Size: size, ReqID: req, MsgID: -1}
}

// request builds the merged (unordered across hosts) trace of one request
// whose per-host local timestamps are offset by the given skews.
func request(base time.Duration, req int64, skewWeb, skewApp, skewDB time.Duration) []*activity.Activity {
	ms := func(n int) time.Duration { return base + time.Duration(n)*time.Millisecond }
	return []*activity.Activity{
		act(activity.Begin, ms(0)+skewWeb, httpdCtx, clientCh, 200, req),
		act(activity.Send, ms(2)+skewWeb, httpdCtx, webApp, 300, req),
		act(activity.Receive, ms(5)+skewApp, javaCtx, webApp, 300, req),
		act(activity.Send, ms(8)+skewApp, javaCtx, appDB, 100, req),
		act(activity.Receive, ms(10)+skewDB, mysqlCtx, appDB, 100, req),
		act(activity.Send, ms(15)+skewDB, mysqlCtx, appDB.Reverse(), 900, req),
		act(activity.Receive, ms(17)+skewApp, javaCtx, appDB.Reverse(), 900, req),
		act(activity.Send, ms(20)+skewApp, javaCtx, webApp.Reverse(), 700, req),
		act(activity.Receive, ms(22)+skewWeb, httpdCtx, webApp.Reverse(), 700, req),
		act(activity.End, ms(24)+skewWeb, httpdCtx, clientCh.Reverse(), 700, req),
	}
}

// correlate runs the ranker+engine loop and returns both.
func correlate(t *testing.T, cfg Config, trace []*activity.Activity) (*Ranker, *engine.Engine) {
	t.Helper()
	eng := engine.New()
	r := NewFromTrace(cfg, eng, trace)
	for {
		a := r.Rank()
		if a == nil {
			break
		}
		eng.Handle(a)
	}
	return r, eng
}

func TestRankOrderSimpleRequest(t *testing.T) {
	eng := engine.New()
	r := NewFromTrace(Config{Window: time.Second, IPToHost: ipToHost}, eng, request(0, 1, 0, 0, 0))
	var types []activity.Type
	for {
		a := r.Rank()
		if a == nil {
			break
		}
		types = append(types, a.Type)
		eng.Handle(a)
	}
	want := []activity.Type{
		activity.Begin, activity.Send, activity.Receive, activity.Send, activity.Receive,
		activity.Send, activity.Receive, activity.Send, activity.Receive, activity.End,
	}
	if len(types) != len(want) {
		t.Fatalf("delivered %d activities, want %d", len(types), len(want))
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v (full: %v)", i, types[i], want[i], types)
		}
	}
	if len(eng.Outputs()) != 1 {
		t.Fatalf("CAGs = %d, want 1", len(eng.Outputs()))
	}
}

func TestSkewLargerThanWindow(t *testing.T) {
	// §5.2: accuracy must hold when the window (1ms) is far smaller than
	// the clock skew (500ms).
	trace := request(0, 1, 0, 500*time.Millisecond, -250*time.Millisecond)
	r, eng := correlate(t, Config{Window: time.Millisecond, IPToHost: ipToHost}, trace)
	outs := eng.Outputs()
	if len(outs) != 1 {
		t.Fatalf("CAGs = %d, want 1", len(outs))
	}
	if err := outs[0].Validate(); err != nil {
		t.Fatal(err)
	}
	if outs[0].Len() != 10 {
		t.Fatalf("CAG vertices = %d, want 10", outs[0].Len())
	}
	if r.Stats().ForcedPops != 0 {
		t.Fatalf("forced pops under skew: %+v", r.Stats())
	}
	st := eng.Stats()
	if st.DiscardedSends+st.DiscardedReceives+st.DiscardedEnds != 0 {
		t.Fatalf("engine discards under skew: %+v", st)
	}
}

func TestManyConcurrentRequestsInterleaved(t *testing.T) {
	// 50 requests, overlapping in time, distinct worker entities.
	var trace []*activity.Activity
	for i := 0; i < 50; i++ {
		req := int64(i)
		h := activity.Context{Host: "web1", Program: "httpd", PID: 100 + i, TID: 100 + i}
		j := activity.Context{Host: "app1", Program: "java", PID: 20, TID: 200 + i}
		m := activity.Context{Host: "db1", Program: "mysqld", PID: 30, TID: 300 + i}
		cch := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.9", Port: 5000 + i}, Dst: activity.Endpoint{IP: "10.0.0.1", Port: 80}}
		wch := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.1", Port: 30000 + i}, Dst: activity.Endpoint{IP: "10.0.0.2", Port: 8009}}
		dch := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.2", Port: 40000 + i}, Dst: activity.Endpoint{IP: "10.0.0.3", Port: 3306}}
		base := time.Duration(i) * 3 * time.Millisecond // heavy overlap
		ms := func(n int) time.Duration { return base + time.Duration(n)*time.Millisecond }
		trace = append(trace,
			act(activity.Begin, ms(0), h, cch, 200, req),
			act(activity.Send, ms(2), h, wch, 300, req),
			act(activity.Receive, ms(5), j, wch, 300, req),
			act(activity.Send, ms(8), j, dch, 100, req),
			act(activity.Receive, ms(10), m, dch, 100, req),
			act(activity.Send, ms(15), m, dch.Reverse(), 900, req),
			act(activity.Receive, ms(17), j, dch.Reverse(), 900, req),
			act(activity.Send, ms(20), j, wch.Reverse(), 700, req),
			act(activity.Receive, ms(22), h, wch.Reverse(), 700, req),
			act(activity.End, ms(24), h, cch.Reverse(), 700, req),
		)
	}
	_, eng := correlate(t, Config{Window: 10 * time.Millisecond, IPToHost: ipToHost}, trace)
	outs := eng.Outputs()
	if len(outs) != 50 {
		t.Fatalf("CAGs = %d, want 50", len(outs))
	}
	for _, g := range outs {
		if ids := g.RequestIDs(); len(ids) != 1 {
			t.Fatalf("CAG mixes requests: %v", ids)
		}
		if g.Len() != 10 {
			t.Fatalf("CAG vertices = %d, want 10", g.Len())
		}
	}
}

func TestAttributeFilterDropsByProgram(t *testing.T) {
	sshCtx := activity.Context{Host: "web1", Program: "sshd", PID: 999, TID: 999}
	sshCh := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.77", Port: 2222}, Dst: activity.Endpoint{IP: "10.0.0.1", Port: 22}}
	trace := request(0, 1, 0, 0, 0)
	trace = append(trace,
		act(activity.Receive, 3*time.Millisecond, sshCtx, sshCh, 64, -1),
		act(activity.Send, 4*time.Millisecond, sshCtx, sshCh.Reverse(), 64, -1),
	)
	filter := AttributeFilter{DenyPrograms: map[string]bool{"sshd": true, "rlogind": true}}.Func()
	r, eng := correlate(t, Config{Window: time.Second, IPToHost: ipToHost, Filter: filter}, trace)
	if r.Stats().FilterDropped != 2 {
		t.Fatalf("FilterDropped = %d, want 2", r.Stats().FilterDropped)
	}
	if len(eng.Outputs()) != 1 {
		t.Fatalf("CAGs = %d, want 1", len(eng.Outputs()))
	}
}

func TestIsNoiseDropsUntracedReceive(t *testing.T) {
	// MySQL-client style noise: activities at the DB node, same program and
	// port as legitimate traffic, sender untraced => only is_noise can
	// remove the RECEIVEs.
	noiseCtx := activity.Context{Host: "db1", Program: "mysqld", PID: 30, TID: 99}
	noiseCh := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.200", Port: 6000}, Dst: activity.Endpoint{IP: "10.0.0.3", Port: 3306}}
	trace := request(0, 1, 0, 0, 0)
	trace = append(trace,
		act(activity.Receive, 9*time.Millisecond, noiseCtx, noiseCh, 77, -1),
		act(activity.Send, 11*time.Millisecond, noiseCtx, noiseCh.Reverse(), 128, -1),
	)
	r, eng := correlate(t, Config{Window: 2 * time.Millisecond, IPToHost: ipToHost}, trace)
	if r.Stats().NoiseDropped != 1 {
		t.Fatalf("NoiseDropped = %d, want 1 (stats %+v)", r.Stats().NoiseDropped, r.Stats())
	}
	outs := eng.Outputs()
	if len(outs) != 1 {
		t.Fatalf("CAGs = %d, want 1", len(outs))
	}
	if ids := outs[0].RequestIDs(); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("CAG polluted by noise: %v", ids)
	}
	// The noise SEND is delivered but discarded by the engine (no context).
	if eng.Stats().DiscardedSends != 1 {
		t.Fatalf("DiscardedSends = %d, want 1", eng.Stats().DiscardedSends)
	}
}

func TestConcurrencyDisturbanceSwap(t *testing.T) {
	// Fig. 6: two SMP nodes, each queue head is a RECEIVE whose matching
	// SEND sits behind it in the other node's queue.
	p1 := activity.Context{Host: "web1", Program: "httpd", PID: 1, TID: 1}
	p2 := activity.Context{Host: "app1", Program: "java", PID: 2, TID: 2}
	p3 := activity.Context{Host: "web1", Program: "httpd", PID: 3, TID: 3}
	p4 := activity.Context{Host: "app1", Program: "java", PID: 4, TID: 4}
	ch12 := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.1", Port: 1000}, Dst: activity.Endpoint{IP: "10.0.0.2", Port: 2000}}
	ch21 := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.2", Port: 3000}, Dst: activity.Endpoint{IP: "10.0.0.1", Port: 4000}}
	cl1 := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.9", Port: 71}, Dst: activity.Endpoint{IP: "10.0.0.1", Port: 80}}
	cl2 := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.9", Port: 72}, Dst: activity.Endpoint{IP: "10.0.0.2", Port: 80}}

	trace := []*activity.Activity{
		// Roots so the SENDs have context parents.
		act(activity.Begin, 0, p1, cl1, 10, 1),
		act(activity.Begin, 0, p4, cl2, 10, 2),
		// Node web1 logs R(2->1 to p3... as p3 ctx) BEFORE S(1->2) (SMP reordering).
		act(activity.Receive, 1*time.Millisecond, p3, ch21, 50, 2),
		act(activity.Send, 1100*time.Microsecond, p1, ch12, 60, 1),
		// Node app1 logs R(1->2) before S(2->1).
		act(activity.Receive, 1*time.Millisecond, p2, ch12, 60, 1),
		act(activity.Send, 1100*time.Microsecond, p4, ch21, 50, 2),
	}
	r, eng := correlate(t, Config{Window: 10 * time.Millisecond, IPToHost: ipToHost}, trace)
	if r.Stats().Swaps == 0 {
		t.Fatalf("expected swaps, stats %+v", r.Stats())
	}
	if r.Stats().ForcedPops != 0 {
		t.Fatalf("forced pops: %+v", r.Stats())
	}
	st := eng.Stats()
	if st.DiscardedReceives != 0 {
		t.Fatalf("discarded receives: %+v", st)
	}
	if st.Receives != 2 {
		t.Fatalf("Receives = %d, want 2", st.Receives)
	}
}

func TestSwapPreservesContextOrder(t *testing.T) {
	// A queue [RECV(ctxA), SEND(ctxA)] must NOT be reordered: the SEND
	// causally follows the RECEIVE in the same execution entity.
	q := &queue{}
	recv := act(activity.Receive, 1*time.Millisecond, javaCtx, webApp, 10, 1)
	send := act(activity.Send, 2*time.Millisecond, javaCtx, appDB, 10, 1)
	q.buf = []*activity.Activity{recv, send}
	r := &Ranker{queues: []*queue{q}, bufferedSends: map[activity.ChanKey]int{}}
	if r.swapBlockedHead() {
		t.Fatal("swap must not reorder same-context activities")
	}
}

func TestPaperExactNoiseMode(t *testing.T) {
	// In paper-exact mode a blocked legit RECEIVE whose SEND is outside the
	// buffer is vulnerable; with the default liveness-aware mode it is not.
	// Construct: app1's RECEIVE at local ts 0, web1's SEND at local ts
	// 500ms (skewed clock), window 1ms.
	trace := []*activity.Activity{
		act(activity.Begin, 500*time.Millisecond, httpdCtx, clientCh, 10, 1),
		act(activity.Send, 501*time.Millisecond, httpdCtx, webApp, 60, 1),
		act(activity.Receive, 1*time.Millisecond, javaCtx, webApp, 60, 1),
	}
	r, eng := correlate(t, Config{Window: time.Millisecond, IPToHost: ipToHost}, trace)
	if r.Stats().NoiseDropped != 0 {
		t.Fatalf("liveness-aware mode dropped a legit RECEIVE: %+v", r.Stats())
	}
	if eng.Stats().Receives != 1 {
		t.Fatalf("Receives = %d, want 1", eng.Stats().Receives)
	}
}

func TestSliceSource(t *testing.T) {
	as := []*activity.Activity{
		act(activity.Begin, 1, httpdCtx, clientCh, 1, 1),
		act(activity.Send, 2, httpdCtx, webApp, 1, 1),
	}
	s := NewSliceSource("web1", as)
	if s.Host() != "web1" {
		t.Fatalf("Host = %q", s.Host())
	}
	if s.Peek() != as[0] || s.Remaining() != 2 {
		t.Fatal("Peek/Remaining broken")
	}
	if s.Pop() != as[0] || s.Pop() != as[1] {
		t.Fatal("Pop order broken")
	}
	if s.Pop() != nil || s.Peek() != nil {
		t.Fatal("exhausted source should return nil")
	}
}

func TestSplitByHostSorts(t *testing.T) {
	a1 := act(activity.Send, 5*time.Millisecond, httpdCtx, webApp, 1, 1)
	a2 := act(activity.Begin, 1*time.Millisecond, httpdCtx, clientCh, 1, 1)
	a3 := act(activity.Receive, 3*time.Millisecond, javaCtx, webApp, 1, 1)
	m := SplitByHost([]*activity.Activity{a1, a2, a3})
	if len(m) != 2 {
		t.Fatalf("hosts = %d", len(m))
	}
	web := m["web1"]
	if len(web) != 2 || web[0] != a2 || web[1] != a1 {
		t.Fatal("web1 log not sorted by timestamp")
	}
}

func TestExhaustedAndBuffered(t *testing.T) {
	eng := engine.New()
	r := NewFromTrace(Config{Window: time.Second, IPToHost: ipToHost}, eng, request(0, 1, 0, 0, 0))
	if r.Exhausted() {
		t.Fatal("fresh ranker with input should not be exhausted")
	}
	for {
		a := r.Rank()
		if a == nil {
			break
		}
		eng.Handle(a)
	}
	if !r.Exhausted() {
		t.Fatal("drained ranker should be exhausted")
	}
	if r.Buffered() != 0 {
		t.Fatalf("Buffered = %d after drain", r.Buffered())
	}
	if r.Stats().PeakBuffered == 0 {
		t.Fatal("PeakBuffered should be positive")
	}
	if r.Stats().Delivered != 10 {
		t.Fatalf("Delivered = %d, want 10", r.Stats().Delivered)
	}
}

func TestWindowSizeDoesNotAffectCorrectness(t *testing.T) {
	// §5.2: window from 1ms to 10s, accuracy stays 100%.
	for _, w := range []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond, time.Second, 10 * time.Second} {
		trace := request(0, 1, 0, 100*time.Millisecond, -50*time.Millisecond)
		_, eng := correlate(t, Config{Window: w, IPToHost: ipToHost}, trace)
		if len(eng.Outputs()) != 1 {
			t.Fatalf("window %v: CAGs = %d", w, len(eng.Outputs()))
		}
		if eng.Outputs()[0].Len() != 10 {
			t.Fatalf("window %v: vertices = %d", w, eng.Outputs()[0].Len())
		}
	}
}

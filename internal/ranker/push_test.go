package ranker

import (
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/engine"
)

func TestPushSourceBasics(t *testing.T) {
	s := NewPushSource("web1")
	if s.Host() != "web1" || s.Peek() != nil || s.Pop() != nil {
		t.Fatal("empty source defaults")
	}
	a1 := act(activity.Begin, time.Millisecond, httpdCtx, clientCh, 10, 1)
	a2 := act(activity.Send, 2*time.Millisecond, httpdCtx, webApp, 10, 1)
	if err := s.Push(a1); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(a2); err != nil {
		t.Fatal(err)
	}
	if s.Peek() != a1 || s.Pop() != a1 || s.Pop() != a2 {
		t.Fatal("FIFO broken")
	}
	if !s.pending() {
		t.Fatal("open drained source must still be pending")
	}
	s.Close()
	if !s.Closed() || s.pending() {
		t.Fatal("closed drained source must not be pending")
	}
	if err := s.Push(a1); err == nil {
		t.Fatal("push after close must fail")
	}
}

func TestPushSourceRejectsRegression(t *testing.T) {
	s := NewPushSource("web1")
	if err := s.Push(act(activity.Begin, 5*time.Millisecond, httpdCtx, clientCh, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(act(activity.Send, 3*time.Millisecond, httpdCtx, webApp, 10, 1)); err == nil {
		t.Fatal("timestamp regression accepted")
	}
}

func TestPushSourceRejectsRegressionAfterDrain(t *testing.T) {
	// The monotonicity contract survives a full drain: the check compares
	// against the last pushed timestamp, not the buffer tail, so the
	// sequential and sharded sessions reject the same push sequences.
	s := NewPushSource("web1")
	if err := s.Push(act(activity.Begin, 5*time.Millisecond, httpdCtx, clientCh, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if s.Pop() == nil {
		t.Fatal("pop failed")
	}
	if err := s.Push(act(activity.Send, 3*time.Millisecond, httpdCtx, webApp, 10, 1)); err == nil {
		t.Fatal("regression after drain accepted")
	}
	if err := s.Push(act(activity.Send, 6*time.Millisecond, httpdCtx, webApp, 10, 1)); err != nil {
		t.Fatalf("monotone push after drain rejected: %v", err)
	}
}

func TestPushSourceCompaction(t *testing.T) {
	s := NewPushSource("web1")
	ts := time.Duration(0)
	for i := 0; i < 5000; i++ {
		ts += time.Microsecond
		if err := s.Push(act(activity.Send, ts, httpdCtx, webApp, 10, 1)); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			s.Pop()
		}
	}
	// Buffer must have compacted: head can't exceed half of a large buf.
	if s.head > 1024 && s.head*2 > len(s.buf) {
		t.Fatalf("no compaction: head=%d len=%d", s.head, len(s.buf))
	}
}

func TestTryRankWaitsForOpenSources(t *testing.T) {
	eng := engine.New()
	web := NewPushSource("web1")
	app := NewPushSource("app1")
	r := New(Config{Window: 10 * time.Millisecond, IPToHost: ipToHost}, eng, []Source{web, app})

	// Only app1's RECEIVE pushed: TryRank must not decide anything while
	// web1 could still deliver the SEND.
	recv := act(activity.Receive, 5*time.Millisecond, javaCtx, webApp, 60, 1)
	if err := app.Push(recv); err != nil {
		t.Fatal(err)
	}
	if a, done := r.TryRank(); a != nil || done {
		t.Fatalf("TryRank decided early: %v %v", a, done)
	}
	// Once the SEND arrives (preceded by its BEGIN), everything resolves.
	if err := web.Push(act(activity.Begin, time.Millisecond, httpdCtx, clientCh, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := web.Push(act(activity.Send, 2*time.Millisecond, httpdCtx, webApp, 60, 1)); err != nil {
		t.Fatal(err)
	}
	var types []activity.Type
	for {
		a, done := r.TryRank()
		if a == nil {
			if done {
				break
			}
			// Not done, but blocked: close streams to flush.
			web.Close()
			app.Close()
			continue
		}
		types = append(types, a.Type)
		eng.Handle(a)
	}
	want := []activity.Type{activity.Begin, activity.Send, activity.Receive}
	if len(types) != len(want) {
		t.Fatalf("delivered %v", types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("order %v, want %v", types, want)
		}
	}
	if r.Stats().NoiseDropped != 0 || r.Stats().ForcedPops != 0 {
		t.Fatalf("online guesses: %+v", r.Stats())
	}
}

func TestTryRankDoneOnEmptyClosedSources(t *testing.T) {
	eng := engine.New()
	web := NewPushSource("web1")
	web.Close()
	r := New(Config{Window: time.Millisecond, IPToHost: ipToHost}, eng, []Source{web})
	a, done := r.TryRank()
	if a != nil || !done {
		t.Fatalf("expected done, got %v %v", a, done)
	}
}

func TestTryRankDropsNoiseAfterClose(t *testing.T) {
	eng := engine.New()
	db := NewPushSource("db1")
	noise := act(activity.Receive, time.Millisecond, mysqlCtx,
		activity.Channel{Src: activity.Endpoint{IP: "10.0.0.200", Port: 6000}, Dst: activity.Endpoint{IP: "10.0.0.3", Port: 3306}},
		77, -1)
	if err := db.Push(noise); err != nil {
		t.Fatal(err)
	}
	r := New(Config{Window: time.Millisecond, IPToHost: ipToHost}, eng, []Source{db})
	// While open: wait (the sender is untraced, but other traced sources
	// could in principle exist; the conservative session waits for close).
	db.Close()
	a, done := r.TryRank()
	if a != nil || !done {
		t.Fatalf("expected noise drop then done, got %v %v (stats %+v)", a, done, r.Stats())
	}
	if r.Stats().NoiseDropped != 1 {
		t.Fatalf("noise not dropped: %+v", r.Stats())
	}
}

package ranker

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/engine"
)

// TestRankEdgeCases is the table-driven sweep over the degenerate inputs
// Rule 1/2 must stay deterministic on: zero-duration activities (several
// records at one instant on one node), identical timestamps across hosts
// (Rule 2's tie broken by type priority alone), and flows reduced to a
// single activity.
func TestRankEdgeCases(t *testing.T) {
	webApp2 := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.1", Port: 34002}, Dst: activity.Endpoint{IP: "10.0.0.2", Port: 8009}}

	cases := []struct {
		name  string
		trace []*activity.Activity
		// wantTypes is the exact candidate order the ranker must emit.
		wantTypes []activity.Type
		// wantFinished counts CAGs the engine completes.
		wantFinished uint64
		wantNoise    uint64
		wantForced   uint64
	}{
		{
			name: "zero duration request",
			// The entire request happens at t=0 on every node: ordering
			// falls back to type priority and host order, and SEND must
			// still reach the engine before its RECEIVE.
			trace: []*activity.Activity{
				act(activity.Begin, 0, httpdCtx, clientCh, 200, 1),
				act(activity.Send, 0, httpdCtx, webApp, 300, 1),
				act(activity.Receive, 0, javaCtx, webApp, 300, 1),
				act(activity.Send, 0, javaCtx, webApp.Reverse(), 700, 1),
				act(activity.Receive, 0, httpdCtx, webApp.Reverse(), 700, 1),
				act(activity.End, 0, httpdCtx, clientCh.Reverse(), 700, 1),
			},
			wantTypes: []activity.Type{
				activity.Begin, activity.Send, activity.Receive,
				activity.Send, activity.Receive, activity.End,
			},
			wantFinished: 1,
		},
		{
			name: "identical timestamps across hosts",
			// Two one-hop requests on two hosts with every record at the
			// same instant as its peer: candidate selection may never
			// deliver a RECEIVE before its SEND even though timestamps
			// give no ordering information.
			trace: []*activity.Activity{
				act(activity.Begin, 1*time.Millisecond, httpdCtx, clientCh, 100, 1),
				act(activity.Send, 2*time.Millisecond, httpdCtx, webApp, 50, 1),
				act(activity.Receive, 2*time.Millisecond, javaCtx, webApp, 50, 1),
				act(activity.Send, 3*time.Millisecond, javaCtx, webApp.Reverse(), 60, 1),
				act(activity.Receive, 3*time.Millisecond, httpdCtx, webApp.Reverse(), 60, 1),
				act(activity.End, 4*time.Millisecond, httpdCtx, clientCh.Reverse(), 60, 1),
			},
			wantTypes: []activity.Type{
				activity.Begin, activity.Send, activity.Receive,
				activity.Send, activity.Receive, activity.End,
			},
			wantFinished: 1,
		},
		{
			name: "single activity flow begin only",
			// A flow consisting of just a BEGIN: a CAG opens and never
			// finishes; nothing may block or loop.
			trace: []*activity.Activity{
				act(activity.Begin, 0, httpdCtx, clientCh, 100, 1),
			},
			wantTypes:    []activity.Type{activity.Begin},
			wantFinished: 0,
		},
		{
			name: "single activity flow orphan receive",
			// A lone RECEIVE whose sender is untraced: is_noise must drop
			// it (no candidate emitted) instead of force-popping.
			trace: []*activity.Activity{
				act(activity.Receive, 0, httpdCtx,
					activity.Channel{Src: activity.Endpoint{IP: "10.9.9.9", Port: 5000}, Dst: activity.Endpoint{IP: "10.0.0.1", Port: 80}},
					64, -1),
			},
			wantTypes: nil,
			wantNoise: 1,
		},
		{
			name: "orphan receive from traced exhausted sender",
			// The sender host is traced but its stream never produces the
			// SEND (activity loss). Once the sender is exhausted the
			// RECEIVE is droppable as noise — and the lost-send request on
			// the sender still correlates its own BEGIN.
			trace: []*activity.Activity{
				act(activity.Begin, 0, httpdCtx, clientCh, 100, 1),
				act(activity.Receive, 1*time.Millisecond, javaCtx, webApp2, 300, 1),
			},
			wantTypes: []activity.Type{activity.Begin},
			wantNoise: 1,
		},
		{
			name: "zero size send and receive",
			// Zero-byte messages are degenerate: the engine's Fig. 4
			// countdown can never consume a 0-byte SEND (remaining <= 0
			// means "nothing pending"), so the hop is unmatchable. The
			// ranker must classify both RECEIVEs as noise once their
			// senders are exhausted — not let the 0-size RECEIVE jump the
			// queue through a vacuous Rule 1 match — and the request
			// still finishes as BEGIN→SEND→END on the entry node.
			trace: []*activity.Activity{
				act(activity.Begin, 0, httpdCtx, clientCh, 100, 1),
				act(activity.Send, 1*time.Millisecond, httpdCtx, webApp, 0, 1),
				act(activity.Receive, 2*time.Millisecond, javaCtx, webApp, 0, 1),
				act(activity.Send, 3*time.Millisecond, javaCtx, webApp.Reverse(), 10, 1),
				act(activity.Receive, 4*time.Millisecond, httpdCtx, webApp.Reverse(), 10, 1),
				act(activity.End, 5*time.Millisecond, httpdCtx, clientCh.Reverse(), 10, 1),
			},
			wantTypes: []activity.Type{
				activity.Begin, activity.Send, activity.Send, activity.End,
			},
			wantFinished: 1,
			wantNoise:    2,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, window := range []time.Duration{time.Millisecond, time.Second} {
				eng := engine.New()
				r := NewFromTrace(Config{Window: window, IPToHost: ipToHost}, eng, tc.trace)
				var types []activity.Type
				for {
					a := r.Rank()
					if a == nil {
						break
					}
					types = append(types, a.Type)
					eng.Handle(a)
				}
				if fmt.Sprint(types) != fmt.Sprint(tc.wantTypes) {
					t.Fatalf("window %v: candidate order %v, want %v", window, types, tc.wantTypes)
				}
				if got := eng.Stats().Finished; got != tc.wantFinished {
					t.Fatalf("window %v: finished %d, want %d", window, got, tc.wantFinished)
				}
				if got := r.Stats().NoiseDropped; got != tc.wantNoise {
					t.Fatalf("window %v: noise dropped %d, want %d", window, got, tc.wantNoise)
				}
				if got := r.Stats().ForcedPops; got != tc.wantForced {
					t.Fatalf("window %v: forced pops %d, want %d", window, got, tc.wantForced)
				}
			}
		})
	}
}

// TestRankZeroDurationTieIsDeterministic re-ranks an all-ties trace many
// times: the candidate sequence must never vary (Rule 2 breaks timestamp
// ties by host order, not map iteration order).
func TestRankZeroDurationTieIsDeterministic(t *testing.T) {
	trace := []*activity.Activity{
		act(activity.Begin, 0, httpdCtx, clientCh, 100, 1),
		act(activity.Send, 0, httpdCtx, webApp, 50, 1),
		act(activity.Receive, 0, javaCtx, webApp, 50, 1),
		act(activity.Send, 0, javaCtx, appDB, 20, 1),
		act(activity.Receive, 0, mysqlCtx, appDB, 20, 1),
		act(activity.Send, 0, mysqlCtx, appDB.Reverse(), 30, 1),
		act(activity.Receive, 0, javaCtx, appDB.Reverse(), 30, 1),
		act(activity.Send, 0, javaCtx, webApp.Reverse(), 60, 1),
		act(activity.Receive, 0, httpdCtx, webApp.Reverse(), 60, 1),
		act(activity.End, 0, httpdCtx, clientCh.Reverse(), 60, 1),
	}
	var first string
	for i := 0; i < 20; i++ {
		eng := engine.New()
		r := NewFromTrace(Config{Window: time.Millisecond, IPToHost: ipToHost}, eng, trace)
		var got []*activity.Activity
		for {
			a := r.Rank()
			if a == nil {
				break
			}
			got = append(got, a)
			eng.Handle(a)
		}
		s := fmt.Sprint(got)
		if i == 0 {
			first = s
			if n := eng.Stats().Finished; n != 1 {
				t.Fatalf("finished %d, want 1", n)
			}
			continue
		}
		if s != first {
			t.Fatalf("run %d ranked differently:\n%s\nvs\n%s", i, s, first)
		}
	}
}

// Package baseline implements two black-box correlators that stand in for
// the approaches the paper positions itself against (§1, §6.1), so the
// precision gap can be measured instead of argued:
//
//   - Naive: assumes synchronised clocks — it feeds activities to the
//     Fig. 3 engine in merged global-timestamp order, with none of the
//     ranker's Rule 1/Rule 2 ordering, swaps, or noise handling. Clock
//     skew and SMP log reordering directly corrupt its matching.
//   - Nesting: a WAP5/Project5-style probabilistic correlator. It pairs
//     each RECEIVE with the oldest unmatched SEND on the channel (no
//     byte-count matching) and attributes causality inside a context to
//     the most recent prior activity within a timeout (no same-CAG
//     thread-reuse check). Under concurrency, segmentation and thread
//     reuse it mixes requests — the imprecision the paper's §1 refers to.
//
// Both produce cag.Graphs, so groundtruth.Evaluate scores them with the
// same path-accuracy metric as PreciseTracer.
package baseline

import (
	"sort"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
	"repro/internal/engine"
)

// Result is a baseline correlation outcome.
type Result struct {
	Graphs          []*cag.Graph
	CorrelationTime time.Duration
	// Dropped counts activities the correlator could not place.
	Dropped int
}

// sortedByTimestamp returns the trace in global timestamp order (stable).
func sortedByTimestamp(trace []*activity.Activity) []*activity.Activity {
	out := make([]*activity.Activity, len(trace))
	copy(out, trace)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Timestamp < out[j].Timestamp })
	return out
}

// Naive correlates by feeding the engine in merged timestamp order,
// trusting cross-node clocks.
func Naive(trace []*activity.Activity) *Result {
	start := time.Now()
	eng := engine.New()
	for _, a := range sortedByTimestamp(trace) {
		eng.Handle(a)
	}
	st := eng.Stats()
	return &Result{
		Graphs:          eng.Outputs(),
		CorrelationTime: time.Since(start),
		Dropped:         int(st.DiscardedSends + st.DiscardedReceives + st.DiscardedEnds),
	}
}

// NestingConfig parametrises the probabilistic correlator.
type NestingConfig struct {
	// ContextGap bounds how stale a context's last activity may be and
	// still be considered the cause of the next one (default 500ms).
	ContextGap time.Duration
	// CoalesceGap is the time-proximity heuristic for grouping TCP
	// segments into messages: consecutive same-channel same-type records
	// closer than this are treated as one message (default 1ms). This is a
	// guess where PreciseTracer uses exact byte counts — the heuristic
	// breaks when distinct messages arrive back-to-back or when a message's
	// segments straddle the gap.
	CoalesceGap time.Duration
}

// group is one heuristically coalesced logical message or activity.
type group struct {
	typ       activity.Type
	timestamp time.Duration // completion (last segment)
	ctx       activity.Context
	ch        activity.Channel
	size      int64
	records   []*activity.Activity
}

// coalesce groups consecutive same-(channel, context, type) records within
// the gap into single logical activities, summing sizes. The input must be
// in global timestamp order.
func coalesce(sorted []*activity.Activity, gap time.Duration) []*group {
	type key struct {
		ch  activity.Channel
		ctx activity.Context
		typ activity.Type
	}
	var out []*group
	last := make(map[key]*group)
	for _, a := range sorted {
		k := key{a.Chan, a.Ctx, a.Type}
		if prev, ok := last[k]; ok && a.Timestamp-prev.timestamp <= gap {
			prev.size += a.Size
			prev.timestamp = a.Timestamp // message completes at last segment
			prev.records = append(prev.records, a)
			continue
		}
		g := &group{typ: a.Type, timestamp: a.Timestamp, ctx: a.Ctx, ch: a.Chan,
			size: a.Size, records: []*activity.Activity{a}}
		out = append(out, g)
		last[k] = g
	}
	return out
}

type nestingPath struct {
	graph *cag.Graph
	last  *cag.Vertex // last vertex per this path in any context
}

// Nesting runs the probabilistic correlator.
func Nesting(trace []*activity.Activity, cfg NestingConfig) *Result {
	if cfg.ContextGap <= 0 {
		cfg.ContextGap = 500 * time.Millisecond
	}
	if cfg.CoalesceGap <= 0 {
		cfg.CoalesceGap = time.Millisecond
	}
	start := time.Now()

	type ctxState struct {
		path *nestingPath
		last *cag.Vertex
	}
	type pendingSend struct {
		vertex *cag.Vertex
		path   *nestingPath
	}
	ctxs := make(map[activity.Context]*ctxState)
	sends := make(map[activity.Channel][]pendingSend)

	res := &Result{}
	newVertex := func(g *group) *cag.Vertex {
		return &cag.Vertex{Type: g.typ, Timestamp: g.timestamp, Ctx: g.ctx,
			Chan: g.ch, Size: g.size, Records: g.records}
	}

	for _, g := range coalesce(sortedByTimestamp(trace), cfg.CoalesceGap) {
		switch g.typ {
		case activity.Begin:
			v := newVertex(g)
			p := &nestingPath{graph: cag.New(v), last: v}
			ctxs[g.ctx] = &ctxState{path: p, last: v}

		case activity.Send:
			st := ctxs[g.ctx]
			if st == nil || st.path == nil || st.path.graph.Finished() ||
				g.timestamp-st.last.Timestamp > cfg.ContextGap {
				res.Dropped++
				continue
			}
			v := newVertex(g)
			if err := st.path.graph.AddVertex(v, cag.ContextEdge, st.last); err != nil {
				res.Dropped++
				continue
			}
			st.last, st.path.last = v, v
			sends[g.ch] = append(sends[g.ch], pendingSend{vertex: v, path: st.path})

		case activity.Receive:
			q := sends[g.ch]
			if len(q) == 0 {
				res.Dropped++
				continue
			}
			// Oldest unmatched SEND on the channel — FIFO pairing without
			// byte counts; the time-gap coalescing above is a guess that
			// mis-pairs when messages arrive back-to-back.
			ps := q[0]
			sends[g.ch] = q[1:]
			if ps.path.graph.Finished() {
				res.Dropped++
				continue
			}
			v := newVertex(g)
			if err := ps.path.graph.AddVertex(v, cag.MessageEdge, ps.vertex); err != nil {
				res.Dropped++
				continue
			}
			// Probabilistic context attribution: the receiving context now
			// works for this path — no same-CAG check.
			ctxs[g.ctx] = &ctxState{path: ps.path, last: v}
			ps.path.last = v

		case activity.End:
			st := ctxs[g.ctx]
			if st == nil || st.path == nil || st.path.graph.Finished() {
				res.Dropped++
				continue
			}
			v := newVertex(g)
			if err := st.path.graph.AddVertex(v, cag.ContextEdge, st.last); err != nil {
				res.Dropped++
				continue
			}
			if err := st.path.graph.Finish(); err != nil {
				res.Dropped++
				continue
			}
			res.Graphs = append(res.Graphs, st.path.graph)
			st.path, st.last = nil, nil

		case activity.MaxType:
			res.Dropped++
		}
	}
	res.CorrelationTime = time.Since(start)
	return res
}

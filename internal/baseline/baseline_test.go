package baseline

import (
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/core"
	"repro/internal/rubis"
)

func classifiedTrace(t *testing.T, mutate func(*rubis.Config)) (*rubis.Result, []*activity.Activity) {
	t.Helper()
	cfg := rubis.DefaultConfig(60)
	cfg.Scale = 0.01
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := rubis.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cls := activity.NewClassifier(rubis.EntryPort)
	classified := make([]*activity.Activity, len(res.Trace))
	for i, a := range res.Trace {
		cp := *a
		cp.Type = cls.Classify(a)
		classified[i] = &cp
	}
	return res, classified
}

func TestNaivePerfectClocksMostlyWorks(t *testing.T) {
	// With zero skew, global timestamp order is close to causal order, so
	// the naive approach should do reasonably well (it is not the clocks
	// that defeat it here, but SMP interleavings are absent too).
	res, trace := classifiedTrace(t, nil)
	out := Naive(trace)
	rep := res.Truth.Evaluate(out.Graphs)
	if rep.PathAccuracy() < 0.5 {
		t.Fatalf("naive with perfect clocks collapsed: %v", rep)
	}
}

func TestNaiveDegradesUnderSkew(t *testing.T) {
	res, trace := classifiedTrace(t, func(c *rubis.Config) {
		c.Skew.MaxSkew = 500 * time.Millisecond
	})
	out := Naive(trace)
	rep := res.Truth.Evaluate(out.Graphs)
	if rep.PathAccuracy() > 0.5 {
		t.Fatalf("naive should degrade badly under 500ms skew, got %v", rep)
	}
	// PreciseTracer on the same trace stays at 100%.
	precise, err := core.New(core.Options{
		Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
	}).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	prep := res.Truth.Evaluate(precise.Graphs)
	if prep.PathAccuracy() != 1.0 {
		t.Fatalf("precise tracer should stay at 100%%: %v", prep)
	}
}

func TestNestingReasonableWithPerfectClocks(t *testing.T) {
	// With synchronised clocks and light load the time-gap heuristics
	// mostly guess right — the probabilistic approach is useful, just not
	// precise.
	res, trace := classifiedTrace(t, nil)
	out := Nesting(trace, NestingConfig{})
	rep := res.Truth.Evaluate(out.Graphs)
	if rep.PathAccuracy() < 0.8 {
		t.Fatalf("nesting collapsed even with perfect clocks: %v", rep)
	}
}

func TestNestingDegradesUnderSkew(t *testing.T) {
	// Cross-node timestamp ordering is the heuristic's foundation; skew
	// larger than the transit time breaks it while PreciseTracer's
	// rule-based ordering does not care.
	res, trace := classifiedTrace(t, func(c *rubis.Config) {
		c.Skew.MaxSkew = 500 * time.Millisecond
	})
	out := Nesting(trace, NestingConfig{})
	rep := res.Truth.Evaluate(out.Graphs)
	if rep.PathAccuracy() >= 1.0 {
		t.Fatalf("nesting should be imprecise under skew: %v", rep)
	}
}

func TestNestingDropsWithoutContext(t *testing.T) {
	ctx := activity.Context{Host: "app1", Program: "java", PID: 1, TID: 1}
	ch := activity.Channel{Src: activity.Endpoint{IP: "a", Port: 1}, Dst: activity.Endpoint{IP: "b", Port: 2}}
	out := Nesting([]*activity.Activity{
		{Type: activity.Send, Timestamp: time.Millisecond, Ctx: ctx, Chan: ch, Size: 10, ReqID: -1, MsgID: -1},
	}, NestingConfig{})
	if out.Dropped != 1 || len(out.Graphs) != 0 {
		t.Fatalf("dropped=%d graphs=%d", out.Dropped, len(out.Graphs))
	}
}

func TestNestingContextGapTimeout(t *testing.T) {
	httpd := activity.Context{Host: "web1", Program: "httpd", PID: 1, TID: 1}
	cch := activity.Channel{Src: activity.Endpoint{IP: "c", Port: 9}, Dst: activity.Endpoint{IP: "w", Port: 80}}
	wch := activity.Channel{Src: activity.Endpoint{IP: "w", Port: 7}, Dst: activity.Endpoint{IP: "a", Port: 8009}}
	trace := []*activity.Activity{
		{Type: activity.Begin, Timestamp: 0, Ctx: httpd, Chan: cch, Size: 10, ReqID: 1, MsgID: -1},
		// SEND 10 seconds later: beyond the 500ms context gap.
		{Type: activity.Send, Timestamp: 10 * time.Second, Ctx: httpd, Chan: wch, Size: 10, ReqID: 1, MsgID: -1},
	}
	out := Nesting(trace, NestingConfig{})
	if out.Dropped != 1 {
		t.Fatalf("expected the stale SEND to be dropped, got %+v", out)
	}
}

func TestBaselineCorrelationTimesMeasured(t *testing.T) {
	_, trace := classifiedTrace(t, nil)
	if Naive(trace).CorrelationTime <= 0 {
		t.Fatal("naive time not measured")
	}
	if Nesting(trace, NestingConfig{}).CorrelationTime <= 0 {
		t.Fatal("nesting time not measured")
	}
}

func TestConvolutionEstimatesServiceDelay(t *testing.T) {
	// Light load so the lag histogram is not smeared: the mysqld estimate
	// should land near its per-query service time (~2-3ms).
	res, trace := classifiedTrace(t, func(c *rubis.Config) { c.Clients = 20 })
	delays := Convolution(trace, ConvolutionConfig{})
	_ = res
	d, ok := DelayFor(delays, "mysqld")
	if !ok || d.Pairs == 0 {
		t.Fatalf("no mysqld estimate: %v", delays)
	}
	if d.Mode < 500*time.Microsecond || d.Mode > 10*time.Millisecond {
		t.Fatalf("mysqld mode = %v, expected low-millisecond service time", d.Mode)
	}
}

func TestConvolutionSupportDegradesWithConcurrency(t *testing.T) {
	// Aggregate inference gets noisier as concurrent requests interleave —
	// the imprecision argument of §6.1 in measurable form.
	_, light := classifiedTrace(t, func(c *rubis.Config) { c.Clients = 10 })
	_, heavy := classifiedTrace(t, func(c *rubis.Config) { c.Clients = 300; c.HttpdWorkers = 0 })
	dl, _ := DelayFor(Convolution(light, ConvolutionConfig{}), "java")
	dh, _ := DelayFor(Convolution(heavy, ConvolutionConfig{}), "java")
	if dl.Pairs == 0 || dh.Pairs == 0 {
		t.Fatal("missing estimates")
	}
	if dh.Support >= dl.Support {
		t.Fatalf("support should degrade with load: light=%.3f heavy=%.3f", dl.Support, dh.Support)
	}
}

func TestConvolutionEmptyTrace(t *testing.T) {
	delays := Convolution(nil, ConvolutionConfig{})
	if len(delays) != 0 {
		t.Fatalf("empty trace produced %v", delays)
	}
	if _, ok := DelayFor(delays, "x"); ok {
		t.Fatal("DelayFor on empty should be false")
	}
}

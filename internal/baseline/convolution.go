package baseline

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/activity"
)

// Project5's "convolution algorithm" (§6.1, [3]) infers *aggregate* causal
// delays in a black-box system by treating each component's inbound and
// outbound message timestamps as time series and finding the lag that best
// aligns them. It never reconstructs individual paths — which is exactly
// the contrast the paper draws: aggregate inference is cheap and
// instrumentation-free but probabilistic, while PreciseTracer recovers the
// exact per-request path.
//
// This implementation estimates, per component (program), the delay
// distribution between a message arriving at the component and the next
// messages it emits, via a lag histogram (discretised cross-correlation):
// for every outbound SEND, every inbound RECEIVE within MaxLag before it
// votes for their time difference. The histogram's mode is the estimated
// per-visit service delay.

// ConvolutionConfig parametrises the estimator.
type ConvolutionConfig struct {
	// MaxLag bounds the considered in->out delay (default 200ms).
	MaxLag time.Duration
	// BinWidth is the histogram resolution (default 500µs).
	BinWidth time.Duration
}

// ComponentDelay is one component's estimated service delay.
type ComponentDelay struct {
	Program string
	// Mode is the histogram-peak delay (the "most common" in->out lag).
	Mode time.Duration
	// Support is the fraction of votes in the winning bin — low support
	// means the signal is smeared by concurrency (the imprecision the
	// paper's §6.1 describes).
	Support float64
	// Pairs is the total number of (in, out) votes considered.
	Pairs int
}

// String implements fmt.Stringer.
func (c ComponentDelay) String() string {
	return fmt.Sprintf("%s: mode=%v support=%.3f pairs=%d", c.Program, c.Mode.Round(time.Microsecond), c.Support, c.Pairs)
}

// Convolution runs the aggregate estimator over a classified trace and
// returns per-program delay estimates, sorted by program name.
func Convolution(trace []*activity.Activity, cfg ConvolutionConfig) []ComponentDelay {
	if cfg.MaxLag <= 0 {
		cfg.MaxLag = 200 * time.Millisecond
	}
	if cfg.BinWidth <= 0 {
		cfg.BinWidth = 500 * time.Microsecond
	}
	type series struct {
		in  []time.Duration // RECEIVE/BEGIN timestamps
		out []time.Duration // SEND/END timestamps
	}
	byProgram := make(map[string]*series)
	get := func(p string) *series {
		s := byProgram[p]
		if s == nil {
			s = &series{}
			byProgram[p] = s
		}
		return s
	}
	for _, a := range trace {
		switch a.Type {
		case activity.Receive, activity.Begin:
			s := get(a.Ctx.Program)
			s.in = append(s.in, a.Timestamp)
		case activity.Send, activity.End:
			s := get(a.Ctx.Program)
			s.out = append(s.out, a.Timestamp)
		case activity.MaxType:
		}
	}

	bins := int(cfg.MaxLag/cfg.BinWidth) + 1
	var out []ComponentDelay
	progs := make([]string, 0, len(byProgram))
	for p := range byProgram {
		progs = append(progs, p)
	}
	sort.Strings(progs)
	for _, p := range progs {
		s := byProgram[p]
		sort.Slice(s.in, func(i, j int) bool { return s.in[i] < s.in[j] })
		sort.Slice(s.out, func(i, j int) bool { return s.out[i] < s.out[j] })
		hist := make([]int, bins)
		pairs := 0
		for _, to := range s.out {
			// All inbound events within (to-MaxLag, to] vote.
			lo := sort.Search(len(s.in), func(i int) bool { return s.in[i] > to-cfg.MaxLag })
			for i := lo; i < len(s.in) && s.in[i] <= to; i++ {
				bin := int((to - s.in[i]) / cfg.BinWidth)
				if bin >= 0 && bin < bins {
					hist[bin]++
					pairs++
				}
			}
		}
		best, votes := 0, 0
		for i, v := range hist {
			if v > votes {
				best, votes = i, v
			}
		}
		cd := ComponentDelay{Program: p, Pairs: pairs}
		if pairs > 0 {
			cd.Mode = time.Duration(best)*cfg.BinWidth + cfg.BinWidth/2
			cd.Support = float64(votes) / float64(pairs)
		}
		out = append(out, cd)
	}
	return out
}

// DelayFor returns the estimate for one program, if present.
func DelayFor(delays []ComponentDelay, program string) (ComponentDelay, bool) {
	for _, d := range delays {
		if d.Program == program {
			return d, true
		}
	}
	return ComponentDelay{}, false
}

// Package ring provides the bounded FIFO ring buffer that connects the
// streaming engine's pipeline stages: a fixed-capacity queue with
// blocking and non-blocking operations whose batch variants move a whole
// run of items under one lock acquisition.
//
// That amortization is the point. A Go channel pays its synchronization
// per element — one lock/unlock (and often a goroutine wakeup) per send
// and per receive. A pipeline stage that produces or consumes items in
// runs can instead pay once per run: PushBatch and PopBatch acquire the
// lock once and move as many items as capacity allows, so the handoff
// cost per item shrinks with the run length (see BenchmarkRing for the
// crossover against channels).
//
// PopBatch is deliberately adaptive: it blocks only until at least one
// item is available and then takes whatever is there, up to the caller's
// buffer. Batches therefore form only under backlog — a lightly loaded
// ring degenerates to per-item handoff with channel-like latency, never
// holding an item hostage waiting for a batch to fill.
//
// Close semantics mirror closed channels: pushes are refused, pops drain
// the remaining items and then report exhaustion (a zero count, or
// ok=false). All methods are safe for any number of concurrent pushers
// and poppers; items pushed by one goroutine are popped in push order,
// and each popper sees any single pusher's items as an ordered
// subsequence (batches are taken contiguously in FIFO order).
//
// The package is dependency-free (sync only) by design — it sits under
// the innermost hot path of internal/core.
package ring

import "sync"

// Ring is a bounded multi-producer multi-consumer FIFO buffer.
// The zero value is not usable; call New.
type Ring[T any] struct {
	mu       sync.Mutex
	notEmpty sync.Cond // signaled when items arrive or the ring closes
	notFull  sync.Cond // signaled when space frees or the ring closes
	buf      []T
	head     int // index of the oldest element
	n        int // elements currently buffered
	closed   bool
}

// New returns an empty ring holding at most capacity items.
// It panics if capacity is less than 1.
func New[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		panic("ring: capacity must be >= 1")
	}
	r := &Ring[T]{buf: make([]T, capacity)}
	r.notEmpty.L = &r.mu
	r.notFull.L = &r.mu
	return r
}

// Cap returns the ring's fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of items currently buffered.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	n := r.n
	r.mu.Unlock()
	return n
}

// put appends v; the caller holds r.mu and has checked for space.
func (r *Ring[T]) put(v T) {
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = v
	r.n++
}

// take removes and returns the oldest item; the caller holds r.mu and
// has checked it exists. The vacated slot is zeroed so the ring never
// pins popped items against the garbage collector.
func (r *Ring[T]) take() T {
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return v
}

// Push appends one item, blocking while the ring is full. It reports
// whether the item was accepted — false means the ring was closed.
func (r *Ring[T]) Push(v T) bool {
	r.mu.Lock()
	for r.n == len(r.buf) && !r.closed {
		r.notFull.Wait()
	}
	if r.closed {
		r.mu.Unlock()
		return false
	}
	r.put(v)
	r.notEmpty.Signal()
	r.mu.Unlock()
	return true
}

// TryPush appends one item without blocking. It reports whether the
// item was accepted — false means the ring was full or closed.
func (r *Ring[T]) TryPush(v T) bool {
	r.mu.Lock()
	if r.closed || r.n == len(r.buf) {
		r.mu.Unlock()
		return false
	}
	r.put(v)
	r.notEmpty.Signal()
	r.mu.Unlock()
	return true
}

// PushBatch appends the items in order, blocking for space as needed;
// each time space frees it moves the longest possible run under the one
// lock acquisition (a batch longer than the capacity is pushed in
// capacity-sized runs). It returns how many items were accepted — fewer
// than len(vs) only if the ring was closed mid-batch.
func (r *Ring[T]) PushBatch(vs []T) int {
	pushed := 0
	r.mu.Lock()
	for pushed < len(vs) {
		for r.n == len(r.buf) && !r.closed {
			r.notFull.Wait()
		}
		if r.closed {
			break
		}
		run := len(r.buf) - r.n
		if rest := len(vs) - pushed; run > rest {
			run = rest
		}
		for _, v := range vs[pushed : pushed+run] {
			r.put(v)
		}
		pushed += run
		r.notEmpty.Broadcast()
	}
	r.mu.Unlock()
	return pushed
}

// TryPushBatch appends as many leading items as fit without blocking
// and returns the count (0 when full or closed).
func (r *Ring[T]) TryPushBatch(vs []T) int {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0
	}
	run := len(r.buf) - r.n
	if run > len(vs) {
		run = len(vs)
	}
	for _, v := range vs[:run] {
		r.put(v)
	}
	if run > 0 {
		r.notEmpty.Broadcast()
	}
	r.mu.Unlock()
	return run
}

// Pop removes the oldest item, blocking while the ring is empty. ok is
// false only when the ring is closed and fully drained.
func (r *Ring[T]) Pop() (v T, ok bool) {
	r.mu.Lock()
	for r.n == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	if r.n == 0 {
		r.mu.Unlock()
		return v, false
	}
	v = r.take()
	r.notFull.Signal()
	r.mu.Unlock()
	return v, true
}

// TryPop removes the oldest item without blocking; ok is false when the
// ring is empty.
func (r *Ring[T]) TryPop() (v T, ok bool) {
	r.mu.Lock()
	if r.n == 0 {
		r.mu.Unlock()
		return v, false
	}
	v = r.take()
	r.notFull.Signal()
	r.mu.Unlock()
	return v, true
}

// PopBatch blocks until at least one item is available, then moves as
// many as are buffered — up to len(dst) — into dst under the one lock
// acquisition, returning the count. A zero count means the ring is
// closed and fully drained (or dst is empty).
func (r *Ring[T]) PopBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	r.mu.Lock()
	for r.n == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	n := r.n
	if n == 0 {
		r.mu.Unlock()
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = r.take()
	}
	r.notFull.Broadcast()
	r.mu.Unlock()
	return n
}

// TryPopBatch moves up to len(dst) buffered items into dst without
// blocking and returns the count (0 when empty).
func (r *Ring[T]) TryPopBatch(dst []T) int {
	r.mu.Lock()
	n := r.n
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = r.take()
	}
	if n > 0 {
		r.notFull.Broadcast()
	}
	r.mu.Unlock()
	return n
}

// Close marks the ring closed: further pushes are refused, pops drain
// what remains and then report exhaustion, and every blocked operation
// wakes. Closing twice is a no-op.
func (r *Ring[T]) Close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		r.notEmpty.Broadcast()
		r.notFull.Broadcast()
	}
	r.mu.Unlock()
}

package ring

import (
	"fmt"
	"testing"
)

// BenchmarkRing measures the producer→consumer handoff cost per item:
// a buffered Go channel moved one item per operation versus the ring
// moved in batches of 1, 8 and 64. The per-item channel cost is fixed
// (one synchronized op each side); the ring's one-lock-per-run batching
// amortizes below it as the batch grows — batch 1 is the ring's worst
// case (all overhead, no amortization), batch >= 8 is where the
// pipeline runs (internal/core's workers pull up to 8 components per
// wakeup).
func BenchmarkRing(b *testing.B) {
	const capacity = 256
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("chan-batch%d", batch), func(b *testing.B) {
			ch := make(chan int, capacity)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for range ch {
				}
			}()
			b.ResetTimer()
			// A channel has no batch op: the "batch" is just the
			// producer's chunking loop — every item still pays one send
			// and one receive. This is the baseline the ring amortizes.
			for i := 0; i < b.N; i += batch {
				n := batch
				if i+n > b.N {
					n = b.N - i
				}
				for j := 0; j < n; j++ {
					ch <- i + j
				}
			}
			close(ch)
			<-done
		})
		b.Run(fmt.Sprintf("ring-batch%d", batch), func(b *testing.B) {
			r := New[int](capacity)
			done := make(chan struct{})
			go func() {
				defer close(done)
				buf := make([]int, batch)
				for r.PopBatch(buf) > 0 {
				}
			}()
			src := make([]int, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				n := batch
				if i+n > b.N {
					n = b.N - i
				}
				for j := 0; j < n; j++ {
					src[j] = i + j
				}
				if r.PushBatch(src[:n]) != n {
					b.Fatal("short push")
				}
			}
			r.Close()
			<-done
		})
	}
}

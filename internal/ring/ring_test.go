package ring

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestRingSPSCOracle drives one producer and one consumer with randomly
// sized batch operations and checks the consumed sequence against a
// buffered Go channel fed the same items — the FIFO oracle: same items,
// same order, no loss, no duplication.
func TestRingSPSCOracle(t *testing.T) {
	const total = 10000
	r := New[int](17) // odd capacity exercises wraparound at every lap
	oracle := make(chan int, total)

	go func() {
		rng := rand.New(rand.NewSource(1))
		next := 0
		for next < total {
			n := 1 + rng.Intn(9)
			if next+n > total {
				n = total - next
			}
			batch := make([]int, n)
			for i := range batch {
				batch[i] = next
				oracle <- next
				next++
			}
			if rng.Intn(2) == 0 {
				if got := r.PushBatch(batch); got != n {
					panic("short push on open ring")
				}
			} else {
				for _, v := range batch {
					if !r.Push(v) {
						panic("push refused on open ring")
					}
				}
			}
		}
		r.Close()
		close(oracle)
	}()

	rng := rand.New(rand.NewSource(2))
	buf := make([]int, 8)
	got := 0
	for {
		var vs []int
		if rng.Intn(2) == 0 {
			n := r.PopBatch(buf[:1+rng.Intn(8)])
			if n == 0 {
				break
			}
			vs = buf[:n]
		} else {
			v, ok := r.Pop()
			if !ok {
				break
			}
			vs = append(buf[:0], v)
		}
		for _, v := range vs {
			want, ok := <-oracle
			if !ok {
				t.Fatalf("ring delivered %d extra item(s)", len(vs))
			}
			if v != want {
				t.Fatalf("item %d: got %d, oracle says %d", got, v, want)
			}
			got++
		}
	}
	if got != total {
		t.Fatalf("consumed %d items, want %d", got, total)
	}
	if _, ok := <-oracle; ok {
		t.Fatal("oracle has items the ring lost")
	}
}

// TestRingMPMCNoLossNoDup runs several producers and consumers pushing
// and popping concurrent batches and checks the two invariants an MPMC
// FIFO owes its users: every pushed item is popped exactly once, and
// each consumer sees any single producer's items in push order (batches
// are taken contiguously, so per-producer order survives as a
// subsequence at every consumer).
func TestRingMPMCNoLossNoDup(t *testing.T) {
	const (
		producers = 4
		consumers = 3
		perProd   = 5000
	)
	type item struct{ prod, seq int }
	r := New[item](64)

	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			rng := rand.New(rand.NewSource(int64(100 + p)))
			seq := 0
			for seq < perProd {
				n := 1 + rng.Intn(12)
				if seq+n > perProd {
					n = perProd - seq
				}
				batch := make([]item, n)
				for i := range batch {
					batch[i] = item{prod: p, seq: seq}
					seq++
				}
				if got := r.PushBatch(batch); got != n {
					panic("short push on open ring")
				}
			}
		}(p)
	}

	var cwg sync.WaitGroup
	consumed := make([][]item, consumers)
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			buf := make([]item, 16)
			for {
				n := r.PopBatch(buf)
				if n == 0 {
					return
				}
				consumed[c] = append(consumed[c], buf[:n]...)
			}
		}(c)
	}

	pwg.Wait()
	r.Close()
	cwg.Wait()

	seen := make(map[item]int)
	for c, vs := range consumed {
		lastSeq := make([]int, producers)
		for i := range lastSeq {
			lastSeq[i] = -1
		}
		for _, v := range vs {
			seen[v]++
			if v.seq <= lastSeq[v.prod] {
				t.Fatalf("consumer %d saw producer %d out of order: seq %d after %d", c, v.prod, v.seq, lastSeq[v.prod])
			}
			lastSeq[v.prod] = v.seq
		}
	}
	if len(seen) != producers*perProd {
		t.Fatalf("consumed %d distinct items, want %d", len(seen), producers*perProd)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("item %+v consumed %d times", v, n)
		}
	}
}

// TestRingCloseDrains checks the closed-channel-like semantics: buffered
// items survive Close and drain in order, then every pop reports
// exhaustion and every push is refused.
func TestRingCloseDrains(t *testing.T) {
	r := New[int](8)
	for i := 0; i < 5; i++ {
		if !r.Push(i) {
			t.Fatal("push refused on open ring")
		}
	}
	r.Close()
	r.Close() // idempotent
	if r.Push(99) {
		t.Fatal("push accepted after close")
	}
	if n := r.PushBatch([]int{1, 2}); n != 0 {
		t.Fatalf("PushBatch after close accepted %d items", n)
	}
	if r.TryPush(99) || r.TryPushBatch([]int{1}) != 0 {
		t.Fatal("try-push accepted after close")
	}
	buf := make([]int, 3)
	if n := r.PopBatch(buf); n != 3 || buf[0] != 0 || buf[1] != 1 || buf[2] != 2 {
		t.Fatalf("first drain batch = %v (n=%d)", buf[:n], n)
	}
	for want := 3; want < 5; want++ {
		v, ok := r.Pop()
		if !ok || v != want {
			t.Fatalf("drain pop = %d,%v; want %d,true", v, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop succeeded on drained closed ring")
	}
	if n := r.PopBatch(buf); n != 0 {
		t.Fatalf("PopBatch on drained closed ring returned %d", n)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after drain", r.Len())
	}
}

// TestRingCloseUnblocks checks that Close wakes both a pusher blocked on
// a full ring and a popper blocked on an empty one.
func TestRingCloseUnblocks(t *testing.T) {
	full := New[int](1)
	full.Push(1)
	empty := New[int](1)
	done := make(chan string, 2)
	go func() {
		full.Push(2) // blocks: full
		done <- "push"
	}()
	go func() {
		empty.PopBatch(make([]int, 4)) // blocks: empty
		done <- "pop"
	}()
	time.Sleep(10 * time.Millisecond)
	full.Close()
	empty.Close()
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("blocked operation did not wake on Close")
		}
	}
}

// TestRingBatchLargerThanCapacity pushes a batch longer than the ring
// and checks it lands whole, in order, as the consumer frees space.
func TestRingBatchLargerThanCapacity(t *testing.T) {
	const total = 100
	r := New[int](7)
	batch := make([]int, total)
	for i := range batch {
		batch[i] = i
	}
	go func() {
		if got := r.PushBatch(batch); got != total {
			panic("short push on open ring")
		}
		r.Close()
	}()
	buf := make([]int, 5)
	next := 0
	for {
		n := r.PopBatch(buf)
		if n == 0 {
			break
		}
		for _, v := range buf[:n] {
			if v != next {
				t.Fatalf("got %d, want %d", v, next)
			}
			next++
		}
	}
	if next != total {
		t.Fatalf("drained %d items, want %d", next, total)
	}
}

// TestRingTryVariants pins the non-blocking semantics: fail-fast on
// full/empty, partial batch acceptance, exact counts.
func TestRingTryVariants(t *testing.T) {
	r := New[int](4)
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop succeeded on empty ring")
	}
	if n := r.TryPopBatch(make([]int, 4)); n != 0 {
		t.Fatalf("TryPopBatch on empty ring returned %d", n)
	}
	if n := r.TryPushBatch([]int{0, 1, 2, 3, 4, 5}); n != 4 {
		t.Fatalf("TryPushBatch accepted %d items into capacity 4", n)
	}
	if r.TryPush(9) {
		t.Fatal("TryPush succeeded on full ring")
	}
	if v, ok := r.TryPop(); !ok || v != 0 {
		t.Fatalf("TryPop = %d,%v; want 0,true", v, ok)
	}
	if !r.TryPush(4) {
		t.Fatal("TryPush failed with space available")
	}
	buf := make([]int, 10)
	if n := r.TryPopBatch(buf); n != 4 || buf[0] != 1 || buf[3] != 4 {
		t.Fatalf("TryPopBatch = %v (n=%d)", buf[:n], n)
	}
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
}

// TestRingNewPanics pins the constructor contract.
func TestRingNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int](0)
}

// TestRingStress is the -race workout: a small ring hammered by mixed
// blocking and non-blocking operations from many goroutines at once.
// The assertions are the conservation ones (no loss, no duplication);
// the value is the race detector coverage of every code path.
func TestRingStress(t *testing.T) {
	const (
		producers = 6
		consumers = 6
		perProd   = 2000
	)
	r := New[int](8)
	var pwg, cwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			base := p * perProd
			sent := 0
			for sent < perProd {
				switch rng.Intn(3) {
				case 0:
					if r.Push(base + sent) {
						sent++
					}
				case 1:
					n := 1 + rng.Intn(5)
					if sent+n > perProd {
						n = perProd - sent
					}
					batch := make([]int, n)
					for i := range batch {
						batch[i] = base + sent + i
					}
					sent += r.PushBatch(batch)
				default:
					if r.TryPush(base + sent) {
						sent++
					}
				}
			}
		}(p)
	}
	var mu sync.Mutex
	seen := make(map[int]int)
	record := func(vs []int) {
		mu.Lock()
		for _, v := range vs {
			seen[v]++
		}
		mu.Unlock()
	}
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			buf := make([]int, 6)
			for {
				switch rng.Intn(3) {
				case 0:
					v, ok := r.Pop()
					if !ok {
						return
					}
					record([]int{v})
				case 1:
					n := r.PopBatch(buf)
					if n == 0 {
						return
					}
					record(buf[:n])
				default:
					if n := r.TryPopBatch(buf); n > 0 {
						record(buf[:n])
					}
				}
			}
		}(c)
	}
	pwg.Wait()
	r.Close()
	cwg.Wait()
	if len(seen) != producers*perProd {
		t.Fatalf("consumed %d distinct items, want %d", len(seen), producers*perProd)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("item %d consumed %d times", v, n)
		}
	}
}

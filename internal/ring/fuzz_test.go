package ring

import "testing"

// FuzzRingModel drives a ring of fuzzer-chosen capacity with a
// fuzzer-chosen sequence of non-blocking operations and checks every
// step against a plain slice model of a bounded FIFO queue. This is the
// wraparound/capacity edge hunter: head wrap at odd capacities, batches
// that straddle the wrap point, fill-to-exactly-full, drain-to-empty,
// and operations after Close all fall out of the op stream.
func FuzzRingModel(f *testing.F) {
	f.Add(uint8(1), []byte{0, 0, 1, 1})
	f.Add(uint8(3), []byte{0, 0, 0, 0, 1, 2, 3, 0, 1})
	f.Add(uint8(7), []byte{2, 40, 3, 20, 2, 200, 3, 255, 4, 0, 1})
	f.Add(uint8(16), []byte{2, 255, 3, 9, 2, 8, 3, 255, 2, 3})
	f.Fuzz(func(t *testing.T, capByte uint8, ops []byte) {
		capacity := int(capByte%16) + 1
		r := New[int](capacity)
		var model []int
		next := 0
		closed := false
		i := 0
		arg := func() int { // consume one operand byte, default 1
			i++
			if i < len(ops) {
				return int(ops[i]) % (2*capacity + 2)
			}
			return 1
		}
		for ; i < len(ops); i++ {
			switch ops[i] % 5 {
			case 0: // TryPush
				ok := r.TryPush(next)
				wantOK := !closed && len(model) < capacity
				if ok != wantOK {
					t.Fatalf("op %d: TryPush ok=%v, model says %v (len=%d cap=%d closed=%v)", i, ok, wantOK, len(model), capacity, closed)
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1: // TryPop
				v, ok := r.TryPop()
				if ok != (len(model) > 0) {
					t.Fatalf("op %d: TryPop ok=%v with model len %d", i, ok, len(model))
				}
				if ok {
					if v != model[0] {
						t.Fatalf("op %d: TryPop = %d, model head %d", i, v, model[0])
					}
					model = model[1:]
				}
			case 2: // TryPushBatch of operand-sized run
				n := arg()
				batch := make([]int, n)
				for j := range batch {
					batch[j] = next + j
				}
				got := r.TryPushBatch(batch)
				want := capacity - len(model)
				if closed {
					want = 0
				}
				if want > n {
					want = n
				}
				if got != want {
					t.Fatalf("op %d: TryPushBatch(%d) = %d, model says %d", i, n, got, want)
				}
				model = append(model, batch[:got]...)
				next += got
			case 3: // TryPopBatch into operand-sized buffer
				n := arg()
				buf := make([]int, n)
				got := r.TryPopBatch(buf)
				want := len(model)
				if want > n {
					want = n
				}
				if got != want {
					t.Fatalf("op %d: TryPopBatch(%d) = %d, model says %d", i, n, got, want)
				}
				for j := 0; j < got; j++ {
					if buf[j] != model[j] {
						t.Fatalf("op %d: TryPopBatch item %d = %d, model %d", i, j, buf[j], model[j])
					}
				}
				model = model[got:]
			default: // Close (idempotent; keeps draining)
				r.Close()
				closed = true
			}
			if got := r.Len(); got != len(model) {
				t.Fatalf("op %d: Len = %d, model %d", i, got, len(model))
			}
		}
	})
}

package flow

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/activity"
)

// TestChanKeyNeverSplits is the property test behind the shard-aware
// Fig. 5 predicate (see the package doc's channel-closure guarantee and
// ranker.matchingSendVisible): under random request topologies, port
// reuse, thread-pool reuse, send-less noise RECEIVEs and fully random
// arrival orders — including RECEIVE arriving before its SEND, the
// over-merge case — no ChanKey may ever land in two components. Checked
// for the online Incremental partitioner in both modes and for the batch
// Partition/PartitionParallel scans.
func TestChanKeyNeverSplits(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomInvariantTrace(rng)
		rng.Shuffle(len(tr), func(i, j int) { tr[i], tr[j] = tr[j], tr[i] })

		for _, mode := range []Mode{ModeFlow, ModeContext} {
			inc := NewIncremental(mode, nil)
			roots := make([]int32, len(tr))
			for i, a := range tr {
				roots[i] = inc.Add(a)
			}
			owner := make(map[activity.ChanKey]int32)
			for i, a := range tr {
				norm := normChan(a.ChanK)
				root := inc.Root(roots[i])
				if prev, ok := owner[norm]; ok && prev != root {
					t.Fatalf("seed %d mode %s: ChanKey %v split across components %d and %d (incremental)",
						seed, mode, norm, prev, root)
				}
				owner[norm] = root
			}

			for _, part := range []struct {
				name  string
				comps []Component
			}{
				{"batch", Partition(tr, mode)},
				{"parallel", PartitionParallel(tr, mode, 4)},
			} {
				seen := make(map[activity.ChanKey]int)
				for ci, c := range part.comps {
					for _, a := range c.Activities {
						norm := normChan(a.ChanK)
						if prev, ok := seen[norm]; ok && prev != ci {
							t.Fatalf("seed %d mode %s: ChanKey %v split across %s components %d and %d",
								seed, mode, norm, part.name, prev, ci)
						}
						seen[norm] = ci
					}
				}
			}
		}
	}
}

// TestChanKeySplitsOnlyAtSeals extends the property to the continuous
// session's lifecycle: with components sealed mid-stream, a connection's
// assignment may move to a fresh component ONLY when its previous owner
// was tombstoned (the sanctioned late-link detach) — never between two
// live components.
func TestChanKeySplitsOnlyAtSeals(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomInvariantTrace(rng)
		rng.Shuffle(len(tr), func(i, j int) { tr[i], tr[j] = tr[j], tr[i] })

		for _, mode := range []Mode{ModeFlow, ModeContext} {
			inc := NewIncremental(mode, nil)
			inc.EnablePruning()
			owner := make(map[activity.ChanKey]int32)
			var added []int32
			for _, a := range tr {
				n := inc.Add(a)
				norm := normChan(a.ChanK)
				if prev, ok := owner[norm]; ok {
					pr := inc.Root(prev)
					if pr != n && !inc.sealed(pr) {
						t.Fatalf("seed %d mode %s: ChanKey %v moved from live component %d to %d without a seal",
							seed, mode, norm, pr, n)
					}
				}
				owner[norm] = n
				added = append(added, n)
				// Seal a random already-seen component now and then, the
				// way a horizon would, so later adds on its connections
				// exercise the late-link detach.
				if rng.Intn(16) == 0 {
					inc.Seal(added[rng.Intn(len(added))])
				}
			}
		}
	}
}

// normChan collapses a ChanKey and its reverse onto one representative,
// so both directions of a connection count as the same key.
func normChan(k activity.ChanKey) activity.ChanKey {
	r := k.Reverse()
	if r.SrcIP < k.SrcIP ||
		(r.SrcIP == k.SrcIP && (r.SrcPort < k.SrcPort ||
			(r.SrcPort == k.SrcPort && (r.DstIP < k.DstIP ||
				(r.DstIP == k.DstIP && r.DstPort < k.DstPort))))) {
		return r
	}
	return k
}

// randomInvariantTrace builds a randomized multi-tier workload: requests
// fan client→web→app with an optional app→db hop, ephemeral ports drawn
// from small pools (so connections persist across requests and merge
// components), worker threads drawn from small pools (thread reuse), and
// occasional send-less noise RECEIVEs from untraced clients (the inert-
// receive branch).
func randomInvariantTrace(rng *rand.Rand) []*activity.Activity {
	var tr []*activity.Activity
	id := int64(0)
	next := func() int64 { id++; return id }
	for r := 0; r < 24; r++ {
		base := time.Duration(r) * 10 * time.Millisecond
		cp := 40000 + rng.Intn(40)
		wp := 50000 + rng.Intn(20)
		wtid := 10 + rng.Intn(4)
		atid := 20 + rng.Intn(4)
		tr = append(tr,
			mk(next(), activity.Begin, base+1*time.Millisecond, "web", wtid, "10.9.0.9", "10.0.0.1", cp, 80, 100),
			mk(next(), activity.Send, base+2*time.Millisecond, "web", wtid, "10.0.0.1", "10.0.0.2", wp, 8009, 80),
			mk(next(), activity.Receive, base+3*time.Millisecond, "app", atid, "10.0.0.1", "10.0.0.2", wp, 8009, 80),
		)
		if rng.Intn(2) == 0 { // optional db hop
			ap := 60000 + rng.Intn(20)
			dtid := 30 + rng.Intn(4)
			tr = append(tr,
				mk(next(), activity.Send, base+4*time.Millisecond, "app", atid, "10.0.0.2", "10.0.0.3", ap, 3306, 60),
				mk(next(), activity.Receive, base+5*time.Millisecond, "db", dtid, "10.0.0.2", "10.0.0.3", ap, 3306, 60),
				mk(next(), activity.Send, base+6*time.Millisecond, "db", dtid, "10.0.0.3", "10.0.0.2", 3306, ap, 200),
				mk(next(), activity.Receive, base+7*time.Millisecond, "app", atid, "10.0.0.3", "10.0.0.2", 3306, ap, 200),
			)
		}
		tr = append(tr,
			mk(next(), activity.Send, base+8*time.Millisecond, "app", atid, "10.0.0.2", "10.0.0.1", 8009, wp, 300),
			mk(next(), activity.Receive, base+9*time.Millisecond, "web", wtid, "10.0.0.2", "10.0.0.1", 8009, wp, 300),
			mk(next(), activity.End, base+10*time.Millisecond, "web", wtid, "10.0.0.1", "10.9.0.9", 80, cp, 400),
		)
		if rng.Intn(3) == 0 { // untraced noise: RECEIVE with no SEND ever
			tr = append(tr,
				mk(next(), activity.Receive, base+time.Duration(rng.Int63n(int64(10*time.Millisecond))), "web", 10+rng.Intn(4),
					"10.9.9.9", "10.0.0.1", 55000+rng.Intn(8), 23, 50))
		}
	}
	return tr
}

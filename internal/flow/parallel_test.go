package flow

import (
	"fmt"
	"testing"

	"repro/internal/activity"
	"repro/internal/rubis"
)

// classifiedTrace generates a RUBiS trace and applies the §3.1
// classification (Partition consumes classified activities, as the
// correlator does).
func classifiedTrace(t testing.TB, clients int, scale float64, noise int) []*activity.Activity {
	t.Helper()
	cfg := rubis.DefaultConfig(clients)
	cfg.Scale = scale
	cfg.NoiseSessions = noise
	res, err := rubis.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cls := activity.NewClassifier(rubis.EntryPort)
	out := make([]*activity.Activity, len(res.Trace))
	for i, a := range res.Trace {
		cp := *a
		cp.Type = cls.Classify(a)
		out[i] = &cp
	}
	return out
}

// assertSameComponents requires byte-identical partitions: same component
// count, order, member identity and member order.
func assertSameComponents(t *testing.T, label string, want, got []Component) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d components, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].MinTimestamp != got[i].MinTimestamp {
			t.Fatalf("%s: component %d MinTimestamp %v, want %v", label, i, got[i].MinTimestamp, want[i].MinTimestamp)
		}
		if len(want[i].Activities) != len(got[i].Activities) {
			t.Fatalf("%s: component %d has %d members, want %d", label, i, len(got[i].Activities), len(want[i].Activities))
		}
		for j := range want[i].Activities {
			if want[i].Activities[j] != got[i].Activities[j] {
				t.Fatalf("%s: component %d member %d differs (%v vs %v)",
					label, i, j, got[i].Activities[j], want[i].Activities[j])
			}
		}
	}
}

// TestPartitionParallelEquivalence: the per-host scans merged by the
// final union pass must reproduce the sequential partition exactly —
// including ModeFlow's epoch breaks and inert-receive filing, whose
// connectivity checks see less context in a host-local view.
func TestPartitionParallelEquivalence(t *testing.T) {
	old := parallelMinTrace
	parallelMinTrace = 1
	defer func() { parallelMinTrace = old }()

	cases := []struct {
		name    string
		clients int
		scale   float64
		noise   int
	}{
		{"clean", 120, 0.03, 0},
		{"noisy", 120, 0.03, 8},
		{"larger", 300, 0.05, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trace := classifiedTrace(t, tc.clients, tc.scale, tc.noise)
			for _, mode := range []Mode{ModeFlow, ModeContext} {
				want := Partition(trace, mode)
				for _, workers := range []int{2, 4, 8} {
					label := fmt.Sprintf("mode=%s workers=%d", mode, workers)
					got := PartitionParallel(trace, mode, workers)
					assertSameComponents(t, label, want, got)
				}
			}
		})
	}
}

// TestPartitionParallelFixtures runs the hand-written fixtures through
// the parallel path: the cases the two modes disagree on must come out
// exactly as the sequential scan decides them.
func TestPartitionParallelFixtures(t *testing.T) {
	old := parallelMinTrace
	parallelMinTrace = 1
	defer func() { parallelMinTrace = old }()

	tr := twoRequests()
	for _, mode := range []Mode{ModeFlow, ModeContext} {
		assertSameComponents(t, "independent "+mode.String(),
			Partition(tr, mode), PartitionParallel(tr, mode, 4))
	}

	reuse := twoRequests()
	for _, a := range reuse {
		if a.Ctx.Host == "app" {
			a.Ctx.TID = 20
		}
	}
	for _, mode := range []Mode{ModeFlow, ModeContext} {
		assertSameComponents(t, "thread reuse "+mode.String(),
			Partition(reuse, mode), PartitionParallel(reuse, mode, 4))
	}

	inert := twoRequests()[:6]
	noise := mk(99, activity.Receive, 2500000, "web", 10, "10.0.0.99", "10.0.0.1", 6000, 22, 64)
	inert = append(inert[:2:2], append([]*activity.Activity{noise}, inert[2:]...)...)
	assertSameComponents(t, "inert receive",
		Partition(inert, ModeFlow), PartitionParallel(inert, ModeFlow, 4))
}

// TestPartitionParallelEmptyAndFallback: the degenerate shapes.
func TestPartitionParallelEmptyAndFallback(t *testing.T) {
	if got := PartitionParallel(nil, ModeFlow, 8); got != nil {
		t.Fatalf("empty trace: %v", got)
	}
	// Below the size threshold the sequential path runs; output contract
	// is identical either way.
	tr := twoRequests()
	assertSameComponents(t, "fallback", Partition(tr, ModeFlow), PartitionParallel(tr, ModeFlow, 8))
}

func BenchmarkPartition(b *testing.B) {
	trace := classifiedTrace(b, 300, 0.1, 8)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Partition(trace, ModeFlow)
		}
	})
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				PartitionParallel(trace, ModeFlow, workers)
			}
		})
	}
}

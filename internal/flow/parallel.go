package flow

import (
	"sync"

	"repro/internal/activity"
)

// PartitionParallel is Partition with the per-host scans fanned out over
// a worker pool — the partition stage was a single-threaded union-find
// scan worth ~30% of single-core pipeline time. Both entry points run
// partitionHosts, so the output is byte-identical by construction:
// same component sets, same member order, same component order
// (TestPartitionParallelEquivalence pins it against scheduling).
// workers <= 1 or a tiny trace goes straight to the one-goroutine path.
//
// Why per-host scans compose exactly (the reason partitionHosts can be
// the single definition for both the sequential and concurrent paths):
//
//   - Contexts are host-local (a Context carries its host), so epoch and
//     context chains never span hosts: each host's scan owns its
//     contexts completely.
//   - Channels are the only cross-host links. A sequential interning
//     pre-pass gives every connection one dense id (both directions
//     share it) and collects the global sendful bit; each scan maps the
//     ids it touches onto host-local union-find nodes, and the merge
//     pass unions every host's local node for the same id — closing the
//     relation exactly as a single global scan would.
//   - ModeFlow's epoch-break connectivity checks see less in a
//     host-local view than a global scan would mid-flight, but every
//     non-reuse branch unions the fresh epoch with the activity's
//     channel, so wherever the views could disagree both candidate nodes
//     are connected through that channel and the final closure — hence
//     the component sets — is unchanged. The correlator-level
//     equivalence suites (TestParallelEquivalence,
//     TestParallelSessionEquivalence) pin the semantics end to end.
func PartitionParallel(trace []*activity.Activity, mode Mode, workers int) []Component {
	if len(trace) == 0 {
		return nil
	}
	if workers <= 1 || len(trace) < parallelMinTrace {
		return Partition(trace, mode)
	}
	byHost, hosts := splitHosts(trace)
	if workers > len(hosts) {
		workers = len(hosts)
	}
	return partitionHosts(byHost, hosts, mode, workers)
}

// parallelMinTrace is the trace size below which the per-host fan-out
// costs more than it saves (goroutine setup and the forest merge); a var
// so tests can force the parallel path on small fixtures.
var parallelMinTrace = 4096

// partitionHosts is the single definition of the batch partition: both
// Partition (workers = 1) and PartitionParallel run it, so the scan's
// state machine cannot drift between the sequential and concurrent
// paths — the same role Correlator.drive plays for the hot loop.
func partitionHosts(byHost map[activity.Sym][]*activity.Activity, hosts []activity.Sym, mode Mode, workers int) []Component {
	// Interning pre-pass (sequential): every directed channel gets a
	// dense direction id; the two directions of one connection get
	// dirID and dirID^1, so dirID>>1 is the connection id the union-find
	// shards on, while the sendful bit ("did this direction ever carry a
	// SEND/END?") stays per direction, exactly as the engine's mmap sees
	// it. This is the only pass that hashes Channel structs; the scans
	// work on plain int32 ids. dirIDs is host-major aligned with the
	// logs.
	total := 0
	for _, h := range hosts {
		total += len(byHost[h])
	}
	ids := make(map[activity.ChanKey]int32, total/4)
	var sendful []bool // indexed by direction id
	dirIDs := make(map[activity.Sym][]int32, len(hosts))
	for _, h := range hosts {
		log := byHost[h]
		hostIDs := make([]int32, len(log))
		for j, a := range log {
			id, ok := ids[a.ChanK]
			if !ok {
				if rid, ok := ids[a.ChanK.Reverse()]; ok {
					id = rid ^ 1
				} else {
					id = int32(len(sendful))
					sendful = append(sendful, false, false)
				}
				ids[a.ChanK] = id
			}
			if a.Type == activity.Send || a.Type == activity.End {
				sendful[id] = true
			}
			hostIDs[j] = id
		}
		dirIDs[h] = hostIDs
	}

	// The mode scan per host, over a host-local union-find.
	scans := make([]*hostScan, len(hosts))
	if workers <= 1 {
		for i := range hosts {
			scans[i] = scanHost(byHost[hosts[i]], dirIDs[hosts[i]], sendful, mode)
		}
	} else {
		runHosts(workers, len(hosts), func(i int) {
			scans[i] = scanHost(byHost[hosts[i]], dirIDs[hosts[i]], sendful, mode)
		})
	}

	// Merge (always sequential): one global union-find over the disjoint
	// local forests; every host's local node for the same connection id
	// unions across hosts.
	offsets := make([]int32, len(hosts))
	nodes := int32(0)
	for i, hs := range scans {
		offsets[i] = nodes
		nodes += int32(len(hs.d.parent))
	}
	var d dsu
	d.parent = make([]int32, nodes)
	d.rank = make([]int8, nodes)
	for i, hs := range scans {
		// Graft the local forests: local parent pointers become global
		// parent pointers (ranks carry over — each tree is unchanged).
		off := offsets[i]
		for local, parent := range hs.d.parent {
			d.parent[off+int32(local)] = off + parent
		}
		copy(d.rank[off:], hs.d.rank)
	}
	chanImage := make([]int32, len(sendful)/2) // connection id -> first global node
	for i := range chanImage {
		chanImage[i] = -1
	}
	for i, hs := range scans {
		off := offsets[i]
		for id, local := range hs.chanLocal {
			if local < 0 {
				continue // connection never touched by this host
			}
			if prev := chanImage[id]; prev >= 0 {
				d.union(prev, off+local)
			} else {
				chanImage[id] = off + local
			}
		}
	}

	// Final grouping over the deterministic host-major scan order.
	scan := make([]*activity.Activity, 0, total)
	roots := make([]int32, 0, total)
	for i, h := range hosts {
		hs := scans[i]
		off := offsets[i]
		for j, a := range byHost[h] {
			scan = append(scan, a)
			roots = append(roots, d.find(off+hs.assign[j]))
		}
	}
	return group(scan, func(i int) int32 { return roots[i] })
}

// hostScan is one host's local partition state. chanLocal maps global
// connection ids to this host's local union-find node (-1 = untouched).
type hostScan struct {
	d         dsu
	chanLocal []int32
	assign    []int32
}

// scanHost runs the mode scan over one node log with purely local state.
// dirIDs is the log-aligned direction id per activity (dirID>>1 is the
// connection id); sendful is the global per-direction bit (both
// read-only here, shared across the concurrent scans).
func scanHost(log []*activity.Activity, dirIDs []int32, sendful []bool, mode Mode) *hostScan {
	hs := &hostScan{chanLocal: make([]int32, len(sendful)/2), assign: make([]int32, len(log))}
	for i := range hs.chanLocal {
		hs.chanLocal[i] = -1
	}
	chNode := func(dirID int32) int32 {
		n := hs.chanLocal[dirID>>1]
		if n < 0 {
			n = hs.d.node()
			hs.chanLocal[dirID>>1] = n
		}
		return n
	}

	switch mode {
	case ModeContext:
		ctxNode := make(map[activity.CtxKey]int32)
		for j, a := range log {
			ch := chNode(dirIDs[j])
			cn, ok := ctxNode[a.CtxK]
			if !ok {
				cn = hs.d.node()
				ctxNode[a.CtxK] = cn
			}
			hs.d.union(cn, ch)
			hs.assign[j] = cn
		}
	default: // ModeFlow
		epoch := make(map[activity.CtxKey]int32)
		for j, a := range log {
			ch := chNode(dirIDs[j])
			var n int32
			switch a.Type {
			case activity.Begin:
				e, ok := epoch[a.CtxK]
				if ok && hs.d.find(e) == hs.d.find(ch) {
					n = e
				} else {
					e = hs.d.node()
					hs.d.union(e, ch)
					epoch[a.CtxK] = e
					n = e
				}
			case activity.Receive:
				e, ok := epoch[a.CtxK]
				switch {
				case ok && hs.d.find(e) == hs.d.find(ch):
					n = e
				case !sendful[dirIDs[j]]:
					// Inert arrival: no SEND exists anywhere on this
					// direction, so file it under its connection and
					// leave the context's epoch untouched.
					n = ch
				default:
					e = hs.d.node()
					hs.d.union(e, ch)
					epoch[a.CtxK] = e
					n = e
				}
			default: // Send, End, MaxType
				e, ok := epoch[a.CtxK]
				if !ok {
					e = hs.d.node()
					epoch[a.CtxK] = e
				}
				hs.d.union(e, ch)
				n = e
			}
			hs.assign[j] = n
		}
	}
	return hs
}

// runHosts fans fn out over [0, n) with at most workers goroutines.
func runHosts(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

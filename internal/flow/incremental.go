package flow

import (
	"repro/internal/activity"
)

// Incremental is the online variant of Partition: it assigns each pushed
// activity to a flow component *as it arrives*, merging components
// whenever a TCP connection or a context epoch links them. It powers the
// sharded push-mode Session (internal/core): the session keys its
// per-component buffers on the roots returned by Add and fuses them in
// the OnMerge callback.
//
// The closure computed is the same relation Partition closes over, with
// one deliberate difference in ModeFlow: the batch scan can consult the
// whole trace to see whether a directed channel ever carries a SEND (the
// "inert receive" refinement — a RECEIVE on a send-less direction files
// under its connection without touching the context's epoch). Online, a
// RECEIVE may arrive before the SEND logged on its peer host, so the
// send-less case cannot be distinguished from a not-yet-seen SEND. Add
// therefore joins such a RECEIVE to both its connection and the context's
// current epoch. That can only *coarsen* components relative to the batch
// partition — extra unions never remove closure links — so per-component
// correlation stays exact; shards are merely sometimes larger.
//
// Determinism: for a fixed sequence of Add calls the assignments, merges
// and final roots are fully deterministic. Add is not safe for concurrent
// use; the caller serialises (the Session push path is single-goroutine).
//
// Memory: the interning maps and union-find grow with every distinct
// connection and epoch ever seen and are never pruned — bounded for the
// replay/rolling-restart deployments the sharded Session targets (one
// Session per agent generation), unbounded for a single Session fed
// forever. Continuous operation needs session cycling today; pruning
// dispatched components' entries is a ROADMAP follow-up alongside
// time-driven sealing, which the same deployments would need first.
// chanInfo is the interned view of one directed channel: the union-find
// node shared by both directions of the connection, and whether any
// SEND/END was logged in this direction so far (a RECEIVE on a send-less
// direction is inert — the engine can never match it).
type chanInfo struct {
	node    int32
	sendful bool
}

type Incremental struct {
	mode    Mode
	d       dsu
	dir     map[activity.Channel]*chanInfo
	epoch   map[activity.Context]int32 // ModeFlow: current request epoch
	ctxNode map[activity.Context]int32 // ModeContext: whole-lifetime node
	onMerge func(winner, loser int32)
}

// NewIncremental returns an empty incremental partitioner. onMerge, when
// non-nil, fires synchronously inside Add whenever two distinct
// components fuse: the loser root's bookkeeping must be folded into the
// winner root's before Add returns.
func NewIncremental(mode Mode, onMerge func(winner, loser int32)) *Incremental {
	return &Incremental{
		mode:    mode,
		dir:     make(map[activity.Channel]*chanInfo),
		epoch:   make(map[activity.Context]int32),
		ctxNode: make(map[activity.Context]int32),
		onMerge: onMerge,
	}
}

func (in *Incremental) union(a, b int32) {
	if w, l, merged := in.d.union(a, b); merged && in.onMerge != nil {
		in.onMerge(w, l)
	}
}

// channel interns the activity's directed channel, sharing one union-find
// node across both directions of the connection, and records whether this
// direction has carried a SEND/END so far.
func (in *Incremental) channel(a *activity.Activity) *chanInfo {
	ci := in.dir[a.Chan]
	if ci == nil {
		if rev := in.dir[a.Chan.Reverse()]; rev != nil {
			ci = &chanInfo{node: rev.node}
		} else {
			ci = &chanInfo{node: in.d.node()}
		}
		in.dir[a.Chan] = ci
	}
	if a.Type == activity.Send || a.Type == activity.End {
		ci.sendful = true
	}
	return ci
}

// Add assigns one classified activity to its flow component and returns
// the component's current union-find root. Roots are invalidated by later
// merges; OnMerge reports every (winner, loser) transition, and Root
// re-resolves a stale value.
func (in *Incremental) Add(a *activity.Activity) int32 {
	ci := in.channel(a)
	ch := ci.node

	if in.mode == ModeContext {
		cn, ok := in.ctxNode[a.Ctx]
		if !ok {
			cn = in.d.node()
			in.ctxNode[a.Ctx] = cn
		}
		in.union(cn, ch)
		return in.d.find(cn)
	}

	// ModeFlow: scope the context relation to request epochs, exactly as
	// the batch scan does, except for the online inert-receive treatment
	// documented on the type.
	var n int32
	switch a.Type {
	case activity.Begin:
		e, ok := in.epoch[a.Ctx]
		if ok && in.d.find(e) == in.d.find(ch) {
			n = e
		} else {
			e = in.d.node()
			in.union(e, ch)
			in.epoch[a.Ctx] = e
			n = e
		}
	case activity.Receive:
		e, ok := in.epoch[a.Ctx]
		switch {
		case ok && in.d.find(e) == in.d.find(ch):
			n = e
		case !ci.sendful:
			// No SEND seen on this direction *yet*. The batch scan would
			// file a provably send-less RECEIVE under its connection
			// alone; online the SEND may simply not have been pushed, so
			// join the connection to the current epoch without breaking
			// it — coarser, never under-merged.
			if !ok {
				e = in.d.node()
				in.epoch[a.Ctx] = e
			}
			in.union(e, ch)
			n = e
		default:
			e = in.d.node()
			in.union(e, ch)
			in.epoch[a.Ctx] = e
			n = e
		}
	default: // Send, End, MaxType
		e, ok := in.epoch[a.Ctx]
		if !ok {
			e = in.d.node()
			in.epoch[a.Ctx] = e
		}
		in.union(e, ch)
		n = e
	}
	return in.d.find(n)
}

// Root resolves a component id previously returned by Add to its current
// root, following any merges since.
func (in *Incremental) Root(n int32) int32 { return in.d.find(n) }

// Components returns the number of union-find nodes allocated so far —
// an upper bound on live components, for diagnostics.
func (in *Incremental) Components() int { return len(in.d.parent) }

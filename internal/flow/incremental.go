package flow

import (
	"time"

	"repro/internal/activity"
)

// Incremental is the online variant of Partition: it assigns each pushed
// activity to a flow component *as it arrives*, merging components
// whenever a TCP connection or a context epoch links them. It powers the
// sharded push-mode Session (internal/core): the session keys its
// per-component buffers on the roots returned by Add and fuses them in
// the OnMerge callback.
//
// The closure computed is the same relation Partition closes over, with
// one deliberate difference in ModeFlow: the batch scan can consult the
// whole trace to see whether a directed channel ever carries a SEND (the
// "inert receive" refinement — a RECEIVE on a send-less direction files
// under its connection without touching the context's epoch). Online, a
// RECEIVE may arrive before the SEND logged on its peer host, so the
// send-less case cannot be distinguished from a not-yet-seen SEND. Add
// therefore joins such a RECEIVE to both its connection and the context's
// current epoch. That can only *coarsen* components relative to the batch
// partition — extra unions never remove closure links — so per-component
// correlation stays exact; shards are merely sometimes larger.
//
// Determinism: for a fixed sequence of Add calls the assignments, merges
// and final roots are fully deterministic. Add is not safe for concurrent
// use; the caller serialises (the Session push path is single-goroutine).
//
// Add upholds the package's channel-closure guarantee (see the package
// doc): every branch below either files the activity under its
// connection's node or unions the epoch/context node with it, so a
// ChanKey never splits across live components — the invariant the
// shard-aware exact is_noise predicate relies on, fuzzed by
// TestChanKeyNeverSplits.
//
// Memory: the interning maps grow with every distinct connection and
// epoch seen — unbounded for a single Session fed forever — unless the
// caller retires dispatched components with Seal and Prune (tracking
// enabled via EnablePruning). Seal tombstones a component's root: a
// later activity resolving to it (a "late link") is counted in
// LateLinks and detached onto a fresh component instead of resurrecting
// the dispatched shard. Prune then deletes the component's
// dir/epoch/ctxNode entries, so the maps stay bounded by *open* (plus
// sealed-but-unpruned) components. The union-find parent array itself
// still grows one slot per node — a few bytes per connection, accepted;
// the maps and their keys were the leak.
type Incremental struct {
	mode    Mode
	d       dsu
	dir     map[activity.ChanKey]chanInfo
	epoch   map[activity.CtxKey]int32 // ModeFlow: current request epoch
	ctxNode map[activity.CtxKey]int32 // ModeContext: whole-lifetime node
	onMerge func(winner, loser int32)

	keys       map[int32]*compKeys // root -> keys for Prune; nil = untracked
	tombstones map[int32]struct{}  // sealed roots: late links detach
	scheduled  []pendingPrune      // prunes deferred to a future clock
	keyPool    []*compKeys         // recycled reverse-index entries
	lateLinks  int
	pruned     int
}

// pendingPrune is one sealed root awaiting its deferred prune: freed once
// the caller's activity clock reaches at (see SchedulePrune).
type pendingPrune struct {
	root int32
	at   time.Duration
}

// chanInfo is the interned view of one directed channel: the union-find
// node shared by both directions of the connection, and whether any
// SEND/END was logged in this direction so far (a RECEIVE on a send-less
// direction is inert — the engine can never match it). Stored by value in
// dir (read-modify-write), so interning a direction allocates nothing.
type chanInfo struct {
	node    int32
	sendful bool
}

// compKeys is the reverse index Prune needs: every map key ever
// associated with a component's root, folded across merges. Entries may
// go stale (a context's epoch moves to another root); Prune re-resolves
// each key before deleting.
type compKeys struct {
	chans []activity.ChanKey
	ctxs  []activity.CtxKey
}

// NewIncremental returns an empty incremental partitioner. onMerge, when
// non-nil, fires synchronously inside Add whenever two distinct
// components fuse: the loser root's bookkeeping must be folded into the
// winner root's before Add returns.
func NewIncremental(mode Mode, onMerge func(winner, loser int32)) *Incremental {
	return &Incremental{
		mode:       mode,
		dir:        make(map[activity.ChanKey]chanInfo),
		epoch:      make(map[activity.CtxKey]int32),
		ctxNode:    make(map[activity.CtxKey]int32),
		onMerge:    onMerge,
		tombstones: make(map[int32]struct{}),
	}
}

// EnablePruning turns on the reverse index Prune needs to free a
// component's map entries. Must be called before the first Add: the
// index is complete only if every key was recorded from the start.
// Callers that never retire components (close-driven sessions, batch
// scans) skip it and pay no per-key tracking cost.
func (in *Incremental) EnablePruning() {
	in.keys = make(map[int32]*compKeys)
}

// union joins two nodes' sets, folding the loser root's reverse-index
// keys into the winner's before the user merge callback fires.
func (in *Incremental) union(a, b int32) {
	if w, l, merged := in.d.union(a, b); merged {
		if lk := in.keys[l]; lk != nil {
			if wk := in.keys[w]; wk != nil {
				wk.chans = append(wk.chans, lk.chans...)
				wk.ctxs = append(wk.ctxs, lk.ctxs...)
				in.recycleKeys(lk)
			} else {
				in.keys[w] = lk
			}
			delete(in.keys, l)
		}
		if in.onMerge != nil {
			in.onMerge(w, l)
		}
	}
}

// sealed reports whether the node currently resolves to a tombstoned
// (sealed/dispatched) root.
func (in *Incremental) sealed(n int32) bool {
	_, ok := in.tombstones[in.d.find(n)]
	return ok
}

func (in *Incremental) rootKeys(n int32) *compKeys {
	r := in.d.find(n)
	k := in.keys[r]
	if k == nil {
		if p := len(in.keyPool); p > 0 {
			k = in.keyPool[p-1]
			in.keyPool = in.keyPool[:p-1]
		} else {
			k = &compKeys{}
		}
		in.keys[r] = k
	}
	return k
}

// recycleKeys returns a detached reverse-index entry to the pool with its
// capacity intact, so a continuous session's steady churn of short-lived
// components stops allocating per-component key tracking. The pool is
// capped: beyond it, retiring a large entry releases its memory instead
// of pinning it.
func (in *Incremental) recycleKeys(k *compKeys) {
	if len(in.keyPool) >= 64 {
		return
	}
	k.chans = k.chans[:0]
	k.ctxs = k.ctxs[:0]
	in.keyPool = append(in.keyPool, k)
}

func (in *Incremental) noteChan(ch activity.ChanKey, n int32) {
	if in.keys == nil {
		return
	}
	k := in.rootKeys(n)
	k.chans = append(k.chans, ch)
}

func (in *Incremental) noteCtx(ctx activity.CtxKey, n int32) {
	if in.keys == nil {
		return
	}
	k := in.rootKeys(n)
	k.ctxs = append(k.ctxs, ctx)
}

// channel interns the activity's directed channel, sharing one union-find
// node across both directions of the connection, and records whether this
// direction has carried a SEND/END so far. late reports that an existing
// entry resolved to a sealed root and was detached onto a fresh node.
func (in *Incremental) channel(a *activity.Activity) (ci chanInfo, late bool) {
	ci, ok := in.dir[a.ChanK]
	if ok && in.sealed(ci.node) {
		delete(in.dir, a.ChanK)
		ok, late = false, true
	}
	if !ok {
		revKey := a.ChanK.Reverse()
		rev, revOK := in.dir[revKey]
		if revOK && in.sealed(rev.node) {
			delete(in.dir, revKey)
			revOK, late = false, true
		}
		if revOK {
			ci = chanInfo{node: rev.node}
		} else {
			ci = chanInfo{node: in.d.node()}
		}
		in.dir[a.ChanK] = ci
		in.noteChan(a.ChanK, ci.node)
	}
	if (a.Type == activity.Send || a.Type == activity.End) && !ci.sendful {
		ci.sendful = true
		in.dir[a.ChanK] = ci
	}
	return ci, late
}

// Add assigns one classified activity to its flow component and returns
// the component's current union-find root. Roots are invalidated by later
// merges; OnMerge reports every (winner, loser) transition, and Root
// re-resolves a stale value.
//
// An activity whose interned channel or context resolves to a Sealed root
// is a late link: it is counted in LateLinks and detached — the stale
// entries are re-interned on fresh nodes — so it starts (or joins) a
// fresh component and the dispatched one is never returned again.
func (in *Incremental) Add(a *activity.Activity) int32 {
	if !a.CtxK.Bound() {
		// Hand-built records reach the partitioner unbound; session-owned
		// records arrive with dense keys already filled.
		activity.Bind(a)
	}
	ci, late := in.channel(a)
	ch := ci.node

	if in.mode == ModeContext {
		cn, ok := in.ctxNode[a.CtxK]
		if ok && in.sealed(cn) {
			delete(in.ctxNode, a.CtxK)
			ok = false
			// A BEGIN on a retired thread is a new request reusing it —
			// normal operation, detached silently. Anything else is the
			// context continuing work the seal cut off: a straggler.
			if a.Type != activity.Begin {
				late = true
			}
		}
		if !ok {
			cn = in.d.node()
			in.ctxNode[a.CtxK] = cn
			in.noteCtx(a.CtxK, cn)
		}
		in.union(cn, ch)
		if late {
			in.lateLinks++
		}
		return in.d.find(cn)
	}

	// ModeFlow: scope the context relation to request epochs, exactly as
	// the batch scan does, except for the online inert-receive treatment
	// documented on the type.
	//
	// A sealed current epoch matters only on the paths that would union
	// into it (the channel() detach guarantees ch is never sealed, so the
	// find(e) == find(ch) reuse cases can never pick a sealed epoch); the
	// paths that replace the epoch anyway drop the stale reference for
	// free and are NOT late links — a new request beginning on a retired
	// thread is normal operation, not a straggler.
	e, ok := in.epoch[a.CtxK]
	var n int32
	switch a.Type {
	case activity.Begin:
		if ok && in.d.find(e) == in.d.find(ch) {
			n = e
		} else {
			e = in.d.node()
			in.union(e, ch)
			in.epoch[a.CtxK] = e
			in.noteCtx(a.CtxK, e)
			n = e
		}
	case activity.Receive:
		switch {
		case ok && in.d.find(e) == in.d.find(ch):
			n = e
		case !ci.sendful:
			// No SEND seen on this direction *yet*. The batch scan would
			// file a provably send-less RECEIVE under its connection
			// alone; online the SEND may simply not have been pushed, so
			// join the connection to the current epoch without breaking
			// it — coarser, never under-merged.
			if ok && in.sealed(e) {
				// Fresh connection, retired epoch: a reused idle thread
				// starting new work. Joining the old epoch was only the
				// online coarsening, so detach silently — not a late
				// link (a true per-request straggler arrives on the
				// sealed component's own connection and is counted by
				// the channel detach above).
				delete(in.epoch, a.CtxK)
				ok = false
			}
			if !ok {
				e = in.d.node()
				in.epoch[a.CtxK] = e
				in.noteCtx(a.CtxK, e)
			}
			in.union(e, ch)
			n = e
		default:
			e = in.d.node()
			in.union(e, ch)
			in.epoch[a.CtxK] = e
			in.noteCtx(a.CtxK, e)
			n = e
		}
	default: // Send, End, MaxType
		if ok && in.sealed(e) {
			// The context keeps sending after its epoch's component was
			// dispatched: work the forced seal cut mid-request — the CAG
			// is split, so this IS a late link.
			delete(in.epoch, a.CtxK)
			ok, late = false, true
		}
		if !ok {
			e = in.d.node()
			in.epoch[a.CtxK] = e
			in.noteCtx(a.CtxK, e)
		}
		in.union(e, ch)
		n = e
	}
	if late {
		in.lateLinks++
	}
	return in.d.find(n)
}

// Seal tombstones a component's root: the caller has dispatched the
// component and its buffers must never grow again. From now on an
// activity resolving to this root is a late link — counted, detached
// onto a fresh component — and the root is never returned by Add again.
// Seal is idempotent; Prune frees the component's map entries later.
func (in *Incremental) Seal(root int32) {
	in.tombstones[in.d.find(root)] = struct{}{}
}

// Prune deletes a sealed component's interning entries — its share of
// dir/epoch/ctxNode — and retires the tombstone, bounding the maps by
// the components not yet pruned. Requires EnablePruning before the
// first Add (without the key index Prune only drops the tombstone).
// Keys that moved on (an epoch re-opened under a live root, or an entry
// already detached by a late link) are left alone. After Prune the
// component is indistinguishable from never having been seen: a
// returning connection starts a fresh component without incrementing
// LateLinks, which is why callers should keep the Seal→Prune window
// wide enough to catch the stragglers they care about (the sharded
// Session prunes one seal horizon after dispatch).
func (in *Incremental) Prune(root int32) {
	root = in.d.find(root)
	if k := in.keys[root]; k != nil {
		for _, ch := range k.chans {
			if ci, ok := in.dir[ch]; ok && in.d.find(ci.node) == root {
				delete(in.dir, ch)
			}
		}
		for _, cx := range k.ctxs {
			if e, ok := in.epoch[cx]; ok && in.d.find(e) == root {
				delete(in.epoch, cx)
			}
			if cn, ok := in.ctxNode[cx]; ok && in.d.find(cn) == root {
				delete(in.ctxNode, cx)
			}
		}
		delete(in.keys, root)
		in.recycleKeys(k)
	}
	// Every entry resolving to the root is gone, so Add can never reach
	// the tombstone again — drop it too, keeping ALL bookkeeping bounded.
	delete(in.tombstones, root)
	in.pruned++
}

// SchedulePrune defers a sealed root's Prune until the caller's activity
// clock reaches at: call PruneBefore with the advancing clock to execute
// the backlog. Keeping the Seal→Prune window open until at preserves
// late-link detection for exactly as long as the caller's sender-liveness
// bounds admit stragglers — with per-host seal horizons the window is per
// component, so deadlines are not monotone and the queue is scanned, not
// popped. The caller must have Sealed the root already.
func (in *Incremental) SchedulePrune(root int32, at time.Duration) {
	in.scheduled = append(in.scheduled, pendingPrune{root: in.d.find(root), at: at})
}

// PruneBefore prunes every scheduled root whose deadline lies strictly
// before clock, returning how many were freed. The scan is linear in the
// scheduled backlog, which the caller's horizons keep bounded by
// recently-dispatched components.
func (in *Incremental) PruneBefore(clock time.Duration) int {
	if len(in.scheduled) == 0 {
		return 0
	}
	kept := in.scheduled[:0]
	n := 0
	for _, p := range in.scheduled {
		if p.at < clock {
			in.Prune(p.root)
			n++
		} else {
			kept = append(kept, p)
		}
	}
	in.scheduled = kept
	return n
}

// Root resolves a component id previously returned by Add to its current
// root, following any merges since.
func (in *Incremental) Root(n int32) int32 { return in.d.find(n) }

// Components returns the number of union-find nodes allocated so far —
// an upper bound on live components, for diagnostics.
func (in *Incremental) Components() int { return len(in.d.parent) }

// LateLinks returns how many added activities genuinely linked to a
// sealed (dispatched) component — arrived on one of its connections, or
// continued its context mid-request — and were detached onto a fresh
// component: each a correlation the forced-seal tradeoff gave up. A new
// request merely *beginning* on a reused idle thread (or a fresh
// connection touching a retired epoch through the online coarsening) is
// detached without being counted; it never belonged to the dispatched
// work.
func (in *Incremental) LateLinks() int { return in.lateLinks }

// Pruned returns how many components have been pruned.
func (in *Incremental) Pruned() int { return in.pruned }

// Sizes returns the interning map populations (directed channels, flow
// epochs, context nodes) — the quantities Prune keeps bounded by unpruned
// components.
func (in *Incremental) Sizes() (dirs, epochs, ctxNodes int) {
	return len(in.dir), len(in.epoch), len(in.ctxNode)
}

package flow

import (
	"testing"
	"time"

	"repro/internal/activity"
)

// mk builds one activity for the hand-written partition fixtures.
func mk(id int64, typ activity.Type, ts time.Duration, host string, tid int, src, dst string, srcPort, dstPort int, size int64) *activity.Activity {
	return &activity.Activity{
		ID:        id,
		Type:      typ,
		Timestamp: ts,
		Ctx:       activity.Context{Host: host, Program: "p", PID: 1, TID: tid},
		Chan: activity.Channel{
			Src: activity.Endpoint{IP: src, Port: srcPort},
			Dst: activity.Endpoint{IP: dst, Port: dstPort},
		},
		Size:  size,
		ReqID: -1, MsgID: -1,
	}
}

// twoRequests builds two fully independent requests: client→web BEGIN,
// web→app SEND/RECEIVE, app→web reply, web→client END, on distinct
// connections and distinct worker threads.
func twoRequests() []*activity.Activity {
	var tr []*activity.Activity
	for r := 0; r < 2; r++ {
		base := time.Duration(r) * time.Second
		cp := 40000 + r // client ephemeral port
		wp := 50000 + r // web ephemeral port toward app
		wtid := 10 + r
		atid := 20 + r
		tr = append(tr,
			mk(int64(r*10+0), activity.Begin, base+1*time.Millisecond, "web", wtid, "10.0.0.9", "10.0.0.1", cp, 80, 100),
			mk(int64(r*10+1), activity.Send, base+2*time.Millisecond, "web", wtid, "10.0.0.1", "10.0.0.2", wp, 8009, 80),
			mk(int64(r*10+2), activity.Receive, base+3*time.Millisecond, "app", atid, "10.0.0.1", "10.0.0.2", wp, 8009, 80),
			mk(int64(r*10+3), activity.Send, base+4*time.Millisecond, "app", atid, "10.0.0.2", "10.0.0.1", 8009, wp, 300),
			mk(int64(r*10+4), activity.Receive, base+5*time.Millisecond, "web", wtid, "10.0.0.2", "10.0.0.1", 8009, wp, 300),
			mk(int64(r*10+5), activity.End, base+6*time.Millisecond, "web", wtid, "10.0.0.1", "10.0.0.9", 80, cp, 400),
		)
	}
	return tr
}

func TestPartitionIndependentRequests(t *testing.T) {
	tr := twoRequests()
	for _, mode := range []Mode{ModeFlow, ModeContext} {
		comps := Partition(tr, mode)
		if len(comps) != 2 {
			t.Fatalf("mode %s: got %d components, want 2", mode, len(comps))
		}
		for i, c := range comps {
			if len(c.Activities) != 6 {
				t.Fatalf("mode %s: component %d has %d activities, want 6", mode, i, len(c.Activities))
			}
		}
		if comps[0].MinTimestamp >= comps[1].MinTimestamp {
			t.Fatalf("mode %s: components not ordered by min timestamp", mode)
		}
	}
}

// TestPartitionThreadReuse is the case the two modes disagree on: the same
// app thread serves both requests (pool reuse). ModeContext chains them
// into one component; ModeFlow splits them at the epoch boundary because
// the second request arrives on a connection unrelated to the first.
func TestPartitionThreadReuse(t *testing.T) {
	tr := twoRequests()
	for _, a := range tr {
		if a.Ctx.Host == "app" {
			a.Ctx.TID = 20 // one shared thread
		}
	}
	if got := Partition(tr, ModeContext); len(got) != 1 {
		t.Fatalf("ModeContext: got %d components, want 1", len(got))
	}
	if got := Partition(tr, ModeFlow); len(got) != 2 {
		t.Fatalf("ModeFlow: got %d components, want 2", len(got))
	}
}

// TestPartitionPersistentConnection: both requests reuse one web→app
// connection, so SEND/RECEIVE byte matching couples them and both modes
// must keep them together.
func TestPartitionPersistentConnection(t *testing.T) {
	tr := twoRequests()
	for _, a := range tr {
		if a.Chan.Src.Port == 50001 {
			a.Chan.Src.Port = 50000
		}
		if a.Chan.Dst.Port == 50001 {
			a.Chan.Dst.Port = 50000
		}
	}
	for _, mode := range []Mode{ModeFlow, ModeContext} {
		if got := Partition(tr, mode); len(got) != 1 {
			t.Fatalf("mode %s: got %d components, want 1", mode, len(got))
		}
	}
}

// TestPartitionInertReceiveKeepsEpoch: a noise RECEIVE (sender untraced,
// no SEND anywhere on its directed channel) lands mid-request on the
// worker's context. It must not break the request's epoch chain in
// ModeFlow — the request stays one component, and the noise files under
// its own connection.
func TestPartitionInertReceiveKeepsEpoch(t *testing.T) {
	tr := twoRequests()[:6] // one request
	noise := mk(99, activity.Receive, 2500*time.Microsecond, "web", 10, "10.0.0.99", "10.0.0.1", 6000, 22, 64)
	tr = append(tr[:2:2], append([]*activity.Activity{noise}, tr[2:]...)...)
	comps := Partition(tr, ModeFlow)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2 (request + noise)", len(comps))
	}
	// The request component holds the six real activities.
	var sizes []int
	for _, c := range comps {
		sizes = append(sizes, len(c.Activities))
	}
	if !(sizes[0] == 6 && sizes[1] == 1) && !(sizes[0] == 1 && sizes[1] == 6) {
		t.Fatalf("component sizes %v, want {6,1}", sizes)
	}
}

// TestPartitionHostRuns verifies the per-host run slicing contract:
// sorted host order, local-timestamp order within each run.
func TestPartitionHostRuns(t *testing.T) {
	comps := Partition(twoRequests(), ModeFlow)
	for _, c := range comps {
		runs := c.HostRuns()
		if len(runs) != 2 {
			t.Fatalf("got %d host runs, want 2", len(runs))
		}
		if runs[0][0].Ctx.Host != "app" || runs[1][0].Ctx.Host != "web" {
			t.Fatalf("host runs out of order: %s, %s", runs[0][0].Ctx.Host, runs[1][0].Ctx.Host)
		}
		for _, run := range runs {
			for i := 1; i < len(run); i++ {
				if run[i].Timestamp < run[i-1].Timestamp {
					t.Fatal("run not in local-timestamp order")
				}
				if run[i].Ctx.Host != run[0].Ctx.Host {
					t.Fatal("run mixes hosts")
				}
			}
		}
	}
}

func TestPartitionEmptyAndUnsorted(t *testing.T) {
	if got := Partition(nil, ModeFlow); got != nil {
		t.Fatalf("empty trace: got %v, want nil", got)
	}
	// Reversed input must still produce per-host sorted runs.
	tr := twoRequests()
	for i, j := 0, len(tr)-1; i < j; i, j = i+1, j-1 {
		tr[i], tr[j] = tr[j], tr[i]
	}
	comps := Partition(tr, ModeFlow)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	for _, c := range comps {
		for _, run := range c.HostRuns() {
			for i := 1; i < len(run); i++ {
				if run[i].Timestamp < run[i-1].Timestamp {
					t.Fatal("unsorted input not normalised")
				}
			}
		}
	}
}

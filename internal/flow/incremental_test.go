package flow

import (
	"testing"
	"time"

	"repro/internal/activity"
)

// incrementalComponents feeds a trace through Incremental in the given
// arrival order and groups activities by final root.
func incrementalComponents(trace []*activity.Activity, mode Mode) map[int32][]*activity.Activity {
	inc := NewIncremental(mode, nil)
	roots := make([]int32, len(trace))
	for i, a := range trace {
		roots[i] = inc.Add(a)
	}
	byRoot := make(map[int32][]*activity.Activity)
	for i, a := range trace {
		r := inc.Root(roots[i])
		byRoot[r] = append(byRoot[r], a)
	}
	return byRoot
}

func TestIncrementalIndependentRequests(t *testing.T) {
	for _, mode := range []Mode{ModeFlow, ModeContext} {
		comps := incrementalComponents(twoRequests(), mode)
		if len(comps) != 2 {
			t.Fatalf("mode %s: %d components, want 2", mode, len(comps))
		}
		for _, members := range comps {
			if len(members) != 6 {
				t.Fatalf("mode %s: component of %d members, want 6", mode, len(members))
			}
		}
	}
}

func TestIncrementalPersistentConnectionMerges(t *testing.T) {
	tr := twoRequests()
	for _, a := range tr {
		if a.Chan.Src.Port == 50001 {
			a.Chan.Src.Port = 50000
		}
		if a.Chan.Dst.Port == 50001 {
			a.Chan.Dst.Port = 50000
		}
	}
	for _, mode := range []Mode{ModeFlow, ModeContext} {
		if comps := incrementalComponents(tr, mode); len(comps) != 1 {
			t.Fatalf("mode %s: %d components, want 1", mode, len(comps))
		}
	}
}

func TestIncrementalThreadReuseSplitsEpochs(t *testing.T) {
	tr := twoRequests()
	for _, a := range tr {
		if a.Ctx.Host == "app" {
			a.Ctx.TID = 20
		}
	}
	if comps := incrementalComponents(tr, ModeContext); len(comps) != 1 {
		t.Fatalf("ModeContext: %d components, want 1", len(comps))
	}
	if comps := incrementalComponents(tr, ModeFlow); len(comps) != 2 {
		t.Fatalf("ModeFlow: %d components, want 2", len(comps))
	}
}

// TestIncrementalMergeCallback: two components built independently must
// fuse — with the callback reporting the (winner, loser) roots — when a
// linking activity arrives, and stale roots must resolve to the new one.
func TestIncrementalMergeCallback(t *testing.T) {
	var merges int
	inc := NewIncremental(ModeFlow, func(winner, loser int32) {
		if winner == loser {
			t.Fatal("merge reported identical roots")
		}
		merges++
	})
	tr := twoRequests()
	roots := make([]int32, len(tr))
	for i, a := range tr {
		roots[i] = inc.Add(a)
	}
	if inc.Root(roots[0]) == inc.Root(roots[6]) {
		t.Fatal("independent requests share a root")
	}
	if merges == 0 {
		t.Fatal("intra-request unions reported no merges")
	}
	// A persistent-connection reply ties request 1's web→app connection
	// to request 0's: the two components must fuse.
	before := merges
	link := mk(100, activity.Send, 7*time.Millisecond, "app", 20, "10.0.0.2", "10.0.0.1", 8009, 50000, 10)
	link.Ctx.TID = 21 // request 1's app thread
	inc.Add(link)
	if merges == before {
		t.Fatal("linking activity fired no merge callback")
	}
	if inc.Root(roots[0]) != inc.Root(roots[6]) {
		t.Fatal("linked requests do not share a root")
	}
}

// TestIncrementalOnlineReceiveNeverUnderMerges: when a RECEIVE arrives
// before its SEND (the cross-host race the batch scan never sees), the
// online partition must still keep the receive connected to both its
// connection and its context's flow — coarser than the batch partition
// is fine, finer is a correctness bug.
func TestIncrementalOnlineReceiveNeverUnderMerges(t *testing.T) {
	tr := twoRequests()[:6] // one request: BEGIN, SEND, RECEIVE, SEND, RECEIVE, END
	// Arrival order: the app-side RECEIVE (index 2) arrives before the
	// web-side SEND (index 1) that produced it.
	order := []int{0, 2, 1, 3, 4, 5}
	inc := NewIncremental(ModeFlow, nil)
	roots := make([]int32, len(tr))
	for _, i := range order {
		roots[i] = inc.Add(tr[i])
	}
	first := inc.Root(roots[order[0]])
	for _, i := range order[1:] {
		if inc.Root(roots[i]) != first {
			t.Fatalf("activity %d split from the request component", i)
		}
	}
}

// TestIncrementalSealDetachesLateLinks: an activity arriving for a
// sealed (dispatched) component must not resurrect its root — it is
// counted as a late link and detached onto a fresh component, while an
// untouched live component keeps working normally.
func TestIncrementalSealDetachesLateLinks(t *testing.T) {
	inc := NewIncremental(ModeFlow, nil)
	tr := twoRequests()
	roots := make([]int32, len(tr))
	for i, a := range tr {
		roots[i] = inc.Add(a)
	}
	sealed := inc.Root(roots[0])   // request 0
	liveRoot := inc.Root(roots[6]) // request 1
	if sealed == liveRoot {
		t.Fatal("fixture: requests share a root")
	}
	inc.Seal(sealed)

	// A straggler on request 0's web→app connection and thread.
	late := mk(100, activity.Send, 7*time.Millisecond, "web", 10, "10.0.0.1", "10.0.0.2", 50000, 8009, 80)
	got := inc.Add(late)
	if got == sealed {
		t.Fatal("late link resurrected the sealed root")
	}
	if got == liveRoot {
		t.Fatal("late link merged into an unrelated live component")
	}
	if inc.LateLinks() != 1 {
		t.Fatalf("LateLinks = %d, want 1", inc.LateLinks())
	}
	// A second straggler on the same connection joins the detached fresh
	// component, not the sealed one — the split request stays coherent.
	late2 := mk(101, activity.Send, 8*time.Millisecond, "web", 10, "10.0.0.1", "10.0.0.2", 50000, 8009, 80)
	if got2 := inc.Add(late2); inc.Root(got2) != inc.Root(got) {
		t.Fatal("stragglers split across fresh components")
	}
	// The live component still accepts activities under its own root.
	more := mk(102, activity.Send, time.Second+7*time.Millisecond, "web", 11, "10.0.0.1", "10.0.0.2", 50001, 8009, 80)
	if r := inc.Add(more); inc.Root(r) != inc.Root(liveRoot) {
		t.Fatal("live component broken by an unrelated seal")
	}
}

// TestIncrementalPruneBoundsMaps is the continuous-operation memory
// guarantee: dispatching and pruning components keeps the interning maps
// bounded by the *open* components, no matter how many connections the
// session has ever seen; and a post-prune return of a connection starts a
// fresh component instead of merging into freed state.
func TestIncrementalPruneBoundsMaps(t *testing.T) {
	for _, mode := range []Mode{ModeFlow, ModeContext} {
		inc := NewIncremental(mode, nil)
		inc.EnablePruning()
		// One request's worth of interning: 4 directed channels (2 conns
		// × 2 directions) and 2 contexts.
		const maxDirs, maxCtxs = 4, 2
		var openRoot int32 = -1
		for r := 0; r < 200; r++ {
			tr := twoRequests()[:6]
			for _, a := range tr {
				// Distinct ports/threads per round: every round is a new
				// connection the maps would otherwise remember forever.
				a.Chan.Src.Port += r * 10
				a.Chan.Dst.Port += r * 10
				a.Ctx.TID += r * 10
				a.Timestamp += time.Duration(r) * 10 * time.Millisecond
				openRoot = inc.Add(a)
			}
			inc.Seal(openRoot)
			inc.Prune(openRoot)
			dirs, epochs, ctxNodes := inc.Sizes()
			if dirs > maxDirs || epochs+ctxNodes > maxCtxs {
				t.Fatalf("mode %s round %d: maps grew past one open component: dirs=%d epochs=%d ctxNodes=%d",
					mode, r, dirs, epochs, ctxNodes)
			}
		}
		if dirs, epochs, ctxNodes := inc.Sizes(); dirs != 0 || epochs != 0 || ctxNodes != 0 {
			t.Fatalf("mode %s: maps not empty after pruning everything: %d/%d/%d", mode, dirs, epochs, ctxNodes)
		}
		if inc.Pruned() != 200 {
			t.Fatalf("mode %s: Pruned = %d, want 200", mode, inc.Pruned())
		}
		// A connection from a pruned component returning after the prune
		// is a fresh component: no merge into freed state, and (the
		// documented limit) no longer countable as a late link.
		before := inc.LateLinks()
		back := mk(999, activity.Send, time.Hour, "web", 10, "10.0.0.1", "10.0.0.2", 50000, 8009, 80)
		fresh := inc.Add(back)
		if inc.Root(fresh) == inc.Root(openRoot) {
			t.Fatal("post-prune activity merged into the pruned root")
		}
		if inc.LateLinks() != before {
			t.Fatalf("post-prune activity counted as a late link (%d -> %d)", before, inc.LateLinks())
		}
	}
}

// TestIncrementalPruneSkipsReopenedEpoch: pruning one component must not
// delete a context's epoch that has since moved on to a live component
// (the reverse index holds stale keys; Prune must re-resolve them).
func TestIncrementalPruneSkipsReopenedEpoch(t *testing.T) {
	inc := NewIncremental(ModeFlow, nil)
	inc.EnablePruning()
	tr := twoRequests()
	// Same worker thread serves both requests: the context's epoch chain
	// is split per request, so request 0's epoch key goes stale when
	// request 1 begins.
	for _, a := range tr {
		if a.Ctx.Host == "web" {
			a.Ctx.TID = 10
		}
		if a.Ctx.Host == "app" {
			a.Ctx.TID = 20
		}
	}
	var r0, r1 int32
	for i, a := range tr {
		r := inc.Add(a)
		if i == 0 {
			r0 = r
		}
		if i == 6 {
			r1 = r
		}
	}
	if inc.Root(r0) == inc.Root(r1) {
		t.Skip("fixture merged into one component; epoch-reopen case not exercised")
	}
	inc.Seal(inc.Root(r0))
	inc.Prune(inc.Root(r0))
	// Request 1's epochs must have survived: a follow-up activity on its
	// thread and connection still joins request 1's component.
	more := mk(200, activity.Send, time.Second+7*time.Millisecond, "web", 10, "10.0.0.1", "10.0.0.2", 50001, 8009, 80)
	if r := inc.Add(more); inc.Root(r) != inc.Root(r1) {
		t.Fatal("pruning request 0 severed request 1's live epoch")
	}
}

// TestIncrementalNoiseReceiveKeepsChain: a receive on a direction that
// never carries a SEND must not break the surrounding request's epoch
// chain (the batch scan files it inert; online it may merge, but the
// request must stay whole).
func TestIncrementalNoiseReceiveKeepsChain(t *testing.T) {
	tr := twoRequests()[:6]
	noise := mk(99, activity.Receive, 2500*time.Microsecond, "web", 10, "10.0.0.99", "10.0.0.1", 6000, 22, 64)
	seq := append(tr[:2:2], append([]*activity.Activity{noise}, tr[2:]...)...)
	inc := NewIncremental(ModeFlow, nil)
	roots := make([]int32, len(seq))
	for i, a := range seq {
		roots[i] = inc.Add(a)
	}
	// All six request activities share one component.
	reqRoot := inc.Root(roots[0])
	for i, a := range seq {
		if a == noise {
			continue
		}
		if inc.Root(roots[i]) != reqRoot {
			t.Fatalf("request activity %d split off", i)
		}
	}
}

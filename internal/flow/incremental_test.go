package flow

import (
	"testing"
	"time"

	"repro/internal/activity"
)

// incrementalComponents feeds a trace through Incremental in the given
// arrival order and groups activities by final root.
func incrementalComponents(trace []*activity.Activity, mode Mode) map[int32][]*activity.Activity {
	inc := NewIncremental(mode, nil)
	roots := make([]int32, len(trace))
	for i, a := range trace {
		roots[i] = inc.Add(a)
	}
	byRoot := make(map[int32][]*activity.Activity)
	for i, a := range trace {
		r := inc.Root(roots[i])
		byRoot[r] = append(byRoot[r], a)
	}
	return byRoot
}

func TestIncrementalIndependentRequests(t *testing.T) {
	for _, mode := range []Mode{ModeFlow, ModeContext} {
		comps := incrementalComponents(twoRequests(), mode)
		if len(comps) != 2 {
			t.Fatalf("mode %s: %d components, want 2", mode, len(comps))
		}
		for _, members := range comps {
			if len(members) != 6 {
				t.Fatalf("mode %s: component of %d members, want 6", mode, len(members))
			}
		}
	}
}

func TestIncrementalPersistentConnectionMerges(t *testing.T) {
	tr := twoRequests()
	for _, a := range tr {
		if a.Chan.Src.Port == 50001 {
			a.Chan.Src.Port = 50000
		}
		if a.Chan.Dst.Port == 50001 {
			a.Chan.Dst.Port = 50000
		}
	}
	for _, mode := range []Mode{ModeFlow, ModeContext} {
		if comps := incrementalComponents(tr, mode); len(comps) != 1 {
			t.Fatalf("mode %s: %d components, want 1", mode, len(comps))
		}
	}
}

func TestIncrementalThreadReuseSplitsEpochs(t *testing.T) {
	tr := twoRequests()
	for _, a := range tr {
		if a.Ctx.Host == "app" {
			a.Ctx.TID = 20
		}
	}
	if comps := incrementalComponents(tr, ModeContext); len(comps) != 1 {
		t.Fatalf("ModeContext: %d components, want 1", len(comps))
	}
	if comps := incrementalComponents(tr, ModeFlow); len(comps) != 2 {
		t.Fatalf("ModeFlow: %d components, want 2", len(comps))
	}
}

// TestIncrementalMergeCallback: two components built independently must
// fuse — with the callback reporting the (winner, loser) roots — when a
// linking activity arrives, and stale roots must resolve to the new one.
func TestIncrementalMergeCallback(t *testing.T) {
	var merges int
	inc := NewIncremental(ModeFlow, func(winner, loser int32) {
		if winner == loser {
			t.Fatal("merge reported identical roots")
		}
		merges++
	})
	tr := twoRequests()
	roots := make([]int32, len(tr))
	for i, a := range tr {
		roots[i] = inc.Add(a)
	}
	if inc.Root(roots[0]) == inc.Root(roots[6]) {
		t.Fatal("independent requests share a root")
	}
	if merges == 0 {
		t.Fatal("intra-request unions reported no merges")
	}
	// A persistent-connection reply ties request 1's web→app connection
	// to request 0's: the two components must fuse.
	before := merges
	link := mk(100, activity.Send, 7*time.Millisecond, "app", 20, "10.0.0.2", "10.0.0.1", 8009, 50000, 10)
	link.Ctx.TID = 21 // request 1's app thread
	inc.Add(link)
	if merges == before {
		t.Fatal("linking activity fired no merge callback")
	}
	if inc.Root(roots[0]) != inc.Root(roots[6]) {
		t.Fatal("linked requests do not share a root")
	}
}

// TestIncrementalOnlineReceiveNeverUnderMerges: when a RECEIVE arrives
// before its SEND (the cross-host race the batch scan never sees), the
// online partition must still keep the receive connected to both its
// connection and its context's flow — coarser than the batch partition
// is fine, finer is a correctness bug.
func TestIncrementalOnlineReceiveNeverUnderMerges(t *testing.T) {
	tr := twoRequests()[:6] // one request: BEGIN, SEND, RECEIVE, SEND, RECEIVE, END
	// Arrival order: the app-side RECEIVE (index 2) arrives before the
	// web-side SEND (index 1) that produced it.
	order := []int{0, 2, 1, 3, 4, 5}
	inc := NewIncremental(ModeFlow, nil)
	roots := make([]int32, len(tr))
	for _, i := range order {
		roots[i] = inc.Add(tr[i])
	}
	first := inc.Root(roots[order[0]])
	for _, i := range order[1:] {
		if inc.Root(roots[i]) != first {
			t.Fatalf("activity %d split from the request component", i)
		}
	}
}

// TestIncrementalNoiseReceiveKeepsChain: a receive on a direction that
// never carries a SEND must not break the surrounding request's epoch
// chain (the batch scan files it inert; online it may merge, but the
// request must stay whole).
func TestIncrementalNoiseReceiveKeepsChain(t *testing.T) {
	tr := twoRequests()[:6]
	noise := mk(99, activity.Receive, 2500*time.Microsecond, "web", 10, "10.0.0.99", "10.0.0.1", 6000, 22, 64)
	seq := append(tr[:2:2], append([]*activity.Activity{noise}, tr[2:]...)...)
	inc := NewIncremental(ModeFlow, nil)
	roots := make([]int32, len(seq))
	for i, a := range seq {
		roots[i] = inc.Add(a)
	}
	// All six request activities share one component.
	reqRoot := inc.Root(roots[0])
	for i, a := range seq {
		if a == noise {
			continue
		}
		if inc.Root(roots[i]) != reqRoot {
			t.Fatalf("request activity %d split off", i)
		}
	}
}

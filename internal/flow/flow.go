// Package flow partitions a classified activity trace into independent
// correlation components — the shard key of the concurrent correlator.
//
// Two activities can influence each other's CAG only through one of the
// engine's two index maps: mmap (keyed by the TCP channel) or cmap (keyed
// by the execution context). Closing the trace under those two relations
// yields connected components that correlate independently: running the
// sequential ranker+engine per component produces the same graphs as one
// global pass, because every cross-activity lookup stays inside a
// component.
//
// The channel relation is exact: SEND/RECEIVE byte matching (Fig. 4) is
// per directed channel, and both directions of one TCP connection belong
// together (request and reply share the socket pair), so the shard key
// normalises the endpoint pair. The context relation is where the two
// partition modes differ:
//
//   - ModeContext unions everything a context ever touches. Thread pools
//     (one JBoss thread serving many connections over its lifetime) chain
//     otherwise-unrelated requests into large components — always safe,
//     sometimes coarse.
//   - ModeFlow (the default) scopes the context relation to request
//     epochs: a context's link chain is broken whenever it starts working
//     on a message that is not connected to what it was doing before (a
//     BEGIN or RECEIVE on a channel from a different component). Thread
//     reuse across requests then no longer merges their components. This
//     matches the engine's own thread-reuse defence (the same-CAG check of
//     Fig. 3 lines 29–32): the context edge a RECEIVE would inherit from a
//     previous epoch is suppressed there too, so splitting the epochs
//     changes no graph.
//
// # The channel-closure guarantee
//
// Both partitioners — the batch Partition/PartitionParallel scan and the
// online Incremental — maintain one invariant the shard-aware Fig. 5
// is_noise predicate rests on: a ChanKey is never split across live
// components. Structurally, every directed channel and its reverse share
// one union-find node (the batch scan interns both directions to one
// dense id; Incremental files ChanK.Reverse() under the same node), and
// every branch of every scan either files the activity directly under its
// connection's node or unions the activity's epoch/context node with it —
// including the RECEIVE-before-SEND case, where the online scan joins the
// not-yet-sendful connection to the current epoch (an over-merge, never a
// split). So all SENDs that could match a RECEIVE (same ChanKey) land in
// the RECEIVE's component, and a per-shard pending/buffered-SEND lookup
// equals the global one. TestChanKeyNeverSplits fuzzes the invariant over
// random interleavings; the streaming session asserts it per push in
// debug builds (core's assertChanClosure). The only sanctioned exception
// is a sealed component: its stragglers detach onto a fresh component by
// design (late links), after the sealed shard's correlation is already
// decided.
package flow

import (
	"sort"
	"time"

	"repro/internal/activity"
	"repro/internal/ranker"
)

// Mode selects how the context relation is closed over.
type Mode int

const (
	// ModeFlow scopes context links to request epochs (finest safe
	// sharding for well-formed traces).
	ModeFlow Mode = iota
	// ModeContext unions a context's entire lifetime (coarser, robust
	// even to traces with lost epoch boundaries).
	ModeContext
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeFlow:
		return "flow"
	case ModeContext:
		return "context"
	default:
		return "unknown"
	}
}

// dsu is a union-find forest over dynamically allocated nodes.
type dsu struct {
	parent []int32
	rank   []int8
}

func (d *dsu) node() int32 {
	n := int32(len(d.parent))
	d.parent = append(d.parent, n)
	d.rank = append(d.rank, 0)
	return n
}

func (d *dsu) find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// union joins the sets of a and b. When two distinct sets merge it
// returns their previous roots as (winner, loser) — the loser's tree is
// now under the winner — so incremental callers can fuse per-component
// bookkeeping; merged is false when a and b were already one set.
func (d *dsu) union(a, b int32) (winner, loser int32, merged bool) {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return ra, ra, false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	return ra, rb, true
}

// Component is one independent shard of the trace. Activities keep each
// host's local-clock order (the order the per-node sources need).
type Component struct {
	// Activities holds the member records grouped by host in sorted host
	// order, each host run in local-timestamp order. Consumers can slice
	// per-node sources out of it by cutting at host changes — no re-sort
	// is ever needed.
	Activities []*activity.Activity
	// MinTimestamp is the earliest member timestamp — the deterministic
	// component ordering key.
	MinTimestamp time.Duration
}

// HostRuns cuts the component into its per-host runs, in sorted host
// order. Each run is one node's log slice in local-timestamp order.
func (c *Component) HostRuns() [][]*activity.Activity {
	var runs [][]*activity.Activity
	at := 0
	for i := 1; i <= len(c.Activities); i++ {
		if i == len(c.Activities) || c.Activities[i].Ctx.Host != c.Activities[at].Ctx.Host {
			runs = append(runs, c.Activities[at:i])
			at = i
		}
	}
	return runs
}

// hostSyms sorts host symbols by their interned names — the deterministic
// host order every partition variant scans in (dense keys bucket the
// hosts, strings still define the order).
func hostSyms(byHost map[activity.Sym][]*activity.Activity) []activity.Sym {
	hosts := make([]activity.Sym, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool {
		return activity.Syms.Name(hosts[i]) < activity.Syms.Name(hosts[j])
	})
	return hosts
}

// Partition splits a classified trace into independent components. The
// result is deterministic for a given input order: components are sorted
// by (earliest member timestamp, first appearance in the host-major scan),
// and members preserve per-host stable timestamp order.
//
// The scan itself lives in partitionHosts (parallel.go): contexts are
// host-local, so the trace is scanned per host and the per-host forests
// are stitched by a final union pass over the cross-host channel links.
// Partition runs those phases on one goroutine; PartitionParallel fans
// the per-host scans out over a worker pool — same code, same output.
func Partition(trace []*activity.Activity, mode Mode) []Component {
	if len(trace) == 0 {
		return nil
	}
	byHost, hosts := splitHosts(trace)
	return partitionHosts(byHost, hosts, mode, 1)
}

// splitHosts buckets a merged trace into per-host node logs in
// local-timestamp order and returns the host list sorted by name — the
// paper's step 1 (each node log sorted by its local clock). It is also
// the batch path's bind point: every record leaves with its dense keys
// filled, so the per-host scans that follow (possibly concurrent) only
// read them.
func splitHosts(trace []*activity.Activity) (map[activity.Sym][]*activity.Activity, []activity.Sym) {
	byHost := make(map[activity.Sym][]*activity.Activity)
	for _, a := range trace {
		if !a.CtxK.Bound() {
			activity.Bind(a)
		}
		byHost[a.CtxK.Host] = append(byHost[a.CtxK.Host], a)
	}
	for _, log := range byHost {
		// Node logs split from a merged trace are almost always already in
		// local order; checking is ~10× cheaper than re-sorting. The
		// fallback must be ranker.SortByTimestamp — shard-local source
		// order has to match the sequential pass exactly.
		for i := 1; i < len(log); i++ {
			if log[i].Timestamp < log[i-1].Timestamp {
				ranker.SortByTimestamp(log)
				break
			}
		}
	}
	return byHost, hostSyms(byHost)
}

// group buckets the host-major scan by final union-find root, tracking
// first-appearance order and minimum timestamp per component, and returns
// the components in deterministic (MinTimestamp, first appearance) order —
// the ordering contract every Partition variant shares.
func group(scan []*activity.Activity, rootOf func(int) int32) []Component {
	compIdx := make(map[int32]int)
	var comps []Component
	for i, a := range scan {
		root := rootOf(i)
		ci, ok := compIdx[root]
		if !ok {
			ci = len(comps)
			compIdx[root] = ci
			comps = append(comps, Component{MinTimestamp: a.Timestamp})
		}
		c := &comps[ci]
		c.Activities = append(c.Activities, a)
		if a.Timestamp < c.MinTimestamp {
			c.MinTimestamp = a.Timestamp
		}
	}

	sort.SliceStable(comps, func(i, j int) bool {
		return comps[i].MinTimestamp < comps[j].MinTimestamp
	})
	return comps
}

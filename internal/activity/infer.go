package activity

// InferIPToHost reconstructs the traced-node address map from a trace: a
// SEND logged by host H departs from one of H's addresses, and a RECEIVE
// logged by H arrives at one of H's addresses. This lets the offline tools
// consume a bare TCP_TRACE log without a topology file.
func InferIPToHost(trace []*Activity) map[string]string {
	m := make(map[string]string)
	for _, a := range trace {
		switch a.Type {
		case Send, End:
			m[a.Chan.Src.IP] = a.Ctx.Host
		case Receive, Begin:
			m[a.Chan.Dst.IP] = a.Ctx.Host
		case MaxType:
			// Sentinel; ignore.
		}
	}
	return m
}

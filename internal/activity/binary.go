package activity

import (
	"encoding/binary"
	"fmt"
	"time"
)

// The compact binary codec for TCP_TRACE records — the on-the-wire sibling
// of the text format in wire.go, used by internal/transport to frame
// batches of records between a per-host agent and the central collector.
//
// Layout (all integers varint/uvarint, strings uvarint-length-prefixed):
//
//	type      1 byte  (Begin/Send/End/Receive)
//	timestamp varint  nanoseconds (full Duration precision — the text
//	                  format truncates to µs; the binary one must not)
//	host, program     string
//	pid, tid          varint
//	src ip            string
//	src port          uvarint
//	dst ip            string
//	dst port          uvarint
//	size              varint
//	id                varint  (record ID: emission tie-breaks depend on it,
//	                  so byte-identical replay needs it on the wire)
//	req, msg          varint  (ground truth; -1 when absent)
//
// The codec is structural, not semantic: like ParseRecord it validates
// shape (type tag, string bounds, port range) and trusts content. Decode
// never reads past the given buffer and never panics on malformed input
// (FuzzBinaryDecode).

// maxBinaryString caps decoded string lengths — far above any real
// hostname/program/address, far below anything that could OOM a decoder
// fed garbage lengths.
const maxBinaryString = 1 << 12

// AppendBinary appends the binary encoding of a to buf and returns the
// extended buffer.
func AppendBinary(buf []byte, a *Activity) []byte {
	buf = append(buf, byte(a.Type))
	buf = binary.AppendVarint(buf, int64(a.Timestamp))
	buf = appendBinaryString(buf, a.Ctx.Host)
	buf = appendBinaryString(buf, a.Ctx.Program)
	buf = binary.AppendVarint(buf, int64(a.Ctx.PID))
	buf = binary.AppendVarint(buf, int64(a.Ctx.TID))
	buf = appendBinaryString(buf, a.Chan.Src.IP)
	buf = binary.AppendUvarint(buf, uint64(uint16(a.Chan.Src.Port)))
	buf = appendBinaryString(buf, a.Chan.Dst.IP)
	buf = binary.AppendUvarint(buf, uint64(uint16(a.Chan.Dst.Port)))
	buf = binary.AppendVarint(buf, a.Size)
	buf = binary.AppendVarint(buf, a.ID)
	buf = binary.AppendVarint(buf, a.ReqID)
	buf = binary.AppendVarint(buf, a.MsgID)
	return buf
}

// DecodeBinary decodes one record from the front of buf, returning the
// record and the number of bytes consumed. It errors (never panics) on
// truncated or malformed input.
func DecodeBinary(buf []byte) (*Activity, int, error) {
	a := &Activity{}
	n, err := DecodeBinaryInto(a, buf)
	if err != nil {
		return nil, 0, err
	}
	return a, n, nil
}

// DecodeBinaryInto decodes one record from the front of buf into *a
// (overwriting every field), returning the number of bytes consumed. It
// is the allocation-free decode boundary: identity strings resolve to
// their interned canonical copies (no per-record string allocation once
// the vocabulary is warm) and the dense keys come out bound, so a pooled
// record (NewRecord) can be reused across frames.
func DecodeBinaryInto(a *Activity, buf []byte) (int, error) {
	d := binDecoder{buf: buf}
	*a = Activity{}
	t := d.byte()
	if t < byte(Begin) || t > byte(Receive) {
		if d.err == nil {
			d.err = fmt.Errorf("activity: bad binary type tag %d", t)
		}
		return 0, d.err
	}
	a.Type = Type(t)
	a.Timestamp = time.Duration(d.varint())
	a.Ctx.Host, a.CtxK.Host = d.symString()
	a.Ctx.Program, a.CtxK.Prog = d.symString()
	a.Ctx.PID = int(d.varint())
	a.Ctx.TID = int(d.varint())
	a.Chan.Src.IP, a.ChanK.SrcIP = d.symString()
	a.Chan.Src.Port = int(d.port())
	a.Chan.Dst.IP, a.ChanK.DstIP = d.symString()
	a.Chan.Dst.Port = int(d.port())
	a.Size = d.varint()
	a.ID = d.varint()
	a.ReqID = d.varint()
	a.MsgID = d.varint()
	if d.err != nil {
		*a = Activity{}
		return 0, d.err
	}
	a.CtxK.PID = int32(a.Ctx.PID)
	a.CtxK.TID = int32(a.Ctx.TID)
	a.ChanK.SrcPort = int32(a.Chan.Src.Port)
	a.ChanK.DstPort = int32(a.Chan.Dst.Port)
	return d.off, nil
}

func appendBinaryString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// binDecoder is a bounds-checked cursor over one encoded record. The
// first failure sticks; every later read returns zero values.
type binDecoder struct {
	buf []byte
	off int
	err error
}

func (d *binDecoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("activity: binary record truncated or malformed at %s (offset %d)", what, d.off)
	}
}

func (d *binDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("type")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *binDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *binDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *binDecoder) port() uint64 {
	v := d.uvarint()
	if d.err == nil && v > 65535 {
		d.fail("port")
		return 0
	}
	return v
}

// symString reads a string and interns it in one step: on the hit path
// the raw bytes index the interner's map directly, so no copy of the
// string is allocated.
func (d *binDecoder) symString() (string, Sym) {
	n := d.uvarint()
	if d.err != nil {
		return "", 0
	}
	if n > maxBinaryString || int(n) > len(d.buf)-d.off {
		d.fail("string")
		return "", 0
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	sym, s := Syms.internBytes(b)
	return s, sym
}

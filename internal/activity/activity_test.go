package activity

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sample() *Activity {
	return &Activity{
		ID:        7,
		Type:      Send,
		Timestamp: 12*time.Second + 345678*time.Microsecond,
		Ctx:       Context{Host: "node1", Program: "httpd", PID: 2301, TID: 2301},
		Chan: Channel{
			Src: Endpoint{IP: "10.0.0.1", Port: 34001},
			Dst: Endpoint{IP: "10.0.0.2", Port: 8009},
		},
		Size:  512,
		ReqID: 42,
		MsgID: 9,
	}
}

func TestPriorityOrder(t *testing.T) {
	// Rule 2: BEGIN < SEND < END < RECEIVE < MAX.
	order := []Type{Begin, Send, End, Receive, MaxType}
	for i := 1; i < len(order); i++ {
		if order[i-1].Priority() >= order[i].Priority() {
			t.Fatalf("priority(%v) >= priority(%v)", order[i-1], order[i])
		}
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	for _, typ := range []Type{Begin, Send, End, Receive} {
		got, err := ParseType(typ.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != typ {
			t.Fatalf("round trip %v -> %v", typ, got)
		}
	}
	if _, err := ParseType("NOPE"); err == nil {
		t.Fatal("ParseType should reject unknown spellings")
	}
}

func TestFormatTimestamp(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want string
	}{
		{0, "0.000000"},
		{time.Microsecond, "0.000001"},
		{12*time.Second + 345678*time.Microsecond, "12.345678"},
		{-1500 * time.Millisecond, "-1.500000"},
	}
	for _, c := range cases {
		if got := FormatTimestamp(c.in); got != c.want {
			t.Errorf("FormatTimestamp(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseTimestamp(t *testing.T) {
	for _, s := range []string{"0.000000", "12.345678", "-1.500000", "3", "3.5"} {
		if _, err := ParseTimestamp(s); err != nil {
			t.Errorf("ParseTimestamp(%q) error: %v", s, err)
		}
	}
	got, err := ParseTimestamp("3.5")
	if err != nil || got != 3500*time.Millisecond {
		t.Fatalf("ParseTimestamp(3.5) = %v, %v", got, err)
	}
	if _, err := ParseTimestamp("abc"); err == nil {
		t.Fatal("ParseTimestamp should reject garbage")
	}
}

func TestRecordRoundTripWithTruth(t *testing.T) {
	a := sample()
	line := FormatRecord(a, true)
	got, err := ParseRecord(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != a.Type || got.Timestamp != a.Timestamp || got.Ctx != a.Ctx ||
		got.Chan != a.Chan || got.Size != a.Size || got.ReqID != a.ReqID || got.MsgID != a.MsgID {
		t.Fatalf("round trip mismatch:\n in: %v\nout: %v", a, got)
	}
}

func TestRecordRoundTripWithoutTruth(t *testing.T) {
	a := sample()
	line := FormatRecord(a, false)
	if strings.Contains(line, "#") {
		t.Fatalf("truth annotation leaked: %q", line)
	}
	got, err := ParseRecord(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.ReqID != -1 || got.MsgID != -1 {
		t.Fatalf("truth fields should default to -1, got req=%d msg=%d", got.ReqID, got.MsgID)
	}
}

func TestParseRecordPaperExample(t *testing.T) {
	// The paper's original format example shape.
	line := "12.345678 node1 httpd 2301 2301 SEND 10.0.0.1:34001-10.0.0.2:8009 512"
	a, err := ParseRecord(line)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ctx.Program != "httpd" || a.Chan.Dst.Port != 8009 || a.Size != 512 {
		t.Fatalf("parsed %v", a)
	}
}

func TestParseRecordErrors(t *testing.T) {
	bad := []string{
		"",
		"12.0 node1 httpd 1 1 SEND 10.0.0.1:1-10.0.0.2:2",          // missing size
		"12.0 node1 httpd x 1 SEND 10.0.0.1:1-10.0.0.2:2 10",       // bad pid
		"12.0 node1 httpd 1 1 NOPE 10.0.0.1:1-10.0.0.2:2 10",       // bad type
		"12.0 node1 httpd 1 1 SEND 10.0.0.1:1_10.0.0.2:2 10",       // bad channel
		"12.0 node1 httpd 1 1 SEND 10.0.0.1:1-10.0.0.2:2 10 extra", // extra field
	}
	for _, line := range bad {
		if _, err := ParseRecord(line); err == nil {
			t.Errorf("ParseRecord(%q) should fail", line)
		}
	}
}

func TestReadAllAssignsIDsAndSkipsBlanks(t *testing.T) {
	log := strings.Join([]string{
		"0.000001 n1 httpd 1 1 RECEIVE 10.0.0.9:5000-10.0.0.1:80 100",
		"",
		"// comment line",
		"0.000002 n1 httpd 1 1 SEND 10.0.0.1:34001-10.0.0.2:8009 200",
	}, "\n")
	as, err := ReadAll(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 {
		t.Fatalf("got %d records, want 2", len(as))
	}
	if as[0].ID != 0 || as[1].ID != 1 {
		t.Fatalf("IDs = %d,%d, want 0,1", as[0].ID, as[1].ID)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb, true)
	a := sample()
	if err := w.Write(a); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 1 {
		t.Fatalf("Count = %d", w.Count())
	}
	back, err := ReadAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Chan != a.Chan || back[0].ReqID != a.ReqID {
		t.Fatalf("round trip via writer failed: %v", back)
	}
}

func TestChannelReverse(t *testing.T) {
	ch := sample().Chan
	r := ch.Reverse()
	if r.Src != ch.Dst || r.Dst != ch.Src {
		t.Fatalf("Reverse() = %v", r)
	}
	if r.Reverse() != ch {
		t.Fatal("double reverse should be identity")
	}
}

func TestClassifier(t *testing.T) {
	c := NewClassifier(80)
	recv := &Activity{Type: Receive, Chan: Channel{
		Src: Endpoint{IP: "10.0.0.9", Port: 5123},
		Dst: Endpoint{IP: "10.0.0.1", Port: 80},
	}}
	if got := c.Classify(recv); got != Begin {
		t.Fatalf("RECEIVE to :80 = %v, want BEGIN", got)
	}
	send := &Activity{Type: Send, Chan: recv.Chan.Reverse()}
	if got := c.Classify(send); got != End {
		t.Fatalf("SEND from :80 = %v, want END", got)
	}
	inner := &Activity{Type: Send, Chan: Channel{
		Src: Endpoint{IP: "10.0.0.1", Port: 34001},
		Dst: Endpoint{IP: "10.0.0.2", Port: 8009},
	}}
	if got := c.Classify(inner); got != Send {
		t.Fatalf("inner SEND = %v, want SEND", got)
	}
	innerRecv := &Activity{Type: Receive, Chan: inner.Chan}
	if got := c.Classify(innerRecv); got != Receive {
		t.Fatalf("inner RECEIVE = %v, want RECEIVE", got)
	}
}

func TestClassifierApply(t *testing.T) {
	c := NewClassifier(80)
	as := []*Activity{
		{Type: Receive, Chan: Channel{Src: Endpoint{"10.0.0.9", 5000}, Dst: Endpoint{"10.0.0.1", 80}}},
		{Type: Send, Chan: Channel{Src: Endpoint{"10.0.0.1", 80}, Dst: Endpoint{"10.0.0.9", 5000}}},
	}
	c.Apply(as)
	if as[0].Type != Begin || as[1].Type != End {
		t.Fatalf("Apply results: %v %v", as[0].Type, as[1].Type)
	}
}

func TestCloneUntagged(t *testing.T) {
	a := sample()
	cp := a.CloneUntagged()
	if cp.ReqID != -1 || cp.MsgID != -1 {
		t.Fatal("clone should strip ground truth")
	}
	if a.ReqID != 42 {
		t.Fatal("original must not be mutated")
	}
	if cp.Chan != a.Chan || cp.Ctx != a.Ctx {
		t.Fatal("clone should preserve identifiers")
	}
}

// Property: timestamp format/parse round-trips for all microsecond-precision
// durations.
func TestPropertyTimestampRoundTrip(t *testing.T) {
	f := func(micros int64) bool {
		micros %= 1e12
		d := time.Duration(micros) * time.Microsecond
		back, err := ParseTimestamp(FormatTimestamp(d))
		return err == nil && back == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: FormatRecord/ParseRecord round-trips arbitrary activities with
// sane field values.
func TestPropertyRecordRoundTrip(t *testing.T) {
	f := func(tsMicros uint32, pid, tid uint16, sport, dport uint16, size uint32, req, msg int16) bool {
		a := &Activity{
			Type:      Receive,
			Timestamp: time.Duration(tsMicros) * time.Microsecond,
			Ctx:       Context{Host: "h", Program: "p", PID: int(pid), TID: int(tid)},
			Chan: Channel{
				Src: Endpoint{IP: "10.0.0.1", Port: int(sport)},
				Dst: Endpoint{IP: "10.0.0.2", Port: int(dport)},
			},
			Size:  int64(size),
			ReqID: int64(req),
			MsgID: int64(msg),
		}
		back, err := ParseRecord(FormatRecord(a, true))
		if err != nil {
			return false
		}
		return back.Timestamp == a.Timestamp && back.Ctx == a.Ctx && back.Chan == a.Chan &&
			back.Size == a.Size && back.ReqID == a.ReqID && back.MsgID == a.MsgID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package activity

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The TCP_TRACE wire format, §3.1 of the paper:
//
//	timestamp hostname program_name ProcessID ThreadID SEND/RECEIVE \
//	    sender_ip:port-receiver_ip:port message_size
//
// timestamps are printed as seconds.microseconds of the logging node's local
// clock. Traces produced by the simulated testbed may append an optional
// ground-truth annotation "# req=R msg=M" which real kernels would not emit;
// the parser tolerates its absence.

// FormatTimestamp renders a node-local time as seconds.microseconds.
func FormatTimestamp(ts time.Duration) string {
	micros := ts.Microseconds()
	neg := ""
	if micros < 0 {
		neg = "-"
		micros = -micros
	}
	return fmt.Sprintf("%s%d.%06d", neg, micros/1e6, micros%1e6)
}

// ParseTimestamp parses seconds.microseconds into a duration.
func ParseTimestamp(s string) (time.Duration, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	sec, frac, ok := strings.Cut(s, ".")
	if !ok {
		frac = "0"
	} else if frac == "" {
		return 0, fmt.Errorf("timestamp %q: empty fraction", s)
	}
	// The fraction must be bare digits: ParseInt alone would accept a sign
	// ("1.-5" parsing as negative microseconds) and padding would mangle it.
	for i := 0; i < len(frac); i++ {
		if frac[i] < '0' || frac[i] > '9' {
			return 0, fmt.Errorf("timestamp %q: non-digit fraction byte %q", s, frac[i])
		}
	}
	secs, err := strconv.ParseInt(sec, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("timestamp %q: %w", s, err)
	}
	for len(frac) < 6 {
		frac += "0"
	}
	if len(frac) > 6 {
		frac = frac[:6]
	}
	micros, err := strconv.ParseInt(frac, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("timestamp %q: %w", s, err)
	}
	d := time.Duration(secs)*time.Second + time.Duration(micros)*time.Microsecond
	if neg {
		d = -d
	}
	return d, nil
}

// FormatRecord renders an activity as one TCP_TRACE log line. If withTruth
// is true the ground-truth annotation is appended.
func FormatRecord(a *Activity, withTruth bool) string {
	var b strings.Builder
	b.Grow(96)
	b.WriteString(FormatTimestamp(a.Timestamp))
	b.WriteByte(' ')
	b.WriteString(a.Ctx.Host)
	b.WriteByte(' ')
	b.WriteString(a.Ctx.Program)
	b.WriteByte(' ')
	b.WriteString(strconv.Itoa(a.Ctx.PID))
	b.WriteByte(' ')
	b.WriteString(strconv.Itoa(a.Ctx.TID))
	b.WriteByte(' ')
	b.WriteString(a.Type.String())
	b.WriteByte(' ')
	b.WriteString(a.Chan.Src.IP)
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(a.Chan.Src.Port))
	b.WriteByte('-')
	b.WriteString(a.Chan.Dst.IP)
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(a.Chan.Dst.Port))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(a.Size, 10))
	if withTruth {
		b.WriteString(" # req=")
		b.WriteString(strconv.FormatInt(a.ReqID, 10))
		b.WriteString(" msg=")
		b.WriteString(strconv.FormatInt(a.MsgID, 10))
	}
	return b.String()
}

// ParseRecord parses one TCP_TRACE log line. The original TCP_TRACE format
// only carries SEND/RECEIVE; BEGIN/END appear after classification, and
// round-tripped traces may contain them too, so all four types parse.
func ParseRecord(line string) (*Activity, error) {
	truth := ""
	if i := strings.IndexByte(line, '#'); i >= 0 {
		truth = strings.TrimSpace(line[i+1:])
		line = line[:i]
	}
	fields := strings.Fields(line)
	if len(fields) != 8 {
		return nil, fmt.Errorf("record has %d fields, want 8: %q", len(fields), line)
	}
	ts, err := ParseTimestamp(fields[0])
	if err != nil {
		return nil, err
	}
	pid, err := strconv.Atoi(fields[3])
	if err != nil {
		return nil, fmt.Errorf("pid %q: %w", fields[3], err)
	}
	tid, err := strconv.Atoi(fields[4])
	if err != nil {
		return nil, fmt.Errorf("tid %q: %w", fields[4], err)
	}
	typ, err := ParseType(fields[5])
	if err != nil {
		return nil, err
	}
	ch, err := parseChannel(fields[6])
	if err != nil {
		return nil, err
	}
	size, err := strconv.ParseInt(fields[7], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("size %q: %w", fields[7], err)
	}
	a := &Activity{
		Type:      typ,
		Timestamp: ts,
		Ctx:       Context{Host: fields[1], Program: fields[2], PID: pid, TID: tid},
		Chan:      ch,
		Size:      size,
		ReqID:     -1,
		MsgID:     -1,
	}
	if truth != "" {
		if err := parseTruth(truth, a); err != nil {
			return nil, err
		}
	}
	// Decode boundary: intern the identity strings (canonical copies stop
	// the record from pinning the parsed line) and fill the dense keys.
	Bind(a)
	return a, nil
}

func parseChannel(s string) (Channel, error) {
	src, dst, ok := strings.Cut(s, "-")
	if !ok {
		return Channel{}, fmt.Errorf("channel %q: missing '-'", s)
	}
	se, err := parseEndpoint(src)
	if err != nil {
		return Channel{}, err
	}
	de, err := parseEndpoint(dst)
	if err != nil {
		return Channel{}, err
	}
	return Channel{Src: se, Dst: de}, nil
}

func parseEndpoint(s string) (Endpoint, error) {
	// Split on the LAST colon: IPv6 addresses ("2001:db8::1") contain
	// colons themselves, so a first-colon split can never parse a v6
	// endpoint. FormatRecord writes ip:port, so the port is always the
	// text after the final colon.
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return Endpoint{}, fmt.Errorf("endpoint %q: missing ':'", s)
	}
	ip, portStr := s[:i], s[i+1:]
	if ip == "" {
		return Endpoint{}, fmt.Errorf("endpoint %q: empty address", s)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return Endpoint{}, fmt.Errorf("endpoint %q: %w", s, err)
	}
	if port < 0 || port > 65535 {
		return Endpoint{}, fmt.Errorf("endpoint %q: port %d out of range", s, port)
	}
	return Endpoint{IP: ip, Port: port}, nil
}

func parseTruth(s string, a *Activity) error {
	for _, kv := range strings.Fields(s) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("truth annotation %q: missing '='", kv)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("truth annotation %q: %w", kv, err)
		}
		switch k {
		case "req":
			a.ReqID = n
		case "msg":
			a.MsgID = n
		default:
			return fmt.Errorf("truth annotation: unknown key %q", k)
		}
	}
	return nil
}

// Writer emits TCP_TRACE log lines to an io.Writer.
type Writer struct {
	w         *bufio.Writer
	withTruth bool
	count     int64
}

// NewWriter returns a Writer. If withTruth is set, the testbed's
// ground-truth annotations are included so accuracy can be checked after a
// round trip through the wire format.
func NewWriter(w io.Writer, withTruth bool) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), withTruth: withTruth}
}

// Write emits one record. The record counts as written only once the
// whole line, trailing newline included, was accepted — a short write
// must not leave Count() claiming a record the sink never got.
func (w *Writer) Write(a *Activity) error {
	if _, err := w.w.WriteString(FormatRecord(a, w.withTruth)); err != nil {
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.count }

// Flush flushes the underlying buffer.
func (w *Writer) Flush() error { return w.w.Flush() }

// ReadAll parses every record from r, assigning sequential IDs.
func ReadAll(r io.Reader) ([]*Activity, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var out []*Activity
	var id int64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		a, err := ParseRecord(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		a.ID = id
		id++
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

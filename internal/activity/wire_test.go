package activity

import (
	"bufio"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestParseEndpoint: the endpoint parser must split ip from port on the
// LAST colon (IPv6 addresses contain colons) and reject malformed input.
func TestParseEndpoint(t *testing.T) {
	cases := []struct {
		in   string
		want Endpoint
		ok   bool
	}{
		{"10.0.0.1:80", Endpoint{IP: "10.0.0.1", Port: 80}, true},
		{"10.0.0.1:65535", Endpoint{IP: "10.0.0.1", Port: 65535}, true},
		{"2001:db8::1:8080", Endpoint{IP: "2001:db8::1", Port: 8080}, true},
		{"::1:3306", Endpoint{IP: "::1", Port: 3306}, true},
		{"fe80::aa:bb:cc:80", Endpoint{IP: "fe80::aa:bb:cc", Port: 80}, true},
		{"nocolon", Endpoint{}, false},
		{":80", Endpoint{}, false},       // empty address
		{"10.0.0.1:", Endpoint{}, false}, // empty port
		{"10.0.0.1:http", Endpoint{}, false},
		{"10.0.0.1:-1", Endpoint{}, false},
		{"10.0.0.1:65536", Endpoint{}, false},
		// A bare v6 address is inherently ambiguous with address:port (the
		// final group is a valid port number); the parser takes the split.
		{"2001:db8::1", Endpoint{IP: "2001:db8:", Port: 1}, true},
	}
	for _, c := range cases {
		got, err := parseEndpoint(c.in)
		if c.ok {
			if err != nil {
				t.Errorf("parseEndpoint(%q) error: %v", c.in, err)
				continue
			}
			if got != c.want {
				t.Errorf("parseEndpoint(%q) = %v, want %v", c.in, got, c.want)
			}
			continue
		}
		if err == nil {
			t.Errorf("parseEndpoint(%q) = %v, want error", c.in, got)
		}
	}
}

// TestRecordRoundTripIPv6: a full record with IPv6 endpoints must survive
// FormatRecord -> ParseRecord unchanged — the regression that motivated
// the last-colon split.
func TestRecordRoundTripIPv6(t *testing.T) {
	a := &Activity{
		Type:      Send,
		Timestamp: 12345 * time.Microsecond,
		Ctx:       Context{Host: "web1", Program: "httpd", PID: 10, TID: 11},
		Chan: Channel{
			Src: Endpoint{IP: "2001:db8::1", Port: 8080},
			Dst: Endpoint{IP: "fe80::42", Port: 80},
		},
		Size:  512,
		ReqID: -1, MsgID: -1,
	}
	line := FormatRecord(a, false)
	got, err := ParseRecord(line)
	if err != nil {
		t.Fatalf("ParseRecord(%q): %v", line, err)
	}
	if got.Chan != a.Chan {
		t.Fatalf("IPv6 channel mangled: %v -> %v (line %q)", a.Chan, got.Chan, line)
	}
}

// TestParseTimestampFraction: the fraction must be bare digits — a signed
// fraction like "1.-5" must error, not parse as negative microseconds.
func TestParseTimestampFraction(t *testing.T) {
	if d, err := ParseTimestamp("-0.000001"); err != nil || d != -time.Microsecond {
		t.Fatalf("ParseTimestamp(-0.000001) = %v, %v; want -1µs", d, err)
	}
	if d, err := ParseTimestamp("1.000005"); err != nil || d != time.Second+5*time.Microsecond {
		t.Fatalf("ParseTimestamp(1.000005) = %v, %v", d, err)
	}
	for _, s := range []string{"1.", "1.-5", "1.+5", "1.5x", "1.5.5", "1. 5"} {
		if d, err := ParseTimestamp(s); err == nil {
			t.Errorf("ParseTimestamp(%q) = %v, want error", s, d)
		}
	}
}

// failWriter errors on every write — the injected sink failure.
type failWriter struct{}

var errSink = errors.New("sink failed")

func (failWriter) Write(p []byte) (int, error) { return 0, errSink }

// TestWriterCountShortWrite: Count must report only fully-written records.
// The buffer is sized so the record body fits exactly and the trailing
// newline forces the flush that fails — the old code counted the record
// before that newline write could error.
func TestWriterCountShortWrite(t *testing.T) {
	a := sample()
	line := FormatRecord(a, false)

	w := &Writer{w: bufio.NewWriterSize(failWriter{}, len(line))}
	if err := w.Write(a); err == nil {
		t.Fatal("Write succeeded against a failing sink")
	} else if !errors.Is(err, errSink) {
		t.Fatalf("unexpected error: %v", err)
	}
	if n := w.Count(); n != 0 {
		t.Fatalf("Count() = %d after a failed write, want 0", n)
	}

	// The record-body failure path: a buffer too small for the line makes
	// WriteString itself flush and fail; count must stay untouched too.
	w2 := &Writer{w: bufio.NewWriterSize(failWriter{}, 4)}
	if err := w2.Write(a); !errors.Is(err, errSink) {
		t.Fatalf("unexpected error: %v", err)
	}
	if n := w2.Count(); n != 0 {
		t.Fatalf("Count() = %d after a failed write, want 0", n)
	}

	// And the success path still counts.
	var b strings.Builder
	w3 := NewWriter(&b, false)
	if err := w3.Write(a); err != nil {
		t.Fatal(err)
	}
	if err := w3.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := w3.Count(); n != 1 {
		t.Fatalf("Count() = %d, want 1", n)
	}
}

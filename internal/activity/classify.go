package activity

// Classifier implements the §3.1 transformation from raw TCP_TRACE records
// to typed activities: "the RECEIVE activity from a client to the web
// server's port 80 means the START of a request, and the SEND activity in
// the same connection with opposite direction means the STOP of a request".
//
// Entry ports are the externally visible service ports of the first tier
// (the deployment's request frontier). A RECEIVE whose destination port is
// an entry port becomes BEGIN; a SEND whose source port is an entry port
// becomes END. All other SEND/RECEIVE records pass through unchanged.
type Classifier struct {
	entryPorts map[int]bool
}

// NewClassifier builds a classifier for the given entry ports (e.g. 80).
func NewClassifier(entryPorts ...int) *Classifier {
	m := make(map[int]bool, len(entryPorts))
	for _, p := range entryPorts {
		m[p] = true
	}
	return &Classifier{entryPorts: m}
}

// Classify returns the activity type a raw record should carry. It is a
// pure function of the record's type and channel.
func (c *Classifier) Classify(a *Activity) Type {
	switch a.Type {
	case Receive:
		if c.entryPorts[a.Chan.Dst.Port] {
			return Begin
		}
	case Send:
		if c.entryPorts[a.Chan.Src.Port] {
			return End
		}
	case Begin, End, MaxType:
		// Already classified (round-tripped trace) — keep as-is.
	}
	return a.Type
}

// Apply rewrites a slice of raw records in place, classifying each one.
func (c *Classifier) Apply(as []*Activity) {
	for _, a := range as {
		a.Type = c.Classify(a)
	}
}

// EntryPorts returns a copy of the configured entry ports.
func (c *Classifier) EntryPorts() []int {
	out := make([]int, 0, len(c.entryPorts))
	for p := range c.entryPorts {
		out = append(out, p)
	}
	return out
}

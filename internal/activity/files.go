package activity

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The real deployment collects one TCP_TRACE log per node and ships them to
// the correlator (Fig. 2). These helpers store traces the same way: one
// file per host named <host>.trace (optionally .gz), with the standard wire
// format inside.

// HostLogName returns the file name for a host's log.
func HostLogName(host string, gz bool) string {
	if gz {
		return host + ".trace.gz"
	}
	return host + ".trace"
}

// WriteHostLogs writes one log file per host into dir.
func WriteHostLogs(dir string, perHost map[string][]*Activity, withTruth, gz bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	hosts := make([]string, 0, len(perHost))
	for h := range perHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, host := range hosts {
		if err := writeHostLog(filepath.Join(dir, HostLogName(host, gz)), perHost[host], withTruth, gz); err != nil {
			return fmt.Errorf("host %s: %w", host, err)
		}
	}
	return nil
}

func writeHostLog(path string, log []*Activity, withTruth, gz bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var sink io.Writer = f
	var zw *gzip.Writer
	if gz {
		zw = gzip.NewWriter(f)
		sink = zw
	}
	w := NewWriter(sink, withTruth)
	for _, a := range log {
		if err := w.Write(a); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return err
		}
	}
	return f.Close()
}

// HostIDBase returns the record-ID base for the i-th host (host-sorted
// order): each host owns a disjoint ID space so that lazy streaming readers
// and whole-file readers assign identical IDs regardless of interleaving.
func HostIDBase(i int) int64 { return int64(i) << 40 }

// ReadHostLogs loads every *.trace / *.trace.gz file in dir, returning the
// per-host logs keyed by the host name encoded in the file name. Record IDs
// are HostIDBase(hostIndex) + line, matching what FileSource-based
// streaming assigns, so ground-truth checking is consistent across both
// read paths.
func ReadHostLogs(dir string) (map[string][]*Activity, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		n := e.Name()
		if strings.HasSuffix(n, ".trace") || strings.HasSuffix(n, ".trace.gz") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .trace files in %s", dir)
	}
	out := make(map[string][]*Activity, len(names))
	for i, name := range names {
		host := strings.TrimSuffix(strings.TrimSuffix(name, ".gz"), ".trace")
		log, _, err := readLog(filepath.Join(dir, name), HostIDBase(i))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out[host] = log
	}
	return out, nil
}

func readLog(path string, idBase int64) ([]*Activity, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, idBase, err
	}
	defer f.Close()
	var src io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, idBase, err
		}
		defer zr.Close()
		src = zr
	}
	as, err := ReadAll(src)
	if err != nil {
		return nil, idBase, err
	}
	for _, a := range as {
		a.ID = idBase
		idBase++
	}
	return as, idBase, nil
}

// Merge flattens per-host logs into one slice (host-sorted order).
func Merge(perHost map[string][]*Activity) []*Activity {
	hosts := make([]string, 0, len(perHost))
	total := 0
	for h, log := range perHost {
		hosts = append(hosts, h)
		total += len(log)
	}
	sort.Strings(hosts)
	out := make([]*Activity, 0, total)
	for _, h := range hosts {
		out = append(out, perHost[h]...)
	}
	return out
}

// FileSource lazily parses one host's log so the ranker can stream from
// disk without materialising the trace in memory. It satisfies the ranker's
// Source interface structurally (Host/Peek/Pop).
type FileSource struct {
	host    string
	sc      *bufio.Scanner
	closers []io.Closer
	next    *Activity
	err     error
	idNext  *int64
}

// OpenFileSource opens a host log (plain or gzip). ids, when non-nil, is a
// shared counter used to assign unique record IDs across sources.
func OpenFileSource(host, path string, ids *int64) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var src io.Reader = f
	closers := []io.Closer{f}
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		src = zr
		closers = append(closers, zr)
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	s := &FileSource{host: host, sc: sc, closers: closers, idNext: ids}
	s.advance()
	return s, nil
}

// Host implements the Source contract.
func (s *FileSource) Host() string { return s.host }

// Peek implements the Source contract.
func (s *FileSource) Peek() *Activity { return s.next }

// Pop implements the Source contract.
func (s *FileSource) Pop() *Activity {
	a := s.next
	if a != nil {
		s.advance()
	}
	return a
}

// Err returns the first parse or I/O error encountered.
func (s *FileSource) Err() error { return s.err }

// Close releases the underlying files.
func (s *FileSource) Close() error {
	var first error
	for i := len(s.closers) - 1; i >= 0; i-- {
		if err := s.closers[i].Close(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}

func (s *FileSource) advance() {
	s.next = nil
	for s.sc.Scan() {
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		a, err := ParseRecord(line)
		if err != nil {
			s.err = err
			return
		}
		if s.idNext != nil {
			a.ID = *s.idNext
			*s.idNext++
		}
		s.next = a
		return
	}
	if err := s.sc.Err(); err != nil {
		s.err = err
	}
}

// openAppend opens a file for appending (test helper exported within the
// package).
func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
}

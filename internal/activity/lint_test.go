package activity

import (
	"strings"
	"testing"
	"time"
)

func cleanPair() []*Activity {
	send := &Activity{
		Type: Send, Timestamp: time.Millisecond,
		Ctx: Context{Host: "web1", Program: "httpd", PID: 1, TID: 1},
		Chan: Channel{Src: Endpoint{IP: "10.0.0.1", Port: 4000},
			Dst: Endpoint{IP: "10.0.0.2", Port: 8009}},
		Size: 100, ReqID: -1, MsgID: -1,
	}
	recv := &Activity{
		Type: Receive, Timestamp: 2 * time.Millisecond,
		Ctx:  Context{Host: "app1", Program: "java", PID: 2, TID: 3},
		Chan: send.Chan, Size: 100, ReqID: -1, MsgID: -1,
	}
	return []*Activity{send, recv}
}

func TestLintCleanTrace(t *testing.T) {
	if issues := Lint(cleanPair()); len(issues) != 0 {
		t.Fatalf("clean trace flagged: %v", issues)
	}
}

func TestLintClockRegression(t *testing.T) {
	tr := cleanPair()
	extra := *tr[0]
	extra.Timestamp = 0 // before the first web1 record
	tr = append(tr, &extra)
	issues := Lint(tr)
	if len(LintErrors(issues)) == 0 || !strings.Contains(issues[0].Message, "backwards") {
		t.Fatalf("regression not caught: %v", issues)
	}
}

func TestLintWrongNodeForSend(t *testing.T) {
	tr := cleanPair()
	// A SEND whose source IP belongs to app1 but logged on web1.
	bad := *tr[0]
	bad.Timestamp = 3 * time.Millisecond
	bad.Chan = Channel{Src: Endpoint{IP: "10.0.0.2", Port: 5000}, Dst: Endpoint{IP: "10.0.0.1", Port: 80}}
	tr = append(tr, &bad)
	found := false
	for _, i := range Lint(tr) {
		if strings.Contains(i.Message, "belongs to") {
			found = true
		}
	}
	if !found {
		t.Fatal("wrong-node SEND not caught")
	}
}

func TestLintByteShortfall(t *testing.T) {
	tr := cleanPair()
	tr[1].Size = 40 // received less than sent
	warned := false
	for _, i := range Lint(tr) {
		if i.Severity == "warn" && strings.Contains(i.Message, "received only") {
			warned = true
		}
	}
	if !warned {
		t.Fatal("byte shortfall not warned")
	}
}

func TestLintReceiveWithoutSend(t *testing.T) {
	tr := cleanPair()[1:] // only the RECEIVE; its sender IP is untraced now
	if issues := Lint(tr); len(LintErrors(issues)) != 0 {
		t.Fatalf("untraced sender should not be an error: %v", issues)
	}
	// But if the source is a traced node (web1 appears via another SEND),
	// a missing SEND is an error.
	other := &Activity{
		Type: Send, Timestamp: 3 * time.Millisecond,
		Ctx: Context{Host: "web1", Program: "httpd", PID: 1, TID: 1},
		Chan: Channel{Src: Endpoint{IP: "10.0.0.1", Port: 4001},
			Dst: Endpoint{IP: "10.0.0.2", Port: 8009}},
		Size: 50, ReqID: -1, MsgID: -1,
	}
	tr = append(tr, other)
	found := false
	for _, i := range Lint(tr) {
		if strings.Contains(i.Message, "lost SEND") {
			found = true
		}
	}
	if !found {
		t.Fatalf("lost SEND not caught: %v", Lint(tr))
	}
}

func TestLintMalformedRecords(t *testing.T) {
	tr := []*Activity{
		{Type: Send, Ctx: Context{}, Chan: Channel{}, Size: 0},
	}
	issues := Lint(tr)
	if len(LintErrors(issues)) == 0 {
		t.Fatal("malformed record passed lint")
	}
}

func TestLintOverReceive(t *testing.T) {
	tr := cleanPair()
	tr[1].Size = 200 // more than sent
	found := false
	for _, i := range Lint(tr) {
		if i.Severity == "error" && strings.Contains(i.Message, "received 200 > sent") {
			found = true
		}
	}
	if !found {
		t.Fatalf("over-receive not caught: %v", Lint(tr))
	}
}

// Package activity defines the interaction-activity model of §2–3 of the
// paper: the four activity types (BEGIN, END, SEND, RECEIVE), the context
// identifier (hostname, program, pid, tid), the message identifier
// (sender ip:port, receiver ip:port, size), and the TCP_TRACE wire format
// produced by the kernel instrumentation.
package activity

import (
	"fmt"
	"time"
)

// Type is the activity type. The numeric order encodes the candidate
// priority of the ranker's Rule 2: BEGIN < SEND < END < RECEIVE < MAX, where
// a *lower* priority value is picked *earlier*.
type Type uint8

// Activity types in Rule 2 priority order.
const (
	Begin Type = iota + 1
	Send
	End
	Receive
	// MaxType is the sentinel above every real type ("MAX" in the paper's
	// priority chain); used when scanning for the minimum-priority head.
	MaxType
)

// Priority returns the Rule 2 ordering value; lower is chosen first.
func (t Type) Priority() int { return int(t) }

// String implements fmt.Stringer using the paper's spelling.
func (t Type) String() string {
	switch t {
	case Begin:
		return "BEGIN"
	case Send:
		return "SEND"
	case End:
		return "END"
	case Receive:
		return "RECEIVE"
	case MaxType:
		return "MAX"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType converts the wire spelling back into a Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "BEGIN":
		return Begin, nil
	case "SEND":
		return Send, nil
	case "END":
		return End, nil
	case "RECEIVE":
		return Receive, nil
	default:
		return 0, fmt.Errorf("unknown activity type %q", s)
	}
}

// Context is the execution-entity identifier tuple
// (hostname, program name, process ID, thread ID). It is comparable and is
// used directly as the key of the engine's cmap.
type Context struct {
	Host    string
	Program string
	PID     int
	TID     int
}

// String implements fmt.Stringer.
func (c Context) String() string {
	return fmt.Sprintf("%s/%s[%d:%d]", c.Host, c.Program, c.PID, c.TID)
}

// Endpoint is one side of a TCP channel.
type Endpoint struct {
	IP   string
	Port int
}

// String implements fmt.Stringer.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.IP, e.Port) }

// Channel is the directed end-to-end communication channel part of the
// message identifier: (sender ip:port, receiver ip:port). It is comparable
// and is used directly as the key of the engine's mmap; the size component
// of the paper's message-identifier tuple lives on the Activity because it
// varies per segment.
type Channel struct {
	Src Endpoint
	Dst Endpoint
}

// Reverse returns the channel for traffic flowing the opposite way.
func (ch Channel) Reverse() Channel { return Channel{Src: ch.Dst, Dst: ch.Src} }

// String implements fmt.Stringer using the wire spelling.
func (ch Channel) String() string {
	return fmt.Sprintf("%s-%s", ch.Src, ch.Dst)
}

// Activity is one logged kernel interaction activity. Timestamp is the
// *node-local* time of the logging node; the correlator never assumes any
// cross-node clock relationship.
type Activity struct {
	// ID uniquely identifies the record within one trace (assignment order
	// = log order). It exists for bookkeeping and ground-truth checking; the
	// correlation algorithm itself never inspects it.
	ID int64

	Type      Type
	Timestamp time.Duration
	Ctx       Context
	Chan      Channel
	Size      int64

	// CtxK and ChanK are the dense key forms of Ctx and Chan (see
	// symbols.go), filled by Bind at the decode boundary and used as the
	// map/union-find keys on every hot path. They are derived, carry no
	// information of their own, and stay zero on hand-built records until
	// a consumer binds them lazily.
	CtxK  CtxKey
	ChanK ChanKey

	// Ground truth, available only when the trace was produced by the
	// simulated testbed (the real system would not have these). ReqID is the
	// request that caused the activity (-1 when unknown/noise), MsgID the
	// logical message a SEND/RECEIVE segment belongs to (-1 when n/a).
	// The correlator MUST NOT read these; they exist so the accuracy
	// experiments can compare CAGs against truth, mirroring the paper's
	// modified-RUBiS global request ID.
	ReqID int64
	MsgID int64
}

// String implements fmt.Stringer in a compact debug form.
func (a *Activity) String() string {
	return fmt.Sprintf("#%d %s t=%v %s %s %dB", a.ID, a.Type, a.Timestamp, a.Ctx, a.Chan, a.Size)
}

// CloneUntagged returns a copy with the ground-truth fields erased; used by
// tests to prove the correlator does not depend on them.
func (a *Activity) CloneUntagged() *Activity {
	cp := *a
	cp.ReqID = -1
	cp.MsgID = -1
	return &cp
}

package activity

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSymbolsConcurrent hammers one interner from many goroutines with an
// overlapping vocabulary — the shape of several collector connections
// decoding records for the same deployment at once. Run under -race this
// is the interner's concurrency proof; afterwards every string must have
// exactly one symbol and Name must invert Intern.
func TestSymbolsConcurrent(t *testing.T) {
	s := NewSymbols()
	const goroutines = 8
	const vocab = 64
	words := make([]string, vocab)
	for i := range words {
		words[i] = fmt.Sprintf("host-%02d.example.com", i)
	}
	var wg sync.WaitGroup
	got := make([][]Sym, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			syms := make([]Sym, vocab)
			for round := 0; round < 50; round++ {
				for i, w := range words {
					sym := s.Intern(w)
					if round == 0 {
						syms[i] = sym
					} else if syms[i] != sym {
						t.Errorf("goroutine %d: %q interned as %d then %d", g, w, syms[i], sym)
						return
					}
					// Concurrent reverse lookups share the read lock.
					if name := s.Name(sym); name != w {
						t.Errorf("goroutine %d: Name(%d) = %q, want %q", g, sym, name, w)
						return
					}
				}
			}
			got[g] = syms
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for g := 1; g < goroutines; g++ {
		for i := range words {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutines 0 and %d disagree on %q: %d vs %d", g, words[i], got[0][i], got[g][i])
			}
		}
	}
	if s.Len() != vocab {
		t.Fatalf("Len = %d after %d goroutines × %d words, want %d", s.Len(), goroutines, vocab, vocab)
	}
	if s.Intern("") == 0 {
		t.Fatal("empty string interned as the reserved zero symbol")
	}
}

// TestCodecKeyEquality: the same logical record decoded through the text
// parser and through the binary codec must come out with identical dense
// keys and identical canonical identity strings — both codecs bind
// against the one process-wide interner, so a record's identity does not
// depend on which wire format carried it.
func TestCodecKeyEquality(t *testing.T) {
	orig := binSample()
	line := FormatRecord(orig, false)
	fromText, err := ParseRecord(line)
	if err != nil {
		t.Fatalf("ParseRecord(%q): %v", line, err)
	}
	buf := AppendBinary(nil, boundSample())
	fromBin, _, err := DecodeBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !fromText.CtxK.Bound() || !fromText.ChanK.Bound() {
		t.Fatalf("text parser left record unbound: %+v", fromText)
	}
	if fromText.CtxK != fromBin.CtxK {
		t.Fatalf("context keys differ by codec: text %+v, binary %+v", fromText.CtxK, fromBin.CtxK)
	}
	if fromText.ChanK != fromBin.ChanK {
		t.Fatalf("channel keys differ by codec: text %+v, binary %+v", fromText.ChanK, fromBin.ChanK)
	}
	if fromText.Ctx != fromBin.Ctx || fromText.Chan != fromBin.Chan {
		t.Fatalf("identity strings differ by codec: text %+v/%+v, binary %+v/%+v",
			fromText.Ctx, fromText.Chan, fromBin.Ctx, fromBin.Chan)
	}
	// Round-trip through the interner's reverse map.
	if Syms.Name(fromText.CtxK.Host) != orig.Ctx.Host {
		t.Fatalf("Name(%d) = %q, want %q", fromText.CtxK.Host, Syms.Name(fromText.CtxK.Host), orig.Ctx.Host)
	}
	if k := fromText.ChanK; k.Reverse().Reverse() != k {
		t.Fatalf("Reverse not an involution: %+v", k)
	}
}

// FuzzSymbolStability models a resumed transport connection: after a
// reconnect the agent re-encodes and resends unacknowledged records, and
// the collector decodes the resend into fresh pooled storage. Whatever
// the identity strings are, the second decode must bind to exactly the
// same symbols and keys as the first — symbol assignment is stable across
// re-decodes, so resume replays correlate identically.
func FuzzSymbolStability(f *testing.F) {
	f.Add("web1", "httpd", "10.0.0.1", "10.0.0.2", int32(33210), int32(80))
	f.Add("db1", "mysqld", "2001:db8::1", "fe80::42", int32(3306), int32(54321))
	f.Add("", "", "", "", int32(0), int32(0))
	f.Add("host\nwith\tweird bytes", "a b", "not-an-ip", "\x00\xff", int32(-1), int32(1<<30))
	f.Fuzz(func(t *testing.T, host, prog, src, dst string, sport, dport int32) {
		rec := &Activity{
			ID:        1,
			Type:      Send,
			Timestamp: time.Second,
			Ctx:       Context{Host: host, Program: prog, PID: 1, TID: 2},
			Chan: Channel{
				Src: Endpoint{IP: src, Port: int(sport)},
				Dst: Endpoint{IP: dst, Port: int(dport)},
			},
		}
		buf := AppendBinary(nil, rec)
		first := NewRecord()
		if _, err := DecodeBinaryInto(first, buf); err != nil {
			t.Fatalf("first decode: %v", err)
		}
		k1, c1 := first.CtxK, first.ChanK
		names := [4]string{
			Syms.Name(k1.Host), Syms.Name(k1.Prog),
			Syms.Name(c1.SrcIP), Syms.Name(c1.DstIP),
		}
		ReleaseRecord(first)

		// The resend decodes into recycled pool storage — same bytes,
		// different *Activity — and must land on the same symbols.
		second := NewRecord()
		if _, err := DecodeBinaryInto(second, buf); err != nil {
			t.Fatalf("resend decode: %v", err)
		}
		if second.CtxK != k1 || second.ChanK != c1 {
			t.Fatalf("resend bound differently: first %+v/%+v, resend %+v/%+v",
				k1, c1, second.CtxK, second.ChanK)
		}
		if got := [4]string{
			Syms.Name(second.CtxK.Host), Syms.Name(second.CtxK.Prog),
			Syms.Name(second.ChanK.SrcIP), Syms.Name(second.ChanK.DstIP),
		}; got != names {
			t.Fatalf("symbol names drifted across re-decode: %q vs %q", names, got)
		}
		if second.Ctx.Host != host || second.Ctx.Program != prog ||
			second.Chan.Src.IP != src || second.Chan.Dst.IP != dst {
			t.Fatalf("canonicalized strings changed content: %+v %+v", second.Ctx, second.Chan)
		}
		ReleaseRecord(second)
	})
}

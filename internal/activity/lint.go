package activity

import (
	"fmt"
	"time"
)

// LintIssue is one problem found in a trace.
type LintIssue struct {
	Severity string // "error" or "warn"
	Message  string
}

// String implements fmt.Stringer.
func (l LintIssue) String() string { return l.Severity + ": " + l.Message }

// Lint checks a merged trace for the properties the correlator depends on:
//
//   - per-host local-clock monotonicity (a kernel log is totally ordered);
//   - every activity carries a usable context and channel;
//   - SEND records log at the source endpoint's node, RECEIVEs at the
//     destination's (when the node's addresses are inferable);
//   - byte-count symmetry per channel (sent bytes >= received bytes, with
//     a warning for channels whose counts do not reconcile — early warning
//     for activity loss, §5.2's deformed-CAG cause).
//
// It returns issues ordered as found; an empty slice means a clean trace.
func Lint(trace []*Activity) []LintIssue {
	var issues []LintIssue
	errf := func(format string, args ...any) {
		issues = append(issues, LintIssue{Severity: "error", Message: fmt.Sprintf(format, args...)})
	}
	warnf := func(format string, args ...any) {
		issues = append(issues, LintIssue{Severity: "warn", Message: fmt.Sprintf(format, args...)})
	}

	lastTS := make(map[string]time.Duration)
	ipOwner := InferIPToHost(trace)
	sentBytes := make(map[Channel]int64)
	recvBytes := make(map[Channel]int64)

	for i, a := range trace {
		if a.Ctx.Host == "" || a.Ctx.Program == "" {
			errf("record %d: empty context (%v)", i, a)
			continue
		}
		if a.Chan.Src.IP == "" || a.Chan.Dst.IP == "" || a.Chan.Src.Port <= 0 || a.Chan.Dst.Port <= 0 {
			errf("record %d: malformed channel %v", i, a.Chan)
		}
		if a.Size <= 0 {
			errf("record %d: non-positive size %d", i, a.Size)
		}
		if prev, ok := lastTS[a.Ctx.Host]; ok && a.Timestamp < prev {
			errf("record %d: host %s local clock went backwards (%v after %v)",
				i, a.Ctx.Host, a.Timestamp, prev)
		}
		lastTS[a.Ctx.Host] = a.Timestamp

		switch a.Type {
		case Send, End:
			if owner, ok := ipOwner[a.Chan.Src.IP]; ok && owner != a.Ctx.Host {
				errf("record %d: SEND logged on %s but source %s belongs to %s",
					i, a.Ctx.Host, a.Chan.Src.IP, owner)
			}
			sentBytes[a.Chan] += a.Size
		case Receive, Begin:
			if owner, ok := ipOwner[a.Chan.Dst.IP]; ok && owner != a.Ctx.Host {
				errf("record %d: RECEIVE logged on %s but destination %s belongs to %s",
					i, a.Ctx.Host, a.Chan.Dst.IP, owner)
			}
			recvBytes[a.Chan] += a.Size
		case MaxType:
			errf("record %d: sentinel type in trace", i)
		}
	}

	// Byte reconciliation: received bytes on a channel cannot exceed sent
	// bytes when both endpoints are traced; a shortfall of sends suggests
	// lost SEND records, a shortfall of receives lost RECEIVEs (or an
	// untraced endpoint, which is only a warning).
	for ch, rb := range recvBytes {
		sb := sentBytes[ch]
		_, srcTraced := ipOwner[ch.Src.IP]
		switch {
		case sb == 0 && srcTraced:
			errf("channel %v: %d bytes received, none sent (lost SEND records?)", ch, rb)
		case sb == 0:
			// Untraced sender (client traffic): expected.
		case rb > sb:
			errf("channel %v: received %d > sent %d bytes", ch, rb, sb)
		case rb < sb:
			warnf("channel %v: sent %d, received only %d bytes (lost RECEIVE records or truncated trace)", ch, sb, rb)
		}
	}
	return issues
}

// LintErrors returns only error-severity issues.
func LintErrors(issues []LintIssue) []LintIssue {
	var out []LintIssue
	for _, i := range issues {
		if i.Severity == "error" {
			out = append(out, i)
		}
	}
	return out
}

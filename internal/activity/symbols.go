// Identity layer: dense symbols for the identity strings every activity
// carries (hostname, program name, IP), interned once at the decode
// boundary, plus the packed integer key forms of Context and Channel the
// hot maps key on.
//
// Why two representations exist. The identity *vocabulary* — distinct
// host/program/IP strings — is small and bounded by the deployment, so a
// process-wide interner (Symbols) can map each string to a dense uint32
// symbol and never give it back. The identity *tuples* (contexts,
// channels) are not bounded: ephemeral ports make the channel space grow
// with connection count, so interning whole tuples to dense ids would
// leak in a forever-open collector that otherwise prunes its per-channel
// state (flow.Incremental does exactly that). CtxKey and ChanKey are
// therefore self-contained packed-integer structs — comparable, string-
// free, hashed as a few flat words — rather than interned ids: all the
// map-key speed, none of the unbounded interner state, and
// ChanKey.Reverse needs no interner round-trip.
//
// Strings survive on the Activity (render and report edges still print
// them); Bind replaces them with the interner's canonical copies, so a
// million parsed records share one "web.example.com" allocation instead
// of pinning a million log-line buffers.
package activity

import (
	"strings"
	"sync"
)

// Sym is a dense symbol for one interned identity string. The zero Sym is
// reserved and never allocated, so key forms built from symbols can use 0
// as the "not bound yet" sentinel.
type Sym uint32

// Symbols is a concurrency-safe string interner. The zero value is not
// usable; call NewSymbols. Lookups on already-interned strings take a
// read lock only.
type Symbols struct {
	mu   sync.RWMutex
	ids  map[string]Sym
	strs []string // Sym -> string; index 0 reserved
}

// NewSymbols returns an empty interner.
func NewSymbols() *Symbols {
	return &Symbols{ids: make(map[string]Sym), strs: []string{""}}
}

// Intern returns the dense symbol for str, allocating one on first sight.
func (s *Symbols) Intern(str string) Sym {
	sym, _ := s.intern(str)
	return sym
}

// intern returns the symbol and the canonical (interner-owned) copy of
// str, so callers can drop their own copy and share storage.
func (s *Symbols) intern(str string) (Sym, string) {
	s.mu.RLock()
	sym, ok := s.ids[str]
	if ok {
		canon := s.strs[sym]
		s.mu.RUnlock()
		return sym, canon
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if sym, ok = s.ids[str]; ok {
		return sym, s.strs[sym]
	}
	// Clone so the interner never pins a caller's larger backing array
	// (parsed records would otherwise keep whole log lines alive).
	str = strings.Clone(str)
	sym = Sym(len(s.strs))
	s.strs = append(s.strs, str)
	s.ids[str] = sym
	return sym, str
}

// internBytes is the decoder fast path: on a hit it performs no
// allocation at all (the map index converts without copying), returning
// the canonical string for the bytes.
func (s *Symbols) internBytes(b []byte) (Sym, string) {
	s.mu.RLock()
	sym, ok := s.ids[string(b)]
	if ok {
		canon := s.strs[sym]
		s.mu.RUnlock()
		return sym, canon
	}
	s.mu.RUnlock()
	return s.intern(string(b))
}

// Name returns the string a symbol was allocated for, or "" for the
// reserved zero symbol and out-of-range values.
func (s *Symbols) Name(sym Sym) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(sym) < len(s.strs) {
		return s.strs[sym]
	}
	return ""
}

// Len returns the number of interned strings (the reserved zero symbol
// not counted).
func (s *Symbols) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.strs) - 1
}

// CtxKey is the dense key form of a Context: the same identity as the
// (host, program, pid, tid) tuple, with the strings replaced by their
// interned symbols. Comparable, fixed-width, and free of pointer or
// string bytes — hashing one is a memhash over four words, not a walk
// over two strings.
type CtxKey struct {
	Host, Prog Sym
	PID, TID   int32
}

// Bound reports whether the key has been filled by Bind (the interner
// never allocates the zero symbol).
func (k CtxKey) Bound() bool { return k.Host != 0 }

// ChanKey is the dense key form of a Channel: both endpoint IPs as
// interned symbols plus the ports. Two bound ChanKeys are equal exactly
// when the underlying Channels are.
type ChanKey struct {
	SrcIP, DstIP     Sym
	SrcPort, DstPort int32
}

// Bound reports whether the key has been filled by Bind.
func (k ChanKey) Bound() bool { return k.SrcIP != 0 }

// Reverse returns the key of the opposite-direction channel — a field
// swap, no interner involved.
func (k ChanKey) Reverse() ChanKey {
	return ChanKey{SrcIP: k.DstIP, DstIP: k.SrcIP, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// Syms is the process-wide interner. Both codecs bind records against it
// at the decode boundary; consumers that meet a hand-built (unbound)
// record call Bind lazily, so symbols are consistent process-wide
// regardless of where a record entered.
var Syms = NewSymbols()

// Bind fills a's dense keys (CtxK, ChanK) from the process-wide interner
// and canonicalizes the identity strings to the interned copies. It is
// idempotent; a record whose identity fields are mutated after binding
// must be re-bound by clearing CtxK/ChanK first. Bind is safe for
// concurrent use on distinct records, but two goroutines must not bind
// the same record concurrently (it writes to *a).
func Bind(a *Activity) {
	if a.CtxK.Bound() {
		return
	}
	var c string
	a.CtxK.Host, c = Syms.intern(a.Ctx.Host)
	a.Ctx.Host = c
	a.CtxK.Prog, c = Syms.intern(a.Ctx.Program)
	a.Ctx.Program = c
	a.CtxK.PID = int32(a.Ctx.PID)
	a.CtxK.TID = int32(a.Ctx.TID)
	a.ChanK.SrcIP, c = Syms.intern(a.Chan.Src.IP)
	a.Chan.Src.IP = c
	a.ChanK.DstIP, c = Syms.intern(a.Chan.Dst.IP)
	a.Chan.Dst.IP = c
	a.ChanK.SrcPort = int32(a.Chan.Src.Port)
	a.ChanK.DstPort = int32(a.Chan.Dst.Port)
}

// recPool recycles decode-side Activity records: the network collector
// decodes every frame into pooled records, the session copies what it
// keeps (Session.Push and replay both copy before buffering), and the
// ingest front releases the decoded records once applied.
var recPool = sync.Pool{New: func() any { return new(Activity) }}

// NewRecord returns a zeroed Activity from the decode-side pool.
func NewRecord() *Activity { return recPool.Get().(*Activity) }

// ReleaseRecord returns a record to the decode-side pool. The caller must
// not retain any pointer to it; anything worth keeping was copied by the
// session when the record was applied.
func ReleaseRecord(a *Activity) {
	*a = Activity{}
	recPool.Put(a)
}

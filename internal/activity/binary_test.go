package activity

import (
	"bytes"
	"testing"
	"time"
)

func binSample() *Activity {
	return &Activity{
		ID:        42,
		Type:      Receive,
		Timestamp: 12*time.Second + 345678901*time.Nanosecond, // sub-µs: binary keeps it
		Ctx:       Context{Host: "web1", Program: "httpd", PID: 2301, TID: 2304},
		Chan: Channel{
			Src: Endpoint{IP: "2001:db8::1", Port: 33210},
			Dst: Endpoint{IP: "10.0.0.1", Port: 80},
		},
		Size:  512,
		ReqID: 7,
		MsgID: 13,
	}
}

// boundSample is binSample with the dense keys filled — what DecodeBinary
// emits, since the binary codec binds at the decode boundary.
func boundSample() *Activity {
	a := binSample()
	Bind(a)
	return a
}

func TestBinaryRoundTrip(t *testing.T) {
	a := boundSample()
	buf := AppendBinary(nil, a)
	got, n, err := DecodeBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if *got != *a {
		t.Fatalf("round trip mutated record:\n in: %+v\nout: %+v", a, got)
	}
}

// TestBinaryStream: records concatenate and decode back in order — the
// shape a transport batch frame carries.
func TestBinaryStream(t *testing.T) {
	var recs []*Activity
	var buf []byte
	for i := 0; i < 10; i++ {
		a := boundSample()
		a.ID = int64(i)
		a.Timestamp += time.Duration(i) * time.Millisecond
		recs = append(recs, a)
		buf = AppendBinary(buf, a)
	}
	for i := 0; len(buf) > 0; i++ {
		got, n, err := DecodeBinary(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if *got != *recs[i] {
			t.Fatalf("record %d mutated", i)
		}
		buf = buf[n:]
	}
}

// TestBinaryDecodeMalformed: truncations and corruptions error cleanly.
func TestBinaryDecodeMalformed(t *testing.T) {
	full := AppendBinary(nil, binSample())
	// Every strict prefix is truncated and must error (the encoding has
	// no trailing optional part).
	for i := 0; i < len(full); i++ {
		if _, _, err := DecodeBinary(full[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", i)
		}
	}
	// Bad type tag.
	bad := bytes.Clone(full)
	bad[0] = 99
	if _, _, err := DecodeBinary(bad); err == nil {
		t.Fatal("bad type tag accepted")
	}
	// String length running past the buffer.
	if _, _, err := DecodeBinary([]byte{byte(Send), 0, 0xff, 0xff, 0x03}); err == nil {
		t.Fatal("oversized string length accepted")
	}
	if _, _, err := DecodeBinary(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
}

// FuzzBinaryRoundTrip: decode(encode(x)) == x for arbitrary field values.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(uint8(2), int64(12345), "web1", "httpd", 10, 11, "10.0.0.1", uint16(80), "2001:db8::1", uint16(3306), int64(512), int64(1), int64(-1), int64(-1))
	f.Add(uint8(4), int64(-1), "", "", -1, 0, "", uint16(0), "::", uint16(65535), int64(0), int64(-9), int64(7), int64(13))
	f.Fuzz(func(t *testing.T, typ uint8, ts int64, host, prog string, pid, tid int,
		srcIP string, srcPort uint16, dstIP string, dstPort uint16, size, id, req, msg int64) {
		if typ < uint8(Begin) || typ > uint8(Receive) {
			return
		}
		if len(host) > maxBinaryString || len(prog) > maxBinaryString ||
			len(srcIP) > maxBinaryString || len(dstIP) > maxBinaryString {
			return
		}
		a := &Activity{
			ID: id, Type: Type(typ), Timestamp: time.Duration(ts),
			Ctx: Context{Host: host, Program: prog, PID: pid, TID: tid},
			Chan: Channel{
				Src: Endpoint{IP: srcIP, Port: int(srcPort)},
				Dst: Endpoint{IP: dstIP, Port: int(dstPort)},
			},
			Size: size, ReqID: req, MsgID: msg,
		}
		buf := AppendBinary(nil, a)
		Bind(a) // decode emits bound records; bind the expectation too
		got, n, err := DecodeBinary(buf)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d bytes", n, len(buf))
		}
		if *got != *a {
			t.Fatalf("round trip mutated record:\n in: %+v\nout: %+v", a, got)
		}
	})
}

// FuzzBinaryDecode: arbitrary bytes never panic; whatever decodes must
// re-encode and re-decode to the same record (the codec's fixed point).
func FuzzBinaryDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(AppendBinary(nil, binSample()))
	f.Fuzz(func(t *testing.T, buf []byte) {
		a, n, err := DecodeBinary(buf)
		if err != nil {
			return
		}
		if n <= 0 || n > len(buf) {
			t.Fatalf("consumed %d of %d bytes", n, len(buf))
		}
		back, _, err := DecodeBinary(AppendBinary(nil, a))
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if *back != *a {
			t.Fatalf("accepted record not a fixed point:\n in: %+v\nout: %+v", a, back)
		}
	})
}

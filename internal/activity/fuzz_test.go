package activity

import (
	"testing"
)

// FuzzParseRecord: the wire parser must never panic and must round-trip
// whatever it accepts.
func FuzzParseRecord(f *testing.F) {
	f.Add("12.345678 node1 httpd 2301 2301 SEND 10.0.0.1:80-10.0.0.9:3321 512")
	f.Add("0.000001 n p 1 2 RECEIVE 1.2.3.4:5-6.7.8.9:10 1 # req=3 msg=4")
	f.Add("")
	f.Add("garbage")
	f.Add("-1.5 h p 0 0 BEGIN a:1-b:2 0")
	f.Fuzz(func(t *testing.T, line string) {
		a, err := ParseRecord(line)
		if err != nil {
			return
		}
		// Accepted records must re-format and re-parse to the same fields.
		back, err := ParseRecord(FormatRecord(a, true))
		if err != nil {
			t.Fatalf("accepted %q but round trip failed: %v", line, err)
		}
		if back.Type != a.Type || back.Ctx != a.Ctx || back.Chan != a.Chan || back.Size != a.Size {
			t.Fatalf("round trip mutated record: %v vs %v", a, back)
		}
	})
}

// FuzzParseTimestamp: must never panic; accepted values round-trip within
// microsecond precision.
func FuzzParseTimestamp(f *testing.F) {
	f.Add("12.345678")
	f.Add("-0.000001")
	f.Add("999999999")
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseTimestamp(s)
		if err != nil {
			return
		}
		back, err := ParseTimestamp(FormatTimestamp(d))
		if err != nil || back != d.Truncate(1000) && back != d {
			// FormatTimestamp is µs-precision; sub-µs inputs can't appear
			// from ParseTimestamp so exact equality is expected.
			if err != nil {
				t.Fatalf("format of parsed %q failed: %v", s, err)
			}
		}
	})
}

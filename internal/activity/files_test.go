package activity

import (
	"path/filepath"
	"testing"
	"time"
)

func hostLogs() map[string][]*Activity {
	mk := func(host string, n int) []*Activity {
		var out []*Activity
		for i := 0; i < n; i++ {
			out = append(out, &Activity{
				Type:      Send,
				Timestamp: time.Duration(i) * time.Millisecond,
				Ctx:       Context{Host: host, Program: "p", PID: 1, TID: 1},
				Chan: Channel{Src: Endpoint{IP: "10.0.0.1", Port: 1000 + i},
					Dst: Endpoint{IP: "10.0.0.2", Port: 80}},
				Size:  int64(10 + i),
				ReqID: int64(i), MsgID: int64(i),
			})
		}
		return out
	}
	return map[string][]*Activity{"web1": mk("web1", 5), "app1": mk("app1", 3)}
}

func TestHostLogsRoundTrip(t *testing.T) {
	for _, gz := range []bool{false, true} {
		dir := t.TempDir()
		in := hostLogs()
		if err := WriteHostLogs(dir, in, true, gz); err != nil {
			t.Fatal(err)
		}
		out, err := ReadHostLogs(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 2 || len(out["web1"]) != 5 || len(out["app1"]) != 3 {
			t.Fatalf("gz=%v: round trip lost records: %d hosts", gz, len(out))
		}
		for host, log := range out {
			for i, a := range log {
				want := in[host][i]
				if a.Timestamp != want.Timestamp || a.Chan != want.Chan || a.ReqID != want.ReqID {
					t.Fatalf("gz=%v %s[%d]: %v != %v", gz, host, i, a, want)
				}
			}
		}
		// Global IDs must be unique across hosts.
		seen := map[int64]bool{}
		for _, a := range Merge(out) {
			if seen[a.ID] {
				t.Fatalf("duplicate record ID %d", a.ID)
			}
			seen[a.ID] = true
		}
	}
}

func TestHostLogNames(t *testing.T) {
	if HostLogName("web1", false) != "web1.trace" || HostLogName("web1", true) != "web1.trace.gz" {
		t.Fatal("log naming")
	}
}

func TestReadHostLogsEmptyDir(t *testing.T) {
	if _, err := ReadHostLogs(t.TempDir()); err == nil {
		t.Fatal("expected error for empty dir")
	}
}

func TestMergeOrdersHosts(t *testing.T) {
	merged := Merge(hostLogs())
	if len(merged) != 8 {
		t.Fatalf("merged = %d", len(merged))
	}
	// app1 sorts before web1.
	if merged[0].Ctx.Host != "app1" || merged[len(merged)-1].Ctx.Host != "web1" {
		t.Fatal("merge order wrong")
	}
}

func TestFileSourceStreams(t *testing.T) {
	for _, gz := range []bool{false, true} {
		dir := t.TempDir()
		if err := WriteHostLogs(dir, hostLogs(), true, gz); err != nil {
			t.Fatal(err)
		}
		var ids int64
		src, err := OpenFileSource("web1", filepath.Join(dir, HostLogName("web1", gz)), &ids)
		if err != nil {
			t.Fatal(err)
		}
		if src.Host() != "web1" {
			t.Fatalf("host = %q", src.Host())
		}
		count := 0
		var lastTS time.Duration
		for {
			a := src.Peek()
			if a == nil {
				break
			}
			if got := src.Pop(); got != a {
				t.Fatal("Pop != Peek")
			}
			if a.Timestamp < lastTS {
				t.Fatal("stream out of order")
			}
			lastTS = a.Timestamp
			count++
		}
		if count != 5 {
			t.Fatalf("gz=%v: streamed %d records, want 5", gz, count)
		}
		if src.Err() != nil {
			t.Fatalf("source error: %v", src.Err())
		}
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
		if ids != 5 {
			t.Fatalf("ids assigned = %d", ids)
		}
	}
}

func TestFileSourceParseError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.trace")
	if err := writeHostLog(path, hostLogs()["app1"], false, false); err != nil {
		t.Fatal(err)
	}
	// Append a corrupt line.
	f, err := openAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("not a record\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := OpenFileSource("app1", path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for src.Pop() != nil {
	}
	if src.Err() == nil {
		t.Fatal("expected parse error to surface via Err")
	}
}

// Package report renders a correlation run as a self-contained HTML page:
// run summary, causal path patterns with latency-percentage bars, the
// paper-style component comparison, and optional detector findings. The
// page uses no external assets, so it can be archived next to the trace.
package report

import (
	"fmt"
	"html/template"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
)

// Data is everything a report shows.
type Data struct {
	Title     string
	Generated string

	Activities      int
	Paths           int
	Unfinished      int
	CorrelationTime string
	MemoryEstimate  string

	NoiseDropped  uint64
	FilterDropped uint64
	Swaps         uint64

	Patterns []PatternView
	Findings []analysis.Finding
}

// PatternView is one pattern's display model.
type PatternView struct {
	Name        string
	Count       int
	MeanLatency string
	Shares      []ShareView
}

// ShareView is one latency-percentage bar.
type ShareView struct {
	Category string
	Percent  float64
	Width    int // bar width in px-ish units (0..300)
	Mean     string
}

// Build assembles report data from a correlation result and its pattern
// reports (from analysis.Report). Findings may be nil.
func Build(title string, res *core.Result, reports []*analysis.PatternReport, findings []analysis.Finding) *Data {
	d := &Data{
		Title:           title,
		Generated:       "PreciseTracer reproduction",
		Activities:      res.Activities,
		Paths:           len(res.Graphs),
		Unfinished:      res.Unfinished(),
		CorrelationTime: res.CorrelationTime.Round(time.Millisecond).String(),
		MemoryEstimate:  fmt.Sprintf("%.2f MB", float64(res.EstimatedBytes())/(1<<20)),
		NoiseDropped:    res.Ranker.NoiseDropped,
		FilterDropped:   res.Ranker.FilterDropped,
		Swaps:           res.Ranker.Swaps,
		Findings:        findings,
	}
	for _, r := range reports {
		pv := PatternView{
			Name:        r.Name,
			Count:       r.Count,
			MeanLatency: r.MeanLatency.Round(time.Microsecond).String(),
		}
		for _, s := range r.Shares {
			w := int(s.Percent * 3)
			if w < 1 {
				w = 1
			}
			if w > 300 {
				w = 300
			}
			pv.Shares = append(pv.Shares, ShareView{
				Category: s.Category,
				Percent:  s.Percent,
				Width:    w,
				Mean:     s.Mean.Round(time.Microsecond).String(),
			})
		}
		d.Patterns = append(d.Patterns, pv)
	}
	return d
}

var tmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; }
td, th { padding: 3px 10px; text-align: left; border-bottom: 1px solid #ddd; font-size: 0.9em; }
.bar { display: inline-block; height: 11px; background: #4a7db5; vertical-align: middle; }
.pct { display: inline-block; width: 4.5em; text-align: right; font-variant-numeric: tabular-nums; }
.finding { background: #fff3e0; border-left: 4px solid #e65100; padding: 6px 10px; margin: 6px 0; font-size: 0.9em; }
.meta { color: #666; font-size: 0.85em; }
</style></head><body>
<h1>{{.Title}}</h1>
<p class="meta">{{.Generated}}</p>
<h2>Run summary</h2>
<table>
<tr><th>activities</th><td>{{.Activities}}</td></tr>
<tr><th>causal paths</th><td>{{.Paths}}</td></tr>
<tr><th>unfinished</th><td>{{.Unfinished}}</td></tr>
<tr><th>correlation time</th><td>{{.CorrelationTime}}</td></tr>
<tr><th>memory estimate</th><td>{{.MemoryEstimate}}</td></tr>
<tr><th>noise removed (is_noise / filter)</th><td>{{.NoiseDropped}} / {{.FilterDropped}}</td></tr>
<tr><th>concurrency swaps</th><td>{{.Swaps}}</td></tr>
</table>
{{if .Findings}}
<h2>Detector findings</h2>
{{range .Findings}}<div class="finding"><b>{{.Category}}</b> {{printf "%+.1f" .DeltaPoints}} points
({{printf "%.1f" .BasePercent}}% &rarr; {{printf "%.1f" .NowPercent}}%): {{.Reason}}</div>{{end}}
{{end}}
<h2>Causal path patterns</h2>
{{range .Patterns}}
<h3>{{.Name}} <span class="meta">&times;{{.Count}}, mean {{.MeanLatency}}</span></h3>
<table>
{{range .Shares}}<tr><td>{{.Category}}</td>
<td><span class="pct">{{printf "%.1f" .Percent}}%</span>
<span class="bar" style="width:{{.Width}}px"></span></td>
<td class="meta">{{.Mean}}</td></tr>
{{end}}</table>
{{end}}
</body></html>
`))

// Render writes the HTML report.
func Render(w io.Writer, d *Data) error {
	return tmpl.Execute(w, d)
}

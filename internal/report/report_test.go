package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/rubis"
)

func buildData(t *testing.T) *Data {
	t.Helper()
	cfg := rubis.DefaultConfig(60)
	cfg.Scale = 0.01
	res, err := rubis.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.New(core.Options{
		Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
	}).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := analysis.Report(out.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	findings := []analysis.Finding{{
		Category: "java2java", BasePercent: 10, NowPercent: 50, DeltaPoints: 40,
		Suspect: "java", Reason: "time inside java grew",
	}}
	return Build("test run", out, reports, findings)
}

func TestBuildAndRender(t *testing.T) {
	d := buildData(t)
	if d.Paths == 0 || len(d.Patterns) == 0 {
		t.Fatalf("data incomplete: %+v", d)
	}
	var sb strings.Builder
	if err := Render(&sb, d); err != nil {
		t.Fatal(err)
	}
	html := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "test run", "Causal path patterns",
		"httpd2java", "Detector findings", "java2java", "class=\"bar\"",
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestRenderNoFindings(t *testing.T) {
	d := buildData(t)
	d.Findings = nil
	var sb strings.Builder
	if err := Render(&sb, d); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "Detector findings") {
		t.Fatal("empty findings should omit the section")
	}
}

func TestBarWidthsClamped(t *testing.T) {
	d := buildData(t)
	for _, p := range d.Patterns {
		for _, s := range p.Shares {
			if s.Width < 1 || s.Width > 300 {
				t.Fatalf("bar width %d out of range", s.Width)
			}
		}
	}
}

func TestHTMLEscaping(t *testing.T) {
	d := buildData(t)
	d.Title = `<script>alert("x")</script>`
	var sb strings.Builder
	if err := Render(&sb, d); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "<script>alert") {
		t.Fatal("title not escaped")
	}
}

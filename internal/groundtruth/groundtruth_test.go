package groundtruth

import (
	"testing"

	"repro/internal/activity"
	"repro/internal/cag"
)

func mkActivity(id, req int64) *activity.Activity {
	return &activity.Activity{ID: id, ReqID: req, MsgID: -1, Type: activity.Begin,
		Ctx: activity.Context{Host: "web1", Program: "httpd", PID: 1, TID: 1}}
}

// graphWith builds a minimal two-vertex CAG whose records carry the given
// (id, req) pairs, split across the two vertices.
func graphWith(t *testing.T, pairs ...[2]int64) *cag.Graph {
	t.Helper()
	ctx := activity.Context{Host: "web1", Program: "httpd", PID: 1, TID: 1}
	root := &cag.Vertex{Type: activity.Begin, Ctx: ctx}
	end := &cag.Vertex{Type: activity.End, Ctx: ctx}
	for i, p := range pairs {
		a := mkActivity(p[0], p[1])
		if i%2 == 0 {
			root.Records = append(root.Records, a)
		} else {
			end.Records = append(end.Records, a)
		}
	}
	g := cag.New(root)
	if err := g.AddVertex(end, cag.ContextEdge, root); err != nil {
		t.Fatal(err)
	}
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestJudgeCorrect(t *testing.T) {
	tr := New()
	tr.Add(7, 1)
	tr.Add(7, 2)
	g := graphWith(t, [2]int64{1, 7}, [2]int64{2, 7})
	v, req := tr.Judge(g)
	if v != Correct || req != 7 {
		t.Fatalf("verdict = %v req=%d", v, req)
	}
}

func TestJudgeMixed(t *testing.T) {
	tr := New()
	tr.Add(7, 1)
	tr.Add(8, 2)
	g := graphWith(t, [2]int64{1, 7}, [2]int64{2, 8})
	if v, _ := tr.Judge(g); v != Mixed {
		t.Fatalf("verdict = %v, want mixed", v)
	}
}

func TestJudgeDeformedMissing(t *testing.T) {
	tr := New()
	tr.Add(7, 1)
	tr.Add(7, 2)
	tr.Add(7, 3)
	g := graphWith(t, [2]int64{1, 7}, [2]int64{2, 7}) // record 3 missing
	if v, _ := tr.Judge(g); v != Deformed {
		t.Fatalf("verdict = %v, want deformed", v)
	}
}

func TestJudgeDeformedForeignRecord(t *testing.T) {
	tr := New()
	tr.Add(7, 1)
	tr.Add(7, 2)
	// Graph claims record 99 which truth does not associate with request 7.
	g := graphWith(t, [2]int64{1, 7}, [2]int64{99, 7})
	if v, _ := tr.Judge(g); v != Deformed {
		t.Fatalf("verdict = %v, want deformed", v)
	}
}

func TestJudgeOrphan(t *testing.T) {
	tr := New()
	g := graphWith(t, [2]int64{1, -1}, [2]int64{2, -1})
	if v, _ := tr.Judge(g); v != Orphan {
		t.Fatalf("verdict = %v, want orphan", v)
	}
}

func TestEvaluateCountsAndAccuracy(t *testing.T) {
	tr := New()
	tr.Add(1, 10)
	tr.Add(2, 20)
	tr.Add(3, 30)
	graphs := []*cag.Graph{
		graphWith(t, [2]int64{10, 1}), // correct
		graphWith(t, [2]int64{20, 2}), // correct
		// request 3 missing entirely
	}
	rep := tr.Evaluate(graphs)
	if rep.CorrectPaths != 2 || rep.MissingPaths != 1 || rep.LoggedRequests != 3 {
		t.Fatalf("report: %+v", rep)
	}
	if acc := rep.PathAccuracy(); acc < 0.66 || acc > 0.67 {
		t.Fatalf("accuracy = %f", acc)
	}
	if rep.FalseNegatives() != 1 || rep.FalsePositives() != 0 {
		t.Fatalf("fp/fn: %+v", rep)
	}
}

func TestEvaluateDuplicate(t *testing.T) {
	tr := New()
	tr.Add(1, 10)
	graphs := []*cag.Graph{
		graphWith(t, [2]int64{10, 1}),
		graphWith(t, [2]int64{10, 1}),
	}
	rep := tr.Evaluate(graphs)
	if rep.CorrectPaths != 1 || rep.DuplicatePaths != 1 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestFromTraceSkipsNoise(t *testing.T) {
	trace := []*activity.Activity{
		mkActivity(1, 7),
		mkActivity(2, -1), // noise
		mkActivity(3, 7),
	}
	tr := FromTrace(trace)
	if tr.Requests() != 1 {
		t.Fatalf("requests = %d", tr.Requests())
	}
}

func TestEmptyTruthAccuracyIsOne(t *testing.T) {
	rep := New().Evaluate(nil)
	if rep.PathAccuracy() != 1 {
		t.Fatalf("empty accuracy = %f", rep.PathAccuracy())
	}
}

func TestVerdictString(t *testing.T) {
	for _, v := range []Verdict{Correct, Mixed, Deformed, Orphan} {
		if v.String() == "" {
			t.Fatal("empty verdict string")
		}
	}
}

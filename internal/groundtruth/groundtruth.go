// Package groundtruth implements the accuracy methodology of §5.2. The
// paper modifies RUBiS to tag and propagate a globally unique request ID and
// then checks every inferred causal path against those tags; here the
// simulated testbed plays the role of modified RUBiS by tagging each logged
// activity with the request that caused it. A causal path is correct iff
// the CAG contains exactly the activities of one request — no false
// positives (foreign or extra activities) and no false negatives (missing
// activities).
package groundtruth

import (
	"fmt"

	"repro/internal/activity"
	"repro/internal/cag"
)

// Truth is the per-request expected activity sets.
type Truth struct {
	byRequest map[int64]map[int64]bool // reqID -> set of record IDs
}

// New returns an empty truth table.
func New() *Truth {
	return &Truth{byRequest: make(map[int64]map[int64]bool)}
}

// FromTrace builds the truth table from a tagged trace: every record with
// ReqID >= 0 belongs to that request's expected set. Noise records
// (ReqID < 0) are excluded by definition.
func FromTrace(trace []*activity.Activity) *Truth {
	t := New()
	for _, a := range trace {
		if a.ReqID >= 0 {
			t.Add(a.ReqID, a.ID)
		}
	}
	return t
}

// Add records that record recID belongs to request reqID.
func (t *Truth) Add(reqID, recID int64) {
	set := t.byRequest[reqID]
	if set == nil {
		set = make(map[int64]bool)
		t.byRequest[reqID] = set
	}
	set[recID] = true
}

// Requests returns the number of distinct logged requests.
func (t *Truth) Requests() int { return len(t.byRequest) }

// Verdict classifies one CAG against the truth.
type Verdict int

// Verdict values.
const (
	Correct  Verdict = iota + 1 // exactly one request's full activity set
	Mixed                       // activities of more than one request (false positive)
	Deformed                    // one request but missing or extra activities
	Orphan                      // no ground-truth activities at all (noise CAG)
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Correct:
		return "correct"
	case Mixed:
		return "mixed"
	case Deformed:
		return "deformed"
	case Orphan:
		return "orphan"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Judge classifies a single CAG.
func (t *Truth) Judge(g *cag.Graph) (Verdict, int64) {
	reqs := g.RequestIDs()
	switch len(reqs) {
	case 0:
		return Orphan, -1
	case 1:
	default:
		return Mixed, -1
	}
	req := reqs[0]
	want := t.byRequest[req]
	got := g.RecordIDs()
	if len(got) != len(want) {
		return Deformed, req
	}
	for _, id := range got {
		if !want[id] {
			return Deformed, req
		}
	}
	return Correct, req
}

// Report aggregates accuracy over a correlation run.
type Report struct {
	LoggedRequests int // requests present in the truth (denominator)
	CAGs           int // CAGs produced by the correlator
	CorrectPaths   int
	MixedPaths     int
	DeformedPaths  int
	OrphanPaths    int
	DuplicatePaths int // second CAG claiming an already-matched request
	MissingPaths   int // requests with no correct CAG
}

// PathAccuracy is the paper's metric: correct paths / all logged requests.
func (r Report) PathAccuracy() float64 {
	if r.LoggedRequests == 0 {
		return 1
	}
	return float64(r.CorrectPaths) / float64(r.LoggedRequests)
}

// FalsePositives counts CAGs that assert causality that did not exist.
func (r Report) FalsePositives() int { return r.MixedPaths + r.DeformedPaths + r.OrphanPaths }

// FalseNegatives counts requests whose true path was not produced.
func (r Report) FalseNegatives() int { return r.MissingPaths }

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("accuracy=%.4f correct=%d/%d mixed=%d deformed=%d orphan=%d dup=%d missing=%d",
		r.PathAccuracy(), r.CorrectPaths, r.LoggedRequests, r.MixedPaths, r.DeformedPaths,
		r.OrphanPaths, r.DuplicatePaths, r.MissingPaths)
}

// Evaluate judges every CAG and aggregates the report.
func (t *Truth) Evaluate(graphs []*cag.Graph) Report {
	rep := Report{LoggedRequests: len(t.byRequest), CAGs: len(graphs)}
	matched := make(map[int64]bool)
	for _, g := range graphs {
		v, req := t.Judge(g)
		switch v {
		case Correct:
			if matched[req] {
				rep.DuplicatePaths++
				continue
			}
			matched[req] = true
			rep.CorrectPaths++
		case Mixed:
			rep.MixedPaths++
		case Deformed:
			rep.DeformedPaths++
		case Orphan:
			rep.OrphanPaths++
		}
	}
	rep.MissingPaths = rep.LoggedRequests - rep.CorrectPaths
	return rep
}

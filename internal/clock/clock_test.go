package clock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLocalAppliesOffset(t *testing.T) {
	c := New(WithOffset(250 * time.Millisecond))
	got := c.Local(time.Second)
	if got != time.Second+250*time.Millisecond {
		t.Fatalf("Local = %v, want 1.25s", got)
	}
}

func TestLocalNegativeOffset(t *testing.T) {
	c := New(WithOffset(-100 * time.Millisecond))
	got := c.Local(time.Second)
	if got != 900*time.Millisecond {
		t.Fatalf("Local = %v, want 900ms", got)
	}
}

func TestDrift(t *testing.T) {
	c := New(WithDriftPPM(100)) // gains 100µs per second
	got := c.Local(10 * time.Second)
	want := 10*time.Second + time.Millisecond
	if got != want {
		t.Fatalf("Local = %v, want %v", got, want)
	}
}

func TestQuantum(t *testing.T) {
	c := New(WithQuantum(time.Microsecond))
	got := c.Local(1500 * time.Nanosecond)
	if got != time.Microsecond {
		t.Fatalf("Local = %v, want 1µs", got)
	}
}

func TestMonotonic(t *testing.T) {
	// A strongly negative drift could reverse local time; the clock must
	// clamp to keep its own log ordered.
	c := New(WithDriftPPM(-2e6)) // pathological: loses 2s per second
	a := c.Local(time.Second)
	b := c.Local(2 * time.Second)
	if b < a {
		t.Fatalf("local time went backwards: %v then %v", a, b)
	}
}

func TestSkewScenarioMaxPairwise(t *testing.T) {
	s := SkewScenario{MaxSkew: 500 * time.Millisecond}
	const n = 8
	var lo, hi time.Duration
	for i := 0; i < n; i++ {
		off := s.ClockFor(i, n).Offset()
		if i == 0 || off < lo {
			lo = off
		}
		if i == 0 || off > hi {
			hi = off
		}
	}
	spread := hi - lo
	if spread > 500*time.Millisecond || spread < 400*time.Millisecond {
		t.Fatalf("pairwise skew spread = %v, want ~500ms", spread)
	}
}

func TestSkewScenarioSingleNode(t *testing.T) {
	s := SkewScenario{MaxSkew: time.Second}
	c := s.ClockFor(0, 1)
	if c.Offset() != 0 {
		t.Fatalf("single node offset = %v, want 0", c.Offset())
	}
}

// Property: for any non-negative drift and offset, local time is monotone in
// global time.
func TestPropertyMonotone(t *testing.T) {
	f := func(offMs int16, driftPPM int16, samples []uint32) bool {
		c := New(WithOffset(time.Duration(offMs)*time.Millisecond), WithDriftPPM(float64(driftPPM)))
		// Feed sorted global times.
		var global time.Duration
		var prev time.Duration
		first := true
		for _, s := range samples {
			global += time.Duration(s % 1e6)
			l := c.Local(global)
			if !first && l < prev {
				return false
			}
			prev, first = l, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSkewScenarioDriftAlternates(t *testing.T) {
	s := SkewScenario{MaxSkew: 100 * time.Millisecond, DriftPPM: 50}
	c0 := s.ClockFor(0, 4)
	c1 := s.ClockFor(1, 4)
	if c0.DriftPPM() != 50 || c1.DriftPPM() != -50 {
		t.Fatalf("drift signs: %f %f", c0.DriftPPM(), c1.DriftPPM())
	}
}

func TestClockString(t *testing.T) {
	c := New(WithOffset(time.Millisecond), WithDriftPPM(10), WithQuantum(time.Microsecond))
	s := c.String()
	if s == "" {
		t.Fatal("empty String")
	}
}

func TestQuantumAndOffsetCompose(t *testing.T) {
	c := New(WithOffset(time.Microsecond/2), WithQuantum(time.Microsecond))
	// 1.5µs raw -> quantised down to 1µs.
	if got := c.Local(time.Microsecond); got != time.Microsecond {
		t.Fatalf("Local = %v", got)
	}
}

// Package clock models imperfect per-node clocks. The paper's tracing
// algorithm is explicitly independent of clock synchronisation quality
// (§4.1: "our tracing algorithm does not depend on highly precise clock
// synchronization across distributed nodes"), and §5.2 validates accuracy
// with skews from 1 ms to 500 ms. This package produces node-local
// timestamps from the simulator's global virtual time: an offset (skew), a
// linear drift rate, and optional timestamp quantisation. Local timestamps
// are guaranteed monotonic per node, matching a real kernel's trace log.
package clock

import (
	"fmt"
	"time"
)

// Clock converts global virtual time into one node's local timestamps.
type Clock struct {
	offset   time.Duration
	driftPPM float64
	quantum  time.Duration
	last     time.Duration
	primed   bool
}

// Option configures a Clock.
type Option func(*Clock)

// WithOffset sets a constant skew added to every local reading. Both signs
// are valid; the paper sweeps 1 ms – 500 ms.
func WithOffset(off time.Duration) Option {
	return func(c *Clock) { c.offset = off }
}

// WithDriftPPM sets a linear drift in parts per million: after one global
// second the local clock has gained (or lost) drift µs.
func WithDriftPPM(ppm float64) Option {
	return func(c *Clock) { c.driftPPM = ppm }
}

// WithQuantum rounds local readings down to a multiple of q, modelling a
// clock source with limited resolution (the paper logs microseconds).
func WithQuantum(q time.Duration) Option {
	return func(c *Clock) { c.quantum = q }
}

// New returns a clock with the given imperfections.
func New(opts ...Option) *Clock {
	c := &Clock{}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Offset returns the configured constant skew.
func (c *Clock) Offset() time.Duration { return c.offset }

// DriftPPM returns the configured drift rate.
func (c *Clock) DriftPPM() float64 { return c.driftPPM }

// Local converts a global virtual time into this node's local timestamp.
// Successive calls with non-decreasing global times yield non-decreasing
// local times (a kernel log is totally ordered in its own clock).
func (c *Clock) Local(global time.Duration) time.Duration {
	local := global + c.offset + time.Duration(c.driftPPM*float64(global)/1e6)
	if c.quantum > 0 {
		local -= local % c.quantum
	}
	if c.primed && local < c.last {
		local = c.last
	}
	c.last = local
	c.primed = true
	return local
}

// String implements fmt.Stringer.
func (c *Clock) String() string {
	return fmt.Sprintf("clock{offset=%v drift=%.1fppm quantum=%v}", c.offset, c.driftPPM, c.quantum)
}

// SkewScenario assigns per-node clocks for an experiment. The paper's §5.2
// sweeps the maximum pairwise skew; Spread distributes offsets in
// [-max/2, +max/2] across node indices deterministically.
type SkewScenario struct {
	MaxSkew  time.Duration
	DriftPPM float64
	Quantum  time.Duration
}

// ClockFor returns the clock for node i of n under this scenario. Offsets
// alternate sign and grow with index so that the largest pairwise skew
// equals MaxSkew.
func (s SkewScenario) ClockFor(i, n int) *Clock {
	if n <= 1 {
		return New(WithDriftPPM(s.DriftPPM), WithQuantum(s.Quantum))
	}
	// Spread offsets evenly across [-MaxSkew/2, +MaxSkew/2].
	span := int64(s.MaxSkew)
	step := span / int64(n-1)
	off := time.Duration(-span/2 + step*int64(i))
	drift := s.DriftPPM
	if i%2 == 1 {
		drift = -drift
	}
	return New(WithOffset(off), WithDriftPPM(drift), WithQuantum(s.Quantum))
}

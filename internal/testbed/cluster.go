// Package testbed simulates the paper's experimental platform: a Linux
// cluster of SMP nodes connected by a switched Ethernet, whose kernels run
// the TCP_TRACE instrumentation. The paper used 8 nodes with two PIII
// processors each and a 100 Mbps switch (§5.1); this package reproduces
// that shape as a deterministic discrete-event simulation.
//
// The substitution preserves what the correlation algorithm can observe:
// per-node logs of SEND/RECEIVE activities in node-local (skewed, drifting)
// clock time, with TCP's n-to-n segmentation between send and receive
// sides, thread/process contexts from pools that recycle entities across
// requests, background noise traffic, and an instrumentation overhead knob
// for the tracing-enabled/disabled comparison of Fig. 12/13.
package testbed

import (
	"fmt"
	"time"

	"repro/internal/activity"
	"repro/internal/clock"
	"repro/internal/des"
)

// Collector gathers activities logged by traced nodes — the union of the
// per-node TCP_TRACE logs that is shipped to the Correlator.
type Collector struct {
	enabled   bool
	nextID    int64
	byHost    map[string][]*activity.Activity
	hostOrder []string
}

// NewCollector returns an enabled collector.
func NewCollector() *Collector {
	return &Collector{enabled: true, byHost: make(map[string][]*activity.Activity)}
}

// SetEnabled turns the instrumentation on or off cluster-wide (the
// enable/disable comparison of §5.3.2). Disabled collection also removes
// the per-activity probe overhead.
func (c *Collector) SetEnabled(on bool) { c.enabled = on }

// Enabled reports whether instrumentation is active.
func (c *Collector) Enabled() bool { return c.enabled }

// log records one activity for a host, assigning a globally unique ID.
func (c *Collector) log(host string, a *activity.Activity) {
	a.ID = c.nextID
	c.nextID++
	if _, ok := c.byHost[host]; !ok {
		c.hostOrder = append(c.hostOrder, host)
	}
	c.byHost[host] = append(c.byHost[host], a)
}

// Count returns the total number of logged activities.
func (c *Collector) Count() int {
	n := 0
	for _, log := range c.byHost {
		n += len(log)
	}
	return n
}

// PerHost returns each traced node's log (in local-clock order, as a real
// kernel would emit it). The map and slices are the live internals; callers
// must not mutate them.
func (c *Collector) PerHost() map[string][]*activity.Activity { return c.byHost }

// Merged returns all logs concatenated in first-logged host order (the
// Correlator re-splits by host itself); deterministic for a given seed.
func (c *Collector) Merged() []*activity.Activity {
	out := make([]*activity.Activity, 0, c.Count())
	for _, host := range c.hostOrder {
		out = append(out, c.byHost[host]...)
	}
	return out
}

// Node is one simulated machine.
type Node struct {
	Name  string
	IP    string
	CPU   *des.CPU
	Clock *clock.Clock

	cluster   *Cluster
	traced    bool
	probeCost time.Duration
	nextPort  int
	nextPID   int
}

// Traced reports whether TCP_TRACE runs on this node.
func (n *Node) Traced() bool { return n.traced }

// AllocPort returns a fresh ephemeral port.
func (n *Node) AllocPort() int {
	p := n.nextPort
	n.nextPort++
	return p
}

// AllocPID returns a fresh process/thread ID.
func (n *Node) AllocPID() int {
	p := n.nextPID
	n.nextPID++
	return p
}

// Endpoint returns this node's address for the given port.
func (n *Node) Endpoint(port int) activity.Endpoint {
	return activity.Endpoint{IP: n.IP, Port: port}
}

// LocalTime returns the node's current local-clock reading.
func (n *Node) LocalTime() time.Duration {
	return n.Clock.Local(n.cluster.sim.Now())
}

// probeDelay returns the per-logged-activity instrumentation cost, zero
// when tracing is disabled or the node is untraced.
func (n *Node) probeDelay() time.Duration {
	if !n.traced || !n.cluster.collector.enabled {
		return 0
	}
	return n.probeCost
}

// log emits one activity into the collector if this node is traced and
// instrumentation is enabled.
func (n *Node) log(typ activity.Type, ctx activity.Context, ch activity.Channel, size int64, reqID, msgID int64) {
	if !n.traced || !n.cluster.collector.enabled {
		return
	}
	n.cluster.collector.log(n.Name, &activity.Activity{
		Type:      typ,
		Timestamp: n.LocalTime(),
		Ctx:       ctx,
		Chan:      ch,
		Size:      size,
		ReqID:     reqID,
		MsgID:     msgID,
	})
}

// Entity is one execution entity (process or kernel thread) on a node —
// the paper's context. An entity serves one request at a time, matching
// the application-scope assumption of §2.
type Entity struct {
	Node *Node
	Ctx  activity.Context
}

// NewEntity creates an execution entity for a program on this node.
// For process-per-worker servers pass tid == pid.
func (n *Node) NewEntity(program string, pid, tid int) Entity {
	return Entity{
		Node: n,
		Ctx:  activity.Context{Host: n.Name, Program: program, PID: pid, TID: tid},
	}
}

// NodeConfig configures one simulated machine.
type NodeConfig struct {
	Name  string
	IP    string
	Cores int
	// Traced enables TCP_TRACE on the node; client emulators are untraced.
	Traced bool
	// ProbeCost is the per-logged-activity overhead of the kernel probes
	// (SystemTap trap + formatting); applied only while tracing is enabled.
	ProbeCost time.Duration
	Clock     *clock.Clock
}

// Cluster is the simulated data center.
type Cluster struct {
	sim       *des.Simulator
	collector *Collector
	nodes     map[string]*Node
	nodeOrder []string
	nextMsgID int64
}

// NewCluster returns an empty cluster over a fresh simulator.
func NewCluster() *Cluster {
	return &Cluster{
		sim:       des.New(),
		collector: NewCollector(),
		nodes:     make(map[string]*Node),
	}
}

// Sim exposes the discrete-event simulator.
func (c *Cluster) Sim() *des.Simulator { return c.sim }

// Collector exposes the trace collector.
func (c *Cluster) Collector() *Collector { return c.collector }

// AddNode creates and registers a machine.
func (c *Cluster) AddNode(cfg NodeConfig) *Node {
	if cfg.Cores <= 0 {
		cfg.Cores = 2 // the paper's dual-PIII nodes
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.New()
	}
	n := &Node{
		Name:      cfg.Name,
		IP:        cfg.IP,
		CPU:       des.NewCPU(c.sim, cfg.Cores),
		Clock:     cfg.Clock,
		cluster:   c,
		traced:    cfg.Traced,
		probeCost: cfg.ProbeCost,
		nextPort:  32768,
		nextPID:   1000,
	}
	c.nodes[cfg.Name] = n
	c.nodeOrder = append(c.nodeOrder, cfg.Name)
	return n
}

// Node returns a registered node by name, or nil.
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// IPToHost builds the traced-node address map the Correlator needs.
func (c *Cluster) IPToHost() map[string]string {
	m := make(map[string]string)
	for _, name := range c.nodeOrder {
		n := c.nodes[name]
		if n.traced {
			m[n.IP] = n.Name
		}
	}
	return m
}

// NextMsgID allocates a ground-truth logical message ID.
func (c *Cluster) NextMsgID() int64 {
	id := c.nextMsgID
	c.nextMsgID++
	return id
}

// String implements fmt.Stringer.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{nodes=%d t=%v activities=%d}", len(c.nodes), c.sim.Now(), c.collector.Count())
}

package testbed

import (
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/clock"
)

func twoNodes(t *testing.T) (*Cluster, *Node, *Node) {
	t.Helper()
	c := NewCluster()
	a := c.AddNode(NodeConfig{Name: "web1", IP: "10.0.0.1", Cores: 2, Traced: true})
	b := c.AddNode(NodeConfig{Name: "app1", IP: "10.0.0.2", Cores: 2, Traced: true})
	return c, a, b
}

func TestSendReceiveLogsActivities(t *testing.T) {
	c, a, b := twoNodes(t)
	sender := a.NewEntity("httpd", 100, 100)
	receiver := b.NewEntity("java", 200, 201)
	conn := c.Dial(a, b, 8009, NetConfig{Latency: time.Millisecond})

	var readDone bool
	conn.Send(sender, 500, 7, nil)
	conn.Read(receiver, func() { readDone = true })
	c.Sim().Run()

	if !readDone {
		t.Fatal("read never completed")
	}
	logs := c.Collector().PerHost()
	if len(logs["web1"]) != 1 || len(logs["app1"]) != 1 {
		t.Fatalf("logs: web1=%d app1=%d, want 1/1", len(logs["web1"]), len(logs["app1"]))
	}
	s, r := logs["web1"][0], logs["app1"][0]
	if s.Type != activity.Send || r.Type != activity.Receive {
		t.Fatalf("types: %v %v", s.Type, r.Type)
	}
	if s.Chan != r.Chan {
		t.Fatalf("channel mismatch: %v vs %v", s.Chan, r.Chan)
	}
	if s.Size != 500 || r.Size != 500 {
		t.Fatalf("sizes: %d %d", s.Size, r.Size)
	}
	if s.ReqID != 7 || r.ReqID != 7 || s.MsgID != r.MsgID {
		t.Fatalf("truth tags: %+v %+v", s, r)
	}
	if r.Timestamp < s.Timestamp+time.Millisecond {
		t.Fatalf("receive at %v before propagation from %v", r.Timestamp, s.Timestamp)
	}
}

func TestSegmentationProducesNToN(t *testing.T) {
	c, a, b := twoNodes(t)
	sender := a.NewEntity("httpd", 100, 100)
	receiver := b.NewEntity("java", 200, 201)
	conn := c.Dial(a, b, 8009, NetConfig{MSS: 400, RecvChunk: 300})

	conn.Send(sender, 900, 1, nil) // 400+400+100 on the wire
	conn.Read(receiver, nil)       // read as 300+300+300
	c.Sim().Run()

	logs := c.Collector().PerHost()
	if got := len(logs["web1"]); got != 3 {
		t.Fatalf("send segments = %d, want 3", got)
	}
	if got := len(logs["app1"]); got != 3 {
		t.Fatalf("receive segments = %d, want 3", got)
	}
	var sendSum, recvSum int64
	for _, s := range logs["web1"] {
		sendSum += s.Size
	}
	for _, r := range logs["app1"] {
		recvSum += r.Size
	}
	if sendSum != 900 || recvSum != 900 {
		t.Fatalf("segment size sums: %d %d, want 900", sendSum, recvSum)
	}
	// All segments share the logical message ID.
	msgID := logs["web1"][0].MsgID
	for _, x := range append(logs["web1"], logs["app1"]...) {
		if x.MsgID != msgID {
			t.Fatal("segments must share MsgID")
		}
	}
}

func TestReadBeforeArrivalBlocks(t *testing.T) {
	c, a, b := twoNodes(t)
	sender := a.NewEntity("httpd", 100, 100)
	receiver := b.NewEntity("java", 200, 201)
	conn := c.Dial(a, b, 8009, NetConfig{Latency: 5 * time.Millisecond})

	var readAt time.Duration
	conn.Read(receiver, func() { readAt = c.Sim().Now() })
	conn.Send(sender, 100, 1, nil)
	c.Sim().Run()
	if readAt < 5*time.Millisecond {
		t.Fatalf("read completed at %v, before latency elapsed", readAt)
	}
}

func TestLateReaderTimestampsAtReadTime(t *testing.T) {
	// The message arrives at 1ms but the reader only reads at 50ms (e.g.
	// waiting for a thread): the RECEIVE activity must carry ~50ms — this
	// is what makes thread-pool waits visible in interaction latencies.
	c, a, b := twoNodes(t)
	sender := a.NewEntity("httpd", 100, 100)
	receiver := b.NewEntity("java", 200, 201)
	conn := c.Dial(a, b, 8009, NetConfig{Latency: time.Millisecond})

	conn.Send(sender, 100, 1, nil)
	c.Sim().Schedule(50*time.Millisecond, func() {
		conn.Read(receiver, nil)
	})
	c.Sim().Run()
	r := c.Collector().PerHost()["app1"][0]
	if r.Timestamp < 50*time.Millisecond {
		t.Fatalf("RECEIVE logged at %v, want >= 50ms (read time)", r.Timestamp)
	}
}

func TestBandwidthDelaysDelivery(t *testing.T) {
	c, a, b := twoNodes(t)
	sender := a.NewEntity("httpd", 100, 100)
	receiver := b.NewEntity("java", 200, 201)
	// 1 MB/s => 100KB takes 100ms.
	conn := c.Dial(a, b, 8009, NetConfig{Bandwidth: 1 << 20})
	var readAt time.Duration
	conn.Send(sender, 100*1024, 1, nil)
	conn.Read(receiver, func() { readAt = c.Sim().Now() })
	c.Sim().Run()
	if readAt < 90*time.Millisecond || readAt > 120*time.Millisecond {
		t.Fatalf("delivery at %v, want ~100ms", readAt)
	}
}

func TestUntracedNodeLogsNothing(t *testing.T) {
	c := NewCluster()
	a := c.AddNode(NodeConfig{Name: "client1", IP: "10.0.0.9", Traced: false})
	b := c.AddNode(NodeConfig{Name: "web1", IP: "10.0.0.1", Traced: true})
	sender := a.NewEntity("client", 1, 1)
	receiver := b.NewEntity("httpd", 2, 2)
	conn := c.Dial(a, b, 80, NetConfig{})
	conn.Send(sender, 100, 1, nil)
	conn.Read(receiver, nil)
	c.Sim().Run()
	logs := c.Collector().PerHost()
	if len(logs["client1"]) != 0 {
		t.Fatal("untraced node must not log")
	}
	if len(logs["web1"]) != 1 {
		t.Fatalf("web1 logged %d, want 1", len(logs["web1"]))
	}
}

func TestCollectorDisableStopsLoggingAndOverhead(t *testing.T) {
	c, a, b := twoNodes(t)
	c.Collector().SetEnabled(false)
	sender := a.NewEntity("httpd", 100, 100)
	receiver := b.NewEntity("java", 200, 201)
	conn := c.Dial(a, b, 8009, NetConfig{})
	conn.Send(sender, 100, 1, nil)
	conn.Read(receiver, nil)
	c.Sim().Run()
	if c.Collector().Count() != 0 {
		t.Fatalf("disabled collector logged %d activities", c.Collector().Count())
	}
}

func TestProbeCostSlowsSegments(t *testing.T) {
	mk := func(probe time.Duration, enabled bool) time.Duration {
		c := NewCluster()
		a := c.AddNode(NodeConfig{Name: "web1", IP: "10.0.0.1", Traced: true, ProbeCost: probe})
		b := c.AddNode(NodeConfig{Name: "app1", IP: "10.0.0.2", Traced: true, ProbeCost: probe})
		c.Collector().SetEnabled(enabled)
		sender := a.NewEntity("httpd", 1, 1)
		receiver := b.NewEntity("java", 2, 2)
		conn := c.Dial(a, b, 8009, NetConfig{MSS: 100})
		var doneAt time.Duration
		conn.Send(sender, 1000, 1, nil) // 10 segments
		conn.Read(receiver, func() { doneAt = c.Sim().Now() })
		c.Sim().Run()
		return doneAt
	}
	withProbe := mk(100*time.Microsecond, true)
	without := mk(100*time.Microsecond, false)
	if withProbe <= without {
		t.Fatalf("tracing-enabled run (%v) should be slower than disabled (%v)", withProbe, without)
	}
}

func TestLocalTimestampsUseNodeClock(t *testing.T) {
	c := NewCluster()
	skewed := clock.New(clock.WithOffset(300 * time.Millisecond))
	a := c.AddNode(NodeConfig{Name: "web1", IP: "10.0.0.1", Traced: true, Clock: skewed})
	b := c.AddNode(NodeConfig{Name: "app1", IP: "10.0.0.2", Traced: true})
	sender := a.NewEntity("httpd", 1, 1)
	receiver := b.NewEntity("java", 2, 2)
	conn := c.Dial(a, b, 8009, NetConfig{Latency: time.Millisecond})
	conn.Send(sender, 100, 1, nil)
	conn.Read(receiver, nil)
	c.Sim().Run()
	s := c.Collector().PerHost()["web1"][0]
	r := c.Collector().PerHost()["app1"][0]
	// The sender's local timestamp is 300ms ahead, so it appears LATER than
	// the receive despite happening first — the skew the ranker tolerates.
	if s.Timestamp <= r.Timestamp {
		t.Fatalf("expected skewed SEND ts %v > RECEIVE ts %v", s.Timestamp, r.Timestamp)
	}
}

func TestPerHostLogsAreTimestampOrdered(t *testing.T) {
	c, a, b := twoNodes(t)
	conn := c.Dial(a, b, 8009, NetConfig{MSS: 50, RecvChunk: 70})
	for i := 0; i < 20; i++ {
		i := i
		sender := a.NewEntity("httpd", 100+i, 100+i)
		receiver := b.NewEntity("java", 200, 300+i)
		c.Sim().Schedule(time.Duration(i)*time.Millisecond, func() {
			conn.Send(sender, 200, int64(i), nil)
			conn.Read(receiver, nil)
		})
	}
	c.Sim().Run()
	for host, log := range c.Collector().PerHost() {
		for i := 1; i < len(log); i++ {
			if log[i].Timestamp < log[i-1].Timestamp {
				t.Fatalf("%s log out of order at %d", host, i)
			}
		}
	}
}

func TestNoiseGeneratorProducesUntaggedTraffic(t *testing.T) {
	c := NewCluster()
	db := c.AddNode(NodeConfig{Name: "db1", IP: "10.0.0.3", Traced: true})
	ext := c.AddNode(NodeConfig{Name: "ext1", IP: "10.0.0.200", Traced: false})
	n := StartNoise(c, NoiseConfig{
		Program:      "mysqld",
		ServiceNode:  db,
		ServicePort:  3306,
		ClientNode:   ext,
		Sessions:     3,
		MeanInterval: 10 * time.Millisecond,
		ReqSize:      64,
		RespSize:     256,
	}, 1, 500*time.Millisecond)
	c.Sim().Run()
	if n.Exchanges() == 0 {
		t.Fatal("no noise exchanges happened")
	}
	logs := c.Collector().PerHost()["db1"]
	if len(logs) == 0 {
		t.Fatal("noise produced no db1 activities")
	}
	for _, a := range logs {
		if a.ReqID != -1 {
			t.Fatalf("noise activity tagged with request %d", a.ReqID)
		}
		if a.Ctx.Program != "mysqld" {
			t.Fatalf("noise program = %q", a.Ctx.Program)
		}
	}
}

func TestIPToHostOnlyTraced(t *testing.T) {
	c := NewCluster()
	c.AddNode(NodeConfig{Name: "web1", IP: "10.0.0.1", Traced: true})
	c.AddNode(NodeConfig{Name: "client1", IP: "10.0.0.9", Traced: false})
	m := c.IPToHost()
	if len(m) != 1 || m["10.0.0.1"] != "web1" {
		t.Fatalf("IPToHost = %v", m)
	}
}

func TestSplitSize(t *testing.T) {
	cases := []struct {
		size  int64
		chunk int
		want  int
	}{
		{100, 0, 1},
		{100, 200, 1},
		{100, 100, 1},
		{101, 100, 2},
		{900, 400, 3},
	}
	for _, tc := range cases {
		parts := splitSize(tc.size, tc.chunk)
		if len(parts) != tc.want {
			t.Errorf("splitSize(%d,%d) = %d parts, want %d", tc.size, tc.chunk, len(parts), tc.want)
		}
		var sum int64
		for _, p := range parts {
			sum += p
		}
		if sum != tc.size {
			t.Errorf("splitSize(%d,%d) sums to %d", tc.size, tc.chunk, sum)
		}
	}
}

package testbed

import (
	"time"

	"repro/internal/activity"
)

// NetConfig describes one connection's network behaviour.
type NetConfig struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth is bytes per second; 0 means unlimited. The EJB_Network
	// fault of §5.4.2 (100 Mbps -> 10 Mbps) is modelled by lowering this.
	Bandwidth int64
	// MSS is the sender-side segmentation threshold: a message larger than
	// MSS is logged as multiple consecutive SEND activities. 0 disables
	// splitting.
	MSS int
	// RecvChunk is the receiver-side read granularity: a delivered message
	// is logged as ceil(size/RecvChunk) RECEIVE activities. 0 disables
	// splitting. Choosing RecvChunk != MSS exercises the paper's n-to-n
	// SEND/RECEIVE matching (Fig. 4).
	RecvChunk int
	// SegGap is the local-time spacing between consecutive segment logs;
	// defaults to 2µs.
	SegGap time.Duration
}

func (c NetConfig) segGap() time.Duration {
	if c.SegGap <= 0 {
		return 2 * time.Microsecond
	}
	return c.SegGap
}

// transit returns how long after the last SEND segment the full message
// arrives at the receiver.
func (c NetConfig) transit(size int64) time.Duration {
	d := c.Latency
	if c.Bandwidth > 0 {
		d += time.Duration(float64(size) / float64(c.Bandwidth) * float64(time.Second))
	}
	return d
}

func splitSize(size int64, chunk int) []int64 {
	if chunk <= 0 || size <= int64(chunk) {
		return []int64{size}
	}
	var parts []int64
	for size > 0 {
		p := int64(chunk)
		if size < p {
			p = size
		}
		parts = append(parts, p)
		size -= p
	}
	return parts
}

type message struct {
	size  int64
	reqID int64
	msgID int64
}

type pendingReader struct {
	ent Entity
	fn  func()
}

// connDir is one direction of a connection.
type connDir struct {
	conn    *Conn
	from    *Node
	to      *Node
	ch      activity.Channel
	pending []message
	readers []pendingReader
}

// Conn is a reliable bidirectional channel between two nodes, identified by
// its 4-tuple — the paper's end-to-end communication channel. Messages per
// direction are delivered in order.
type Conn struct {
	cluster *Cluster
	cfg     NetConfig
	dirs    [2]connDir
}

// Dial opens a connection from node `from` (fresh ephemeral port) to
// `to:toPort`.
func (c *Cluster) Dial(from, to *Node, toPort int, cfg NetConfig) *Conn {
	srcPort := from.AllocPort()
	ab := activity.Channel{Src: from.Endpoint(srcPort), Dst: to.Endpoint(toPort)}
	conn := &Conn{cluster: c, cfg: cfg}
	conn.dirs[0] = connDir{conn: conn, from: from, to: to, ch: ab}
	conn.dirs[1] = connDir{conn: conn, from: to, to: from, ch: ab.Reverse()}
	return conn
}

// Channel returns the forward (dialer -> listener) channel tuple.
func (conn *Conn) Channel() activity.Channel { return conn.dirs[0].ch }

func (conn *Conn) dirFromNode(n *Node) *connDir {
	if conn.dirs[0].from == n {
		return &conn.dirs[0]
	}
	return &conn.dirs[1]
}

func (conn *Conn) dirToNode(n *Node) *connDir {
	if conn.dirs[0].to == n {
		return &conn.dirs[0]
	}
	return &conn.dirs[1]
}

// Send transmits a logical message of `size` bytes from the given entity
// (which must live on one endpoint's node). The sender's kernel logs one or
// more SEND activities; done (optional) runs once the last segment has been
// logged — the entity's next activity must causally follow it.
func (conn *Conn) Send(from Entity, size int64, reqID int64, done func()) {
	d := conn.dirFromNode(from.Node)
	msgID := conn.cluster.NextMsgID()
	parts := splitSize(size, conn.cfg.MSS)
	gap := conn.cfg.segGap() + from.Node.probeDelay()
	sim := conn.cluster.sim

	for i, p := range parts {
		p := p
		sim.Schedule(time.Duration(i)*gap, func() {
			from.Node.log(activity.Send, from.Ctx, d.ch, p, reqID, msgID)
		})
	}
	lastLog := time.Duration(len(parts)-1) * gap
	if done != nil {
		sim.Schedule(lastLog, done)
	}
	arrival := lastLog + conn.cfg.transit(size)
	sim.Schedule(arrival, func() {
		d.deliver(message{size: size, reqID: reqID, msgID: msgID})
	})
}

// Read registers the entity as the next reader on its side of the
// connection; fn runs after the kernel has logged the RECEIVE activities
// for one full message. Multiple outstanding reads queue FIFO.
func (conn *Conn) Read(reader Entity, fn func()) {
	d := conn.dirToNode(reader.Node)
	if len(d.pending) > 0 {
		m := d.pending[0]
		d.pending = d.pending[1:]
		d.startRead(reader, m, fn)
		return
	}
	d.readers = append(d.readers, pendingReader{ent: reader, fn: fn})
}

func (d *connDir) deliver(m message) {
	if len(d.readers) > 0 {
		r := d.readers[0]
		d.readers = d.readers[1:]
		d.startRead(r.ent, m, r.fn)
		return
	}
	d.pending = append(d.pending, m)
}

// startRead logs the receiver-side RECEIVE segments and then resumes the
// reader. The timestamps are the read time (when the application drains the
// socket), not the wire-arrival time — exactly what a tcp_recvmsg probe
// observes, and the reason queueing for a worker thread shows up inside the
// interaction latency (e.g. httpd2java in §5.4.1).
func (d *connDir) startRead(reader Entity, m message, fn func()) {
	parts := splitSize(m.size, d.conn.cfg.RecvChunk)
	gap := d.conn.cfg.segGap() + reader.Node.probeDelay()
	sim := d.conn.cluster.sim
	for i, p := range parts {
		p := p
		sim.Schedule(time.Duration(i)*gap, func() {
			reader.Node.log(activity.Receive, reader.Ctx, d.ch, p, m.reqID, m.msgID)
		})
	}
	if fn != nil {
		sim.Schedule(time.Duration(len(parts)-1)*gap, fn)
	}
}

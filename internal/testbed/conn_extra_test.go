package testbed

import (
	"testing"
	"time"

	"repro/internal/activity"
)

func TestPerDirectionFIFODelivery(t *testing.T) {
	// Two messages sent back to back must be read in order.
	c, a, b := twoNodes(t)
	sender := a.NewEntity("httpd", 1, 1)
	receiver := b.NewEntity("java", 2, 2)
	conn := c.Dial(a, b, 8009, NetConfig{Latency: time.Millisecond})

	var got []int64
	conn.Send(sender, 111, 1, nil)
	conn.Send(sender, 222, 2, nil)
	conn.Read(receiver, func() { got = append(got, 111) })
	conn.Read(receiver, func() { got = append(got, 222) })
	c.Sim().Run()
	if len(got) != 2 || got[0] != 111 || got[1] != 222 {
		t.Fatalf("delivery order: %v", got)
	}
	// Receiver-side log sizes must be in send order too.
	log := c.Collector().PerHost()["app1"]
	if log[0].Size != 111 || log[1].Size != 222 {
		t.Fatalf("log order: %v %v", log[0], log[1])
	}
}

func TestReaderQueueFIFO(t *testing.T) {
	// Multiple outstanding reads are matched to messages in order.
	c, a, b := twoNodes(t)
	sender := a.NewEntity("httpd", 1, 1)
	r1 := b.NewEntity("java", 2, 21)
	r2 := b.NewEntity("java", 2, 22)
	conn := c.Dial(a, b, 8009, NetConfig{})

	var order []int
	conn.Read(r1, func() { order = append(order, 1) })
	conn.Read(r2, func() { order = append(order, 2) })
	conn.Send(sender, 10, 1, nil)
	conn.Send(sender, 10, 2, nil)
	c.Sim().Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("reader order: %v", order)
	}
}

func TestBidirectionalChannelsAreDistinct(t *testing.T) {
	c, a, b := twoNodes(t)
	ea := a.NewEntity("httpd", 1, 1)
	eb := b.NewEntity("java", 2, 2)
	conn := c.Dial(a, b, 8009, NetConfig{})
	conn.Send(ea, 10, 1, nil)
	conn.Read(eb, func() {
		conn.Send(eb, 20, 1, nil)
		conn.Read(ea, nil)
	})
	c.Sim().Run()
	fwd := c.Collector().PerHost()["web1"][0].Chan
	rev := c.Collector().PerHost()["app1"][1].Chan
	if fwd != rev.Reverse() {
		t.Fatalf("reverse direction channel mismatch: %v vs %v", fwd, rev)
	}
}

func TestSendDoneRunsAfterLastSegmentLog(t *testing.T) {
	c, a, b := twoNodes(t)
	sender := a.NewEntity("httpd", 1, 1)
	receiver := b.NewEntity("java", 2, 2)
	conn := c.Dial(a, b, 8009, NetConfig{MSS: 100})
	var doneAt time.Duration
	conn.Send(sender, 500, 1, func() { doneAt = c.Sim().Now() }) // 5 segments
	conn.Read(receiver, nil)
	c.Sim().Run()
	log := c.Collector().PerHost()["web1"]
	if len(log) != 5 {
		t.Fatalf("segments = %d", len(log))
	}
	last := log[len(log)-1].Timestamp
	if doneAt != last {
		t.Fatalf("done at %v, last segment logged at %v", doneAt, last)
	}
}

func TestSegGapOrdersSegmentTimestamps(t *testing.T) {
	c, a, b := twoNodes(t)
	sender := a.NewEntity("httpd", 1, 1)
	receiver := b.NewEntity("java", 2, 2)
	conn := c.Dial(a, b, 8009, NetConfig{MSS: 100, SegGap: 10 * time.Microsecond})
	conn.Send(sender, 300, 1, nil)
	conn.Read(receiver, nil)
	c.Sim().Run()
	log := c.Collector().PerHost()["web1"]
	for i := 1; i < len(log); i++ {
		if log[i].Timestamp-log[i-1].Timestamp != 10*time.Microsecond {
			t.Fatalf("segment spacing: %v -> %v", log[i-1].Timestamp, log[i].Timestamp)
		}
	}
}

func TestEntityContextFields(t *testing.T) {
	c := NewCluster()
	n := c.AddNode(NodeConfig{Name: "x", IP: "1.2.3.4", Traced: true})
	e := n.NewEntity("prog", 10, 20)
	want := activity.Context{Host: "x", Program: "prog", PID: 10, TID: 20}
	if e.Ctx != want {
		t.Fatalf("ctx = %v", e.Ctx)
	}
	if e.Node != n {
		t.Fatal("entity node binding")
	}
}

func TestAllocatorsMonotone(t *testing.T) {
	c := NewCluster()
	n := c.AddNode(NodeConfig{Name: "x", IP: "1.2.3.4"})
	p1, p2 := n.AllocPort(), n.AllocPort()
	if p2 != p1+1 {
		t.Fatalf("ports: %d %d", p1, p2)
	}
	i1, i2 := n.AllocPID(), n.AllocPID()
	if i2 != i1+1 {
		t.Fatalf("pids: %d %d", i1, i2)
	}
	m1, m2 := c.NextMsgID(), c.NextMsgID()
	if m2 != m1+1 {
		t.Fatalf("msg ids: %d %d", m1, m2)
	}
}

func TestNodeLookupAndString(t *testing.T) {
	c := NewCluster()
	n := c.AddNode(NodeConfig{Name: "x", IP: "1.2.3.4"})
	if c.Node("x") != n || c.Node("nope") != nil {
		t.Fatal("Node lookup")
	}
	if c.String() == "" || n.Traced() {
		t.Fatal("string/traced defaults")
	}
}

func TestTransitScalesWithSize(t *testing.T) {
	cfg := NetConfig{Latency: time.Millisecond, Bandwidth: 1_000_000}
	small := cfg.transit(1000)  // 1ms + 1ms
	large := cfg.transit(10000) // 1ms + 10ms
	if small != 2*time.Millisecond || large != 11*time.Millisecond {
		t.Fatalf("transit: %v %v", small, large)
	}
	if free := (NetConfig{Latency: time.Millisecond}).transit(1 << 30); free != time.Millisecond {
		t.Fatalf("unlimited bandwidth transit = %v", free)
	}
}

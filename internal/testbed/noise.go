package testbed

import (
	"time"

	"repro/internal/des"
)

// NoiseConfig describes one background-traffic generator, reproducing the
// §5.3.3 setup: rlogin and ssh sessions (filterable by program name) and a
// MySQL client hammering the shared database port (not filterable by
// attributes — only is_noise removes its activities).
type NoiseConfig struct {
	// Program is the server-side program name on the traced node, e.g.
	// "sshd", "rlogind" or "mysqld" (the MySQL-client case shares the real
	// database's program and port).
	Program string
	// ServiceNode is the traced node whose kernel logs the noise.
	ServiceNode *Node
	// ServicePort is the destination port on the service node.
	ServicePort int
	// ClientNode is the untraced peer generating the traffic.
	ClientNode *Node
	// Sessions is the number of concurrent noise connections.
	Sessions int
	// MeanInterval is the mean (exponential) gap between exchanges per
	// session.
	MeanInterval time.Duration
	// ReqSize and RespSize are the exchange message sizes.
	ReqSize, RespSize int64
	// ServiceDemand is CPU consumed on the service node per exchange.
	ServiceDemand time.Duration
	// Net is the connection's network behaviour.
	Net NetConfig
}

// Noise runs background sessions until the stop time.
type Noise struct {
	cluster   *Cluster
	cfg       NoiseConfig
	rng       *des.RNG
	stop      time.Duration
	exchanges uint64
}

// Exchanges returns the number of completed request/response noise rounds.
func (n *Noise) Exchanges() uint64 { return n.exchanges }

// StartNoise launches the generator; sessions run autonomously inside the
// cluster's simulator until stopAt.
func StartNoise(c *Cluster, cfg NoiseConfig, seed int64, stopAt time.Duration) *Noise {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.MeanInterval <= 0 {
		cfg.MeanInterval = 50 * time.Millisecond
	}
	n := &Noise{cluster: c, cfg: cfg, rng: des.NewRNG(seed), stop: stopAt}
	for i := 0; i < cfg.Sessions; i++ {
		server := cfg.ServiceNode.NewEntity(cfg.Program, cfg.ServiceNode.AllocPID(), cfg.ServiceNode.AllocPID())
		client := cfg.ClientNode.NewEntity("noiseclient", cfg.ClientNode.AllocPID(), cfg.ClientNode.AllocPID())
		conn := c.Dial(cfg.ClientNode, cfg.ServiceNode, cfg.ServicePort, cfg.Net)
		// Stagger session starts so exchanges interleave with real load.
		c.sim.Schedule(n.rng.Exp(cfg.MeanInterval), func() {
			n.sessionLoop(conn, client, server)
		})
	}
	return n
}

// sessionLoop runs one exchange and reschedules itself until the stop time.
func (n *Noise) sessionLoop(conn *Conn, client, server Entity) {
	sim := n.cluster.sim
	if sim.Now() >= n.stop {
		return
	}
	// Client -> server request. ReqID -1 marks noise for ground truth.
	conn.Send(client, n.cfg.ReqSize, -1, nil)
	conn.Read(server, func() {
		server.Node.CPU.Use(n.cfg.ServiceDemand, func() {
			conn.Send(server, n.cfg.RespSize, -1, nil)
			conn.Read(client, func() {
				n.exchanges++
				sim.Schedule(n.rng.Exp(n.cfg.MeanInterval), func() {
					n.sessionLoop(conn, client, server)
				})
			})
		})
	})
}

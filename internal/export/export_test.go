package export

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
)

// buildPath builds the canonical two-tier request graph: six vertices
// on web1/httpd and app1/java, a message round trip, and the extra
// context edge into the RECEIVE — the same shape the analysis and live
// tests use.
func buildPath(t testing.TB, hop time.Duration, salt int) *cag.Graph {
	t.Helper()
	httpd := activity.Context{Host: "web1", Program: "httpd", PID: salt, TID: salt}
	java := activity.Context{Host: "app1", Program: "java", PID: 2, TID: 100 + salt}
	cch := activity.Channel{Src: activity.Endpoint{IP: "c", Port: 1000 + salt}, Dst: activity.Endpoint{IP: "w", Port: 80}}
	wch := activity.Channel{Src: activity.Endpoint{IP: "w", Port: 2000 + salt}, Dst: activity.Endpoint{IP: "a", Port: 8009}}

	ts := func(i int) time.Duration { return time.Duration(i) * hop }
	g := cag.New(&cag.Vertex{Type: activity.Begin, Timestamp: ts(0), Ctx: httpd, Chan: cch})
	s1 := &cag.Vertex{Type: activity.Send, Timestamp: ts(1), Ctx: httpd, Chan: wch, Size: 512}
	if err := g.AddVertex(s1, cag.ContextEdge, g.Root()); err != nil {
		t.Fatal(err)
	}
	r1 := &cag.Vertex{Type: activity.Receive, Timestamp: ts(2), Ctx: java, Chan: wch, Size: 512}
	if err := g.AddVertex(r1, cag.MessageEdge, s1); err != nil {
		t.Fatal(err)
	}
	s2 := &cag.Vertex{Type: activity.Send, Timestamp: ts(3), Ctx: java, Chan: wch.Reverse(), Size: 2048}
	if err := g.AddVertex(s2, cag.ContextEdge, r1); err != nil {
		t.Fatal(err)
	}
	r2 := &cag.Vertex{Type: activity.Receive, Timestamp: ts(4), Ctx: httpd, Chan: wch.Reverse(), Size: 2048}
	if err := g.AddVertex(r2, cag.MessageEdge, s2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(cag.ContextEdge, s1, r2); err != nil {
		t.Fatal(err)
	}
	end := &cag.Vertex{Type: activity.End, Timestamp: ts(5), Ctx: httpd, Chan: cch.Reverse()}
	if err := g.AddVertex(end, cag.ContextEdge, r2); err != nil {
		t.Fatal(err)
	}
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	return g
}

type edge struct{ from, to int }

// dotEdges parses the edge lines out of cag.ToDOT — the reference edge
// sets the OTLP span tree must reproduce.
func dotEdges(t *testing.T, dot string) (ctx, msg []edge) {
	t.Helper()
	re := regexp.MustCompile(`v(\d+) -> v(\d+) \[style=(solid|dashed)`)
	for _, m := range re.FindAllStringSubmatch(dot, -1) {
		var e edge
		fmt.Sscanf(m[1], "%d", &e.from)
		fmt.Sscanf(m[2], "%d", &e.to)
		if m[3] == "solid" {
			ctx = append(ctx, e)
		} else {
			msg = append(msg, e)
		}
	}
	return ctx, msg
}

func attr(sp Span, key string) (string, bool) {
	for _, kv := range sp.Attributes {
		if kv.Key != key {
			continue
		}
		if kv.Value.StringValue != nil {
			return *kv.Value.StringValue, true
		}
		if kv.Value.IntValue != nil {
			return *kv.Value.IntValue, true
		}
	}
	return "", false
}

// TestTraceMatchesDOT pins the acceptance criterion: the exported span
// tree carries exactly the vertex/edge structure of the DOT render —
// context edges as parentSpanId links tagged ctx, message edges as span
// links — and round-trips through encoding/json as valid OTLP-JSON.
func TestTraceMatchesDOT(t *testing.T) {
	g := buildPath(t, 3*time.Millisecond, 7)
	g.SetProvenance(true, true)

	raw, err := json.Marshal(Trace(g))
	if err != nil {
		t.Fatal(err)
	}
	var req Request
	if err := json.Unmarshal(raw, &req); err != nil {
		t.Fatalf("re-parse OTLP-JSON: %v", err)
	}
	if len(req.ResourceSpans) != 1 || len(req.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("shape = %d resourceSpans", len(req.ResourceSpans))
	}
	if v, _ := attr(Span{Attributes: req.ResourceSpans[0].Resource.Attributes}, "service.name"); v != "precisetracer" {
		t.Fatalf("service.name = %q", v)
	}
	spans := req.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) != g.Len() {
		t.Fatalf("spans = %d, want %d", len(spans), g.Len())
	}

	traceID := TraceID(g)
	if len(traceID) != 32 || traceID == strings.Repeat("0", 32) {
		t.Fatalf("traceId = %q", traceID)
	}
	spanIdx := make(map[string]int) // spanId -> vertex index
	for i := range spans {
		if spans[i].TraceID != traceID {
			t.Fatalf("span %d traceId = %q", i, spans[i].TraceID)
		}
		if want := SpanID(traceID, i); spans[i].SpanID != want {
			t.Fatalf("span %d spanId = %q, want %q", i, spans[i].SpanID, want)
		}
		spanIdx[spans[i].SpanID] = i
	}

	// Reconstruct the edge sets from the spans.
	var gotCtx, gotMsg []edge
	for i, sp := range spans {
		kind, _ := attr(sp, "cag.parent_edge")
		if sp.ParentSpanID != "" && kind == "ctx" {
			gotCtx = append(gotCtx, edge{from: spanIdx[sp.ParentSpanID], to: i})
		}
		for _, l := range sp.Links {
			gotMsg = append(gotMsg, edge{from: spanIdx[l.SpanID], to: i})
		}
		if sp.ParentSpanID != "" && kind == "msg" {
			// A msg parent must also appear among the links.
			found := false
			for _, l := range sp.Links {
				if l.SpanID == sp.ParentSpanID {
					found = true
				}
			}
			if !found {
				t.Fatalf("span %d: msg parent missing from links", i)
			}
		}
	}
	wantCtx, wantMsg := dotEdges(t, cag.ToDOT(g, cag.PatternName(g)))
	assertEdges(t, "ctx", gotCtx, wantCtx)
	assertEdges(t, "msg", gotMsg, wantMsg)

	// Vertex metadata: name, type, host, times.
	for i, sp := range spans {
		v := g.Vertex(i)
		if want := fmt.Sprintf("%s %s/%s", v.Type, v.Ctx.Host, v.Ctx.Program); sp.Name != want {
			t.Fatalf("span %d name = %q, want %q", i, sp.Name, want)
		}
		if want := fmt.Sprintf("%d", v.Timestamp.Nanoseconds()); sp.StartTimeUnixNano != want {
			t.Fatalf("span %d start = %q, want %q", i, sp.StartTimeUnixNano, want)
		}
		var start, end int64
		fmt.Sscanf(sp.StartTimeUnixNano, "%d", &start)
		fmt.Sscanf(sp.EndTimeUnixNano, "%d", &end)
		if end < start {
			t.Fatalf("span %d ends (%d) before it starts (%d)", i, end, start)
		}
	}

	// Root carries identity attributes and the provenance events.
	root := spans[0]
	if sig, _ := attr(root, "cag.signature"); sig != cag.Signature(g) {
		t.Fatalf("root signature = %q", sig)
	}
	if pat, _ := attr(root, "cag.pattern"); pat != cag.PatternName(g) {
		t.Fatalf("root pattern = %q", pat)
	}
	if lat, _ := attr(root, "cag.latency_ns"); lat != fmt.Sprintf("%d", g.Latency().Nanoseconds()) {
		t.Fatalf("root latency = %q", lat)
	}
	names := make([]string, 0, 2)
	for _, ev := range root.Events {
		names = append(names, ev.Name)
	}
	if len(names) != 2 || names[0] != "cag.forced_seal" || names[1] != "cag.late_link" {
		t.Fatalf("root events = %v", names)
	}
}

func assertEdges(t *testing.T, kind string, got, want []edge) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s edges = %v, want %v", kind, got, want)
	}
	seen := make(map[edge]bool, len(want))
	for _, e := range want {
		seen[e] = true
	}
	for _, e := range got {
		if !seen[e] {
			t.Fatalf("%s edge %v not in DOT render (%v)", kind, e, want)
		}
	}
}

// TestTraceIDDeterministic pins ID stability and distinctness.
func TestTraceIDDeterministic(t *testing.T) {
	a := buildPath(t, 2*time.Millisecond, 1)
	b := buildPath(t, 2*time.Millisecond, 2)
	if TraceID(a) != TraceID(a) {
		t.Fatal("traceId not stable")
	}
	if TraceID(a) == TraceID(b) {
		t.Fatal("distinct requests share a traceId")
	}
	if SpanID(TraceID(a), 0) == SpanID(TraceID(a), 1) {
		t.Fatal("span ids collide across indices")
	}
}

func TestFileExporterNDJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.ndjson")
	e, err := NewFileExporter(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e.ConsumeGraph(buildPath(t, time.Millisecond, i))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Graphs() != 3 || e.Spans() != 18 {
		t.Fatalf("graphs/spans = %d/%d", e.Graphs(), e.Spans())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		var req Request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		if n := len(req.ResourceSpans[0].ScopeSpans[0].Spans); n != 6 {
			t.Fatalf("line %d: spans = %d", lines+1, n)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("lines = %d, want 3", lines)
	}
}

func TestHTTPExporterBatches(t *testing.T) {
	var posts int
	var spans int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode: %v", err)
		}
		for _, rs := range req.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				spans += len(ss.Spans)
			}
		}
		posts++
	}))
	defer srv.Close()

	h := NewHTTPExporter(srv.URL)
	h.SetBatchSize(2)
	for i := 0; i < 5; i++ {
		h.ConsumeGraph(buildPath(t, time.Millisecond, i))
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if posts != 3 || h.Posts() != 3 {
		t.Fatalf("posts = %d/%d, want 3", posts, h.Posts())
	}
	if spans != 30 {
		t.Fatalf("spans = %d, want 30", spans)
	}
}

func TestHTTPExporterStickyError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadGateway)
	}))
	defer srv.Close()
	h := NewHTTPExporter(srv.URL)
	h.SetBatchSize(1)
	h.ConsumeGraph(buildPath(t, time.Millisecond, 0))
	if h.Err() == nil {
		t.Fatal("expected sticky error after 502")
	}
	h.ConsumeGraph(buildPath(t, time.Millisecond, 1))
	if err := h.Close(); err == nil || !strings.Contains(err.Error(), "502") {
		t.Fatalf("close err = %v", err)
	}
}

func TestDOTDirSink(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dots")
	d, err := NewDOTDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := buildPath(t, time.Millisecond, 3)
	d.ConsumeGraph(g)
	d.ConsumeGraph(buildPath(t, time.Millisecond, 4))
	if d.Err() != nil || d.Graphs() != 2 {
		t.Fatalf("err=%v graphs=%d", d.Err(), d.Graphs())
	}
	raw, err := os.ReadFile(filepath.Join(dir, "cag-000001.dot"))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != cag.ToDOT(g, cag.PatternName(g)) {
		t.Fatal("dot file differs from ToDOT render")
	}
}

func TestDumpWriterSink(t *testing.T) {
	var b strings.Builder
	d := NewDumpWriter(&b)
	g := buildPath(t, time.Millisecond, 5)
	d.ConsumeGraph(g)
	out := b.String()
	if !strings.Contains(out, "=== graph 1 ") || !strings.Contains(out, cag.Dump(g)) {
		t.Fatalf("dump output missing sections:\n%s", out)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

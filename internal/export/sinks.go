package export

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"

	"repro/internal/cag"
)

// Exporter streams one OTLP-JSON export request per graph, one JSON
// object per line (NDJSON — the shape the OpenTelemetry collector's
// file receiver replays). Errors are sticky: the first write failure
// silences all further output and is reported by Err and Close, so a
// full pipeline run never aborts mid-stream on a dead disk.
//
// Exporter implements core.GraphSink. Like every sink it runs on the
// emitter goroutine; no locking is needed.
type Exporter struct {
	w      io.Writer
	c      io.Closer
	enc    *json.Encoder
	err    error
	graphs int
	spans  int
}

// NewExporter writes OTLP-JSON lines to w.
func NewExporter(w io.Writer) *Exporter {
	return &Exporter{w: w, enc: json.NewEncoder(w)}
}

// NewFileExporter creates (truncates) path and writes OTLP-JSON lines
// to it. Close flushes and closes the file.
func NewFileExporter(path string) (*Exporter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	e := NewExporter(f)
	e.c = f
	return e, nil
}

// ConsumeGraph implements core.GraphSink.
func (e *Exporter) ConsumeGraph(g *cag.Graph) {
	if e.err != nil {
		return
	}
	req := Trace(g)
	if err := e.enc.Encode(req); err != nil {
		e.err = fmt.Errorf("export: %w", err)
		return
	}
	e.graphs++
	for _, rs := range req.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			e.spans += len(ss.Spans)
		}
	}
}

// Graphs returns the number of traces exported so far.
func (e *Exporter) Graphs() int { return e.graphs }

// Spans returns the number of spans exported so far.
func (e *Exporter) Spans() int { return e.spans }

// Err returns the sticky error, if any.
func (e *Exporter) Err() error { return e.err }

// Close closes the underlying file (when opened by NewFileExporter) and
// returns the sticky error.
func (e *Exporter) Close() error {
	if e.c != nil {
		if err := e.c.Close(); err != nil && e.err == nil {
			e.err = fmt.Errorf("export: %w", err)
		}
		e.c = nil
	}
	return e.err
}

// HTTPExporter POSTs OTLP-JSON export requests to an OTLP/HTTP traces
// endpoint (conventionally …/v1/traces), batching BatchSize graphs per
// request. Errors are sticky, like Exporter's. Close flushes the final
// partial batch.
type HTTPExporter struct {
	url    string
	client *http.Client

	batchSize int
	batch     []ResourceSpans
	err       error
	graphs    int
	posts     int
}

// DefaultHTTPBatch is the number of graphs coalesced per POST.
const DefaultHTTPBatch = 64

// NewHTTPExporter targets url with http.DefaultClient and the default
// batch size.
func NewHTTPExporter(url string) *HTTPExporter {
	return &HTTPExporter{url: url, client: http.DefaultClient, batchSize: DefaultHTTPBatch}
}

// SetClient overrides the HTTP client (tests, timeouts).
func (h *HTTPExporter) SetClient(c *http.Client) { h.client = c }

// SetBatchSize overrides the graphs-per-POST coalescing factor.
func (h *HTTPExporter) SetBatchSize(n int) {
	if n > 0 {
		h.batchSize = n
	}
}

// ConsumeGraph implements core.GraphSink.
func (h *HTTPExporter) ConsumeGraph(g *cag.Graph) {
	if h.err != nil {
		return
	}
	h.batch = append(h.batch, Trace(g).ResourceSpans...)
	h.graphs++
	if len(h.batch) >= h.batchSize {
		h.flush()
	}
}

func (h *HTTPExporter) flush() {
	if h.err != nil || len(h.batch) == 0 {
		return
	}
	body, err := json.Marshal(Request{ResourceSpans: h.batch})
	if err != nil {
		h.err = fmt.Errorf("export: %w", err)
		return
	}
	h.batch = h.batch[:0]
	resp, err := h.client.Post(h.url, "application/json", bytes.NewReader(body))
	if err != nil {
		h.err = fmt.Errorf("export: %w", err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		h.err = fmt.Errorf("export: %s returned %s", h.url, resp.Status)
	}
	h.posts++
}

// Graphs returns the number of graphs accepted so far (including any
// still buffered).
func (h *HTTPExporter) Graphs() int { return h.graphs }

// Posts returns the number of successful HTTP flushes.
func (h *HTTPExporter) Posts() int { return h.posts }

// Err returns the sticky error, if any.
func (h *HTTPExporter) Err() error { return h.err }

// Close flushes the trailing partial batch and returns the sticky
// error.
func (h *HTTPExporter) Close() error {
	h.flush()
	return h.err
}

// DOTDir writes each emitted graph as a standalone Graphviz file
// (cag-000001.dot, cag-000002.dot, …) titled with its pattern name —
// the per-graph form of the CLI's -dot flag, usable as a sink while a
// live monitor runs alongside. Errors are sticky.
type DOTDir struct {
	dir string
	n   int
	err error
}

// NewDOTDir creates dir (if needed) and returns the sink.
func NewDOTDir(dir string) (*DOTDir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	return &DOTDir{dir: dir}, nil
}

// ConsumeGraph implements core.GraphSink.
func (d *DOTDir) ConsumeGraph(g *cag.Graph) {
	if d.err != nil {
		return
	}
	d.n++
	path := filepath.Join(d.dir, fmt.Sprintf("cag-%06d.dot", d.n))
	if err := os.WriteFile(path, []byte(cag.ToDOT(g, cag.PatternName(g))), 0o644); err != nil {
		d.err = fmt.Errorf("export: %w", err)
	}
}

// Graphs returns the number of files written.
func (d *DOTDir) Graphs() int { return d.n }

// Err returns the sticky error, if any.
func (d *DOTDir) Err() error { return d.err }

// DumpWriter appends each emitted graph's canonical textual dump —
// cag.Dump plus an identity header — to one writer, the golden-capture
// form used to byte-diff two pipeline runs. Errors are sticky.
type DumpWriter struct {
	w   io.Writer
	c   io.Closer
	n   int
	err error
}

// NewDumpWriter writes dumps to w.
func NewDumpWriter(w io.Writer) *DumpWriter { return &DumpWriter{w: w} }

// NewDumpFile creates (truncates) path for dump output; Close closes it.
func NewDumpFile(path string) (*DumpWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	return &DumpWriter{w: f, c: f}, nil
}

// ConsumeGraph implements core.GraphSink.
func (d *DumpWriter) ConsumeGraph(g *cag.Graph) {
	if d.err != nil {
		return
	}
	d.n++
	forced, late := g.Provenance()
	_, err := fmt.Fprintf(d.w, "=== graph %d pattern=%q latency=%v forced=%v late=%v\n%s\n",
		d.n, cag.PatternName(g), g.Latency(), forced, late, cag.Dump(g))
	if err != nil {
		d.err = fmt.Errorf("export: %w", err)
	}
}

// Graphs returns the number of dumps written.
func (d *DumpWriter) Graphs() int { return d.n }

// Err returns the sticky error, if any.
func (d *DumpWriter) Err() error { return d.err }

// Close closes the underlying file (when opened by NewDumpFile) and
// returns the sticky error.
func (d *DumpWriter) Close() error {
	if d.c != nil {
		if err := d.c.Close(); err != nil && d.err == nil {
			d.err = fmt.Errorf("export: %w", err)
		}
		d.c = nil
	}
	return d.err
}

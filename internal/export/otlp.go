// Package export turns finished CAGs into external formats: OTLP-JSON
// spans (the OpenTelemetry wire shape, so any OTLP-compatible backend
// can render a correlated request as a distributed trace), Graphviz DOT
// files, and canonical textual dumps. Every emitter implements
// core.GraphSink so it plugs into the session's emission chain next to
// a live.Monitor.
//
// The span mapping (one trace per CAG):
//
//	CAG vertex            → span (name "TYPE host/program")
//	adjacent context edge → parentSpanId (attribute cag.parent_edge=ctx)
//	message edge          → span link; also the parent when the vertex
//	                        has no context parent (cag.parent_edge=msg)
//	forced seal / late link provenance → span events on the root span
//
// Timestamps are the node-local activity times rendered as unix-nano
// strings; cross-host spans therefore show raw skew, exactly like the
// cag.Timeline rendering. Trace and span IDs are deterministic FNV
// hashes of the graph's identity, so re-exporting the same trace is
// idempotent.
package export

import (
	"fmt"
	"hash/fnv"
	"strconv"

	"repro/internal/activity"
	"repro/internal/cag"
)

// The structs below mirror the OTLP/JSON encoding of
// opentelemetry-proto's ExportTraceServiceRequest: lowerCamelCase keys,
// hex-encoded IDs, and 64-bit integers carried as decimal strings.

// Request is one ExportTraceServiceRequest payload.
type Request struct {
	ResourceSpans []ResourceSpans `json:"resourceSpans"`
}

// ResourceSpans groups the spans of one resource.
type ResourceSpans struct {
	Resource   Resource     `json:"resource"`
	ScopeSpans []ScopeSpans `json:"scopeSpans"`
}

// Resource identifies the emitting service.
type Resource struct {
	Attributes []KeyValue `json:"attributes,omitempty"`
}

// ScopeSpans groups the spans of one instrumentation scope.
type ScopeSpans struct {
	Scope Scope  `json:"scope"`
	Spans []Span `json:"spans"`
}

// Scope names the instrumentation that produced the spans.
type Scope struct {
	Name string `json:"name"`
}

// Span is one OTLP span.
type Span struct {
	TraceID           string     `json:"traceId"`
	SpanID            string     `json:"spanId"`
	ParentSpanID      string     `json:"parentSpanId,omitempty"`
	Name              string     `json:"name"`
	Kind              int        `json:"kind,omitempty"`
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	EndTimeUnixNano   string     `json:"endTimeUnixNano"`
	Attributes        []KeyValue `json:"attributes,omitempty"`
	Events            []Event    `json:"events,omitempty"`
	Links             []Link     `json:"links,omitempty"`
}

// Event is one timestamped span event.
type Event struct {
	TimeUnixNano string     `json:"timeUnixNano"`
	Name         string     `json:"name"`
	Attributes   []KeyValue `json:"attributes,omitempty"`
}

// Link points at another span (here: always within the same trace).
type Link struct {
	TraceID    string     `json:"traceId"`
	SpanID     string     `json:"spanId"`
	Attributes []KeyValue `json:"attributes,omitempty"`
}

// KeyValue is one attribute.
type KeyValue struct {
	Key   string   `json:"key"`
	Value AnyValue `json:"value"`
}

// AnyValue carries a string or int attribute value. OTLP/JSON renders
// 64-bit integers as decimal strings.
type AnyValue struct {
	StringValue *string `json:"stringValue,omitempty"`
	IntValue    *string `json:"intValue,omitempty"`
}

// Str builds a string attribute.
func Str(key, val string) KeyValue {
	return KeyValue{Key: key, Value: AnyValue{StringValue: &val}}
}

// Int builds an integer attribute.
func Int(key string, val int64) KeyValue {
	s := strconv.FormatInt(val, 10)
	return KeyValue{Key: key, Value: AnyValue{IntValue: &s}}
}

// spanKindInternal is OTLP's SPAN_KIND_INTERNAL.
const spanKindInternal = 1

// TraceID derives the deterministic 32-hex-digit trace ID of a graph:
// FNV-128a over the pattern signature, root/end timestamps and the
// first underlying record ID — stable across re-exports, distinct
// across requests of the same pattern. The all-zero ID (invalid in
// OTLP) is remapped.
func TraceID(g *cag.Graph) string {
	h := fnv.New128a()
	fmt.Fprintf(h, "%s|%d|", cag.Signature(g), g.Len())
	if root := g.Root(); root != nil {
		fmt.Fprintf(h, "%d|%s|", root.Timestamp, root.Ctx)
		if len(root.Records) > 0 {
			fmt.Fprintf(h, "%d|", root.Records[0].ID)
		}
	}
	if end := g.End(); end != nil {
		fmt.Fprintf(h, "%d", end.Timestamp)
	}
	sum := h.Sum(nil)
	zero := true
	for _, b := range sum {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		sum[len(sum)-1] = 1
	}
	return fmt.Sprintf("%x", sum)
}

// SpanID derives the deterministic 16-hex-digit span ID of vertex index
// within the given trace.
func SpanID(traceID string, index int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", traceID, index)
	sum := h.Sum64()
	if sum == 0 {
		sum = 1
	}
	return fmt.Sprintf("%016x", sum)
}

// Trace converts one finished CAG into an OTLP export request holding a
// single trace, per the package mapping table.
func Trace(g *cag.Graph) Request {
	traceID := TraceID(g)
	spans := make([]Span, 0, g.Len())
	for i := 0; i < g.Len(); i++ {
		v := g.Vertex(i)
		sp := Span{
			TraceID:           traceID,
			SpanID:            SpanID(traceID, i),
			Name:              fmt.Sprintf("%s %s/%s", v.Type, v.Ctx.Host, v.Ctx.Program),
			Kind:              spanKindInternal,
			StartTimeUnixNano: nanos(v.Timestamp.Nanoseconds()),
			EndTimeUnixNano:   nanos(spanEnd(v)),
		}
		sp.Attributes = append(sp.Attributes,
			Str("cag.type", v.Type.String()),
			Str("cag.host", v.Ctx.Host),
			Str("cag.program", v.Ctx.Program),
			Int("cag.pid", int64(v.Ctx.PID)),
			Int("cag.tid", int64(v.Ctx.TID)),
		)
		switch {
		case v.CtxParent() != nil:
			sp.ParentSpanID = SpanID(traceID, v.CtxParent().Index())
			sp.Attributes = append(sp.Attributes, Str("cag.parent_edge", "ctx"))
		case v.MsgParent() != nil:
			sp.ParentSpanID = SpanID(traceID, v.MsgParent().Index())
			sp.Attributes = append(sp.Attributes, Str("cag.parent_edge", "msg"))
		}
		if v.Chan != (activity.Channel{}) {
			sp.Attributes = append(sp.Attributes, Str("net.channel", v.Chan.String()))
		}
		if v.Size > 0 {
			sp.Attributes = append(sp.Attributes, Int("cag.size_bytes", v.Size))
		}
		// Message edges are always links, even when one doubles as the
		// parent — a backend can reconstruct the full edge set from
		// links (msg) plus parent_edge=ctx parents (ctx).
		if p := v.MsgParent(); p != nil {
			sp.Links = append(sp.Links, Link{
				TraceID:    traceID,
				SpanID:     SpanID(traceID, p.Index()),
				Attributes: []KeyValue{Str("cag.edge", "msg")},
			})
		}
		if i == 0 {
			sp.Attributes = append(sp.Attributes,
				Str("cag.signature", cag.Signature(g)),
				Str("cag.pattern", cag.PatternName(g)),
				Int("cag.latency_ns", g.Latency().Nanoseconds()),
				Int("cag.vertices", int64(g.Len())),
			)
			endNano := sp.EndTimeUnixNano
			forced, late := g.Provenance()
			if forced {
				sp.Events = append(sp.Events, Event{TimeUnixNano: endNano, Name: "cag.forced_seal"})
			}
			if late {
				sp.Events = append(sp.Events, Event{TimeUnixNano: endNano, Name: "cag.late_link"})
			}
		}
		spans = append(spans, sp)
	}
	return Request{ResourceSpans: []ResourceSpans{{
		Resource: Resource{Attributes: []KeyValue{Str("service.name", "precisetracer")}},
		ScopeSpans: []ScopeSpans{{
			Scope: Scope{Name: "repro/internal/export"},
			Spans: spans,
		}},
	}}}
}

// spanEnd is the vertex's span end time: the latest direct-child
// timestamp (the work the activity caused), or its own when it is a
// leaf — so a SEND span covers the network hop to its RECEIVE.
func spanEnd(v *cag.Vertex) int64 {
	end := v.Timestamp
	_, children := v.Children()
	for _, c := range children {
		if c.Timestamp > end {
			end = c.Timestamp
		}
	}
	return end.Nanoseconds()
}

func nanos(n int64) string { return strconv.FormatInt(n, 10) }

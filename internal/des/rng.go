package des

import (
	"math"
	"math/rand"
	"time"
)

// RNG wraps a seeded source with the distributions the workload and network
// models need. Every stochastic component of the testbed owns its own RNG so
// that changing one component's draw count does not perturb the others.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Exp draws from an exponential distribution with the given mean.
func (g *RNG) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(g.r.ExpFloat64() * float64(mean))
}

// Uniform draws uniformly from [lo, hi).
func (g *RNG) Uniform(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(g.r.Int63n(int64(hi-lo)))
}

// Normal draws from a normal distribution clamped at zero.
func (g *RNG) Normal(mean, stddev time.Duration) time.Duration {
	v := float64(mean) + g.r.NormFloat64()*float64(stddev)
	if v < 0 {
		v = 0
	}
	return time.Duration(v)
}

// Intn draws uniformly from [0, n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 draws uniformly from [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Pick returns an index drawn according to the given non-negative weights.
// If the weights sum to zero it returns 0.
func (g *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Pareto draws from a bounded Pareto distribution with the given shape and
// minimum, capped at max. Used for heavy-tailed message sizes.
func (g *RNG) Pareto(shape float64, minV, maxV int) int {
	if minV < 1 {
		minV = 1
	}
	if maxV < minV {
		maxV = minV
	}
	u := g.r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	v := float64(minV) / math.Pow(1-u, 1/shape)
	if v > float64(maxV) {
		v = float64(maxV)
	}
	return int(v)
}

package des

import "time"

// TokenPool models a bounded pool of identical execution entities (httpd
// worker processes, JBoss threads bounded by MaxThreads, MySQL connection
// threads). Acquire hands a token to the requester as soon as one is free,
// in FIFO order; the wait, if any, is virtual time spent queued.
type TokenPool struct {
	sim      *Simulator
	capacity int
	inUse    int
	waiters  []func()

	// Telemetry for the evaluation harness.
	peakInUse   int
	totalWaits  uint64
	totalWaitNs int64
	grants      uint64
}

// NewTokenPool returns a pool with the given capacity. Capacity must be >= 1.
func NewTokenPool(sim *Simulator, capacity int) *TokenPool {
	if capacity < 1 {
		capacity = 1
	}
	return &TokenPool{sim: sim, capacity: capacity}
}

// Capacity returns the configured number of tokens.
func (p *TokenPool) Capacity() int { return p.capacity }

// InUse returns the number of tokens currently held.
func (p *TokenPool) InUse() int { return p.inUse }

// PeakInUse returns the highest concurrent token usage observed.
func (p *TokenPool) PeakInUse() int { return p.peakInUse }

// Grants returns the total number of successful acquisitions.
func (p *TokenPool) Grants() uint64 { return p.grants }

// MeanWait returns the average virtual time spent queued per grant.
func (p *TokenPool) MeanWait() time.Duration {
	if p.grants == 0 {
		return 0
	}
	return time.Duration(p.totalWaitNs / int64(p.grants))
}

// Acquire requests a token; granted(now) runs (possibly immediately) when
// one is available.
func (p *TokenPool) Acquire(granted func()) {
	if p.inUse < p.capacity && len(p.waiters) == 0 {
		p.grant(0)
		granted()
		return
	}
	start := p.sim.Now()
	p.totalWaits++
	p.waiters = append(p.waiters, func() {
		p.grant(p.sim.Now() - start)
		granted()
	})
}

// TryAcquire takes a token only if one is free right now.
func (p *TokenPool) TryAcquire() bool {
	if p.inUse < p.capacity && len(p.waiters) == 0 {
		p.grant(0)
		return true
	}
	return false
}

func (p *TokenPool) grant(waited time.Duration) {
	p.inUse++
	p.grants++
	p.totalWaitNs += int64(waited)
	if p.inUse > p.peakInUse {
		p.peakInUse = p.inUse
	}
}

// Release returns a token to the pool, waking the oldest waiter if any.
// The waiter resumes via a zero-delay event so that release sites never
// re-enter user code synchronously.
func (p *TokenPool) Release() {
	if p.inUse <= 0 {
		return
	}
	p.inUse--
	if len(p.waiters) == 0 {
		return
	}
	next := p.waiters[0]
	copy(p.waiters, p.waiters[1:])
	p.waiters[len(p.waiters)-1] = nil
	p.waiters = p.waiters[:len(p.waiters)-1]
	p.sim.Schedule(0, next)
}

// Waiting returns the number of queued acquirers.
func (p *TokenPool) Waiting() int { return len(p.waiters) }

// CPU models a node's processor set as an m-server FIFO queue: a job asks
// for `demand` of processing and is called back when it completes. This is
// what produces realistic response-time inflation near saturation for the
// throughput/response-time figures (Fig. 12, 13, 16).
type CPU struct {
	sim     *Simulator
	cores   int
	busy    int
	queue   []cpuJob
	busyNs  int64 // integral of busy cores over time
	lastUpd time.Duration

	jobs uint64
}

type cpuJob struct {
	demand time.Duration
	done   func()
}

// NewCPU returns a CPU with the given core count (>=1).
func NewCPU(sim *Simulator, cores int) *CPU {
	if cores < 1 {
		cores = 1
	}
	return &CPU{sim: sim, cores: cores}
}

// Cores returns the configured core count.
func (c *CPU) Cores() int { return c.cores }

// Jobs returns the number of completed demands.
func (c *CPU) Jobs() uint64 { return c.jobs }

// Utilization returns mean busy-core fraction since the start of the run.
func (c *CPU) Utilization() float64 {
	c.account()
	elapsed := c.sim.Now()
	if elapsed <= 0 {
		return 0
	}
	return float64(c.busyNs) / float64(int64(elapsed)*int64(c.cores))
}

func (c *CPU) account() {
	now := c.sim.Now()
	c.busyNs += int64(now-c.lastUpd) * int64(c.busy)
	c.lastUpd = now
}

// Use runs `demand` worth of work and calls done on completion. Zero or
// negative demand completes via a zero-delay event.
func (c *CPU) Use(demand time.Duration, done func()) {
	if demand <= 0 {
		c.sim.Schedule(0, done)
		return
	}
	if c.busy < c.cores {
		c.start(demand, done)
		return
	}
	c.queue = append(c.queue, cpuJob{demand: demand, done: done})
}

func (c *CPU) start(demand time.Duration, done func()) {
	c.account()
	c.busy++
	c.sim.Schedule(demand, func() {
		c.account()
		c.busy--
		c.jobs++
		if len(c.queue) > 0 {
			job := c.queue[0]
			copy(c.queue, c.queue[1:])
			c.queue[len(c.queue)-1] = cpuJob{}
			c.queue = c.queue[:len(c.queue)-1]
			c.start(job.demand, job.done)
		}
		done()
	})
}

// QueueLen returns the number of jobs waiting for a core.
func (c *CPU) QueueLen() int { return len(c.queue) }

package des

import (
	"testing"
	"time"
)

func TestFiredCounts(t *testing.T) {
	sim := New()
	for i := 0; i < 5; i++ {
		sim.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	ev := sim.Schedule(10*time.Millisecond, func() {})
	ev.Cancel()
	sim.Run()
	if sim.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5 (cancelled events don't fire)", sim.Fired())
	}
	if sim.Pending() != 0 {
		t.Fatalf("Pending = %d", sim.Pending())
	}
}

func TestRunUntilThenResume(t *testing.T) {
	sim := New()
	var hits []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Millisecond
		sim.Schedule(d, func() { hits = append(hits, d) })
	}
	sim.RunUntil(3 * time.Millisecond)
	if len(hits) != 3 {
		t.Fatalf("hits after horizon = %d", len(hits))
	}
	// Scheduling relative to the advanced clock works.
	sim.Schedule(time.Millisecond, func() { hits = append(hits, sim.Now()) })
	sim.Run()
	if len(hits) != 6 {
		t.Fatalf("hits after resume = %d", len(hits))
	}
	// Order: pending 4ms event, the newly scheduled event (also at 4ms,
	// later sequence), then the pending 5ms event.
	if hits[4] != 4*time.Millisecond || hits[5] != 5*time.Millisecond {
		t.Fatalf("resume order: %v", hits)
	}
}

func TestCancelDuringRun(t *testing.T) {
	sim := New()
	var second *Event
	fired := false
	sim.Schedule(time.Millisecond, func() { second.Cancel() })
	second = sim.Schedule(2*time.Millisecond, func() { fired = true })
	sim.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestEventAt(t *testing.T) {
	sim := New()
	ev := sim.Schedule(7*time.Millisecond, func() {})
	if ev.At() != 7*time.Millisecond {
		t.Fatalf("At = %v", ev.At())
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	sim := New()
	ev := sim.Schedule(time.Millisecond, func() {})
	ev.Cancel()
	ran := false
	sim.Schedule(2*time.Millisecond, func() { ran = true })
	sim.RunUntil(5 * time.Millisecond)
	if !ran {
		t.Fatal("cancelled head blocked RunUntil")
	}
}

func TestTokenPoolReleaseWithoutAcquire(t *testing.T) {
	sim := New()
	pool := NewTokenPool(sim, 1)
	pool.Release() // must not underflow
	if pool.InUse() != 0 {
		t.Fatalf("InUse = %d", pool.InUse())
	}
	if !pool.TryAcquire() {
		t.Fatal("pool corrupted by spurious release")
	}
}

func TestTokenPoolWaitingCount(t *testing.T) {
	sim := New()
	pool := NewTokenPool(sim, 1)
	pool.Acquire(func() {})
	pool.Acquire(func() {})
	pool.Acquire(func() {})
	if pool.Waiting() != 2 {
		t.Fatalf("Waiting = %d", pool.Waiting())
	}
	pool.Release()
	sim.Run()
	if pool.Waiting() != 1 {
		t.Fatalf("Waiting after release = %d", pool.Waiting())
	}
}

func TestCPUQueueLen(t *testing.T) {
	sim := New()
	cpu := NewCPU(sim, 1)
	cpu.Use(time.Millisecond, func() {})
	cpu.Use(time.Millisecond, func() {})
	cpu.Use(time.Millisecond, func() {})
	if cpu.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d", cpu.QueueLen())
	}
	sim.Run()
	if cpu.QueueLen() != 0 || cpu.Jobs() != 3 {
		t.Fatalf("after run: queue=%d jobs=%d", cpu.QueueLen(), cpu.Jobs())
	}
}

func TestCPUDefaultCores(t *testing.T) {
	sim := New()
	if NewCPU(sim, 0).Cores() != 1 {
		t.Fatal("zero cores should clamp to 1")
	}
	if NewTokenPool(sim, 0).Capacity() != 1 {
		t.Fatal("zero capacity should clamp to 1")
	}
}

func TestSimulatorString(t *testing.T) {
	if New().String() == "" {
		t.Fatal("empty String")
	}
}

func TestRNGUniformAndNormalBounds(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		u := g.Uniform(time.Millisecond, 2*time.Millisecond)
		if u < time.Millisecond || u >= 2*time.Millisecond {
			t.Fatalf("Uniform out of range: %v", u)
		}
		n := g.Normal(time.Millisecond, 5*time.Millisecond)
		if n < 0 {
			t.Fatalf("Normal went negative: %v", n)
		}
	}
	if g.Uniform(time.Second, time.Second) != time.Second {
		t.Fatal("degenerate Uniform")
	}
	if g.Exp(0) != 0 || g.Exp(-time.Second) != 0 {
		t.Fatal("non-positive Exp mean")
	}
}

// Package des provides a deterministic discrete-event simulation core used
// by the testbed that stands in for the paper's physical 8-node cluster.
//
// The simulator is single-threaded and callback-based: events are closures
// scheduled at virtual times, executed in (time, sequence) order. Determinism
// matters because the reproduction's accuracy experiments compare correlator
// output against ground truth; a deterministic substrate makes every run
// repeatable bit-for-bit for a given seed.
package des

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	index    int // heap index, -1 once fired or cancelled
	canceled bool
}

// At returns the virtual time at which the event fires.
func (e *Event) At() time.Duration { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e, ok := x.(*Event)
	if !ok {
		return
	}
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the pending-event queue.
// The zero value is not usable; construct with New.
type Simulator struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	fired   uint64
	running bool
}

// New returns an empty simulator positioned at virtual time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Fired returns the number of events executed so far; useful for
// complexity-shaped assertions in tests and benchmarks.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued.
func (s *Simulator) Pending() int { return len(s.events) }

// Schedule queues fn to run after delay. A negative delay is treated as
// zero (run "now", after currently queued same-time events).
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute virtual time t. Times in the past
// are clamped to the current time.
func (s *Simulator) ScheduleAt(t time.Duration, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// Step executes the single earliest pending event. It returns false when the
// queue is empty.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		ev, ok := heap.Pop(&s.events).(*Event)
		if !ok {
			return false
		}
		if ev.canceled {
			continue
		}
		s.now = ev.at
		s.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with fire times <= horizon, then advances the
// clock to horizon. Events scheduled beyond the horizon stay queued.
func (s *Simulator) RunUntil(horizon time.Duration) {
	for len(s.events) > 0 {
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > horizon {
			break
		}
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// peek returns the earliest non-cancelled event without popping it.
func (s *Simulator) peek() *Event {
	for len(s.events) > 0 {
		if !s.events[0].canceled {
			return s.events[0]
		}
		popped, ok := heap.Pop(&s.events).(*Event)
		_ = popped
		if !ok {
			return nil
		}
	}
	return nil
}

// String implements fmt.Stringer for debugging.
func (s *Simulator) String() string {
	return fmt.Sprintf("des.Simulator{now=%v pending=%d fired=%d}", s.now, len(s.events), s.fired)
}

package des

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSimulatorOrdersEventsByTime(t *testing.T) {
	sim := New()
	var order []int
	sim.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	sim.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	sim.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	sim.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if sim.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", sim.Now())
	}
}

func TestSimulatorFIFOAtSameTime(t *testing.T) {
	sim := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		sim.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	sim.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: order[%d] = %d", i, order[i])
		}
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	sim := New()
	var hits []time.Duration
	sim.Schedule(time.Millisecond, func() {
		hits = append(hits, sim.Now())
		sim.Schedule(2*time.Millisecond, func() {
			hits = append(hits, sim.Now())
		})
	})
	sim.Run()
	if len(hits) != 2 || hits[0] != time.Millisecond || hits[1] != 3*time.Millisecond {
		t.Fatalf("hits = %v", hits)
	}
}

func TestCancel(t *testing.T) {
	sim := New()
	fired := false
	ev := sim.Schedule(time.Millisecond, func() { fired = true })
	ev.Cancel()
	sim.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() should be true")
	}
}

func TestRunUntil(t *testing.T) {
	sim := New()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 5, 10, 15} {
		d := d * time.Millisecond
		sim.Schedule(d, func() { fired = append(fired, d) })
	}
	sim.RunUntil(10 * time.Millisecond)
	if len(fired) != 3 {
		t.Fatalf("fired %d events before horizon, want 3", len(fired))
	}
	if sim.Now() != 10*time.Millisecond {
		t.Fatalf("Now = %v, want horizon", sim.Now())
	}
	if sim.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", sim.Pending())
	}
	sim.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d total, want 4", len(fired))
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	sim := New()
	sim.Schedule(time.Second, func() {
		at := sim.Now()
		sim.Schedule(-5*time.Second, func() {
			if sim.Now() != at {
				t.Errorf("negative delay ran at %v, want %v", sim.Now(), at)
			}
		})
	})
	sim.Run()
}

func TestStepEmpty(t *testing.T) {
	sim := New()
	if sim.Step() {
		t.Fatal("Step on empty queue should return false")
	}
}

func TestTokenPoolGrantsFIFO(t *testing.T) {
	sim := New()
	pool := NewTokenPool(sim, 2)
	var grants []int
	for i := 0; i < 5; i++ {
		i := i
		pool.Acquire(func() {
			grants = append(grants, i)
			sim.Schedule(10*time.Millisecond, pool.Release)
		})
	}
	sim.Run()
	for i := range grants {
		if grants[i] != i {
			t.Fatalf("grants = %v, want FIFO", grants)
		}
	}
	if pool.Grants() != 5 {
		t.Fatalf("Grants = %d, want 5", pool.Grants())
	}
	if pool.PeakInUse() != 2 {
		t.Fatalf("PeakInUse = %d, want 2", pool.PeakInUse())
	}
}

func TestTokenPoolWaitAccounting(t *testing.T) {
	sim := New()
	pool := NewTokenPool(sim, 1)
	pool.Acquire(func() {
		sim.Schedule(100*time.Millisecond, pool.Release)
	})
	var waited time.Duration
	start := sim.Now()
	pool.Acquire(func() {
		waited = sim.Now() - start
		pool.Release()
	})
	sim.Run()
	if waited != 100*time.Millisecond {
		t.Fatalf("waited %v, want 100ms", waited)
	}
	if pool.MeanWait() != 50*time.Millisecond { // (0 + 100ms) / 2 grants
		t.Fatalf("MeanWait = %v, want 50ms", pool.MeanWait())
	}
}

func TestTokenPoolTryAcquire(t *testing.T) {
	sim := New()
	pool := NewTokenPool(sim, 1)
	if !pool.TryAcquire() {
		t.Fatal("first TryAcquire should succeed")
	}
	if pool.TryAcquire() {
		t.Fatal("second TryAcquire should fail")
	}
	pool.Release()
	if !pool.TryAcquire() {
		t.Fatal("TryAcquire after release should succeed")
	}
}

func TestCPUSingleCoreSerializes(t *testing.T) {
	sim := New()
	cpu := NewCPU(sim, 1)
	var done []time.Duration
	for i := 0; i < 3; i++ {
		cpu.Use(10*time.Millisecond, func() { done = append(done, sim.Now()) })
	}
	sim.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestCPUMultiCoreParallel(t *testing.T) {
	sim := New()
	cpu := NewCPU(sim, 2)
	var done []time.Duration
	for i := 0; i < 2; i++ {
		cpu.Use(10*time.Millisecond, func() { done = append(done, sim.Now()) })
	}
	sim.Run()
	for _, d := range done {
		if d != 10*time.Millisecond {
			t.Fatalf("parallel jobs should both finish at 10ms, got %v", done)
		}
	}
}

func TestCPUUtilization(t *testing.T) {
	sim := New()
	cpu := NewCPU(sim, 2)
	cpu.Use(100*time.Millisecond, func() {})
	sim.Run()
	// One core busy for the whole run on a 2-core CPU => 50%.
	got := cpu.Utilization()
	if got < 0.49 || got > 0.51 {
		t.Fatalf("Utilization = %f, want ~0.5", got)
	}
}

func TestCPUZeroDemand(t *testing.T) {
	sim := New()
	cpu := NewCPU(sim, 1)
	ran := false
	cpu.Use(0, func() { ran = true })
	sim.Run()
	if !ran {
		t.Fatal("zero-demand job never completed")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Exp(time.Second) != b.Exp(time.Second) {
			t.Fatal("same seed should give same stream")
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(1)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += g.Exp(time.Second)
	}
	mean := sum / n
	if mean < 950*time.Millisecond || mean > 1050*time.Millisecond {
		t.Fatalf("Exp mean = %v, want ~1s", mean)
	}
}

func TestRNGPickRespectsWeights(t *testing.T) {
	g := NewRNG(7)
	counts := make([]int, 3)
	weights := []float64{1, 0, 3}
	for i := 0; i < 10000; i++ {
		counts[g.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weight ratio = %f, want ~3", ratio)
	}
}

func TestRNGPickDegenerate(t *testing.T) {
	g := NewRNG(7)
	if got := g.Pick([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero weights => 0, got %d", got)
	}
}

func TestRNGParetoBounds(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := g.Pareto(1.2, 100, 1500)
		if v < 100 || v > 1500 {
			t.Fatalf("Pareto out of bounds: %d", v)
		}
	}
}

// Property: events always fire in non-decreasing time order, regardless of
// insertion order.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		sim := New()
		var fired []time.Duration
		for _, d := range delaysMs {
			sim.Schedule(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, sim.Now())
			})
		}
		sim.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delaysMs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a token pool never exceeds its capacity.
func TestPropertyTokenPoolCapacity(t *testing.T) {
	f := func(cap8 uint8, jobs uint8) bool {
		capacity := int(cap8%8) + 1
		sim := New()
		pool := NewTokenPool(sim, capacity)
		ok := true
		for i := 0; i < int(jobs); i++ {
			pool.Acquire(func() {
				if pool.InUse() > capacity {
					ok = false
				}
				sim.Schedule(time.Millisecond, pool.Release)
			})
		}
		sim.Run()
		return ok && pool.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

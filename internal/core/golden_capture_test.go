package core

// Golden-capture harness: dumps canonical fingerprints of the offline
// and online correlation outputs so a refactor can prove byte-identity
// against a pre-refactor checkout. Capture before the change, re-capture
// after, diff the directories:
//
//	GOLDEN_DUMP=/tmp/golden go test -run TestGoldenDump ./internal/core
//
// (This is how the four-paths-to-one-pipeline refactor proved the replay
// path reproduces the historical sequential correlator exactly.)

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/rubis"
)

func TestGoldenDump(t *testing.T) {
	dir := os.Getenv("GOLDEN_DUMP")
	if dir == "" {
		t.Skip("GOLDEN_DUMP not set")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		clients int
		scale   float64
		noise   int
		skew    time.Duration
	}{
		{"clean", 120, 0.03, 0, 0},
		{"noisy", 120, 0.03, 8, 0},
		{"larger", 300, 0.05, 0, 0},
		{"skewed", 80, 0.02, 4, 300 * time.Millisecond},
	}
	for _, tc := range cases {
		cfg := rubis.DefaultConfig(tc.clients)
		cfg.Scale = tc.scale
		cfg.NoiseSessions = tc.noise
		if tc.skew > 0 {
			cfg.Skew.MaxSkew = tc.skew
		}
		res, err := rubis.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Offline sequential CorrelateTrace.
		out, err := New(Options{
			Window:     10 * time.Millisecond,
			EntryPorts: []int{rubis.EntryPort},
			IPToHost:   res.IPToHost,
		}).CorrelateTrace(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		dump(t, dir, tc.name+"-trace-w1", out)

		// Offline CorrelateDir (sequential streaming).
		td := t.TempDir()
		if err := activity.WriteHostLogs(td, res.PerHost, true, false); err != nil {
			t.Fatal(err)
		}
		dout, err := New(Options{
			Window:     10 * time.Millisecond,
			EntryPorts: []int{rubis.EntryPort},
		}).CorrelateDir(td)
		if err != nil {
			t.Fatal(err)
		}
		dump(t, dir, tc.name+"-dir-w1", dout)

		// Online sequential session, arrival-order replay.
		sess, err := NewSession(Options{
			Window:     10 * time.Millisecond,
			EntryPorts: []int{rubis.EntryPort},
			IPToHost:   res.IPToHost,
		}, hostsOf(res))
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range arrivalOrder(res.Trace) {
			if err := sess.Push(a); err != nil {
				t.Fatal(err)
			}
			if (i+1)%256 == 0 {
				sess.Drain()
			}
		}
		dump(t, dir, tc.name+"-session-w1", sess.Close())

		// PaperExactNoise sequential. Pre-refactor this file was produced
		// by the dedicated global-buffer pass; the directory diff across
		// the refactor is what proves the shard-aware predicate reproduces
		// it byte-for-byte.
		pout, err := New(Options{
			Window:          10 * time.Millisecond,
			EntryPorts:      []int{rubis.EntryPort},
			IPToHost:        res.IPToHost,
			PaperExactNoise: true,
		}).CorrelateTrace(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		dump(t, dir, tc.name+"-paperexact-w1", pout)

		// Shard-aware exact mode across the worker pool and seal-horizon
		// matrix: every variant must reproduce the paperexact-w1 dump —
		// and therefore the pre-refactor global pass — byte-for-byte. The
		// horizon is far above the fixtures' request durations, so forced
		// seals only retire completed components and the graphs must not
		// change.
		for _, v := range []struct {
			name    string
			workers int
			seal    time.Duration
		}{
			{"paperexact-w1-session", 1, 0},
			{"paperexact-w4-session", 4, 0},
			{"paperexact-w1-seal", 1, time.Second},
			{"paperexact-w4-seal", 4, time.Second},
		} {
			esess, err := NewSession(Options{
				Window:          10 * time.Millisecond,
				EntryPorts:      []int{rubis.EntryPort},
				IPToHost:        res.IPToHost,
				PaperExactNoise: true,
				Workers:         v.workers,
				SealAfter:       v.seal,
			}, hostsOf(res))
			if err != nil {
				t.Fatalf("%s-%s: %v", tc.name, v.name, err)
			}
			for i, a := range arrivalOrder(res.Trace) {
				if err := esess.Push(a); err != nil {
					t.Fatal(err)
				}
				if (i+1)%256 == 0 {
					esess.Drain()
				}
			}
			eout := esess.Close()
			dump(t, dir, tc.name+"-"+v.name, eout)
			assertSameGraphs(t, tc.name+"-"+v.name, pout, eout)
		}
	}
}

func dump(t *testing.T, dir, name string, r *Result) {
	t.Helper()
	f, err := os.Create(dir + "/" + name + ".txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "graphs=%d activities=%d unfinished=%d\n", len(r.Graphs), r.Activities, r.Unfinished())
	for i, g := range r.Graphs {
		fmt.Fprintf(f, "--- %d ---\n%s\n", i, fingerprint(g))
	}
}

package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/activity"
)

// ErrIngestClosed is returned for operations offered after Close.
var ErrIngestClosed = errors.New("core: ingest closed")

// IngestOptions parametrises the serialized ingest front.
type IngestOptions struct {
	// Buffer is the bounded operation queue depth — the backpressure
	// valve. When correlation falls behind, the queue fills, Push blocks,
	// the network collector stops reading its sockets, and TCP pushes the
	// stall back to the agents. Default 1024.
	Buffer int

	// DrainEvery is how many applied operations elapse between drain
	// points — the same cadence knob as offline replay. Default 1024
	// (replayDrainEvery), keeping a networked run's drain rhythm aligned
	// with ReplayTrace so output ordering is comparable. Use 1 to drain
	// after every operation. Cadence drains are pipelined (Session.Tick):
	// the ingest goroutine seals and emits what is already decidable
	// without stalling behind in-flight shards, so applying and
	// correlating overlap; FlushInterval and CloseHost still use the full
	// Drain barrier.
	DrainEvery int

	// FlushInterval, when positive, also drains on a wall-clock period
	// while the queue is idle, so a traffic lull cannot leave decidable
	// CAGs sitting in the session. This is the one wall-clock input to an
	// otherwise activity-time pipeline: it changes *when* graphs emerge,
	// never *what* they contain or their order.
	FlushInterval time.Duration

	// OnApplied, when non-nil, observes every applied record (ts = its
	// timestamp) and heartbeat, on the ingest goroutine — the same
	// goroutine that fires the session's OnGraph, so a live.Monitor may be
	// driven from both without extra locking.
	OnApplied func(host string, ts time.Duration)

	// Release, when non-nil, receives every PushBatch record once the
	// ingest goroutine is done with it (applied, or skipped on an error) —
	// the hook that returns pooled decode-side records to their pool
	// (activity.ReleaseRecord). The session has copied whatever it keeps
	// by then. Single-record Push callers keep ownership of their records;
	// only batched records are released.
	Release func(a *activity.Activity)

	// Sinks are appended to the wrapped session's emission chain before
	// the ingest goroutine starts (see Options.Sinks and GraphSink).
	// Sinks fire on the ingest goroutine — the same goroutine as
	// OnApplied — so a live.Monitor registered here needs no locking.
	Sinks []GraphSink
}

// Ingest is the serialized front of a Session: Sessions demand
// single-goroutine use, the network collector delivers from one goroutine
// per agent connection. Ingest owns the session goroutine and funnels
// concurrent Push/Heartbeat/CloseHost calls through a bounded queue,
// draining on the configured cadence. It satisfies transport.Sink.
//
// Errors are sticky per host: the first failure of a host's operation
// (timestamp regression, unknown host, push-after-close) is recorded and
// returned to that host's next caller, without disturbing other streams.
// Record application is asynchronous — a Push error may surface one call
// late — but CloseHost is synchronous, so a transport CLOSE ack really
// means "stream fully applied and sealed".
type Ingest struct {
	session *Session
	opts    IngestOptions

	closeMu sync.RWMutex // guards ops against send-on-closed
	closed  bool
	ops     chan ingestOp

	mu      sync.Mutex
	hostErr map[string]error

	done  chan struct{}
	final *Result
}

type ingestOpKind uint8

const (
	opRecord ingestOpKind = iota
	opBatch
	opHeartbeat
	opCloseHost
	opSync
)

type ingestOp struct {
	kind  ingestOpKind
	rec   *activity.Activity
	recs  []*activity.Activity // opBatch
	host  string
	ts    time.Duration
	reply chan error // opCloseHost, opSync
}

// NewIngest wraps an open session. The session must not be used directly
// once wrapped — Ingest's goroutine owns it until Close.
func NewIngest(s *Session, opts IngestOptions) *Ingest {
	if opts.Buffer <= 0 {
		opts.Buffer = 1024
	}
	if opts.DrainEvery <= 0 {
		opts.DrainEvery = replayDrainEvery
	}
	in := &Ingest{
		session: s,
		opts:    opts,
		ops:     make(chan ingestOp, opts.Buffer),
		hostErr: make(map[string]error),
		done:    make(chan struct{}),
	}
	for _, sink := range opts.Sinks {
		s.AddSink(sink)
	}
	go in.run()
	return in
}

// Push offers one record, blocking while the queue is full. Safe for
// concurrent use; records of one host must still arrive in host order
// (call it from one goroutine per host, as the collector does).
func (in *Ingest) Push(a *activity.Activity) error {
	if err := in.stickyErr(a.Ctx.Host); err != nil {
		return err
	}
	return in.send(ingestOp{kind: opRecord, rec: a, host: a.Ctx.Host})
}

// PushBatch offers a whole run of records — typically one decoded
// transport frame — as a single queue operation, blocking while the
// queue is full. The records are applied in order on the ingest
// goroutine with the same drain cadence as individual pushes, so a
// batched stream is indistinguishable from its unbatched equivalent. An
// error during application becomes the host's sticky error and the rest
// of that host's records in the batch are skipped; other hosts' records
// are unaffected. The ingest takes ownership of the batch slice and its
// records until Release has been called for each record.
func (in *Ingest) PushBatch(recs []*activity.Activity) error {
	if len(recs) == 0 {
		return nil
	}
	// Pre-check sticky errors per distinct host (batches are almost
	// always single-host: one agent connection per host).
	last := ""
	for _, a := range recs {
		if a.Ctx.Host != last {
			if err := in.stickyErr(a.Ctx.Host); err != nil {
				return err
			}
			last = a.Ctx.Host
		}
	}
	return in.send(ingestOp{kind: opBatch, recs: recs})
}

// Heartbeat offers a liveness assertion for host (see Session.Heartbeat).
func (in *Ingest) Heartbeat(host string, ts time.Duration) error {
	if err := in.stickyErr(host); err != nil {
		return err
	}
	return in.send(ingestOp{kind: opHeartbeat, host: host, ts: ts})
}

// replyPool recycles the one-shot reply channels CloseHost and Sync
// block on. A channel is returned to the pool only after its reply has
// been received, so a pooled channel is always empty.
var replyPool = sync.Pool{New: func() any { return make(chan error, 1) }}

// CloseHost seals one host's stream, waiting until every previously
// offered operation has been applied and the close has taken effect.
func (in *Ingest) CloseHost(host string) error {
	if err := in.stickyErr(host); err != nil {
		return err
	}
	reply := replyPool.Get().(chan error)
	if err := in.send(ingestOp{kind: opCloseHost, host: host, reply: reply}); err != nil {
		replyPool.Put(reply)
		return err
	}
	err := <-reply
	replyPool.Put(reply)
	return err
}

// Sync blocks until every operation offered before it has been applied —
// a barrier for tests and status readers.
func (in *Ingest) Sync() error {
	reply := replyPool.Get().(chan error)
	if err := in.send(ingestOp{kind: opSync, reply: reply}); err != nil {
		replyPool.Put(reply)
		return err
	}
	err := <-reply
	replyPool.Put(reply)
	return err
}

// Close shuts the queue, applies what remains, closes the session and
// returns the final result. Closing twice returns the same result.
func (in *Ingest) Close() *Result {
	in.closeMu.Lock()
	if !in.closed {
		in.closed = true
		close(in.ops)
	}
	in.closeMu.Unlock()
	<-in.done
	return in.final
}

func (in *Ingest) send(op ingestOp) error {
	in.closeMu.RLock()
	defer in.closeMu.RUnlock()
	if in.closed {
		return ErrIngestClosed
	}
	in.ops <- op
	return nil
}

func (in *Ingest) stickyErr(host string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hostErr[host]
}

func (in *Ingest) recordErr(host string, err error) {
	in.mu.Lock()
	if _, dup := in.hostErr[host]; !dup {
		in.hostErr[host] = err
	}
	in.mu.Unlock()
}

// run owns the session: it is the single goroutine calling Push/Drain/
// CloseHost/Heartbeat/Close, preserving the Session's concurrency
// contract no matter how many connections feed the queue.
func (in *Ingest) run() {
	defer close(in.done)
	var timer <-chan time.Time
	var ticker *time.Ticker
	if in.opts.FlushInterval > 0 {
		ticker = time.NewTicker(in.opts.FlushInterval)
		defer ticker.Stop()
		timer = ticker.C
	}
	sinceDrain := 0
	for {
		select {
		case op, ok := <-in.ops:
			if !ok {
				in.final = in.session.Close()
				return
			}
			in.apply(op, &sinceDrain)
		case <-timer:
			if sinceDrain > 0 {
				in.session.Drain()
				sinceDrain = 0
			}
		}
	}
}

func (in *Ingest) apply(op ingestOp, sinceDrain *int) {
	var err error
	switch op.kind {
	case opRecord:
		err = in.session.Push(op.rec)
		if err == nil && in.opts.OnApplied != nil {
			in.opts.OnApplied(op.host, op.rec.Timestamp)
		}
	case opBatch:
		in.applyBatch(op.recs, sinceDrain)
		return
	case opHeartbeat:
		err = in.session.Heartbeat(op.host, op.ts)
		if err == nil && in.opts.OnApplied != nil {
			in.opts.OnApplied(op.host, op.ts)
		}
	case opCloseHost:
		err = in.session.CloseHost(op.host)
		if err == nil {
			in.session.Drain() // release what the close made decidable
			*sinceDrain = 0
		}
		op.reply <- err
	case opSync:
		op.reply <- nil
		return
	default:
		err = fmt.Errorf("core: unknown ingest op %d", op.kind)
	}
	if err != nil && op.host != "" {
		in.recordErr(op.host, err)
	}
	if op.kind == opRecord || op.kind == opHeartbeat {
		*sinceDrain++
		if *sinceDrain >= in.opts.DrainEvery {
			in.session.Tick()
			*sinceDrain = 0
		}
	}
}

// applyBatch applies one PushBatch run record by record, preserving the
// exact drain cadence of individually pushed records — a batched stream
// must stay byte-identical to its unbatched equivalent. The first error
// of a host becomes its sticky error and silences the rest of that
// host's records within the batch; every record is handed to Release
// once it is done with (the session copied what it kept).
func (in *Ingest) applyBatch(recs []*activity.Activity, sinceDrain *int) {
	var erred []string // hosts errored within this batch (almost always ≤ 1)
	skip := func(host string) bool {
		for _, h := range erred {
			if h == host {
				return true
			}
		}
		return false
	}
	for _, rec := range recs {
		host := rec.Ctx.Host
		if skip(host) {
			in.release(rec)
			continue
		}
		if err := in.session.Push(rec); err != nil {
			in.recordErr(host, err)
			erred = append(erred, host)
			in.release(rec)
			continue
		}
		if in.opts.OnApplied != nil {
			in.opts.OnApplied(host, rec.Timestamp)
		}
		in.release(rec)
		*sinceDrain++
		if *sinceDrain >= in.opts.DrainEvery {
			in.session.Tick()
			*sinceDrain = 0
		}
	}
}

func (in *Ingest) release(a *activity.Activity) {
	if in.opts.Release != nil {
		in.opts.Release(a)
	}
}

package core

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/ranker"
)

// ShardMode selects the partition policy of the concurrent correlator
// (Options.ShardBy). Both policies shard by TCP flow key — the union-find
// closure over channels and contexts computed by internal/flow — and both
// produce graphs identical to the sequential pass; they differ in how the
// context relation is scoped, i.e. how fine the shards get.
type ShardMode int

const (
	// ShardByFlow (default) breaks context chains at request-epoch
	// boundaries: thread-pool reuse does not merge unrelated requests into
	// one shard. Finest sharding, exact on well-formed traces.
	ShardByFlow ShardMode = iota
	// ShardByContext unions a context's whole lifetime — coarser shards
	// that stay exact even when epoch boundaries are unrecoverable
	// (heavily truncated or lossy traces).
	ShardByContext
)

// String implements fmt.Stringer.
func (m ShardMode) String() string { return m.flowMode().String() }

func (m ShardMode) flowMode() flow.Mode {
	if m == ShardByContext {
		return flow.ModeContext
	}
	return flow.ModeFlow
}

// shardBatch is one unit of work on the bounded pipeline channel.
type shardBatch struct {
	start int // index of the first component in the batch
	comps []flow.Component
}

// shardResult is one component's correlation output, tagged with its
// deterministic component index for the merge stage.
type shardResult struct {
	index        int
	graphs       []*cag.Graph
	rstats       ranker.Stats
	estats       engine.Stats
	peakResident int
}

// taggedGraph is one finished CAG tagged with its deterministic
// provenance (component ordering key, emission position within the
// shard) for the merge stage — shared by the batch pipeline and the
// sharded Session's watermark emitter.
type taggedGraph struct {
	g    *cag.Graph
	comp int
	pos  int
}

// sortTagged restores the sequential emission order: global
// END-timestamp order. Ties reproduce the sequential ranker's behaviour
// too: equal-timestamp ENDs on different hosts are delivered in sorted
// host order (Rule 2 keeps the first queue on a tie; queues are built in
// sorted host order), and within one host in log order, which record IDs
// preserve (every trace producer assigns IDs in per-host log order).
// Component/position order is the final fallback for ID-less hand-built
// traces.
func sortTagged(tagged []taggedGraph) {
	sort.Slice(tagged, func(i, j int) bool {
		ei, ej := tagged[i].g.End(), tagged[j].g.End()
		if ei.Timestamp != ej.Timestamp {
			return ei.Timestamp < ej.Timestamp
		}
		if ei.Ctx.Host != ej.Ctx.Host {
			return ei.Ctx.Host < ej.Ctx.Host
		}
		if a, b := ei.Records[0].ID, ej.Records[0].ID; a != b {
			return a < b
		}
		if tagged[i].comp != tagged[j].comp {
			return tagged[i].comp < tagged[j].comp
		}
		return tagged[i].pos < tagged[j].pos
	})
}

// ResolveWorkers maps a CLI-style worker-count flag onto Options.Workers:
// 0 means "all CPUs" (GOMAXPROCS), negatives mean sequential, positives
// pass through. Options.Workers itself treats 0 as sequential so that the
// zero value of Options keeps the original single-threaded behaviour;
// this helper is the one place the friendlier flag convention lives.
func ResolveWorkers(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n < 0 {
		return 1
	}
	return n
}

// useParallel reports whether the Workers option selects the sharded
// pipeline. PaperExactNoise forces the sequential pass: the literal
// Fig. 5 is_noise predicate depends on the global window buffer, so
// shard-local buffers could change the ablation's drop decisions — and
// exact paper semantics are that mode's entire point.
func (c *Correlator) useParallel() bool {
	return c.opts.Workers > 1 && !c.opts.PaperExactNoise
}

// correlateParallel is the Workers > 1 hot path: partition the classified
// trace into independent flow components, correlate them on a bounded
// worker pipeline, and merge the shard outputs deterministically.
//
// Concurrency contract:
//   - the jobs channel is bounded (2×Workers batches), so the dispatcher
//     blocks when workers fall behind — backpressure bounds the number of
//     in-flight shard states (rankers, engines, unfinished CAGs);
//   - each component is correlated by exactly one worker with a private
//     ranker+engine pair; no correlation state is shared across
//     goroutines;
//   - the merge stage restores the sequential emission order by sorting
//     finished graphs on END timestamp (components break ties), which is
//     the order the sequential engine completes them in, so OnGraph
//     observers see the same stream either way.
func (c *Correlator) correlateParallel(classified []*activity.Activity, totalHint int) (*Result, error) {
	workers := c.opts.Workers
	batchSize := c.opts.BatchSize
	if batchSize <= 0 {
		batchSize = 8
	}

	start := time.Now()
	comps := flow.PartitionParallel(classified, c.opts.ShardBy.flowMode(), workers)

	jobs := make(chan shardBatch, 2*workers)
	results := make(chan shardResult, 2*workers)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for b := range jobs {
				for i, comp := range b.comps {
					results <- c.correlateShard(b.start+i, comp)
				}
			}
		}()
	}
	go func() {
		for at := 0; at < len(comps); at += batchSize {
			end := at + batchSize
			if end > len(comps) {
				end = len(comps)
			}
			jobs <- shardBatch{start: at, comps: comps[at:end]}
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	res := &Result{Activities: totalHint, Shards: len(comps)}
	var tagged []taggedGraph
	for sr := range results {
		for pos, g := range sr.graphs {
			tagged = append(tagged, taggedGraph{g: g, comp: sr.index, pos: pos})
		}
		addRankerStats(&res.Ranker, sr.rstats)
		addEngineStats(&res.Engine, sr.estats)
		if sr.rstats.PeakBuffered > res.PeakBufferedActivities {
			res.PeakBufferedActivities = sr.rstats.PeakBuffered
		}
		if sr.peakResident > res.PeakResidentVertices {
			res.PeakResidentVertices = sr.peakResident
		}
	}

	sortTagged(tagged)

	if c.opts.OnGraph != nil {
		for _, t := range tagged {
			c.opts.OnGraph(t.g)
		}
	} else {
		res.Graphs = make([]*cag.Graph, len(tagged))
		for i, t := range tagged {
			res.Graphs[i] = t.g
		}
	}
	res.CorrelationTime = time.Since(start)
	return res, nil
}

// correlateShard runs the unmodified sequential ranker+engine pass over
// one flow component. Shards never share correlation state, so the code
// the paper describes runs as-is — concurrency lives entirely around it.
func (c *Correlator) correlateShard(index int, comp flow.Component) shardResult {
	runs := comp.HostRuns()
	sources := make([]ranker.Source, 0, len(runs))
	for _, run := range runs {
		sources = append(sources, ranker.NewSliceSource(run[0].Ctx.Host, run))
	}
	rk, eng := c.drive(sources)
	return shardResult{
		index:        index,
		graphs:       eng.Outputs(),
		rstats:       rk.Stats(),
		estats:       eng.Stats(),
		peakResident: eng.PeakResidentVertices(),
	}
}

// addRankerStats accumulates shard counters. Counter fields sum across
// shards; PeakBuffered is aggregated separately (the parallel Result
// reports the largest single-shard peak — the Fig. 11 global-buffer
// figure is a sequential-mode concept).
func addRankerStats(dst *ranker.Stats, s ranker.Stats) {
	dst.Fetched += s.Fetched
	dst.Delivered += s.Delivered
	dst.FilterDropped += s.FilterDropped
	dst.NoiseDropped += s.NoiseDropped
	dst.Swaps += s.Swaps
	dst.Extensions += s.Extensions
	dst.ForcedPops += s.ForcedPops
	if s.PeakBuffered > dst.PeakBuffered {
		dst.PeakBuffered = s.PeakBuffered
	}
}

func addEngineStats(dst *engine.Stats, s engine.Stats) {
	dst.Begins += s.Begins
	dst.Finished += s.Finished
	dst.MergedSends += s.MergedSends
	dst.MergedBegins += s.MergedBegins
	dst.MergedEnds += s.MergedEnds
	dst.PartialReceives += s.PartialReceives
	dst.Receives += s.Receives
	dst.Sends += s.Sends
	dst.DiscardedSends += s.DiscardedSends
	dst.DiscardedReceives += s.DiscardedReceives
	dst.DiscardedEnds += s.DiscardedEnds
	dst.OverrunReceives += s.OverrunReceives
	dst.ReplacedSends += s.ReplacedSends
	dst.ThreadReuseBreaks += s.ThreadReuseBreaks
}

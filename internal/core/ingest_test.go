package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
)

func ingestOpts(onGraph func(*cag.Graph)) Options {
	return Options{
		Window:     10 * time.Millisecond,
		EntryPorts: []int{80},
		IPToHost:   map[string]string{"10.0.0.1": "web1", "10.0.0.2": "db1"},
		OnGraph:    onGraph,
	}
}

// singleHostRequest emits one two-record request on web1 with the given
// request index; timestamps and ports are spread so requests partition
// into independent components.
func singleHostRequest(host string, r int) []*activity.Activity {
	base := time.Duration(r) * 10 * time.Millisecond
	port := 20000 + r
	id := int64(r * 2)
	return []*activity.Activity{
		mkRaw(id, activity.Receive, base+time.Millisecond, host, "httpd", 1, "10.9.9.9", "10.0.0.1", port, 80),
		mkRaw(id+1, activity.Send, base+2*time.Millisecond, host, "httpd", 1, "10.0.0.1", "10.9.9.9", 80, port),
	}
}

// TestIngestConcurrentProducers: many goroutines feed one session
// through the serialized front; every request comes out, CloseHost is a
// true barrier, and the delivery hook observes each applied op.
func TestIngestConcurrentProducers(t *testing.T) {
	const hosts, perHost = 4, 50
	names := make([]string, hosts)
	for i := range names {
		names[i] = fmt.Sprintf("w%d", i)
	}
	var emitted int
	type obs struct {
		host string
		ts   time.Duration
	}
	var applied []obs
	s, err := NewSession(Options{
		Window:     10 * time.Millisecond,
		EntryPorts: []int{80},
		IPToHost:   map[string]string{"10.0.0.1": "w0"},
		OnGraph:    func(*cag.Graph) { emitted++ },
	}, names)
	if err != nil {
		t.Fatal(err)
	}
	in := NewIngest(s, IngestOptions{
		Buffer:     8,
		DrainEvery: 16,
		OnApplied:  func(h string, ts time.Duration) { applied = append(applied, obs{h, ts}) },
	})
	var wg sync.WaitGroup
	for _, h := range names {
		h := h
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < perHost; r++ {
				for _, a := range singleHostRequest(h, r) {
					if err := in.Push(a); err != nil {
						t.Errorf("%s: %v", h, err)
						return
					}
				}
			}
			last := time.Duration(perHost) * 10 * time.Millisecond
			if err := in.Heartbeat(h, last); err != nil {
				t.Errorf("%s heartbeat: %v", h, err)
				return
			}
			if err := in.CloseHost(h); err != nil {
				t.Errorf("%s close: %v", h, err)
			}
		}()
	}
	wg.Wait()
	if err := in.Sync(); err != nil {
		t.Fatal(err)
	}
	res := in.Close()
	if res == nil {
		t.Fatal("no final result")
	}
	if want := hosts * perHost; emitted != want {
		t.Fatalf("emitted %d graphs, want %d", emitted, want)
	}
	if want := hosts * (perHost*2 + 1); len(applied) != want {
		t.Fatalf("OnApplied saw %d ops, want %d", len(applied), want)
	}
	// Close is idempotent and later ops fail fast.
	if res2 := in.Close(); res2 != res {
		t.Fatal("second Close returned a different result")
	}
	if err := in.Push(singleHostRequest("w0", 0)[0]); !errors.Is(err, ErrIngestClosed) {
		t.Fatalf("push after close: %v", err)
	}
	if err := in.Sync(); !errors.Is(err, ErrIngestClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}

// TestIngestStickyHostError: a timestamp regression on one host surfaces
// to that host's later calls and leaves other hosts flowing.
func TestIngestStickyHostError(t *testing.T) {
	s, err := NewSession(ingestOpts(nil), []string{"web1", "db1"})
	if err != nil {
		t.Fatal(err)
	}
	in := NewIngest(s, IngestOptions{})
	good := singleHostRequest("web1", 1)
	for _, a := range good {
		if err := in.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	// Regressing timestamp: rejected by the session, recorded sticky.
	bad := singleHostRequest("web1", 0)[0]
	if err := in.Push(bad); err != nil {
		t.Fatalf("async push reported immediately: %v", err)
	}
	if err := in.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := in.Push(good[0]); err == nil {
		t.Fatal("sticky error not surfaced to web1")
	} else if err2 := in.Heartbeat("web1", time.Second); err2 == nil {
		t.Fatal("sticky error not surfaced to web1 heartbeat")
	} else if err3 := in.CloseHost("web1"); err3 == nil {
		t.Fatal("sticky error not surfaced to web1 close")
	}
	// db1 is unaffected.
	if err := in.Heartbeat("db1", time.Second); err != nil {
		t.Fatalf("db1 caught web1's error: %v", err)
	}
	if err := in.CloseHost("db1"); err != nil {
		t.Fatalf("db1 close: %v", err)
	}
	in.Close()
}

// TestIngestUnknownHost: ops for undeclared hosts error via the sticky
// path (Heartbeat/CloseHost synchronously or on the next call).
func TestIngestUnknownHost(t *testing.T) {
	s, err := NewSession(ingestOpts(nil), []string{"web1"})
	if err != nil {
		t.Fatal(err)
	}
	in := NewIngest(s, IngestOptions{})
	defer in.Close()
	if err := in.CloseHost("ghost"); err == nil {
		t.Fatal("CloseHost for undeclared host succeeded")
	}
	if err := in.Heartbeat("ghost", time.Second); err == nil {
		t.Fatal("sticky error not reused for the host")
	}
}

// TestIngestWallClockFlush: with a tiny FlushInterval and a huge
// DrainEvery, decidable graphs still emerge without further input — the
// wall-clock drain is the only thing that can release them.
func TestIngestWallClockFlush(t *testing.T) {
	emitted := make(chan struct{}, 16)
	opts := ingestOpts(func(*cag.Graph) { emitted <- struct{}{} })
	opts.SealAfter = 5 * time.Millisecond
	s, err := NewSession(opts, []string{"web1"})
	if err != nil {
		t.Fatal(err)
	}
	in := NewIngest(s, IngestOptions{DrainEvery: 1 << 20, FlushInterval: 2 * time.Millisecond})
	// Request 0 completes, then request 5's opening record advances the
	// activity clock far past the horizon. No drain is op-driven
	// (DrainEvery is huge), so only the flush timer can seal and emit.
	for _, a := range singleHostRequest("web1", 0) {
		if err := in.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Push(singleHostRequest("web1", 5)[0]); err != nil {
		t.Fatal(err)
	}
	select {
	case <-emitted:
	case <-time.After(10 * time.Second):
		t.Fatal("wall-clock flush never released the sealed graph")
	}
	in.Close()
}

package core

import (
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
)

// foreverOpts is the continuous-mode fixture: two declared hosts, one of
// which (web2) never pushes — its stream staying open is exactly the
// deployment the close-driven seal rule starves.
func foreverOpts(workers int, sealAfter time.Duration) Options {
	return Options{
		Window:     time.Millisecond,
		EntryPorts: []int{80},
		IPToHost:   map[string]string{"10.0.0.1": "web1", "10.0.0.2": "web2"},
		Workers:    workers,
		SealAfter:  sealAfter,
	}
}

// pushRequest pushes one complete two-record request (BEGIN then END after
// classification) on web1 at the given base time, on its own connection.
func pushRequest(t *testing.T, sess *Session, k int, base time.Duration) {
	t.Helper()
	port := 40000 + k%20000
	id := int64(2 * k)
	if err := sess.Push(mkRaw(id, activity.Receive, base, "web1", "httpd", 1, "10.9.9.9", "10.0.0.1", port, 80)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Push(mkRaw(id+1, activity.Send, base+time.Millisecond, "web1", "httpd", 1, "10.0.0.1", "10.9.9.9", 80, port)); err != nil {
		t.Fatal(err)
	}
}

// TestSessionForeverOpenContinuousEmission is the SealAfter acceptance
// test: a session whose agents never restart (CloseHost is never called
// before the very end) must still emit CAGs continuously once components
// fall behind the activity-time horizon, with the incremental partition's
// interning maps bounded by recently-active components instead of every
// connection ever seen.
func TestSessionForeverOpenContinuousEmission(t *testing.T) {
	const (
		sealAfter = 30 * time.Millisecond
		spacing   = 10 * time.Millisecond
		requests  = 500
	)
	sess, err := NewSession(foreverOpts(4, sealAfter), []string{"web1", "web2"})
	if err != nil {
		t.Fatal(err)
	}
	ps := sess.impl.(*streamSession)

	firstEmit := -1
	peakDirs, peakEpochs := 0, 0
	for k := 0; k < requests; k++ {
		pushRequest(t, sess, k, time.Duration(k)*spacing)
		sess.Drain()
		if firstEmit < 0 && len(sess.Graphs()) > 0 {
			firstEmit = k
		}
		if d, e, _ := ps.inc.Sizes(); true {
			if d > peakDirs {
				peakDirs = d
			}
			if e > peakEpochs {
				peakEpochs = e
			}
		}
	}
	if firstEmit < 0 {
		t.Fatal("forever-open session emitted nothing before Close")
	}
	// Emission must begin as soon as the horizon has passed the first
	// request — a handful of spacings in, not hundreds.
	if firstEmit > 10 {
		t.Fatalf("first emission only after request %d (horizon is %v, spacing %v)", firstEmit, sealAfter, spacing)
	}
	mid := len(sess.Graphs())
	if mid < requests*3/4 {
		t.Fatalf("only %d/%d graphs released while all streams were open", mid, requests)
	}
	// Bounded memory: each request interns 2 directed channels and 1
	// epoch; only components inside ~2×SealAfter (seal horizon + prune
	// lag, ≈ 6 requests here) plus the in-flight few may be resident.
	// Without pruning the peak would be ~2×requests = 1000 entries.
	if peakDirs > 60 || peakEpochs > 30 {
		t.Fatalf("interning maps not bounded: peak dirs=%d epochs=%d (500 requests pushed)", peakDirs, peakEpochs)
	}

	// The released stream must be END-ordered (the watermark guarantee
	// survives forced sealing when the liveness bound holds).
	graphs := sess.Graphs()
	for i := 1; i < len(graphs); i++ {
		if graphs[i].End().Timestamp < graphs[i-1].End().Timestamp {
			t.Fatalf("emitted stream regressed at %d", i)
		}
	}

	out := sess.Close()
	if len(out.Graphs) != requests {
		t.Fatalf("final graphs = %d, want %d", len(out.Graphs), requests)
	}
	if out.ForcedSeals < requests*3/4 {
		t.Fatalf("ForcedSeals = %d, want most of %d components", out.ForcedSeals, requests)
	}
	if out.LateLinks != 0 {
		t.Fatalf("LateLinks = %d on a well-behaved stream", out.LateLinks)
	}
}

// TestSessionForeverOpenDeterminism: continuous mode measures staleness
// against pushed timestamps, never wall clock, so replaying the same
// push/drain sequence reproduces the identical emitted stream.
func TestSessionForeverOpenDeterminism(t *testing.T) {
	run := func() []*cag.Graph {
		sess, err := NewSession(foreverOpts(4, 20*time.Millisecond), []string{"web1", "web2"})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 120; k++ {
			pushRequest(t, sess, k, time.Duration(k)*5*time.Millisecond)
			if k%3 == 0 {
				sess.Drain()
			}
		}
		return sess.Close().Graphs
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("no graphs")
	}
	for i := 0; i < 3; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("run %d: %d graphs, want %d", i, len(again), len(first))
		}
		for j := range first {
			if fingerprint(first[j]) != fingerprint(again[j]) {
				t.Fatalf("run %d: graph %d differs", i, j)
			}
		}
	}
}

// TestSessionSealAfterZeroUnchanged: without the opt-in the session stays
// strictly close-driven — the same forever-open stream emits nothing
// until its streams close, and the final output matches the continuous
// session's graphs (well-separated requests lose nothing to forced
// seals).
func TestSessionSealAfterZeroUnchanged(t *testing.T) {
	feed := func(sealAfter time.Duration) (*Session, int) {
		sess, err := NewSession(foreverOpts(4, sealAfter), []string{"web1", "web2"})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 60; k++ {
			pushRequest(t, sess, k, time.Duration(k)*10*time.Millisecond)
			sess.Drain()
		}
		return sess, len(sess.Graphs())
	}
	closeDriven, midClose := feed(0)
	continuous, midCont := feed(25 * time.Millisecond)
	if midClose != 0 {
		t.Fatalf("SealAfter=0 emitted %d graphs with every stream open", midClose)
	}
	if midCont == 0 {
		t.Fatal("SealAfter>0 emitted nothing with every stream open")
	}
	a, b := closeDriven.Close(), continuous.Close()
	if a.ForcedSeals != 0 || a.LateLinks != 0 {
		t.Fatalf("close-driven session counted forced seals/late links: %+v", a)
	}
	if len(a.Graphs) != len(b.Graphs) {
		t.Fatalf("graph counts diverged: close-driven %d vs continuous %d", len(a.Graphs), len(b.Graphs))
	}
	for i := range a.Graphs {
		if fingerprint(a.Graphs[i]) != fingerprint(b.Graphs[i]) {
			t.Fatalf("graph %d differs between close-driven and continuous mode", i)
		}
	}
}

// TestSessionSealAfterAtEveryPoolSize: the streaming engine supports
// seal horizons at any Workers value — Workers=1 is just the sequential
// configuration of the same engine, so a single-threaded forever-open
// deployment emits continuously too. PaperExactNoise included: the
// shard-aware Fig. 5 predicate made exact mode a normal streaming
// session, so a forever-open exact deployment emits continuously as
// well.
func TestSessionSealAfterAtEveryPoolSize(t *testing.T) {
	for _, workers := range []int{0, 1, 4} {
		sess, err := NewSession(foreverOpts(workers, 30*time.Millisecond), []string{"web1", "web2"})
		if err != nil {
			t.Fatalf("workers=%d: SealAfter rejected: %v", workers, err)
		}
		for k := 0; k < 30; k++ {
			pushRequest(t, sess, k, time.Duration(k)*10*time.Millisecond)
			sess.Drain()
		}
		if len(sess.Graphs()) == 0 {
			t.Fatalf("workers=%d: forever-open session emitted nothing before Close", workers)
		}
		out := sess.Close()
		if len(out.Graphs) != 30 {
			t.Fatalf("workers=%d: final graphs = %d, want 30", workers, len(out.Graphs))
		}
		if out.ForcedSeals == 0 {
			t.Fatalf("workers=%d: no forced seals", workers)
		}
	}
	exact := foreverOpts(4, 30*time.Millisecond)
	exact.PaperExactNoise = true
	sess, err := NewSession(exact, []string{"web1", "web2"})
	if err != nil {
		t.Fatalf("SealAfter with PaperExactNoise rejected: %v", err)
	}
	for k := 0; k < 30; k++ {
		pushRequest(t, sess, k, time.Duration(k)*10*time.Millisecond)
		sess.Drain()
	}
	if len(sess.Graphs()) == 0 {
		t.Fatal("forever-open exact session emitted nothing before Close")
	}
	out := sess.Close()
	if len(out.Graphs) != 30 {
		t.Fatalf("exact session final graphs = %d, want 30", len(out.Graphs))
	}
	if out.ForcedSeals == 0 {
		t.Fatal("exact session recorded no forced seals")
	}
}

// TestSessionIdleThreadReuseNotLateLink: a thread idling past the
// horizon and then serving a NEW request on a NEW connection is normal
// operation — its old epoch's component force-seals, but the fresh
// request must not inflate LateLinks (only a sealed component's own
// connections or mid-request continuations count).
func TestSessionIdleThreadReuseNotLateLink(t *testing.T) {
	sess, err := NewSession(foreverOpts(2, 20*time.Millisecond), []string{"web1", "web2"})
	if err != nil {
		t.Fatal(err)
	}
	// Same TID 1 for every request (pushRequest reuses it), long idle
	// gaps between requests so each one's component is force-sealed well
	// before the thread comes back.
	for k := 0; k < 10; k++ {
		pushRequest(t, sess, k, time.Duration(k)*100*time.Millisecond)
		sess.Drain()
	}
	out := sess.Close()
	if len(out.Graphs) != 10 {
		t.Fatalf("graphs = %d, want 10", len(out.Graphs))
	}
	if out.ForcedSeals == 0 {
		t.Fatal("idle gaps produced no forced seals")
	}
	if out.LateLinks != 0 {
		t.Fatalf("LateLinks = %d; idle-thread reuse miscounted as stragglers", out.LateLinks)
	}
}

// TestSessionForcedSealLateLink: an activity violating the
// sender-liveness bound — arriving for a component already force-sealed —
// must be counted as a late link and land on a fresh component, never
// touch the dispatched shard's buffers, and still leave the session
// usable.
func TestSessionForcedSealLateLink(t *testing.T) {
	sess, err := NewSession(foreverOpts(2, 20*time.Millisecond), []string{"web1", "web2"})
	if err != nil {
		t.Fatal(err)
	}
	// Request 0 on connection :40000, then enough traffic to push the
	// activity clock one horizon past it; Drain force-seals request 0.
	pushRequest(t, sess, 0, 0)
	for k := 1; k < 8; k++ {
		pushRequest(t, sess, k, time.Duration(k)*10*time.Millisecond)
	}
	sess.Drain()
	if len(sess.Graphs()) == 0 {
		t.Fatal("setup: nothing force-sealed")
	}
	// A straggler END on request 0's connection, at the current clock
	// (per-host order must not regress).
	late := mkRaw(999, activity.Send, 71*time.Millisecond, "web1", "httpd", 1, "10.0.0.1", "10.9.9.9", 80, 40000)
	if err := sess.Push(late); err != nil {
		t.Fatal(err)
	}
	out := sess.Close()
	if out.LateLinks == 0 {
		t.Fatal("straggler to a force-sealed component not counted as a late link")
	}
	if out.ForcedSeals == 0 {
		t.Fatal("no forced seals recorded")
	}
	// The 8 intact requests still produce their graphs; the straggler is
	// a lone END on a fresh component and yields none.
	if len(out.Graphs) != 8 {
		t.Fatalf("graphs = %d, want 8", len(out.Graphs))
	}
}

package core

import "repro/internal/ranker"

// Every core test runs with the shard-closure assertions armed: ingest
// panics if a ChanKey ever resolves to two live components (the invariant
// the shard-aware Fig. 5 predicate rests on), and the ranker cross-checks
// its bufferedSends index before committing an exact-mode noise drop.
// Production builds keep both off; see debugShardClosure and ranker.Debug.
func init() {
	debugShardClosure = true
	ranker.Debug = true
}

// Package core exposes PreciseTracer's public API: the Correlator that
// turns merged TCP_TRACE activity streams into Component Activity Graphs.
//
// The Correlator composes the two modules of Fig. 2:
//
//	TCP_TRACE logs ──> Ranker (candidate selection, §4.1)
//	                     │ candidates
//	                     ▼
//	                   Engine (CAG construction, §4.2) ──> CAGs
//
// plus the §3.1 transformation step that classifies frontier RECEIVE/SEND
// records into BEGIN/END activities.
//
// Typical offline use:
//
//	trace, _ := activity.ReadAll(f)
//	res, _ := core.New(core.Options{Window: 10 * time.Millisecond,
//	    EntryPorts: []int{80}, IPToHost: topo}).CorrelateTrace(trace)
//	patterns := cag.Classify(res.Graphs)
package core

import (
	"errors"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
	"repro/internal/engine"
	"repro/internal/ranker"
)

// Options configures a Correlator.
type Options struct {
	// Window is the ranker's sliding time window (§4.1). Any positive
	// value preserves correctness; it trades buffering memory against
	// fetch batching. Defaults to 10ms, the setting of §5.3.1.
	Window time.Duration

	// EntryPorts are the first-tier service ports used by the §3.1
	// BEGIN/END transformation (e.g. 80). Required for CAGs to start and
	// finish.
	EntryPorts []int

	// IPToHost maps every traced node's IP addresses to its hostname. Used
	// by the ranker to reason about whether a matching SEND can still
	// arrive. IPs absent from the map are treated as untraced (clients,
	// noise sources).
	IPToHost map[string]string

	// Filter drops activities at fetch time (attribute-based noise
	// filtering, §4.3). Optional.
	Filter ranker.Filter

	// PaperExactNoise switches is_noise to the exact Fig. 5 predicate; see
	// ranker.Config. For ablation only.
	PaperExactNoise bool

	// OnGraph, when non-nil, streams each finished CAG instead of
	// accumulating all of them in the Result — bounding memory for long
	// traces. With Workers > 1 the callback is invoked from the merge
	// stage only (single-goroutine), in the same deterministic END-
	// timestamp order the sequential path emits. The batch pipeline's
	// merge stage holds every finished CAG until all shards complete;
	// sharded Sessions release graphs incrementally as their completion
	// watermark advances (see session_parallel.go), so long-running
	// online use keeps the output side bounded by the open components.
	OnGraph func(*cag.Graph)

	// Workers selects the correlation execution mode. 0 or 1 runs the
	// original single-threaded ranker+engine pass. Workers > 1 runs the
	// sharded concurrent pipeline: the trace is partitioned into
	// independent flow components (see internal/flow), correlated by a
	// pool of Workers goroutines over bounded channels, and merged back
	// into deterministic END-timestamp order, so the graphs are identical
	// to the sequential output on well-formed traces. Batch parallel mode
	// materialises the trace in memory; push-mode Sessions with
	// Workers > 1 instead shard incrementally with per-component
	// completion watermarks (see NewSession). PaperExactNoise always
	// forces the sequential pass (the Fig. 5 predicate reads the global
	// window buffer, which sharding would change) and is surfaced via
	// Result.SequentialFallback. CLIs mapping a "0 = all CPUs" flag
	// should resolve it with ResolveWorkers.
	Workers int

	// ShardBy selects the partition policy for Workers > 1; see ShardMode.
	ShardBy ShardMode

	// BatchSize is the number of flow components handed to a worker per
	// pipeline batch (Workers > 1 only). Defaults to 8. Smaller batches
	// spread load; larger batches cut channel traffic.
	BatchSize int

	// SealAfter, when positive, turns the sharded push-mode Session
	// (Workers > 1) into a continuous correlator: a flow component whose
	// newest activity is more than SealAfter older than the newest
	// timestamp pushed anywhere (activity time, never wall clock — replay
	// stays deterministic) is sealed and correlated at the next Drain even
	// though its hosts are still open, and the watermark emitter releases
	// its CAGs. Each such seal is counted in Result.ForcedSeals. The
	// dispatched component's flow bookkeeping is tombstoned at dispatch
	// and pruned one further SealAfter later, so a forever-open Session's
	// memory is bounded by the components active within ~2×SealAfter, not
	// by every connection ever seen.
	//
	// The price is the no-guess guarantee: a forced seal asserts that no
	// open stream will deliver an activity older than SealAfter behind the
	// global maximum (a sender-liveness bound the agents must honour). An
	// activity that violates it is a late link — it starts a fresh
	// component (possibly splitting its request's CAG) and is counted in
	// Result.LateLinks rather than silently resurrecting a freed shard;
	// the emitted stream can then also regress in END-timestamp order,
	// which live.Monitor surfaces via OutOfOrder.
	//
	// 0 (the default) keeps sealing purely close-driven: output and
	// behaviour are byte-identical to a Session without the option.
	// NewSession rejects SealAfter > 0 when the session would run
	// sequentially (Workers <= 1, or PaperExactNoise forcing the
	// fallback) — dropping it silently would starve a forever-open
	// deployment with no visible signal. Batch runs ignore it.
	SealAfter time.Duration
}

// Result is the outcome of a correlation run.
type Result struct {
	// Graphs holds the finished CAGs in completion order (empty when
	// streaming via OnGraph).
	Graphs []*cag.Graph

	// CorrelationTime is the wall-clock time spent ranking + constructing —
	// the quantity plotted in Fig. 9, 10 and 14.
	CorrelationTime time.Duration

	// Activities is the number of input records offered to the ranker
	// (after classification, before filtering).
	Activities int

	Ranker ranker.Stats
	Engine engine.Stats

	// PeakBufferedActivities and PeakResidentVertices drive the Fig. 11
	// memory accounting: the ranker's buffer plus the engine's unfinished
	// CAGs dominate the Correlator's footprint. In sharded runs these are
	// the largest single shard's peaks.
	PeakBufferedActivities int
	PeakResidentVertices   int

	// Shards is the number of flow components correlated by the sharded
	// pipeline (batch or push-mode). 0 for a sequential run.
	Shards int

	// SequentialFallback is non-empty when Workers > 1 was requested but
	// the run degraded to the single-threaded pass anyway, naming the
	// reason (currently only FallbackPaperExactNoise). Callers that care
	// about throughput should surface it instead of silently accepting
	// sequential speed.
	SequentialFallback string

	// ForcedSeals counts components sealed by the Options.SealAfter
	// activity-time horizon while their hosts were still open — each one
	// an emission the close-driven rule alone would have held back, and a
	// point where the no-guess guarantee was traded for liveness. Always
	// 0 when SealAfter is 0.
	ForcedSeals int

	// LateLinks counts activities that genuinely linked to an already
	// force-sealed component — arrived on one of its connections, or
	// continued its context mid-request (within the tombstone window) —
	// and were detached onto a fresh component instead of resurrecting
	// the dispatched shard. New requests beginning on reused idle
	// threads are not counted. A non-zero value means dispatched work
	// kept producing activity — with persistent connections a structural
	// effect of sealing per activity-idleness, and in the worst case a
	// sender-liveness violation splitting CAGs; see Options.SealAfter.
	LateLinks int
}

// FallbackPaperExactNoise is the Result.SequentialFallback reason set when
// PaperExactNoise forces a Workers > 1 request onto the sequential pass:
// the literal Fig. 5 is_noise predicate reads the global window buffer,
// which shard-local buffers would change.
const FallbackPaperExactNoise = "PaperExactNoise forces the sequential pass (the Fig. 5 predicate reads the global window buffer)"

// EstimatedBytes approximates the Correlator's peak working-set size from
// its two dominant populations. The per-item constants approximate the
// in-memory size of an Activity record and a CAG vertex with bookkeeping.
//
// The figure describes the sequential correlator's state (the Fig. 11
// accounting). In parallel mode (Workers > 1) the underlying peaks are
// per-shard maxima and the pipeline additionally keeps the whole
// materialised trace plus all finished CAGs resident, so this estimate
// is a large undercount of the process footprint there.
func (r *Result) EstimatedBytes() int64 {
	const activityBytes = 192
	const vertexBytes = 256
	return int64(r.PeakBufferedActivities)*activityBytes + int64(r.PeakResidentVertices)*vertexBytes
}

// Unfinished returns the number of CAGs begun but never completed —
// non-zero only under activity loss or truncated traces.
func (r *Result) Unfinished() int {
	return int(r.Engine.Begins - r.Engine.Finished)
}

// Correlator is the reusable façade. Each call to CorrelateTrace or
// CorrelateSources runs an independent pipeline instance.
type Correlator struct {
	opts Options
}

// New returns a Correlator with the given options.
func New(opts Options) *Correlator {
	if opts.Window <= 0 {
		opts.Window = 10 * time.Millisecond
	}
	return &Correlator{opts: opts}
}

// ErrNoEntryPorts reports a configuration that can never produce a CAG.
var ErrNoEntryPorts = errors.New("core: no entry ports configured; no request can begin")

// CorrelateTrace classifies and correlates a merged multi-node trace. The
// input slice is not modified; classification happens on shallow copies.
func (c *Correlator) CorrelateTrace(trace []*activity.Activity) (*Result, error) {
	if len(c.opts.EntryPorts) == 0 {
		return nil, ErrNoEntryPorts
	}
	cls := activity.NewClassifier(c.opts.EntryPorts...)
	classified := make([]*activity.Activity, len(trace))
	for i, a := range trace {
		cp := *a
		cp.Type = cls.Classify(a)
		classified[i] = &cp
	}
	if c.useParallel() {
		return c.correlateParallel(classified, len(classified))
	}
	byHost := ranker.SplitByHost(classified)
	sources := make([]ranker.Source, 0, len(byHost))
	for _, host := range sortedKeys(byHost) {
		sources = append(sources, ranker.NewSliceSource(host, byHost[host]))
	}
	return c.CorrelateSources(sources, len(classified))
}

// CorrelateSources runs the pipeline over pre-classified per-node sources.
// totalHint sizes the result accounting; pass 0 when unknown.
//
// With Workers > 1 the sources are drained into memory first (flow
// partitioning needs the whole trace), trading the sequential path's
// bounded-window memory for shard throughput.
func (c *Correlator) CorrelateSources(sources []ranker.Source, totalHint int) (*Result, error) {
	if c.useParallel() {
		var classified []*activity.Activity
		for _, s := range sources {
			for {
				a := s.Pop()
				if a == nil {
					break
				}
				classified = append(classified, a)
			}
		}
		if totalHint == 0 {
			totalHint = len(classified)
		}
		return c.correlateParallel(classified, totalHint)
	}
	var engOpts []engine.Option
	if c.opts.OnGraph != nil {
		engOpts = append(engOpts, engine.WithOutputFunc(c.opts.OnGraph))
	}
	start := time.Now()
	rk, eng := c.drive(sources, engOpts...)
	elapsed := time.Since(start)

	res := &Result{
		Graphs:                 eng.Outputs(),
		CorrelationTime:        elapsed,
		Activities:             totalHint,
		Ranker:                 rk.Stats(),
		Engine:                 eng.Stats(),
		PeakBufferedActivities: rk.Stats().PeakBuffered,
		PeakResidentVertices:   eng.PeakResidentVertices(),
		SequentialFallback:     c.fallbackReason(),
	}
	return res, nil
}

// fallbackReason names why a Workers > 1 request is running sequentially,
// or "" when it is not degraded (satisfied, or never requested).
func (c *Correlator) fallbackReason() string {
	if c.opts.Workers > 1 && !c.useParallel() {
		return FallbackPaperExactNoise
	}
	return ""
}

// drive runs the ranker+engine pair to exhaustion over per-node sources —
// the paper's sequential correlator. It is the single definition of the
// hot loop: CorrelateSources runs it over the whole trace, and every
// shard of the concurrent pipeline runs it over one flow component, so
// the two execution modes cannot drift apart.
func (c *Correlator) drive(sources []ranker.Source, engOpts ...engine.Option) (*ranker.Ranker, *engine.Engine) {
	eng := engine.New(engOpts...)
	rk := ranker.New(ranker.Config{
		Window:          c.opts.Window,
		IPToHost:        c.opts.IPToHost,
		Filter:          c.opts.Filter,
		PaperExactNoise: c.opts.PaperExactNoise,
	}, eng, sources)
	for {
		a := rk.Rank()
		if a == nil {
			break
		}
		eng.Handle(a)
	}
	return rk, eng
}

func sortedKeys(m map[string][]*activity.Activity) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort: tiny n (node count)
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Package core exposes PreciseTracer's public API: the Correlator that
// turns merged TCP_TRACE activity streams into Component Activity Graphs.
//
// The Correlator composes the two modules of Fig. 2:
//
//	TCP_TRACE logs ──> Ranker (candidate selection, §4.1)
//	                     │ candidates
//	                     ▼
//	                   Engine (CAG construction, §4.2) ──> CAGs
//
// plus the §3.1 transformation step that classifies frontier RECEIVE/SEND
// records into BEGIN/END activities.
//
// Every execution mode is the same streaming pipeline (see stream.go):
// the offline CorrelateTrace/CorrelateSources/CorrelateDir calls replay
// their input into it — push every activity, close every host, drain.
//
// Typical offline use:
//
//	trace, _ := activity.ReadAll(f)
//	res, _ := core.New(core.Options{Window: 10 * time.Millisecond,
//	    EntryPorts: []int{80}, IPToHost: topo}).CorrelateTrace(trace)
//	patterns := cag.Classify(res.Graphs)
package core

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/ranker"
)

// Options configures a Correlator.
type Options struct {
	// Window is the ranker's sliding time window (§4.1). Any positive
	// value preserves correctness; it trades buffering memory against
	// fetch batching. Defaults to 10ms, the setting of §5.3.1.
	Window time.Duration

	// EntryPorts are the first-tier service ports used by the §3.1
	// BEGIN/END transformation (e.g. 80). Required for CAGs to start and
	// finish.
	EntryPorts []int

	// IPToHost maps every traced node's IP addresses to its hostname. Used
	// by the ranker to reason about whether a matching SEND can still
	// arrive, and by the streaming engine to track which hosts can still
	// extend a flow component. IPs absent from the map are treated as
	// untraced (clients, noise sources).
	IPToHost map[string]string

	// Filter drops activities at fetch time (attribute-based noise
	// filtering, §4.3). Optional.
	Filter ranker.Filter

	// PaperExactNoise switches is_noise to the exact Fig. 5 predicate; see
	// ranker.Config. Like every other mode it runs on the streaming
	// engine: the predicate's pending-SEND question is served per shard,
	// which equals the global answer because the flow partition never
	// splits a ChanKey across components (the channel-closure invariant —
	// see ranker.matchingSendVisible). Exact mode therefore shards,
	// accepts seal horizons and heartbeats, and scales with Workers. For
	// ablation only: the default predicate additionally consults sender
	// liveness, which keeps accuracy at 100% under clock skew.
	PaperExactNoise bool

	// OnGraph, when non-nil, streams each finished CAG instead of
	// accumulating all of them in the Result — bounding the output side
	// for long traces. The watermark emitter invokes the callback from one
	// goroutine in deterministic END-timestamp order, releasing graphs
	// incrementally as the completion watermark advances; the offline
	// replay fires the same callback while draining, before the Correlate
	// call returns. OnGraph is the single-callback special case of Sinks;
	// when both are set, OnGraph fires first.
	OnGraph func(*cag.Graph)

	// Sinks is the composable emission chain: every finished CAG is
	// delivered to each sink in order, on the emitter goroutine, in the
	// same deterministic END-timestamp order as OnGraph. Any registered
	// sink streams the output (Result.Graphs stays empty); use a Collect
	// sink to keep the batch view alongside streaming consumers. See
	// GraphSink for the ownership contract.
	Sinks []GraphSink

	// Workers sizes the streaming engine's correlation pool. 0 or 1 keeps
	// one worker goroutine — the sequential configuration, byte-identical
	// to the original single-threaded pass on well-formed traces; larger
	// values correlate independent flow components concurrently (see
	// internal/flow for the shard key). Negative values are rejected.
	// CLIs mapping a "0 = all CPUs" flag should resolve it with
	// ResolveWorkers.
	Workers int

	// ShardBy selects the partition policy of the streaming engine's flow
	// components; see ShardMode.
	ShardBy ShardMode

	// BatchSize is retained for configuration compatibility; the
	// streaming engine dispatches components individually. Negative
	// values are rejected.
	BatchSize int

	// SealAfter, when positive, turns the session into a continuous
	// correlator: a flow component whose newest activity is more than
	// SealAfter older than the newest timestamp pushed anywhere (activity
	// time, never wall clock — replay stays deterministic) is sealed and
	// correlated at the next Drain even though its hosts are still open,
	// and the watermark emitter releases its CAGs. Each such seal is
	// counted in Result.ForcedSeals. The dispatched component's flow
	// bookkeeping is tombstoned at dispatch and pruned one further
	// horizon later, so a forever-open Session's memory is bounded by the
	// components active within ~2×SealAfter, not by every connection ever
	// seen.
	//
	// The price is the no-guess guarantee: a forced seal asserts that no
	// open stream will deliver an activity older than SealAfter behind the
	// global maximum (a sender-liveness bound the agents must honour). An
	// activity that violates it is a late link — it starts a fresh
	// component (possibly splitting its request's CAG) and is counted in
	// Result.LateLinks rather than silently resurrecting a freed shard;
	// the emitted stream can then also regress in END-timestamp order,
	// which live.Monitor surfaces via OutOfOrder.
	//
	// 0 (the default) keeps sealing purely close-driven: output and
	// behaviour are byte-identical to a Session without the option.
	// Offline Correlate calls honour it too: the replay drains on a fixed
	// cadence so a recorded trace reproduces the continuous deployment's
	// seals, splits and counters deterministically.
	SealAfter time.Duration

	// SealAfterByHost overrides SealAfter per host: a chronically lagging
	// agent can be given a longer sender-liveness bound without forcing
	// the whole deployment to choose between latency and split CAGs. A
	// component's effective horizon is the largest horizon of the hosts
	// that can still extend it, so one lagging host extends only its own
	// components' deadlines; components it cannot touch still seal on the
	// shorter default. A host mapped here must have a positive horizon;
	// hosts absent from the map use SealAfter (0 = close-driven only, and
	// a component touching such a host never force-seals).
	//
	// The watermark honours the same per-host bounds: a quiet open host
	// holds back emission by at most its own horizon. Pair long horizons
	// with Session.Heartbeat so a healthy-but-idle host does not delay
	// the ordered output stream.
	SealAfterByHost map[string]time.Duration
}

// validate rejects option values that would silently misbehave. It is
// called by New (surfaced from the Correlate methods, keeping the
// chainable constructor) and by NewSession.
func (o *Options) validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0 (got %d); use ResolveWorkers for CLI-style flags", o.Workers)
	}
	if o.BatchSize < 0 {
		return fmt.Errorf("core: BatchSize must be >= 0 (got %d)", o.BatchSize)
	}
	if o.SealAfter < 0 {
		return fmt.Errorf("core: SealAfter must be >= 0 (got %v)", o.SealAfter)
	}
	for h, d := range o.SealAfterByHost {
		if h == "" {
			return fmt.Errorf("core: SealAfterByHost contains an empty host name")
		}
		if d <= 0 {
			return fmt.Errorf("core: SealAfterByHost[%q] must be > 0 (got %v); omit the host to keep the default", h, d)
		}
	}
	return nil
}

// continuousConfigured reports whether any seal horizon is set — the
// switch that enables forced seals, tombstoning and pruning.
func (o *Options) continuousConfigured() bool {
	return o.SealAfter > 0 || len(o.SealAfterByHost) > 0
}

// horizonFor returns host's effective seal horizon (0 = none: the host's
// components seal only when every contributing host closes).
func (o *Options) horizonFor(host string) time.Duration {
	if d, ok := o.SealAfterByHost[host]; ok {
		return d
	}
	return o.SealAfter
}

// maxHorizon returns the largest configured horizon, the conservative
// prune lag for components whose own horizon is unbounded.
func (o *Options) maxHorizon() time.Duration {
	h := o.SealAfter
	for _, d := range o.SealAfterByHost {
		if d > h {
			h = d
		}
	}
	return h
}

// ShardMode selects the partition policy of the streaming engine
// (Options.ShardBy). Both policies shard by TCP flow key — the union-find
// closure over channels and contexts computed by internal/flow — and both
// produce graphs identical to the global sequential pass; they differ in
// how the context relation is scoped, i.e. how fine the shards get.
type ShardMode int

const (
	// ShardByFlow (default) breaks context chains at request-epoch
	// boundaries: thread-pool reuse does not merge unrelated requests into
	// one shard. Finest sharding, exact on well-formed traces.
	ShardByFlow ShardMode = iota
	// ShardByContext unions a context's whole lifetime — coarser shards
	// that stay exact even when epoch boundaries are unrecoverable
	// (heavily truncated or lossy traces).
	ShardByContext
)

// String implements fmt.Stringer.
func (m ShardMode) String() string { return m.flowMode().String() }

func (m ShardMode) flowMode() flow.Mode {
	if m == ShardByContext {
		return flow.ModeContext
	}
	return flow.ModeFlow
}

// ResolveWorkers maps a CLI-style worker-count flag onto Options.Workers:
// 0 means "all CPUs" (GOMAXPROCS), negatives mean sequential, positives
// pass through. Options.Workers itself treats 0 as sequential so that the
// zero value of Options keeps the original single-threaded behaviour;
// this helper is the one place the friendlier flag convention lives.
func ResolveWorkers(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n < 0 {
		return 1
	}
	return n
}

// ParseSealAfterSpec parses a CLI -sealafter specification: either one
// duration applying to every host ("50ms"), or a comma-separated list of
// host=duration overrides with an optional bare duration as the default
// ("50ms,db1=500ms"). Per-host horizons must be positive; the default
// must be non-negative (0 = close-driven sealing only).
func ParseSealAfterSpec(spec string) (time.Duration, map[string]time.Duration, error) {
	var global time.Duration
	var perHost map[string]time.Duration
	seenGlobal := false
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		host, val, isHost := strings.Cut(part, "=")
		if !isHost {
			if seenGlobal {
				return 0, nil, fmt.Errorf("sealafter: more than one default duration in %q", spec)
			}
			d, err := time.ParseDuration(part)
			if err != nil {
				return 0, nil, fmt.Errorf("sealafter: bad duration %q: %w", part, err)
			}
			if d < 0 {
				return 0, nil, fmt.Errorf("sealafter: default duration must be >= 0 (got %v)", d)
			}
			global, seenGlobal = d, true
			continue
		}
		host = strings.TrimSpace(host)
		if host == "" {
			return 0, nil, fmt.Errorf("sealafter: empty host in %q", part)
		}
		d, err := time.ParseDuration(strings.TrimSpace(val))
		if err != nil {
			return 0, nil, fmt.Errorf("sealafter: bad duration for host %s: %w", host, err)
		}
		if d <= 0 {
			return 0, nil, fmt.Errorf("sealafter: horizon for host %s must be > 0 (got %v)", host, d)
		}
		if perHost == nil {
			perHost = make(map[string]time.Duration)
		}
		if _, dup := perHost[host]; dup {
			return 0, nil, fmt.Errorf("sealafter: host %s listed twice", host)
		}
		perHost[host] = d
	}
	return global, perHost, nil
}

// Result is the outcome of a correlation run.
type Result struct {
	// Graphs holds the finished CAGs in completion order (empty when
	// streaming via OnGraph or Sinks).
	Graphs []*cag.Graph

	// CorrelationTime is the wall-clock time spent ranking + constructing —
	// the quantity plotted in Fig. 9, 10 and 14.
	CorrelationTime time.Duration

	// Activities is the number of input records offered to the ranker
	// (after classification, before filtering).
	Activities int

	Ranker ranker.Stats
	Engine engine.Stats

	// PeakBufferedActivities and PeakResidentVertices drive the Fig. 11
	// memory accounting: the ranker's buffer plus the engine's unfinished
	// CAGs dominate the Correlator's footprint. These are the largest
	// single shard's peaks.
	PeakBufferedActivities int
	PeakResidentVertices   int

	// Shards is the number of flow components correlated by the streaming
	// engine. Every mode shards (0 only for empty input).
	Shards int

	// ForcedSeals counts components sealed by a SealAfter/SealAfterByHost
	// activity-time horizon while their hosts were still open — each one
	// an emission the close-driven rule alone would have held back, and a
	// point where the no-guess guarantee was traded for liveness. Always
	// 0 when no horizon is configured.
	ForcedSeals int

	// LateLinks counts activities that genuinely linked to an already
	// force-sealed component — arrived on one of its connections, or
	// continued its context mid-request (within the tombstone window) —
	// and were detached onto a fresh component instead of resurrecting
	// the dispatched shard. New requests beginning on reused idle
	// threads are not counted. A non-zero value means dispatched work
	// kept producing activity — with persistent connections a structural
	// effect of sealing per activity-idleness, and in the worst case a
	// sender-liveness violation splitting CAGs; see Options.SealAfter.
	LateLinks int
}

// EstimatedBytes approximates the correlator state's peak working-set size
// from its two dominant populations. The per-item constants approximate
// the in-memory size of an Activity record and a CAG vertex with
// bookkeeping.
//
// The figure describes one correlation pass's state (the Fig. 11
// accounting): for streaming-engine runs the peaks are per-shard maxima,
// and the engine additionally buffers every unsealed component's
// activities, so this estimate undercounts the process footprint unless a
// seal horizon keeps components short-lived.
func (r *Result) EstimatedBytes() int64 {
	const activityBytes = 192
	const vertexBytes = 256
	return int64(r.PeakBufferedActivities)*activityBytes + int64(r.PeakResidentVertices)*vertexBytes
}

// Unfinished returns the number of CAGs begun but never completed —
// non-zero only under activity loss, truncated traces, or forced seals
// splitting a request.
func (r *Result) Unfinished() int {
	return int(r.Engine.Begins - r.Engine.Finished)
}

// Correlator is the reusable façade. Each call to CorrelateTrace or
// CorrelateSources runs an independent pipeline instance.
type Correlator struct {
	opts Options
	err  error // deferred Options validation failure
}

// New returns a Correlator with the given options. Invalid options are
// reported by the Correlate methods (the constructor stays chainable);
// NewSession reports them directly.
func New(opts Options) *Correlator {
	err := opts.validate()
	if opts.Window <= 0 {
		opts.Window = 10 * time.Millisecond
	}
	return &Correlator{opts: opts, err: err}
}

// ErrNoEntryPorts reports a configuration that can never produce a CAG.
var ErrNoEntryPorts = errors.New("core: no entry ports configured; no request can begin")

// CorrelateTrace classifies and correlates a merged multi-node trace. The
// input slice is not modified; classification happens on shallow copies.
//
// The trace is replayed through the streaming engine in trace order
// (push, close every host, drain) — with a seal horizon configured the
// replay also drains on a fixed cadence, reproducing a continuous
// deployment's forced seals deterministically.
func (c *Correlator) CorrelateTrace(trace []*activity.Activity) (*Result, error) {
	if c.err != nil {
		return nil, c.err
	}
	if len(c.opts.EntryPorts) == 0 {
		return nil, ErrNoEntryPorts
	}
	return c.replayTrace(trace)
}

// CorrelateSources runs the pipeline over pre-classified per-node sources.
// totalHint sizes the result accounting; pass 0 when unknown.
//
// The sources are merged by timestamp and replayed through the streaming
// engine, which buffers each flow component until it seals — configure a
// seal horizon to bound that buffering on long inputs.
func (c *Correlator) CorrelateSources(sources []ranker.Source, totalHint int) (*Result, error) {
	if c.err != nil {
		return nil, c.err
	}
	return c.replaySources(sources, totalHint)
}

// drive runs the ranker+engine pair to exhaustion over per-node sources —
// the paper's sequential correlator. It is the single definition of the
// hot loop: every sealed flow component of the streaming engine runs it
// over the component's sources, so the execution modes cannot drift
// apart.
func (c *Correlator) drive(sources []ranker.Source, engOpts ...engine.Option) (*ranker.Ranker, *engine.Engine) {
	eng := engine.New(engOpts...)
	rk := ranker.New(c.rankerConfig(), eng, sources)
	c.driveLoop(rk, eng)
	return rk, eng
}

// driveOn is drive on a caller-owned, reusable ranker+engine pair: both
// are reset in place and run over the sources with the same hot loop. The
// worker pool uses it to correlate one sealed component after another
// without rebuilding the pair — in continuous mode the per-component
// ranker/engine construction dominated steady-state allocations.
func (c *Correlator) driveOn(rk *ranker.Ranker, eng *engine.Engine, sources []ranker.Source) {
	eng.Reset()
	rk.Reset(eng, sources)
	c.driveLoop(rk, eng)
}

func (c *Correlator) driveLoop(rk *ranker.Ranker, eng *engine.Engine) {
	for {
		a := rk.Rank()
		if a == nil {
			break
		}
		eng.Handle(a)
	}
}

// rankerConfig is the one translation of the correlator's options into
// the ranker's knobs — drive and the worker pool's reusable rankers must
// agree on it exactly.
func (c *Correlator) rankerConfig() ranker.Config {
	return ranker.Config{
		Window:          c.opts.Window,
		IPToHost:        c.opts.IPToHost,
		Filter:          c.opts.Filter,
		PaperExactNoise: c.opts.PaperExactNoise,
	}
}

package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
	"repro/internal/rubis"
)

// pushReplay replays the trace into the session in global timestamp order
// (the arrival approximation every online test uses), draining every
// chunk records, and closes the session.
func pushReplay(t *testing.T, sess *Session, res *rubis.Result, chunk int) *Result {
	t.Helper()
	for i, a := range arrivalOrder(res.Trace) {
		if err := sess.Push(a); err != nil {
			t.Fatal(err)
		}
		if chunk > 0 && (i+1)%chunk == 0 {
			sess.Drain()
		}
	}
	return sess.Close()
}

func sessionOptions(res *rubis.Result, workers int, mode ShardMode) Options {
	return Options{
		Window:     10 * time.Millisecond,
		EntryPorts: []int{rubis.EntryPort},
		IPToHost:   res.IPToHost,
		Workers:    workers,
		ShardBy:    mode,
	}
}

// TestParallelSessionEquivalence is the tentpole guarantee: for the same
// push order, the sharded push-mode Session emits exactly the sequential
// Session's graphs — same contents, same order — for every worker count
// and shard mode, and the shard engines collectively did exactly the
// sequential engine's work.
func TestParallelSessionEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		clients int
		scale   float64
		noise   int
	}{
		{"clean", 120, 0.03, 0},
		{"noisy", 120, 0.03, 8},
		{"larger", 300, 0.05, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := rubisTrace(t, tc.clients, tc.scale, tc.noise)
			seqSess, err := NewSession(sessionOptions(res, 1, ShardByFlow), hostsOf(res))
			if err != nil {
				t.Fatal(err)
			}
			seq := pushReplay(t, seqSess, res, 256)
			if len(seq.Graphs) == 0 {
				t.Fatal("sequential session produced no graphs")
			}
			for _, workers := range []int{4, 8} {
				for _, mode := range []ShardMode{ShardByFlow, ShardByContext} {
					label := fmt.Sprintf("workers=%d shardby=%s", workers, mode)
					parSess, err := NewSession(sessionOptions(res, workers, mode), hostsOf(res))
					if err != nil {
						t.Fatal(err)
					}
					par := pushReplay(t, parSess, res, 256)
					assertSameGraphs(t, label, seq, par)
					if par.Engine.Begins != seq.Engine.Begins ||
						par.Engine.Finished != seq.Engine.Finished ||
						par.Engine.Sends != seq.Engine.Sends ||
						par.Engine.Receives != seq.Engine.Receives {
						t.Fatalf("%s: engine stats diverged: got %+v, want %+v", label, par.Engine, seq.Engine)
					}
					if par.Activities != seq.Activities {
						t.Fatalf("%s: activities %d, want %d", label, par.Activities, seq.Activities)
					}
					if par.Shards == 0 {
						t.Fatalf("%s: sharded session reported no shards", label)
					}
				}
			}
		})
	}
}

// TestParallelSessionDeterminism: goroutine scheduling must never leak
// into the emitted stream.
func TestParallelSessionDeterminism(t *testing.T) {
	res := rubisTrace(t, 120, 0.03, 4)
	run := func() *Result {
		sess, err := NewSession(sessionOptions(res, 8, ShardByFlow), hostsOf(res))
		if err != nil {
			t.Fatal(err)
		}
		return pushReplay(t, sess, res, 128)
	}
	first := run()
	for i := 0; i < 3; i++ {
		assertSameGraphs(t, fmt.Sprintf("run %d", i), first, run())
	}
}

// TestParallelSessionOnGraphOrder verifies the watermark emitter's
// streaming contract: OnGraph fires single-goroutine in non-decreasing
// END-timestamp order and sees every graph.
func TestParallelSessionOnGraphOrder(t *testing.T) {
	res := rubisTrace(t, 120, 0.03, 0)
	var streamed []*cag.Graph
	opts := sessionOptions(res, 4, ShardByFlow)
	opts.OnGraph = func(g *cag.Graph) { streamed = append(streamed, g) }
	sess, err := NewSession(opts, hostsOf(res))
	if err != nil {
		t.Fatal(err)
	}
	out := pushReplay(t, sess, res, 64)
	if len(out.Graphs) != 0 {
		t.Fatalf("streaming mode accumulated %d graphs", len(out.Graphs))
	}
	if len(streamed) == 0 {
		t.Fatal("no graphs streamed")
	}
	for i := 1; i < len(streamed); i++ {
		if streamed[i].End().Timestamp < streamed[i-1].End().Timestamp {
			t.Fatalf("stream order regressed at %d", i)
		}
	}
	seqSess, err := NewSession(sessionOptions(res, 1, ShardByFlow), hostsOf(res))
	if err != nil {
		t.Fatal(err)
	}
	seq := pushReplay(t, seqSess, res, 64)
	if len(streamed) != len(seq.Graphs) {
		t.Fatalf("streamed %d graphs, sequential emitted %d", len(streamed), len(seq.Graphs))
	}
	for i := range streamed {
		if fingerprint(streamed[i]) != fingerprint(seq.Graphs[i]) {
			t.Fatalf("streamed graph %d differs from sequential", i)
		}
	}
}

// TestParallelSessionStaggeredClose exercises the seal/watermark path
// mid-stream: closing hosts one by one releases nothing while the front
// tier is still open (every component can still grow), and everything
// once the last stream closes — before Close is ever called.
func TestParallelSessionStaggeredClose(t *testing.T) {
	res := rubisTrace(t, 120, 0.03, 0)
	hosts := hostsOf(res)
	sess, err := NewSession(sessionOptions(res, 4, ShardByFlow), hosts)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivalOrder(res.Trace) {
		if err := sess.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	// Close every host but the front tier: all components still touch the
	// open front-tier stream, so nothing seals and nothing is emitted.
	var front string
	for _, h := range hosts {
		if h == "web1" {
			front = h
			continue
		}
		if err := sess.CloseHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if front == "" {
		t.Fatal("trace has no web1 front tier")
	}
	sess.Drain()
	if n := len(sess.Graphs()); n != 0 {
		t.Fatalf("emitted %d graphs while the front tier was open", n)
	}
	// Closing the last stream seals every component; Drain (not Close)
	// must release the full set.
	if err := sess.CloseHost(front); err != nil {
		t.Fatal(err)
	}
	sess.Drain()
	mid := len(sess.Graphs())
	if mid == 0 {
		t.Fatal("no graphs released after the last CloseHost")
	}
	out := sess.Close()
	if len(out.Graphs) != mid {
		t.Fatalf("Close added %d graphs after the final drain", len(out.Graphs)-mid)
	}
	seqSess, err := NewSession(sessionOptions(res, 1, ShardByFlow), hosts)
	if err != nil {
		t.Fatal(err)
	}
	seq := pushReplay(t, seqSess, res, 0)
	assertSameGraphs(t, "staggered close", seq, out)
}

// mkRaw builds a raw (unclassified) frontier record for the synthetic
// watermark fixtures.
func mkRaw(id int64, typ activity.Type, ts time.Duration, host, program string, tid int, src, dst string, srcPort, dstPort int) *activity.Activity {
	return &activity.Activity{
		ID: id, Type: typ, Timestamp: ts,
		Ctx: activity.Context{Host: host, Program: program, PID: 1, TID: tid},
		Chan: activity.Channel{
			Src: activity.Endpoint{IP: src, Port: srcPort},
			Dst: activity.Endpoint{IP: dst, Port: dstPort},
		},
		Size: 64, ReqID: -1, MsgID: -1,
	}
}

// TestParallelSessionWatermarkReleasesEarly is the fine-grained watermark
// check: two independent single-host requests on two hosts; closing the
// first host seals its component, and its graph is released while the
// second host's stream is still open — because the open stream's last
// timestamp has advanced past the finished graph's END.
func TestParallelSessionWatermarkReleasesEarly(t *testing.T) {
	opts := Options{
		Window:     time.Millisecond,
		EntryPorts: []int{80},
		IPToHost:   map[string]string{"10.0.0.1": "web1", "10.0.0.2": "web2"},
		Workers:    2,
	}
	sess, err := NewSession(opts, []string{"web1", "web2"})
	if err != nil {
		t.Fatal(err)
	}
	push := func(a *activity.Activity) {
		t.Helper()
		if err := sess.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	// web1: one complete request, END at 2ms.
	push(mkRaw(1, activity.Receive, 1*time.Millisecond, "web1", "httpd", 1, "10.9.9.9", "10.0.0.1", 40000, 80))
	push(mkRaw(2, activity.Send, 2*time.Millisecond, "web1", "httpd", 1, "10.0.0.1", "10.9.9.9", 80, 40000))
	// web2: a request in progress, its stream already past 6ms.
	push(mkRaw(3, activity.Receive, 5*time.Millisecond, "web2", "httpd", 2, "10.9.9.8", "10.0.0.2", 41000, 80))
	push(mkRaw(4, activity.Send, 6*time.Millisecond, "web2", "httpd", 2, "10.0.0.2", "10.9.9.8", 80, 41000))

	if err := sess.CloseHost("web1"); err != nil {
		t.Fatal(err)
	}
	sess.Drain()
	if n := len(sess.Graphs()); n != 1 {
		t.Fatalf("watermark released %d graphs, want 1 (web1's finished request)", n)
	}
	if got := sess.Graphs()[0].End().Timestamp; got != 2*time.Millisecond {
		t.Fatalf("released the wrong graph (END %v)", got)
	}
	if sess.Pending() == 0 {
		t.Fatal("web2's request should still be pending")
	}
	out := sess.Close()
	if len(out.Graphs) != 2 {
		t.Fatalf("final graphs = %d, want 2", len(out.Graphs))
	}
	if out.Shards != 2 {
		t.Fatalf("shards = %d, want 2", out.Shards)
	}
}

// TestSessionPushAfterCloseHost: a closed stream rejects pushes in both
// execution modes, while other streams stay usable.
func TestSessionPushAfterCloseHost(t *testing.T) {
	res := fastRun(t, 10, nil)
	for _, workers := range []int{1, 4} {
		opts := options(res)
		opts.Workers = workers
		sess, err := NewSession(opts, hostsOf(res))
		if err != nil {
			t.Fatal(err)
		}
		var closed, other string
		for h := range res.PerHost {
			if closed == "" {
				closed = h
			} else if other == "" {
				other = h
			}
		}
		if err := sess.CloseHost(closed); err != nil {
			t.Fatal(err)
		}
		for _, a := range res.Trace {
			if a.Ctx.Host == closed {
				if err := sess.Push(a); err == nil {
					t.Fatalf("workers=%d: push on closed host succeeded", workers)
				}
				break
			}
		}
		for _, a := range res.PerHost[other] {
			if err := sess.Push(a); err != nil {
				t.Fatalf("workers=%d: open host rejected push: %v", workers, err)
			}
			break
		}
		sess.Close()
	}
}

// TestSessionDrainEmptyAndDoubleClose: Drain with an empty buffer is a
// no-op in both modes; Close is idempotent; Push after Close fails.
func TestSessionDrainEmptyAndDoubleClose(t *testing.T) {
	res := fastRun(t, 10, nil)
	for _, workers := range []int{1, 4} {
		opts := options(res)
		opts.Workers = workers
		sess, err := NewSession(opts, hostsOf(res))
		if err != nil {
			t.Fatal(err)
		}
		if n := sess.Drain(); n != 0 {
			t.Fatalf("workers=%d: empty drain processed %d", workers, n)
		}
		if sess.Pending() != 0 {
			t.Fatalf("workers=%d: empty session pending", workers)
		}
		out := sess.Close()
		if len(out.Graphs) != 0 || out.Activities != 0 {
			t.Fatalf("workers=%d: empty close: %+v", workers, out)
		}
		if err := sess.Push(res.Trace[0]); err == nil {
			t.Fatalf("workers=%d: push after close succeeded", workers)
		}
		if again := sess.Close(); again != out {
			t.Fatalf("workers=%d: second Close returned a different result", workers)
		}
	}
}

// TestSessionInterleavedCloseHostPush: streams close at different times
// while others keep pushing — the realistic rolling-agent-shutdown
// shape — and the final output still matches the sequential session.
func TestSessionInterleavedCloseHostPush(t *testing.T) {
	res := rubisTrace(t, 80, 0.03, 0)
	hosts := hostsOf(res)
	run := func(workers int) *Result {
		sess, err := NewSession(sessionOptions(res, workers, ShardByFlow), hosts)
		if err != nil {
			t.Fatal(err)
		}
		// Push host by host (sorted order): each host's full log, then
		// close it immediately, draining between hosts.
		for _, h := range hosts {
			for _, a := range res.PerHost[h] {
				if err := sess.Push(a); err != nil {
					t.Fatal(err)
				}
			}
			if err := sess.CloseHost(h); err != nil {
				t.Fatal(err)
			}
			sess.Drain()
		}
		return sess.Close()
	}
	seq := run(1)
	if len(seq.Graphs) == 0 {
		t.Fatal("no graphs")
	}
	assertSameGraphs(t, "interleaved close", seq, run(4))
}

// TestSessionPaperExactNoiseRunsSharded: the exact Fig. 5 ablation is a
// normal streaming-engine session — Workers > 1 shards it (channel
// closure keeps every matching SEND co-sharded with its RECEIVE, so the
// per-shard predicate equals the global answer), heartbeats are accepted
// and validated like any other mode's, and the offline exact replay
// shards too.
func TestSessionPaperExactNoiseRunsSharded(t *testing.T) {
	res := fastRun(t, 20, nil)

	opts := options(res)
	opts.PaperExactNoise = true
	seqSess, err := NewSession(opts, hostsOf(res))
	if err != nil {
		t.Fatal(err)
	}
	seq := pushReplay(t, seqSess, res, 256)
	if len(seq.Graphs) == 0 {
		t.Fatal("sequential exact session produced no graphs")
	}

	opts.Workers = 4
	parSess, err := NewSession(opts, hostsOf(res))
	if err != nil {
		t.Fatal(err)
	}
	par := pushReplay(t, parSess, res, 256)
	assertSameGraphs(t, "paperexact workers=4", seq, par)
	if par.Shards == 0 {
		t.Fatal("exact session with Workers=4 reported no shards")
	}

	hb, err := NewSession(opts, hostsOf(res))
	if err != nil {
		t.Fatal(err)
	}
	if err := hb.Heartbeat(hostsOf(res)[0], time.Second); err != nil {
		t.Fatalf("exact session rejected a heartbeat: %v", err)
	}
	if err := hb.Heartbeat("nosuch", time.Second); err == nil {
		t.Fatal("exact session accepted a heartbeat for an undeclared host")
	}
	hb.Close()

	batch, err := New(opts).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Shards == 0 {
		t.Fatal("offline exact replay reported no shards")
	}
	assertSameGraphs(t, "paperexact offline", seq, batch)
}

// BenchmarkSessionSharded measures the push-mode pipeline end to end
// (push + drain + close) for the sequential and sharded sessions.
func BenchmarkSessionSharded(b *testing.B) {
	res := rubisTrace(b, 200, 0.05, 0)
	ordered := make([]*activity.Activity, len(res.Trace))
	copy(ordered, res.Trace)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var hosts []string
			for h := range res.PerHost {
				hosts = append(hosts, h)
			}
			for i := 0; i < b.N; i++ {
				opts := Options{
					Window:     10 * time.Millisecond,
					EntryPorts: []int{rubis.EntryPort},
					IPToHost:   res.IPToHost,
					Workers:    workers,
				}
				sess, err := NewSession(opts, hosts)
				if err != nil {
					b.Fatal(err)
				}
				for j, a := range ordered {
					if err := sess.Push(a); err != nil {
						b.Fatal(err)
					}
					if j%512 == 0 {
						sess.Drain()
					}
				}
				sess.Close()
			}
		})
	}
}

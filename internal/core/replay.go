package core

import (
	"sort"
	"time"

	"repro/internal/activity"
	"repro/internal/ranker"
)

// Offline correlation is a deterministic replay into the streaming
// engine: push every activity, close every host, drain. That makes the
// watermark-based session the single implementation of the pipeline —
// the offline paths add no correlation logic of their own, so batch and
// online results cannot drift apart (they ARE the same code).
//
// Determinism: the engine's output depends only on each host's record
// order (components buffer per host; cross-host interleaving never
// reaches the per-component rankers) plus, in continuous mode, on where
// the drains fall. The replay preserves the input's per-host order and
// drains on a fixed record cadence, so the same input always reproduces
// the same output — including the forced seals, splits and late links a
// continuous deployment would have produced.

// replayDrainEvery is the fixed drain cadence of a continuous-mode
// replay (records between drains). Close-driven replays drain only at
// the end — mid-replay drains would be pure overhead, since nothing
// seals before the hosts close.
const replayDrainEvery = 1024

// replayTrace correlates a merged, classified-on-the-fly trace by
// replaying it through the streaming engine in trace order.
func (c *Correlator) replayTrace(trace []*activity.Activity) (*Result, error) {
	start := time.Now()
	hostSet := make(map[string]struct{})
	for _, a := range trace {
		hostSet[a.Ctx.Host] = struct{}{}
	}
	if len(hostSet) == 0 {
		return &Result{Activities: len(trace), CorrelationTime: time.Since(start)}, nil
	}
	hosts := make([]string, 0, len(hostSet))
	for h := range hostSet {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)

	s := newStreamSession(c.opts, hosts)
	cls := s.cls
	every := 0
	if c.opts.continuousConfigured() {
		every = replayDrainEvery
	}
	for i, a := range trace {
		cp := s.copyRec(a)
		cp.Type = cls.Classify(a)
		s.replayPush(cp)
		if every > 0 && (i+1)%every == 0 {
			s.Drain()
		}
	}
	return c.finishReplay(s, len(trace), start), nil
}

// replaySources correlates pre-classified per-node sources by merging
// them in timestamp order (ties broken by source position — sources are
// conventionally passed in sorted host order) and replaying the merged
// stream through the streaming engine.
func (c *Correlator) replaySources(sources []ranker.Source, totalHint int) (*Result, error) {
	start := time.Now()
	hosts := make([]string, 0, len(sources))
	seen := make(map[string]struct{}, len(sources))
	for _, src := range sources {
		if _, dup := seen[src.Host()]; !dup {
			seen[src.Host()] = struct{}{}
			hosts = append(hosts, src.Host())
		}
	}
	if len(hosts) == 0 {
		return &Result{Activities: totalHint, CorrelationTime: time.Since(start)}, nil
	}

	s := newStreamSession(c.opts, hosts)
	every := 0
	if c.opts.continuousConfigured() {
		every = replayDrainEvery
	}
	pushed := 0
	for {
		pick := -1
		var best time.Duration
		for i, src := range sources {
			a := src.Peek()
			if a == nil {
				continue
			}
			if pick < 0 || a.Timestamp < best {
				pick, best = i, a.Timestamp
			}
		}
		if pick < 0 {
			break
		}
		// Sources hand over ownership (the historical pass fed them to the
		// ranker directly), and their records are pre-classified — no copy.
		s.replayPush(sources[pick].Pop())
		pushed++
		if every > 0 && pushed%every == 0 {
			s.Drain()
		}
	}
	if totalHint == 0 {
		totalHint = pushed
	}
	return c.finishReplay(s, totalHint, start), nil
}

// finishReplay ends every stream (Close seals and drains the remainder)
// and normalises the Result's replay-wide accounting (the engine's own
// CorrelationTime only covers time blocked on shard work; a batch caller
// cares about the whole pass, partition included — the quantity
// Fig. 9/10/14 plot).
func (c *Correlator) finishReplay(s *streamSession, total int, start time.Time) *Result {
	res := s.Close()
	res.Activities = total
	res.CorrelationTime = time.Since(start)
	return res
}

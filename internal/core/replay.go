package core

import (
	"sort"
	"time"

	"repro/internal/activity"
	"repro/internal/ranker"
)

// Offline correlation is a deterministic replay into the streaming
// engine: push every activity, close every host, drain. That makes the
// watermark-based session the single implementation of the pipeline —
// the offline paths add no correlation logic of their own, so batch and
// online results cannot drift apart (they ARE the same code).
//
// Determinism: the engine's output depends only on each host's record
// order (components buffer per host; cross-host interleaving never
// reaches the per-component rankers) plus, in continuous mode, on where
// the drains fall. The replay preserves the input's per-host order and
// drains on a fixed record cadence, so the same input always reproduces
// the same output — including the forced seals, splits and late links a
// continuous deployment would have produced.

// replayDrainEvery is the fixed drain cadence of a continuous-mode
// replay (records between drains). Close-driven replays drain only at
// the end — mid-replay drains would be pure overhead, since nothing
// seals before the hosts close.
const replayDrainEvery = 1024

// replayTrace correlates a merged, classified-on-the-fly trace by
// replaying it through the streaming engine in trace order.
func (c *Correlator) replayTrace(trace []*activity.Activity) (*Result, error) {
	start := time.Now()
	hostSet := make(map[string]struct{})
	for _, a := range trace {
		hostSet[a.Ctx.Host] = struct{}{}
	}
	if len(hostSet) == 0 {
		return &Result{Activities: len(trace), CorrelationTime: time.Since(start)}, nil
	}
	hosts := make([]string, 0, len(hostSet))
	for h := range hostSet {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)

	s := newStreamSession(c.opts, hosts)
	cls := s.cls
	every := 0
	if c.opts.continuousConfigured() {
		every = replayDrainEvery
	}
	// Close-driven replays overlap partition with correlation: when the
	// trace proves safe (earlyCloseSafe), each host is closed right
	// after its last record, so completed components seal and dispatch
	// to the worker pool mid-replay instead of all at once at Close —
	// the serial partition phase and the parallel correlation phase run
	// concurrently. Continuous replays keep the close-at-end shape:
	// closing a host early would shrink components' seal horizons
	// mid-replay and change which seals are forced.
	var lastIdx map[string]int
	if every == 0 && s.earlyCloseSafe(trace) {
		lastIdx = make(map[string]int, len(hosts))
		for i, a := range trace {
			lastIdx[a.Ctx.Host] = i
		}
	}
	for i, a := range trace {
		cp := s.copyRec(a)
		cp.Type = cls.Classify(a)
		s.replayPush(cp)
		if every > 0 && (i+1)%every == 0 {
			s.Drain()
		}
		if lastIdx != nil && lastIdx[a.Ctx.Host] == i {
			if err := s.CloseHost(a.Ctx.Host); err != nil {
				return nil, err
			}
		}
	}
	return c.finishReplay(s, len(trace), start), nil
}

// earlyCloseSafe reports whether a close-driven replay may close each
// host at its last record without changing a single seal grouping: it
// holds when every record's pushing host owns at least one resolvable
// endpoint of the record's own connection. Then any component whose
// contributing hosts have all closed really is complete — a later
// record that could join it shares one of its connections, and that
// connection's still-open side resolved into the component's
// contributor set when the connection was first seen, so the component
// was not sealable. An unresolvable own-side endpoint means IPToHost
// misses a traced host's address; sealing early there could split what
// close-at-end would have joined, so the replay degrades to the
// close-at-end shape (exactly like the ranker degrades its noise
// reasoning on the same misconfiguration).
func (s *streamSession) earlyCloseSafe(trace []*activity.Activity) bool {
	if len(s.ipHost) == 0 {
		return false
	}
	for _, a := range trace {
		if !a.CtxK.Bound() {
			activity.Bind(a)
		}
		if s.ipHost[a.ChanK.SrcIP] != a.CtxK.Host && s.ipHost[a.ChanK.DstIP] != a.CtxK.Host {
			return false
		}
	}
	return true
}

// replaySources correlates pre-classified per-node sources by merging
// them in timestamp order (ties broken by source position — sources are
// conventionally passed in sorted host order) and replaying the merged
// stream through the streaming engine.
func (c *Correlator) replaySources(sources []ranker.Source, totalHint int) (*Result, error) {
	start := time.Now()
	hosts := make([]string, 0, len(sources))
	seen := make(map[string]struct{}, len(sources))
	for _, src := range sources {
		if _, dup := seen[src.Host()]; !dup {
			seen[src.Host()] = struct{}{}
			hosts = append(hosts, src.Host())
		}
	}
	if len(hosts) == 0 {
		return &Result{Activities: totalHint, CorrelationTime: time.Since(start)}, nil
	}

	s := newStreamSession(c.opts, hosts)
	every := 0
	if c.opts.continuousConfigured() {
		every = replayDrainEvery
	}
	pushed := 0
	for {
		pick := -1
		var best time.Duration
		for i, src := range sources {
			a := src.Peek()
			if a == nil {
				continue
			}
			if pick < 0 || a.Timestamp < best {
				pick, best = i, a.Timestamp
			}
		}
		if pick < 0 {
			break
		}
		// Sources hand over ownership (the historical pass fed them to the
		// ranker directly), and their records are pre-classified — no copy.
		s.replayPush(sources[pick].Pop())
		pushed++
		if every > 0 && pushed%every == 0 {
			s.Drain()
		}
	}
	if totalHint == 0 {
		totalHint = pushed
	}
	return c.finishReplay(s, totalHint, start), nil
}

// finishReplay ends every stream (Close seals and drains the remainder)
// and normalises the Result's replay-wide accounting (the engine's own
// CorrelationTime only covers time blocked on shard work; a batch caller
// cares about the whole pass, partition included — the quantity
// Fig. 9/10/14 plot).
func (c *Correlator) finishReplay(s *streamSession, total int, start time.Time) *Result {
	res := s.Close()
	res.Activities = total
	res.CorrelationTime = time.Since(start)
	return res
}

package core

import (
	"fmt"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
	"repro/internal/engine"
	"repro/internal/ranker"
)

// Session is the online (push-mode) correlator: activities are pushed as
// the collection agents deliver them, CAGs come out while the service is
// still running. The offline CorrelateTrace is literally a Session fed
// all at once (see replay.go).
//
//	s, _ := core.NewSession(opts, []string{"web1", "app1", "db1"})
//	s.Push(a)        // repeatedly, per arriving record
//	s.Drain()        // emit every CAG currently decidable
//	s.Close()        // end of streams; flush the remainder
//
// Safety: the session never *guesses* — a flow component is only
// correlated once no open stream could still extend it: every host owning
// one of its channel endpoints has closed (CloseHost), or — with a seal
// horizon configured — has advanced its stream past the component's
// horizon. That is the same no-false-positives guarantee as offline mode;
// the cost is that CAG emission lags input by the slower of host closure
// and the configured horizons. Always-on deployments therefore configure
// Options.SealAfter (plus per-host overrides in Options.SealAfterByHost
// for chronically lagging agents) and feed Heartbeat so idle hosts do not
// stall the ordered output.
//
// Every worker count runs the same streaming engine (stream.go);
// Options.Workers only sizes its correlation pool. The one exception is
// PaperExactNoise, whose Fig. 5 predicate needs one undivided window
// buffer: those sessions buffer per host and run the single global pass
// at Close (a Workers > 1 request is surfaced in
// Result.SequentialFallback).
//
// Sessions are not safe for concurrent use: Push/Drain/CloseHost/
// Heartbeat/Close must be called from one goroutine (the engine
// parallelises internally).
type Session struct {
	impl sessionImpl
}

// sessionImpl is the contract both execution modes satisfy; Session is a
// thin façade so NewSession can pick the mode from Options.
type sessionImpl interface {
	Push(a *activity.Activity) error
	PushBatch(batch []*activity.Activity) error
	Drain() int
	CloseHost(host string) error
	Heartbeat(host string, ts time.Duration) error
	Close() *Result
	Graphs() []*cag.Graph
	Pending() int
	AddSink(sink GraphSink)
}

// NewSession opens an online session for the given traced hosts. Every
// host that will produce activities must be declared up front (the
// completion watermarks track per-host progress, and the safety logic
// needs to know which streams exist).
func NewSession(opts Options, hosts []string) (*Session, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(opts.EntryPorts) == 0 {
		return nil, ErrNoEntryPorts
	}
	if opts.Window <= 0 {
		opts.Window = 10 * time.Millisecond
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("core: session needs at least one host")
	}
	if opts.PaperExactNoise {
		if opts.continuousConfigured() {
			// Silently dropping the horizons would be the worst failure
			// mode: a forever-open deployment would never emit and never
			// learn why (the fallback reason only surfaces in Close's
			// Result).
			return nil, fmt.Errorf("core: SealAfter horizons need the streaming engine, but %s", FallbackPaperExactNoise)
		}
		g := newGlobalSession(opts, hosts)
		if opts.Workers > 1 {
			g.fallback = FallbackPaperExactNoise
		}
		return &Session{impl: g}, nil
	}
	return &Session{impl: newStreamSession(opts, hosts)}, nil
}

// Push feeds one raw TCP_TRACE record (classification happens inside).
// Records of one host must arrive in that host's local-clock order; hosts
// interleave arbitrarily.
func (s *Session) Push(a *activity.Activity) error { return s.impl.Push(a) }

// PushBatch feeds a run of raw records in order, as one call — the shape
// a decoded transport frame arrives in. It is equivalent to calling Push
// per record: application stops at the first error, which is returned,
// and the records before it stay applied. The session copies what it
// keeps, so the caller may recycle the batch's records afterwards
// (activity.ReleaseRecord for pooled decode-side records).
func (s *Session) PushBatch(batch []*activity.Activity) error { return s.impl.PushBatch(batch) }

// Drain runs the correlator until no further candidate is safely
// decidable, returning the number of activities processed this call: it
// force-seals components idle past their horizon (continuous mode), waits
// for every dispatched component to finish correlating, and releases the
// graphs the watermark permits.
func (s *Session) Drain() int { return s.impl.Drain() }

// CloseHost marks one host's stream complete (its agent shut down). This
// is what seals components absent a horizon: a flow component whose every
// contributing host has closed can no longer grow and is handed to the
// worker pool.
func (s *Session) CloseHost(host string) error { return s.impl.CloseHost(host) }

// Heartbeat records a liveness assertion from one host's agent: the host
// is alive and will never deliver an activity with a timestamp older
// than ts. It advances the watermark past quiet-but-healthy streams —
// without it, an idle host with no horizon holds back every emission,
// and an idle host with a long horizon delays them by that horizon. A
// heartbeat also advances the activity clock that seal horizons measure
// against, so correlation keeps flowing through traffic lulls. Stale
// assertions (ts older than the host's newest record) are ignored.
//
// Like pushed timestamps, heartbeats are activity-time, never wall
// clock: replaying the same push/heartbeat/drain sequence reproduces the
// same output. PaperExactNoise sessions accept and ignore heartbeats
// (the global pass has no watermark).
func (s *Session) Heartbeat(host string, ts time.Duration) error { return s.impl.Heartbeat(host, ts) }

// Close marks every stream complete, drains the remainder and returns the
// final result. Closing twice returns the same result.
func (s *Session) Close() *Result { return s.impl.Close() }

// AddSink appends one sink to the session's emission chain (see
// Options.Sinks). It must be called before the first Push: the chain is
// rebuilt in place and is not synchronized against in-flight emission.
// Registering any sink switches the session to streaming —
// Result.Graphs stays empty.
func (s *Session) AddSink(sink GraphSink) { s.impl.AddSink(sink) }

// Graphs returns the CAGs completed so far (when not streaming via
// OnGraph or Sinks).
func (s *Session) Graphs() []*cag.Graph { return s.impl.Graphs() }

// Pending returns the number of activities buffered but not yet
// correlated by a finished shard.
func (s *Session) Pending() int { return s.impl.Pending() }

// globalSession is the PaperExactNoise session: the Fig. 5 is_noise
// predicate reads the global window buffer, so the stream cannot be
// sharded into components. Records buffer per host and the single global
// ranker+engine pass (Correlator.drive — the same primitive every sealed
// component runs) correlates everything at Close. Mid-stream Drain is a
// no-op: with one undivided buffer nothing is decidable until every
// stream has ended. Ablation-only; production sessions use the streaming
// engine.
type globalSession struct {
	opts     Options
	drv      *Correlator
	cls      *activity.Classifier
	order    []string // declared host order: the ranker's tie-break order
	open     map[string]bool
	last     map[string]time.Duration
	perHost  map[string][]*activity.Activity
	pushed   int
	fallback string
	closed   bool
	final    *Result
}

func newGlobalSession(opts Options, hosts []string) *globalSession {
	drvOpts := opts
	drvOpts.OnGraph = nil
	drvOpts.Sinks = nil
	g := &globalSession{
		opts:    opts,
		drv:     New(drvOpts),
		cls:     activity.NewClassifier(opts.EntryPorts...),
		open:    make(map[string]bool, len(hosts)),
		last:    make(map[string]time.Duration, len(hosts)),
		perHost: make(map[string][]*activity.Activity, len(hosts)),
	}
	for _, h := range hosts {
		if !g.open[h] {
			g.order = append(g.order, h)
			g.open[h] = true
		}
	}
	return g
}

// Push implements sessionImpl.
func (g *globalSession) Push(a *activity.Activity) error {
	if g.closed {
		return fmt.Errorf("core: push on closed session")
	}
	open, ok := g.open[a.Ctx.Host]
	if !ok {
		return fmt.Errorf("core: unknown host %q (declare it in NewSession)", a.Ctx.Host)
	}
	if !open {
		return fmt.Errorf("core: push on closed source %s", a.Ctx.Host)
	}
	if prev, any := g.last[a.Ctx.Host]; any && a.Timestamp < prev {
		return fmt.Errorf("core: %s timestamp regressed (%v after %v)", a.Ctx.Host, a.Timestamp, prev)
	}
	cp := *a
	cp.Type = g.cls.Classify(a)
	g.perHost[cp.Ctx.Host] = append(g.perHost[cp.Ctx.Host], &cp)
	g.last[cp.Ctx.Host] = cp.Timestamp
	g.pushed++
	return nil
}

// PushBatch implements sessionImpl.
func (g *globalSession) PushBatch(batch []*activity.Activity) error {
	for _, a := range batch {
		if err := g.Push(a); err != nil {
			return err
		}
	}
	return nil
}

// Drain implements sessionImpl: nothing is decidable before Close.
func (g *globalSession) Drain() int { return 0 }

// CloseHost implements sessionImpl.
func (g *globalSession) CloseHost(host string) error {
	if _, ok := g.open[host]; !ok {
		return fmt.Errorf("core: unknown host %q", host)
	}
	g.open[host] = false
	return nil
}

// Heartbeat implements sessionImpl: accepted for interface symmetry,
// ignored (the global pass has no watermark to advance).
func (g *globalSession) Heartbeat(host string, ts time.Duration) error {
	if g.closed {
		return fmt.Errorf("core: heartbeat on closed session")
	}
	if _, ok := g.open[host]; !ok {
		return fmt.Errorf("core: unknown host %q (declare it in NewSession)", host)
	}
	return nil
}

// Close implements sessionImpl: run the global pass over everything.
func (g *globalSession) Close() *Result {
	if g.closed {
		return g.final
	}
	g.closed = true
	sources := make([]ranker.Source, 0, len(g.order))
	for _, h := range g.order {
		sources = append(sources, ranker.NewSliceSource(h, g.perHost[h]))
	}
	var engOpts []engine.Option
	if deliver := g.opts.emitter(); deliver != nil {
		engOpts = append(engOpts, engine.WithOutputFunc(deliver))
	}
	start := time.Now()
	rk, eng := g.drv.drive(sources, engOpts...)
	g.final = &Result{
		Graphs:                 eng.Outputs(),
		CorrelationTime:        time.Since(start),
		Activities:             g.pushed,
		Ranker:                 rk.Stats(),
		Engine:                 eng.Stats(),
		PeakBufferedActivities: rk.Stats().PeakBuffered,
		PeakResidentVertices:   eng.PeakResidentVertices(),
		SequentialFallback:     g.fallback,
	}
	return g.final
}

// AddSink implements sessionImpl: the global pass delivers through the
// same fused chain at Close.
func (g *globalSession) AddSink(sink GraphSink) {
	g.opts.Sinks = append(g.opts.Sinks, sink)
}

// Graphs implements sessionImpl.
func (g *globalSession) Graphs() []*cag.Graph {
	if g.final == nil {
		return nil
	}
	return g.final.Graphs
}

// Pending implements sessionImpl: everything buffered is pending until
// Close decides it.
func (g *globalSession) Pending() int {
	if g.closed {
		return 0
	}
	return g.pushed
}

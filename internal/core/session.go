package core

import (
	"fmt"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
	"repro/internal/engine"
	"repro/internal/ranker"
)

// Session is the online (push-mode) correlator: activities are pushed as
// the collection agents deliver them, CAGs come out while the service is
// still running. The offline CorrelateTrace is a Session fed all at once.
//
//	s, _ := core.NewSession(opts, []string{"web1", "app1", "db1"})
//	s.Push(a)        // repeatedly, per arriving record
//	s.Drain()        // emit every CAG currently decidable
//	s.Close()        // end of streams; flush the remainder
//
// Safety: the session never *guesses* — a candidate is only chosen when no
// open stream could still deliver an activity that changes the decision.
// That is the same no-false-positives guarantee as offline mode; the cost
// is that CAG emission lags input by up to the in-flight depth of the
// slowest node's stream.
type Session struct {
	opts    Options
	cls     *activity.Classifier
	eng     *engine.Engine
	rk      *ranker.Ranker
	sources map[string]*ranker.PushSource
	closed  bool

	graphs   []*cag.Graph
	rankTime time.Duration
	pushed   int
}

// NewSession opens an online session for the given traced hosts. Every
// host that will produce activities must be declared up front (the
// ranker's safety logic needs to know which streams exist).
func NewSession(opts Options, hosts []string) (*Session, error) {
	if len(opts.EntryPorts) == 0 {
		return nil, ErrNoEntryPorts
	}
	if opts.Window <= 0 {
		opts.Window = 10 * time.Millisecond
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("core: session needs at least one host")
	}
	s := &Session{
		opts:    opts,
		cls:     activity.NewClassifier(opts.EntryPorts...),
		sources: make(map[string]*ranker.PushSource, len(hosts)),
	}
	var engOpts []engine.Option
	if opts.OnGraph != nil {
		engOpts = append(engOpts, engine.WithOutputFunc(opts.OnGraph))
	}
	s.eng = engine.New(engOpts...)
	srcs := make([]ranker.Source, 0, len(hosts))
	for _, h := range hosts {
		ps := ranker.NewPushSource(h)
		s.sources[h] = ps
		srcs = append(srcs, ps)
	}
	s.rk = ranker.New(ranker.Config{
		Window:          s.opts.Window,
		IPToHost:        s.opts.IPToHost,
		Filter:          s.opts.Filter,
		PaperExactNoise: s.opts.PaperExactNoise,
	}, s.eng, srcs)
	return s, nil
}

// Push feeds one raw TCP_TRACE record (classification happens inside).
// Records of one host must arrive in that host's local-clock order; hosts
// interleave arbitrarily.
func (s *Session) Push(a *activity.Activity) error {
	if s.closed {
		return fmt.Errorf("core: push on closed session")
	}
	src, ok := s.sources[a.Ctx.Host]
	if !ok {
		return fmt.Errorf("core: unknown host %q (declare it in NewSession)", a.Ctx.Host)
	}
	cp := *a
	cp.Type = s.cls.Classify(a)
	if err := src.Push(&cp); err != nil {
		return err
	}
	s.pushed++
	return nil
}

// Drain runs the correlator until no further candidate is safely
// decidable, returning the number of activities processed this call.
func (s *Session) Drain() int {
	start := time.Now()
	n := 0
	for {
		a, done := s.rk.TryRank()
		if a == nil {
			_ = done
			break
		}
		if g := s.eng.Handle(a); g != nil && s.opts.OnGraph == nil {
			s.graphs = append(s.graphs, g)
		}
		n++
	}
	s.rankTime += time.Since(start)
	return n
}

// CloseHost marks one host's stream complete (its agent shut down).
func (s *Session) CloseHost(host string) error {
	src, ok := s.sources[host]
	if !ok {
		return fmt.Errorf("core: unknown host %q", host)
	}
	src.Close()
	return nil
}

// Close marks every stream complete, drains the remainder and returns the
// final result.
func (s *Session) Close() *Result {
	for _, src := range s.sources {
		src.Close()
	}
	s.Drain()
	s.closed = true
	return &Result{
		Graphs:                 s.graphs,
		CorrelationTime:        s.rankTime,
		Activities:             s.pushed,
		Ranker:                 s.rk.Stats(),
		Engine:                 s.eng.Stats(),
		PeakBufferedActivities: s.rk.Stats().PeakBuffered,
		PeakResidentVertices:   s.eng.PeakResidentVertices(),
	}
}

// Graphs returns the CAGs completed so far (when not streaming via
// OnGraph).
func (s *Session) Graphs() []*cag.Graph { return s.graphs }

// Pending returns the number of activities buffered but not yet decidable.
func (s *Session) Pending() int { return s.rk.Buffered() }

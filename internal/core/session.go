package core

import (
	"fmt"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
)

// Session is the online (push-mode) correlator: activities are pushed as
// the collection agents deliver them, CAGs come out while the service is
// still running. The offline CorrelateTrace is literally a Session fed
// all at once (see replay.go).
//
//	s, _ := core.NewSession(opts, []string{"web1", "app1", "db1"})
//	s.Push(a)        // repeatedly, per arriving record
//	s.Drain()        // emit every CAG currently decidable
//	s.Close()        // end of streams; flush the remainder
//
// Safety: the session never *guesses* — a flow component is only
// correlated once no open stream could still extend it: every host owning
// one of its channel endpoints has closed (CloseHost), or — with a seal
// horizon configured — has advanced its stream past the component's
// horizon. That is the same no-false-positives guarantee as offline mode;
// the cost is that CAG emission lags input by the slower of host closure
// and the configured horizons. Always-on deployments therefore configure
// Options.SealAfter (plus per-host overrides in Options.SealAfterByHost
// for chronically lagging agents) and feed Heartbeat so idle hosts do not
// stall the ordered output.
//
// Every mode runs the same streaming engine (stream.go); Options.Workers
// only sizes its correlation pool. That includes PaperExactNoise: the
// Fig. 5 predicate's pending-SEND question is answered per shard, which
// channel-closure sharding makes equal to the global answer (see
// ranker.matchingSendVisible for the invariant), so exact-mode sessions
// get horizons, heartbeats, forced seals and PushBatch like any other.
//
// Sessions are not safe for concurrent use: Push/Drain/CloseHost/
// Heartbeat/Close must be called from one goroutine (the engine
// parallelises internally).
type Session struct {
	impl sessionImpl
}

// sessionImpl is the contract both execution modes satisfy; Session is a
// thin façade so NewSession can pick the mode from Options.
type sessionImpl interface {
	Push(a *activity.Activity) error
	PushBatch(batch []*activity.Activity) error
	Drain() int
	Tick() int
	CloseHost(host string) error
	Heartbeat(host string, ts time.Duration) error
	Close() *Result
	Graphs() []*cag.Graph
	Pending() int
	AddSink(sink GraphSink)
}

// NewSession opens an online session for the given traced hosts. Every
// host that will produce activities must be declared up front (the
// completion watermarks track per-host progress, and the safety logic
// needs to know which streams exist).
func NewSession(opts Options, hosts []string) (*Session, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(opts.EntryPorts) == 0 {
		return nil, ErrNoEntryPorts
	}
	if opts.Window <= 0 {
		opts.Window = 10 * time.Millisecond
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("core: session needs at least one host")
	}
	return &Session{impl: newStreamSession(opts, hosts)}, nil
}

// Push feeds one raw TCP_TRACE record (classification happens inside).
// Records of one host must arrive in that host's local-clock order; hosts
// interleave arbitrarily.
func (s *Session) Push(a *activity.Activity) error { return s.impl.Push(a) }

// PushBatch feeds a run of raw records in order, as one call — the shape
// a decoded transport frame arrives in. It is equivalent to calling Push
// per record: application stops at the first error, which is returned,
// and the records before it stay applied. The session copies what it
// keeps, so the caller may recycle the batch's records afterwards
// (activity.ReleaseRecord for pooled decode-side records).
func (s *Session) PushBatch(batch []*activity.Activity) error { return s.impl.PushBatch(batch) }

// Drain runs the correlator until no further candidate is safely
// decidable, returning the number of activities processed this call: it
// force-seals components idle past their horizon (continuous mode), waits
// for every dispatched component to finish correlating, and releases the
// graphs the watermark permits.
func (s *Session) Drain() int { return s.impl.Drain() }

// Tick is the non-blocking Drain: it makes the same deterministic seal
// decisions at the same point in the event stream, but releases only the
// graphs whose components the worker pool has already finished, instead
// of waiting for the in-flight ones — the pipelined cadence a live
// ingest front uses so pushing and correlating overlap. Graphs emerge in
// the same deterministic order as under Drain (sealed-but-in-flight
// components still bound the watermark); a Tick cadence only shifts
// *when* each graph is released, never what it contains or its order. A
// final Drain or Close delivers whatever Tick left in flight.
func (s *Session) Tick() int { return s.impl.Tick() }

// CloseHost marks one host's stream complete (its agent shut down). This
// is what seals components absent a horizon: a flow component whose every
// contributing host has closed can no longer grow and is handed to the
// worker pool.
func (s *Session) CloseHost(host string) error { return s.impl.CloseHost(host) }

// Heartbeat records a liveness assertion from one host's agent: the host
// is alive and will never deliver an activity with a timestamp older
// than ts. It advances the watermark past quiet-but-healthy streams —
// without it, an idle host with no horizon holds back every emission,
// and an idle host with a long horizon delays them by that horizon. A
// heartbeat also advances the activity clock that seal horizons measure
// against, so correlation keeps flowing through traffic lulls. Stale
// assertions (ts older than the host's newest record) are ignored.
//
// Like pushed timestamps, heartbeats are activity-time, never wall
// clock: replaying the same push/heartbeat/drain sequence reproduces the
// same output.
func (s *Session) Heartbeat(host string, ts time.Duration) error { return s.impl.Heartbeat(host, ts) }

// Close marks every stream complete, drains the remainder and returns the
// final result. Closing twice returns the same result.
func (s *Session) Close() *Result { return s.impl.Close() }

// AddSink appends one sink to the session's emission chain (see
// Options.Sinks). It must be called before the first Push: the chain is
// rebuilt in place and is not synchronized against in-flight emission.
// Registering any sink switches the session to streaming —
// Result.Graphs stays empty.
func (s *Session) AddSink(sink GraphSink) { s.impl.AddSink(sink) }

// Graphs returns the CAGs completed so far (when not streaming via
// OnGraph or Sinks).
func (s *Session) Graphs() []*cag.Graph { return s.impl.Graphs() }

// Pending returns the number of activities buffered but not yet
// correlated by a finished shard.
func (s *Session) Pending() int { return s.impl.Pending() }

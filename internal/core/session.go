package core

import (
	"fmt"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
	"repro/internal/engine"
	"repro/internal/ranker"
)

// Session is the online (push-mode) correlator: activities are pushed as
// the collection agents deliver them, CAGs come out while the service is
// still running. The offline CorrelateTrace is a Session fed all at once.
//
//	s, _ := core.NewSession(opts, []string{"web1", "app1", "db1"})
//	s.Push(a)        // repeatedly, per arriving record
//	s.Drain()        // emit every CAG currently decidable
//	s.Close()        // end of streams; flush the remainder
//
// Safety: the session never *guesses* — a candidate is only chosen when no
// open stream could still deliver an activity that changes the decision.
// That is the same no-false-positives guarantee as offline mode; the cost
// is that CAG emission lags input by up to the in-flight depth of the
// slowest node's stream.
//
// With Options.Workers > 1 the session runs the sharded push-mode
// pipeline (see session_parallel.go): activities are assigned to flow
// components as they arrive, sealed components are correlated by a worker
// pool running the unmodified ranker+engine, and a watermark-based
// emitter releases finished CAGs in deterministic END-timestamp order —
// byte-identical to this sequential session's output for the same push
// order. Workers <= 1 (or PaperExactNoise, which needs the global window
// buffer) keeps the original single-threaded path; a forced fallback is
// surfaced in Result.SequentialFallback.
//
// Sessions are not safe for concurrent use: Push/Drain/CloseHost/Close
// must be called from one goroutine (the sharded mode parallelises
// internally).
type Session struct {
	impl sessionImpl
}

// sessionImpl is the contract both execution modes satisfy; Session is a
// thin façade so NewSession can pick the mode from Options.Workers.
type sessionImpl interface {
	Push(a *activity.Activity) error
	Drain() int
	CloseHost(host string) error
	Close() *Result
	Graphs() []*cag.Graph
	Pending() int
}

// NewSession opens an online session for the given traced hosts. Every
// host that will produce activities must be declared up front (the
// ranker's safety logic needs to know which streams exist, and the
// sharded mode's completion watermarks track per-host progress).
func NewSession(opts Options, hosts []string) (*Session, error) {
	if len(opts.EntryPorts) == 0 {
		return nil, ErrNoEntryPorts
	}
	if opts.Window <= 0 {
		opts.Window = 10 * time.Millisecond
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("core: session needs at least one host")
	}
	if opts.Workers > 1 && !opts.PaperExactNoise {
		return &Session{impl: newParSession(opts, hosts)}, nil
	}
	if opts.SealAfter > 0 {
		// Continuous mode only exists in the sharded session. Silently
		// dropping it would be the worst failure mode: a forever-open
		// deployment would never emit and never learn why (the fallback
		// reason only surfaces in Close's Result).
		if opts.PaperExactNoise {
			return nil, fmt.Errorf("core: SealAfter needs the sharded session, but %s", FallbackPaperExactNoise)
		}
		return nil, fmt.Errorf("core: SealAfter needs Workers > 1 (the sequential session seals on CloseHost only)")
	}
	seq := newSeqSession(opts, hosts)
	if opts.Workers > 1 {
		seq.fallback = FallbackPaperExactNoise
	}
	return &Session{impl: seq}, nil
}

// Push feeds one raw TCP_TRACE record (classification happens inside).
// Records of one host must arrive in that host's local-clock order; hosts
// interleave arbitrarily.
func (s *Session) Push(a *activity.Activity) error { return s.impl.Push(a) }

// Drain runs the correlator until no further candidate is safely
// decidable, returning the number of activities processed this call. In
// sharded mode it additionally waits for every dispatched component to
// finish correlating and releases the graphs the watermark permits.
func (s *Session) Drain() int { return s.impl.Drain() }

// CloseHost marks one host's stream complete (its agent shut down). In
// sharded mode this is what seals components: a flow component whose
// every contributing host has closed can no longer grow and is handed to
// the worker pool.
func (s *Session) CloseHost(host string) error { return s.impl.CloseHost(host) }

// Close marks every stream complete, drains the remainder and returns the
// final result. Closing twice returns the same result.
func (s *Session) Close() *Result { return s.impl.Close() }

// Graphs returns the CAGs completed so far (when not streaming via
// OnGraph).
func (s *Session) Graphs() []*cag.Graph { return s.impl.Graphs() }

// Pending returns the number of activities buffered but not yet decidable
// (in sharded mode: pushed but not yet correlated by a finished shard).
func (s *Session) Pending() int { return s.impl.Pending() }

// seqSession is the original single-threaded push-mode correlator.
type seqSession struct {
	opts     Options
	cls      *activity.Classifier
	eng      *engine.Engine
	rk       *ranker.Ranker
	sources  map[string]*ranker.PushSource
	closed   bool
	fallback string
	final    *Result

	graphs   []*cag.Graph
	rankTime time.Duration
	pushed   int
}

func newSeqSession(opts Options, hosts []string) *seqSession {
	s := &seqSession{
		opts:    opts,
		cls:     activity.NewClassifier(opts.EntryPorts...),
		sources: make(map[string]*ranker.PushSource, len(hosts)),
	}
	var engOpts []engine.Option
	if opts.OnGraph != nil {
		engOpts = append(engOpts, engine.WithOutputFunc(opts.OnGraph))
	}
	s.eng = engine.New(engOpts...)
	srcs := make([]ranker.Source, 0, len(hosts))
	for _, h := range hosts {
		ps := ranker.NewPushSource(h)
		s.sources[h] = ps
		srcs = append(srcs, ps)
	}
	s.rk = ranker.New(ranker.Config{
		Window:          s.opts.Window,
		IPToHost:        s.opts.IPToHost,
		Filter:          s.opts.Filter,
		PaperExactNoise: s.opts.PaperExactNoise,
	}, s.eng, srcs)
	return s
}

// Push implements sessionImpl.
func (s *seqSession) Push(a *activity.Activity) error {
	if s.closed {
		return fmt.Errorf("core: push on closed session")
	}
	src, ok := s.sources[a.Ctx.Host]
	if !ok {
		return fmt.Errorf("core: unknown host %q (declare it in NewSession)", a.Ctx.Host)
	}
	cp := *a
	cp.Type = s.cls.Classify(a)
	if err := src.Push(&cp); err != nil {
		return err
	}
	s.pushed++
	return nil
}

// Drain implements sessionImpl.
func (s *seqSession) Drain() int {
	start := time.Now()
	n := 0
	for {
		// TryRank's done flag distinguishes "all sources drained" (nil,
		// true) from "blocked until an open stream delivers more" (nil,
		// false). Drain stops on a nil candidate either way: nil is a
		// fixed point — repeated TryRank calls cannot make progress until
		// Push or CloseHost changes the input state, and both happen
		// outside Drain. Callers that need the distinction (wait for more
		// input vs. finished) read it from Pending() and their own stream
		// accounting, so the flag is deliberately dropped here.
		a, _ := s.rk.TryRank()
		if a == nil {
			break
		}
		if g := s.eng.Handle(a); g != nil && s.opts.OnGraph == nil {
			s.graphs = append(s.graphs, g)
		}
		n++
	}
	s.rankTime += time.Since(start)
	return n
}

// CloseHost implements sessionImpl.
func (s *seqSession) CloseHost(host string) error {
	src, ok := s.sources[host]
	if !ok {
		return fmt.Errorf("core: unknown host %q", host)
	}
	src.Close()
	return nil
}

// Close implements sessionImpl.
func (s *seqSession) Close() *Result {
	if s.closed {
		return s.final
	}
	for _, src := range s.sources {
		src.Close()
	}
	s.Drain()
	s.closed = true
	s.final = &Result{
		Graphs:                 s.graphs,
		CorrelationTime:        s.rankTime,
		Activities:             s.pushed,
		Ranker:                 s.rk.Stats(),
		Engine:                 s.eng.Stats(),
		PeakBufferedActivities: s.rk.Stats().PeakBuffered,
		PeakResidentVertices:   s.eng.PeakResidentVertices(),
		SequentialFallback:     s.fallback,
	}
	return s.final
}

// Graphs implements sessionImpl.
func (s *seqSession) Graphs() []*cag.Graph { return s.graphs }

// Pending implements sessionImpl.
func (s *seqSession) Pending() int { return s.rk.Buffered() }

package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
)

// perHostOpts is the lagging-agent fixture: web1 is the front tier on a
// short default horizon, db1 the chronically lagging backend.
func perHostOpts(dbHorizon time.Duration) Options {
	opts := Options{
		Window:     time.Millisecond,
		EntryPorts: []int{80},
		IPToHost:   map[string]string{"10.0.0.1": "web1", "10.0.0.2": "db1"},
		Workers:    2,
		SealAfter:  30 * time.Millisecond,
	}
	if dbHorizon > 0 {
		opts.SealAfterByHost = map[string]time.Duration{"db1": dbHorizon}
	}
	return opts
}

// pushLaggingScenario drives the per-host-horizon scenario: one cross-host
// request whose db1 leg goes quiet for ~128ms of activity time (the
// lagging agent), while web1 keeps serving quick single-host requests that
// advance the activity clock well past the 30ms default horizon. It
// returns the session after the quiet stretch, before db1 catches up;
// finish() delivers db1's late-but-honest records and completes the
// request.
func pushLaggingScenario(t *testing.T, sess *Session) (finish func()) {
	t.Helper()
	push := func(a *activity.Activity) {
		t.Helper()
		if err := sess.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	// The cross-host request: BEGIN on web1, SEND into db1 — then silence
	// from db1 while its agent lags behind.
	push(mkRaw(1, activity.Receive, 1*time.Millisecond, "web1", "httpd", 1, "10.9.9.9", "10.0.0.1", 40000, 80))
	push(mkRaw(2, activity.Send, 2*time.Millisecond, "web1", "httpd", 1, "10.0.0.1", "10.0.0.2", 50000, 3306))
	// web1 keeps serving: twelve quick requests advance the activity clock
	// to 121ms, 4x past the 30ms default horizon.
	for k := 1; k <= 12; k++ {
		base := time.Duration(k) * 10 * time.Millisecond
		id := int64(100 + 2*k)
		port := 41000 + k
		push(mkRaw(id, activity.Receive, base, "web1", "httpd", 2, "10.9.9.9", "10.0.0.1", port, 80))
		push(mkRaw(id+1, activity.Send, base+time.Millisecond, "web1", "httpd", 2, "10.0.0.1", "10.9.9.9", 80, port))
		sess.Drain()
	}
	return func() {
		// db1 catches up: its records are old (3ms) but honest — the agent
		// lagged, the host never violated its own 300ms bound.
		push(mkRaw(3, activity.Receive, 3*time.Millisecond, "db1", "mysqld", 9, "10.0.0.1", "10.0.0.2", 50000, 3306))
		push(mkRaw(4, activity.Send, 130*time.Millisecond, "db1", "mysqld", 9, "10.0.0.2", "10.0.0.1", 3306, 50000))
		push(mkRaw(5, activity.Receive, 131*time.Millisecond, "web1", "httpd", 1, "10.0.0.2", "10.0.0.1", 3306, 50000))
		push(mkRaw(6, activity.Send, 132*time.Millisecond, "web1", "httpd", 1, "10.0.0.1", "10.9.9.9", 80, 40000))
		sess.Drain()
	}
}

// spansBothHosts reports whether a CAG contains records from both web1
// and db1 — the intact cross-host request.
// contribHas reports whether host is a tracked contributor of the
// component (the contrib list is Sym-keyed).
func contribHas(c *sessComponent, host string) bool {
	sym := activity.Syms.Intern(host)
	for _, h := range c.contrib {
		if h == sym {
			return true
		}
	}
	return false
}

func spansBothHosts(g *cag.Graph) bool {
	hosts := make(map[string]bool)
	for _, v := range g.Vertices() {
		hosts[v.Ctx.Host] = true
	}
	return hosts["web1"] && hosts["db1"]
}

// TestSessionPerHostHorizonNoSplit is the per-host-horizon acceptance
// test: giving the lagging db1 a 300ms horizon keeps its in-flight
// request's component alive (the CAG is NOT split) while web1's quick
// components still force-seal on the 30ms default — the global-horizon
// run on the identical input splits the request instead
// (TestSessionGlobalHorizonSplits).
func TestSessionPerHostHorizonNoSplit(t *testing.T) {
	sess, err := NewSession(perHostOpts(300*time.Millisecond), []string{"web1", "db1"})
	if err != nil {
		t.Fatal(err)
	}
	finish := pushLaggingScenario(t, sess)

	// Mid-stream, before db1 catches up: the quick components have sealed
	// on the short default horizon, the cross-host component has not —
	// db1's longer horizon extends only its own components' deadlines.
	ps := sess.impl.(*streamSession)
	if ps.forcedSeals == 0 {
		t.Fatal("no quick component force-sealed on the 30ms default horizon")
	}
	crossAlive := false
	for _, c := range ps.comps {
		if !c.sealed && contribHas(c, "db1") {
			crossAlive = true
		}
	}
	if !crossAlive {
		t.Fatal("the lagging host's in-flight component was sealed despite its 300ms horizon")
	}

	finish()
	out := sess.Close()
	if out.LateLinks != 0 {
		t.Fatalf("late links = %d, want 0 (db1 stayed within its own horizon)", out.LateLinks)
	}
	if len(out.Graphs) != 13 {
		t.Fatalf("graphs = %d, want 13 (12 quick + 1 cross-host)", len(out.Graphs))
	}
	if out.Unfinished() != 0 {
		t.Fatalf("unfinished = %d, want 0", out.Unfinished())
	}
	intact := 0
	for _, g := range out.Graphs {
		if spansBothHosts(g) {
			intact++
			if n := len(g.Vertices()); n != 6 {
				t.Fatalf("cross-host CAG has %d vertices, want 6 (split?)", n)
			}
		}
	}
	if intact != 1 {
		t.Fatalf("found %d intact cross-host CAGs, want 1", intact)
	}
	if out.ForcedSeals == 0 {
		t.Fatal("quick components never force-sealed on the default horizon")
	}
}

// TestSessionGlobalHorizonSplits is the contrast run: the identical input
// under the global 30ms horizon alone force-seals the cross-host
// component mid-request, destroying the request's CAG — its BEGIN is
// correlated without its END and stays unfinished. (db1's records arrive
// past the one-horizon tombstone window here, so they start a fresh
// component without being counted; TestSessionForcedSealLateLink covers
// the counted-late-link window.)
func TestSessionGlobalHorizonSplits(t *testing.T) {
	sess, err := NewSession(perHostOpts(0), []string{"web1", "db1"})
	if err != nil {
		t.Fatal(err)
	}
	finish := pushLaggingScenario(t, sess)
	ps := sess.impl.(*streamSession)
	for _, c := range ps.comps {
		if contribHas(c, "db1") && !c.sealed {
			t.Fatal("global horizon left the lagging request's component alive")
		}
	}
	finish()
	out := sess.Close()
	if out.Unfinished() == 0 {
		t.Fatal("global horizon left no unfinished CAG — the split never happened")
	}
	if len(out.Graphs) != 12 {
		t.Fatalf("graphs = %d, want 12 (the cross-host request's CAG destroyed)", len(out.Graphs))
	}
	for _, g := range out.Graphs {
		if spansBothHosts(g) {
			t.Fatal("cross-host CAG survived a mid-request forced seal")
		}
	}
}

// TestSessionHorizonIgnoresClosedHosts: a closed stream delivers
// nothing, so it must not pin its components' horizons open. A component
// spanning a horizon-less web1 and a 50ms-horizon db1 is unbounded only
// while web1 is OPEN; once web1 closes, db1's horizon governs and the
// component force-seals when stale — the regression here was treating
// closed web1's zero horizon as "unbounded" forever, permanently
// stalling emission.
func TestSessionHorizonIgnoresClosedHosts(t *testing.T) {
	opts := Options{
		Window:          time.Millisecond,
		EntryPorts:      []int{80},
		IPToHost:        map[string]string{"10.0.0.1": "web1", "10.0.0.2": "db1"},
		SealAfterByHost: map[string]time.Duration{"db1": 50 * time.Millisecond},
	}
	sess, err := NewSession(opts, []string{"web1", "db1"})
	if err != nil {
		t.Fatal(err)
	}
	push := func(a *activity.Activity) {
		t.Helper()
		if err := sess.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	// One complete cross-host request: its component touches both hosts.
	push(mkRaw(1, activity.Receive, 1*time.Millisecond, "web1", "httpd", 1, "10.9.9.9", "10.0.0.1", 40000, 80))
	push(mkRaw(2, activity.Send, 2*time.Millisecond, "web1", "httpd", 1, "10.0.0.1", "10.0.0.2", 50000, 3306))
	push(mkRaw(3, activity.Receive, 3*time.Millisecond, "db1", "mysqld", 9, "10.0.0.1", "10.0.0.2", 50000, 3306))
	push(mkRaw(4, activity.Send, 4*time.Millisecond, "db1", "mysqld", 9, "10.0.0.2", "10.0.0.1", 3306, 50000))
	push(mkRaw(5, activity.Receive, 5*time.Millisecond, "web1", "httpd", 1, "10.0.0.2", "10.0.0.1", 3306, 50000))
	push(mkRaw(6, activity.Send, 6*time.Millisecond, "web1", "httpd", 1, "10.0.0.1", "10.9.9.9", 80, 40000))
	if err := sess.CloseHost("web1"); err != nil {
		t.Fatal(err)
	}
	sess.Drain()
	if n := len(sess.Graphs()); n != 0 {
		t.Fatalf("emitted %d graphs before the component went stale", n)
	}
	// db1 stays open but quiet; its heartbeat advances the activity clock
	// past the component's 50ms horizon.
	if err := sess.Heartbeat("db1", 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sess.Drain()
	if n := len(sess.Graphs()); n != 1 {
		t.Fatalf("emitted %d graphs, want 1 — closed web1 pinned the horizon open", n)
	}
	out := sess.Close()
	if out.ForcedSeals != 1 {
		t.Fatalf("forced seals = %d, want 1", out.ForcedSeals)
	}
	if out.LateLinks != 0 {
		t.Fatalf("late links = %d, want 0", out.LateLinks)
	}
}

// TestSessionHeartbeatAdvancesWatermark: a declared-but-silent host with
// no horizon bounds nothing, so even sealed components' graphs are held
// back — until its agent heartbeats a liveness assertion.
func TestSessionHeartbeatAdvancesWatermark(t *testing.T) {
	opts := Options{
		Window:     time.Millisecond,
		EntryPorts: []int{80},
		IPToHost:   map[string]string{"10.0.0.1": "web1", "10.0.0.2": "db1"},
	}
	sess, err := NewSession(opts, []string{"web1", "db1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Push(mkRaw(1, activity.Receive, 1*time.Millisecond, "web1", "httpd", 1, "10.9.9.9", "10.0.0.1", 40000, 80)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Push(mkRaw(2, activity.Send, 2*time.Millisecond, "web1", "httpd", 1, "10.0.0.1", "10.9.9.9", 80, 40000)); err != nil {
		t.Fatal(err)
	}
	if err := sess.CloseHost("web1"); err != nil {
		t.Fatal(err)
	}
	sess.Drain()
	if n := len(sess.Graphs()); n != 0 {
		t.Fatalf("emitted %d graphs while the silent db1 stream bounded nothing", n)
	}
	if err := sess.Heartbeat("db1", 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sess.Drain()
	if n := len(sess.Graphs()); n != 1 {
		t.Fatalf("emitted %d graphs after db1's heartbeat, want 1", n)
	}
}

// TestSessionHeartbeatAdvancesActivityClock: with a seal horizon, a
// heartbeat alone (no traffic) must advance the activity clock enough to
// force-seal and release idle components — the traffic-lull case.
func TestSessionHeartbeatAdvancesActivityClock(t *testing.T) {
	sess, err := NewSession(foreverOpts(1, 30*time.Millisecond), []string{"web1", "web2"})
	if err != nil {
		t.Fatal(err)
	}
	pushRequest(t, sess, 0, time.Millisecond)
	sess.Drain()
	if n := len(sess.Graphs()); n != 0 {
		t.Fatalf("emitted %d graphs before the clock advanced", n)
	}
	if err := sess.Heartbeat("web2", 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := sess.Heartbeat("web1", 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sess.Drain()
	if n := len(sess.Graphs()); n != 1 {
		t.Fatalf("emitted %d graphs after heartbeats advanced the clock, want 1", n)
	}
	out := sess.Close()
	if out.ForcedSeals != 1 {
		t.Fatalf("forced seals = %d, want 1", out.ForcedSeals)
	}
}

// TestSessionHeartbeatErrors pins the heartbeat contract: unknown and
// closed streams are rejected, closed sessions are rejected, and a stale
// assertion is ignored rather than regressing the stream's bound.
func TestSessionHeartbeatErrors(t *testing.T) {
	res := fastRun(t, 10, nil)
	sess, err := NewSession(options(res), hostsOf(res))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Heartbeat("nosuch", time.Second); err == nil {
		t.Fatal("heartbeat for an undeclared host accepted")
	}
	if err := sess.CloseHost("db1"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Heartbeat("db1", time.Second); err == nil {
		t.Fatal("heartbeat on a closed stream accepted")
	}
	// A stale heartbeat must not lower the per-host monotonicity bound.
	var a *activity.Activity
	for _, rec := range res.Trace {
		if rec.Ctx.Host == "web1" {
			a = rec
			break
		}
	}
	if a == nil {
		t.Fatal("test setup: no web1 record")
	}
	if err := sess.Push(a); err != nil {
		t.Fatal(err)
	}
	if err := sess.Heartbeat("web1", a.Timestamp-time.Second); err != nil {
		t.Fatalf("stale heartbeat rejected: %v", err)
	}
	old := *a
	old.Timestamp = a.Timestamp - time.Millisecond
	if err := sess.Push(&old); err == nil {
		t.Fatal("stale heartbeat regressed the stream bound (old push accepted)")
	}
	sess.Close()
	if err := sess.Heartbeat("web1", time.Second); err == nil {
		t.Fatal("heartbeat on a closed session accepted")
	}

	// PaperExactNoise sessions run the same streaming engine, so
	// heartbeats work (and are validated) there too.
	opts := options(res)
	opts.PaperExactNoise = true
	g, err := NewSession(opts, hostsOf(res))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Heartbeat("web1", time.Second); err != nil {
		t.Fatalf("exact session rejected a heartbeat: %v", err)
	}
	if err := g.Heartbeat("nosuch", time.Second); err == nil {
		t.Fatal("exact session accepted a heartbeat for an undeclared host")
	}
}

// TestOptionsValidation: option values that would silently misbehave are
// rejected at construction — by NewSession directly, and by the Correlate
// methods for the chainable New.
func TestOptionsValidation(t *testing.T) {
	base := func() Options {
		return Options{Window: time.Millisecond, EntryPorts: []int{80}}
	}
	cases := []struct {
		name   string
		mutate func(*Options)
		frag   string
	}{
		{"negative workers", func(o *Options) { o.Workers = -1 }, "Workers"},
		{"negative batch", func(o *Options) { o.BatchSize = -2 }, "BatchSize"},
		{"negative sealafter", func(o *Options) { o.SealAfter = -time.Second }, "SealAfter"},
		{"zero per-host horizon", func(o *Options) {
			o.SealAfterByHost = map[string]time.Duration{"db1": 0}
		}, "SealAfterByHost"},
		{"negative per-host horizon", func(o *Options) {
			o.SealAfterByHost = map[string]time.Duration{"db1": -time.Millisecond}
		}, "SealAfterByHost"},
		{"empty per-host name", func(o *Options) {
			o.SealAfterByHost = map[string]time.Duration{"": time.Second}
		}, "host name"},
	}
	for _, tc := range cases {
		opts := base()
		tc.mutate(&opts)
		if _, err := NewSession(opts, []string{"web1"}); err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: NewSession error = %v, want mention of %q", tc.name, err, tc.frag)
		}
		if _, err := New(opts).CorrelateTrace(nil); err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: CorrelateTrace error = %v, want mention of %q", tc.name, err, tc.frag)
		}
		if _, err := New(opts).CorrelateSources(nil, 0); err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: CorrelateSources error = %v, want mention of %q", tc.name, err, tc.frag)
		}
	}
	// Per-host horizons alone (no global default) are a valid continuous
	// configuration.
	opts := base()
	opts.SealAfterByHost = map[string]time.Duration{"web1": time.Second}
	sess, err := NewSession(opts, []string{"web1"})
	if err != nil {
		t.Fatalf("per-host-only horizons rejected: %v", err)
	}
	if !sess.impl.(*streamSession).continuous {
		t.Fatal("per-host-only horizons did not enable continuous mode")
	}
	sess.Close()
}

// TestParseSealAfterSpec covers the CLI -sealafter grammar shared by both
// binaries.
func TestParseSealAfterSpec(t *testing.T) {
	ok := []struct {
		spec    string
		global  time.Duration
		perHost map[string]time.Duration
	}{
		{"", 0, nil},
		{"50ms", 50 * time.Millisecond, nil},
		{"0", 0, nil},
		{"db1=500ms", 0, map[string]time.Duration{"db1": 500 * time.Millisecond}},
		{"50ms,db1=500ms", 50 * time.Millisecond, map[string]time.Duration{"db1": 500 * time.Millisecond}},
		{" 50ms , db1 = 500ms , web1=1s ", 50 * time.Millisecond,
			map[string]time.Duration{"db1": 500 * time.Millisecond, "web1": time.Second}},
	}
	for _, tc := range ok {
		global, perHost, err := ParseSealAfterSpec(tc.spec)
		if err != nil {
			t.Errorf("%q: unexpected error %v", tc.spec, err)
			continue
		}
		if global != tc.global {
			t.Errorf("%q: global = %v, want %v", tc.spec, global, tc.global)
		}
		if len(perHost) != len(tc.perHost) {
			t.Errorf("%q: perHost = %v, want %v", tc.spec, perHost, tc.perHost)
			continue
		}
		for h, d := range tc.perHost {
			if perHost[h] != d {
				t.Errorf("%q: perHost[%s] = %v, want %v", tc.spec, h, perHost[h], d)
			}
		}
	}
	bad := []string{
		"abc", "db1=abc", "db1=0", "db1=-5ms", "-5ms", "=5ms",
		"50ms,60ms", "db1=5ms,db1=6ms",
	}
	for _, spec := range bad {
		if _, _, err := ParseSealAfterSpec(spec); err == nil {
			t.Errorf("%q: accepted, want error", spec)
		}
	}
}

// TestOfflineReplayCountersSurvive: the replay-based offline path must
// carry the continuous-mode counters into the Result — a recorded trace
// with a quiet gap reproduces the deployment's forced seals
// deterministically, with no late links and no lost graphs.
func TestOfflineReplayCountersSurvive(t *testing.T) {
	// 600 quick requests, 1ms apart: long enough that the replay's fixed
	// drain cadence fires mid-trace and the 20ms horizon force-seals the
	// older completed components.
	const n = 600
	trace := make([]*activity.Activity, 0, 2*n)
	for k := 0; k < n; k++ {
		base := time.Duration(k) * time.Millisecond
		port := 40000 + k%20000
		trace = append(trace,
			mkRaw(int64(2*k), activity.Receive, base, "web1", "httpd", 1, "10.9.9.9", "10.0.0.1", port, 80),
			mkRaw(int64(2*k+1), activity.Send, base+100*time.Microsecond, "web1", "httpd", 1, "10.0.0.1", "10.9.9.9", 80, port))
	}
	opts := Options{
		Window:     time.Millisecond,
		EntryPorts: []int{80},
		IPToHost:   map[string]string{"10.0.0.1": "web1"},
		SealAfter:  20 * time.Millisecond,
	}
	run := func() *Result {
		t.Helper()
		res, err := New(opts).CorrelateTrace(trace)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.ForcedSeals == 0 {
		t.Fatal("offline replay lost the ForcedSeals counter (or never force-sealed)")
	}
	if res.LateLinks != 0 {
		t.Fatalf("late links = %d, want 0 (completed components only)", res.LateLinks)
	}
	if len(res.Graphs) != n {
		t.Fatalf("graphs = %d, want %d", len(res.Graphs), n)
	}
	again := run()
	if again.ForcedSeals != res.ForcedSeals || again.LateLinks != res.LateLinks {
		t.Fatalf("replay counters not deterministic: (%d,%d) then (%d,%d)",
			res.ForcedSeals, res.LateLinks, again.ForcedSeals, again.LateLinks)
	}

	// PaperExactNoise honours the horizon too: it is a streaming-engine
	// mode like any other, so the same continuous replay must force seals
	// instead of being rejected.
	exact := opts
	exact.PaperExactNoise = true
	exact.Workers = 4
	pres, err := New(exact).CorrelateTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	if pres.ForcedSeals == 0 {
		t.Fatal("exact-mode continuous replay produced no forced seals")
	}
	if pres.Shards == 0 {
		t.Fatal("exact-mode continuous replay reported no shards")
	}
}

package core

import (
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/ranker"
	"repro/internal/rubis"
)

// globalExactPass reimplements the retired globalSession inline: buffer
// the whole classified trace per host, then run ONE ranker+engine over
// all hosts' sources in declared host order — the Fig. 5 is_noise
// predicate consulting one global buffer. It exists only as the
// reference the sharded exact mode is held to, so the byte-identity
// proof survives in-repo after the pre-refactor golden dumps are gone.
func globalExactPass(res *rubis.Result, hosts []string) *Result {
	opts := options(res)
	opts.PaperExactNoise = true
	cls := activity.NewClassifier(opts.EntryPorts...)
	perHost := make(map[string][]*activity.Activity, len(hosts))
	n := 0
	for _, a := range arrivalOrder(res.Trace) {
		cp := *a
		cp.Type = cls.Classify(a)
		perHost[cp.Ctx.Host] = append(perHost[cp.Ctx.Host], &cp)
		n++
	}
	sources := make([]ranker.Source, 0, len(hosts))
	for _, h := range hosts {
		sources = append(sources, ranker.NewSliceSource(h, perHost[h]))
	}
	_, eng := New(opts).drive(sources)
	return &Result{Graphs: eng.Outputs(), Activities: n}
}

// TestExactModeMatchesGlobalPass is the standing equivalence proof for
// the shard-aware Fig. 5 predicate: the one streaming engine — at every
// pool size, with and without a seal horizon, online and offline — must
// reproduce the historical global-buffer pass graph-for-graph. The
// fixture family keeps noise sessions declared but inert, where the
// global pass's shared-window semantics and the shard-local windows
// provably coincide (see AblationPaperExactNoise for where they differ
// by design).
func TestExactModeMatchesGlobalPass(t *testing.T) {
	res := fastRun(t, 40, func(c *rubis.Config) { c.NoiseSessions = 6 })
	hosts := hostsOf(res)
	want := globalExactPass(res, hosts)
	if len(want.Graphs) == 0 {
		t.Fatal("global reference pass produced no graphs")
	}

	opts := options(res)
	opts.PaperExactNoise = true
	off, err := New(opts).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraphs(t, "offline", want, off)
	if off.Shards == 0 {
		t.Fatal("offline exact pass did not shard")
	}

	for _, v := range []struct {
		name    string
		workers int
		seal    time.Duration
	}{
		{"w1", 1, 0},
		{"w4", 4, 0},
		{"w1-seal", 1, time.Second},
		{"w4-seal", 4, time.Second},
	} {
		sopts := opts
		sopts.Workers = v.workers
		sopts.SealAfter = v.seal
		sess, err := NewSession(sopts, hosts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		for i, a := range arrivalOrder(res.Trace) {
			if err := sess.Push(a); err != nil {
				t.Fatalf("%s: %v", v.name, err)
			}
			if (i+1)%256 == 0 {
				sess.Drain()
			}
		}
		got := sess.Close()
		assertSameGraphs(t, v.name, want, got)
		if got.Shards == 0 {
			t.Fatalf("%s: exact session did not shard", v.name)
		}
	}
}

package core

import (
	"sort"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/rubis"
)

// arrivalOrder returns the trace in global timestamp order — an
// approximation of how records reach an online collector.
func arrivalOrder(trace []*activity.Activity) []*activity.Activity {
	out := make([]*activity.Activity, len(trace))
	copy(out, trace)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Timestamp < out[j].Timestamp })
	return out
}

func hostsOf(res *rubis.Result) []string {
	var hosts []string
	for h := range res.PerHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

func TestSessionMatchesOffline(t *testing.T) {
	res := fastRun(t, 60, func(c *rubis.Config) {
		c.Skew.MaxSkew = 200 * time.Millisecond
	})
	sess, err := NewSession(options(res), hostsOf(res))
	if err != nil {
		t.Fatal(err)
	}
	// Push in per-host local order (interleaved chunks), draining as we go.
	perHostPos := map[string]int{}
	pushed := 0
	for pushed < len(res.Trace) {
		for _, h := range hostsOf(res) {
			log := res.PerHost[h]
			pos := perHostPos[h]
			for i := 0; i < 50 && pos < len(log); i++ {
				if err := sess.Push(log[pos]); err != nil {
					t.Fatal(err)
				}
				pos++
				pushed++
			}
			perHostPos[h] = pos
		}
		sess.Drain()
	}
	out := sess.Close()
	rep := res.Truth.Evaluate(out.Graphs)
	if rep.PathAccuracy() != 1.0 {
		t.Fatalf("online accuracy: %v", rep)
	}
	if out.Activities != len(res.Trace) {
		t.Fatalf("activities = %d, want %d", out.Activities, len(res.Trace))
	}
	if out.Ranker.ForcedPops != 0 {
		t.Fatalf("online session forced pops: %+v", out.Ranker)
	}
}

func TestSessionEmitsBeforeClose(t *testing.T) {
	// CAGs must stream out while input is still flowing — not only at
	// Close. Emission is seal-driven: configure an activity-time horizon
	// (the always-on deployment's configuration) and expect output while
	// every stream is still open; the close-driven session holds the same
	// input back until streams end.
	res := fastRun(t, 60, nil)
	opts := options(res)
	opts.SealAfter = 200 * time.Millisecond
	sess, err := NewSession(opts, hostsOf(res))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range arrivalOrder(res.Trace) {
		if err := sess.Push(a); err != nil {
			t.Fatal(err)
		}
		if (i+1)%64 == 0 {
			sess.Drain()
		}
	}
	sess.Drain()
	if len(sess.Graphs()) == 0 {
		t.Fatal("no CAGs emitted mid-stream")
	}
	mid := len(sess.Graphs())
	out := sess.Close()
	if len(out.Graphs) < mid {
		t.Fatalf("close lost graphs: %d < %d", len(out.Graphs), mid)
	}
}

func TestSessionNoGuessingWhileOpen(t *testing.T) {
	// A lone RECEIVE whose SEND has not arrived yet must stay pending
	// while the sender's stream is open: its flow component can still
	// grow, so it is neither correlated nor dropped as noise — and once
	// every stream closes it resolves (here: provably noise) without
	// having been guessed at.
	res := fastRun(t, 10, nil)
	sess, err := NewSession(options(res), hostsOf(res))
	if err != nil {
		t.Fatal(err)
	}
	var recv *activity.Activity
	for _, a := range res.Trace {
		if a.Type == activity.Receive && a.Ctx.Host == "app1" {
			recv = a
			break
		}
	}
	if recv == nil {
		t.Fatal("test setup: no app1 RECEIVE found")
	}
	if err := sess.Push(recv); err != nil {
		t.Fatal(err)
	}
	if n := sess.Drain(); n != 0 {
		t.Fatalf("session decided %d activities while the sender's stream was open", n)
	}
	if len(sess.Graphs()) != 0 {
		t.Fatal("session emitted a graph from an undecidable RECEIVE")
	}
	if sess.Pending() == 0 {
		t.Fatal("the RECEIVE should be buffered")
	}
	out := sess.Close()
	if resolved := out.Ranker.Delivered + out.Ranker.NoiseDropped; resolved == 0 {
		t.Fatalf("held RECEIVE never resolved after close: %+v", out.Ranker)
	}
}

// TestSessionDrainIdleButOpen pins Drain's fixed point: with streams
// open but nothing (or nothing decidable) buffered, Drain returns 0, is
// idempotent, and leaves the session fully usable — and the held-back
// work completes once the streams close.
func TestSessionDrainIdleButOpen(t *testing.T) {
	res := fastRun(t, 10, nil)
	sess, err := NewSession(options(res), hostsOf(res))
	if err != nil {
		t.Fatal(err)
	}
	// Totally idle: nothing pushed, every stream open.
	for i := 0; i < 3; i++ {
		if n := sess.Drain(); n != 0 {
			t.Fatalf("idle drain %d processed %d activities", i, n)
		}
	}
	// Idle-but-buffered: a lone cross-node RECEIVE is undecidable while
	// the sender's stream is open — its component never seals — so
	// repeated Drains must spin zero work (blocked, not drained).
	var recv *activity.Activity
	for _, a := range res.Trace {
		if a.Type == activity.Receive && a.Ctx.Host == "app1" {
			recv = a
			break
		}
	}
	if recv == nil {
		t.Fatal("fixture has no app1 RECEIVE")
	}
	if err := sess.Push(recv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if n := sess.Drain(); n != 0 {
			t.Fatalf("blocked drain %d processed %d activities", i, n)
		}
		if sess.Pending() == 0 {
			t.Fatal("undecidable RECEIVE no longer pending")
		}
	}
	// Closing every stream seals the component: the final Close resolves
	// the held activity (here: provably noise, its SEND can no longer
	// arrive) without having guessed early.
	out := sess.Close()
	if out.Activities != 1 {
		t.Fatalf("activities = %d, want 1", out.Activities)
	}
	if resolved := out.Ranker.Delivered + out.Ranker.NoiseDropped + out.Ranker.ForcedPops; resolved == 0 {
		t.Fatalf("held RECEIVE never resolved after close: %+v", out.Ranker)
	}
	if sess.Pending() != 0 {
		t.Fatalf("pending = %d after close", sess.Pending())
	}
}

func TestSessionErrors(t *testing.T) {
	res := fastRun(t, 10, nil)
	if _, err := NewSession(Options{}, hostsOf(res)); err == nil {
		t.Fatal("missing entry ports should fail")
	}
	if _, err := NewSession(options(res), nil); err == nil {
		t.Fatal("no hosts should fail")
	}
	sess, err := NewSession(options(res), hostsOf(res))
	if err != nil {
		t.Fatal(err)
	}
	bad := *res.Trace[0]
	bad.Ctx.Host = "unknown-host"
	if err := sess.Push(&bad); err == nil {
		t.Fatal("unknown host should fail")
	}
	if err := sess.CloseHost("nope"); err == nil {
		t.Fatal("unknown CloseHost should fail")
	}
	sess.Close()
	if err := sess.Push(res.Trace[0]); err == nil {
		t.Fatal("push after close should fail")
	}
}

func TestSessionOutOfOrderPushRejected(t *testing.T) {
	res := fastRun(t, 10, nil)
	sess, err := NewSession(options(res), hostsOf(res))
	if err != nil {
		t.Fatal(err)
	}
	log := res.PerHost["web1"]
	if err := sess.Push(log[1]); err != nil {
		t.Fatal(err)
	}
	if log[0].Timestamp < log[1].Timestamp {
		if err := sess.Push(log[0]); err == nil {
			t.Fatal("timestamp regression should be rejected")
		}
	}
}

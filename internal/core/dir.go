package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/activity"
	"repro/internal/ranker"
)

// classifySource wraps a lazy source and applies the §3.1 BEGIN/END
// transformation as records stream out, so directory correlation never
// materialises a whole trace.
type classifySource struct {
	src interface {
		Host() string
		Peek() *activity.Activity
		Pop() *activity.Activity
	}
	cls  *activity.Classifier
	next *activity.Activity
}

func (s *classifySource) fill() {
	if s.next == nil {
		if a := s.src.Pop(); a != nil {
			a.Type = s.cls.Classify(a)
			s.next = a
		}
	}
}

// Host implements ranker.Source.
func (s *classifySource) Host() string { return s.src.Host() }

// Peek implements ranker.Source.
func (s *classifySource) Peek() *activity.Activity {
	s.fill()
	return s.next
}

// Pop implements ranker.Source.
func (s *classifySource) Pop() *activity.Activity {
	s.fill()
	a := s.next
	s.next = nil
	return a
}

// CorrelateDir streams one correlation pass over a directory of per-host
// TCP_TRACE logs (<host>.trace or <host>.trace.gz, as written by
// activity.WriteHostLogs / rubisgen -splitdir). The logs are decoded
// lazily and replayed through the streaming engine (see CorrelateSources),
// which buffers each flow component until it seals: configure a seal
// horizon (Options.SealAfter / SealAfterByHost) to bound that buffering on
// long inputs — with one, memory tracks recently-active components instead
// of the trace size. Use Options.OnGraph to also bound the output side.
//
// If Options.IPToHost is nil the traced-node map is inferred with a cheap
// first pass over the logs.
func (c *Correlator) CorrelateDir(dir string) (*Result, error) {
	if len(c.opts.EntryPorts) == 0 {
		return nil, ErrNoEntryPorts
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".trace") || strings.HasSuffix(e.Name(), ".trace.gz") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("core: no .trace files in %s", dir)
	}

	opts := c.opts
	if opts.IPToHost == nil {
		m, err := inferTopology(dir, names)
		if err != nil {
			return nil, err
		}
		opts.IPToHost = m
	}

	cls := activity.NewClassifier(opts.EntryPorts...)
	counters := make([]int64, len(names))
	var sources []ranker.Source
	var files []*activity.FileSource
	for i, name := range names {
		host := strings.TrimSuffix(strings.TrimSuffix(name, ".gz"), ".trace")
		counters[i] = activity.HostIDBase(i)
		fs, err := activity.OpenFileSource(host, filepath.Join(dir, name), &counters[i])
		if err != nil {
			closeAll(files)
			return nil, err
		}
		files = append(files, fs)
		sources = append(sources, &classifySource{src: fs, cls: cls})
	}
	defer closeAll(files)

	sub := New(opts)
	res, err := sub.CorrelateSources(sources, 0)
	if err != nil {
		return nil, err
	}
	total := 0
	for i := range counters {
		total += int(counters[i] - activity.HostIDBase(i))
	}
	res.Activities = total
	for _, fs := range files {
		if ferr := fs.Err(); ferr != nil {
			return nil, fmt.Errorf("core: %s: %w", fs.Host(), ferr)
		}
	}
	return res, nil
}

func closeAll(files []*activity.FileSource) {
	for _, f := range files {
		_ = f.Close()
	}
}

// inferTopology scans the logs once, building the IP -> host map from
// which node logged which endpoints (activity.InferIPToHost, streaming).
func inferTopology(dir string, names []string) (map[string]string, error) {
	m := make(map[string]string)
	for _, name := range names {
		host := strings.TrimSuffix(strings.TrimSuffix(name, ".gz"), ".trace")
		fs, err := activity.OpenFileSource(host, filepath.Join(dir, name), nil)
		if err != nil {
			return nil, err
		}
		for {
			a := fs.Pop()
			if a == nil {
				break
			}
			switch a.Type {
			case activity.Send, activity.End:
				m[a.Chan.Src.IP] = a.Ctx.Host
			case activity.Receive, activity.Begin:
				m[a.Chan.Dst.IP] = a.Ctx.Host
			case activity.MaxType:
			}
		}
		err = fs.Err()
		if cerr := fs.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("core: infer topology from %s: %w", name, err)
		}
	}
	return m, nil
}

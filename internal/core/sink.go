package core

import "repro/internal/cag"

// GraphSink consumes finished CAGs as the watermark emitter releases
// them — the composable form of the emission path. Sinks registered in
// Options.Sinks (or IngestOptions.Sinks) are invoked in registration
// order, on the emitter's goroutine, in deterministic END-timestamp
// order; the legacy Options.OnGraph callback, when set, runs before
// them. Registering any sink (or OnGraph) switches the session to
// streaming: Result.Graphs stays empty and output memory is the sinks'
// concern.
//
// Ownership: the graph and its vertices' Records are owned by the
// pipeline's slab allocator and are immutable after emission. A sink
// may retain the graph indefinitely (the monitor's interval buckets
// do), but must not mutate vertices or records — later sinks in the
// chain observe the same objects.
type GraphSink interface {
	ConsumeGraph(g *cag.Graph)
}

// GraphSinkFunc adapts a plain function to the GraphSink interface.
type GraphSinkFunc func(g *cag.Graph)

// ConsumeGraph implements GraphSink.
func (f GraphSinkFunc) ConsumeGraph(g *cag.Graph) { f(g) }

// Collect is a GraphSink that accumulates every released graph in
// emission order — the bridge for callers that want both streaming
// sinks (export, monitoring) and the batch Result.Graphs view.
type Collect struct {
	Graphs []*cag.Graph
}

// ConsumeGraph implements GraphSink.
func (c *Collect) ConsumeGraph(g *cag.Graph) { c.Graphs = append(c.Graphs, g) }

// emitter folds OnGraph and the sink chain into one delivery function,
// or nil when neither is configured (the session then accumulates into
// Result.Graphs).
func (o *Options) emitter() func(*cag.Graph) {
	if o.OnGraph == nil && len(o.Sinks) == 0 {
		return nil
	}
	if o.OnGraph != nil && len(o.Sinks) == 0 {
		return o.OnGraph
	}
	on := o.OnGraph
	sinks := append([]GraphSink(nil), o.Sinks...)
	return func(g *cag.Graph) {
		if on != nil {
			on(g)
		}
		for _, s := range sinks {
			s.ConsumeGraph(g)
		}
	}
}

package core

import (
	"sort"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
	"repro/internal/rubis"
)

// replaySession pushes a rubis trace through an online continuous
// session in global timestamp order, calling advance every cadence
// records, and returns the OnGraph emission sequence plus the final
// result. The advance function is the knob under test: Drain (the full
// barrier) versus Tick (the pipelined, non-blocking cadence).
func replaySession(t *testing.T, res *rubis.Result, workers int, advance func(*Session), cadence int) ([]string, *Result) {
	t.Helper()
	hosts := make([]string, 0, len(res.PerHost))
	for h := range res.PerHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	arr := make([]*activity.Activity, len(res.Trace))
	copy(arr, res.Trace)
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].Timestamp < arr[j].Timestamp })
	var got []string
	sess, err := NewSession(Options{
		Window:     10 * time.Millisecond,
		EntryPorts: []int{rubis.EntryPort},
		IPToHost:   res.IPToHost,
		Workers:    workers,
		SealAfter:  40 * time.Millisecond,
		OnGraph:    func(g *cag.Graph) { got = append(got, fingerprint(g)) },
	}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range arr {
		if err := sess.Push(a); err != nil {
			t.Fatal(err)
		}
		if (i+1)%cadence == 0 {
			advance(sess)
		}
	}
	return got, sess.Close()
}

// TestSessionTickMatchesDrainCadence is the pipelined front's
// equivalence gate: replaying the same continuous stream with Tick at
// the drain cadence must produce the same graphs in the same emission
// order as the blocking Drain cadence — Tick shifts only the moment a
// graph is released (what is already finished when the tick runs),
// never its content, its order, or the seal/late-link accounting.
func TestSessionTickMatchesDrainCadence(t *testing.T) {
	res := rubisTrace(t, 120, 0.05, 3)
	for _, workers := range []int{1, 4} {
		drained, dres := replaySession(t, res, workers, func(s *Session) { s.Drain() }, 256)
		ticked, tres := replaySession(t, res, workers, func(s *Session) { s.Tick() }, 256)
		if len(drained) == 0 {
			t.Fatal("no graphs emitted")
		}
		if len(ticked) != len(drained) {
			t.Fatalf("workers=%d: tick cadence emitted %d graphs, drain cadence %d", workers, len(ticked), len(drained))
		}
		for i := range drained {
			if ticked[i] != drained[i] {
				t.Fatalf("workers=%d: graph %d differs between tick and drain cadence", workers, i)
			}
		}
		if tres.ForcedSeals != dres.ForcedSeals || tres.LateLinks != dres.LateLinks || tres.Shards != dres.Shards {
			t.Fatalf("workers=%d: accounting differs: tick seals/late/shards %d/%d/%d, drain %d/%d/%d",
				workers, tres.ForcedSeals, tres.LateLinks, tres.Shards, dres.ForcedSeals, dres.LateLinks, dres.Shards)
		}
	}
}

// TestTickNonBlockingDelivery pins Tick's contract on a close-driven
// session: ticks between pushes are legal no-ops (nothing seals before
// hosts close), never block, and the final Close still delivers
// everything exactly once.
func TestTickNonBlockingDelivery(t *testing.T) {
	res := rubisTrace(t, 80, 0.02, 0)
	want := correlate(t, res, 1, ShardByFlow)
	hosts := make([]string, 0, len(res.PerHost))
	for h := range res.PerHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	arr := make([]*activity.Activity, len(res.Trace))
	copy(arr, res.Trace)
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].Timestamp < arr[j].Timestamp })
	sess, err := NewSession(Options{
		Window:     10 * time.Millisecond,
		EntryPorts: []int{rubis.EntryPort},
		IPToHost:   res.IPToHost,
		Workers:    2,
	}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range arr {
		if err := sess.Push(a); err != nil {
			t.Fatal(err)
		}
		if (i+1)%128 == 0 {
			sess.Tick()
		}
	}
	got := sess.Close()
	assertSameGraphs(t, "tick-cadence close-driven session vs offline", want, got)
}

// TestEarlyCloseSafeGate pins the replay early-close precondition: safe
// exactly when every record's pushing host resolves one of its own
// connection endpoints through IPToHost. The rubis generator maps every
// traced host's address, so its traces qualify; dropping one host's
// mapping (or all mappings) must disqualify the trace and fall back to
// the close-at-end replay.
func TestEarlyCloseSafeGate(t *testing.T) {
	res := rubisTrace(t, 40, 0.02, 2)
	set := map[string]struct{}{}
	for _, a := range res.Trace {
		set[a.Ctx.Host] = struct{}{}
	}
	traceHosts := make([]string, 0, len(set))
	for h := range set {
		traceHosts = append(traceHosts, h)
	}
	sort.Strings(traceHosts)
	base := Options{Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost}
	s := newStreamSession(base, traceHosts)
	if !s.earlyCloseSafe(res.Trace) {
		t.Fatal("fully resolved rubis trace should allow early close")
	}
	s.Close()

	// Remove one traced host's address mapping: its records' own-side
	// endpoints stop resolving, so early close must be refused.
	partial := base
	partial.IPToHost = map[string]string{}
	var dropped string
	for ip, h := range res.IPToHost {
		if dropped == "" || h == dropped {
			dropped = h
			continue
		}
		partial.IPToHost[ip] = h
	}
	s2 := newStreamSession(partial, traceHosts)
	if s2.earlyCloseSafe(res.Trace) {
		t.Fatalf("trace with host %q unmapped should refuse early close", dropped)
	}
	s2.Close()

	// No resolution at all: refuse outright.
	bare := base
	bare.IPToHost = nil
	s3 := newStreamSession(bare, traceHosts)
	if s3.earlyCloseSafe(res.Trace) {
		t.Fatal("trace without IPToHost should refuse early close")
	}
	s3.Close()
}

// TestReplayEarlyCloseMatchesLateClose replays the same fully resolved
// trace through CorrelateTrace (which closes each host at its last
// record to overlap partition with correlation) and through a session
// that closes every host only at the end, and demands byte-identical
// graphs — the early closes must not change one seal grouping.
func TestReplayEarlyCloseMatchesLateClose(t *testing.T) {
	res := rubisTrace(t, 120, 0.05, 4)
	for _, workers := range []int{1, 4} {
		early := correlate(t, res, workers, ShardByFlow)
		hosts := make([]string, 0, len(res.PerHost))
		for h := range res.PerHost {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		sess, err := NewSession(Options{
			Window:     10 * time.Millisecond,
			EntryPorts: []int{rubis.EntryPort},
			IPToHost:   res.IPToHost,
			Workers:    workers,
		}, hosts)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range res.Trace {
			if err := sess.Push(a); err != nil {
				t.Fatal(err)
			}
		}
		late := sess.Close()
		assertSameGraphs(t, "early-close replay vs close-at-end session", early, late)
	}
}

package core

import (
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
	"repro/internal/groundtruth"
	"repro/internal/ranker"
	"repro/internal/rubis"
)

func fastRun(t *testing.T, clients int, mutate func(*rubis.Config)) *rubis.Result {
	t.Helper()
	cfg := rubis.DefaultConfig(clients)
	cfg.Scale = 0.01
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := rubis.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func options(res *rubis.Result) Options {
	return Options{
		Window:     10 * time.Millisecond,
		EntryPorts: []int{rubis.EntryPort},
		IPToHost:   res.IPToHost,
	}
}

func TestCorrelateTraceFullAccuracy(t *testing.T) {
	res := fastRun(t, 80, nil)
	out, err := New(options(res)).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Truth.Evaluate(out.Graphs)
	if rep.PathAccuracy() != 1.0 {
		t.Fatalf("accuracy = %v (%v)", rep.PathAccuracy(), rep)
	}
	if rep.FalsePositives() != 0 || rep.FalseNegatives() != 0 {
		t.Fatalf("false positives/negatives: %v", rep)
	}
	if out.Unfinished() != 0 {
		t.Fatalf("unfinished CAGs: %d", out.Unfinished())
	}
	for _, g := range out.Graphs {
		if err := g.Validate(); err != nil {
			t.Fatalf("invalid CAG: %v\n%s", err, cag.Dump(g))
		}
	}
}

func TestCorrelatorIgnoresGroundTruthTags(t *testing.T) {
	// Strip the hidden request tags before correlating: results must be
	// structurally identical — the algorithm is truly black-box.
	res := fastRun(t, 40, nil)
	tagged, err := New(options(res)).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	untagged := make([]*activity.Activity, len(res.Trace))
	for i, a := range res.Trace {
		cp := a.CloneUntagged()
		cp.ID = a.ID
		untagged[i] = cp
	}
	blind, err := New(options(res)).CorrelateTrace(untagged)
	if err != nil {
		t.Fatal(err)
	}
	if len(blind.Graphs) != len(tagged.Graphs) {
		t.Fatalf("CAG count changed without tags: %d vs %d", len(blind.Graphs), len(tagged.Graphs))
	}
	for i := range blind.Graphs {
		if cag.Signature(blind.Graphs[i]) != cag.Signature(tagged.Graphs[i]) {
			t.Fatalf("CAG %d shape changed without tags", i)
		}
	}
}

func TestAccuracyUnderSkewAndWindowSweep(t *testing.T) {
	// §5.2's grid: window 1ms..10s x skew 1ms..500ms, plus noise.
	res := fastRun(t, 60, func(c *rubis.Config) {
		c.Noise = true
		c.Skew.MaxSkew = 500 * time.Millisecond
		c.Skew.DriftPPM = 80
	})
	for _, w := range []time.Duration{time.Millisecond, 100 * time.Millisecond, 10 * time.Second} {
		opts := options(res)
		opts.Window = w
		out, err := New(opts).CorrelateTrace(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		rep := res.Truth.Evaluate(out.Graphs)
		if rep.PathAccuracy() != 1.0 {
			t.Fatalf("window %v: %v", w, rep)
		}
	}
}

func TestNoEntryPortsRejected(t *testing.T) {
	res := fastRun(t, 20, nil)
	_, err := New(Options{Window: time.Millisecond}).CorrelateTrace(res.Trace)
	if err == nil {
		t.Fatal("expected ErrNoEntryPorts")
	}
}

func TestStreamingOutput(t *testing.T) {
	res := fastRun(t, 40, nil)
	var streamed int
	opts := options(res)
	opts.OnGraph = func(*cag.Graph) { streamed++ }
	out, err := New(opts).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Graphs) != 0 {
		t.Fatal("accumulator should be empty when streaming")
	}
	if streamed != res.Truth.Requests() {
		t.Fatalf("streamed %d, want %d", streamed, res.Truth.Requests())
	}
}

func TestFilterIntegration(t *testing.T) {
	res := fastRun(t, 40, func(c *rubis.Config) { c.Noise = true })
	opts := options(res)
	opts.Filter = ranker.AttributeFilter{
		DenyPrograms: map[string]bool{"sshd": true, "rlogind": true},
	}.Func()
	out, err := New(opts).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ranker.FilterDropped == 0 {
		t.Fatal("attribute filter never fired on ssh/rlogin noise")
	}
	rep := res.Truth.Evaluate(out.Graphs)
	if rep.PathAccuracy() != 1.0 {
		t.Fatalf("accuracy with filtering: %v", rep)
	}
}

func TestResultAccounting(t *testing.T) {
	res := fastRun(t, 40, nil)
	out, err := New(options(res)).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if out.Activities != len(res.Trace) {
		t.Fatalf("Activities = %d, want %d", out.Activities, len(res.Trace))
	}
	if out.CorrelationTime <= 0 {
		t.Fatal("correlation time not measured")
	}
	if out.PeakBufferedActivities <= 0 || out.PeakResidentVertices <= 0 {
		t.Fatalf("peak accounting missing: %d %d", out.PeakBufferedActivities, out.PeakResidentVertices)
	}
	if out.EstimatedBytes() <= 0 {
		t.Fatal("memory estimate missing")
	}
}

func TestLargerWindowBuffersMore(t *testing.T) {
	res := fastRun(t, 150, nil)
	small, err := New(Options{Window: time.Millisecond, EntryPorts: []int{80}, IPToHost: res.IPToHost}).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(Options{Window: 5 * time.Second, EntryPorts: []int{80}, IPToHost: res.IPToHost}).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if big.PeakBufferedActivities <= small.PeakBufferedActivities {
		t.Fatalf("bigger window should buffer more: %d (1ms) vs %d (5s)",
			small.PeakBufferedActivities, big.PeakBufferedActivities)
	}
}

func TestDefaultWindowApplied(t *testing.T) {
	c := New(Options{EntryPorts: []int{80}})
	if c.opts.Window != 10*time.Millisecond {
		t.Fatalf("default window = %v", c.opts.Window)
	}
}

func TestCorrelateDirStreamsFromDisk(t *testing.T) {
	res := fastRun(t, 60, func(c *rubis.Config) { c.Noise = true })
	for _, gz := range []bool{false, true} {
		dir := t.TempDir()
		if err := activity.WriteHostLogs(dir, res.PerHost, true, gz); err != nil {
			t.Fatal(err)
		}
		var streamed int
		opts := options(res)
		opts.IPToHost = nil // force topology inference
		opts.OnGraph = func(*cag.Graph) { streamed++ }
		out, err := New(opts).CorrelateDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if streamed != res.Truth.Requests() {
			t.Fatalf("gz=%v: streamed %d CAGs, want %d", gz, streamed, res.Truth.Requests())
		}
		if out.Activities != len(res.Trace) {
			t.Fatalf("gz=%v: activities = %d, want %d", gz, out.Activities, len(res.Trace))
		}
		// The streaming pass keeps only the window resident.
		if out.PeakBufferedActivities > len(res.Trace)/4 {
			t.Fatalf("gz=%v: streaming buffered %d of %d activities", gz,
				out.PeakBufferedActivities, len(res.Trace))
		}
	}
}

func TestCorrelateDirAccuracyMatchesInMemory(t *testing.T) {
	res := fastRun(t, 40, nil)
	dir := t.TempDir()
	if err := activity.WriteHostLogs(dir, res.PerHost, true, false); err != nil {
		t.Fatal(err)
	}
	opts := options(res)
	opts.IPToHost = nil
	out, err := New(opts).CorrelateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild truth from the files (IDs are reassigned by read order).
	perHost, err := activity.ReadHostLogs(dir)
	if err != nil {
		t.Fatal(err)
	}
	truth := groundtruth.FromTrace(activity.Merge(perHost))
	rep := truth.Evaluate(out.Graphs)
	if rep.PathAccuracy() != 1.0 {
		t.Fatalf("dir accuracy: %v", rep)
	}
}

func TestCorrelateDirErrors(t *testing.T) {
	if _, err := New(Options{EntryPorts: []int{80}}).CorrelateDir(t.TempDir()); err == nil {
		t.Fatal("empty dir should fail")
	}
	if _, err := New(Options{}).CorrelateDir(t.TempDir()); err == nil {
		t.Fatal("missing entry ports should fail")
	}
}

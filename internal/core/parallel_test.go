package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cag"
	"repro/internal/rubis"
)

// fingerprint renders a graph into a canonical byte string covering the
// full structure and provenance: vertex order, types, timestamps,
// contexts, channels, sizes, parent links and underlying record IDs. Two
// graphs with equal fingerprints are identical for every downstream
// consumer (patterns, breakdowns, accuracy scoring).
func fingerprint(g *cag.Graph) string {
	var b strings.Builder
	b.WriteString(cag.Dump(g))
	for i := 0; i < g.Len(); i++ {
		v := g.Vertex(i)
		fmt.Fprintf(&b, "%d %s %v|", i, v.Chan, v.Size)
	}
	fmt.Fprintf(&b, "records=%v latency=%v", g.RecordIDs(), g.Latency())
	return b.String()
}

func rubisTrace(t testing.TB, clients int, scale float64, noise int) *rubis.Result {
	t.Helper()
	cfg := rubis.DefaultConfig(clients)
	cfg.Scale = scale
	cfg.NoiseSessions = noise
	res, err := rubis.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func correlate(t testing.TB, res *rubis.Result, workers int, mode ShardMode) *Result {
	t.Helper()
	out, err := New(Options{
		Window:     10 * time.Millisecond,
		EntryPorts: []int{rubis.EntryPort},
		IPToHost:   res.IPToHost,
		Workers:    workers,
		ShardBy:    mode,
	}).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// assertSameGraphs compares two correlation results graph-by-graph, in
// emission order, by canonical fingerprint — plus the derived artefacts
// the paper's evaluation is built on: pattern census and per-pattern
// latency breakdowns.
func assertSameGraphs(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if len(want.Graphs) != len(got.Graphs) {
		t.Fatalf("%s: graph count %d, want %d", label, len(got.Graphs), len(want.Graphs))
	}
	for i := range want.Graphs {
		wf, gf := fingerprint(want.Graphs[i]), fingerprint(got.Graphs[i])
		if wf != gf {
			t.Fatalf("%s: graph %d differs\n--- want ---\n%s\n--- got ---\n%s", label, i, wf, gf)
		}
	}

	wantPat, gotPat := cag.Classify(want.Graphs), cag.Classify(got.Graphs)
	if len(wantPat) != len(gotPat) {
		t.Fatalf("%s: pattern count %d, want %d", label, len(gotPat), len(wantPat))
	}
	for i := range wantPat {
		if wantPat[i].Signature != gotPat[i].Signature || wantPat[i].Count() != gotPat[i].Count() {
			t.Fatalf("%s: pattern %d: got %s×%d, want %s×%d", label, i,
				gotPat[i].Signature, gotPat[i].Count(), wantPat[i].Signature, wantPat[i].Count())
		}
		wa, err := cag.Aggregate(wantPat[i].Graphs)
		if err != nil {
			t.Fatal(err)
		}
		ga, err := cag.Aggregate(gotPat[i].Graphs)
		if err != nil {
			t.Fatal(err)
		}
		if wa.MeanLatency != ga.MeanLatency {
			t.Fatalf("%s: pattern %d mean latency %v, want %v", label, i, ga.MeanLatency, wa.MeanLatency)
		}
		wc, wv := wa.Percentages()
		gc, gv := ga.Percentages()
		if fmt.Sprint(wc, wv) != fmt.Sprint(gc, gv) {
			t.Fatalf("%s: pattern %d breakdown differs:\ngot  %v %v\nwant %v %v", label, i, gc, gv, wc, wv)
		}
	}
}

// TestParallelEquivalence is the headline guarantee of the sharded
// pipeline: for every worker count and shard mode, the concurrent
// correlator emits exactly the sequential correlator's graphs, in the
// same order, with the same pattern census and latency breakdowns.
func TestParallelEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		clients int
		scale   float64
		noise   int
	}{
		{"clean", 120, 0.03, 0},
		{"noisy", 120, 0.03, 8},
		{"larger", 300, 0.05, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := rubisTrace(t, tc.clients, tc.scale, tc.noise)
			seq := correlate(t, res, 1, ShardByFlow)
			if len(seq.Graphs) == 0 {
				t.Fatal("sequential pass produced no graphs")
			}
			for _, workers := range []int{4, 8} {
				for _, mode := range []ShardMode{ShardByFlow, ShardByContext} {
					label := fmt.Sprintf("workers=%d shardby=%s", workers, mode)
					par := correlate(t, res, workers, mode)
					assertSameGraphs(t, label, seq, par)
					// The shard engines collectively did exactly the
					// sequential engine's work.
					if par.Engine.Begins != seq.Engine.Begins ||
						par.Engine.Finished != seq.Engine.Finished ||
						par.Engine.Sends != seq.Engine.Sends ||
						par.Engine.Receives != seq.Engine.Receives {
						t.Fatalf("%s: engine stats diverged: got %+v, want %+v", label, par.Engine, seq.Engine)
					}
				}
			}
		})
	}
}

// TestParallelDeterminism runs the concurrent path repeatedly: goroutine
// scheduling must never leak into the output.
func TestParallelDeterminism(t *testing.T) {
	res := rubisTrace(t, 120, 0.03, 4)
	first := correlate(t, res, 8, ShardByFlow)
	for run := 0; run < 3; run++ {
		again := correlate(t, res, 8, ShardByFlow)
		assertSameGraphs(t, fmt.Sprintf("run %d", run), first, again)
	}
}

// TestParallelOnGraphOrder verifies the streaming contract: with
// Workers > 1 the OnGraph callback fires from the merge stage in
// non-decreasing END-timestamp order — the order the live monitor
// requires — and sees every graph the accumulated result would hold.
func TestParallelOnGraphOrder(t *testing.T) {
	res := rubisTrace(t, 120, 0.03, 0)
	var streamed []*cag.Graph
	out, err := New(Options{
		Window:     10 * time.Millisecond,
		EntryPorts: []int{rubis.EntryPort},
		IPToHost:   res.IPToHost,
		Workers:    4,
		OnGraph:    func(g *cag.Graph) { streamed = append(streamed, g) },
	}).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Graphs) != 0 {
		t.Fatalf("streaming mode accumulated %d graphs", len(out.Graphs))
	}
	if len(streamed) == 0 {
		t.Fatal("no graphs streamed")
	}
	for i := 1; i < len(streamed); i++ {
		if streamed[i].End().Timestamp < streamed[i-1].End().Timestamp {
			t.Fatalf("stream order regressed at %d: %v after %v",
				i, streamed[i].End().Timestamp, streamed[i-1].End().Timestamp)
		}
	}
	seq := correlate(t, res, 1, ShardByFlow)
	if len(streamed) != len(seq.Graphs) {
		t.Fatalf("streamed %d graphs, sequential emitted %d", len(streamed), len(seq.Graphs))
	}
}

// TestPaperExactNoiseSharded: the Fig. 5 ablation predicate is served
// per shard — channel closure keeps every SEND that could match a
// RECEIVE in the RECEIVE's component, so the shard-local pending-SEND
// answer equals the global one — and exact mode runs on the streaming
// engine at every worker count with identical output.
func TestPaperExactNoiseSharded(t *testing.T) {
	res := rubisTrace(t, 120, 0.03, 8)
	run := func(workers int) *Result {
		out, err := New(Options{
			Window:          10 * time.Millisecond,
			EntryPorts:      []int{rubis.EntryPort},
			IPToHost:        res.IPToHost,
			PaperExactNoise: true,
			Workers:         workers,
		}).CorrelateTrace(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := run(1), run(8)
	assertSameGraphs(t, "paper-exact-noise", seq, par)
	if seq.Shards == 0 || par.Shards == 0 {
		t.Fatalf("exact mode did not shard: %d and %d components", seq.Shards, par.Shards)
	}
}

// TestResolveWorkers pins the CLI flag convention: 0 = all CPUs,
// negatives = sequential.
func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(0); got < 1 {
		t.Fatalf("ResolveWorkers(0) = %d, want >= 1", got)
	}
	if got := ResolveWorkers(-3); got != 1 {
		t.Fatalf("ResolveWorkers(-3) = %d, want 1", got)
	}
	if got := ResolveWorkers(6); got != 6 {
		t.Fatalf("ResolveWorkers(6) = %d, want 6", got)
	}
}

// TestParallelSmallInputs exercises the degenerate pipeline shapes: empty
// trace, single activity, fewer components than workers.
func TestParallelSmallInputs(t *testing.T) {
	out, err := New(Options{
		EntryPorts: []int{80},
		Workers:    8,
	}).CorrelateTrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Graphs) != 0 {
		t.Fatalf("empty trace produced %d graphs", len(out.Graphs))
	}

	res := rubisTrace(t, 2, 0.01, 0)
	seq := correlate(t, res, 1, ShardByFlow)
	par := correlate(t, res, 16, ShardByFlow)
	assertSameGraphs(t, "tiny", seq, par)
}

package core

import (
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/activity"
	"repro/internal/cag"
	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/ranker"
	"repro/internal/ring"
)

// streamSession is the one streaming correlation engine. Every execution
// mode is a configuration of it — there is no other path: the online
// Session pushes live records into it, the offline Correlate calls replay
// a recorded input through it (replay.go), Workers sizes its correlation
// pool (1 = the sequential configuration), and seal horizons (global or
// per host) turn it continuous. That includes the PaperExactNoise
// ablation: the Fig. 5 predicate's pending-SEND question is answered from
// each shard's own window buffer, which the channel-closure invariant
// makes equal to the global answer — every SEND that could match a
// RECEIVE shares its ChanKey and therefore its component (see
// ranker.matchingSendVisible, and assertChanClosure below for the debug
// check).
//
// Pipeline:
//
//	Push ──> incremental flow partition (internal/flow.Incremental):
//	         every activity joins a component as it arrives; components
//	         fuse when a TCP connection or context epoch links them.
//	CloseHost / seal horizon ──> sealing: a component seals when no open
//	         host can extend it (the completion watermark), or — with a
//	         horizon configured — when it has idled past the largest
//	         horizon of the hosts that could still extend it.
//	workers ──> each sealed component runs the unmodified sequential
//	         ranker+engine pass (Correlator.drive), no shared state.
//	Drain/Close ──> the watermark emitter releases finished CAGs in
//	         deterministic END-timestamp order, holding back any graph
//	         that a still-open stream or still-pending component could
//	         yet precede.
//
// The result is byte-identical to the historical sequential correlator
// for the same per-host input order on well-formed traces
// (TestParallelSessionEquivalence, TestParallelEquivalence): the
// per-component passes are exact because components are closed under the
// engine's two lookup relations, and the emitter's order is the
// sequential completion order.
//
// With a seal horizon the session additionally runs continuously: Drain
// force-seals components idle past their horizon (against the activity
// clock, never wall time), the watermark treats quiet open streams as
// bounded by their own host horizons, and dispatched components' flow
// bookkeeping is tombstoned then pruned — memory stays bounded by
// recently-active components even if CloseHost is never called.
// Per-host horizons (Options.SealAfterByHost) let one chronically
// lagging agent extend only its own components' deadlines; Heartbeat
// lets an idle-but-healthy agent advance the watermark without traffic.
// See Options.SealAfter for the no-guess tradeoff this accepts.
//
// Contributor tracking relies on Options.IPToHost covering every declared
// host's addresses (the same map the ranker's noise reasoning needs): an
// activity can only extend a component from a host owning one of the
// component's channel endpoints. Unresolvable endpoints are treated as
// untraced, exactly like the ranker treats them.
//
// Identity handling: records are bound (activity.Bind) on the way in, so
// every internal table — host streams, component buffers, endpoint
// resolution — keys on dense symbols and packed keys, never on strings.
// Host names reappear only where output order or reporting needs them
// (correlateComponent's sorted sources, error messages).
type streamSession struct {
	opts    Options
	workers int         // normalized pool size (>= 1)
	drv     *Correlator // sequential driver for sealed components
	cls     *activity.Classifier
	inc     *flow.Incremental

	hosts map[activity.Sym]*sessHost

	// ipHost resolves a channel endpoint's interned IP straight to the
	// owning host's symbol — Options.IPToHost precomputed once, so the
	// two endpoint resolutions every push performs are integer map hits
	// instead of string lookups.
	ipHost map[activity.Sym]activity.Sym

	comps      map[int32]*sessComponent // keyed by current union-find root
	nextCompID int

	// chanOwner (debug only) maps each connection seen to the union-find
	// node it first filed under, for the shard-closure assertion; nil
	// unless debugShardClosure is set.
	chanOwner map[activity.ChanKey]int32

	// slab is the block allocator for the per-push buffered copy: pushes
	// carve records out of slabSize blocks instead of allocating one
	// Activity each. A block is reclaimed when every graph referencing
	// its records has been released — acceptable grouping, since records
	// of one block arrive together and seal together.
	slab []activity.Activity

	// Two-stage pipeline plumbing. Stage 1 is the session goroutine:
	// apply + flow partition + the seal decisions (which MUST stay on
	// deterministic event-stream points — Seal tombstones feed back into
	// how later records partition). Sealed components move to the worker
	// pool through the jobs ring in batches; shard results return through
	// the results ring to the stage-2 collector goroutine, which
	// aggregates them into collected/colBuf so workers never stall on a
	// busy stage 1. Stage 1 folds them in via harvest (non-blocking) or
	// settle (the Drain/Close barrier).
	sealReady  []*sessComponent // scratch for the per-drain seal scans
	jobs       *ring.Ring[*sessComponent]
	results    *ring.Ring[sessShardResult]
	wg         sync.WaitGroup // workers
	colWG      sync.WaitGroup // the stage-2 collector
	dispatched int            // stage-1 only: components pushed to jobs

	colMu      sync.Mutex
	colReady   sync.Cond         // collected advanced; waiters: settle
	collected  int               // shard results received (guarded by colMu)
	colBuf     []sessShardResult // received, awaiting stage-1 absorption
	colScratch []sessShardResult // harvest's swap buffer

	finished []taggedGraph // correlated, held back by the watermark
	unsorted bool          // finished gained graphs since the last sort
	emitted  []*cag.Graph  // released (when not streaming via OnGraph/Sinks)

	// deliver is the fused emission chain (Options.OnGraph + every
	// registered sink), nil when the session accumulates into emitted.
	// Rebuilt by AddSink, which must run before the first Push.
	deliver func(*cag.Graph)

	pushed      int
	pendingActs int
	uncounted   int // shard deliveries not yet reported by Drain

	// Continuous-mode state (any seal horizon configured). maxTs is the
	// newest timestamp pushed or heartbeated on any stream — the activity
	// clock every horizon is measured against. maxHorizon is the largest
	// configured horizon: the prune lag for components whose own horizon
	// is unbounded, wide enough for any straggler the liveness bounds
	// admit.
	continuous  bool
	maxTs       time.Duration
	maxHorizon  time.Duration
	forcedSeals int

	rstats   ranker.Stats
	estats   engine.Stats
	peakVert int
	shards   int
	// workTime is the wall-clock time this session spent correlating —
	// the time blocked in settle/harvest/emit, which is the shard work's
	// critical path, not the sum of concurrent shard times. It matches
	// the historical sequential session's drain-time accounting.
	workTime time.Duration

	closed bool
	final  *Result
}

// slabSize is how many buffered-copy records one slab block holds.
const slabSize = 512

// workerPullBatch is how many sealed components one worker takes per
// jobs-ring wakeup. PopBatch is adaptive — a batch only forms under
// backlog — so this caps amortization, it never delays a lone seal.
const workerPullBatch = 8

// collectorPullBatch sizes the stage-2 collector's results-ring reads.
const collectorPullBatch = 32

// copyRec copies one record into the session's slab. The returned copy
// is owned by the session (component buffers, then CAG vertices).
func (s *streamSession) copyRec(a *activity.Activity) *activity.Activity {
	if len(s.slab) == 0 {
		s.slab = make([]activity.Activity, slabSize)
	}
	cp := &s.slab[0]
	s.slab = s.slab[1:]
	*cp = *a
	return cp
}

// sessHost is one declared host's stream state.
type sessHost struct {
	name    string // interned canonical name, for errors and source labels
	open    bool
	any     bool // has pushed or heartbeated at least once
	last    time.Duration
	seq     uint64
	horizon time.Duration // effective seal horizon; 0 = close-driven only
}

// pushRec pairs an activity with its per-host push sequence number, so
// component fusion can interleave equal-timestamp records in push order —
// the order the per-host input streams preserve.
type pushRec struct {
	a   *activity.Activity
	seq uint64
}

// hostRun is one host's (timestamp, push-sequence)-ordered buffer within
// a component. Components touch a handful of hosts, so a flat slice with
// linear host lookup beats a map: no per-component map allocation, and
// the runs are iterated far more often than they are searched.
type hostRun struct {
	host activity.Sym
	recs []pushRec
}

// sessComponent is one growing flow component of the online partition.
type sessComponent struct {
	id      int // creation order: deterministic ordering fallback
	minTs   time.Duration
	maxTs   time.Duration // newest member: the staleness measure
	size    int
	runs    []hostRun      // buffered records, one run per contributing host
	contrib []activity.Sym // declared hosts that may still extend it
	sealed  bool
	forced  bool  // sealed by a horizon, not by host closure
	late    bool  // received a straggler that late-linked off a sealed shard
	root    int32 // current union-find root

	// runs0 and contrib0 are inline backing storage: most components
	// touch one or two hosts, so the slices usually never leave the
	// struct (same trick as cag.Vertex's inline record storage).
	runs0    [2]hostRun
	contrib0 [4]activity.Sym
}

func newSessComponent(id int, ts time.Duration, root int32) *sessComponent {
	c := &sessComponent{id: id, minTs: ts, maxTs: ts, root: root}
	c.runs = c.runs0[:0]
	c.contrib = c.contrib0[:0]
	return c
}

// appendRec buffers one record on the host's run.
func (c *sessComponent) appendRec(h activity.Sym, r pushRec) {
	for i := range c.runs {
		if c.runs[i].host == h {
			c.runs[i].recs = append(c.runs[i].recs, r)
			return
		}
	}
	c.runs = append(c.runs, hostRun{host: h, recs: append(make([]pushRec, 0, 4), r)})
}

// noteHost marks a declared host as a possible future contributor.
func (c *sessComponent) noteHost(h activity.Sym) {
	for _, x := range c.contrib {
		if x == h {
			return
		}
	}
	c.contrib = append(c.contrib, h)
}

// sessShardResult is one sealed component's correlation output.
type sessShardResult struct {
	comp         *sessComponent
	graphs       []*cag.Graph
	rstats       ranker.Stats
	estats       engine.Stats
	peakResident int
}

// taggedGraph is one finished CAG tagged with its deterministic
// provenance (component ordering key, emission position within the
// shard) for the watermark emitter.
type taggedGraph struct {
	g    *cag.Graph
	comp int
	pos  int
}

// sortTagged restores the sequential emission order: global
// END-timestamp order. Ties reproduce the sequential ranker's behaviour
// too: equal-timestamp ENDs on different hosts are delivered in sorted
// host order (Rule 2 keeps the first queue on a tie; queues are built in
// sorted host order), and within one host in log order, which record IDs
// preserve (every trace producer assigns IDs in per-host log order).
// Component/position order is the final fallback for ID-less hand-built
// traces.
func sortTagged(tagged []taggedGraph) {
	sort.Slice(tagged, func(i, j int) bool {
		ei, ej := tagged[i].g.End(), tagged[j].g.End()
		if ei.Timestamp != ej.Timestamp {
			return ei.Timestamp < ej.Timestamp
		}
		if ei.Ctx.Host != ej.Ctx.Host {
			return ei.Ctx.Host < ej.Ctx.Host
		}
		if a, b := ei.Records[0].ID, ej.Records[0].ID; a != b {
			return a < b
		}
		if tagged[i].comp != tagged[j].comp {
			return tagged[i].comp < tagged[j].comp
		}
		return tagged[i].pos < tagged[j].pos
	})
}

func newStreamSession(opts Options, hosts []string) *streamSession {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	drvOpts := opts
	drvOpts.Workers = 0
	drvOpts.OnGraph = nil
	drvOpts.Sinks = nil
	// The jobs ring is deep enough that a burst of seals (one drain can
	// retire hundreds of components) dispatches without stalling stage 1;
	// the results ring is deep enough that workers can land every
	// in-flight batch even if the collector is momentarily descheduled.
	jobsCap := 8 * workers
	if jobsCap < 64 {
		jobsCap = 64
	}
	s := &streamSession{
		opts:       opts,
		workers:    workers,
		drv:        New(drvOpts),
		cls:        activity.NewClassifier(opts.EntryPorts...),
		hosts:      make(map[activity.Sym]*sessHost, len(hosts)),
		comps:      make(map[int32]*sessComponent),
		jobs:       ring.New[*sessComponent](jobsCap),
		results:    ring.New[sessShardResult](jobsCap + workers*workerPullBatch),
		continuous: opts.continuousConfigured(),
		maxHorizon: opts.maxHorizon(),
	}
	s.colReady.L = &s.colMu
	s.deliver = opts.emitter()
	s.inc = flow.NewIncremental(opts.ShardBy.flowMode(), s.mergeComponents)
	if s.continuous {
		// Continuous mode retires dispatched components; the close-driven
		// mode never prunes and skips the reverse-index tracking cost.
		s.inc.EnablePruning()
	}
	for _, h := range hosts {
		sym := activity.Syms.Intern(h)
		if s.hosts[sym] == nil {
			s.hosts[sym] = &sessHost{
				name:    activity.Syms.Name(sym),
				open:    true,
				horizon: opts.horizonFor(h),
			}
		}
	}
	if len(opts.IPToHost) > 0 {
		s.ipHost = make(map[activity.Sym]activity.Sym, len(opts.IPToHost))
		for ip, hn := range opts.IPToHost {
			s.ipHost[activity.Syms.Intern(ip)] = activity.Syms.Intern(hn)
		}
	}
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.worker()
	}
	s.colWG.Add(1)
	go s.collector()
	return s
}

// worker pulls sealed components in batches (one ring wakeup amortized
// over up to workerPullBatch correlations) and lands the whole run's
// results as one batch. The batch is adaptive: under light load
// PopBatch returns a single component immediately, so a lone seal is
// never delayed waiting for company.
func (s *streamSession) worker() {
	defer s.wg.Done()
	sc := newShardScratch(s.drv)
	comps := make([]*sessComponent, workerPullBatch)
	out := make([]sessShardResult, 0, workerPullBatch)
	for {
		n := s.jobs.PopBatch(comps)
		if n == 0 {
			return
		}
		out = out[:0]
		for i, c := range comps[:n] {
			out = append(out, s.correlateComponent(sc, c))
			comps[i] = nil
		}
		s.results.PushBatch(out)
	}
}

// collector is the stage-2 aggregation goroutine: it continuously drains
// the results ring into colBuf so workers always find room to land
// finished shards, even while stage 1 is deep in a partition burst.
// Stage 1 folds the aggregate in at its own cadence (harvest/settle).
func (s *streamSession) collector() {
	defer s.colWG.Done()
	buf := make([]sessShardResult, collectorPullBatch)
	for {
		n := s.results.PopBatch(buf)
		if n == 0 {
			return
		}
		s.colMu.Lock()
		s.colBuf = append(s.colBuf, buf[:n]...)
		s.collected += n
		s.colReady.Broadcast()
		s.colMu.Unlock()
		for i := 0; i < n; i++ {
			buf[i] = sessShardResult{}
		}
	}
}

// shardScratch is one worker's reusable correlation machinery: a
// ranker+engine pair reset per component, plus the source-building
// buffers. A worker correlates components strictly one after another, so
// everything here is single-owner; only the result's graphs escape (the
// engine drops, never reuses, its outputs slice on Reset).
type shardScratch struct {
	rk   *ranker.Ranker
	eng  *engine.Engine
	runs []namedRun
	srcs []ranker.SliceSource
	refs []ranker.Source
	acts []*activity.Activity
}

// namedRun pairs one host's buffered run with its name for the
// deterministic source sort.
type namedRun struct {
	name string
	recs []pushRec
}

func newShardScratch(drv *Correlator) *shardScratch {
	eng := engine.New()
	return &shardScratch{
		eng: eng,
		rk:  ranker.New(drv.rankerConfig(), eng, nil),
	}
}

// correlateComponent runs the unmodified sequential pass over one sealed
// component. Sources are built in sorted host-name order — the order the
// global pass uses, which the deterministic tie-breaks rely on. (Symbol
// numeric order depends on interning order, so it is never used for
// anything output-visible.)
func (s *streamSession) correlateComponent(sc *shardScratch, c *sessComponent) sessShardResult {
	sc.runs = sc.runs[:0]
	total := 0
	for _, r := range c.runs {
		sc.runs = append(sc.runs, namedRun{name: activity.Syms.Name(r.host), recs: r.recs})
		total += len(r.recs)
	}
	// Components span a handful of hosts; insertion sort keeps this
	// per-seal path free of the sort.Slice closure allocations.
	for i := 1; i < len(sc.runs); i++ {
		for j := i; j > 0 && sc.runs[j].name < sc.runs[j-1].name; j-- {
			sc.runs[j], sc.runs[j-1] = sc.runs[j-1], sc.runs[j]
		}
	}
	// Size acts up front: the per-run source windows alias its backing
	// array, so it must not reallocate while they are being cut.
	if cap(sc.acts) < total {
		sc.acts = make([]*activity.Activity, 0, total)
	}
	sc.acts = sc.acts[:0]
	if cap(sc.srcs) < len(sc.runs) {
		sc.srcs = make([]ranker.SliceSource, len(sc.runs))
	}
	sc.srcs = sc.srcs[:len(sc.runs)]
	sc.refs = sc.refs[:0]
	for i, r := range sc.runs {
		start := len(sc.acts)
		for _, pr := range r.recs {
			sc.acts = append(sc.acts, pr.a)
		}
		sc.srcs[i].Reset(r.name, sc.acts[start:len(sc.acts):len(sc.acts)])
		sc.refs = append(sc.refs, &sc.srcs[i])
	}
	s.drv.driveOn(sc.rk, sc.eng, sc.refs)
	return sessShardResult{
		comp:         c,
		graphs:       sc.eng.Outputs(),
		rstats:       sc.rk.Stats(),
		estats:       sc.eng.Stats(),
		peakResident: sc.eng.PeakResidentVertices(),
	}
}

// Push implements sessionImpl: validate the stream contract, classify,
// and ingest. The record is bound in place (idempotent) so the host
// lookup and all downstream bookkeeping run on dense keys; the session
// buffers its own slab copy, never the caller's record.
func (s *streamSession) Push(a *activity.Activity) error {
	if s.closed {
		return fmt.Errorf("core: push on closed session")
	}
	if !a.CtxK.Bound() {
		activity.Bind(a)
	}
	h, ok := s.hosts[a.CtxK.Host]
	if !ok {
		return fmt.Errorf("core: unknown host %q (declare it in NewSession)", a.Ctx.Host)
	}
	if !h.open {
		return fmt.Errorf("core: push on closed source %s", a.Ctx.Host)
	}
	if h.any && a.Timestamp < h.last {
		return fmt.Errorf("core: %s timestamp regressed (%v after %v)", a.Ctx.Host, a.Timestamp, h.last)
	}
	cp := s.copyRec(a)
	cp.Type = s.cls.Classify(a)
	s.ingest(cp, h)
	return nil
}

// PushBatch implements sessionImpl: apply a run of records in order as
// one call. Application stops at the first error, which is returned;
// earlier records stay applied.
func (s *streamSession) PushBatch(batch []*activity.Activity) error {
	for _, a := range batch {
		if err := s.Push(a); err != nil {
			return err
		}
	}
	return nil
}

// replayPush is the offline replay's ingest path: the record is already
// copied/owned and classified, and the replay — which controls every
// stream — skips the online contract checks (the historical sequential
// pass accepted per-host disorder too, producing whatever the ranker
// makes of it).
func (s *streamSession) replayPush(cp *activity.Activity) {
	if !cp.CtxK.Bound() {
		activity.Bind(cp)
	}
	h := s.hosts[cp.CtxK.Host]
	if h == nil {
		// A source whose records carry an undeclared host name: declare it
		// on the fly; the replay closes every host before draining.
		h = &sessHost{name: cp.Ctx.Host, open: true, horizon: s.opts.horizonFor(cp.Ctx.Host)}
		s.hosts[cp.CtxK.Host] = h
	}
	s.ingest(cp, h)
}

// debugShardClosure turns on assertChanClosure in every streamSession:
// the per-push check that no ChanKey ever resolves to two live
// components — the invariant the shard-aware Fig. 5 predicate rests on
// (ranker.matchingSendVisible). Tests flip it directly; set
// CORE_DEBUG_SHARD_CLOSURE=1 to enable it in a normal build.
var debugShardClosure = os.Getenv("CORE_DEBUG_SHARD_CLOSURE") != ""

// assertChanClosure checks, after cp was assigned to root, that cp's
// connection has not escaped the component it first filed under. The one
// legitimate divergence is a dispatched owner: a sealed component's
// straggler is detached onto a fresh root by design (a late link), so the
// previous owner must then be sealed or already retired — never live and
// growing.
func (s *streamSession) assertChanClosure(cp *activity.Activity, root int32) {
	if s.chanOwner == nil {
		s.chanOwner = make(map[activity.ChanKey]int32)
	}
	key := cp.ChanK
	n, ok := s.chanOwner[key]
	if !ok {
		if rn, rok := s.chanOwner[key.Reverse()]; rok {
			key, n, ok = key.Reverse(), rn, true
		}
	}
	if !ok {
		s.chanOwner[key] = root
		return
	}
	prev := s.inc.Root(n)
	if prev == root {
		return
	}
	if c := s.comps[prev]; c == nil || c.sealed {
		s.chanOwner[key] = root // previous owner dispatched: late-link detach
		return
	}
	panic(fmt.Sprintf("core: ChanKey split across two live components (roots %d and %d) — channel-closure invariant violated", prev, root))
}

// ingest assigns one classified activity to its flow component and
// buffers it in per-host push order. The caller owns cp, which must be
// bound.
func (s *streamSession) ingest(cp *activity.Activity, h *sessHost) {
	lateBefore := s.inc.LateLinks()
	root := s.inc.Add(cp)
	if debugShardClosure {
		s.assertChanClosure(cp, root)
	}
	c := s.comps[root]
	if c == nil || c.sealed {
		// sealed here means a late link reached an already-dispatched
		// component (possible only with an incomplete IPToHost map);
		// start a fresh shard rather than touching in-flight buffers.
		c = newSessComponent(s.nextCompID, cp.Timestamp, root)
		s.nextCompID++
		s.comps[root] = c
	}
	if s.inc.LateLinks() > lateBefore {
		// This record genuinely linked to a tombstoned component and was
		// detached onto this one: its graphs may be split fragments of a
		// dispatched request — tag the provenance for downstream sinks.
		c.late = true
	}
	c.appendRec(cp.CtxK.Host, pushRec{a: cp, seq: h.seq})
	if cp.Timestamp < c.minTs {
		c.minTs = cp.Timestamp
	}
	if cp.Timestamp > c.maxTs {
		c.maxTs = cp.Timestamp
	}
	if cp.Timestamp > s.maxTs {
		s.maxTs = cp.Timestamp
	}
	c.size++
	c.noteHost(cp.CtxK.Host)
	s.noteEndpoint(c, cp.ChanK.SrcIP)
	s.noteEndpoint(c, cp.ChanK.DstIP)
	h.seq++
	if cp.Timestamp > h.last || !h.any {
		h.last = cp.Timestamp
	}
	h.any = true
	s.pushed++
	s.pendingActs++
}

// Heartbeat implements sessionImpl: the host's agent asserts it is alive
// and will never deliver an activity older than ts. The assertion
// advances the host's watermark bound (quiet-but-healthy hosts stop
// holding back emission) and the activity clock (seal horizons keep
// advancing through traffic lulls). A stale heartbeat — older than the
// host's newest delivered record — is ignored.
func (s *streamSession) Heartbeat(host string, ts time.Duration) error {
	if s.closed {
		return fmt.Errorf("core: heartbeat on closed session")
	}
	h, ok := s.hosts[activity.Syms.Intern(host)]
	if !ok {
		return fmt.Errorf("core: unknown host %q (declare it in NewSession)", host)
	}
	if !h.open {
		return fmt.Errorf("core: heartbeat on closed source %s", host)
	}
	if ts > h.last || !h.any {
		h.last = ts
	}
	h.any = true
	if ts > s.maxTs {
		s.maxTs = ts
	}
	return nil
}

// noteEndpoint records a channel endpoint's owning host as a possible
// future contributor to the component.
func (s *streamSession) noteEndpoint(c *sessComponent, ip activity.Sym) {
	if hn, ok := s.ipHost[ip]; ok {
		if _, declared := s.hosts[hn]; declared {
			c.noteHost(hn)
		}
	}
}

// mergeComponents is the flow.Incremental merge callback: the loser
// root's buffers fold into the winner root's.
func (s *streamSession) mergeComponents(winner, loser int32) {
	cw, cl := s.comps[winner], s.comps[loser]
	if cl != nil {
		delete(s.comps, loser)
	}
	switch {
	case cl == nil:
		return // the loser root had no buffered activities yet
	case cw == nil:
		cl.root = winner
		s.comps[winner] = cl
	default:
		if fused := s.fuse(cw, cl, winner); fused != nil {
			s.comps[winner] = fused
		} else {
			delete(s.comps, winner)
		}
	}
}

// fuse merges two component buffers (the larger absorbs the smaller).
func (s *streamSession) fuse(a, b *sessComponent, root int32) *sessComponent {
	// A sealed component is already owned by the worker pool; its buffers
	// must not be touched. Reaching one here is only possible when
	// IPToHost fails to cover a declared host — degrade to under-merged
	// shards instead of a data race, mirroring how the ranker degrades on
	// the same misconfiguration.
	if a.sealed || b.sealed {
		live := a
		if a.sealed {
			live = b
		}
		if live.sealed {
			return nil // both in flight: nothing left to buffer into
		}
		live.root = root
		return live
	}
	if b.size > a.size {
		a, b = b, a
	}
	for i := range b.runs {
		br := &b.runs[i]
		merged := false
		for j := range a.runs {
			if a.runs[j].host == br.host {
				a.runs[j].recs = mergeRuns(a.runs[j].recs, br.recs)
				merged = true
				break
			}
		}
		if !merged {
			a.runs = append(a.runs, *br)
		}
	}
	for _, h := range b.contrib {
		a.noteHost(h)
	}
	if b.minTs < a.minTs {
		a.minTs = b.minTs
	}
	if b.maxTs > a.maxTs {
		a.maxTs = b.maxTs
	}
	if b.id < a.id {
		a.id = b.id
	}
	if b.late {
		a.late = true
	}
	a.size += b.size
	a.root = root
	return a
}

// mergeRuns interleaves two (timestamp, push-sequence)-sorted host runs.
func mergeRuns(x, y []pushRec) []pushRec {
	if len(x) == 0 {
		return y
	}
	if len(y) == 0 {
		return x
	}
	out := make([]pushRec, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		if y[j].a.Timestamp < x[i].a.Timestamp ||
			(y[j].a.Timestamp == x[i].a.Timestamp && y[j].seq < x[i].seq) {
			out = append(out, y[j])
			j++
		} else {
			out = append(out, x[i])
			i++
		}
	}
	out = append(out, x[i:]...)
	out = append(out, y[j:]...)
	return out
}

// CloseHost implements sessionImpl: closing a stream is what seals
// components and feeds the worker pool.
func (s *streamSession) CloseHost(host string) error {
	h, ok := s.hosts[activity.Syms.Intern(host)]
	if !ok {
		return fmt.Errorf("core: unknown host %q", host)
	}
	start := time.Now()
	if h.open {
		h.open = false
		s.sealCompleted()
	}
	s.harvest()
	s.workTime += time.Since(start)
	return nil
}

// sealCompleted seals every component that no open host can extend and
// queues it for the worker pool, in deterministic creation order.
func (s *streamSession) sealCompleted() {
	ready := s.sealReady[:0]
	for _, c := range s.comps {
		if c.sealed || s.growable(c) {
			continue
		}
		ready = append(ready, c)
	}
	s.enqueue(ready)
	s.sealReady = ready[:0]
}

// compHorizon returns the component's effective seal horizon: the
// largest horizon among the open declared hosts that may still extend
// it — a component a lagging host can touch inherits that host's longer
// deadline; components it cannot touch keep the shorter default. Closed
// streams deliver nothing, so (like growable) they bound nothing: a
// horizon-less host stops pinning its components open the moment it
// closes. 0 means unbounded: some open contributing host has no
// horizon, so only closure can seal the component.
func (s *streamSession) compHorizon(c *sessComponent) time.Duration {
	var horizon time.Duration
	for _, hn := range c.contrib {
		hh := s.hosts[hn]
		if hh == nil || !hh.open {
			continue
		}
		if hh.horizon <= 0 {
			return 0
		}
		if hh.horizon > horizon {
			horizon = hh.horizon
		}
	}
	return horizon
}

// sealStale force-seals every component whose newest activity has fallen
// more than its own horizon behind the activity clock — the continuous-
// emission rule. Evaluated at Drain, against pushed/heartbeated
// timestamps only, so replaying the same push/drain sequence reproduces
// the same seals.
func (s *streamSession) sealStale() {
	if !s.continuous {
		return
	}
	ready := s.sealReady[:0]
	for _, c := range s.comps {
		if c.sealed {
			continue
		}
		horizon := s.compHorizon(c)
		if horizon <= 0 || c.maxTs >= s.maxTs-horizon {
			continue
		}
		c.forced = true
		ready = append(ready, c)
	}
	s.forcedSeals += len(ready)
	s.enqueue(ready)
	s.sealReady = ready[:0]
}

// enqueue seals the given components and dispatches them to the worker
// pool in deterministic creation order, as one batched ring push. In
// continuous mode the flow partition tombstones each root, so a
// straggler activity becomes a counted late link on a fresh component
// instead of touching dispatched buffers — and the flow-bookkeeping
// prune is scheduled here, at seal time, where maxTs is a deterministic
// function of the event stream (absorption timing is pipelined and
// therefore no longer deterministic).
func (s *streamSession) enqueue(ready []*sessComponent) {
	// Ready batches are small (the components one drain retires);
	// insertion sort spares the per-drain sort.Slice closures.
	for i := 1; i < len(ready); i++ {
		for j := i; j > 0 && ready[j].id < ready[j-1].id; j-- {
			ready[j], ready[j-1] = ready[j-1], ready[j]
		}
	}
	for _, c := range ready {
		c.sealed = true
		if s.continuous {
			s.inc.Seal(c.root)
			// Keep late-link detection alive exactly as long as the
			// liveness bounds admit stragglers, then prune.
			lag := s.compHorizon(c)
			if lag <= 0 {
				lag = s.maxHorizon
			}
			s.inc.SchedulePrune(c.root, s.maxTs+lag)
		}
	}
	// Blocking push is safe here: workers always drain jobs, the
	// collector always drains results, and stage 1 holds no locks — a
	// full ring is backpressure, not deadlock.
	s.jobs.PushBatch(ready)
	s.dispatched += len(ready)
	s.shards += len(ready)
}

// growable reports whether any still-open declared host could push an
// activity joining this component.
func (s *streamSession) growable(c *sessComponent) bool {
	for _, hn := range c.contrib {
		if hh := s.hosts[hn]; hh != nil && hh.open {
			return true
		}
	}
	return false
}

// harvest folds everything the collector has aggregated into the
// session, without waiting for in-flight shards — the non-blocking half
// of the stage-1/stage-2 handshake. The two buffers ping-pong so the
// steady state allocates nothing.
func (s *streamSession) harvest() {
	s.colMu.Lock()
	batch := s.colBuf
	s.colBuf = s.colScratch[:0]
	s.colMu.Unlock()
	if len(batch) == 0 {
		s.colScratch = batch
		return
	}
	for i := range batch {
		s.absorb(batch[i])
		batch[i] = sessShardResult{}
	}
	s.colScratch = batch[:0]
}

// settle waits until every dispatched shard has been collected, then
// absorbs the lot — the full barrier Drain and Close rely on. Waiting
// cannot deadlock: workers drain the jobs ring and the collector drains
// the results ring unconditionally, so every dispatched component's
// result reaches collected.
func (s *streamSession) settle() {
	s.colMu.Lock()
	for s.collected < s.dispatched {
		s.colReady.Wait()
	}
	s.colMu.Unlock()
	s.harvest()
}

// absorb folds one shard result into the session aggregates. Runs on
// stage 1 only (via harvest/settle), so the comps map and aggregates
// stay single-owner.
func (s *streamSession) absorb(r sessShardResult) {
	s.pendingActs -= r.comp.size
	s.uncounted += int(r.rstats.Delivered)
	addRankerStats(&s.rstats, r.rstats)
	addEngineStats(&s.estats, r.estats)
	if r.peakResident > s.peakVert {
		s.peakVert = r.peakResident
	}
	for pos, g := range r.graphs {
		if r.comp.forced || r.comp.late {
			g.SetProvenance(r.comp.forced, r.comp.late)
		}
		s.finished = append(s.finished, taggedGraph{g: g, comp: r.comp.id, pos: pos})
	}
	if len(r.graphs) > 0 {
		s.unsorted = true
	}
	if s.comps[r.comp.root] == r.comp {
		delete(s.comps, r.comp.root)
	}
}

// watermark returns the END-timestamp bound below which no future graph
// can appear: a pending component's future graphs end at or after its
// earliest member, and an open host can only push at or after its last
// local timestamp (a host that never pushed nor heartbeated bounds
// nothing, so nothing may be released). bounded is false when no
// component is pending and no host is open — everything may go.
//
// With a seal horizon an open host's bound is raised to its own
// sender-liveness floor maxTs−horizon(host): a quiet-but-open stream is
// presumed to hold nothing older than its horizon, so it no longer
// blocks emission forever. A push violating that presumption is the same
// late-link event the forced seal accepts, and can regress the emitted
// order (surfaced downstream via live.Monitor.OutOfOrder).
func (s *streamSession) watermark() (time.Duration, bool) {
	var wm time.Duration
	bounded := false
	note := func(t time.Duration) {
		if !bounded || t < wm {
			wm, bounded = t, true
		}
	}
	for _, c := range s.comps {
		note(c.minTs)
	}
	for _, h := range s.hosts {
		if !h.open {
			continue
		}
		b := time.Duration(math.MinInt64) // no lower bound yet
		if h.any {
			b = h.last
		}
		if h.horizon > 0 {
			if floor := s.maxTs - h.horizon; floor > b {
				b = floor
			}
		}
		note(b)
	}
	return wm, bounded
}

// emit releases finished graphs in deterministic END-timestamp order up
// to (strictly below) the watermark; all=true releases everything.
// Strict inequality makes cross-batch ties impossible: any graph arriving
// later comes from a component whose minimum timestamp was at or above
// every watermark used before, so the released stream is globally sorted.
func (s *streamSession) emit(all bool) {
	if len(s.finished) == 0 {
		return
	}
	// A released prefix leaves the remainder sorted, so an idle Drain
	// (no shard absorbed since) skips the re-sort of the held backlog.
	if s.unsorted {
		sortTagged(s.finished)
		s.unsorted = false
	}
	cut := len(s.finished)
	if !all {
		wm, bounded := s.watermark()
		if bounded {
			cut = sort.Search(len(s.finished), func(i int) bool {
				return s.finished[i].g.End().Timestamp >= wm
			})
		}
	}
	if cut == 0 {
		return
	}
	for _, t := range s.finished[:cut] {
		if s.deliver != nil {
			s.deliver(t.g)
		} else {
			s.emitted = append(s.emitted, t.g)
		}
	}
	s.finished = append(s.finished[:0:0], s.finished[cut:]...)
}

// Drain implements sessionImpl: force-seal stale components (continuous
// mode), finish every decidable (sealed) component, and release what the
// watermark permits.
func (s *streamSession) Drain() int {
	start := time.Now()
	s.sealStale()
	s.settle()
	if s.continuous {
		s.inc.PruneBefore(s.maxTs)
	}
	s.emit(false)
	s.workTime += time.Since(start)
	n := s.uncounted
	s.uncounted = 0
	return n
}

// Tick implements sessionImpl: the pipelined, non-blocking Drain. It
// makes the same deterministic seal decisions (sealStale at the same
// event-stream point with the same maxTs) but absorbs only the shards
// the pool has already finished instead of waiting for the in-flight
// ones — the caller keeps pushing while workers chew. Emission stays
// safe: a sealed-but-in-flight component is still in the comps map, so
// its earliest timestamp bounds the watermark and nothing that could
// precede its graphs is released. The final output is byte-identical to
// a Drain cadence; only the moment each graph is released shifts later.
func (s *streamSession) Tick() int {
	start := time.Now()
	s.sealStale()
	s.harvest()
	if s.continuous {
		s.inc.PruneBefore(s.maxTs)
	}
	s.emit(false)
	s.workTime += time.Since(start)
	n := s.uncounted
	s.uncounted = 0
	return n
}

// Close implements sessionImpl.
func (s *streamSession) Close() *Result {
	if s.closed {
		return s.final
	}
	start := time.Now()
	for _, h := range s.hosts {
		h.open = false
	}
	s.sealCompleted()
	s.settle()
	s.jobs.Close()
	s.wg.Wait()
	s.results.Close()
	s.colWG.Wait()
	s.harvest()
	s.emit(true)
	s.workTime += time.Since(start)
	s.closed = true
	s.final = &Result{
		Graphs:                 s.emitted,
		CorrelationTime:        s.workTime,
		Activities:             s.pushed,
		Ranker:                 s.rstats,
		Engine:                 s.estats,
		PeakBufferedActivities: s.rstats.PeakBuffered,
		PeakResidentVertices:   s.peakVert,
		Shards:                 s.shards,
		ForcedSeals:            s.forcedSeals,
		LateLinks:              s.inc.LateLinks(),
	}
	return s.final
}

// AddSink implements sessionImpl: append one sink to the emission chain
// and rebuild the fused delivery function. Must run before the first
// Push — the chain is not synchronized against in-flight emission.
func (s *streamSession) AddSink(sink GraphSink) {
	s.opts.Sinks = append(s.opts.Sinks, sink)
	s.deliver = s.opts.emitter()
}

// Graphs implements sessionImpl.
func (s *streamSession) Graphs() []*cag.Graph { return s.emitted }

// Pending implements sessionImpl: activities pushed but not yet
// correlated by a finished shard.
func (s *streamSession) Pending() int { return s.pendingActs }

// addRankerStats accumulates shard counters. Counter fields sum across
// shards; PeakBuffered is aggregated separately (the Result reports the
// largest single-shard peak — the Fig. 11 global-buffer figure is a
// global-pass concept).
func addRankerStats(dst *ranker.Stats, s ranker.Stats) {
	dst.Fetched += s.Fetched
	dst.Delivered += s.Delivered
	dst.FilterDropped += s.FilterDropped
	dst.NoiseDropped += s.NoiseDropped
	dst.Swaps += s.Swaps
	dst.Extensions += s.Extensions
	dst.ForcedPops += s.ForcedPops
	if s.PeakBuffered > dst.PeakBuffered {
		dst.PeakBuffered = s.PeakBuffered
	}
}

func addEngineStats(dst *engine.Stats, s engine.Stats) {
	dst.Begins += s.Begins
	dst.Finished += s.Finished
	dst.MergedSends += s.MergedSends
	dst.MergedBegins += s.MergedBegins
	dst.MergedEnds += s.MergedEnds
	dst.PartialReceives += s.PartialReceives
	dst.Receives += s.Receives
	dst.Sends += s.Sends
	dst.DiscardedSends += s.DiscardedSends
	dst.DiscardedReceives += s.DiscardedReceives
	dst.DiscardedEnds += s.DiscardedEnds
	dst.OverrunReceives += s.OverrunReceives
	dst.ReplacedSends += s.ReplacedSends
	dst.ThreadReuseBreaks += s.ThreadReuseBreaks
}

package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cag"
)

// TestSessionEmitOrderRandomized is the emitter-ordering property test:
// across seeded random interleavings of drains, host closures, pool sizes
// and seal-horizon configurations, the OnGraph stream must always be
// non-decreasing in END timestamp and must deliver exactly the offline
// reference set — no duplicates, no drops.
//
// The horizons are chosen comfortably above the longest request span, so
// forced seals only ever hit completed components (a mid-request seal
// would legitimately split a CAG and change the set — that tradeoff is
// pinned separately in TestSessionGlobalHorizonSplits).
func TestSessionEmitOrderRandomized(t *testing.T) {
	res := fastRun(t, 40, nil)
	hosts := hostsOf(res)
	ref, err := New(options(res)).CorrelateTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Graphs) == 0 {
		t.Fatal("reference run produced no graphs")
	}
	want := make(map[string]int, len(ref.Graphs))
	var maxSpan time.Duration
	for _, g := range ref.Graphs {
		want[fingerprint(g)]++
		if span := g.End().Timestamp - g.Root().Timestamp; span > maxSpan {
			maxSpan = span
		}
	}
	// Any horizon above the longest request (plus slack for the coarser
	// online components) seals only finished work.
	safeHorizon := 8*maxSpan + 50*time.Millisecond

	arr := arrivalOrder(res.Trace)
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		opts := options(res)
		opts.Workers = 1 + rng.Intn(4)
		switch rng.Intn(3) {
		case 1:
			opts.SealAfter = safeHorizon
		case 2:
			opts.SealAfter = safeHorizon
			opts.SealAfterByHost = map[string]time.Duration{
				hosts[rng.Intn(len(hosts))]: safeHorizon * time.Duration(2+rng.Intn(3)),
			}
		}
		var emitted []*cag.Graph
		opts.OnGraph = func(g *cag.Graph) { emitted = append(emitted, g) }
		sess, err := NewSession(opts, hosts)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range arr {
			if err := sess.Push(a); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if rng.Intn(32) == 0 {
				sess.Drain()
			}
		}
		// Close the streams in random order, draining in between — the
		// close/seal interleaving the watermark must stay sorted under.
		order := rng.Perm(len(hosts))
		for _, i := range order {
			if err := sess.CloseHost(hosts[i]); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if rng.Intn(2) == 0 {
				sess.Drain()
			}
		}
		out := sess.Close()

		last := time.Duration(-1 << 62)
		got := make(map[string]int, len(emitted))
		for i, g := range emitted {
			end := g.End().Timestamp
			if end < last {
				t.Fatalf("seed %d (workers=%d sealafter=%v): graph %d END %v after %v — emission order regressed",
					seed, opts.Workers, opts.SealAfter, i, end, last)
			}
			last = end
			got[fingerprint(g)]++
		}
		if len(emitted) != len(ref.Graphs) {
			t.Fatalf("seed %d (workers=%d sealafter=%v perhost=%v): emitted %d graphs, want %d (lateLinks=%d forcedSeals=%d)",
				seed, opts.Workers, opts.SealAfter, opts.SealAfterByHost,
				len(emitted), len(ref.Graphs), out.LateLinks, out.ForcedSeals)
		}
		for fp, n := range want {
			if got[fp] != n {
				t.Fatalf("seed %d: reference graph emitted %d times, want %d — duplicate or drop", seed, got[fp], n)
			}
		}
	}
}

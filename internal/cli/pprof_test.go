package cli

import (
	"errors"
	"flag"
	"io"
	"net/http"
	"testing"
)

func TestStartPprofServes(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	addr := RegisterPprof(fs)
	if err := fs.Parse([]string{"-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	bound, stop, err := StartPprof(*addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + bound + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	if len(body) == 0 {
		t.Fatal("empty pprof index")
	}
	// Only pprof paths are mounted: anything else on the debug port 404s.
	resp, err = http.Get("http://" + bound + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET / = %d, want 404", resp.StatusCode)
	}
}

func TestStartPprofEmptyIsNoOp(t *testing.T) {
	bound, stop, err := StartPprof("")
	if err != nil || bound != "" {
		t.Fatalf("StartPprof(\"\") = %q, %v; want empty, nil", bound, err)
	}
	stop() // must be callable
}

func TestStartPprofBadAddr(t *testing.T) {
	_, _, err := StartPprof("definitely-not-an-address:notaport")
	if err == nil {
		t.Fatal("want error for unparseable address")
	}
	if !errors.Is(err, ErrUsage) {
		t.Fatalf("want ErrUsage, got %v", err)
	}
}

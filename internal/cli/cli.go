// Package cli holds the flag plumbing shared by the correlating
// commands (precisetracer, livemon): usage-marked errors, the common
// -workers/-sealafter flags with their validation, and the -export flag
// that turns export sink specs into core.GraphSinks — defined once so
// both CLIs accept the same spellings.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/export"
)

// ErrUsage marks a rejected flag value: Main prints the flag usage
// after the error instead of failing silently on a misconfiguration.
var ErrUsage = errors.New("invalid flag value")

// Usagef wraps a flag complaint in ErrUsage.
func Usagef(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrUsage}, args...)...)
}

// Main is the shared command entry: run, report errors under the
// command name, print usage for ErrUsage, exit non-zero on failure.
func Main(name string, run func() error) {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, name+":", err)
		if errors.Is(err, ErrUsage) {
			flag.Usage()
		}
		os.Exit(1)
	}
}

// Correlator carries the flags every correlating command shares.
// Register on a FlagSet before Parse, Apply after.
type Correlator struct {
	workers   *int
	sealAfter *string
	export    *string
}

// RegisterCorrelator defines the shared flags on fs.
func RegisterCorrelator(fs *flag.FlagSet) *Correlator {
	return &Correlator{
		workers: fs.Int("workers", 1,
			"correlation workers sizing the streaming engine's pool (1 = sequential configuration, 0 = all CPUs)"),
		sealAfter: fs.String("sealafter", "",
			"activity-time seal horizon(s): a default duration and/or host=duration overrides, comma-separated (e.g. '50ms,db1=500ms'); empty = close-driven sealing only"),
		export: fs.String("export", "",
			"graph export sinks, comma-separated kind=dest specs: otlp=FILE (OTLP-JSON lines), otlp=http(s)://HOST/v1/traces (OTLP/HTTP), dot=DIR (one .dot per CAG), dump=FILE (canonical text dumps)"),
	}
}

// RegisterHeartbeat defines the replay-mode -heartbeat flag (livemon).
func RegisterHeartbeat(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("heartbeat", 0,
		"replay mode agent liveness cadence in activity time (listen-mode heartbeats come from the agents; see traceagent -heartbeat); 0 = no heartbeats")
}

// ValidateHeartbeat rejects negative cadences.
func ValidateHeartbeat(d time.Duration) error {
	if d < 0 {
		return Usagef("-heartbeat must be >= 0 (got %v)", d)
	}
	return nil
}

// Apply validates the shared flags and installs them into opts:
// resolved worker count, seal horizons, and any -export sinks appended
// to opts.Sinks. The returned Exports owns the sinks' file handles —
// Close it once the run is over (it flushes HTTP batches and surfaces
// sticky write errors).
func (c *Correlator) Apply(opts *core.Options) (*Exports, error) {
	if *c.workers < 0 {
		return nil, Usagef("-workers must be >= 0 (got %d; 0 = all CPUs)", *c.workers)
	}
	opts.Workers = core.ResolveWorkers(*c.workers)
	sealDefault, sealByHost, err := core.ParseSealAfterSpec(*c.sealAfter)
	if err != nil {
		return nil, Usagef("%v", err)
	}
	opts.SealAfter = sealDefault
	opts.SealAfterByHost = sealByHost
	exports, err := ParseExports(*c.export)
	if err != nil {
		return nil, err
	}
	for _, e := range exports.entries {
		opts.Sinks = append(opts.Sinks, e.sink)
	}
	return exports, nil
}

// Exports is the set of sinks built from one -export spec.
type Exports struct {
	entries []exportEntry
}

type exportEntry struct {
	kind, dest string
	sink       core.GraphSink
}

// ParseExports builds sinks from a comma-separated kind=dest spec.
// An empty spec yields an empty (but usable) set.
func ParseExports(spec string) (*Exports, error) {
	ex := &Exports{}
	if strings.TrimSpace(spec) == "" {
		return ex, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kind, dest, ok := strings.Cut(strings.TrimSpace(part), "=")
		kind, dest = strings.TrimSpace(kind), strings.TrimSpace(dest)
		if !ok || kind == "" || dest == "" {
			ex.Close()
			return nil, Usagef("-export entry %q: want kind=dest", part)
		}
		var sink core.GraphSink
		var err error
		switch kind {
		case "otlp":
			if strings.HasPrefix(dest, "http://") || strings.HasPrefix(dest, "https://") {
				sink = export.NewHTTPExporter(dest)
			} else {
				sink, err = export.NewFileExporter(dest)
			}
		case "dot":
			sink, err = export.NewDOTDir(dest)
		case "dump":
			sink, err = export.NewDumpFile(dest)
		default:
			err = fmt.Errorf("unknown export kind %q (want otlp, dot or dump)", kind)
		}
		if err != nil {
			ex.Close()
			return nil, Usagef("-export entry %q: %v", part, err)
		}
		ex.entries = append(ex.entries, exportEntry{kind: kind, dest: dest, sink: sink})
	}
	return ex, nil
}

// Active reports whether any sink was configured.
func (e *Exports) Active() bool { return len(e.entries) > 0 }

// Close flushes and closes every sink, returning the first error
// (including sticky write errors accumulated during the run).
func (e *Exports) Close() error {
	var first error
	for _, en := range e.entries {
		var err error
		if c, ok := en.sink.(interface{ Close() error }); ok {
			err = c.Close()
		} else if s, ok := en.sink.(interface{ Err() error }); ok {
			err = s.Err()
		}
		if err != nil && first == nil {
			first = fmt.Errorf("-export %s=%s: %w", en.kind, en.dest, err)
		}
	}
	return first
}

// Summary returns one human line per sink describing what was written.
// Call after Close.
func (e *Exports) Summary() string {
	var b strings.Builder
	for _, en := range e.entries {
		switch s := en.sink.(type) {
		case *export.Exporter:
			fmt.Fprintf(&b, "exported %d traces (%d spans) as OTLP-JSON to %s\n", s.Graphs(), s.Spans(), en.dest)
		case *export.HTTPExporter:
			fmt.Fprintf(&b, "exported %d traces in %d POSTs to %s\n", s.Graphs(), s.Posts(), en.dest)
		case *export.DOTDir:
			fmt.Fprintf(&b, "wrote %d .dot files under %s\n", s.Graphs(), en.dest)
		case *export.DumpWriter:
			fmt.Fprintf(&b, "wrote %d graph dumps to %s\n", s.Graphs(), en.dest)
		}
	}
	return b.String()
}

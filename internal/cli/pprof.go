package cli

import (
	"flag"
	"net"
	"net/http"
	"net/http/pprof"
)

// RegisterPprof defines the shared -pprof flag on fs: an address to
// serve net/http/pprof on, empty (the default) meaning no profiling
// server. The bench workflow points `go tool pprof` at it to attribute
// time between the pipeline's two stages and the worker pool.
func RegisterPprof(fs *flag.FlagSet) *string {
	return fs.String("pprof", "",
		"serve net/http/pprof on this address (e.g. 'localhost:6060'); empty = no profiling server")
}

// StartPprof starts the profiling server for a non-empty -pprof value.
// It returns the bound address (useful with a ':0' port) and a stop
// function; an empty addr is a no-op returning ("", no-op, nil). Only
// the pprof handlers are mounted — on its own mux, never the global
// one — so the debug port exposes profiles and nothing else.
func StartPprof(addr string) (bound string, stop func(), err error) {
	if addr == "" {
		return "", func() {}, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, Usagef("-pprof %s: %v", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on stop
	return ln.Addr().String(), func() { srv.Close() }, nil
}
